// Package mulayer is a reproduction of μLayer (Kim et al., EuroSys 2019),
// a low-latency on-device NN inference runtime that accelerates every
// network layer cooperatively on a mobile SoC's CPU *and* GPU at the same
// time, using three mechanisms:
//
//   - channel-wise workload distribution — the processors compute disjoint
//     output-channel ranges of each layer, with no redundant work;
//   - processor-friendly quantization — tensors rest as 8-bit linearly
//     quantized integers; the CPU computes QUInt8 with a gemmlowp-style
//     integer pipeline while the GPU dequantizes on the fly and computes in
//     native F16;
//   - branch distribution — divergent branch groups (Inception, Fire
//     modules) are assigned whole branches per processor.
//
// Because pure Go has neither NEON nor a Mali GPU, the runtime executes
// real numeric kernels on the host while charging time and energy to
// calibrated analytic models of the paper's Exynos 7420 and 7880 SoCs (see
// DESIGN.md for the substitution rationale).
//
// # Quickstart
//
//	rt, err := mulayer.NewRuntime(mulayer.Exynos7420())
//	model, err := mulayer.GoogLeNet(mulayer.ModelConfig{})
//	res, err := rt.Run(model, nil, mulayer.RunConfig{Mechanism: mulayer.MechMuLayer})
//	fmt.Println(res.Report)   // simulated latency and energy
//
// For real computation, build a numeric model (reduced scale keeps the
// pure-Go kernels fast), calibrate its quantization grids, and pass an
// input tensor with Numeric: true.
package mulayer

import (
	"io"

	"mulayer/internal/core"
	"mulayer/internal/exec"
	"mulayer/internal/experiments"
	"mulayer/internal/models"
	"mulayer/internal/partition"
	"mulayer/internal/quant"
	"mulayer/internal/server"
	"mulayer/internal/sim"
	"mulayer/internal/soc"
	"mulayer/internal/tensor"
)

// Core runtime types.
type (
	// Runtime plans and executes inference on one SoC model (Figure 13 of
	// the paper: partitioner + latency predictor + executor).
	Runtime = core.Runtime
	// RunConfig selects the mechanism, data type, and execution mode of
	// one inference.
	RunConfig = core.RunConfig
	// Mechanism is an execution mechanism (single-processor baselines,
	// layer-to-processor, or μLayer's cooperative mechanisms).
	Mechanism = core.Mechanism
	// Result carries the (optional) output tensor, the simulated timeline,
	// and the latency/energy report of one inference.
	Result = exec.Result
	// Report summarizes simulated latency, energy, and utilization.
	Report = sim.Report
	// Plan is a partitioned execution plan.
	Plan = partition.Plan
)

// Model and data types.
type (
	// Model is a network from the zoo: a layer graph plus quantization
	// metadata.
	Model = models.Model
	// ModelConfig selects a model variant (numeric vs spec-only, reduced
	// input resolution/width, classifier width, weight seed).
	ModelConfig = models.Config
	// SoC is a modeled system-on-chip.
	SoC = soc.SoC
	// Tensor is a dense float32 NCHW tensor.
	Tensor = tensor.Tensor
	// Shape is a 4-D NCHW shape.
	Shape = tensor.Shape
	// DataType identifies F32, F16, or QUInt8.
	DataType = tensor.DataType
	// QuantParams is an affine 8-bit quantization grid.
	QuantParams = quant.Params
)

// The execution mechanisms of the paper's evaluation (§7.2), plus the
// §8.3 NPU extension mechanisms.
const (
	MechCPUOnly              = core.MechCPUOnly
	MechGPUOnly              = core.MechGPUOnly
	MechLayerToProcessor     = core.MechLayerToProcessor
	MechChannelDist          = core.MechChannelDist
	MechChannelDistProcQuant = core.MechChannelDistProcQuant
	MechMuLayer              = core.MechMuLayer
	MechNPUOnly              = core.MechNPUOnly
	MechMuLayerNPU           = core.MechMuLayerNPU
)

// The data types of §4.1.
const (
	F32    = tensor.F32
	F16    = tensor.F16
	QUInt8 = tensor.QUInt8
)

// NewRuntime profiles the SoC's processors, fits the latency predictor,
// and returns a runtime ready to plan and execute networks.
func NewRuntime(s *SoC) (*Runtime, error) { return core.NewRuntime(s) }

// Exynos7420 models the paper's high-end SoC (Samsung Galaxy Note 5):
// 4×Cortex-A57 + Mali-T760 MP8.
func Exynos7420() *SoC { return soc.Exynos7420() }

// Exynos7880 models the paper's mid-range SoC (Samsung Galaxy A5):
// 8×Cortex-A53 + Mali-T830 MP3.
func Exynos7880() *SoC { return soc.Exynos7880() }

// Exynos7420NPU is the high-end SoC augmented with a hypothetical
// 2018-class edge NPU — the platform for the paper's §8.3 extension,
// which this library implements in full (three-way channel distribution,
// NPU-friendly quantization, three-way branch distribution).
func Exynos7420NPU() *SoC { return soc.Exynos7420NPU() }

// SoCs returns both evaluated SoCs, high-end first.
func SoCs() []*SoC { return soc.All() }

// Model zoo builders (Table 1's evaluated networks plus LeNet-5 and the
// standalone Inception module of Figure 12).
var (
	LeNet5        = models.LeNet5
	AlexNet       = models.AlexNet
	VGG16         = models.VGG16
	GoogLeNet     = models.GoogLeNet
	SqueezeNetV11 = models.SqueezeNetV11
	MobileNetV1   = models.MobileNetV1
	ResNet18      = models.ResNet18
	Inception3a   = models.Inception3a
)

// EvaluatedModels returns the paper's five evaluation NNs in Table 1
// order: GoogLeNet, SqueezeNet v1.1, VGG-16, AlexNet, MobileNet v1.
func EvaluatedModels(cfg ModelConfig) ([]*Model, error) { return models.Evaluated(cfg) }

// NewInput allocates a zeroed float32 input tensor for a model.
func NewInput(m *Model) *Tensor { return tensor.New(m.InputShape) }

// RandomInput returns a deterministic pseudo-random input in [-1, 1] for a
// model; the same seed always yields the same tensor.
func RandomInput(m *Model, seed uint64) *Tensor {
	t := tensor.New(m.InputShape)
	t.FillRandom(seed, 1)
	return t
}

// LoadModel reconstructs a model saved with Model.Save — the persistence
// path for calibrated models (calibrate once, ship the artifact).
func LoadModel(r io.Reader) (*Model, error) { return models.Load(r) }

// CalibrationSet synthesizes n deterministic calibration inputs.
func CalibrationSet(m *Model, n int, seed uint64) []*Tensor {
	out := make([]*Tensor, n)
	for i := range out {
		out[i] = RandomInput(m, seed+uint64(i)*101)
	}
	return out
}

// Serving types: the inference server of cmd/mulayer-serve, exposed so
// library users can embed the HTTP API, device pool, and scheduler (see
// docs/serving.md).
type (
	// Server is the μLayer inference server: an HTTP JSON API over a pool
	// of simulated SoC devices with predictor-guided request scheduling,
	// bounded-queue admission control, and graceful drain.
	Server = server.Server
	// ServerConfig configures the server: listen address, device pool,
	// served models, queue depth, deadlines, and pacing time scale.
	ServerConfig = server.Config
	// SoCSpec names one device class of the pool and its worker count.
	SoCSpec = server.SoCSpec
	// InferRequest is the body of POST /v1/infer.
	InferRequest = server.InferRequest
	// InferResponse is the body of a successful /v1/infer reply.
	InferResponse = server.InferResponse
)

// NewServer builds an inference server (pool constructed, scheduler
// workers running) ready to ListenAndServe.
func NewServer(cfg ServerConfig) (*Server, error) { return server.New(cfg) }

// Experiments exposes the paper-reproduction harness: every figure and
// table of the evaluation as renderable text tables (see cmd/mulayer-bench
// and EXPERIMENTS.md).
type Experiments = experiments.Env

// NewExperiments builds the experiment environment (both SoCs profiled,
// the five full-size spec models loaded).
func NewExperiments() (*Experiments, error) { return experiments.NewEnv() }
