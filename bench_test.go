// Benchmarks that regenerate every table and figure of the paper's
// motivation and evaluation sections. Each BenchmarkFigure* prints its
// table once (so `go test -bench=.` reproduces the evaluation) and then
// times the harness itself. See EXPERIMENTS.md for paper-vs-measured
// numbers and DESIGN.md §4 for the experiment index.
package mulayer_test

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"testing"
	"time"

	"mulayer"
	"mulayer/internal/experiments"
	"mulayer/internal/server"
	"mulayer/internal/soc"
)

var (
	envOnce sync.Once
	env     *mulayer.Experiments
	printed sync.Map
)

func benchEnv(b *testing.B) *mulayer.Experiments {
	b.Helper()
	envOnce.Do(func() {
		e, err := mulayer.NewExperiments()
		if err != nil {
			b.Fatal(err)
		}
		env = e
	})
	return env
}

// renderOnce prints a table the first time its benchmark runs.
func renderOnce(id string, tab *experiments.Table) {
	if _, dup := printed.LoadOrStore(id, true); !dup {
		tab.Render(os.Stdout)
	}
}

func benchFigure(b *testing.B, id string, gen func() (*experiments.Table, error)) {
	e := benchEnv(b)
	_ = e
	for i := 0; i < b.N; i++ {
		tab, err := gen()
		if err != nil {
			b.Fatal(err)
		}
		renderOnce(id, tab)
	}
}

// BenchmarkFigure5PerLayerVGG16 regenerates Figure 5: per-layer VGG-16
// latency, CPU vs GPU, on both SoCs.
func BenchmarkFigure5PerLayerVGG16(b *testing.B) {
	benchFigure(b, "fig5", benchEnv(b).Figure5)
}

// BenchmarkFigure6SingleProcessor regenerates Figure 6: whole-network
// CPU-only vs GPU-only latency across the five NNs.
func BenchmarkFigure6SingleProcessor(b *testing.B) {
	benchFigure(b, "fig6", benchEnv(b).Figure6)
}

// BenchmarkFigure8Quantization regenerates Figure 8: the impact of F16 and
// QUInt8 on CPU and GPU latency.
func BenchmarkFigure8Quantization(b *testing.B) {
	benchFigure(b, "fig8", benchEnv(b).Figure8)
}

// BenchmarkFigure10Accuracy regenerates Figure 10 under the teacher-label
// substitution: top-5 agreement of F16, naive QUInt8, and range-calibrated
// QUInt8 with the F32 network.
func BenchmarkFigure10Accuracy(b *testing.B) {
	e := benchEnv(b)
	cfg := experiments.DefaultAccuracyConfig()
	for i := 0; i < b.N; i++ {
		tab, err := e.Figure10(cfg)
		if err != nil {
			b.Fatal(err)
		}
		renderOnce("fig10", tab)
	}
}

// BenchmarkFigure12BranchPotential regenerates Figure 12: CPU-only vs
// always-split cooperative vs optimal branch distribution on GoogLeNet's
// first Inception module.
func BenchmarkFigure12BranchPotential(b *testing.B) {
	benchFigure(b, "fig12", benchEnv(b).Figure12)
}

// BenchmarkFigure16Latency regenerates Figure 16: the headline latency
// comparison of single-processor, layer-to-processor, and μLayer.
func BenchmarkFigure16Latency(b *testing.B) {
	benchFigure(b, "fig16", benchEnv(b).Figure16)
}

// BenchmarkFigure17Ablation regenerates Figure 17: the incremental
// contribution of channel distribution, processor-friendly quantization,
// and branch distribution.
func BenchmarkFigure17Ablation(b *testing.B) {
	benchFigure(b, "fig17", benchEnv(b).Figure17)
}

// BenchmarkFigure18Energy regenerates Figure 18: per-inference energy for
// the same mechanism suite.
func BenchmarkFigure18Energy(b *testing.B) {
	benchFigure(b, "fig18", benchEnv(b).Figure18)
}

// BenchmarkTable1Applicability regenerates Table 1: the evaluated NNs and
// which μLayer mechanisms apply to each.
func BenchmarkTable1Applicability(b *testing.B) {
	benchFigure(b, "tab1", benchEnv(b).Table1)
}

// BenchmarkAblationSplitGranularity sweeps the split-ratio grid
// granularity (DESIGN.md §6).
func BenchmarkAblationSplitGranularity(b *testing.B) {
	benchFigure(b, "abl1", benchEnv(b).AblationSplitGranularity)
}

// BenchmarkAblationAsyncIssue measures §6's implementation optimizations:
// asynchronous GPU command issue and zero-copy memory on/off.
func BenchmarkAblationAsyncIssue(b *testing.B) {
	benchFigure(b, "abl2", benchEnv(b).AblationIssueAndMemory)
}

// BenchmarkAblationZeroCopy is an alias target kept for the DESIGN.md
// index; zero-copy is swept together with async issue in Ablation A2.
func BenchmarkAblationZeroCopy(b *testing.B) {
	benchFigure(b, "abl2b", benchEnv(b).AblationIssueAndMemory)
}

// BenchmarkAblationBranchDistribution isolates branch distribution on the
// branchy NNs across both SoCs.
func BenchmarkAblationBranchDistribution(b *testing.B) {
	benchFigure(b, "abl3", benchEnv(b).AblationBranchDistribution)
}

// BenchmarkExtensionThroughput regenerates the multi-input taxonomy table
// (the §2.2 / Figure 4 extension experiment).
func BenchmarkExtensionThroughput(b *testing.B) {
	e := benchEnv(b)
	for i := 0; i < b.N; i++ {
		tab, err := e.ExtensionThroughput(8)
		if err != nil {
			b.Fatal(err)
		}
		renderOnce("ext1", tab)
	}
}

// BenchmarkExtensionNPU regenerates the §8.3 NPU-extension table:
// three-way CPU+GPU+NPU μLayer vs two-way μLayer and NPU-only.
func BenchmarkExtensionNPU(b *testing.B) {
	benchFigure(b, "ext2", benchEnv(b).ExtensionNPU)
}

// BenchmarkExtensionPerChannel regenerates the per-channel weight
// quantization table (depthwise RMS error, the E3 extension).
func BenchmarkExtensionPerChannel(b *testing.B) {
	benchFigure(b, "ext3", benchEnv(b).ExtensionPerChannel)
}

// BenchmarkMuLayerInference times one end-to-end numeric μLayer inference
// (reduced GoogLeNet) through the public API — the closest thing to the
// runtime's own hot path.
func BenchmarkMuLayerInference(b *testing.B) {
	rt, err := mulayer.NewRuntime(mulayer.Exynos7420())
	if err != nil {
		b.Fatal(err)
	}
	m, err := mulayer.GoogLeNet(mulayer.ModelConfig{Numeric: true, InputHW: 32, WidthScale: 0.25, Classes: 10, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	if err := m.Calibrate(mulayer.CalibrationSet(m, 2, 9)); err != nil {
		b.Fatal(err)
	}
	in := mulayer.RandomInput(m, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rt.Run(m, in, mulayer.RunConfig{Mechanism: mulayer.MechMuLayer, Numeric: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// benchServing times one request through the full serving path (HTTP →
// admission → scheduler → fused execution) under the given config.
func benchServing(b *testing.B, cfg server.Config) {
	cfg.SoCs = []server.SoCSpec{{Name: "high", SoC: soc.Exynos7420, Workers: 2}}
	s, err := server.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	b.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	body, _ := json.Marshal(server.InferRequest{Model: "lenet5", Mechanism: "mulayer"})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Post(ts.URL+"/v1/infer", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
	}
}

// BenchmarkServing is the tracing-off serving baseline: the executor's
// trace hook is nil and the head sampler is disabled, so this must not
// regress when tracing features land.
func BenchmarkServing(b *testing.B) {
	benchServing(b, server.Config{})
}

// BenchmarkServingTraced measures the fully-traced path (every request
// sampled into the ring) for comparison against BenchmarkServing.
func BenchmarkServingTraced(b *testing.B) {
	benchServing(b, server.Config{TraceSample: 1})
}

// BenchmarkPlanOnly times plan construction (partitioner + predictor) for
// the full-size GoogLeNet.
func BenchmarkPlanOnly(b *testing.B) {
	rt, err := mulayer.NewRuntime(mulayer.Exynos7420())
	if err != nil {
		b.Fatal(err)
	}
	m, err := mulayer.GoogLeNet(mulayer.ModelConfig{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rt.Plan(m, mulayer.RunConfig{Mechanism: mulayer.MechMuLayer}); err != nil {
			b.Fatal(err)
		}
	}
}
