// Command mulayer-profile prints per-layer device profiles for a network —
// the data the latency predictor is fitted on — plus the predictor's fit
// quality per op class, mirroring the offline profiling pass of §6.
//
// Usage:
//
//	mulayer-profile -model vgg16 -soc high
//	mulayer-profile -fit            # predictor fit-error summary only
package main

import (
	"flag"
	"fmt"
	"log"

	"mulayer"
	"mulayer/internal/graph"
	"mulayer/internal/models"
	"mulayer/internal/nn"
	"mulayer/internal/partition"
	"mulayer/internal/profile"
	"mulayer/internal/tensor"
)

var modelBuilders = map[string]func(models.Config) (*models.Model, error){
	"lenet5":      mulayer.LeNet5,
	"alexnet":     mulayer.AlexNet,
	"vgg16":       mulayer.VGG16,
	"googlenet":   mulayer.GoogLeNet,
	"squeezenet":  mulayer.SqueezeNetV11,
	"mobilenet":   mulayer.MobileNetV1,
	"resnet18":    mulayer.ResNet18,
	"inception3a": mulayer.Inception3a,
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("mulayer-profile: ")
	modelName := flag.String("model", "vgg16", "network to profile")
	socName := flag.String("soc", "high", "SoC: high or mid")
	fitOnly := flag.Bool("fit", false, "print only the predictor fit-error summary")
	flag.Parse()

	var s *mulayer.SoC
	switch *socName {
	case "high":
		s = mulayer.Exynos7420()
	case "mid":
		s = mulayer.Exynos7880()
	default:
		log.Fatalf("unknown SoC %q", *socName)
	}
	pred := profile.Build(s.CPU, s.GPU)

	if *fitOnly {
		fmt.Printf("predictor fit (geomean relative error vs the device model), %s:\n", s.Name)
		for _, kind := range []nn.OpKind{nn.OpConv, nn.OpDepthwise, nn.OpFC, nn.OpMaxPool} {
			for _, dt := range []mulayer.DataType{mulayer.F32, mulayer.QUInt8} {
				fmt.Printf("  %-8s %-7v cpu %5.1f%%  gpu %5.1f%%\n", kind, dt,
					profile.FitError(pred, s.CPU, kind, dt)*100,
					profile.FitError(pred, s.GPU, kind, dt)*100)
			}
		}
		return
	}

	build, ok := modelBuilders[*modelName]
	if !ok {
		log.Fatalf("unknown model %q", *modelName)
	}
	m, err := build(models.Config{})
	if err != nil {
		log.Fatal(err)
	}
	shapes, err := m.Graph.InferShapes()
	if err != nil {
		log.Fatal(err)
	}

	pipe := partition.ProcessorFriendly()
	fmt.Printf("%s per-layer profile on %s (CPU: QUInt8, GPU: F16-from-QUInt8)\n", m.Name, s.Name)
	fmt.Printf("%-28s %-8s %12s %12s %12s %8s\n", "layer", "kind", "MACs", "cpu(ms)", "gpu(ms)", "pred/dev")
	for i := 0; i < m.Graph.Len(); i++ {
		n := m.Graph.Node(graph.NodeID(i))
		if n.Layer.Kind() == nn.OpInput {
			continue
		}
		c := n.Layer.Cost(m.Graph.InputShapes(n.ID, shapes))
		cpuT := s.CPU.KernelTime(pipe.Work(partition.ProcCPU, n.Layer.Kind(), c, 0))
		gpuT := s.GPU.KernelTime(pipe.Work(partition.ProcGPU, n.Layer.Kind(), c, 0))
		predT := pred.Predict(s.CPU.Name, n.Layer.Kind(), tensor.QUInt8, false, c)
		ratio := 0.0
		if cpuT > 0 {
			ratio = float64(predT) / float64(cpuT)
		}
		fmt.Printf("%-28s %-8s %12d %12.3f %12.3f %8.2f\n",
			n.Layer.Name(), n.Layer.Kind(), c.MACs,
			float64(cpuT)/1e6, float64(gpuT)/1e6, ratio)
	}
}
