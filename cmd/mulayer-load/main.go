// Command mulayer-load drives a running mulayer-serve at a configurable
// offered load and prints achieved throughput and wall-latency
// percentiles — the reproducible benchmark for the serving path (see
// docs/serving.md for the saturation experiment it supports).
//
// It is an open-loop generator: requests fire on a fixed interval derived
// from -qps regardless of how fast replies come back, so queueing at the
// server shows up as latency rather than reduced offered load.
//
// Usage:
//
//	mulayer-load -addr http://localhost:8080 -model googlenet -qps 50 -duration 10s
//	mulayer-load -model googlenet,squeezenet -mech mulayer -qps 200 -duration 30s -timeout 1s
//	mulayer-load -model lenet5 -qps 2000 -batch 4        # batched traffic: 4 rows per request
//
// With -batch N each request carries N input rows, exercising the
// server's fused micro-batching; goodput is then reported in rows/s as
// well as requests/s.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

type inferRequest struct {
	Model     string `json:"model"`
	Mechanism string `json:"mechanism,omitempty"`
	SoC       string `json:"soc,omitempty"`
	TimeoutMS int    `json:"timeout_ms,omitempty"`
	Batch     int    `json:"batch,omitempty"`
}

type sample struct {
	wall time.Duration
	// queueWait is the server-reported admission-to-dispatch wait (200s
	// only) — printed as the same percentile summary /statusz serves.
	queueWait time.Duration
	code      int
	err       bool
}

func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("mulayer-load: ")
	addr := flag.String("addr", "http://localhost:8080", "server base URL")
	modelsFlag := flag.String("model", "googlenet", "model name(s), comma-separated (round-robin)")
	mech := flag.String("mech", "mulayer", "execution mechanism")
	socClass := flag.String("soc", "", "pin requests to one SoC class (empty = any)")
	qps := flag.Float64("qps", 20, "offered load in requests per second")
	duration := flag.Duration("duration", 10*time.Second, "run length")
	timeout := flag.Duration("timeout", 2*time.Second, "per-request deadline")
	batch := flag.Int("batch", 1, "input rows per request (exercises server-side micro-batching)")
	flag.Parse()

	if *qps <= 0 {
		log.Fatal("-qps must be positive")
	}
	if *batch < 1 {
		log.Fatal("-batch must be at least 1")
	}
	base := *addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	models := strings.Split(*modelsFlag, ",")
	client := &http.Client{Timeout: *timeout + time.Second}
	interval := time.Duration(float64(time.Second) / *qps)

	var (
		mu      sync.Mutex
		samples []sample
		wg      sync.WaitGroup
	)
	fire := func(model string) {
		defer wg.Done()
		body, _ := json.Marshal(inferRequest{
			Model:     model,
			Mechanism: *mech,
			SoC:       *socClass,
			TimeoutMS: int(*timeout / time.Millisecond),
			Batch:     *batch,
		})
		start := time.Now()
		resp, err := client.Post(base+"/v1/infer", "application/json", bytes.NewReader(body))
		s := sample{wall: time.Since(start)}
		if err != nil {
			s.err = true
		} else {
			data, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			s.code = resp.StatusCode
			if s.code == http.StatusOK {
				var rep struct {
					QueueWaitUS float64 `json:"queue_wait_us"`
				}
				if json.Unmarshal(data, &rep) == nil {
					s.queueWait = time.Duration(rep.QueueWaitUS * float64(time.Microsecond))
				}
			}
		}
		mu.Lock()
		samples = append(samples, s)
		mu.Unlock()
	}

	log.Printf("offering %.1f qps of %s for %v against %s", *qps, *modelsFlag, *duration, base)
	start := time.Now()
	tick := time.NewTicker(interval)
	defer tick.Stop()
	var sent int
	for time.Since(start) < *duration {
		<-tick.C
		wg.Add(1)
		go fire(models[sent%len(models)])
		sent++
	}
	wg.Wait()
	elapsed := time.Since(start)

	byCode := map[int]int{}
	var netErrs int
	var okLat, okWait []time.Duration
	for _, s := range samples {
		if s.err {
			netErrs++
			continue
		}
		byCode[s.code]++
		if s.code == http.StatusOK {
			okLat = append(okLat, s.wall)
			okWait = append(okWait, s.queueWait)
		}
	}
	sort.Slice(okLat, func(i, j int) bool { return okLat[i] < okLat[j] })
	sort.Slice(okWait, func(i, j int) bool { return okWait[i] < okWait[j] })

	fmt.Printf("sent          %d in %v (offered %.1f qps)\n", sent, elapsed.Round(time.Millisecond), float64(sent)/elapsed.Seconds())
	fmt.Printf("completed 2xx %d (%.1f qps goodput, %.1f rows/s)\n",
		byCode[200], float64(byCode[200])/elapsed.Seconds(), float64(byCode[200]**batch)/elapsed.Seconds())
	codes := make([]int, 0, len(byCode))
	for c := range byCode {
		codes = append(codes, c)
	}
	sort.Ints(codes)
	for _, c := range codes {
		if c != 200 {
			fmt.Printf("status %d    %d\n", c, byCode[c])
		}
	}
	if netErrs > 0 {
		fmt.Printf("transport err %d\n", netErrs)
	}
	if len(okLat) > 0 {
		// Same p50/p95/p99 summary the server exposes in /statusz, so a
		// load run and a status scrape line up.
		fmt.Printf("latency    p50=%v p95=%v p99=%v max=%v\n",
			percentile(okLat, 0.50).Round(time.Microsecond),
			percentile(okLat, 0.95).Round(time.Microsecond),
			percentile(okLat, 0.99).Round(time.Microsecond),
			okLat[len(okLat)-1].Round(time.Microsecond))
		fmt.Printf("queue-wait p50=%v p95=%v p99=%v max=%v\n",
			percentile(okWait, 0.50).Round(time.Microsecond),
			percentile(okWait, 0.95).Round(time.Microsecond),
			percentile(okWait, 0.99).Round(time.Microsecond),
			okWait[len(okWait)-1].Round(time.Microsecond))
	}
}
