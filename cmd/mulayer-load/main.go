// Command mulayer-load drives a running mulayer-serve at a configurable
// offered load and prints achieved throughput and wall-latency
// percentiles — the reproducible benchmark for the serving path (see
// docs/serving.md for the saturation experiment it supports).
//
// It is an open-loop generator: requests fire on a fixed interval derived
// from -qps regardless of how fast replies come back, so queueing at the
// server shows up as latency rather than reduced offered load.
//
// Usage:
//
//	mulayer-load -addr http://localhost:8080 -model googlenet -qps 50 -duration 10s
//	mulayer-load -model googlenet,squeezenet -mech mulayer -qps 200 -duration 30s -timeout 1s
//	mulayer-load -model lenet5 -qps 2000 -batch 4        # batched traffic: 4 rows per request
//	mulayer-load -addr :8081,:8082,:8083 -qps 300        # fleet: round-robin targets
//	mulayer-load -json BENCH_serving.json                # machine-readable summary
//
// With -batch N each request carries N input rows, exercising the
// server's fused micro-batching; goodput is then reported in rows/s as
// well as requests/s.
//
// With -priority high,low requests round-robin through priority classes
// and the summary adds a per-class table (sent, 2xx, shed, availability,
// latency percentiles) — the view of the server's brownout ladder
// shedding from the bottom class up. -min-availability F exits non-zero
// when the top class present falls below F (the overload-smoke gate).
//
// With -addr A,B,C requests round-robin across several targets (backends
// directly, or frontends) and the summary adds a per-target table with
// each target's availability and latency — the view of fleet balance.
// With -json FILE the whole summary is also written as one JSON object
// (the bench-serving artifact).
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"mulayer/internal/server"
)

type inferRequest struct {
	Model     string `json:"model"`
	Mechanism string `json:"mechanism,omitempty"`
	SoC       string `json:"soc,omitempty"`
	TimeoutMS int    `json:"timeout_ms,omitempty"`
	Batch     int    `json:"batch,omitempty"`
	Priority  string `json:"priority,omitempty"`
}

type sample struct {
	wall time.Duration
	// queueWait is the server-reported admission-to-dispatch wait (200s
	// only) — printed as the same percentile summary /statusz serves.
	queueWait time.Duration
	code      int
	err       bool
	priority  string
	target    string
}

func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("mulayer-load: ")
	addr := flag.String("addr", "http://localhost:8080", "server base URL(s), comma-separated (round-robin)")
	modelsFlag := flag.String("model", "googlenet", "model name(s), comma-separated (round-robin)")
	mech := flag.String("mech", "mulayer", "execution mechanism")
	socClass := flag.String("soc", "", "pin requests to one SoC class (empty = any)")
	qps := flag.Float64("qps", 20, "offered load in requests per second")
	duration := flag.Duration("duration", 10*time.Second, "run length")
	timeout := flag.Duration("timeout", 2*time.Second, "per-request deadline")
	batch := flag.Int("batch", 1, "input rows per request (exercises server-side micro-batching)")
	prioFlag := flag.String("priority", "", "priority class(es), comma-separated (round-robin): high, normal, low (empty = server default)")
	minAvail := flag.Float64("min-availability", 0, "exit non-zero when the top priority class's 2xx availability falls below this fraction (0 = no gate)")
	jsonOut := flag.String("json", "", "also write the run summary as JSON to this file (empty = off)")
	flag.Parse()

	if *qps <= 0 {
		log.Fatal("-qps must be positive")
	}
	if *batch < 1 {
		log.Fatal("-batch must be at least 1")
	}
	if *minAvail < 0 || *minAvail > 1 {
		log.Fatal("-min-availability must be in [0, 1]")
	}
	priorities := []string{""}
	if *prioFlag != "" {
		priorities = strings.Split(*prioFlag, ",")
		for _, p := range priorities {
			if _, err := server.ParsePriority(p); err != nil {
				log.Fatal(err)
			}
		}
	}
	var targets []string
	for _, a := range strings.Split(*addr, ",") {
		a = strings.TrimSpace(a)
		if a == "" {
			continue
		}
		if !strings.Contains(a, "://") {
			a = "http://" + a
		}
		targets = append(targets, a)
	}
	if len(targets) == 0 {
		log.Fatal("-addr names no targets")
	}
	models := strings.Split(*modelsFlag, ",")
	client := &http.Client{Timeout: *timeout + time.Second}
	interval := time.Duration(float64(time.Second) / *qps)

	var (
		mu      sync.Mutex
		samples []sample
		wg      sync.WaitGroup
	)
	fire := func(model, prio, target string) {
		defer wg.Done()
		body, _ := json.Marshal(inferRequest{
			Model:     model,
			Mechanism: *mech,
			SoC:       *socClass,
			TimeoutMS: int(*timeout / time.Millisecond),
			Batch:     *batch,
			Priority:  prio,
		})
		start := time.Now()
		resp, err := client.Post(target+"/v1/infer", "application/json", bytes.NewReader(body))
		s := sample{wall: time.Since(start), priority: prio, target: target}
		if err != nil {
			s.err = true
		} else {
			data, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			s.code = resp.StatusCode
			if s.code == http.StatusOK {
				var rep struct {
					QueueWaitUS float64 `json:"queue_wait_us"`
				}
				if json.Unmarshal(data, &rep) == nil {
					s.queueWait = time.Duration(rep.QueueWaitUS * float64(time.Microsecond))
				}
			}
		}
		mu.Lock()
		samples = append(samples, s)
		mu.Unlock()
	}

	log.Printf("offering %.1f qps of %s for %v against %s", *qps, *modelsFlag, *duration, strings.Join(targets, ", "))
	start := time.Now()
	tick := time.NewTicker(interval)
	defer tick.Stop()
	var sent int
	for time.Since(start) < *duration {
		<-tick.C
		wg.Add(1)
		go fire(models[sent%len(models)], priorities[sent%len(priorities)], targets[sent%len(targets)])
		sent++
	}
	wg.Wait()
	elapsed := time.Since(start)

	byCode := map[int]int{}
	var netErrs int
	var okLat, okWait []time.Duration
	for _, s := range samples {
		if s.err {
			netErrs++
			continue
		}
		byCode[s.code]++
		if s.code == http.StatusOK {
			okLat = append(okLat, s.wall)
			okWait = append(okWait, s.queueWait)
		}
	}
	sort.Slice(okLat, func(i, j int) bool { return okLat[i] < okLat[j] })
	sort.Slice(okWait, func(i, j int) bool { return okWait[i] < okWait[j] })

	fmt.Printf("sent          %d in %v (offered %.1f qps)\n", sent, elapsed.Round(time.Millisecond), float64(sent)/elapsed.Seconds())
	fmt.Printf("completed 2xx %d (%.1f qps goodput, %.1f rows/s)\n",
		byCode[200], float64(byCode[200])/elapsed.Seconds(), float64(byCode[200]**batch)/elapsed.Seconds())
	codes := make([]int, 0, len(byCode))
	for c := range byCode {
		codes = append(codes, c)
	}
	sort.Ints(codes)
	for _, c := range codes {
		if c != 200 {
			fmt.Printf("status %d    %d\n", c, byCode[c])
		}
	}
	if netErrs > 0 {
		fmt.Printf("transport err %d\n", netErrs)
	}
	if len(okLat) > 0 {
		// Same p50/p95/p99 summary the server exposes in /statusz, so a
		// load run and a status scrape line up.
		fmt.Printf("latency    p50=%v p95=%v p99=%v max=%v\n",
			percentile(okLat, 0.50).Round(time.Microsecond),
			percentile(okLat, 0.95).Round(time.Microsecond),
			percentile(okLat, 0.99).Round(time.Microsecond),
			okLat[len(okLat)-1].Round(time.Microsecond))
		fmt.Printf("queue-wait p50=%v p95=%v p99=%v max=%v\n",
			percentile(okWait, 0.50).Round(time.Microsecond),
			percentile(okWait, 0.95).Round(time.Microsecond),
			percentile(okWait, 0.99).Round(time.Microsecond),
			okWait[len(okWait)-1].Round(time.Microsecond))
	}

	// Per-priority-class breakdown: under the server's brownout ladder the
	// shed rate should climb from the bottom class up while the top class
	// keeps its availability.
	type classStats struct {
		sent, ok, shed int
		lat            []time.Duration
	}
	byClass := map[string]*classStats{}
	for _, s := range samples {
		cs := byClass[s.priority]
		if cs == nil {
			cs = &classStats{}
			byClass[s.priority] = cs
		}
		cs.sent++
		switch {
		case s.err:
		case s.code == http.StatusOK:
			cs.ok++
			cs.lat = append(cs.lat, s.wall)
		case s.code == http.StatusServiceUnavailable:
			cs.shed++
		}
	}
	classes := make([]string, 0, len(byClass))
	for c := range byClass {
		classes = append(classes, c)
	}
	sort.Slice(classes, func(i, j int) bool {
		a, _ := server.ParsePriority(classes[i])
		b, _ := server.ParsePriority(classes[j])
		return a < b
	})
	if len(classes) > 1 || classes[0] != "" {
		fmt.Printf("%-10s %7s %7s %7s %7s %10s %10s %10s\n",
			"priority", "sent", "2xx", "shed", "avail", "p50", "p95", "p99")
		for _, c := range classes {
			cs := byClass[c]
			sort.Slice(cs.lat, func(i, j int) bool { return cs.lat[i] < cs.lat[j] })
			label := c
			if label == "" {
				label = "(default)"
			}
			fmt.Printf("%-10s %7d %7d %7d %6.1f%% %10v %10v %10v\n",
				label, cs.sent, cs.ok, cs.shed,
				100*float64(cs.ok)/float64(cs.sent),
				percentile(cs.lat, 0.50).Round(time.Microsecond),
				percentile(cs.lat, 0.95).Round(time.Microsecond),
				percentile(cs.lat, 0.99).Round(time.Microsecond))
		}
	}
	// Per-target breakdown: with several -addr targets this is the view
	// of fleet balance — each target's share, availability, and latency.
	type targetStats struct {
		sent, ok, errs int
		lat            []time.Duration
	}
	byTarget := map[string]*targetStats{}
	for _, s := range samples {
		ts := byTarget[s.target]
		if ts == nil {
			ts = &targetStats{}
			byTarget[s.target] = ts
		}
		ts.sent++
		switch {
		case s.err:
			ts.errs++
		case s.code == http.StatusOK:
			ts.ok++
			ts.lat = append(ts.lat, s.wall)
		}
	}
	targetNames := make([]string, 0, len(byTarget))
	for tgt := range byTarget {
		targetNames = append(targetNames, tgt)
	}
	sort.Strings(targetNames)
	if len(targetNames) > 1 {
		fmt.Printf("%-28s %7s %7s %7s %7s %10s %10s\n",
			"target", "sent", "2xx", "err", "avail", "p50", "p95")
		for _, tgt := range targetNames {
			ts := byTarget[tgt]
			sort.Slice(ts.lat, func(i, j int) bool { return ts.lat[i] < ts.lat[j] })
			fmt.Printf("%-28s %7d %7d %7d %6.1f%% %10v %10v\n",
				tgt, ts.sent, ts.ok, ts.errs,
				100*float64(ts.ok)/float64(ts.sent),
				percentile(ts.lat, 0.50).Round(time.Microsecond),
				percentile(ts.lat, 0.95).Round(time.Microsecond))
		}
	}

	if *jsonOut != "" {
		ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
		type latSummary struct {
			P50MS float64 `json:"p50_ms"`
			P95MS float64 `json:"p95_ms"`
			P99MS float64 `json:"p99_ms"`
			MaxMS float64 `json:"max_ms"`
		}
		latOf := func(sorted []time.Duration) latSummary {
			out := latSummary{
				P50MS: ms(percentile(sorted, 0.50)),
				P95MS: ms(percentile(sorted, 0.95)),
				P99MS: ms(percentile(sorted, 0.99)),
			}
			if len(sorted) > 0 {
				out.MaxMS = ms(sorted[len(sorted)-1])
			}
			return out
		}
		type targetSummary struct {
			Target       string     `json:"target"`
			Sent         int        `json:"sent"`
			OK           int        `json:"ok"`
			TransportErr int        `json:"transport_errors"`
			Availability float64    `json:"availability"`
			Latency      latSummary `json:"latency"`
		}
		summary := struct {
			Targets      []string        `json:"targets"`
			Models       string          `json:"models"`
			OfferedQPS   float64         `json:"offered_qps"`
			DurationSec  float64         `json:"duration_sec"`
			Batch        int             `json:"batch"`
			Sent         int             `json:"sent"`
			OK           int             `json:"ok"`
			TransportErr int             `json:"transport_errors"`
			ByCode       map[string]int  `json:"by_code"`
			GoodputQPS   float64         `json:"goodput_qps"`
			GoodputRows  float64         `json:"goodput_rows_per_sec"`
			Availability float64         `json:"availability"`
			Latency      latSummary      `json:"latency"`
			QueueWait    latSummary      `json:"queue_wait"`
			PerTarget    []targetSummary `json:"per_target,omitempty"`
		}{
			Targets:      targets,
			Models:       *modelsFlag,
			OfferedQPS:   *qps,
			DurationSec:  elapsed.Seconds(),
			Batch:        *batch,
			Sent:         sent,
			OK:           byCode[200],
			TransportErr: netErrs,
			ByCode:       map[string]int{},
			GoodputQPS:   float64(byCode[200]) / elapsed.Seconds(),
			GoodputRows:  float64(byCode[200]**batch) / elapsed.Seconds(),
			Availability: float64(byCode[200]) / float64(max(sent, 1)),
			Latency:      latOf(okLat),
			QueueWait:    latOf(okWait),
		}
		for c, n := range byCode {
			summary.ByCode[fmt.Sprint(c)] = n
		}
		if len(targetNames) > 1 {
			for _, tgt := range targetNames {
				ts := byTarget[tgt]
				summary.PerTarget = append(summary.PerTarget, targetSummary{
					Target:       tgt,
					Sent:         ts.sent,
					OK:           ts.ok,
					TransportErr: ts.errs,
					Availability: float64(ts.ok) / float64(max(ts.sent, 1)),
					Latency:      latOf(ts.lat),
				})
			}
		}
		data, err := json.MarshalIndent(summary, "", "  ")
		if err != nil {
			log.Fatalf("-json: %v", err)
		}
		if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
			log.Fatalf("-json: %v", err)
		}
		log.Printf("summary written to %s", *jsonOut)
	}

	if *minAvail > 0 && len(classes) > 0 {
		top := byClass[classes[0]]
		avail := float64(top.ok) / float64(top.sent)
		if avail < *minAvail {
			log.Fatalf("top priority class %q availability %.3f below the -min-availability floor %.3f",
				classes[0], avail, *minAvail)
		}
		log.Printf("top priority class %q availability %.3f meets the %.3f floor", classes[0], avail, *minAvail)
	}
}
