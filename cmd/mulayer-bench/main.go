// Command mulayer-bench regenerates the paper's tables and figures as
// text tables (DESIGN.md §4 maps each to the paper).
//
// Usage:
//
//	mulayer-bench                 # every latency/energy figure + Table 1
//	mulayer-bench -fig 16         # one figure
//	mulayer-bench -fig 10         # the (slower) numeric accuracy figure
//	mulayer-bench -ablations      # the design-choice ablations
//	mulayer-bench -all            # everything, including Figure 10
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"mulayer"
	"mulayer/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mulayer-bench: ")
	fig := flag.String("fig", "", "render one figure/table: 5, 6, 8, 10, 12, 16, 17, 18, or t1")
	ablations := flag.Bool("ablations", false, "render the design-choice ablations")
	extensions := flag.Bool("extensions", false, "render the extension experiments (batch taxonomy, NPU)")
	all := flag.Bool("all", false, "render everything, including the numeric Figure 10")
	samples := flag.Int("samples", 0, "override the Figure 10 sample count")
	flag.Parse()

	env, err := mulayer.NewExperiments()
	if err != nil {
		log.Fatal(err)
	}

	type entry struct {
		id  string
		gen func() (*experiments.Table, error)
	}
	fig10 := func() (*experiments.Table, error) {
		cfg := experiments.DefaultAccuracyConfig()
		if *samples > 0 {
			cfg.Samples = *samples
		}
		return env.Figure10(cfg)
	}
	std := []entry{
		{"5", env.Figure5},
		{"6", env.Figure6},
		{"8", env.Figure8},
		{"12", env.Figure12},
		{"16", env.Figure16},
		{"17", env.Figure17},
		{"18", env.Figure18},
		{"t1", env.Table1},
	}
	abl := []entry{
		{"a1", env.AblationSplitGranularity},
		{"a2", env.AblationIssueAndMemory},
		{"a3", env.AblationBranchDistribution},
	}
	ext := []entry{
		{"e1", func() (*experiments.Table, error) { return env.ExtensionThroughput(8) }},
		{"e2", env.ExtensionNPU},
		{"e3", env.ExtensionPerChannel},
	}

	render := func(e entry) {
		tab, err := e.gen()
		if err != nil {
			log.Fatalf("figure %s: %v", e.id, err)
		}
		tab.Render(os.Stdout)
	}

	switch {
	case *fig != "":
		if *fig == "10" {
			render(entry{"10", fig10})
			return
		}
		for _, e := range append(append(std, abl...), ext...) {
			if e.id == *fig {
				render(e)
				return
			}
		}
		log.Fatalf("unknown figure %q (want 5, 6, 8, 10, 12, 16, 17, 18, t1, a1, a2, a3, e1, e2, e3)", *fig)
	case *ablations:
		for _, e := range abl {
			render(e)
		}
	case *extensions:
		for _, e := range ext {
			render(e)
		}
	case *all:
		for _, e := range std {
			render(e)
		}
		render(entry{"10", fig10})
		for _, e := range abl {
			render(e)
		}
		for _, e := range ext {
			render(e)
		}
	default:
		for _, e := range std {
			render(e)
		}
		fmt.Println("(run with -fig 10 for the numeric accuracy figure, -ablations for the design-choice sweeps, -extensions for the batch/NPU/per-channel extensions)")
	}
}
