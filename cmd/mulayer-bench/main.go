// Command mulayer-bench regenerates the paper's tables and figures as
// text tables (DESIGN.md §4 maps each to the paper).
//
// Usage:
//
//	mulayer-bench                 # every latency/energy figure + Table 1
//	mulayer-bench -fig 16         # one figure
//	mulayer-bench -fig 10         # the (slower) numeric accuracy figure
//	mulayer-bench -ablations      # the design-choice ablations
//	mulayer-bench -all            # everything, including Figure 10
//	mulayer-bench -gemm           # kernel microbenchmark -> BENCH_gemm.json
//	mulayer-bench -gemm-verify f  # validate an existing BENCH_gemm.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"mulayer"
	"mulayer/internal/experiments"
	"mulayer/internal/gemmbench"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mulayer-bench: ")
	fig := flag.String("fig", "", "render one figure/table: 5, 6, 8, 10, 12, 16, 17, 18, or t1")
	ablations := flag.Bool("ablations", false, "render the design-choice ablations")
	extensions := flag.Bool("extensions", false, "render the extension experiments (batch taxonomy, NPU)")
	all := flag.Bool("all", false, "render everything, including the numeric Figure 10")
	samples := flag.Int("samples", 0, "override the Figure 10 sample count")
	gemmBench := flag.Bool("gemm", false, "run the packed-vs-reference GEMM kernel benchmark")
	gemmOut := flag.String("gemm-out", "BENCH_gemm.json", "output path for -gemm")
	gemmShort := flag.Bool("gemm-short", false, "with -gemm: CI-sized smoke configuration")
	gemmVerify := flag.String("gemm-verify", "", "validate an existing BENCH_gemm.json and exit")
	flag.Parse()

	// The GEMM kernel modes stand alone: they need no weights, dataset,
	// or device models, so handle them before building the experiments
	// environment.
	if *gemmVerify != "" {
		data, err := os.ReadFile(*gemmVerify)
		if err != nil {
			log.Fatal(err)
		}
		if err := gemmbench.Validate(data); err != nil {
			log.Fatalf("%s: %v", *gemmVerify, err)
		}
		fmt.Printf("%s: ok\n", *gemmVerify)
		return
	}
	if *gemmBench {
		cfg := gemmbench.DefaultConfig()
		if *gemmShort {
			cfg = gemmbench.SmokeConfig()
		}
		rep, err := gemmbench.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		data = append(data, '\n')
		if err := gemmbench.Validate(data); err != nil {
			log.Fatalf("generated report fails validation: %v", err)
		}
		if err := os.WriteFile(*gemmOut, data, 0o644); err != nil {
			log.Fatal(err)
		}
		for _, r := range rep.Shapes {
			fmt.Printf("%-4s %-24s m=%-5d k=%-6d n=%-6d  q: %6.2f -> %6.2f GOPS (%.2fx)  f32: %6.2f -> %6.2f GFLOPS (%.2fx)\n",
				r.Kind, r.Model+"/"+r.Layer, r.M, r.K, r.N,
				r.QRefGOPS, r.QPackedGOPS, r.QSpeedup,
				r.F32RefGFLOPS, r.F32PackedGFLOPS, r.F32Speedup)
		}
		fmt.Printf("summary: q conv max %.2fx, q fc max %.2fx, q geomean %.2fx, f32 geomean %.2fx -> %s\n",
			rep.Summary.QSpeedupConvMax, rep.Summary.QSpeedupFCMax,
			rep.Summary.QSpeedupGeoMean, rep.Summary.F32SpeedupGeo, *gemmOut)
		return
	}

	env, err := mulayer.NewExperiments()
	if err != nil {
		log.Fatal(err)
	}

	type entry struct {
		id  string
		gen func() (*experiments.Table, error)
	}
	fig10 := func() (*experiments.Table, error) {
		cfg := experiments.DefaultAccuracyConfig()
		if *samples > 0 {
			cfg.Samples = *samples
		}
		return env.Figure10(cfg)
	}
	std := []entry{
		{"5", env.Figure5},
		{"6", env.Figure6},
		{"8", env.Figure8},
		{"12", env.Figure12},
		{"16", env.Figure16},
		{"17", env.Figure17},
		{"18", env.Figure18},
		{"t1", env.Table1},
	}
	abl := []entry{
		{"a1", env.AblationSplitGranularity},
		{"a2", env.AblationIssueAndMemory},
		{"a3", env.AblationBranchDistribution},
	}
	ext := []entry{
		{"e1", func() (*experiments.Table, error) { return env.ExtensionThroughput(8) }},
		{"e2", env.ExtensionNPU},
		{"e3", env.ExtensionPerChannel},
	}

	render := func(e entry) {
		tab, err := e.gen()
		if err != nil {
			log.Fatalf("figure %s: %v", e.id, err)
		}
		tab.Render(os.Stdout)
	}

	switch {
	case *fig != "":
		if *fig == "10" {
			render(entry{"10", fig10})
			return
		}
		for _, e := range append(append(std, abl...), ext...) {
			if e.id == *fig {
				render(e)
				return
			}
		}
		log.Fatalf("unknown figure %q (want 5, 6, 8, 10, 12, 16, 17, 18, t1, a1, a2, a3, e1, e2, e3)", *fig)
	case *ablations:
		for _, e := range abl {
			render(e)
		}
	case *extensions:
		for _, e := range ext {
			render(e)
		}
	case *all:
		for _, e := range std {
			render(e)
		}
		render(entry{"10", fig10})
		for _, e := range abl {
			render(e)
		}
		for _, e := range ext {
			render(e)
		}
	default:
		for _, e := range std {
			render(e)
		}
		fmt.Println("(run with -fig 10 for the numeric accuracy figure, -ablations for the design-choice sweeps, -extensions for the batch/NPU/per-channel extensions)")
	}
}
