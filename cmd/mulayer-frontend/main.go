// Command mulayer-frontend runs the μLayer fleet frontend: an HTTP
// proxy that routes /v1/infer over many mulayer-serve backends with
// per-model affinity routing, predicted-load spill, hedged requests,
// and transport-failure failover.
//
// Usage:
//
//	mulayer-frontend -backends http://127.0.0.1:8081,http://127.0.0.1:8082
//	mulayer-frontend -backends-file fleet.txt          # SIGHUP re-reads it
//	mulayer-frontend -hedge-budget 0.1 -max-attempts 3
//
// Endpoints:
//
//	POST /v1/infer        proxied to the routed backend (same body/reply)
//	GET  /v1/models       proxied from a healthy backend
//	GET  /healthz         liveness
//	GET  /readyz          503 until at least one backend is healthy
//	GET  /statusz         fleet view: per-backend health, load, hedging (JSON)
//	GET  /metrics         mulayer_frontend_* Prometheus text format
//	GET  /admin/backends  backend registry snapshot (JSON)
//	POST /admin/backends  {"action":"add|drain|undrain|remove","url":"..."}
//	POST /admin/reload    re-read -backends-file (add new, drain delisted)
//
// Routing: per-model rendezvous hashing concentrates each model on a
// stable few replicas (plan-cache and batch-fusion affinity); when the
// affinity choice's predicted load — the backend-reported predicted
// wait from /statusz.json plus a per-outstanding-request charge —
// exceeds the least-loaded replica's by both -spill-factor and
// -spill-margin, the request spills. After a p95-derived hedge delay a budgeted second
// attempt races the next-ranked replica; transport failures fail over;
// backend 503s pass through untouched. See docs/serving.md.
//
// Gray failures: a backend whose served-latency p95 exceeds
// -eject-factor times the fleet median for -eject-hold is ejected from
// rotation and readmitted via the quarantine half-open probe; replies
// failing the X-Mulayer-Checksum / body-length integrity check are
// never delivered — the leg fails over like any transport error.
// -net-faults arms a deterministic network fault injector on the
// backend transport for chaos drills (see internal/faults/netfaults).
package main

import (
	"context"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"mulayer/internal/faults/netfaults"
	"mulayer/internal/frontend"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mulayer-frontend: ")
	addr := flag.String("addr", ":8090", "listen address")
	backends := flag.String("backends", "", "comma-separated backend base URLs (http://host:port)")
	backendsFile := flag.String("backends-file", "", "file with one backend URL per line ('#' comments); SIGHUP or POST /admin/reload re-reads it")
	probeEvery := flag.Duration("probe-every", 500*time.Millisecond, "health/load probe cadence per backend")
	probeTimeout := flag.Duration("probe-timeout", 2*time.Second, "probe round-trip budget")
	failThreshold := flag.Int("fail-threshold", 3, "consecutive failures before a backend quarantines")
	quarBackoff := flag.Duration("quarantine-backoff", time.Second, "first quarantine duration (doubles per re-quarantine)")
	quarBackoffMax := flag.Duration("quarantine-backoff-max", 30*time.Second, "quarantine backoff cap")
	maxInflight := flag.Int("max-inflight", 512, "proxied requests in flight before the frontend sheds")
	maxAttempts := flag.Int("max-attempts", 3, "attempts per request across backends on transport failure")
	reqTimeout := flag.Duration("timeout", 30*time.Second, "end-to-end budget per proxied request")
	hedgeBudget := flag.Float64("hedge-budget", 0.1, "fraction of requests that may hedge (0 disables)")
	hedgeBurst := flag.Int("hedge-burst", 8, "hedge budget burst cap")
	hedgeMin := flag.Duration("hedge-min", 10*time.Millisecond, "hedge delay floor")
	hedgeMax := flag.Duration("hedge-max", 2*time.Second, "hedge delay ceiling (also the cold-start delay)")
	spillFactor := flag.Float64("spill-factor", 0, "affinity yields to least-load when its predicted load exceeds this ratio (0 = default 2.0)")
	spillMargin := flag.Duration("spill-margin", 0, "...and this absolute margin (0 = default 10ms)")
	drain := flag.Duration("drain", 10*time.Second, "graceful drain budget on shutdown")
	dialTimeout := flag.Duration("dial-timeout", 2*time.Second, "TCP dial budget per backend leg")
	respHeaderTimeout := flag.Duration("response-header-timeout", 15*time.Second, "wait for a backend's response headers before the leg fails")
	maxIdlePerHost := flag.Int("max-idle-per-host", 32, "idle connections kept warm per backend")
	ejectFactor := flag.Float64("eject-factor", 0, "eject a backend whose latency p95 exceeds this multiple of the fleet median (0 = default 3.0, negative disables)")
	ejectHold := flag.Duration("eject-hold", 2*time.Second, "how long the outlier condition must persist before ejection")
	ejectMinSamples := flag.Int("eject-min-samples", 8, "served-latency samples required before a backend can be ejected")
	ejectBackoff := flag.Duration("eject-backoff", 5*time.Second, "first ejection duration (doubles per re-ejection)")
	netFaultSpec := flag.String("net-faults", "", "network fault injection spec: [target=host:port,]lat=R,latms=D,dialto=R,hangms=D,reset=R,drop=R,trunc=R,corrupt=R,seed=N,max=N blocks joined by ';' (empty = off)")
	flag.Parse()

	var urls []string
	for _, u := range strings.Split(*backends, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}
	if len(urls) == 0 && *backendsFile == "" {
		log.Fatal("no backends: set -backends and/or -backends-file")
	}

	// The tuned transport is built explicitly so -net-faults can wrap it
	// in the deterministic network fault injector (chaos drills against
	// a live fleet).
	var transport http.RoundTripper = frontend.NewHTTPTransport(*dialTimeout, *respHeaderTimeout, *maxIdlePerHost)
	if *netFaultSpec != "" {
		cfgs, err := netfaults.ParseSpec(*netFaultSpec)
		if err != nil {
			log.Fatal(err)
		}
		transport = netfaults.NewTransport(cfgs, transport)
		log.Printf("network fault injection armed: %d target configs", len(cfgs))
	}

	fe, err := frontend.New(frontend.Config{
		Addr:                  *addr,
		Backends:              urls,
		BackendsFile:          *backendsFile,
		ProbeEvery:            *probeEvery,
		ProbeTimeout:          *probeTimeout,
		FailThreshold:         *failThreshold,
		QuarantineBackoff:     *quarBackoff,
		QuarantineBackoffMax:  *quarBackoffMax,
		MaxInflight:           *maxInflight,
		MaxAttempts:           *maxAttempts,
		RequestTimeout:        *reqTimeout,
		HedgeBudget:           *hedgeBudget,
		HedgeBurst:            *hedgeBurst,
		HedgeMin:              *hedgeMin,
		HedgeMax:              *hedgeMax,
		SpillFactor:           *spillFactor,
		SpillMargin:           *spillMargin,
		DrainTimeout:          *drain,
		DialTimeout:           *dialTimeout,
		ResponseHeaderTimeout: *respHeaderTimeout,
		MaxIdleConnsPerHost:   *maxIdlePerHost,
		Transport:             transport,
		EjectFactor:           *ejectFactor,
		EjectHold:             *ejectHold,
		EjectMinSamples:       *ejectMinSamples,
		EjectBackoff:          *ejectBackoff,
	}, log.Default())
	if err != nil {
		log.Fatal(err)
	}

	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		for range hup {
			added, drained, err := fe.Reload()
			if err != nil {
				log.Printf("reload: %v", err)
				continue
			}
			log.Printf("reload: %d added, %d drained", added, drained)
		}
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- fe.ListenAndServe() }()
	log.Printf("fronting %d backends on %s (probe %v, hedge budget %g)",
		len(urls), *addr, *probeEvery, *hedgeBudget)

	select {
	case err := <-errCh:
		log.Fatal(err)
	case <-ctx.Done():
	}
	stop()
	log.Printf("signal received, draining (budget %v)...", *drain)
	shutCtx, cancel := context.WithTimeout(context.Background(), *drain+5*time.Second)
	defer cancel()
	if err := fe.Shutdown(shutCtx); err != nil {
		log.Fatalf("shutdown: %v", err)
	}
	log.Print("drained cleanly")
}
