// Command mulayer-run executes one network under a chosen mechanism on a
// modeled SoC and prints the latency/energy report, the per-layer plan,
// and (optionally) the simulated timeline.
//
// Usage:
//
//	mulayer-run -model googlenet -soc high -mech mulayer
//	mulayer-run -model vgg16 -soc mid -mech l2p -timeline
//	mulayer-run -model lenet5 -mech mulayer -numeric   # real kernels
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"mulayer"
	"mulayer/internal/models"
)

var modelBuilders = map[string]func(models.Config) (*models.Model, error){
	"lenet5":      mulayer.LeNet5,
	"alexnet":     mulayer.AlexNet,
	"vgg16":       mulayer.VGG16,
	"googlenet":   mulayer.GoogLeNet,
	"squeezenet":  mulayer.SqueezeNetV11,
	"mobilenet":   mulayer.MobileNetV1,
	"resnet18":    mulayer.ResNet18,
	"inception3a": mulayer.Inception3a,
}

var mechanisms = map[string]mulayer.Mechanism{
	"cpu":         mulayer.MechCPUOnly,
	"gpu":         mulayer.MechGPUOnly,
	"l2p":         mulayer.MechLayerToProcessor,
	"chdist":      mulayer.MechChannelDist,
	"pquant":      mulayer.MechChannelDistProcQuant,
	"mulayer":     mulayer.MechMuLayer,
	"npu":         mulayer.MechNPUOnly,
	"mulayer+npu": mulayer.MechMuLayerNPU,
}

var dtypes = map[string]mulayer.DataType{
	"f32": mulayer.F32, "f16": mulayer.F16, "quint8": mulayer.QUInt8,
}

func keys[V any](m map[string]V) string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return strings.Join(out, ", ")
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("mulayer-run: ")
	modelName := flag.String("model", "googlenet", "network: "+keys(modelBuilders))
	socName := flag.String("soc", "high", "SoC: high (Exynos 7420), mid (Exynos 7880), or npu (7420+EdgeNPU)")
	mechName := flag.String("mech", "mulayer", "mechanism: "+keys(mechanisms))
	dtypeName := flag.String("dtype", "quint8", "single-processor data type: "+keys(dtypes))
	numeric := flag.Bool("numeric", false, "run real kernels on a reduced model and report the top prediction")
	timeline := flag.Bool("timeline", false, "print the simulated execution timeline")
	tracePath := flag.String("trace", "", "write a Chrome Trace Event file (open in chrome://tracing or Perfetto)")
	seed := flag.Uint64("seed", 1, "weight/input seed for numeric runs")
	flag.Parse()

	build, ok := modelBuilders[*modelName]
	if !ok {
		log.Fatalf("unknown model %q (want %s)", *modelName, keys(modelBuilders))
	}
	mech, ok := mechanisms[*mechName]
	if !ok {
		log.Fatalf("unknown mechanism %q (want %s)", *mechName, keys(mechanisms))
	}
	dtype, ok := dtypes[*dtypeName]
	if !ok {
		log.Fatalf("unknown dtype %q (want %s)", *dtypeName, keys(dtypes))
	}
	var s *mulayer.SoC
	switch *socName {
	case "high":
		s = mulayer.Exynos7420()
	case "mid":
		s = mulayer.Exynos7880()
	case "npu":
		s = mulayer.Exynos7420NPU()
	default:
		log.Fatalf("unknown SoC %q (want high, mid, or npu)", *socName)
	}

	cfg := mulayer.ModelConfig{Seed: *seed}
	if *numeric {
		cfg.Numeric = true
		cfg.WidthScale = 0.25
		cfg.Classes = 10
		cfg.InputHW = 32
		if *modelName == "alexnet" {
			cfg.InputHW = 67 // the stride-4 stem needs a larger input
		}
		if *modelName == "lenet5" {
			cfg = mulayer.ModelConfig{Numeric: true, Seed: *seed}
		}
	}
	m, err := build(cfg)
	if err != nil {
		log.Fatal(err)
	}

	rt, err := mulayer.NewRuntime(s)
	if err != nil {
		log.Fatal(err)
	}

	var input *mulayer.Tensor
	if *numeric {
		if err := m.Calibrate(mulayer.CalibrationSet(m, 4, *seed+1000)); err != nil {
			log.Fatal(err)
		}
		input = mulayer.RandomInput(m, *seed+5)
	}

	plan, err := rt.Plan(m, mulayer.RunConfig{Mechanism: mech, DType: dtype})
	if err != nil {
		log.Fatal(err)
	}
	res, err := rt.Run(m, input, mulayer.RunConfig{Mechanism: mech, DType: dtype, Numeric: *numeric})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("model      %s on %s\n", m.Name, s.Name)
	fmt.Printf("mechanism  %s\n", mech)
	fmt.Printf("plan       %d steps, %d cooperative splits, %d branch groups\n",
		len(plan.Steps), plan.SplitCount(), plan.BranchCount())
	fmt.Printf("report     %s\n", res.Report)
	if *numeric && res.Output != nil {
		best, bestV := 0, res.Output.Data[0]
		for i, v := range res.Output.Data {
			if v > bestV {
				best, bestV = i, v
			}
		}
		fmt.Printf("prediction class %d (p=%.3f)\n", best, bestV)
	}
	if *timeline {
		fmt.Println("timeline:")
		res.Timeline.Render(os.Stdout)
	}
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := res.Timeline.WriteChromeTrace(f); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("trace      %s (open in chrome://tracing)\n", *tracePath)
	}
}
