// Command mulayer-serve runs the μLayer inference server: an HTTP JSON
// API over a pool of simulated SoC devices with predictor-guided request
// scheduling, bounded-queue admission control, and graceful drain on
// SIGINT/SIGTERM.
//
// Usage:
//
//	mulayer-serve                                  # :8080, 2×high + 2×mid
//	mulayer-serve -addr :9000 -socs high=4,mid=2
//	mulayer-serve -queue 64 -timeout 500ms -timescale 1
//	mulayer-serve -max-batch 8 -batch-wait 2ms     # dynamic micro-batching
//	mulayer-serve -faults 'fail=0.1,seed=42'       # chaos: 10% kernel failures
//	mulayer-serve -faults 'high:die=0.01,proc=gpu' # kill high-end GPUs slowly
//	mulayer-serve -overload 'admit=on,watchdog=8,queue-wait=50ms,retry-rate=5'
//
// Endpoints:
//
//	POST /v1/infer    {"model":"googlenet","mechanism":"mulayer","soc":"high","timeout_ms":500}
//	                  replies carry X-Mulayer-Checksum: crc32c=... over the
//	                  exact body so proxies can verify end-to-end integrity
//	GET  /v1/models   loaded models, mechanisms, SoC classes
//	GET  /healthz     liveness (always ok while the process runs)
//	GET  /readyz      readiness: 503 while draining or all devices dead; per-device health
//	GET  /statusz     queue/backlog/served/health per device, latency
//	                  percentiles, predictor drift, tracing state (JSON)
//	GET  /metrics     Prometheus text format
//	GET  /debug/traces       index of recent request traces (JSON)
//	GET  /debug/traces/{id}  one trace, Chrome Trace Event Format (Perfetto)
//
// With -trace-sample F the server records every Fth-fraction request's
// span tree (admission → batch window → device queue → plan → execute,
// plus per-kernel simulated-time spans) into a bounded ring served at
// /debug/traces; -trace-slow D additionally captures and logs any request
// slower than D regardless of sampling; -trace-ring N bounds the ring.
// -debug-addr :6060 serves net/http/pprof on a separate listener. See
// docs/observability.md.
//
// With -timescale T each device stays busy for simulatedLatency/T of wall
// time per inference, so offered load saturates the pool the way it would
// saturate the modeled hardware; -timescale 0 disables pacing.
//
// With -max-batch N > 1 the scheduler coalesces same-model requests that
// arrive within -batch-wait of each other into one fused batched
// execution (up to N rows), which amortizes kernel launches and weight
// reads; -max-batch 1 serves every request individually.
//
// With -faults the scheduler injects deterministic, seeded faults into the
// simulated devices (kernel failures, stalls, permanent processor deaths,
// panics) and the fault-tolerance layer — failover with retries, device
// quarantine with half-open probes, degraded replanning around dead
// processors — handles them; see docs/serving.md. The spec is
// semicolon-separated per-class blocks of k=v pairs
// ("[class:]fail=0.1,stall=0.05,stallx=10,die=0.01,panic=0.01,seed=42,
// proc=gpu,max=100"); a block without a class applies to every class.
// -fail-threshold, -quarantine-backoff, and -max-retries tune the circuit
// breaker.
//
// With -overload the server protects itself under sustained saturation:
// admit=on rejects requests whose predicted completion cannot meet their
// deadline (and sheds queue-aged work at dispatch), watchdog=F fails any
// kernel that runs past F× its predicted time into the failover path,
// retry-rate=R caps failover retries per model class fleet-wide, and
// queue-wait=DUR arms the brownout ladder (shrink batch windows → stop
// tracing → shed "low"-priority requests) driven by the recent queue-wait
// p95 with hysteresis. See docs/serving.md.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"mulayer/internal/faults"
	"mulayer/internal/server"
	"mulayer/internal/soc"
)

var socBuilders = map[string]func() *soc.SoC{
	"high": soc.Exynos7420,
	"mid":  soc.Exynos7880,
	"npu":  soc.Exynos7420NPU,
}

// parseSoCs parses "high=4,mid=2" (count optional: "high,mid").
func parseSoCs(spec string, defWorkers int) ([]server.SoCSpec, error) {
	if spec == "" {
		return nil, nil
	}
	var out []server.SoCSpec
	for _, part := range strings.Split(spec, ",") {
		name, cnt, hasCnt := strings.Cut(strings.TrimSpace(part), "=")
		build, ok := socBuilders[name]
		if !ok {
			return nil, fmt.Errorf("unknown SoC class %q (want high, mid, npu)", name)
		}
		workers := defWorkers
		if hasCnt {
			n, err := strconv.Atoi(cnt)
			if err != nil || n < 1 {
				return nil, fmt.Errorf("bad worker count %q for %s", cnt, name)
			}
			workers = n
		}
		out = append(out, server.SoCSpec{Name: name, SoC: build, Workers: workers})
	}
	return out, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("mulayer-serve: ")
	addr := flag.String("addr", ":8080", "listen address")
	socs := flag.String("socs", "high=2,mid=2", "device pool: class=workers[,class=workers...] (classes: high, mid, npu)")
	workers := flag.Int("workers", 2, "default workers per class when a class omits =N")
	queue := flag.Int("queue", 256, "bounded queue depth (admitted but unfinished requests)")
	timeout := flag.Duration("timeout", 2*time.Second, "default per-request deadline")
	maxTimeout := flag.Duration("max-timeout", 30*time.Second, "cap on client-requested deadlines")
	timescale := flag.Float64("timescale", 10, "device pacing: simulated latency / timescale of wall time per inference (0 = no pacing)")
	maxBatch := flag.Int("max-batch", 8, "max rows fused into one batched execution (1 = no batching)")
	batchWait := flag.Duration("batch-wait", 2*time.Millisecond, "how long an open batch window waits for more same-model requests")
	drain := flag.Duration("drain", 10*time.Second, "graceful drain budget on shutdown")
	faultSpec := flag.String("faults", "", "fault injection spec: [class:]fail=R,stall=R,stallx=F,die=R,panic=R,seed=N,proc=cpu|gpu|npu,max=N blocks joined by ';' (empty = off)")
	overloadSpec := flag.String("overload", "", "overload protection spec: admit=on,watchdog=F,queue-wait=DUR,eval=DUR,hold=DUR,retry-rate=R,retry-burst=N (empty = off)")
	failThreshold := flag.Int("fail-threshold", 3, "consecutive device failures before quarantine")
	quarBackoff := flag.Duration("quarantine-backoff", 2*time.Second, "first quarantine duration (doubles per re-quarantine, capped at 30s)")
	maxRetries := flag.Int("max-retries", 2, "failover retries per request after a device failure (negative = none)")
	traceSample := flag.Float64("trace-sample", 0, "fraction of requests traced into /debug/traces (0 = off, 1 = all)")
	traceSlow := flag.Duration("trace-slow", 0, "always trace and log requests slower than this wall latency (0 = off)")
	traceRing := flag.Int("trace-ring", 64, "in-memory ring capacity of recent traces")
	debugAddr := flag.String("debug-addr", "", "separate listen address for net/http/pprof profiling endpoints (empty = off)")
	flag.Parse()

	specs, err := parseSoCs(*socs, *workers)
	if err != nil {
		log.Fatal(err)
	}
	faultCfgs, err := faults.ParseSpec(*faultSpec)
	if err != nil {
		log.Fatal(err)
	}
	overloadCfg, err := server.ParseOverloadSpec(*overloadSpec)
	if err != nil {
		log.Fatal(err)
	}
	srv, err := server.New(server.Config{
		Addr:              *addr,
		SoCs:              specs,
		DefaultWorkers:    *workers,
		QueueDepth:        *queue,
		DefaultTimeout:    *timeout,
		MaxTimeout:        *maxTimeout,
		TimeScale:         *timescale,
		MaxBatch:          *maxBatch,
		BatchWait:         *batchWait,
		DrainTimeout:      *drain,
		Faults:            faultCfgs,
		FailThreshold:     *failThreshold,
		QuarantineBackoff: *quarBackoff,
		MaxRetries:        *maxRetries,
		TraceSample:       *traceSample,
		TraceSlow:         *traceSlow,
		TraceRing:         *traceRing,
		Overload:          overloadCfg,
	})
	if err != nil {
		log.Fatal(err)
	}

	if *debugAddr != "" {
		// pprof on its own mux and port: profiling stays reachable under
		// load shedding and is never exposed on the serving address.
		debugMux := http.NewServeMux()
		debugMux.HandleFunc("/debug/pprof/", pprof.Index)
		debugMux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		debugMux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		debugMux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		debugMux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			log.Printf("pprof on %s/debug/pprof/", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, debugMux); err != nil {
				log.Printf("debug listener: %v", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	log.Printf("serving on %s (pool %s, queue %d, timescale %g, max-batch %d, batch-wait %v)",
		*addr, *socs, *queue, *timescale, *maxBatch, *batchWait)

	select {
	case err := <-errCh:
		log.Fatal(err)
	case <-ctx.Done():
	}
	stop()
	log.Printf("signal received, draining (budget %v)...", *drain)
	shutCtx, cancel := context.WithTimeout(context.Background(), *drain+5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		log.Fatalf("shutdown: %v", err)
	}
	log.Print("drained cleanly")
}
