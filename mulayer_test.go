package mulayer_test

import (
	"testing"

	"mulayer"
)

// TestPublicAPIEndToEnd exercises the documented quickstart path through
// the exported surface only.
func TestPublicAPIEndToEnd(t *testing.T) {
	rt, err := mulayer.NewRuntime(mulayer.Exynos7420())
	if err != nil {
		t.Fatal(err)
	}
	m, err := mulayer.GoogLeNet(mulayer.ModelConfig{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := rt.Run(m, nil, mulayer.RunConfig{Mechanism: mulayer.MechMuLayer})
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Latency <= 0 || res.Report.TotalJ() <= 0 {
		t.Fatal("report must be populated")
	}

	base, err := rt.Run(m, nil, mulayer.RunConfig{Mechanism: mulayer.MechLayerToProcessor})
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Latency >= base.Report.Latency {
		t.Fatal("μLayer must beat the baseline through the public API too")
	}
}

func TestPublicNumericPath(t *testing.T) {
	rt, err := mulayer.NewRuntime(mulayer.Exynos7880())
	if err != nil {
		t.Fatal(err)
	}
	m, err := mulayer.LeNet5(mulayer.ModelConfig{Numeric: true, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Calibrate(mulayer.CalibrationSet(m, 2, 7)); err != nil {
		t.Fatal(err)
	}
	in := mulayer.RandomInput(m, 42)
	res, err := rt.Run(m, in, mulayer.RunConfig{Mechanism: mulayer.MechMuLayer, Numeric: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Output == nil || res.Output.Shape.C != 10 {
		t.Fatalf("output missing or misshapen: %+v", res.Output)
	}
	// Determinism through the public surface.
	if mulayer.RandomInput(m, 42).MaxAbsDiff(in) != 0 {
		t.Fatal("RandomInput must be deterministic")
	}
}

func TestPublicModelZoo(t *testing.T) {
	ms, err := mulayer.EvaluatedModels(mulayer.ModelConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 5 {
		t.Fatalf("zoo size %d", len(ms))
	}
	socs := mulayer.SoCs()
	if len(socs) != 2 {
		t.Fatal("two SoCs")
	}
	if mulayer.NewInput(ms[0]).Shape != ms[0].InputShape {
		t.Fatal("NewInput shape")
	}
}
