// Energy budget exploration: how many inferences fit in a phone-battery
// energy budget under each execution mechanism? Reproduces §7.3's point —
// μLayer's co-execution raises instantaneous power but *lowers* energy per
// inference, because the static (uncore/rail) energy scales with the
// shortened makespan.
//
//	go run ./examples/energy
package main

import (
	"fmt"
	"log"

	"mulayer"
)

func main() {
	// A phone-scale budget: 1% of a ~12 Wh battery.
	const budgetJ = 0.01 * 12 * 3600

	mechs := []struct {
		name string
		mech mulayer.Mechanism
		dt   mulayer.DataType
	}{
		{"CPU-only F32", mulayer.MechCPUOnly, mulayer.F32},
		{"CPU-only QUInt8", mulayer.MechCPUOnly, mulayer.QUInt8},
		{"GPU-only F16", mulayer.MechGPUOnly, mulayer.F16},
		{"layer-to-processor", mulayer.MechLayerToProcessor, mulayer.QUInt8},
		{"uLayer", mulayer.MechMuLayer, mulayer.QUInt8},
	}

	for _, s := range mulayer.SoCs() {
		rt, err := mulayer.NewRuntime(s)
		if err != nil {
			log.Fatal(err)
		}
		model, err := mulayer.GoogLeNet(mulayer.ModelConfig{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s, %s, %.0f J budget (1%% of a 12 Wh battery)\n", s.Name, model.Name, budgetJ)
		fmt.Printf("  %-20s %12s %12s %14s %16s\n", "mechanism", "latency", "energy/inf", "inferences", "avg power")
		for _, mc := range mechs {
			res, err := rt.Run(model, nil, mulayer.RunConfig{Mechanism: mc.mech, DType: mc.dt})
			if err != nil {
				log.Fatal(err)
			}
			r := res.Report
			fmt.Printf("  %-20s %10.1fms %10.1fmJ %14.0f %14.2fW\n",
				mc.name,
				float64(r.Latency)/1e6,
				r.TotalJ()*1e3,
				budgetJ/r.TotalJ(),
				r.TotalJ()/r.Latency.Seconds())
		}
		fmt.Println()
	}
	fmt.Println("uLayer draws more power than any single processor — both are busy — but")
	fmt.Println("finishes enough sooner that each inference costs less energy overall (§7.3).")
}
