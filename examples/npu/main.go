// NPU extension (§8.3): run the model zoo on a hypothetical NPU-equipped
// SoC and show the three-way CPU+GPU+NPU cooperation — channel-wise
// distribution across three processors, NPU-friendly quantization
// (QUInt8), and three-way branch assignment — beating both two-way μLayer
// and the accelerator alone.
//
//	go run ./examples/npu
package main

import (
	"fmt"
	"log"

	"mulayer"
)

func main() {
	s := mulayer.Exynos7420NPU()
	rt, err := mulayer.NewRuntime(s)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SoC: %s\n", s.Name)
	fmt.Printf("processors: %s, %s, %s\n\n", s.CPU.Name, s.GPU.Name, s.NPU.Name)

	models, err := mulayer.EvaluatedModels(mulayer.ModelConfig{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-16s %14s %14s %14s %22s\n",
		"NN", "uLayer 2-way", "NPU-only", "uLayer 3-way", "3-way busy c/g/n (ms)")
	for _, m := range models {
		two, err := rt.Run(m, nil, mulayer.RunConfig{Mechanism: mulayer.MechMuLayer})
		if err != nil {
			log.Fatal(err)
		}
		npu, err := rt.Run(m, nil, mulayer.RunConfig{Mechanism: mulayer.MechNPUOnly})
		if err != nil {
			log.Fatal(err)
		}
		three, err := rt.Run(m, nil, mulayer.RunConfig{Mechanism: mulayer.MechMuLayerNPU})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16s %12.1fms %12.1fms %12.1fms %8.1f/%.1f/%.1f\n",
			m.Name,
			float64(two.Report.Latency)/1e6,
			float64(npu.Report.Latency)/1e6,
			float64(three.Report.Latency)/1e6,
			float64(three.Report.CPUBusy)/1e6,
			float64(three.Report.GPUBusy)/1e6,
			float64(three.Report.NPUBusy)/1e6)
	}

	fmt.Println("\nEvery mechanism generalizes (§8.3): large layers split three ways,")
	fmt.Println("small layers land on the single best processor, and Inception/Fire")
	fmt.Println("branch groups spread across all three processors in parallel.")
}
