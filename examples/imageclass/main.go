// Image classification service: run a stream of (synthetic) images through
// a reduced numeric GoogLeNet under every execution mechanism, with the
// real quantized kernels, and report per-mechanism latency, energy, and
// agreement with the F32 reference — the paper's motivating mobile-vision
// scenario end to end.
//
//	go run ./examples/imageclass
package main

import (
	"fmt"
	"log"
	"time"

	"mulayer"
)

func main() {
	rt, err := mulayer.NewRuntime(mulayer.Exynos7420())
	if err != nil {
		log.Fatal(err)
	}

	// A numeric model actually computes; the reduced scale (32² input,
	// quarter width) keeps the pure-Go kernels interactive.
	cfg := mulayer.ModelConfig{Numeric: true, InputHW: 32, WidthScale: 0.25, Classes: 10, Seed: 7}
	model, err := mulayer.GoogLeNet(cfg)
	if err != nil {
		log.Fatal(err)
	}
	// Post-training range calibration stands in for the fake-quantization
	// retraining the paper assumes (§6).
	if err := model.Calibrate(mulayer.CalibrationSet(model, 4, 100)); err != nil {
		log.Fatal(err)
	}

	// The F32 teacher labels the synthetic image stream.
	const nImages = 6
	images := make([]*mulayer.Tensor, nImages)
	labels := make([]int, nImages)
	for i := range images {
		images[i] = mulayer.RandomInput(model, uint64(200+i))
		vals, err := model.RunF32(images[i])
		if err != nil {
			log.Fatal(err)
		}
		labels[i] = argmax(vals[model.Graph.Output()].Data)
	}

	mechs := []struct {
		name string
		mech mulayer.Mechanism
	}{
		{"CPU-only (QUInt8)", mulayer.MechCPUOnly},
		{"GPU-only (QUInt8)", mulayer.MechGPUOnly},
		{"layer-to-processor", mulayer.MechLayerToProcessor},
		{"uLayer", mulayer.MechMuLayer},
	}

	fmt.Printf("classifying %d images with %s on %s\n\n", nImages, model.Name, rt.SoC().Name)
	fmt.Printf("%-20s %14s %12s %10s\n", "mechanism", "sim latency/img", "energy/img", "agreement")
	for _, mc := range mechs {
		var total time.Duration
		var energy float64
		agree := 0
		for i, img := range images {
			res, err := rt.Run(model, img, mulayer.RunConfig{
				Mechanism: mc.mech, DType: mulayer.QUInt8, Numeric: true,
			})
			if err != nil {
				log.Fatal(err)
			}
			total += res.Report.Latency
			energy += res.Report.TotalJ()
			if argmax(res.Output.Data) == labels[i] {
				agree++
			}
		}
		fmt.Printf("%-20s %12.2fms %10.2fmJ %9d/%d\n",
			mc.name,
			float64(total)/float64(nImages)/1e6,
			energy/float64(nImages)*1e3,
			agree, nImages)
	}
	fmt.Println("\nuLayer computes the same quantized network on both processors at once:")
	fmt.Println("the CPU runs the gemmlowp integer pipeline and the GPU computes F16 on")
	fmt.Println("dequantized-on-the-fly operands — identical predictions, lower latency.")
}

func argmax(xs []float32) int {
	best := 0
	for i, v := range xs {
		if v > xs[best] {
			best = i
		}
	}
	return best
}
