// Branch distribution deep dive: reproduce the Figure 12 scenario
// programmatically on GoogLeNet's first Inception module — enumerate every
// branch→processor mapping, show the per-branch latencies behind the
// decision, and compare CPU-only, always-split cooperative, and
// branch-distributed execution.
//
//	go run ./examples/branches
package main

import (
	"fmt"
	"log"

	"mulayer"
	"mulayer/internal/exec"
	"mulayer/internal/partition"
)

func main() {
	s := mulayer.Exynos7420()
	rt, err := mulayer.NewRuntime(s)
	if err != nil {
		log.Fatal(err)
	}
	module, err := mulayer.Inception3a(mulayer.ModelConfig{})
	if err != nil {
		log.Fatal(err)
	}

	groups := module.Graph.BranchGroups()
	if len(groups) != 1 {
		log.Fatalf("expected 1 branch group, found %d", len(groups))
	}
	bg := groups[0]
	shapes, err := module.Graph.InferShapes()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s: %d divergent branches into %q\n\n",
		module.Name, len(bg.Branches), module.Graph.Node(bg.Join).Layer.Name())
	pipe := partition.ProcessorFriendly()
	for i, br := range bg.Branches {
		fmt.Printf("branch %d:\n", i)
		for _, id := range br {
			n := module.Graph.Node(id)
			c := n.Layer.Cost(module.Graph.InputShapes(id, shapes))
			cpuT := s.CPU.KernelTime(pipe.Work(partition.ProcCPU, n.Layer.Kind(), c, 0))
			gpuT := s.GPU.KernelTime(pipe.Work(partition.ProcGPU, n.Layer.Kind(), c, 0))
			fmt.Printf("  %-28s %10.1f MMACs   cpu %7.3fms   gpu %7.3fms\n",
				n.Layer.Name(), float64(c.MACs)/1e6, float64(cpuT)/1e6, float64(gpuT)/1e6)
		}
	}

	// The three Figure 12 scenarios.
	run := func(label string, rc mulayer.RunConfig, opts func(*partition.Options)) {
		o, plan, res := planAndRun(rt, module, rc, opts)
		_ = o
		fmt.Printf("%-38s %8.3fms  (splits=%d, branch groups=%d)\n",
			label, float64(res.Report.Latency)/1e6, plan.SplitCount(), plan.BranchCount())
	}
	fmt.Println("\nexecution scenarios (Figure 12):")
	run("CPU-only (QUInt8)", mulayer.RunConfig{Mechanism: mulayer.MechCPUOnly, DType: mulayer.QUInt8}, nil)
	run("Cooperative (always-split grid)", mulayer.RunConfig{Mechanism: mulayer.MechChannelDistProcQuant},
		func(o *partition.Options) { o.SingleFallback = false })
	run("Cooperative (optimal branch mapping)", mulayer.RunConfig{Mechanism: mulayer.MechMuLayer},
		func(o *partition.Options) { o.SingleFallback = false; o.ForceBranch = true })
	run("uLayer (free ratio + branch choice)", mulayer.RunConfig{Mechanism: mulayer.MechMuLayer}, nil)
	fmt.Println("\nThe always-split configuration pays a CPU-GPU synchronization on every")
	fmt.Println("layer and starves split kernels of channels; assigning whole branches to")
	fmt.Println("processors recovers that loss (§5). The full planner picks per layer.")
}

// planAndRun mirrors Runtime.Run but lets the example tweak the planner
// options to force the Figure 12 scenarios.
func planAndRun(rt *mulayer.Runtime, m *mulayer.Model, rc mulayer.RunConfig, tweak func(*partition.Options)) (partition.Options, *mulayer.Plan, *mulayer.Result) {
	var o partition.Options
	switch rc.Mechanism {
	case mulayer.MechCPUOnly:
		o = partition.SingleProcessor(rt.SoC(), rt.Predictor(), partition.ProcCPU, rc.DType)
	case mulayer.MechChannelDistProcQuant:
		o = partition.ChannelDistProcQuant(rt.SoC(), rt.Predictor())
	default:
		o = partition.MuLayer(rt.SoC(), rt.Predictor())
	}
	if tweak != nil {
		tweak(&o)
	}
	plan, err := partition.Build(m.Graph, o)
	if err != nil {
		log.Fatal(err)
	}
	res, err := exec.Run(m.Graph, plan, nil, exec.Config{
		SoC: rt.SoC(), Pipe: o.Pipe, AsyncIssue: true, ZeroCopy: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	return o, plan, res
}
