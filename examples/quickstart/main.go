// Quickstart: plan and simulate one GoogLeNet inference with μLayer on the
// high-end SoC, and compare it against the state-of-the-art
// layer-to-processor baseline.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"mulayer"
)

func main() {
	// A runtime is bound to one SoC model; constructing it profiles the
	// processors and fits the latency predictor (the offline step of the
	// paper's §6).
	rt, err := mulayer.NewRuntime(mulayer.Exynos7420())
	if err != nil {
		log.Fatal(err)
	}

	// The default model build is "spec-only": full-size layer descriptors
	// with no weights — exactly what the latency/energy simulation needs.
	model, err := mulayer.GoogLeNet(mulayer.ModelConfig{})
	if err != nil {
		log.Fatal(err)
	}

	baseline, err := rt.Run(model, nil, mulayer.RunConfig{Mechanism: mulayer.MechLayerToProcessor})
	if err != nil {
		log.Fatal(err)
	}
	cooperative, err := rt.Run(model, nil, mulayer.RunConfig{Mechanism: mulayer.MechMuLayer})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s on %s\n\n", model.Name, rt.SoC().Name)
	fmt.Printf("layer-to-processor: %s\n", baseline.Report)
	fmt.Printf("uLayer:             %s\n\n", cooperative.Report)
	impr := 1 - float64(cooperative.Report.Latency)/float64(baseline.Report.Latency)
	fmt.Printf("uLayer speed improvement: %.1f%% (paper reports up to 59.9%% on the high-end SoC)\n", impr*100)

	plan, err := rt.Plan(model, mulayer.RunConfig{Mechanism: mulayer.MechMuLayer})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("plan: %d steps, %d cooperative channel splits, %d branch-distributed groups\n",
		len(plan.Steps), plan.SplitCount(), plan.BranchCount())
}
