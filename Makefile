# Tier-1 verification for the μLayer reproduction.
#
#   make ci          build + vet + race tests + coverage gate + chaos + fuzz smoke
#   make test        fast test run (no race detector)
#   make race        race-enabled test run
#   make cover       coverage gate for the serving subsystem
#   make chaos-smoke seeded fault-injection run under the race detector
#   make trace-smoke end-to-end tracing/observability run under the race detector
#   make overload-smoke saturation run with the full overload stack armed
#   make fleet-smoke three-backend fleet with a mid-run backend kill/restart
#   make chaos-fleet-smoke four-backend fleet under injected network gray faults
#   make fuzz-smoke  10s-per-target fuzz pass over every fuzz corpus
#   make bench-serving 1-vs-4-backend goodput benchmark -> BENCH_serving.json
#   make bench-gemm  packed-vs-reference kernel benchmark -> BENCH_gemm.json
#   make bench-gemm-smoke CI-sized gemm bench run + schema validation
#   make serve       run the inference server on :8080
#   make load        drive a running server at 50 qps for 10s

GO ?= go

# Each fuzz target gets this much wall time in the smoke pass.
FUZZTIME ?= 10s
# internal/server statement coverage must not fall below this floor
# (measured 82.5% when the gate was introduced).
COVER_FLOOR ?= 75
# internal/gemm statement coverage floor (measured 94.2% when the
# packed/tiled kernels landed).
GEMM_COVER_FLOOR ?= 88
# internal/frontend statement coverage floor (measured 89.5% when the
# gray-failure stack landed).
FRONTEND_COVER_FLOOR ?= 80

.PHONY: ci build vet test race cover chaos-smoke trace-smoke overload-smoke fleet-smoke chaos-fleet-smoke fuzz-smoke bench-serving bench-gemm bench-gemm-smoke serve load

ci: build vet race cover chaos-smoke trace-smoke overload-smoke fleet-smoke chaos-fleet-smoke fuzz-smoke bench-gemm-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	@check() { \
		out=$$($(GO) test -cover $$1); \
		echo "$$out"; \
		pct=$$(echo "$$out" | sed -n 's/.*coverage: \([0-9.]*\)%.*/\1/p'); \
		if [ -z "$$pct" ]; then echo "cover: no coverage figure for $$1" >&2; exit 1; fi; \
		awk -v p="$$pct" -v f="$$2" -v pkg="$$1" 'BEGIN { \
			if (p + 0 < f + 0) { printf "cover: %s %.1f%% is below the %s%% floor\n", pkg, p, f; exit 1 } \
			printf "cover: %s %.1f%% (floor %s%%)\n", pkg, p, f }'; \
	}; \
	check ./internal/server/ $(COVER_FLOOR) && check ./internal/gemm/ $(GEMM_COVER_FLOOR) && check ./internal/frontend/ $(FRONTEND_COVER_FLOOR)

# Seeded chaos run: 160 requests against a faulty four-device pool under
# the race detector. Fails on any escaped panic, untyped error, stranded
# queue entry, or leaked goroutine.
chaos-smoke:
	$(GO) test ./internal/server -race -count=1 -run='^TestChaosSeededFaults$$' -v

# Traced load against a live pool under the race detector: checks the
# /debug/traces ring, a Perfetto-loadable Chrome trace with per-layer
# kernel spans, the predictor-drift histogram, and /statusz summaries.
trace-smoke:
	$(GO) test ./internal/server -race -count=1 -run='^TestTraceSmokeServeLoad$$' -v

# Saturation at ~4× offered load with stalls and failures injected, the
# watchdog, retry budgets, and the brownout ladder armed — all under the
# race detector. Fails when the top priority class drops below 99%
# availability, no low-priority work is shed, or any request ends with an
# untyped error.
overload-smoke:
	$(GO) test ./internal/server -race -count=1 -run='^TestOverloadSmokeSaturation$$' -v

# Go only accepts one -fuzz pattern per invocation, so smoke each target
# separately; -run=^$ skips the regular tests on each pass.
fuzz-smoke:
	$(GO) test ./internal/quant -run='^$$' -fuzz='^FuzzChooseParams$$' -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/quant -run='^$$' -fuzz='^FuzzRequantize$$' -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/quant -run='^$$' -fuzz='^FuzzRoundingDivideByPOT$$' -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/f16 -run='^$$' -fuzz='^FuzzFromFloat32$$' -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/f16 -run='^$$' -fuzz='^FuzzArithmetic$$' -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/server -run='^$$' -fuzz='^FuzzDecodeInferRequest$$' -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/server -run='^$$' -fuzz='^FuzzOverloadConfig$$' -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/faults -run='^$$' -fuzz='^FuzzFaultConfig$$' -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/faults/netfaults -run='^$$' -fuzz='^FuzzNetFaultConfig$$' -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/gemm -run='^$$' -fuzz='^FuzzF32$$' -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/gemm -run='^$$' -fuzz='^FuzzF16GEMM$$' -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/gemm -run='^$$' -fuzz='^FuzzQGEMM$$' -fuzztime=$(FUZZTIME)

# Fleet chaos smoke: three live backends behind the frontend under
# sustained load and the race detector; one backend is crash-killed
# mid-run and restarted. Fails when availability drops below 99%, any
# failure is routing-attributable, or the revived backend does not
# rejoin.
fleet-smoke:
	$(GO) test ./internal/frontend -race -count=1 -run='^TestFleetSmokeKillRestart$$' -v

# Gray-failure chaos smoke: four live backends behind the frontend on a
# fault-injected network (one gray-slow backend, one corrupting, lossy
# default path) under sustained load and the race detector. Fails when
# availability drops below 99%, any corrupt reply reaches a client, or
# the slow backend is not ejected and then readmitted after the network
# heals.
chaos-fleet-smoke:
	$(GO) test ./internal/frontend -race -count=1 -run='^TestChaosFleetGrayFailures$$' -v

# Saturation goodput of 1 backend vs a 4-backend fleet through the
# frontend, over real processes and loopback HTTP; writes BENCH_serving.json.
bench-serving:
	bash scripts/bench_serving.sh

# Single-thread packed/tiled kernel throughput vs the naive reference
# loops on model-zoo GEMM shapes; writes BENCH_gemm.json.
bench-gemm:
	$(GO) run ./cmd/mulayer-bench -gemm

# CI-sized run: scaled-down shapes to a temp file, schema-validate both
# the fresh run and the committed trajectory.
bench-gemm-smoke:
	$(GO) run ./cmd/mulayer-bench -gemm -gemm-short -gemm-out /tmp/BENCH_gemm_smoke.json
	$(GO) run ./cmd/mulayer-bench -gemm-verify /tmp/BENCH_gemm_smoke.json
	$(GO) run ./cmd/mulayer-bench -gemm-verify BENCH_gemm.json

serve:
	$(GO) run ./cmd/mulayer-serve

load:
	$(GO) run ./cmd/mulayer-load -qps 50 -duration 10s
