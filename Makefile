# Tier-1 verification for the μLayer reproduction.
#
#   make ci      build + vet + race-enabled tests (the pre-merge gate)
#   make test    fast test run (no race detector)
#   make serve   run the inference server on :8080
#   make load    drive a running server at 50 qps for 10s

GO ?= go

.PHONY: ci build vet test race serve load

ci: build vet race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

serve:
	$(GO) run ./cmd/mulayer-serve

load:
	$(GO) run ./cmd/mulayer-load -qps 50 -duration 10s
