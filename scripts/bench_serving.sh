#!/usr/bin/env bash
# Serving-fleet benchmark (make bench-serving): saturation goodput of one
# backend vs a 4-backend fleet, both behind mulayer-frontend, written to
# BENCH_serving.json. Real processes over loopback HTTP; device pacing
# (-timescale) makes the simulated SoCs the capacity bottleneck, so the
# scaling number measures the routing tier, not the host CPU.
#
# Tunables (env): BENCH_OUT, BENCH_DURATION, BENCH_QPS, BENCH_TIMEOUT,
# BENCH_TIMESCALE, BENCH_MODELS, BENCH_SPILL_FACTOR, BENCH_SPILL_MARGIN,
# BENCH_HEDGE_BUDGET.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT=${BENCH_OUT:-BENCH_serving.json}
DUR=${BENCH_DURATION:-8s}
QPS=${BENCH_QPS:-240}
# 5s keeps the queue cap (not the deadline) as the binding limit in both
# phases: with a tight deadline, deadline admission skims the cheap end
# of the model mix and inflates single-backend goodput.
TIMEOUT=${BENCH_TIMEOUT:-5s}
TIMESCALE=${BENCH_TIMESCALE:-1}
MODELS=${BENCH_MODELS:-googlenet,squeezenet,mobilenet,alexnet}
# Under fleet-wide saturation a 2x spill guard leaves the affinity-heavy
# replica shedding while lighter ones idle; the bench routes with a
# tighter guard (see docs/serving.md, fleet tuning).
SPILL_FACTOR=${BENCH_SPILL_FACTOR:-1.25}
SPILL_MARGIN=${BENCH_SPILL_MARGIN:-50ms}
# Hedging trades saturated-fleet capacity for tail latency; a goodput
# benchmark keeps the budget small so losers don't eat the throughput
# being measured.
HEDGE_BUDGET=${BENCH_HEDGE_BUDGET:-0.02}
BASE_PORT=${BENCH_BASE_PORT:-18180}
FRONT_PORT=$((BASE_PORT + 9))

bin=$(mktemp -d)
pids=()
cleanup() {
    for pid in "${pids[@]:-}"; do kill "$pid" 2>/dev/null || true; done
    wait 2>/dev/null || true
    rm -rf "$bin"
}
trap cleanup EXIT

echo "bench-serving: building binaries..."
go build -o "$bin" ./cmd/mulayer-serve ./cmd/mulayer-frontend ./cmd/mulayer-load

probe_ready() { # url
    for _ in $(seq 1 150); do
        if curl -fsS --max-time 2 "$1/readyz" >/dev/null 2>&1; then return 0; fi
        sleep 0.2
    done
    echo "bench-serving: $1 never became ready" >&2
    return 1
}

start_backend() { # port
    # Deadline admission keeps the saturated backend from wasting
    # capacity on requests whose client deadline has already passed.
    "$bin/mulayer-serve" -addr "127.0.0.1:$1" -socs high=1 -queue 64 \
        -timescale "$TIMESCALE" -max-batch 4 -overload admit=on >/dev/null 2>&1 &
    pids+=($!)
}

start_frontend() { # backend urls (comma-separated)
    "$bin/mulayer-frontend" -addr "127.0.0.1:$FRONT_PORT" -backends "$1" \
        -probe-every 100ms -spill-factor "$SPILL_FACTOR" -spill-margin "$SPILL_MARGIN" \
        -hedge-budget "$HEDGE_BUDGET" >/dev/null 2>&1 &
    pids+=($!)
}

run_phase() { # n_backends out_file
    local n=$1 out=$2 urls=""
    for i in $(seq 0 $((n - 1))); do
        start_backend $((BASE_PORT + i))
        urls+="${urls:+,}http://127.0.0.1:$((BASE_PORT + i))"
    done
    for i in $(seq 0 $((n - 1))); do
        probe_ready "http://127.0.0.1:$((BASE_PORT + i))"
    done
    start_frontend "$urls"
    probe_ready "http://127.0.0.1:$FRONT_PORT"
    echo "bench-serving: $n backend(s), offering $QPS qps of $MODELS for $DUR..."
    "$bin/mulayer-load" -addr "http://127.0.0.1:$FRONT_PORT" \
        -model "$MODELS" -qps "$QPS" -duration "$DUR" -timeout "$TIMEOUT" \
        -json "$out"
    # Tear the phase down before the next one reuses the ports.
    for pid in "${pids[@]}"; do kill "$pid" 2>/dev/null || true; done
    wait 2>/dev/null || true
    pids=()
}

run_phase 1 "$bin/single.json"
run_phase 4 "$bin/fleet4.json"

single=$(sed -n 's/.*"goodput_qps": \([0-9.]*\).*/\1/p' "$bin/single.json")
fleet=$(sed -n 's/.*"goodput_qps": \([0-9.]*\).*/\1/p' "$bin/fleet4.json")
scaling=$(awk -v s="$single" -v f="$fleet" 'BEGIN { printf "%.2f", (s > 0) ? (f / s) : 0 }')

{
    echo '{'
    echo '  "benchmark": "serving fleet saturation goodput, 1 vs 4 backends behind mulayer-frontend",'
    echo "  \"timescale\": $TIMESCALE,"
    echo "  \"offered_qps\": $QPS,"
    echo "  \"scaling_1_to_4\": $scaling,"
    echo '  "single_backend":'
    sed 's/^/  /' "$bin/single.json"
    echo '  ,'
    echo '  "fleet_4_backends":'
    sed 's/^/  /' "$bin/fleet4.json"
    echo '}'
} >"$OUT"

printf 'bench-serving: 1 backend %.1f qps -> 4 backends %.1f qps (%sx), summary in %s\n' \
    "$single" "$fleet" "$scaling" "$OUT"
