module mulayer

go 1.22
