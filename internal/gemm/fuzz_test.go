package gemm

import (
	"math"
	"math/rand"
	"testing"

	"mulayer/internal/f16"
)

// Differential fuzzing of the packed/tiled kernels against the naive
// *Ref oracles. The fuzzer drives the shape (m,k,n), the zero points,
// and the data seed; each execution checks both the one-shot entry
// point (packs per call) and the pre-packed path, so operand packing,
// tail kernels, and the zero-point decomposition are all under test.
// Seed corpus pins the degenerate shapes: 1×1×1, m below a single
// panel, k=1, and n off the tile width.

// fuzzShape folds fuzzer bytes into a shape that exercises panel
// boundaries: sizes span 1..48, crossing mr/nrF/nrQ/blockM edges.
func fuzzShape(ms, ks, ns uint8) (m, k, n int) {
	return int(ms%48) + 1, int(ks%48) + 1, int(ns%48) + 1
}

func FuzzF32(f *testing.F) {
	f.Add(uint8(0), uint8(0), uint8(0), int64(1))    // 1×1×1
	f.Add(uint8(2), uint8(16), uint8(4), int64(2))   // m < blockM panel
	f.Add(uint8(32), uint8(0), uint8(31), int64(3))  // k = 1
	f.Add(uint8(37), uint8(21), uint8(6), int64(4))  // n % nrF != 0
	f.Add(uint8(47), uint8(47), uint8(47), int64(5)) // near-max everything
	f.Fuzz(func(t *testing.T, ms, ks, ns uint8, seed int64) {
		m, k, n := fuzzShape(ms, ks, ns)
		rng := rand.New(rand.NewSource(seed))
		a, b := randF32(m*k, rng), randF32(k*n, rng)
		want := make([]float32, m*n)
		F32Ref(a, b, want, m, k, n)
		check := func(path string, got []float32) {
			// Error scales with the dot length; operands are in [-1,1).
			tol := 1e-5 * float64(k)
			for i := range got {
				if d := math.Abs(float64(got[i] - want[i])); d > tol || got[i] != got[i] {
					t.Fatalf("%s shape (%d,%d,%d) elem %d: %v vs %v", path, m, k, n, i, got[i], want[i])
				}
			}
		}
		got := make([]float32, m*n)
		F32(a, b, got, m, k, n)
		check("F32", got)
		got2 := make([]float32, m*n)
		F32Packed(PackAF32(a, m, k), b, got2, n)
		check("F32Packed", got2)
	})
}

func FuzzF16GEMM(f *testing.F) {
	f.Add(uint8(0), uint8(0), uint8(0), int64(1))
	f.Add(uint8(2), uint8(16), uint8(4), int64(2))
	f.Add(uint8(32), uint8(0), uint8(31), int64(3))
	f.Add(uint8(37), uint8(21), uint8(6), int64(4))
	f.Add(uint8(47), uint8(47), uint8(47), int64(5))
	f.Fuzz(func(t *testing.T, ms, ks, ns uint8, seed int64) {
		m, k, n := fuzzShape(ms, ks, ns)
		rng := rand.New(rand.NewSource(seed))
		a := f16.FromSlice32(randF32(m*k, rng))
		b := f16.FromSlice32(randF32(k*n, rng))
		want := make([]f16.F16, m*n)
		F16Ref(a, b, want, m, k, n)
		// The tiled kernel accumulates in the reference's order, so F16
		// results must be bit-identical, not merely close.
		check := func(path string, got []f16.F16) {
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s shape (%d,%d,%d) elem %d: %#04x vs %#04x", path, m, k, n, i, got[i], want[i])
				}
			}
		}
		got := make([]f16.F16, m*n)
		F16GEMM(a, b, got, m, k, n)
		check("F16GEMM", got)
		got2 := make([]f16.F16, m*n)
		F16GEMMPacked(PackAF16(a, m, k), b, got2, n)
		check("F16GEMMPacked", got2)
	})
}

func FuzzQGEMM(f *testing.F) {
	f.Add(uint8(0), uint8(0), uint8(0), uint8(0), uint8(0), int64(1))
	f.Add(uint8(2), uint8(16), uint8(4), uint8(128), uint8(128), int64(2))
	f.Add(uint8(32), uint8(0), uint8(31), uint8(255), uint8(0), int64(3))
	f.Add(uint8(37), uint8(21), uint8(7), uint8(1), uint8(254), int64(4)) // n % nrQ != 0
	f.Add(uint8(47), uint8(47), uint8(47), uint8(100), uint8(200), int64(5))
	f.Fuzz(func(t *testing.T, ms, ks, ns, zas, zbs uint8, seed int64) {
		m, k, n := fuzzShape(ms, ks, ns)
		za, zb := int32(zas), int32(zbs)
		rng := rand.New(rand.NewSource(seed))
		a, b := randU8(m*k, rng), randU8(k*n, rng)
		want := make([]int32, m*n)
		QGEMMRef(a, b, want, m, k, n, za, zb)
		// Integer accumulation wraps, so the decomposed tiled kernel
		// must agree bit-for-bit with the oracle.
		check := func(path string, got []int32) {
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s shape (%d,%d,%d) zp(%d,%d) elem %d: %d vs %d", path, m, k, n, za, zb, i, got[i], want[i])
				}
			}
		}
		got := make([]int32, m*n)
		QGEMM(a, b, got, m, k, n, za, zb)
		check("QGEMM", got)
		got2 := make([]int32, m*n)
		QGEMMPacked(PackAU8(a, m, k), b, got2, n, za, zb)
		check("QGEMMPacked", got2)
	})
}
