package gemm

import "mulayer/internal/f16"

// ConvGeom captures the geometry of one 2-D convolution for im2col
// lowering: an (inC, inH, inW) input, kH×kW filters applied with the given
// strides and symmetric zero padding.
type ConvGeom struct {
	InC, InH, InW    int
	KH, KW           int
	StrideH, StrideW int
	PadH, PadW       int
}

// OutH returns the output height.
func (g ConvGeom) OutH() int { return (g.InH+2*g.PadH-g.KH)/g.StrideH + 1 }

// OutW returns the output width.
func (g ConvGeom) OutW() int { return (g.InW+2*g.PadW-g.KW)/g.StrideW + 1 }

// PatchRows returns K, the number of rows of the patch matrix
// (inC·kH·kW), which is also the width of the lowered filter matrix.
func (g ConvGeom) PatchRows() int { return g.InC * g.KH * g.KW }

// PatchCols returns N, the number of columns of the patch matrix (one per
// output spatial position).
func (g ConvGeom) PatchCols() int { return g.OutH() * g.OutW() }

// Im2ColF32 lowers one batch element (chw layout, len = inC·inH·inW) into
// the K×N patch matrix expected by the GEMM kernels. Out-of-bounds taps
// contribute 0. dst must have length ≥ PatchRows()·PatchCols().
func Im2ColF32(in []float32, g ConvGeom, dst []float32) {
	oh, ow := g.OutH(), g.OutW()
	n := oh * ow
	row := 0
	for c := 0; c < g.InC; c++ {
		plane := in[c*g.InH*g.InW : (c+1)*g.InH*g.InW]
		for kh := 0; kh < g.KH; kh++ {
			for kw := 0; kw < g.KW; kw++ {
				d := dst[row*n : (row+1)*n]
				i := 0
				for y := 0; y < oh; y++ {
					sy := y*g.StrideH - g.PadH + kh
					if sy < 0 || sy >= g.InH {
						for x := 0; x < ow; x++ {
							d[i] = 0
							i++
						}
						continue
					}
					base := sy * g.InW
					for x := 0; x < ow; x++ {
						sx := x*g.StrideW - g.PadW + kw
						if sx < 0 || sx >= g.InW {
							d[i] = 0
						} else {
							d[i] = plane[base+sx]
						}
						i++
					}
				}
				row++
			}
		}
	}
}

// Im2ColF16 lowers one binary16 batch element; padding taps are +0.
func Im2ColF16(in []f16.F16, g ConvGeom, dst []f16.F16) {
	oh, ow := g.OutH(), g.OutW()
	n := oh * ow
	row := 0
	for c := 0; c < g.InC; c++ {
		plane := in[c*g.InH*g.InW : (c+1)*g.InH*g.InW]
		for kh := 0; kh < g.KH; kh++ {
			for kw := 0; kw < g.KW; kw++ {
				d := dst[row*n : (row+1)*n]
				i := 0
				for y := 0; y < oh; y++ {
					sy := y*g.StrideH - g.PadH + kh
					if sy < 0 || sy >= g.InH {
						for x := 0; x < ow; x++ {
							d[i] = 0
							i++
						}
						continue
					}
					base := sy * g.InW
					for x := 0; x < ow; x++ {
						sx := x*g.StrideW - g.PadW + kw
						if sx < 0 || sx >= g.InW {
							d[i] = 0
						} else {
							d[i] = plane[base+sx]
						}
						i++
					}
				}
				row++
			}
		}
	}
}

// Im2ColU8 lowers one quantized batch element. Padding taps are filled with
// the input zero point, which represents real 0 on the quantized grid —
// this is why affine quantization must make 0 exactly representable.
func Im2ColU8(in []uint8, g ConvGeom, dst []uint8, zeroPoint uint8) {
	oh, ow := g.OutH(), g.OutW()
	n := oh * ow
	row := 0
	for c := 0; c < g.InC; c++ {
		plane := in[c*g.InH*g.InW : (c+1)*g.InH*g.InW]
		for kh := 0; kh < g.KH; kh++ {
			for kw := 0; kw < g.KW; kw++ {
				d := dst[row*n : (row+1)*n]
				i := 0
				for y := 0; y < oh; y++ {
					sy := y*g.StrideH - g.PadH + kh
					if sy < 0 || sy >= g.InH {
						for x := 0; x < ow; x++ {
							d[i] = zeroPoint
							i++
						}
						continue
					}
					base := sy * g.InW
					for x := 0; x < ow; x++ {
						sx := x*g.StrideW - g.PadW + kw
						if sx < 0 || sx >= g.InW {
							d[i] = zeroPoint
						} else {
							d[i] = plane[base+sx]
						}
						i++
					}
				}
				row++
			}
		}
	}
}
