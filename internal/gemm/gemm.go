// Package gemm provides the GEneralized Matrix-Multiplication kernels that
// back μLayer's convolutional and fully-connected layers, for each of the
// three arithmetic pipelines of the paper:
//
//   - F32: plain single-precision (the NN default),
//   - F16: half-precision operands with per-element rounding of results,
//     modeling a GPU's native half ALUs,
//   - QUInt8: the gemmlowp integer pipeline — uint8 operands with zero
//     points, int32 accumulation, fixed-point requantization downstream.
//
// All matrices are dense row-major. Kernels are cache-blocked and
// goroutine-parallel over row panels; naive loops are kept as references
// for differential testing.
package gemm

import (
	"runtime"
	"sync"

	"mulayer/internal/f16"
)

// blockM is the row-panel height used to split work across goroutines.
const blockM = 32

// parallelRows runs fn over [0,m) in row panels on up to GOMAXPROCS
// goroutines. fn must be safe to call concurrently for disjoint panels.
func parallelRows(m int, fn func(i0, i1 int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > (m+blockM-1)/blockM {
		workers = (m + blockM - 1) / blockM
	}
	if workers <= 1 {
		fn(0, m)
		return
	}
	var wg sync.WaitGroup
	next := make(chan int, workers)
	go func() {
		for i := 0; i < m; i += blockM {
			next <- i
		}
		close(next)
	}()
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i0 := range next {
				i1 := i0 + blockM
				if i1 > m {
					i1 = m
				}
				fn(i0, i1)
			}
		}()
	}
	wg.Wait()
}

// F32 computes c = a·b for row-major a (m×k), b (k×n), c (m×n),
// overwriting c. It is cache-blocked over k and parallel over rows.
func F32(a, b, c []float32, m, k, n int) {
	checkDims(len(a), len(b), len(c), m, k, n)
	parallelRows(m, func(i0, i1 int) {
		for i := i0; i < i1; i++ {
			ci := c[i*n : (i+1)*n]
			for j := range ci {
				ci[j] = 0
			}
			ai := a[i*k : (i+1)*k]
			for l, av := range ai {
				if av == 0 {
					continue
				}
				bl := b[l*n : (l+1)*n]
				for j, bv := range bl {
					ci[j] += av * bv
				}
			}
		}
	})
}

// F32Ref is the textbook triple loop, used as the differential-testing
// reference for F32.
func F32Ref(a, b, c []float32, m, k, n int) {
	checkDims(len(a), len(b), len(c), m, k, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float32
			for l := 0; l < k; l++ {
				s += a[i*k+l] * b[l*n+j]
			}
			c[i*n+j] = s
		}
	}
}

// F16GEMM computes c = a·b over binary16 operands. Products and the running
// sum are kept in float32 and the final element is rounded once to
// binary16. This matches GPU half-precision kernels that accumulate dot
// products in a wider register before writing back a half result — the
// configuration under which the paper observes no accuracy loss for F16
// (Figure 10).
func F16GEMM(a, b, c []f16.F16, m, k, n int) {
	checkDims(len(a), len(b), len(c), m, k, n)
	parallelRows(m, func(i0, i1 int) {
		acc := make([]float32, n)
		for i := i0; i < i1; i++ {
			for j := range acc {
				acc[j] = 0
			}
			ai := a[i*k : (i+1)*k]
			for l, ah := range ai {
				av := ah.Float32()
				if av == 0 {
					continue
				}
				bl := b[l*n : (l+1)*n]
				for j, bh := range bl {
					acc[j] += av * bh.Float32()
				}
			}
			ci := c[i*n : (i+1)*n]
			for j, s := range acc {
				ci[j] = f16.FromFloat32(s)
			}
		}
	})
}

// F16Ref is the naive reference for F16GEMM.
func F16Ref(a, b, c []f16.F16, m, k, n int) {
	checkDims(len(a), len(b), len(c), m, k, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float32
			for l := 0; l < k; l++ {
				s += a[i*k+l].Float32() * b[l*n+j].Float32()
			}
			c[i*n+j] = f16.FromFloat32(s)
		}
	}
}

// QGEMM computes the int32 accumulator matrix of the gemmlowp pipeline:
//
//	acc[i,j] = Σ_l (a[i,l] − za) · (b[l,j] − zb)
//
// for uint8 operands with zero points za and zb. The caller feeds acc
// through a quant.Requantizer (plus bias) to obtain uint8 outputs.
func QGEMM(a, b []uint8, acc []int32, m, k, n int, za, zb int32) {
	checkDims(len(a), len(b), len(acc), m, k, n)
	parallelRows(m, func(i0, i1 int) {
		for i := i0; i < i1; i++ {
			ci := acc[i*n : (i+1)*n]
			for j := range ci {
				ci[j] = 0
			}
			ai := a[i*k : (i+1)*k]
			for l, au := range ai {
				av := int32(au) - za
				if av == 0 {
					continue
				}
				bl := b[l*n : (l+1)*n]
				for j, bu := range bl {
					ci[j] += av * (int32(bu) - zb)
				}
			}
		}
	})
}

// QGEMMRef is the naive reference for QGEMM.
func QGEMMRef(a, b []uint8, acc []int32, m, k, n int, za, zb int32) {
	checkDims(len(a), len(b), len(acc), m, k, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s int32
			for l := 0; l < k; l++ {
				s += (int32(a[i*k+l]) - za) * (int32(b[l*n+j]) - zb)
			}
			acc[i*n+j] = s
		}
	}
}

func checkDims(la, lb, lc, m, k, n int) {
	if m <= 0 || k <= 0 || n <= 0 {
		panic("gemm: non-positive dimension")
	}
	if la < m*k || lb < k*n || lc < m*n {
		panic("gemm: buffer too small for dimensions")
	}
}
