// Package gemm provides the GEneralized Matrix-Multiplication kernels that
// back μLayer's convolutional and fully-connected layers, for each of the
// three arithmetic pipelines of the paper:
//
//   - F32: plain single-precision (the NN default),
//   - F16: half-precision operands with per-element rounding of results,
//     modeling a GPU's native half ALUs,
//   - QUInt8: the gemmlowp integer pipeline — uint8 operands with zero
//     points, int32 accumulation, fixed-point requantization downstream.
//
// All matrices are dense row-major. The fast path packs both operands
// into panel-contiguous blocks and computes register tiles (pack.go,
// tiled.go); weight panels can be packed once per layer and reused via
// the *Packed entry points. The naive triple loops are kept as *Ref
// kernels — the differential oracle for the fuzz and golden tests, and
// the baseline the BENCH_gemm.json trajectory is measured against.
package gemm

import (
	"runtime"
	"sync"

	"mulayer/internal/f16"
)

// ForceRef routes every kernel — including the *Packed entry points —
// through the naive reference loops. It exists for differential tests
// and benchmarks only; it is not synchronized, so set it before any
// concurrent kernel use and restore it after.
var ForceRef bool

// blockM is the row-panel height used to split work across goroutines.
// It must stay a multiple of the register-tile height mr so workers
// always own whole panels of the packed grid.
const blockM = 32

// parallelRows runs fn over [0,m) in row panels on up to GOMAXPROCS
// goroutines. fn must be safe to call concurrently for disjoint panels.
func parallelRows(m int, fn func(i0, i1 int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > (m+blockM-1)/blockM {
		workers = (m + blockM - 1) / blockM
	}
	if workers <= 1 {
		fn(0, m)
		return
	}
	var wg sync.WaitGroup
	next := make(chan int, workers)
	go func() {
		for i := 0; i < m; i += blockM {
			next <- i
		}
		close(next)
	}()
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i0 := range next {
				i1 := i0 + blockM
				if i1 > m {
					i1 = m
				}
				fn(i0, i1)
			}
		}()
	}
	wg.Wait()
}

// F32 computes c = a·b for row-major a (m×k), b (k×n), c (m×n),
// overwriting c. The left operand is packed per call; callers that reuse
// a (layer weights) should pack once and use F32Packed.
func F32(a, b, c []float32, m, k, n int) {
	checkDims(len(a), len(b), len(c), m, k, n)
	if ForceRef {
		F32Ref(a, b, c, m, k, n)
		return
	}
	f32MulPacked(PackAF32(a, m, k), b, c, n)
}

// F32Packed computes c = pa·b for a pre-packed left operand.
func F32Packed(pa *PackedAF32, b, c []float32, n int) {
	checkDims(pa.M*pa.K, len(b), len(c), pa.M, pa.K, n)
	if ForceRef {
		F32Ref(pa.Unpack(), b, c, pa.M, pa.K, n)
		return
	}
	f32MulPacked(pa, b, c, n)
}

// F32Ref is the textbook triple loop, used as the differential-testing
// reference for F32.
func F32Ref(a, b, c []float32, m, k, n int) {
	checkDims(len(a), len(b), len(c), m, k, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float32
			for l := 0; l < k; l++ {
				s += a[i*k+l] * b[l*n+j]
			}
			c[i*n+j] = s
		}
	}
}

// F16GEMM computes c = a·b over binary16 operands. Products and the running
// sum are kept in float32 and the final element is rounded once to
// binary16. This matches GPU half-precision kernels that accumulate dot
// products in a wider register before writing back a half result — the
// configuration under which the paper observes no accuracy loss for F16
// (Figure 10). Results are bit-identical to F16Ref.
func F16GEMM(a, b, c []f16.F16, m, k, n int) {
	checkDims(len(a), len(b), len(c), m, k, n)
	if ForceRef {
		F16Ref(a, b, c, m, k, n)
		return
	}
	f16MulPacked(PackAF16(a, m, k), b, c, n)
}

// F16GEMMPacked computes c = pa·b for a pre-packed left operand.
func F16GEMMPacked(pa *PackedAF16, b, c []f16.F16, n int) {
	checkDims(pa.M*pa.K, len(b), len(c), pa.M, pa.K, n)
	if ForceRef {
		F16Ref(pa.Unpack(), b, c, pa.M, pa.K, n)
		return
	}
	f16MulPacked(pa, b, c, n)
}

// F16Ref is the naive reference for F16GEMM.
func F16Ref(a, b, c []f16.F16, m, k, n int) {
	checkDims(len(a), len(b), len(c), m, k, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float32
			for l := 0; l < k; l++ {
				s += a[i*k+l].Float32() * b[l*n+j].Float32()
			}
			c[i*n+j] = f16.FromFloat32(s)
		}
	}
}

// QGEMM computes the int32 accumulator matrix of the gemmlowp pipeline:
//
//	acc[i,j] = Σ_l (a[i,l] − za) · (b[l,j] − zb)
//
// for uint8 operands with zero points za and zb. The caller feeds acc
// through a quant.Requantizer (plus bias) to obtain uint8 outputs.
// Results are bit-identical to QGEMMRef (int32 addition wraps, so the
// tiled kernel's zero-point decomposition is exact mod 2³²).
func QGEMM(a, b []uint8, acc []int32, m, k, n int, za, zb int32) {
	checkDims(len(a), len(b), len(acc), m, k, n)
	if ForceRef {
		QGEMMRef(a, b, acc, m, k, n, za, zb)
		return
	}
	qMulPacked(PackAU8(a, m, k), b, acc, n, za, zb)
}

// QGEMMPacked computes the accumulator matrix for a pre-packed left
// operand (za is the packed operand's zero point, zb the right one's).
func QGEMMPacked(pa *PackedAU8, b []uint8, acc []int32, n int, za, zb int32) {
	checkDims(pa.M*pa.K, len(b), len(acc), pa.M, pa.K, n)
	if ForceRef {
		QGEMMRef(pa.Unpack(), b, acc, pa.M, pa.K, n, za, zb)
		return
	}
	qMulPacked(pa, b, acc, n, za, zb)
}

// QGEMMRef is the naive reference for QGEMM.
func QGEMMRef(a, b []uint8, acc []int32, m, k, n int, za, zb int32) {
	checkDims(len(a), len(b), len(acc), m, k, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s int32
			for l := 0; l < k; l++ {
				s += (int32(a[i*k+l]) - za) * (int32(b[l*n+j]) - zb)
			}
			acc[i*n+j] = s
		}
	}
}

func checkDims(la, lb, lc, m, k, n int) {
	if m <= 0 || k <= 0 || n <= 0 {
		panic("gemm: non-positive dimension")
	}
	if la < m*k || lb < k*n || lc < m*n {
		panic("gemm: buffer too small for dimensions")
	}
}
