package gemm

import (
	"math"
	"math/rand"
	"testing"

	"mulayer/internal/f16"
)

// Edge-case geometries for the im2col lowering, exercised directly
// rather than through internal/nn: padding wider than the kernel,
// strides larger than the input extent, 1×1 convolutions, and
// combinations thereof. Each is validated by running the lowered GEMM
// against the im2col-free direct convolution.
func edgeGeoms() []ConvGeom {
	return []ConvGeom{
		// Padding > kernel: every border output is entirely padding taps.
		{InC: 2, InH: 3, InW: 3, KH: 1, KW: 1, StrideH: 1, StrideW: 1, PadH: 2, PadW: 2},
		{InC: 1, InH: 4, InW: 2, KH: 2, KW: 2, StrideH: 1, StrideW: 1, PadH: 3, PadW: 3},
		// Stride > input extent: a single output column/row survives.
		{InC: 3, InH: 3, InW: 3, KH: 1, KW: 1, StrideH: 5, StrideW: 5},
		{InC: 1, InH: 6, InW: 3, KH: 2, KW: 2, StrideH: 4, StrideW: 4},
		// 1×1 convolution: im2col must be a pure channel reshape.
		{InC: 4, InH: 5, InW: 7, KH: 1, KW: 1, StrideH: 1, StrideW: 1},
		// 1×1 with stride: spatial subsampling.
		{InC: 2, InH: 5, InW: 5, KH: 1, KW: 1, StrideH: 2, StrideW: 2},
		// Asymmetric everything at once.
		{InC: 2, InH: 7, InW: 4, KH: 3, KW: 2, StrideH: 3, StrideW: 2, PadH: 4, PadW: 3},
		// Kernel spanning the whole padded input: one output position.
		{InC: 1, InH: 2, InW: 2, KH: 4, KW: 4, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1},
	}
}

func TestIm2ColF32EdgeGeometries(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	for _, g := range edgeGeoms() {
		if g.OutH() <= 0 || g.OutW() <= 0 {
			t.Fatalf("geom %+v: degenerate output %dx%d", g, g.OutH(), g.OutW())
		}
		const outC = 2
		in := randF32(g.InC*g.InH*g.InW, rng)
		w := randF32(outC*g.InC*g.KH*g.KW, rng)
		patches := make([]float32, g.PatchRows()*g.PatchCols())
		Im2ColF32(in, g, patches)
		got := make([]float32, outC*g.PatchCols())
		F32Ref(w, patches, got, outC, g.PatchRows(), g.PatchCols())
		want := directConv(in, g, w, outC)
		for i := range got {
			if math.Abs(float64(got[i]-want[i])) > 1e-4 {
				t.Fatalf("geom %+v elem %d: %v vs %v", g, i, got[i], want[i])
			}
		}
	}
}

func TestIm2ColU8EdgeGeometries(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, g := range edgeGeoms() {
		in := randU8(g.InC*g.InH*g.InW, rng)
		const zp = 131
		dst := make([]uint8, g.PatchRows()*g.PatchCols())
		Im2ColU8(in, g, dst, zp)
		// Direct reconstruction: every patch element is either the
		// corresponding input tap or the zero point for padding.
		oh, ow := g.OutH(), g.OutW()
		row := 0
		for c := 0; c < g.InC; c++ {
			for kh := 0; kh < g.KH; kh++ {
				for kw := 0; kw < g.KW; kw++ {
					for y := 0; y < oh; y++ {
						for x := 0; x < ow; x++ {
							sy := y*g.StrideH - g.PadH + kh
							sx := x*g.StrideW - g.PadW + kw
							want := uint8(zp)
							if sy >= 0 && sy < g.InH && sx >= 0 && sx < g.InW {
								want = in[(c*g.InH+sy)*g.InW+sx]
							}
							if got := dst[row*oh*ow+y*ow+x]; got != want {
								t.Fatalf("geom %+v tap (c%d kh%d kw%d y%d x%d): %d vs %d", g, c, kh, kw, y, x, got, want)
							}
						}
					}
					row++
				}
			}
		}
	}
}

func TestIm2ColF16EdgeGeometriesMatchF32(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for _, g := range edgeGeoms() {
		inF := randF32(g.InC * g.InH * g.InW, rng)
		inH := f16.FromSlice32(inF)
		pf := make([]float32, g.PatchRows()*g.PatchCols())
		ph := make([]f16.F16, g.PatchRows()*g.PatchCols())
		Im2ColF32(inF, g, pf)
		Im2ColF16(inH, g, ph)
		for i := range pf {
			if ph[i] != f16.FromFloat32(pf[i]) {
				t.Fatalf("geom %+v elem %d differs", g, i)
			}
		}
	}
}

// A 1×1 kernel with unit stride and no padding must lower to the
// identity: the patch matrix is exactly the input planes.
func TestIm2Col1x1IsReshape(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	g := ConvGeom{InC: 3, InH: 4, InW: 6, KH: 1, KW: 1, StrideH: 1, StrideW: 1}
	in := randF32(g.InC*g.InH*g.InW, rng)
	dst := make([]float32, g.PatchRows()*g.PatchCols())
	Im2ColF32(in, g, dst)
	if g.PatchRows() != g.InC || g.PatchCols() != g.InH*g.InW {
		t.Fatalf("1x1 patch dims %dx%d", g.PatchRows(), g.PatchCols())
	}
	for i := range in {
		if dst[i] != in[i] {
			t.Fatalf("elem %d: %v vs %v", i, dst[i], in[i])
		}
	}
}

// Outputs that fall entirely in the padding region must be all-zero
// (F32) / all-zero-point (U8) rows regardless of the input.
func TestIm2ColAllPaddingTaps(t *testing.T) {
	g := ConvGeom{InC: 1, InH: 2, InW: 2, KH: 1, KW: 1, StrideH: 1, StrideW: 1, PadH: 2, PadW: 2}
	in := []float32{5, 6, 7, 8}
	dst := make([]float32, g.PatchRows()*g.PatchCols())
	Im2ColF32(in, g, dst)
	oh, ow := g.OutH(), g.OutW()
	for y := 0; y < oh; y++ {
		for x := 0; x < ow; x++ {
			sy, sx := y-g.PadH, x-g.PadW
			inBounds := sy >= 0 && sy < g.InH && sx >= 0 && sx < g.InW
			v := dst[y*ow+x]
			if inBounds && v != in[sy*g.InW+sx] {
				t.Fatalf("(%d,%d): %v, want input tap", y, x, v)
			}
			if !inBounds && v != 0 {
				t.Fatalf("(%d,%d): %v, want padding 0", y, x, v)
			}
		}
	}
}
