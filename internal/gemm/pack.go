package gemm

import (
	"sync"

	"mulayer/internal/f16"
)

// Operand packing for the register-tiled kernels (tiled.go).
//
// The left operand of every layer GEMM is the weight matrix, which is
// reused on every request: convolutions multiply (OutC × InC·KH·KW)
// filters against im2col patches, fully-connected layers multiply
// (OutC × InFeatures) weights against activation vectors. Packing it once
// into panel-contiguous form — gemmlowp- and Marlin-style — and caching
// the packed form per layer amortizes the reorder across all requests,
// while the streaming right operand (patches / activations) is packed per
// call inside the tiled drivers.
//
// Layout: rows are grouped into panels of mr; within a panel the elements
// are stored k-major, mr values per k step:
//
//	data[panel*mr*K + l*mr + r] == A[(panel*mr+r)*K + l]
//
// so the micro-kernel reads one contiguous stream of mr values per k
// iteration. The row count is padded up to a multiple of mr with zeros
// (never written back), which lets every row tile run at full height.

// PackedAF32 is a float32 weight matrix packed into mr-row panels.
type PackedAF32 struct {
	M, K int
	data []float32
}

// PackAF32 packs row-major a (m×k) into panel form.
func PackAF32(a []float32, m, k int) *PackedAF32 {
	if m <= 0 || k <= 0 {
		panic("gemm: non-positive dimension")
	}
	if len(a) < m*k {
		panic("gemm: buffer too small for dimensions")
	}
	mp := (m + mr - 1) / mr * mr
	data := make([]float32, mp*k)
	for r0 := 0; r0 < m; r0 += mr {
		rows := m - r0
		if rows > mr {
			rows = mr
		}
		dst := data[r0*k:]
		for r := 0; r < rows; r++ {
			src := a[(r0+r)*k : (r0+r+1)*k]
			for l, v := range src {
				dst[l*mr+r] = v
			}
		}
	}
	return &PackedAF32{M: m, K: k, data: data}
}

// Unpack reconstructs the original row-major matrix exactly.
func (p *PackedAF32) Unpack() []float32 {
	out := make([]float32, p.M*p.K)
	for i := 0; i < p.M; i++ {
		base := (i / mr * mr) * p.K
		r := i % mr
		for l := 0; l < p.K; l++ {
			out[i*p.K+l] = p.data[base+l*mr+r]
		}
	}
	return out
}

// PackedAU8 is a uint8 weight matrix packed into mr-row panels, plus the
// per-row operand sums used by the gemmlowp zero-point decomposition:
//
//	Σ_l (a-za)(b-zb) = Σ_l a·b − zb·Σ_l a − za·Σ_l b + k·za·zb
//
// The row sums make the za/zb corrections an O(m+n) epilogue instead of
// two subtractions per multiply-accumulate. int32 addition wraps, so the
// decomposition is bit-identical to the naive reference mod 2³².
type PackedAU8 struct {
	M, K    int
	data    []uint8
	rowSums []int32
}

// PackAU8 packs row-major a (m×k) into panel form with row sums.
func PackAU8(a []uint8, m, k int) *PackedAU8 {
	if m <= 0 || k <= 0 {
		panic("gemm: non-positive dimension")
	}
	if len(a) < m*k {
		panic("gemm: buffer too small for dimensions")
	}
	mp := (m + mr - 1) / mr * mr
	data := make([]uint8, mp*k)
	sums := make([]int32, mp)
	for r0 := 0; r0 < m; r0 += mr {
		rows := m - r0
		if rows > mr {
			rows = mr
		}
		dst := data[r0*k:]
		for r := 0; r < rows; r++ {
			src := a[(r0+r)*k : (r0+r+1)*k]
			var s int32
			for l, v := range src {
				dst[l*mr+r] = v
				s += int32(v)
			}
			sums[r0+r] = s
		}
	}
	return &PackedAU8{M: m, K: k, data: data, rowSums: sums}
}

// Unpack reconstructs the original row-major matrix exactly.
func (p *PackedAU8) Unpack() []uint8 {
	out := make([]uint8, p.M*p.K)
	for i := 0; i < p.M; i++ {
		base := (i / mr * mr) * p.K
		r := i % mr
		for l := 0; l < p.K; l++ {
			out[i*p.K+l] = p.data[base+l*mr+r]
		}
	}
	return out
}

// PackedAF16 is a binary16 weight matrix packed into mr-row panels. The
// elements are stored widened to float32 — the conversion is exact, the
// F16 kernels accumulate in float32 anyway (see F16GEMM), and widening at
// pack time moves the per-element conversion out of the O(m·k·n) inner
// loop into the O(m·k) pack.
type PackedAF16 struct {
	M, K int
	data []float32
}

// PackAF16 packs row-major a (m×k) into widened panel form.
func PackAF16(a []f16.F16, m, k int) *PackedAF16 {
	if m <= 0 || k <= 0 {
		panic("gemm: non-positive dimension")
	}
	if len(a) < m*k {
		panic("gemm: buffer too small for dimensions")
	}
	mp := (m + mr - 1) / mr * mr
	data := make([]float32, mp*k)
	for r0 := 0; r0 < m; r0 += mr {
		rows := m - r0
		if rows > mr {
			rows = mr
		}
		dst := data[r0*k:]
		for r := 0; r < rows; r++ {
			src := a[(r0+r)*k : (r0+r+1)*k]
			for l, v := range src {
				dst[l*mr+r] = v.Float32()
			}
		}
	}
	return &PackedAF16{M: m, K: k, data: data}
}

// Unpack reconstructs the original row-major matrix exactly (every
// binary16 value round-trips through float32 unchanged).
func (p *PackedAF16) Unpack() []f16.F16 {
	out := make([]f16.F16, p.M*p.K)
	for i := 0; i < p.M; i++ {
		base := (i / mr * mr) * p.K
		r := i % mr
		for l := 0; l < p.K; l++ {
			out[i*p.K+l] = f16.FromFloat32(p.data[base+l*mr+r])
		}
	}
	return out
}

// PackCache memoizes packed weight panels per output-channel range
// [c0,c1). Layers keep one cache per weight form; split execution hits it
// concurrently from the CPU and GPU sides of a plan, so it is safe for
// concurrent readers. build runs under the lock: concurrent first lookups
// of the same range pack exactly once and share the result.
type PackCache[T any] struct {
	mu sync.RWMutex
	m  map[[2]int]*T
}

// Get returns the cached pack for [c0,c1), building and caching it on the
// first lookup.
func (c *PackCache[T]) Get(c0, c1 int, build func() *T) *T {
	key := [2]int{c0, c1}
	c.mu.RLock()
	p := c.m[key]
	c.mu.RUnlock()
	if p != nil {
		return p
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if p := c.m[key]; p != nil {
		return p
	}
	if c.m == nil {
		c.m = make(map[[2]int]*T)
	}
	p = build()
	c.m[key] = p
	return p
}

// Reset drops every cached pack (weights changed, e.g. requantization).
func (c *PackCache[T]) Reset() {
	c.mu.Lock()
	c.m = nil
	c.mu.Unlock()
}

// Len reports the number of cached ranges.
func (c *PackCache[T]) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.m)
}
