package gemm

import "mulayer/internal/f16"

// Register-tiled micro-kernels over packed operands.
//
// The drivers here implement the GotoBLAS/gemmlowp loop structure scaled
// to what pure Go can exploit: the weight operand arrives packed into
// mr-row panels (pack.go), the streaming operand is packed per call into
// column panels of the kernel width (nrF for float, nrQ for QUInt8), and
// the inner loops compute full register tiles — mr×nrF float32
// accumulators, mr×nrQ int32 accumulators — instead of one scalar dot
// product at a time. Row panels are sharded across goroutines by
// parallelRows, whose blockM stride is a multiple of mr, so workers
// always own whole panels of the packed grid.
//
// Column tails narrower than the kernel width run through dedicated
// tail kernels at their true width; the n==1 (GEMV, FC-shaped) case gets
// a k-unrolled kernel of its own since fully-connected layers spend all
// their time there.
//
// Float kernels accumulate each c[i,j] in one float32 accumulator in
// ascending-k order — exactly the reference kernels' order — so F16
// results stay bit-identical to F16Ref and F32 differs from F32Ref only
// by the absence of a defined evaluation order guarantee for the final
// rounding (tests use tolerances for F32, exact equality for F16 and
// QUInt8).

const (
	// mr is the register-tile height (packed A panel height).
	mr = 4
	// nrF is the float register-tile width.
	nrF = 4
	// nrQ is the QUInt8 register-tile width.
	nrQ = 8
)

// packBF32 packs row-major b (k×n) into nrF-column panels. Full panels
// are returned in pb, panel jp covering columns [jp*nrF, jp*nrF+nrF) at
// offset jp*nrF*k; a tail of tw = n%nrF columns is packed at its true
// width. For n==1 the tail aliases b directly — the column is already
// contiguous.
func packBF32(b []float32, k, n int) (pb, tail []float32, tw int) {
	tw = n % nrF
	nFull := n - tw
	if nFull > 0 {
		pb = make([]float32, k*nFull)
		for j0 := 0; j0 < nFull; j0 += nrF {
			dst := pb[j0*k:]
			di := 0
			for l := 0; l < k; l++ {
				src := b[l*n+j0 : l*n+j0+nrF : l*n+j0+nrF]
				dst[di] = src[0]
				dst[di+1] = src[1]
				dst[di+2] = src[2]
				dst[di+3] = src[3]
				di += nrF
			}
		}
	}
	if tw > 0 {
		if n == 1 {
			return pb, b[:k], tw
		}
		tail = make([]float32, k*tw)
		for l := 0; l < k; l++ {
			copy(tail[l*tw:(l+1)*tw], b[l*n+nFull:l*n+n])
		}
	}
	return pb, tail, tw
}

// packBF16 packs row-major b (k×n) into nrF-column float32-widened
// panels (widening is exact; see PackedAF16).
func packBF16(b []f16.F16, k, n int) (pb, tail []float32, tw int) {
	tw = n % nrF
	nFull := n - tw
	if nFull > 0 {
		pb = make([]float32, k*nFull)
		for j0 := 0; j0 < nFull; j0 += nrF {
			dst := pb[j0*k:]
			di := 0
			for l := 0; l < k; l++ {
				src := b[l*n+j0 : l*n+j0+nrF : l*n+j0+nrF]
				dst[di] = src[0].Float32()
				dst[di+1] = src[1].Float32()
				dst[di+2] = src[2].Float32()
				dst[di+3] = src[3].Float32()
				di += nrF
			}
		}
	}
	if tw > 0 {
		tail = make([]float32, k*tw)
		for l := 0; l < k; l++ {
			for j := 0; j < tw; j++ {
				tail[l*tw+j] = b[l*n+nFull+j].Float32()
			}
		}
	}
	return pb, tail, tw
}

// packBU8 packs row-major b (k×n) into nrQ-column panels and computes the
// per-column sums for the zero-point decomposition. For n==1 the tail
// aliases b directly.
func packBU8(b []uint8, k, n int) (pb, tail []uint8, tw int, colSums []int32) {
	tw = n % nrQ
	nFull := n - tw
	colSums = make([]int32, n)
	if nFull > 0 {
		pb = make([]uint8, k*nFull)
		for j0 := 0; j0 < nFull; j0 += nrQ {
			dst := pb[j0*k:]
			sums := colSums[j0 : j0+nrQ : j0+nrQ]
			di := 0
			for l := 0; l < k; l++ {
				src := b[l*n+j0 : l*n+j0+nrQ : l*n+j0+nrQ]
				for j, v := range src {
					dst[di+j] = v
					sums[j] += int32(v)
				}
				di += nrQ
			}
		}
	}
	if tw > 0 {
		sums := colSums[nFull:]
		if n == 1 {
			tail = b[:k]
			for _, v := range tail {
				sums[0] += int32(v)
			}
			return pb, tail, tw, colSums
		}
		tail = make([]uint8, k*tw)
		for l := 0; l < k; l++ {
			src := b[l*n+nFull : l*n+n]
			for j, v := range src {
				tail[l*tw+j] = v
				sums[j] += int32(v)
			}
		}
	}
	return pb, tail, tw, colSums
}

// f32Ker4x4 computes one mr×nrF tile: dst[r*ldc+j] = Σ_l pa[l,r]·pb[l,j]
// for the packed panel pa (mr-interleaved) and packed column panel pb
// (nrF-interleaved), writing back the first rows rows.
func f32Ker4x4(pa, pb []float32, kk int, dst []float32, ldc, rows int) {
	var c00, c01, c02, c03 float32
	var c10, c11, c12, c13 float32
	var c20, c21, c22, c23 float32
	var c30, c31, c32, c33 float32
	for l := 0; l < kk; l++ {
		aa := pa[l*mr : l*mr+mr : l*mr+mr]
		bb := pb[l*nrF : l*nrF+nrF : l*nrF+nrF]
		a0, a1, a2, a3 := aa[0], aa[1], aa[2], aa[3]
		b0, b1, b2, b3 := bb[0], bb[1], bb[2], bb[3]
		c00 += a0 * b0
		c01 += a0 * b1
		c02 += a0 * b2
		c03 += a0 * b3
		c10 += a1 * b0
		c11 += a1 * b1
		c12 += a1 * b2
		c13 += a1 * b3
		c20 += a2 * b0
		c21 += a2 * b1
		c22 += a2 * b2
		c23 += a2 * b3
		c30 += a3 * b0
		c31 += a3 * b1
		c32 += a3 * b2
		c33 += a3 * b3
	}
	t := [mr][nrF]float32{
		{c00, c01, c02, c03},
		{c10, c11, c12, c13},
		{c20, c21, c22, c23},
		{c30, c31, c32, c33},
	}
	for r := 0; r < rows; r++ {
		copy(dst[r*ldc:r*ldc+nrF], t[r][:])
	}
}

// f32KerTail computes an mr×tw tile (tw < nrF) one column at a time.
// Accumulation stays single-accumulator ascending-k per element, so F16
// exactness is preserved.
func f32KerTail(pa, tail []float32, kk, tw int, dst []float32, ldc, rows int) {
	for j := 0; j < tw; j++ {
		var s0, s1, s2, s3 float32
		ai, bi := 0, j
		for l := 0; l < kk; l++ {
			aa := pa[ai : ai+mr : ai+mr]
			bv := tail[bi]
			s0 += aa[0] * bv
			s1 += aa[1] * bv
			s2 += aa[2] * bv
			s3 += aa[3] * bv
			ai += mr
			bi += tw
		}
		t := [mr]float32{s0, s1, s2, s3}
		for r := 0; r < rows; r++ {
			dst[r*ldc+j] = t[r]
		}
	}
}

// qKer4x8 computes one mr×nrQ QUInt8 tile of raw uint8·uint8 dot products
// and applies the zero-point corrections at writeback:
//
//	dst[r,j] = Σ_l a·b + rowAdj[r] − cAdj[j]
//
// where rowAdj[r] = k·za·zb − zb·rowSum[r] and cAdj[j] = za·colSum[j].
func qKer4x8(pa, pb []uint8, kk int, dst []int32, ldc, rows int, rowAdj *[mr]int32, cAdj []int32) {
	var c00, c01, c02, c03, c04, c05, c06, c07 int32
	var c10, c11, c12, c13, c14, c15, c16, c17 int32
	var c20, c21, c22, c23, c24, c25, c26, c27 int32
	var c30, c31, c32, c33, c34, c35, c36, c37 int32
	for l := 0; l < kk; l++ {
		aa := pa[l*mr : l*mr+mr : l*mr+mr]
		bb := pb[l*nrQ : l*nrQ+nrQ : l*nrQ+nrQ]
		a0, a1, a2, a3 := int32(aa[0]), int32(aa[1]), int32(aa[2]), int32(aa[3])
		b0, b1, b2, b3 := int32(bb[0]), int32(bb[1]), int32(bb[2]), int32(bb[3])
		b4, b5, b6, b7 := int32(bb[4]), int32(bb[5]), int32(bb[6]), int32(bb[7])
		c00 += a0 * b0
		c01 += a0 * b1
		c02 += a0 * b2
		c03 += a0 * b3
		c04 += a0 * b4
		c05 += a0 * b5
		c06 += a0 * b6
		c07 += a0 * b7
		c10 += a1 * b0
		c11 += a1 * b1
		c12 += a1 * b2
		c13 += a1 * b3
		c14 += a1 * b4
		c15 += a1 * b5
		c16 += a1 * b6
		c17 += a1 * b7
		c20 += a2 * b0
		c21 += a2 * b1
		c22 += a2 * b2
		c23 += a2 * b3
		c24 += a2 * b4
		c25 += a2 * b5
		c26 += a2 * b6
		c27 += a2 * b7
		c30 += a3 * b0
		c31 += a3 * b1
		c32 += a3 * b2
		c33 += a3 * b3
		c34 += a3 * b4
		c35 += a3 * b5
		c36 += a3 * b6
		c37 += a3 * b7
	}
	t := [mr][nrQ]int32{
		{c00, c01, c02, c03, c04, c05, c06, c07},
		{c10, c11, c12, c13, c14, c15, c16, c17},
		{c20, c21, c22, c23, c24, c25, c26, c27},
		{c30, c31, c32, c33, c34, c35, c36, c37},
	}
	ca := cAdj[:nrQ:nrQ]
	for r := 0; r < rows; r++ {
		ra := rowAdj[r]
		d := dst[r*ldc : r*ldc+nrQ : r*ldc+nrQ]
		for j := 0; j < nrQ; j++ {
			d[j] = t[r][j] + ra - ca[j]
		}
	}
}

// qKerGemv computes an mr×1 tile (the FC-shaped n==1 case), unrolled 4×
// over k. Integer addition wraps, so the regrouped accumulation is
// bit-identical to the reference.
func qKerGemv(pa, bt []uint8, kk int, dst []int32, ldc, rows int, rowAdj *[mr]int32, cAdj int32) {
	var s0, s1, s2, s3 int32
	l := 0
	for ; l+4 <= kk; l += 4 {
		aa := pa[l*mr : l*mr+4*mr : l*mr+4*mr]
		bb := bt[l : l+4 : l+4]
		b0, b1, b2, b3 := int32(bb[0]), int32(bb[1]), int32(bb[2]), int32(bb[3])
		s0 += int32(aa[0])*b0 + int32(aa[4])*b1 + int32(aa[8])*b2 + int32(aa[12])*b3
		s1 += int32(aa[1])*b0 + int32(aa[5])*b1 + int32(aa[9])*b2 + int32(aa[13])*b3
		s2 += int32(aa[2])*b0 + int32(aa[6])*b1 + int32(aa[10])*b2 + int32(aa[14])*b3
		s3 += int32(aa[3])*b0 + int32(aa[7])*b1 + int32(aa[11])*b2 + int32(aa[15])*b3
	}
	for ; l < kk; l++ {
		aa := pa[l*mr : l*mr+mr : l*mr+mr]
		bv := int32(bt[l])
		s0 += int32(aa[0]) * bv
		s1 += int32(aa[1]) * bv
		s2 += int32(aa[2]) * bv
		s3 += int32(aa[3]) * bv
	}
	t := [mr]int32{s0, s1, s2, s3}
	for r := 0; r < rows; r++ {
		dst[r*ldc] = t[r] + rowAdj[r] - cAdj
	}
}

// qKerTail computes an mr×tw tile (1 < tw < nrQ) one column at a time.
func qKerTail(pa, tail []uint8, kk, tw int, dst []int32, ldc, rows int, rowAdj *[mr]int32, cAdj []int32) {
	for j := 0; j < tw; j++ {
		var s0, s1, s2, s3 int32
		ai, bi := 0, j
		for l := 0; l < kk; l++ {
			aa := pa[ai : ai+mr : ai+mr]
			bv := int32(tail[bi])
			s0 += int32(aa[0]) * bv
			s1 += int32(aa[1]) * bv
			s2 += int32(aa[2]) * bv
			s3 += int32(aa[3]) * bv
			ai += mr
			bi += tw
		}
		t := [mr]int32{s0, s1, s2, s3}
		for r := 0; r < rows; r++ {
			dst[r*ldc+j] = t[r] + rowAdj[r] - cAdj[j]
		}
	}
}

// f32MulPacked is the tiled driver for c = pa·b with b row-major (K×n).
func f32MulPacked(pa *PackedAF32, b, c []float32, n int) {
	k := pa.K
	pb, tail, tw := packBF32(b, k, n)
	nFull := n - tw
	parallelRows(pa.M, func(i0, i1 int) {
		for r0 := i0; r0 < i1; r0 += mr {
			rows := i1 - r0
			if rows > mr {
				rows = mr
			}
			panel := pa.data[r0*k : (r0+mr)*k]
			dst := c[r0*n:]
			for j0 := 0; j0 < nFull; j0 += nrF {
				f32Ker4x4(panel, pb[j0*k:], k, dst[j0:], n, rows)
			}
			if tw > 0 {
				f32KerTail(panel, tail, k, tw, dst[nFull:], n, rows)
			}
		}
	})
}

// f16MulPacked is the tiled driver for binary16 results: the float32
// kernels accumulate into a per-panel scratch strip which is rounded to
// binary16 once per element, matching F16Ref bit-for-bit.
func f16MulPacked(pa *PackedAF16, b, c []f16.F16, n int) {
	k := pa.K
	pb, tail, tw := packBF16(b, k, n)
	nFull := n - tw
	parallelRows(pa.M, func(i0, i1 int) {
		scratch := make([]float32, mr*n)
		for r0 := i0; r0 < i1; r0 += mr {
			rows := i1 - r0
			if rows > mr {
				rows = mr
			}
			panel := pa.data[r0*k : (r0+mr)*k]
			for j0 := 0; j0 < nFull; j0 += nrF {
				f32Ker4x4(panel, pb[j0*k:], k, scratch[j0:], n, rows)
			}
			if tw > 0 {
				f32KerTail(panel, tail, k, tw, scratch[nFull:], n, rows)
			}
			for r := 0; r < rows; r++ {
				src := scratch[r*n : r*n+n]
				d := c[(r0+r)*n : (r0+r)*n+n]
				for j, v := range src {
					d[j] = f16.FromFloat32(v)
				}
			}
		}
	})
}

// qMulPacked is the tiled driver for the gemmlowp accumulator matrix.
func qMulPacked(pa *PackedAU8, b []uint8, acc []int32, n int, za, zb int32) {
	k := pa.K
	pb, tail, tw, colSums := packBU8(b, k, n)
	base := int32(k) * za * zb
	cAdj := colSums // reuse in place: cAdj[j] = za·colSum[j]
	for j, s := range colSums {
		cAdj[j] = za * s
	}
	nFull := n - tw
	parallelRows(pa.M, func(i0, i1 int) {
		for r0 := i0; r0 < i1; r0 += mr {
			rows := i1 - r0
			if rows > mr {
				rows = mr
			}
			panel := pa.data[r0*k : (r0+mr)*k]
			var rowAdj [mr]int32
			for r := 0; r < rows; r++ {
				rowAdj[r] = base - zb*pa.rowSums[r0+r]
			}
			dst := acc[r0*n:]
			for j0 := 0; j0 < nFull; j0 += nrQ {
				qKer4x8(panel, pb[j0*k:], k, dst[j0:], n, rows, &rowAdj, cAdj[j0:])
			}
			switch {
			case tw == 1:
				qKerGemv(panel, tail, k, dst[nFull:], n, rows, &rowAdj, cAdj[nFull])
			case tw > 1:
				qKerTail(panel, tail, k, tw, dst[nFull:], n, rows, &rowAdj, cAdj[nFull:])
			}
		}
	})
}
