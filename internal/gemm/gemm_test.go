package gemm

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mulayer/internal/f16"
)

func randF32(n int, rng *rand.Rand) []float32 {
	s := make([]float32, n)
	for i := range s {
		s[i] = rng.Float32()*2 - 1
	}
	return s
}

func randU8(n int, rng *rand.Rand) []uint8 {
	s := make([]uint8, n)
	for i := range s {
		s[i] = uint8(rng.Intn(256))
	}
	return s
}

func TestF32MatchesRef(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	shapes := [][3]int{{1, 1, 1}, {2, 3, 4}, {7, 5, 9}, {33, 17, 40}, {64, 64, 64}, {100, 3, 1}}
	for _, s := range shapes {
		m, k, n := s[0], s[1], s[2]
		a, b := randF32(m*k, rng), randF32(k*n, rng)
		got, want := make([]float32, m*n), make([]float32, m*n)
		F32(a, b, got, m, k, n)
		F32Ref(a, b, want, m, k, n)
		for i := range got {
			if d := math.Abs(float64(got[i] - want[i])); d > 1e-4 {
				t.Fatalf("shape %v elem %d: %v vs %v", s, i, got[i], want[i])
			}
		}
	}
}

func TestF32OverwritesStaleOutput(t *testing.T) {
	a := []float32{1, 2}
	b := []float32{3, 4}
	c := []float32{999} // stale garbage must not leak into the result
	F32(a, b, c, 1, 2, 1)
	if c[0] != 11 {
		t.Fatalf("c = %v, want 11", c[0])
	}
}

func TestF32PropertyAgainstRef(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func(ms, ks, ns uint8) bool {
		m, k, n := int(ms%20)+1, int(ks%20)+1, int(ns%20)+1
		a, b := randF32(m*k, rng), randF32(k*n, rng)
		got, want := make([]float32, m*n), make([]float32, m*n)
		F32(a, b, got, m, k, n)
		F32Ref(a, b, want, m, k, n)
		for i := range got {
			if math.Abs(float64(got[i]-want[i])) > 1e-4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestF16MatchesRef(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, s := range [][3]int{{1, 1, 1}, {5, 7, 3}, {40, 33, 20}} {
		m, k, n := s[0], s[1], s[2]
		a, b := f16.FromSlice32(randF32(m*k, rng)), f16.FromSlice32(randF32(k*n, rng))
		got := make([]f16.F16, m*n)
		want := make([]f16.F16, m*n)
		F16GEMM(a, b, got, m, k, n)
		F16Ref(a, b, want, m, k, n)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("shape %v elem %d: %#04x vs %#04x", s, i, got[i], want[i])
			}
		}
	}
}

func TestF16CloseToF32(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m, k, n := 16, 32, 16
	af := randF32(m*k, rng)
	bf := randF32(k*n, rng)
	a, b := f16.FromSlice32(af), f16.FromSlice32(bf)
	hc := make([]f16.F16, m*n)
	F16GEMM(a, b, hc, m, k, n)
	fc := make([]float32, m*n)
	F32Ref(af, bf, fc, m, k, n)
	for i := range fc {
		d := math.Abs(float64(hc[i].Float32() - fc[i]))
		// Operand rounding error ~2^-11 per element × k terms.
		if d > 0.05 {
			t.Fatalf("elem %d: F16 %v vs F32 %v", i, hc[i].Float32(), fc[i])
		}
	}
}

func TestQGEMMMatchesRef(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, s := range [][3]int{{1, 1, 1}, {6, 11, 4}, {37, 64, 35}} {
		m, k, n := s[0], s[1], s[2]
		a, b := randU8(m*k, rng), randU8(k*n, rng)
		za, zb := int32(rng.Intn(256)), int32(rng.Intn(256))
		got, want := make([]int32, m*n), make([]int32, m*n)
		QGEMM(a, b, got, m, k, n, za, zb)
		QGEMMRef(a, b, want, m, k, n, za, zb)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("shape %v zp(%d,%d) elem %d: %d vs %d", s, za, zb, i, got[i], want[i])
			}
		}
	}
}

func TestQGEMMZeroPointIdentity(t *testing.T) {
	// With zero points equal to the operand values, every product is 0.
	m, k, n := 3, 4, 5
	a := make([]uint8, m*k)
	b := make([]uint8, k*n)
	for i := range a {
		a[i] = 128
	}
	for i := range b {
		b[i] = 7
	}
	acc := make([]int32, m*n)
	QGEMM(a, b, acc, m, k, n, 128, 7)
	for i, v := range acc {
		if v != 0 {
			t.Fatalf("acc[%d] = %d, want 0", i, v)
		}
	}
}

func TestQGEMMPropertyAgainstRef(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	f := func(ms, ks, ns, zas, zbs uint8) bool {
		m, k, n := int(ms%16)+1, int(ks%16)+1, int(ns%16)+1
		a, b := randU8(m*k, rng), randU8(k*n, rng)
		got, want := make([]int32, m*n), make([]int32, m*n)
		QGEMM(a, b, got, m, k, n, int32(zas), int32(zbs))
		QGEMMRef(a, b, want, m, k, n, int32(zas), int32(zbs))
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDimensionChecks(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("short buffer must panic")
		}
	}()
	F32(make([]float32, 3), make([]float32, 4), make([]float32, 4), 2, 2, 2)
}

func TestConvGeomOutputSizes(t *testing.T) {
	// 224×224 input, 3×3 kernel, stride 1, pad 1 → 224×224 (VGG style).
	g := ConvGeom{InC: 3, InH: 224, InW: 224, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	if g.OutH() != 224 || g.OutW() != 224 {
		t.Errorf("same-pad 3x3: %dx%d", g.OutH(), g.OutW())
	}
	// 227×227, 11×11, stride 4, no pad → 55×55 (AlexNet conv1).
	g = ConvGeom{InC: 3, InH: 227, InW: 227, KH: 11, KW: 11, StrideH: 4, StrideW: 4}
	if g.OutH() != 55 || g.OutW() != 55 {
		t.Errorf("alexnet conv1: %dx%d", g.OutH(), g.OutW())
	}
	if g.PatchRows() != 3*11*11 {
		t.Errorf("patch rows %d", g.PatchRows())
	}
	if g.PatchCols() != 55*55 {
		t.Errorf("patch cols %d", g.PatchCols())
	}
}

// directConv is an im2col-free reference convolution for one batch element.
func directConv(in []float32, g ConvGeom, w []float32, outC int) []float32 {
	oh, ow := g.OutH(), g.OutW()
	out := make([]float32, outC*oh*ow)
	for oc := 0; oc < outC; oc++ {
		for y := 0; y < oh; y++ {
			for x := 0; x < ow; x++ {
				var s float32
				for c := 0; c < g.InC; c++ {
					for kh := 0; kh < g.KH; kh++ {
						sy := y*g.StrideH - g.PadH + kh
						if sy < 0 || sy >= g.InH {
							continue
						}
						for kw := 0; kw < g.KW; kw++ {
							sx := x*g.StrideW - g.PadW + kw
							if sx < 0 || sx >= g.InW {
								continue
							}
							wv := w[((oc*g.InC+c)*g.KH+kh)*g.KW+kw]
							s += wv * in[(c*g.InH+sy)*g.InW+sx]
						}
					}
				}
				out[(oc*oh+y)*ow+x] = s
			}
		}
	}
	return out
}

func TestIm2ColF32ConvEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	geoms := []ConvGeom{
		{InC: 1, InH: 5, InW: 5, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 0, PadW: 0},
		{InC: 3, InH: 8, InW: 8, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1},
		{InC: 2, InH: 9, InW: 7, KH: 5, KW: 3, StrideH: 2, StrideW: 2, PadH: 2, PadW: 1},
		{InC: 4, InH: 6, InW: 6, KH: 1, KW: 1, StrideH: 1, StrideW: 1},
	}
	for _, g := range geoms {
		outC := 3
		in := randF32(g.InC*g.InH*g.InW, rng)
		w := randF32(outC*g.InC*g.KH*g.KW, rng)
		patches := make([]float32, g.PatchRows()*g.PatchCols())
		Im2ColF32(in, g, patches)
		got := make([]float32, outC*g.PatchCols())
		F32Ref(w, patches, got, outC, g.PatchRows(), g.PatchCols())
		want := directConv(in, g, w, outC)
		for i := range got {
			if math.Abs(float64(got[i]-want[i])) > 1e-4 {
				t.Fatalf("geom %+v elem %d: %v vs %v", g, i, got[i], want[i])
			}
		}
	}
}

func TestIm2ColU8PadsWithZeroPoint(t *testing.T) {
	g := ConvGeom{InC: 1, InH: 2, InW: 2, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	in := []uint8{10, 20, 30, 40}
	dst := make([]uint8, g.PatchRows()*g.PatchCols())
	const zp = 128
	Im2ColU8(in, g, dst, zp)
	// Top-left output position, top-left kernel tap hits padding.
	if dst[0] != zp {
		t.Errorf("padding tap = %d, want zero point %d", dst[0], zp)
	}
	// Center tap (kh=1,kw=1) row: all four outputs align with the input.
	centerRow := dst[4*g.PatchCols() : 5*g.PatchCols()]
	for i, want := range in {
		if centerRow[i] != want {
			t.Errorf("center tap out %d = %d, want %d", i, centerRow[i], want)
		}
	}
}

func TestIm2ColF16MatchesF32(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := ConvGeom{InC: 2, InH: 7, InW: 5, KH: 3, KW: 3, StrideH: 2, StrideW: 1, PadH: 1, PadW: 1}
	inF := randF32(g.InC*g.InH*g.InW, rng)
	inH := f16.FromSlice32(inF)
	pf := make([]float32, g.PatchRows()*g.PatchCols())
	ph := make([]f16.F16, g.PatchRows()*g.PatchCols())
	Im2ColF32(inF, g, pf)
	Im2ColF16(inH, g, ph)
	for i := range pf {
		if ph[i] != f16.FromFloat32(pf[i]) {
			t.Fatalf("elem %d differs", i)
		}
	}
}

// degenerateShapes are the panel-boundary cases the tiled kernels must
// get right: single elements, row counts below one panel, k=1, and
// widths straddling the nrF/nrQ tile widths and the GEMV special case.
func degenerateShapes() [][3]int {
	return [][3]int{
		{1, 1, 1},
		{3, 5, 1},    // m < mr, GEMV
		{2, 1, 9},    // k = 1, n % nrQ = 1
		{4, 7, 3},    // n < nrF
		{5, 9, 7},    // n between nrF and nrQ, ragged everything
		{8, 16, 12},  // n % nrQ = 4 (full f32 panels, q tail)
		{33, 2, 17},  // m just past blockM
		{31, 3, 2},   // m just below blockM, tiny tail width
		{65, 64, 63}, // every dimension off its block size
	}
}

func TestTiledDegenerateShapesMatchRef(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	for _, s := range degenerateShapes() {
		m, k, n := s[0], s[1], s[2]

		af, bf := randF32(m*k, rng), randF32(k*n, rng)
		gotF, wantF := make([]float32, m*n), make([]float32, m*n)
		F32Packed(PackAF32(af, m, k), bf, gotF, n)
		F32Ref(af, bf, wantF, m, k, n)
		for i := range gotF {
			if d := math.Abs(float64(gotF[i] - wantF[i])); d > 1e-4 {
				t.Fatalf("f32 shape %v elem %d: %v vs %v", s, i, gotF[i], wantF[i])
			}
		}

		ah, bh := f16.FromSlice32(af), f16.FromSlice32(bf)
		gotH, wantH := make([]f16.F16, m*n), make([]f16.F16, m*n)
		F16GEMMPacked(PackAF16(ah, m, k), bh, gotH, n)
		F16Ref(ah, bh, wantH, m, k, n)
		for i := range gotH {
			if gotH[i] != wantH[i] {
				t.Fatalf("f16 shape %v elem %d: %#04x vs %#04x", s, i, gotH[i], wantH[i])
			}
		}

		au, bu := randU8(m*k, rng), randU8(k*n, rng)
		za, zb := int32(rng.Intn(256)), int32(rng.Intn(256))
		gotQ, wantQ := make([]int32, m*n), make([]int32, m*n)
		QGEMMPacked(PackAU8(au, m, k), bu, gotQ, n, za, zb)
		QGEMMRef(au, bu, wantQ, m, k, n, za, zb)
		for i := range gotQ {
			if gotQ[i] != wantQ[i] {
				t.Fatalf("q shape %v zp(%d,%d) elem %d: %d vs %d", s, za, zb, i, gotQ[i], wantQ[i])
			}
		}
	}
}

// ForceRef must route every entry point, including the packed ones,
// through the oracle loops.
func TestForceRefRoutesToReference(t *testing.T) {
	defer func() { ForceRef = false }()
	rng := rand.New(rand.NewSource(41))
	m, k, n := 6, 10, 5
	a, b := randF32(m*k, rng), randF32(k*n, rng)
	want := make([]float32, m*n)
	F32Ref(a, b, want, m, k, n)
	ForceRef = true
	got := make([]float32, m*n)
	F32(a, b, got, m, k, n)
	gotP := make([]float32, m*n)
	F32Packed(PackAF32(a, m, k), b, gotP, n)
	for i := range want {
		// The reference is deterministic: forced results are identical.
		if got[i] != want[i] || gotP[i] != want[i] {
			t.Fatalf("elem %d: ForceRef results %v/%v differ from ref %v", i, got[i], gotP[i], want[i])
		}
	}
}

func BenchmarkF32GEMM128(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	m, k, n := 128, 128, 128
	a, bb := randF32(m*k, rng), randF32(k*n, rng)
	c := make([]float32, m*n)
	b.SetBytes(int64(m * k * n * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		F32(a, bb, c, m, k, n)
	}
}

func BenchmarkQGEMM128(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	m, k, n := 128, 128, 128
	a, bb := randU8(m*k, rng), randU8(k*n, rng)
	acc := make([]int32, m*n)
	b.SetBytes(int64(m * k * n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		QGEMM(a, bb, acc, m, k, n, 128, 128)
	}
}

func BenchmarkF16GEMM64(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	m, k, n := 64, 64, 64
	a := f16.FromSlice32(randF32(m*k, rng))
	bb := f16.FromSlice32(randF32(k*n, rng))
	c := make([]f16.F16, m*n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		F16GEMM(a, bb, c, m, k, n)
	}
}

// Tiled-vs-oracle benchmark pairs on the two workload shapes that matter
// for serving: conv-shaped (square-ish, im2col patches) and FC-shaped
// (GEMV). Run with -cpu=1 for the single-thread kernel comparison that
// BENCH_gemm.json tracks; `mulayer-bench -gemm` sweeps the full zoo.
func benchQ(b *testing.B, m, k, n int, kernel func(a, bb []uint8, acc []int32, pa *PackedAU8)) {
	rng := rand.New(rand.NewSource(12))
	a, bb := randU8(m*k, rng), randU8(k*n, rng)
	acc := make([]int32, m*n)
	pa := PackAU8(a, m, k)
	b.SetBytes(int64(m * k * n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kernel(a, bb, acc, pa)
	}
}

func BenchmarkQGEMMConvShapedRef(b *testing.B) {
	benchQ(b, 96, 1152, 784, func(a, bb []uint8, acc []int32, _ *PackedAU8) {
		QGEMMRef(a, bb, acc, 96, 1152, 784, 128, 3)
	})
}

func BenchmarkQGEMMConvShapedPacked(b *testing.B) {
	benchQ(b, 96, 1152, 784, func(_, bb []uint8, acc []int32, pa *PackedAU8) {
		QGEMMPacked(pa, bb, acc, 784, 128, 3)
	})
}

func BenchmarkQGEMMFCShapedRef(b *testing.B) {
	benchQ(b, 1024, 4096, 1, func(a, bb []uint8, acc []int32, _ *PackedAU8) {
		QGEMMRef(a, bb, acc, 1024, 4096, 1, 128, 3)
	})
}

func BenchmarkQGEMMFCShapedPacked(b *testing.B) {
	benchQ(b, 1024, 4096, 1, func(_, bb []uint8, acc []int32, pa *PackedAU8) {
		QGEMMPacked(pa, bb, acc, 1, 128, 3)
	})
}
