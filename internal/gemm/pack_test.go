package gemm

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"mulayer/internal/f16"
)

// Pack→unpack must reproduce the weight matrix exactly for every dtype
// and every (m,k), including panel-tail row counts.
func TestPackUnpackRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	f := func(ms, ks uint8) bool {
		m, k := int(ms%37)+1, int(ks%37)+1
		af := randF32(m*k, rng)
		if got := PackAF32(af, m, k).Unpack(); len(got) != m*k {
			return false
		} else {
			for i := range got {
				if got[i] != af[i] {
					return false
				}
			}
		}
		au := randU8(m*k, rng)
		pu := PackAU8(au, m, k)
		gu := pu.Unpack()
		for i := range gu {
			if gu[i] != au[i] {
				return false
			}
		}
		// Row sums recorded at pack time must match the rows.
		for i := 0; i < m; i++ {
			var s int32
			for l := 0; l < k; l++ {
				s += int32(au[i*k+l])
			}
			if pu.rowSums[i] != s {
				return false
			}
		}
		ah := f16.FromSlice32(randF32(m*k, rng))
		gh := PackAF16(ah, m, k).Unpack()
		for i := range gh {
			if gh[i] != ah[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPackDimensionChecks(t *testing.T) {
	for _, fn := range []func(){
		func() { PackAF32(make([]float32, 3), 2, 2) },
		func() { PackAU8(make([]uint8, 3), 2, 2) },
		func() { PackAF16(make([]f16.F16, 3), 2, 2) },
		func() { PackAF32(nil, 0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("short buffer or bad dims must panic")
				}
			}()
			fn()
		}()
	}
}

// A cached pack must give results identical to a fresh pack when reused
// across calls.
func TestPackedReuseIdenticalResults(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	m, k, n := 37, 53, 29
	a, b := randU8(m*k, rng), randU8(k*n, rng)
	pa := PackAU8(a, m, k)
	first := make([]int32, m*n)
	QGEMMPacked(pa, b, first, n, 7, 200)
	for call := 0; call < 3; call++ {
		got := make([]int32, m*n)
		QGEMMPacked(pa, b, got, n, 7, 200)
		for i := range got {
			if got[i] != first[i] {
				t.Fatalf("call %d elem %d: %d vs %d", call, i, got[i], first[i])
			}
		}
	}
	want := make([]int32, m*n)
	QGEMMRef(a, b, want, m, k, n, 7, 200)
	for i := range first {
		if first[i] != want[i] {
			t.Fatalf("elem %d: packed %d vs ref %d", i, first[i], want[i])
		}
	}
}

// PackCache must pack each range exactly once and hand every concurrent
// reader the same pack; kernels running concurrently against the shared
// pack must all agree with the reference (exercised under `make race`).
func TestPackCacheConcurrentReaders(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	m, k, n := 24, 31, 17
	a, b := randU8(m*k, rng), randU8(k*n, rng)
	want := make([]int32, m*n)
	QGEMMRef(a, b, want, m, k, n, 3, 250)

	var cache PackCache[PackedAU8]
	var builds sync.Map
	var wg sync.WaitGroup
	packs := make([]*PackedAU8, 16)
	for g := 0; g < len(packs); g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			pa := cache.Get(0, m, func() *PackedAU8 {
				builds.Store(g, true)
				return PackAU8(a, m, k)
			})
			packs[g] = pa
			got := make([]int32, m*n)
			QGEMMPacked(pa, b, got, n, 3, 250)
			for i := range got {
				if got[i] != want[i] {
					t.Errorf("goroutine %d elem %d: %d vs %d", g, i, got[i], want[i])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	nbuilds := 0
	builds.Range(func(_, _ any) bool { nbuilds++; return true })
	if nbuilds != 1 {
		t.Errorf("build ran %d times, want exactly once", nbuilds)
	}
	for g := 1; g < len(packs); g++ {
		if packs[g] != packs[0] {
			t.Errorf("goroutine %d got a different pack pointer", g)
		}
	}
	if cache.Len() != 1 {
		t.Errorf("cache holds %d entries, want 1", cache.Len())
	}
	cache.Reset()
	if cache.Len() != 0 {
		t.Errorf("cache holds %d entries after Reset, want 0", cache.Len())
	}
}

// Distinct ranges get distinct packs whose results match the reference
// computed over the corresponding row slice.
func TestPackCacheRangeKeys(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	m, k, n := 20, 13, 9
	a, b := randF32(m*k, rng), randF32(k*n, rng)
	var cache PackCache[PackedAF32]
	for _, r := range [][2]int{{0, m}, {0, 7}, {7, m}, {0, 7}} {
		c0, c1 := r[0], r[1]
		pa := cache.Get(c0, c1, func() *PackedAF32 {
			return PackAF32(a[c0*k:c1*k], c1-c0, k)
		})
		got := make([]float32, (c1-c0)*n)
		F32Packed(pa, b, got, n)
		want := make([]float32, (c1-c0)*n)
		F32Ref(a[c0*k:c1*k], b, want, c1-c0, k, n)
		for i := range got {
			d := got[i] - want[i]
			if d < -1e-4 || d > 1e-4 {
				t.Fatalf("range %v elem %d: %v vs %v", r, i, got[i], want[i])
			}
		}
	}
	if cache.Len() != 3 {
		t.Errorf("cache holds %d entries, want 3 distinct ranges", cache.Len())
	}
}
