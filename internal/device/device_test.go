package device

import (
	"testing"
	"time"

	"mulayer/internal/nn"
	"mulayer/internal/tensor"
)

func testProc() *Processor {
	return &Processor{
		Name: "test-cpu", Type: CPU, Cores: 4, FreqGHz: 2.0,
		MACsPerCycle: map[tensor.DataType]float64{
			tensor.F32: 2, tensor.F16: 2, tensor.QUInt8: 4,
		},
		EffByKind:        map[nn.OpKind]float64{nn.OpConv: 1.0, nn.OpFC: 0.5},
		MemBWGBs:         10,
		CacheBytes:       1 << 20,
		CacheSpillFactor: 0.8,
		LaunchOverhead:   10 * time.Microsecond,
		ConvertPenalty:   1.05,
		PicoJPerMAC: map[tensor.DataType]float64{
			tensor.F32: 100, tensor.F16: 100, tensor.QUInt8: 40,
		},
		ActivePowerW: 2,
	}
}

func TestPeakMACs(t *testing.T) {
	p := testProc()
	// 4 cores × 2 GHz × 2 MACs/cycle = 16 GMAC/s.
	if got := p.PeakMACs(tensor.F32); got != 16e9 {
		t.Fatalf("peak = %g", got)
	}
	if got := p.PeakMACs(tensor.QUInt8); got != 32e9 {
		t.Fatalf("u8 peak = %g", got)
	}
}

func TestKernelTimeComputeBound(t *testing.T) {
	p := testProc()
	w := Work{Kind: nn.OpConv, MACs: 16e9, MovedBytes: 1000, WorkingSetBytes: 1000, Compute: tensor.F32}
	got := p.KernelTime(w)
	if got != time.Second {
		t.Fatalf("compute-bound kernel = %v, want 1s", got)
	}
	// QUInt8 runs 2× faster.
	w.Compute = tensor.QUInt8
	if got := p.KernelTime(w); got != 500*time.Millisecond {
		t.Fatalf("u8 kernel = %v", got)
	}
}

func TestKernelTimeMemoryBound(t *testing.T) {
	p := testProc()
	// 10 GB moved at 10 GB/s = 1s even with tiny compute.
	w := Work{Kind: nn.OpConv, MACs: 1000, MovedBytes: 10e9, Compute: tensor.F32}
	if got := p.KernelTime(w); got != time.Second {
		t.Fatalf("memory-bound kernel = %v", got)
	}
}

func TestKernelTimeCacheKnee(t *testing.T) {
	p := testProc()
	small := Work{Kind: nn.OpConv, MACs: 16e6, WorkingSetBytes: 1000, Compute: tensor.F32}
	big := Work{Kind: nn.OpConv, MACs: 16e6, WorkingSetBytes: 2 << 20, Compute: tensor.F32}
	ts, tb := p.KernelTime(small), p.KernelTime(big)
	if tb <= ts {
		t.Fatalf("spilled working set must be slower: %v vs %v", ts, tb)
	}
	ratio := float64(tb) / float64(ts)
	if ratio < 1.2 || ratio > 1.3 {
		t.Fatalf("spill ratio = %v, want 1/0.8", ratio)
	}
}

func TestKernelTimeEfficiencyByKind(t *testing.T) {
	p := testProc()
	conv := Work{Kind: nn.OpConv, MACs: 1e9, Compute: tensor.F32}
	fc := Work{Kind: nn.OpFC, MACs: 1e9, Compute: tensor.F32}
	if p.KernelTime(fc) != 2*p.KernelTime(conv) {
		t.Fatal("FC at 0.5 efficiency must take 2× conv time")
	}
	// Unknown kind defaults to 1.0.
	other := Work{Kind: nn.OpSoftmax, MACs: 1e9, Compute: tensor.F32}
	if p.KernelTime(other) != p.KernelTime(conv) {
		t.Fatal("unknown kind defaults to conv efficiency")
	}
}

func TestKernelTimeConvertPenalty(t *testing.T) {
	p := testProc()
	w := Work{Kind: nn.OpConv, MACs: 1e9, Compute: tensor.F16}
	wc := w
	wc.Converted = true
	if p.KernelTime(wc) <= p.KernelTime(w) {
		t.Fatal("conversion must add time")
	}
}

func TestKernelEnergy(t *testing.T) {
	p := testProc()
	w := Work{Kind: nn.OpConv, MACs: 1e9, Compute: tensor.F32}
	if got := p.KernelEnergyPJ(w); got != 100e9 {
		t.Fatalf("energy = %g pJ", got)
	}
	w.Compute = tensor.QUInt8
	if got := p.KernelEnergyPJ(w); got != 40e9 {
		t.Fatalf("u8 energy = %g pJ", got)
	}
}

func TestKernelTimePanicsOnNegativeWork(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative MACs must panic")
		}
	}()
	testProc().KernelTime(Work{MACs: -1, Compute: tensor.F32})
}

func TestValidate(t *testing.T) {
	p := testProc()
	if err := p.Validate(); err != nil {
		t.Fatalf("valid processor rejected: %v", err)
	}
	bad := testProc()
	bad.Cores = 0
	if bad.Validate() == nil {
		t.Error("zero cores must fail")
	}
	bad2 := testProc()
	delete(bad2.MACsPerCycle, tensor.F16)
	if bad2.Validate() == nil {
		t.Error("missing dtype entry must fail")
	}
	bad3 := testProc()
	bad3.CacheSpillFactor = 1.5
	if bad3.Validate() == nil {
		t.Error("spill factor > 1 must fail")
	}
	bad4 := testProc()
	bad4.ConvertPenalty = 0.9
	if bad4.Validate() == nil {
		t.Error("convert penalty < 1 must fail")
	}
}

func TestTypeString(t *testing.T) {
	if CPU.String() != "CPU" || GPU.String() != "GPU" {
		t.Error("type strings")
	}
}
