// Package device models the heterogeneous processors of a mobile SoC for
// μLayer's latency and energy simulation.
//
// The paper measures real Exynos parts; a pure-Go reproduction has neither
// NEON nor a Mali GPU, so this package substitutes an analytic cost model
// (see DESIGN.md §2): each processor has a peak multiply-accumulate
// throughput per data type, per-op-class efficiency factors, a
// working-set knee at its last-level cache, and a memory bandwidth; a
// kernel's time is the maximum of its compute time and its memory time
// plus dispatch overhead charged by the executor. Dynamic energy is
// work-based (picojoules per MAC per data type plus DRAM energy per byte),
// which makes it distribution-invariant — exactly the property that lets
// μLayer convert a latency win into an energy win via the SoC's static
// power (§7.3).
//
// The model is calibrated so the paper's measured *ratios* hold: on the
// high-end part the GPU outruns the CPU by ~1.4× at F32 (Figure 5), the
// CPU gains ~2.2× from QUInt8 while F16 does nothing for it, and the GPU
// gains ~1.9× from F16 while QUInt8 slightly hurts it (Figure 8); on the
// mid-range part the CPU is ~26% faster than the GPU (§3.1).
package device

import (
	"fmt"
	"time"

	"mulayer/internal/nn"
	"mulayer/internal/tensor"
)

// Type distinguishes processor classes.
type Type int

// Processor classes on the modeled SoCs.
const (
	CPU Type = iota
	GPU
	NPU
)

// String implements fmt.Stringer.
func (t Type) String() string {
	switch t {
	case CPU:
		return "CPU"
	case GPU:
		return "GPU"
	case NPU:
		return "NPU"
	}
	return fmt.Sprintf("Type(%d)", int(t))
}

// Processor is one compute device of a SoC.
type Processor struct {
	Name    string
	Type    Type
	Cores   int
	FreqGHz float64

	// MACsPerCycle is the effective multiply-accumulates per cycle per
	// core for each compute data type (vector width × issue rate ×
	// microarchitectural efficiency).
	MACsPerCycle map[tensor.DataType]float64

	// EffByKind derates the peak for each op class (GEMV-shaped FC layers
	// are bandwidth-starved; pooling and elementwise ops barely use the
	// ALUs). Conv is the 1.0 reference.
	EffByKind map[nn.OpKind]float64

	// MemBWGBs is the effective memory bandwidth in GB/s.
	MemBWGBs float64

	// CacheBytes is the last-level cache capacity; working sets beyond it
	// run at CacheSpillFactor of peak. This knee is what keeps layer
	// latency from being exactly linear in MACs, so the latency predictor
	// has something real to regress.
	CacheBytes       int64
	CacheSpillFactor float64

	// LaunchOverhead is the fixed cost of dispatching one kernel
	// (OpenCL command issue for the GPU, thread-pool wake for the CPU).
	LaunchOverhead time.Duration

	// ConvertPenalty multiplies compute time when the kernel converts
	// between storage and compute types on the fly (the GPU's QUInt8→F16
	// load conversion under processor-friendly quantization).
	ConvertPenalty float64

	// SplitChannelKnee models the utilization loss of partial-channel
	// kernels: a kernel computing c output channels runs at c/(c+knee) of
	// the full-kernel rate. Splitting a wide layer is nearly free; carving
	// a 16-channel convolution into 4-channel slices starves the GEMM's M
	// dimension (CPU) or the core occupancy (GPU). Together with the
	// byte-proportional CPU-GPU synchronization this is why branch
	// distribution beats channel splitting on divergent small-channel
	// modules (§5).
	SplitChannelKnee int

	// PicoJPerMAC is the dynamic energy per multiply-accumulate for each
	// compute data type.
	PicoJPerMAC map[tensor.DataType]float64

	// ActivePowerW is the cluster's typical power draw while busy
	// (reported in traces; energy accounting is work-based).
	ActivePowerW float64
}

// Work describes one kernel invocation for costing.
type Work struct {
	Kind nn.OpKind
	// MACs is the multiply-accumulate count of the kernel (already scaled
	// by the processor's share under channel-wise distribution).
	MACs int64
	// MovedBytes is the DRAM traffic: activations in, weights in,
	// activations out, at their storage widths.
	MovedBytes int64
	// WorkingSetBytes is the resident set (input + weights) used for the
	// cache knee.
	WorkingSetBytes int64
	// Compute is the arithmetic data type of the kernel.
	Compute tensor.DataType
	// Converted marks on-the-fly storage↔compute conversion.
	Converted bool
	// SideChannels is the number of output channels this kernel computes
	// when it is a channel-wise-split share of a layer; 0 marks a full
	// kernel. Split kernels run at SideChannels/(SideChannels+knee) of the
	// full-kernel rate.
	SideChannels int
	// Rows is the GEMM row-panel multiplicity of a fused micro-batch: the
	// number of independent input rows carried by the kernel (0 and 1 mean
	// a single inference). MACs and MovedBytes must already be scaled by
	// the caller; Rows additionally recovers the M-dimension utilization
	// of GEMV-shaped FC kernels, whose single-row derate shrinks as the
	// row panel widens.
	Rows int
}

// PeakMACs returns the processor's peak MAC/s for a compute type.
func (p *Processor) PeakMACs(dt tensor.DataType) float64 {
	per, ok := p.MACsPerCycle[dt]
	if !ok {
		panic(fmt.Sprintf("device: %s has no throughput entry for %v", p.Name, dt))
	}
	return float64(p.Cores) * p.FreqGHz * 1e9 * per
}

// KernelTime returns the execution time of one kernel, excluding the
// dispatch overhead (the executor charges LaunchOverhead according to its
// issue model, since asynchronous issue can hide it, §6).
func (p *Processor) KernelTime(w Work) time.Duration {
	if w.MACs < 0 || w.MovedBytes < 0 {
		panic("device: negative work")
	}
	eff, ok := p.EffByKind[w.Kind]
	if !ok {
		eff = 1
	}
	if w.Rows > 1 && w.Kind == nn.OpFC {
		// A single-row FC is a GEMV: M = 1 leaves the kernel
		// weight-bandwidth-starved, which is what the EffByKind derate
		// models. A fused row panel restores M = Rows and with it the
		// blocked GEMM's weight reuse, linearly up to the conv
		// reference rate.
		if re := eff * float64(w.Rows); re < 1 {
			eff = re
		} else {
			eff = 1
		}
	}
	rate := p.PeakMACs(w.Compute) * eff
	if w.WorkingSetBytes > p.CacheBytes {
		rate *= p.CacheSpillFactor
	}
	if w.SideChannels > 0 {
		rate *= p.SplitEfficiency(w.SideChannels)
	}
	compute := float64(w.MACs) / rate
	if w.Converted {
		compute *= p.ConvertPenalty
	}
	mem := float64(w.MovedBytes) / (p.MemBWGBs * 1e9)
	t := compute
	if mem > t {
		t = mem
	}
	return time.Duration(t * float64(time.Second))
}

// SplitEfficiency returns the utilization of a split kernel computing c
// output channels relative to the full kernel.
func (p *Processor) SplitEfficiency(c int) float64 {
	if c <= 0 {
		return 1
	}
	return float64(c) / float64(c+p.SplitChannelKnee)
}

// KernelEnergyPJ returns the kernel's dynamic compute energy in picojoules
// (DRAM energy is charged by the SoC model from MovedBytes).
func (p *Processor) KernelEnergyPJ(w Work) float64 {
	pj, ok := p.PicoJPerMAC[w.Compute]
	if !ok {
		panic(fmt.Sprintf("device: %s has no energy entry for %v", p.Name, w.Compute))
	}
	e := float64(w.MACs) * pj
	if w.Converted {
		e *= 1.05 // conversion units toggle alongside the ALUs
	}
	return e
}

// Validate checks that the model is internally consistent.
func (p *Processor) Validate() error {
	if p.Cores <= 0 || p.FreqGHz <= 0 {
		return fmt.Errorf("device %s: non-positive cores/frequency", p.Name)
	}
	if p.MemBWGBs <= 0 {
		return fmt.Errorf("device %s: non-positive bandwidth", p.Name)
	}
	if p.CacheSpillFactor <= 0 || p.CacheSpillFactor > 1 {
		return fmt.Errorf("device %s: cache spill factor %v out of (0,1]", p.Name, p.CacheSpillFactor)
	}
	if p.ConvertPenalty < 1 {
		return fmt.Errorf("device %s: convert penalty %v < 1", p.Name, p.ConvertPenalty)
	}
	if p.SplitChannelKnee < 0 {
		return fmt.Errorf("device %s: negative split-channel knee", p.Name)
	}
	for _, dt := range tensor.AllDataTypes {
		if _, ok := p.MACsPerCycle[dt]; !ok {
			return fmt.Errorf("device %s: missing throughput for %v", p.Name, dt)
		}
		if _, ok := p.PicoJPerMAC[dt]; !ok {
			return fmt.Errorf("device %s: missing energy for %v", p.Name, dt)
		}
	}
	return nil
}
