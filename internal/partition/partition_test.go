package partition

import (
	"testing"

	"mulayer/internal/graph"
	"mulayer/internal/models"
	"mulayer/internal/nn"
	"mulayer/internal/profile"
	"mulayer/internal/soc"
	"mulayer/internal/tensor"
)

var (
	testSoC  = soc.Exynos7420()
	testPred = profile.Build(testSoC.CPU, testSoC.GPU)
)

func mustModel(t *testing.T, build func(models.Config) (*models.Model, error)) *models.Model {
	t.Helper()
	m, err := build(models.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func coverageOK(t *testing.T, m *models.Model, p *Plan) {
	t.Helper()
	cover := p.Covered()
	for i := 0; i < m.Graph.Len(); i++ {
		id := graph.NodeID(i)
		if m.Graph.Node(id).Layer.Kind() == nn.OpInput {
			if cover[id] != 0 {
				t.Fatalf("input node in plan")
			}
			continue
		}
		if cover[id] != 1 {
			t.Fatalf("node %d (%s) covered %d times", id, m.Graph.Node(id).Layer.Name(), cover[id])
		}
	}
}

func TestSingleProcessorPlans(t *testing.T) {
	m := mustModel(t, models.VGG16)
	for _, proc := range []Proc{ProcCPU, ProcGPU} {
		plan, err := Build(m.Graph, SingleProcessor(testSoC, testPred, proc, tensor.F32))
		if err != nil {
			t.Fatal(err)
		}
		coverageOK(t, m, plan)
		wantP := 1.0
		if proc == ProcGPU {
			wantP = 0
		}
		for _, s := range plan.Steps {
			if s.Layer == nil || s.Layer.P != wantP {
				t.Fatalf("single-%v plan contains step %+v", proc, s)
			}
		}
	}
}

func TestLayerToProcessorNeverSplits(t *testing.T) {
	m := mustModel(t, models.VGG16)
	plan, err := Build(m.Graph, LayerToProcessor(testSoC, testPred))
	if err != nil {
		t.Fatal(err)
	}
	coverageOK(t, m, plan)
	if plan.SplitCount() != 0 {
		t.Fatal("layer-to-processor must not split layers")
	}
	// With uniform QUInt8, the GPU's weak integer pipeline (Figure 8)
	// makes the CPU the per-layer winner throughout — the mechanism is
	// bounded by single-processor performance, which is the paper's
	// motivating observation (§1 finding 1).
	for _, s := range plan.Steps {
		if s.Layer == nil || (s.Layer.P != 0 && s.Layer.P != 1) {
			t.Fatalf("unexpected step %+v", s)
		}
	}
}

func TestMuLayerSplitsLargeLayers(t *testing.T) {
	m := mustModel(t, models.VGG16)
	plan, err := Build(m.Graph, ChannelDistProcQuant(testSoC, testPred))
	if err != nil {
		t.Fatal(err)
	}
	coverageOK(t, m, plan)
	if plan.SplitCount() < 8 {
		t.Fatalf("VGG-16's big convolutions should be split; only %d splits", plan.SplitCount())
	}
	for _, s := range plan.Steps {
		if s.Layer != nil && s.Layer.P > 0 && s.Layer.P < 1 {
			found := false
			for _, g := range DefaultGrid {
				if s.Layer.P == g {
					found = true
				}
			}
			if !found {
				t.Fatalf("split ratio %v not on the grid", s.Layer.P)
			}
		}
	}
}

func TestMuLayerPredictedBeatsBaselines(t *testing.T) {
	// The planner's own estimates must rank μLayer ahead of both
	// single-processor plans and the layer-to-processor plan.
	for _, build := range []func(models.Config) (*models.Model, error){models.VGG16, models.AlexNet, models.GoogLeNet} {
		m := mustModel(t, build)
		mu, err := Build(m.Graph, MuLayer(testSoC, testPred))
		if err != nil {
			t.Fatal(err)
		}
		l2p, err := Build(m.Graph, LayerToProcessor(testSoC, testPred))
		if err != nil {
			t.Fatal(err)
		}
		if mu.Predicted >= l2p.Predicted {
			t.Errorf("%s: μLayer predicted %v !< layer-to-processor %v", m.Name, mu.Predicted, l2p.Predicted)
		}
	}
}

func TestBranchDistributionOnGoogLeNet(t *testing.T) {
	m := mustModel(t, models.GoogLeNet)
	plan, err := Build(m.Graph, MuLayer(testSoC, testPred))
	if err != nil {
		t.Fatal(err)
	}
	coverageOK(t, m, plan)
	if plan.BranchCount() == 0 {
		t.Fatal("μLayer should branch-distribute at least some inception modules")
	}
	// Branch steps must assign every branch and use both processors when
	// beneficial.
	for _, s := range plan.Steps {
		if s.Branch == nil {
			continue
		}
		if len(s.Branch.Assign) != len(s.Branch.Group.Branches) {
			t.Fatal("assignment arity mismatch")
		}
	}
}

func TestBranchAssignmentIsArgmin(t *testing.T) {
	m := mustModel(t, models.SqueezeNetV11)
	o := MuLayer(testSoC, testPred)
	o.Grid = DefaultGrid
	shapes, _ := m.Graph.InferShapes()
	for _, bg := range m.Graph.BranchGroups() {
		assign, best, eval := o.simBranchSearch(m.Graph, bg, shapes)
		if assign == nil {
			t.Fatal("no assignment")
		}
		if got := eval(assign); got != best {
			t.Fatalf("returned makespan %v != eval of returned assignment %v", best, got)
		}
		// Exhaustively verify no mapping scores better under the same cost
		// formula.
		b := len(bg.Branches)
		cand := make([]Proc, b)
		for mask := 0; mask < 1<<b; mask++ {
			for i := 0; i < b; i++ {
				cand[i] = Proc(mask >> i & 1)
			}
			if tt := eval(cand); tt < best {
				t.Fatalf("mask %b beats chosen assignment: %v < %v", mask, tt, best)
			}
		}
	}
}

func TestNonSplittableLayersStayWhole(t *testing.T) {
	m := mustModel(t, models.GoogLeNet)
	plan, err := Build(m.Graph, ChannelDistProcQuant(testSoC, testPred))
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range plan.Steps {
		if s.Layer == nil {
			continue
		}
		kind := m.Graph.Node(s.Layer.Node).Layer.Kind()
		if (kind == nn.OpConcat || kind == nn.OpSoftmax) && s.Layer.P != 1 && s.Layer.P != 0 {
			t.Fatalf("%v layer split", kind)
		}
	}
}

func TestSplitRatioFallback(t *testing.T) {
	// The μLayer presets span the full 0 ≤ p ≤ 1 ratio range: a layer too
	// small to amortize cooperative synchronization stays on a single
	// processor. The grid-only mode (the literal {0.25,0.5,0.75} of §6's
	// implementation note) force-splits it.
	b := graph.NewBuilder("tiny")
	in := b.Input(tensor.Shape{N: 1, C: 4, H: 4, W: 4})
	c := b.Add(&nn.Conv2D{LayerName: "c", InC: 4, OutC: 8, KH: 1, KW: 1, StrideH: 1, StrideW: 1}, in)
	g, err := b.Build(c)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Build(g, ChannelDistProcQuant(testSoC, testPred))
	if err != nil {
		t.Fatal(err)
	}
	if plan.SplitCount() != 0 {
		t.Fatal("a microscopic layer must run on one processor under the default preset")
	}
	o := ChannelDistProcQuant(testSoC, testPred)
	o.SingleFallback = false
	plan2, err := Build(g, o)
	if err != nil {
		t.Fatal(err)
	}
	if plan2.SplitCount() != 1 {
		t.Fatal("grid-only mode must split every splittable layer")
	}
}

func TestOptionsValidate(t *testing.T) {
	if err := (Options{}).Validate(); err == nil {
		t.Error("empty options must fail")
	}
	o := Options{SoC: testSoC, Pred: testPred}
	if err := o.Validate(); err == nil {
		t.Error("no processors allowed must fail")
	}
	o.AllowCPU = true
	o.Grid = []float64{1.5}
	if err := o.Validate(); err == nil {
		t.Error("out-of-range grid must fail")
	}
	o.Grid = DefaultGrid
	if err := o.Validate(); err != nil {
		t.Errorf("valid options rejected: %v", err)
	}
}

func TestProcString(t *testing.T) {
	if ProcCPU.String() != "CPU" || ProcGPU.String() != "GPU" {
		t.Error("proc strings")
	}
}

func TestPipelineAccessors(t *testing.T) {
	pf := ProcessorFriendly()
	if pf.ComputeType(ProcCPU) != tensor.QUInt8 || pf.ComputeType(ProcGPU) != tensor.F16 {
		t.Error("processor-friendly compute types")
	}
	if !pf.Converted(ProcGPU) || pf.Converted(ProcCPU) {
		t.Error("conversion flags")
	}
	if pf.WeightBytes(ProcCPU) != 1 || pf.WeightBytes(ProcGPU) != 2 {
		t.Error("weight widths: CPU u8, GPU dequantized F16")
	}
	u := Uniform(tensor.F32)
	if u.WeightBytes(ProcGPU) != 4 || u.Converted(ProcGPU) {
		t.Error("uniform pipeline")
	}
}
