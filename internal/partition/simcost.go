package partition

import (
	"time"

	"mulayer/internal/device"
	"mulayer/internal/graph"
	"mulayer/internal/nn"
	"mulayer/internal/tensor"
)

// The branch-distribution decision does not go through the regression
// predictor: §5 says μLayer "collects the CPU- and the GPU-only execution
// latency" of each branch, i.e. it works from measured per-branch
// profiles. In this reproduction the device cost model plays the role of
// the measurement, so the helpers here mirror the executor's timing
// exactly (same Work construction, same overhead placement), keeping the
// planner's branch decisions consistent with what the simulation will
// report.

// Work builds the device work item for one processor's share of a layer
// under this pipeline — the single source of truth shared by the planner
// and the executor.
func (pl Pipeline) Work(p Proc, kind nn.OpKind, c nn.Cost, sideCh int) device.Work {
	ssz := pl.Storage.Size()
	wsz := pl.WeightBytes(p)
	return device.Work{
		Kind:            kind,
		MACs:            c.MACs,
		MovedBytes:      c.InElems*ssz + c.WElems*wsz + c.OutElems*ssz,
		WorkingSetBytes: c.InElems*ssz + c.WElems*wsz,
		Compute:         pl.ComputeType(p),
		Converted:       pl.Converted(p),
		SideChannels:    sideCh,
	}
}

// simKernel is the device-model kernel time for one share of a layer.
func (o Options) simKernel(p Proc, kind nn.OpKind, c nn.Cost, sideCh int) time.Duration {
	return o.proc(p).KernelTime(o.Pipe.Work(p, kind, c, sideCh))
}

// simLayerAt is the device-model latency of one layer executed at a given
// split ratio, mirroring the executor's runLayer / runSingle timing under
// asynchronous issue and zero-copy synchronization.
func (o Options) simLayerAt(kind nn.OpKind, c nn.Cost, splitCh int, p float64) time.Duration {
	cpu, gpu := o.SoC.CPU, o.SoC.GPU
	if p >= 1 || splitCh < 2 {
		return cpu.LaunchOverhead + cpu.KernelTime(o.Pipe.Work(ProcCPU, kind, c, 0))
	}
	if p <= 0 {
		return gpu.LaunchOverhead + gpu.KernelTime(o.Pipe.Work(ProcGPU, kind, c, 0))
	}
	cpuCh := clampSplit(p, splitCh)
	gpuCh := splitCh - cpuCh
	pe := float64(cpuCh) / float64(splitCh)
	cpuT := cpu.LaunchOverhead + cpu.KernelTime(o.Pipe.Work(ProcCPU, kind, c.Scale(pe), cpuCh))
	gpuT := gpu.LaunchOverhead + gpu.KernelTime(o.Pipe.Work(ProcGPU, kind, c.Scale(1-pe), gpuCh))
	t := cpuT
	if gpuT > t {
		t = gpuT
	}
	return t + o.coopSync(c)
}

// simPlannedLayer evaluates, with the device model, the step the
// per-layer partitioner would actually emit for this layer (its ratio
// choice still comes from the regression predictor, as in §6).
func (o Options) simPlannedLayer(kind nn.OpKind, c nn.Cost, splitCh int) time.Duration {
	if kind == nn.OpConcat || kind == nn.OpSoftmax {
		return o.simLayerAt(kind, c, splitCh, o.nonSplitProc())
	}
	p, _ := o.bestSplit(kind, c, splitCh)
	return o.simLayerAt(kind, c, splitCh, p)
}

func clampSplit(p float64, splitCh int) int {
	c := int(p*float64(splitCh) + 0.5)
	if c < 1 {
		c = 1
	}
	if c > splitCh-1 {
		c = splitCh - 1
	}
	return c
}

// simCoopGroup is the device-model latency of executing a branch group
// with the per-layer plan the partitioner would otherwise emit (the
// layers serialize through their per-layer merges).
func (o Options) simCoopGroup(g *graph.Graph, bg graph.BranchGroup, shapes map[graph.NodeID]tensor.Shape) time.Duration {
	var total time.Duration
	for _, br := range bg.Branches {
		for _, id := range br {
			n := g.Node(id)
			ins := g.InputShapes(id, shapes)
			total += o.simPlannedLayer(n.Layer.Kind(), n.Layer.Cost(ins), n.Layer.SplitChannels(ins))
		}
	}
	return total
}

// simBranchAssign enumerates every branch→processor mapping (the paper's
// exhaustive search, §5) using device-model branch latencies and returns
// the argmin assignment and its makespan. Kernels within a branch are
// enqueued back-to-back, so the dispatch latency is paid once per branch;
// the fork tensor pays one entry synchronization if it is not already
// coherent on a side, and GPU-produced branch outputs pay one
// synchronization before the join — mirroring the executor exactly.
func (o Options) simBranchAssign(g *graph.Graph, bg graph.BranchGroup, shapes map[graph.NodeID]tensor.Shape) ([]Proc, time.Duration) {
	best, bestT, _ := o.simBranchSearch(g, bg, shapes)
	return best, bestT
}

// simBranchSearch runs the exhaustive mapping search and also returns the
// evaluation closure so tests can verify argmin-ness against the very same
// cost formula.
func (o Options) simBranchSearch(g *graph.Graph, bg graph.BranchGroup, shapes map[graph.NodeID]tensor.Shape) ([]Proc, time.Duration, func([]Proc) time.Duration) {
	b := len(bg.Branches)
	if b < 2 || b > 16 {
		return nil, 0, nil
	}
	lat := make([][2]time.Duration, b)
	outSync := make([]time.Duration, b)
	for i, br := range bg.Branches {
		for _, id := range br {
			n := g.Node(id)
			c := n.Layer.Cost(g.InputShapes(id, shapes))
			lat[i][ProcCPU] += o.simKernel(ProcCPU, n.Layer.Kind(), c, 0)
			lat[i][ProcGPU] += o.simKernel(ProcGPU, n.Layer.Kind(), c, 0)
		}
		lat[i][ProcCPU] += o.SoC.CPU.LaunchOverhead
		lat[i][ProcGPU] += o.SoC.GPU.LaunchOverhead
		last := br[len(br)-1]
		outSync[i] = o.SoC.SyncCost(int64(shapes[last].Elems()) * o.Pipe.Storage.Size())
	}

	// Where does the fork tensor live? Mirror the per-layer plan for the
	// fork node: a cooperative fork is coherent on both sides; a
	// single-processor fork makes the other side pay one entry sync.
	forkSync := o.SoC.SyncCost(int64(shapes[bg.Fork].Elems()) * o.Pipe.Storage.Size())
	var cpuEntry, gpuEntry time.Duration
	fork := g.Node(bg.Fork)
	if fork.Layer.Kind() != nn.OpInput {
		ins := g.InputShapes(bg.Fork, shapes)
		fp := o.nonSplitProc()
		if k := fork.Layer.Kind(); k != nn.OpConcat && k != nn.OpSoftmax {
			fp, _ = o.bestSplit(k, fork.Layer.Cost(ins), fork.Layer.SplitChannels(ins))
		}
		switch {
		case fp >= 1: // fork on the CPU: GPU branches sync on entry
			gpuEntry = forkSync
		case fp <= 0: // fork on the GPU: CPU branches sync on entry
			cpuEntry = forkSync
		}
	}

	eval := func(assign []Proc) time.Duration {
		var cpuSum, gpuSum time.Duration
		var crossSync time.Duration
		for i, p := range assign {
			if p == ProcCPU {
				cpuSum += lat[i][ProcCPU]
			} else {
				gpuSum += lat[i][ProcGPU]
				if outSync[i] > crossSync {
					crossSync = outSync[i] // the join (on the CPU) maps each GPU output
				}
			}
		}
		if cpuSum > 0 {
			cpuSum += cpuEntry
		}
		if gpuSum > 0 {
			gpuSum += gpuEntry
		}
		t := cpuSum
		if gpuSum+crossSync > t {
			t = gpuSum + crossSync
		}
		return t
	}

	var best []Proc
	var bestT time.Duration
	assign := make([]Proc, b)
	for mask := 0; mask < 1<<b; mask++ {
		for i := 0; i < b; i++ {
			assign[i] = Proc(mask >> i & 1)
		}
		if t := eval(assign); best == nil || t < bestT {
			bestT = t
			best = append([]Proc(nil), assign...)
		}
	}
	return best, bestT, eval
}
