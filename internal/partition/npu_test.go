package partition

import (
	"testing"
	"testing/quick"

	"mulayer/internal/graph"
	"mulayer/internal/models"
	"mulayer/internal/profile"
	"mulayer/internal/soc"
)

var (
	npuSoC  = soc.Exynos7420NPU()
	npuPred = profile.Build(npuSoC.Processors()...)
)

func TestSplitChannels3Partition(t *testing.T) {
	f := func(cs, ns uint8, chs uint8) bool {
		splitCh := int(chs%200) + 1
		c := float64(cs%5) / 4
		n := float64(ns%5) / 4
		if c+n > 1 {
			return true
		}
		cpu, gpu, npu := SplitChannels3(c, n, splitCh)
		if cpu < 0 || gpu < 0 || npu < 0 {
			return false
		}
		return cpu+gpu+npu == splitCh
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

func TestThreeWayGridCoversSimplex(t *testing.T) {
	g := threeWayGrid()
	if len(g) != 15 { // C(6,2) compositions of 4 into 3 parts
		t.Fatalf("grid size %d, want 15", len(g))
	}
	seen := map[shares3]bool{}
	for _, s := range g {
		if s.cpu+s.gpu+s.npu < 0.999 || s.cpu+s.gpu+s.npu > 1.001 {
			t.Fatalf("tuple %+v does not sum to 1", s)
		}
		if seen[s] {
			t.Fatalf("duplicate tuple %+v", s)
		}
		seen[s] = true
	}
	// Degenerate single-processor tuples must be present.
	for _, want := range []shares3{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}} {
		if !seen[want] {
			t.Fatalf("missing tuple %+v", want)
		}
	}
}

func TestMuLayerNPUPlanUsesThreeProcessors(t *testing.T) {
	m := mustModel(t, models.VGG16)
	plan, err := Build(m.Graph, MuLayerNPU(npuSoC, npuPred))
	if err != nil {
		t.Fatal(err)
	}
	coverageOK(t, m, plan)
	threeWay := 0
	for _, s := range plan.Steps {
		if s.Layer == nil {
			continue
		}
		if s.Layer.P > 0 && s.Layer.PNPU > 0 && s.Layer.P+s.Layer.PNPU < 1 {
			threeWay++
		}
	}
	if threeWay < 5 {
		t.Fatalf("VGG-16's large convolutions should use all three processors, got %d three-way steps", threeWay)
	}
}

func TestNPUOnlyPlan(t *testing.T) {
	m := mustModel(t, models.GoogLeNet)
	plan, err := Build(m.Graph, NPUOnly(npuSoC, npuPred))
	if err != nil {
		t.Fatal(err)
	}
	coverageOK(t, m, plan)
	for _, s := range plan.Steps {
		if s.Layer == nil || s.Layer.PNPU != 1 {
			t.Fatalf("NPU-only plan has non-NPU step %+v", s)
		}
	}
}

func TestNPUOnlyRequiresNPU(t *testing.T) {
	m := mustModel(t, models.LeNet5)
	if _, err := Build(m.Graph, NPUOnly(testSoC, testPred)); err == nil {
		t.Fatal("NPU-only on an NPU-less SoC must fail")
	}
}

func TestMuLayerNPUPredictedBeatsTwoWay(t *testing.T) {
	for _, build := range []func(models.Config) (*models.Model, error){models.VGG16, models.GoogLeNet} {
		m := mustModel(t, build)
		three, err := Build(m.Graph, MuLayerNPU(npuSoC, npuPred))
		if err != nil {
			t.Fatal(err)
		}
		two, err := Build(m.Graph, MuLayer(npuSoC, npuPred))
		if err != nil {
			t.Fatal(err)
		}
		if three.Predicted >= two.Predicted {
			t.Errorf("%s: three-way predicted %v !< two-way %v", m.Name, three.Predicted, two.Predicted)
		}
	}
}

func TestBestSingle3PrefersNPUForBigIntegerWork(t *testing.T) {
	o := MuLayerNPU(npuSoC, npuPred)
	// A large conv in QUInt8: the NPU's integer engine should win the
	// single-processor comparison.
	m := mustModel(t, models.VGG16)
	shapes, _ := m.Graph.InferShapes()
	var found bool
	for i := 0; i < m.Graph.Len(); i++ {
		n := m.Graph.Node(graph.NodeID(i))
		if n.Layer.Name() != "conv3_1" {
			continue
		}
		found = true
		c := n.Layer.Cost(m.Graph.InputShapes(n.ID, shapes))
		cpu, npu, _ := o.bestSingle3(n.Layer.Kind(), c)
		if cpu != 0 || npu != 1 {
			t.Fatalf("conv3_1 single-proc choice cpu=%v npu=%v, want the NPU", cpu, npu)
		}
	}
	if !found {
		t.Fatal("conv3_1 not found")
	}
}
