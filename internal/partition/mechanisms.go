package partition

import (
	"mulayer/internal/profile"
	"mulayer/internal/soc"
	"mulayer/internal/tensor"
)

// The preset option builders below correspond to the execution mechanisms
// the paper evaluates (§7.2): single-processor execution with each data
// type, the state-of-the-art layer-to-processor mapping, and μLayer with
// its optimizations applied incrementally (Figure 17's ablation).

// SingleProcessor runs the whole network on one processor with a uniform
// data type (Figures 6, 8, 16).
func SingleProcessor(s *soc.SoC, pred *profile.Predictor, p Proc, dt tensor.DataType) Options {
	return Options{
		SoC: s, Pred: pred, Pipe: Uniform(dt),
		AllowCPU: p == ProcCPU, AllowGPU: p == ProcGPU,
	}
}

// LayerToProcessor is the state-of-the-art baseline (§2.2): each layer
// runs whole on whichever processor the predictor scores faster, with
// both processors computing QUInt8 ("the mechanism using QUInt8", §7.2).
// Because mobile GPUs dislike QUInt8 (Figure 8), the mechanism leans
// heavily on the CPU — which is precisely the single-processor bound
// μLayer breaks. Consistently with the paper, the one configuration where
// a single-processor mechanism beats this baseline is VGG-16 on the
// high-end SoC (GPU+F16).
func LayerToProcessor(s *soc.SoC, pred *profile.Predictor) Options {
	return Options{
		SoC: s, Pred: pred, Pipe: Uniform(tensor.QUInt8),
		AllowCPU: true, AllowGPU: true,
	}
}

// ChannelDistOnly is μLayer's first increment: channel-wise workload
// distribution with both processors still computing QUInt8. The split
// ratio spans the full 0 ≤ p ≤ 1 range of §6 — the interior grid
// {0.25, 0.5, 0.75} plus the degenerate single-processor ratios — so a
// layer too small to amortize the cooperative synchronization stays on
// one processor.
func ChannelDistOnly(s *soc.SoC, pred *profile.Predictor) Options {
	return Options{
		SoC: s, Pred: pred, Pipe: Uniform(tensor.QUInt8),
		AllowCPU: true, AllowGPU: true, AllowSplit: true, Grid: DefaultGrid,
		SingleFallback: true,
	}
}

// ChannelDistProcQuant adds processor-friendly quantization: CPU QUInt8,
// GPU F16 with on-the-fly conversion.
func ChannelDistProcQuant(s *soc.SoC, pred *profile.Predictor) Options {
	return Options{
		SoC: s, Pred: pred, Pipe: ProcessorFriendly(),
		AllowCPU: true, AllowGPU: true, AllowSplit: true, Grid: DefaultGrid,
		SingleFallback: true,
	}
}

// MuLayer is the complete system: channel-wise distribution,
// processor-friendly quantization, and branch distribution.
func MuLayer(s *soc.SoC, pred *profile.Predictor) Options {
	o := ChannelDistProcQuant(s, pred)
	o.BranchDist = true
	return o
}

// MuLayerNPU extends the complete system with the SoC's NPU — the §8.3
// extension: three-way channel distribution (NPU computing QUInt8, its
// native scheme), and three-way branch assignment.
func MuLayerNPU(s *soc.SoC, pred *profile.Predictor) Options {
	o := MuLayer(s, pred)
	o.AllowNPU = true
	return o
}

// NPUOnly runs the whole network on the NPU with QUInt8 — the
// accelerator-only baseline of the §8.3 experiments.
func NPUOnly(s *soc.SoC, pred *profile.Predictor) Options {
	return Options{
		SoC: s, Pred: pred, Pipe: ProcessorFriendly(),
		NPUOnly: true, AllowNPU: true,
	}
}
