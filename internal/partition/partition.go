// Package partition implements μLayer's NN partitioner (§6, Figure 13):
// it turns a network graph into an execution plan by choosing, for every
// layer, the channel-wise split ratio p ∈ {0, 0.25, 0.5, 0.75, 1} that the
// latency predictor scores best (0 and 1 degenerate to single-processor
// execution), and by applying branch distribution (§5) to fork-join
// regions when assigning whole branches to processors beats splitting
// every layer.
//
// The same planner, restricted, produces the paper's baselines: single-
// processor plans (one processor allowed) and the state-of-the-art
// layer-to-processor plan (both processors allowed, splitting disabled).
package partition

import (
	"fmt"
	"math"
	"time"

	"mulayer/internal/device"
	"mulayer/internal/graph"
	"mulayer/internal/nn"
	"mulayer/internal/profile"
	"mulayer/internal/soc"
	"mulayer/internal/tensor"
)

// Proc identifies a processor within a SoC.
type Proc int

// The processors of the modeled SoCs. ProcNPU exists only on NPU-equipped
// SoC variants (the §8.3 extension).
const (
	ProcCPU Proc = iota
	ProcGPU
	ProcNPU
)

// String implements fmt.Stringer.
func (p Proc) String() string {
	switch p {
	case ProcCPU:
		return "CPU"
	case ProcGPU:
		return "GPU"
	case ProcNPU:
		return "NPU"
	}
	return fmt.Sprintf("Proc(%d)", int(p))
}

// Pipeline describes which arithmetic each processor uses and how
// activations are stored between layers.
type Pipeline struct {
	// CPUType and GPUType are the compute data types per processor.
	CPUType, GPUType tensor.DataType
	// NPUType is the compute data type of the NPU on NPU-equipped SoCs
	// (§8.3: an NPU-friendly scheme, QUInt8 for TPU-class accelerators).
	NPUType tensor.DataType
	// GPUConverted marks the GPU pipeline as QUInt8-storage/F16-compute
	// (the on-the-fly conversion of processor-friendly quantization).
	GPUConverted bool
	// Storage is the at-rest activation data type.
	Storage tensor.DataType
}

// Uniform returns a pipeline where every processor computes and stores dt.
func Uniform(dt tensor.DataType) Pipeline {
	return Pipeline{CPUType: dt, GPUType: dt, NPUType: dt, Storage: dt}
}

// ProcessorFriendly returns the paper's processor-friendly quantization
// pipeline (§4.2): QUInt8 storage everywhere, QUInt8 compute on the CPU,
// F16 compute with on-the-fly conversion on the GPU.
func ProcessorFriendly() Pipeline {
	return Pipeline{
		CPUType:      tensor.QUInt8,
		GPUType:      tensor.F16,
		NPUType:      tensor.QUInt8, // NPUs are integer-native (§8.3)
		GPUConverted: true,
		Storage:      tensor.QUInt8,
	}
}

// ComputeType returns the compute data type for one processor.
func (pl Pipeline) ComputeType(p Proc) tensor.DataType {
	switch p {
	case ProcCPU:
		return pl.CPUType
	case ProcNPU:
		return pl.NPUType
	}
	return pl.GPUType
}

// Converted reports whether the processor's kernels convert between
// storage and compute types on the fly.
func (pl Pipeline) Converted(p Proc) bool {
	return p == ProcGPU && pl.GPUConverted
}

// WeightBytes returns the per-element weight storage width on a processor:
// μLayer uploads GPU filters dequantized to F16 (§6), so the converted
// pipeline reads 2-byte weights on the GPU and 1-byte weights on the CPU.
func (pl Pipeline) WeightBytes(p Proc) int64 {
	if pl.Converted(p) {
		return tensor.F16.Size()
	}
	return pl.ComputeType(p).Size()
}

// LayerStep executes one layer with split ratio P: the CPU computes the
// fraction P of the output channels and the GPU the remainder. P==1 and
// P==0 are single-processor steps. On NPU-equipped SoCs (§8.3) PNPU
// carves an additional share for the NPU; the GPU computes 1-P-PNPU.
type LayerStep struct {
	Node graph.NodeID
	P    float64
	PNPU float64
}

// BranchStep executes one fork-join branch group with whole branches
// assigned to processors; no layer inside is channel-split (§5).
type BranchStep struct {
	Group  graph.BranchGroup
	Assign []Proc // Assign[i] runs Group.Branches[i]
}

// Step is one plan entry: exactly one of Layer or Branch is set.
type Step struct {
	Layer  *LayerStep
	Branch *BranchStep
}

// Plan is an ordered execution plan covering every non-input node exactly
// once.
type Plan struct {
	Steps     []Step
	Predicted time.Duration // planner's own latency estimate
}

// Options configures the planner.
type Options struct {
	SoC  *soc.SoC
	Pred *profile.Predictor
	Pipe Pipeline
	// Grid lists the cooperative split ratios considered (the paper uses
	// {0.25, 0.5, 0.75}); 0 and 1 are always candidates.
	Grid []float64
	// AllowCPU/AllowGPU restrict the processors (single-processor
	// baselines disable one side).
	AllowCPU, AllowGPU bool
	// AllowSplit enables the channel-wise workload distribution. With it
	// disabled and both processors allowed, the planner degenerates to the
	// layer-to-processor mechanism.
	AllowSplit bool
	// BranchDist enables branch distribution over fork-join groups.
	BranchDist bool
	// AllowNPU adds the SoC's NPU (when present) as a third cooperative
	// target: three-way channel splits and three-way branch assignment —
	// the §8.3 extension.
	AllowNPU bool
	// NPUOnly runs the whole network on the NPU (the accelerator-only
	// baseline of the §8.3 experiments).
	NPUOnly bool
	// SingleFallback additionally considers p=0 and p=1 for splittable
	// layers, spanning the paper's full "0 ≤ p ≤ 1" ratio range (§6).
	// With it off, the planner uses only the interior implementation grid
	// {0.25, 0.5, 0.75} — every splittable layer is force-split, the
	// behavior Figure 12 labels "Cooperative" and §5 motivates branch
	// distribution against.
	SingleFallback bool
	// ForceBranch branch-distributes every fork-join group regardless of
	// the cost comparison — Figure 12's "Cooperative (Optimal)" scenario.
	ForceBranch bool
}

// DefaultGrid is the paper's split-ratio grid (§6).
var DefaultGrid = []float64{0.25, 0.5, 0.75}

// Validate checks the option combination.
func (o Options) Validate() error {
	if o.SoC == nil || o.Pred == nil {
		return fmt.Errorf("partition: SoC and predictor are required")
	}
	if !o.AllowCPU && !o.AllowGPU && !o.NPUOnly {
		return fmt.Errorf("partition: at least one processor must be allowed")
	}
	if o.NPUOnly && o.SoC != nil && o.SoC.NPU == nil {
		return fmt.Errorf("partition: NPUOnly requires an NPU-equipped SoC")
	}
	for _, g := range o.Grid {
		if g <= 0 || g >= 1 {
			return fmt.Errorf("partition: grid ratio %v outside (0,1)", g)
		}
	}
	return nil
}

// proc returns the device model for one processor.
func (o Options) proc(p Proc) *device.Processor {
	switch p {
	case ProcCPU:
		return o.SoC.CPU
	case ProcNPU:
		return o.SoC.NPU
	}
	return o.SoC.GPU
}

// predictKernel estimates the kernel time of one full layer on a
// processor (no dispatch overhead).
func (o Options) predictKernel(p Proc, kind nn.OpKind, c nn.Cost) time.Duration {
	return o.Pred.Predict(o.proc(p).Name, kind, o.Pipe.ComputeType(p), o.Pipe.Converted(p), c)
}

// predictOn estimates one full layer's latency on a processor, including
// its kernel-launch overhead.
func (o Options) predictOn(p Proc, kind nn.OpKind, c nn.Cost) time.Duration {
	return o.predictKernel(p, kind, c) + o.proc(p).LaunchOverhead
}

// coopSync estimates the per-layer merge synchronization of a cooperative
// layer: the zero-copy map/unmap maintains coherence over the shared input
// and output buffers.
func (o Options) coopSync(c nn.Cost) time.Duration {
	return o.SoC.SyncCost((c.InElems + c.OutElems) * o.Pipe.Storage.Size())
}

// bestSplit scores the allowed executions of one layer and returns the
// chosen ratio and its predicted latency. Following §6, a splittable
// layer under cooperative execution picks from the grid only — the
// predictor scales each side linearly by its share, derated by the
// partial-kernel channel efficiency — plus the single-processor ratios
// when the SingleFallback extension is on.
func (o Options) bestSplit(kind nn.OpKind, c nn.Cost, splitCh int) (float64, time.Duration) {
	bestP := -1.0
	var bestT time.Duration
	consider := func(p float64, t time.Duration) {
		if bestP < 0 || t < bestT {
			bestP, bestT = p, t
		}
	}
	coop := splitCh > 1 && o.AllowSplit && o.AllowCPU && o.AllowGPU
	if coop {
		cpuFull := o.predictKernel(ProcCPU, kind, c)
		gpuFull := o.predictKernel(ProcGPU, kind, c)
		cpu := o.proc(ProcCPU)
		gpu := o.proc(ProcGPU)
		sync := o.coopSync(c)
		for _, p := range o.Grid {
			cpuCh := int(math.Round(p * float64(splitCh)))
			if cpuCh < 1 {
				cpuCh = 1
			}
			if cpuCh > splitCh-1 {
				cpuCh = splitCh - 1
			}
			gpuCh := splitCh - cpuCh
			pe := float64(cpuCh) / float64(splitCh)
			cpuT := time.Duration(float64(cpuFull)*pe/cpu.SplitEfficiency(cpuCh)) + cpu.LaunchOverhead
			gpuT := time.Duration(float64(gpuFull)*(1-pe)/gpu.SplitEfficiency(gpuCh)) + gpu.LaunchOverhead
			t := cpuT
			if gpuT > t {
				t = gpuT
			}
			consider(p, t+sync)
		}
	}
	if !coop || o.SingleFallback {
		if o.AllowCPU {
			consider(1, o.predictOn(ProcCPU, kind, c))
		}
		if o.AllowGPU {
			consider(0, o.predictOn(ProcGPU, kind, c))
		}
	}
	if bestP < 0 {
		panic("partition: no processor allowed")
	}
	return bestP, bestT
}

// nonSplitProc places layers that must run whole (concat, softmax) —
// the CPU when available, since the merged activations live in shared
// memory mapped on the CPU side.
func (o Options) nonSplitProc() float64 {
	if o.AllowCPU {
		return 1
	}
	return 0
}

// Build produces the execution plan for g.
func Build(g *graph.Graph, o Options) (*Plan, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	if o.AllowSplit && len(o.Grid) == 0 {
		o.Grid = DefaultGrid
	}
	shapes, err := g.InferShapes()
	if err != nil {
		return nil, err
	}
	order, err := g.Toposort()
	if err != nil {
		return nil, err
	}

	// Decide branch distribution per group.
	type groupPlan struct {
		step    *BranchStep
		est     time.Duration
		emitted bool
	}
	inGroup := make(map[graph.NodeID]*groupPlan)
	if o.BranchDist && o.AllowCPU && o.AllowGPU {
		for _, bg := range g.BranchGroups() {
			// §5: branch decisions work from collected per-branch execution
			// latencies (the device model here), not the regression.
			var assign []Proc
			var branchT, coopT time.Duration
			if o.npuEnabled() {
				assign, branchT = o.simBranchSearch3(g, bg, shapes)
				coopT = o.simCoopGroup3(g, bg, shapes)
			} else {
				assign, branchT = o.simBranchAssign(g, bg, shapes)
				coopT = o.simCoopGroup(g, bg, shapes)
			}
			if assign == nil {
				continue
			}
			// Compare against executing the same nodes with the per-layer
			// plan (serialized layers), unless branch distribution is
			// forced.
			if o.ForceBranch || branchT < coopT {
				gp := &groupPlan{step: &BranchStep{Group: bg, Assign: assign}, est: branchT}
				for id := range bg.Members() {
					inGroup[id] = gp
				}
			}
		}
	}

	plan := &Plan{}
	var predicted time.Duration
	for _, id := range order {
		n := g.Node(id)
		if n.Layer.Kind() == nn.OpInput {
			continue
		}
		if gp, ok := inGroup[id]; ok {
			if !gp.emitted {
				plan.Steps = append(plan.Steps, Step{Branch: gp.step})
				predicted += gp.est
				gp.emitted = true
			}
			continue
		}
		ins := g.InputShapes(id, shapes)
		cost := n.Layer.Cost(ins)
		kind := n.Layer.Kind()
		splitCh := n.Layer.SplitChannels(ins)
		var p, pn float64
		var t time.Duration
		switch {
		case o.NPUOnly:
			pn = 1
			t = o.predictOn(ProcNPU, kind, cost)
		case kind == nn.OpConcat || kind == nn.OpSoftmax:
			p = o.nonSplitProc()
			t = o.predictOn(procOf(p), kind, cost)
		case o.npuEnabled() && splitCh > 1:
			p, pn, t = o.bestSplit3(kind, cost, splitCh)
		case o.npuEnabled():
			p, pn, t = o.bestSingle3(kind, cost)
		default:
			p, t = o.bestSplit(kind, cost, splitCh)
		}
		plan.Steps = append(plan.Steps, Step{Layer: &LayerStep{Node: id, P: p, PNPU: pn}})
		predicted += t
	}
	plan.Predicted = predicted
	return plan, nil
}

func procOf(p float64) Proc {
	if p > 0 {
		return ProcCPU
	}
	return ProcGPU
}

// Covered returns the set of nodes the plan executes; tests use it to
// verify exactly-once coverage.
func (p *Plan) Covered() map[graph.NodeID]int {
	seen := make(map[graph.NodeID]int)
	for _, s := range p.Steps {
		switch {
		case s.Layer != nil:
			seen[s.Layer.Node]++
		case s.Branch != nil:
			for _, br := range s.Branch.Group.Branches {
				for _, id := range br {
					seen[id]++
				}
			}
		}
	}
	return seen
}

// SplitCount returns how many steps use a true cooperative split (two or
// more processors active) — a diagnostic for the experiments.
func (p *Plan) SplitCount() int {
	n := 0
	for _, s := range p.Steps {
		if s.Layer == nil {
			continue
		}
		active := 0
		for _, share := range []float64{s.Layer.P, s.Layer.PNPU, 1 - s.Layer.P - s.Layer.PNPU} {
			if share > 1e-9 {
				active++
			}
		}
		if active >= 2 {
			n++
		}
	}
	return n
}

// MeanSplit returns the mean CPU split ratio over the plan's layer steps —
// the one-number split summary surfaced by plan caches and serving
// metrics. Branch-distributed steps carry no split ratio and are skipped;
// a plan with no layer steps reports 0.
func (p *Plan) MeanSplit() float64 {
	var sum float64
	n := 0
	for _, s := range p.Steps {
		if s.Layer == nil {
			continue
		}
		sum += s.Layer.P
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// BranchCount returns the number of branch-distributed groups in the plan.
func (p *Plan) BranchCount() int {
	n := 0
	for _, s := range p.Steps {
		if s.Branch != nil {
			n++
		}
	}
	return n
}
