package partition

import (
	"testing"

	"mulayer/internal/graph"
)

func TestPlanSummary(t *testing.T) {
	plan := &Plan{Steps: []Step{
		{Layer: &LayerStep{Node: 1, P: 0.25}},
		{Layer: &LayerStep{Node: 2, P: 0.75}},
		{Layer: &LayerStep{Node: 3, P: 1}},
		{Layer: &LayerStep{Node: 4, P: 0}},
		{Layer: &LayerStep{Node: 5, P: 0.25, PNPU: 0.25}},
		{Branch: &BranchStep{
			Group:  graph.BranchGroup{Branches: [][]graph.NodeID{{6}, {7}, {8}}},
			Assign: []Proc{ProcCPU, ProcGPU, ProcGPU},
		}},
	}}
	s := plan.Summary()
	if s.Steps != 6 || s.LayerSteps != 5 || s.BranchSteps != 1 {
		t.Fatalf("step counts wrong: %+v", s)
	}
	if s.SplitLayers != 3 {
		t.Fatalf("SplitLayers = %d, want 3", s.SplitLayers)
	}
	want := (0.25 + 0.75 + 0.25) / 3
	if diff := s.MeanP - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("MeanP = %v, want %v", s.MeanP, want)
	}
	if s.Branches["CPU"] != 1 || s.Branches["GPU"] != 2 {
		t.Fatalf("Branches = %v", s.Branches)
	}
	if got := s.BranchMap(); got != "CPU:1 GPU:2" {
		t.Fatalf("BranchMap = %q", got)
	}
}

func TestPlanSummaryEmpty(t *testing.T) {
	s := (&Plan{}).Summary()
	if s.Steps != 0 || s.MeanP != 0 || s.BranchMap() != "" {
		t.Fatalf("empty plan summary wrong: %+v", s)
	}
}
