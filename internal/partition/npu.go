package partition

import (
	"time"

	"mulayer/internal/graph"
	"mulayer/internal/nn"
	"mulayer/internal/tensor"
)

// Three-way planning for NPU-equipped SoCs — the §8.3 extension: "the
// channel-wise workload distribution can be extended to distribute a
// layer's output channels to not only the CPU and the GPU, but also the
// NPU", and "the branch distribution can benefit from having the NPU by
// being able to run more branches in parallel".

// npuEnabled reports whether three-way planning applies.
func (o Options) npuEnabled() bool {
	return o.AllowNPU && o.SoC.NPU != nil && o.AllowCPU && o.AllowGPU
}

// shares3 is one candidate (CPU, GPU, NPU) share assignment.
type shares3 struct{ cpu, gpu, npu float64 }

// threeWayGrid enumerates share tuples in quarter steps (the natural
// extension of the paper's {0.25, 0.5, 0.75} grid), including the
// single-processor and two-processor degenerate tuples.
func threeWayGrid() []shares3 {
	var out []shares3
	for c := 0; c <= 4; c++ {
		for g := 0; g+c <= 4; g++ {
			n := 4 - c - g
			out = append(out, shares3{float64(c) / 4, float64(g) / 4, float64(n) / 4})
		}
	}
	return out
}

// splitChannels3 converts shares into channel counts summing to splitCh.
func splitChannels3(s shares3, splitCh int) (cpu, gpu, npu int) {
	return SplitChannels3(s.cpu, s.npu, splitCh)
}

// SplitChannels3 converts a (CPU, NPU) share pair into three channel
// counts summing to splitCh (the GPU takes the remainder). The executor
// uses the same rounding so plans and simulation agree exactly.
func SplitChannels3(cpuShare, npuShare float64, splitCh int) (cpu, gpu, npu int) {
	cpu = int(cpuShare*float64(splitCh) + 0.5)
	npu = int(npuShare*float64(splitCh) + 0.5)
	if cpu > splitCh {
		cpu = splitCh
	}
	if npu > splitCh-cpu {
		npu = splitCh - cpu
	}
	gpu = splitCh - cpu - npu
	return cpu, gpu, npu
}

// simLayerAt3 is the device-model latency of one layer executed at the
// given three-way shares, mirroring the executor's timing: active sides
// run concurrently (async issue), and any multi-processor execution pays
// one merge synchronization.
func (o Options) simLayerAt3(kind nn.OpKind, c nn.Cost, splitCh int, s shares3) time.Duration {
	cpuCh, gpuCh, npuCh := splitChannels3(s, splitCh)
	active := 0
	var longest time.Duration
	side := func(p Proc, ch int) {
		if ch <= 0 {
			return
		}
		active++
		share := float64(ch) / float64(splitCh)
		sideCh := ch
		if ch == splitCh {
			sideCh = 0 // a full kernel pays no split penalty
		}
		proc := o.proc(p)
		t := proc.LaunchOverhead + proc.KernelTime(o.Pipe.Work(p, kind, c.Scale(share), sideCh))
		if t > longest {
			longest = t
		}
	}
	side(ProcCPU, cpuCh)
	side(ProcGPU, gpuCh)
	side(ProcNPU, npuCh)
	if active > 1 {
		longest += o.coopSync(c)
	}
	return longest
}

// bestSplit3 scores the three-way grid and returns the chosen CPU and NPU
// shares (the GPU computes the remainder) with the predicted latency.
// Following §6's structure, the regression predictor supplies the per-
// processor full-layer estimates and shares scale them linearly.
func (o Options) bestSplit3(kind nn.OpKind, c nn.Cost, splitCh int) (cpu, npu float64, best time.Duration) {
	full := [3]time.Duration{
		o.predictKernel(ProcCPU, kind, c),
		o.predictKernel(ProcGPU, kind, c),
		o.predictKernel(ProcNPU, kind, c),
	}
	sync := o.coopSync(c)
	first := true
	for _, s := range threeWayGrid() {
		cpuCh, gpuCh, npuCh := splitChannels3(s, splitCh)
		var longest time.Duration
		active := 0
		side := func(p Proc, ch int, fullT time.Duration) {
			if ch <= 0 {
				return
			}
			active++
			share := float64(ch) / float64(splitCh)
			eff := 1.0
			if ch < splitCh {
				eff = o.proc(p).SplitEfficiency(ch)
			}
			t := time.Duration(float64(fullT)*share/eff) + o.proc(p).LaunchOverhead
			if t > longest {
				longest = t
			}
		}
		side(ProcCPU, cpuCh, full[0])
		side(ProcGPU, gpuCh, full[1])
		side(ProcNPU, npuCh, full[2])
		if active == 0 {
			continue
		}
		t := longest
		if active > 1 {
			t += sync
		}
		if first || t < best {
			first = false
			best = t
			cpu = float64(cpuCh) / float64(splitCh)
			npu = float64(npuCh) / float64(splitCh)
		}
	}
	return cpu, npu, best
}

// bestSingle3 picks the fastest single processor among the three for a
// layer that cannot be split.
func (o Options) bestSingle3(kind nn.OpKind, c nn.Cost) (cpu, npu float64, best time.Duration) {
	procs := []Proc{ProcCPU, ProcGPU, ProcNPU}
	bestP := ProcCPU
	for i, p := range procs {
		t := o.predictOn(p, kind, c)
		if i == 0 || t < best {
			best = t
			bestP = p
		}
	}
	switch bestP {
	case ProcCPU:
		return 1, 0, best
	case ProcNPU:
		return 0, 1, best
	}
	return 0, 0, best
}

// simBranchSearch3 is the three-way branch-assignment search (§8.3: "run
// more branches in parallel"). It mirrors simBranchSearch with a base-3
// enumeration; non-CPU-produced branch outputs pay one synchronization
// before the join.
func (o Options) simBranchSearch3(g *graph.Graph, bg graph.BranchGroup, shapes map[graph.NodeID]tensor.Shape) ([]Proc, time.Duration) {
	b := len(bg.Branches)
	if b < 2 || b > 10 {
		return nil, 0
	}
	lat := make([][3]time.Duration, b)
	outSync := make([]time.Duration, b)
	for i, br := range bg.Branches {
		for _, id := range br {
			n := g.Node(id)
			c := n.Layer.Cost(g.InputShapes(id, shapes))
			for p := ProcCPU; p <= ProcNPU; p++ {
				lat[i][p] += o.simKernel(p, n.Layer.Kind(), c, 0)
			}
		}
		for p := ProcCPU; p <= ProcNPU; p++ {
			lat[i][p] += o.proc(p).LaunchOverhead
		}
		last := br[len(br)-1]
		outSync[i] = o.SoC.SyncCost(int64(shapes[last].Elems()) * o.Pipe.Storage.Size())
	}

	total := 1
	for i := 0; i < b; i++ {
		total *= 3
	}
	var best []Proc
	var bestT time.Duration
	assign := make([]Proc, b)
	for mask := 0; mask < total; mask++ {
		m := mask
		for i := 0; i < b; i++ {
			assign[i] = Proc(m % 3)
			m /= 3
		}
		var sums [3]time.Duration
		var cross [3]time.Duration
		for i, p := range assign {
			sums[p] += lat[i][p]
			if p != ProcCPU && outSync[i] > cross[p] {
				cross[p] = outSync[i]
			}
		}
		var t time.Duration
		for p := ProcCPU; p <= ProcNPU; p++ {
			if end := sums[p] + cross[p]; end > t {
				t = end
			}
		}
		if best == nil || t < bestT {
			bestT = t
			best = append([]Proc(nil), assign...)
		}
	}
	return best, bestT
}

// simCoopGroup3 mirrors simCoopGroup for the three-way planner.
func (o Options) simCoopGroup3(g *graph.Graph, bg graph.BranchGroup, shapes map[graph.NodeID]tensor.Shape) time.Duration {
	var total time.Duration
	for _, br := range bg.Branches {
		for _, id := range br {
			n := g.Node(id)
			ins := g.InputShapes(id, shapes)
			total += o.simPlanned3Layer(n.Layer.Kind(), n.Layer.Cost(ins), n.Layer.SplitChannels(ins))
		}
	}
	return total
}

// simPlanned3Layer mirrors simPlannedLayer for the three-way planner.
func (o Options) simPlanned3Layer(kind nn.OpKind, c nn.Cost, splitCh int) time.Duration {
	if kind == nn.OpConcat || kind == nn.OpSoftmax || splitCh < 2 {
		return o.simLayerAt3(kind, c, 1, shares3{cpu: 1})
	}
	cpu, npu, _ := o.bestSplit3(kind, c, splitCh)
	return o.simLayerAt3(kind, c, splitCh, shares3{cpu: cpu, gpu: 1 - cpu - npu, npu: npu})
}
