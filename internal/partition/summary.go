package partition

import (
	"fmt"
	"strings"
)

// PlanSummary condenses a plan for observability surfaces: trace span
// attributes, slow-request logs, and /statusz. It answers "what did the
// partitioner decide" without walking the step list.
type PlanSummary struct {
	// Steps is the plan length; LayerSteps/BranchSteps split it by kind.
	Steps       int
	LayerSteps  int
	BranchSteps int
	// SplitLayers counts cooperatively split layers (0 < P < 1 or an NPU
	// share); MeanP is the mean CPU share over those layers (0 when none
	// is split).
	SplitLayers int
	MeanP       float64
	// Branches maps processor names to the number of whole branches
	// assigned to each across every branch group.
	Branches map[string]int
}

// Summary computes the plan's condensed description.
func (p *Plan) Summary() PlanSummary {
	s := PlanSummary{Branches: make(map[string]int)}
	var pSum float64
	for _, st := range p.Steps {
		s.Steps++
		switch {
		case st.Layer != nil:
			s.LayerSteps++
			split := (st.Layer.P > 0 && st.Layer.P < 1) ||
				(st.Layer.PNPU > 0 && st.Layer.PNPU < 1)
			if split {
				s.SplitLayers++
				pSum += st.Layer.P
			}
		case st.Branch != nil:
			s.BranchSteps++
			for _, proc := range st.Branch.Assign {
				s.Branches[proc.String()]++
			}
		}
	}
	if s.SplitLayers > 0 {
		s.MeanP = pSum / float64(s.SplitLayers)
	}
	return s
}

// BranchMap renders the branch assignment compactly ("CPU:2 GPU:3", ""
// when the plan has no branch groups) with processors in a fixed order.
func (s PlanSummary) BranchMap() string {
	var parts []string
	for _, proc := range []Proc{ProcCPU, ProcGPU, ProcNPU} {
		if n := s.Branches[proc.String()]; n > 0 {
			parts = append(parts, fmt.Sprintf("%s:%d", proc, n))
		}
	}
	return strings.Join(parts, " ")
}
