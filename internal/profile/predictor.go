// Package profile implements μLayer's latency predictor (§6, Figure 13).
//
// Following the paper, the predictor extends Neurosurgeon's approach
// (Kang et al., ASPLOS 2017): per processor, per layer class, and per data
// type it fits a logarithmic regression of execution latency against the
// layer's amount of computation, trained on a sweep of synthetic layer
// profiles. To estimate a channel-wise split it first predicts the CPU-
// and GPU-only latencies and then scales them linearly by the split ratio
// p, exactly as §6 describes.
//
// The training profiles come from the device cost model (the substitute
// for profiling real hardware, DESIGN.md §2). The fit is deliberately not
// a table lookup: the device model's cache knee and memory-bound regions
// make the log-log relation only approximately linear, so the predictor
// carries genuine approximation error like its on-device counterpart.
package profile

import (
	"fmt"
	"math"
	"time"

	"mulayer/internal/device"
	"mulayer/internal/nn"
	"mulayer/internal/tensor"
)

// Key selects one regression model.
type Key struct {
	Proc  string
	Kind  nn.OpKind
	DType tensor.DataType
}

// linModel is ln(latency) = A + B·ln(feature).
type linModel struct {
	A, B float64
	ok   bool
}

// Predictor estimates per-layer execution latency.
type Predictor struct {
	models map[Key]linModel
}

// feature reduces a layer cost to the regression feature: the MAC count
// for compute layers, element traffic for movement-dominated ones.
func feature(kind nn.OpKind, c nn.Cost) float64 {
	f := float64(c.MACs)
	if kind == nn.OpConcat || f == 0 {
		f = float64(c.InElems + c.OutElems)
	}
	if f < 1 {
		f = 1
	}
	return f
}

// trainPoint is one synthetic profile observation.
type trainPoint struct {
	feature float64
	latency time.Duration
}

// fit performs ordinary least squares in log-log space.
func fit(points []trainPoint) linModel {
	n := float64(len(points))
	if n < 2 {
		return linModel{}
	}
	var sx, sy, sxx, sxy float64
	for _, p := range points {
		x := math.Log(p.feature)
		y := math.Log(float64(p.latency) / float64(time.Second))
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return linModel{}
	}
	b := (n*sxy - sx*sy) / den
	a := (sy - b*sx) / n
	return linModel{A: a, B: b, ok: true}
}

// syntheticConvs yields a sweep of convolution geometries spanning the
// sizes found in the evaluated NNs (1×1 bottlenecks up to 11×11 stems,
// 1e5–1e10 MACs).
func syntheticConvs() []*nn.Conv2D {
	var out []*nn.Conv2D
	id := 0
	for _, k := range []int{1, 3, 5, 7, 11} {
		for _, c := range []int{16, 64, 192, 512} {
			for _, hw := range []int{7, 14, 28, 56, 112} {
				if hw < k {
					continue
				}
				out = append(out, &nn.Conv2D{
					LayerName: fmt.Sprintf("prof-conv-%d", id),
					InC:       c, OutC: c, KH: k, KW: k,
					StrideH: 1, StrideW: 1, PadH: k / 2, PadW: k / 2,
				})
				id++
			}
		}
	}
	return out
}

// profileKind builds training points for one op kind on one processor.
func profileKind(p *device.Processor, kind nn.OpKind, dt tensor.DataType, converted bool) []trainPoint {
	var pts []trainPoint
	add := func(layer nn.Layer, in tensor.Shape) {
		c := layer.Cost([]tensor.Shape{in})
		if c.MACs == 0 && c.InElems == 0 {
			return
		}
		w := workFor(kind, c, dt, converted)
		pts = append(pts, trainPoint{feature: feature(kind, c), latency: p.KernelTime(w)})
	}
	switch kind {
	case nn.OpConv:
		for _, l := range syntheticConvs() {
			add(l, tensor.Shape{N: 1, C: l.InC, H: 56, W: 56})
		}
	case nn.OpDepthwise:
		for _, c := range []int{32, 64, 128, 256, 512} {
			for _, hw := range []int{7, 14, 28, 56, 112} {
				l := &nn.Conv2D{LayerName: "prof-dw", InC: c, OutC: c, KH: 3, KW: 3,
					StrideH: 1, StrideW: 1, PadH: 1, PadW: 1, Groups: c}
				add(l, tensor.Shape{N: 1, C: c, H: hw, W: hw})
			}
		}
	case nn.OpFC:
		for _, in := range []int{256, 1024, 4096, 9216, 25088} {
			for _, outc := range []int{10, 128, 1000, 4096} {
				l := &nn.FullyConnected{LayerName: "prof-fc", InFeatures: in, OutC: outc}
				add(l, tensor.Shape{N: 1, C: in, H: 1, W: 1})
			}
		}
	case nn.OpMaxPool, nn.OpAvgPool:
		for _, c := range []int{16, 64, 192, 512} {
			for _, hw := range []int{7, 14, 28, 56, 112} {
				l := &nn.Pool{LayerName: "prof-pool", Max: kind == nn.OpMaxPool,
					KH: 3, KW: 3, StrideH: 2, StrideW: 2, PadH: 1, PadW: 1}
				add(l, tensor.Shape{N: 1, C: c, H: hw, W: hw})
			}
		}
	case nn.OpReLU:
		for _, c := range []int{16, 64, 256, 512} {
			for _, hw := range []int{7, 28, 56, 112} {
				add(&nn.ReLU{LayerName: "prof-relu"}, tensor.Shape{N: 1, C: c, H: hw, W: hw})
			}
		}
	case nn.OpLRN:
		for _, c := range []int{32, 96, 256} {
			for _, hw := range []int{13, 27, 55} {
				l := &nn.LRN{LayerName: "prof-lrn", Size: 5, K: 2, Alpha: 1e-4, Beta: 0.75}
				add(l, tensor.Shape{N: 1, C: c, H: hw, W: hw})
			}
		}
	case nn.OpConcat:
		for _, c := range []int{32, 128, 480} {
			for _, hw := range []int{7, 14, 28, 56} {
				l := &nn.Concat{LayerName: "prof-cat"}
				cost := l.Cost([]tensor.Shape{{N: 1, C: c, H: hw, W: hw}, {N: 1, C: c, H: hw, W: hw}})
				w := workFor(kind, cost, dt, converted)
				pts = append(pts, trainPoint{feature: feature(kind, cost), latency: p.KernelTime(w)})
			}
		}
	case nn.OpSoftmax:
		for _, c := range []int{10, 100, 1000} {
			add(&nn.Softmax{LayerName: "prof-sm"}, tensor.Shape{N: 1, C: c, H: 1, W: 1})
		}
	case nn.OpAdd:
		for _, c := range []int{16, 64, 256, 512} {
			for _, hw := range []int{7, 28, 56} {
				l := &nn.Add{LayerName: "prof-add"}
				in := tensor.Shape{N: 1, C: c, H: hw, W: hw}
				cost := l.Cost([]tensor.Shape{in, in})
				w := workFor(kind, cost, dt, converted)
				pts = append(pts, trainPoint{feature: feature(kind, cost), latency: p.KernelTime(w)})
			}
		}
	}
	return pts
}

// workFor converts a layer cost to a device work item, using the compute
// type's width for all traffic (the profiling configuration).
func workFor(kind nn.OpKind, c nn.Cost, dt tensor.DataType, converted bool) device.Work {
	sz := dt.Size()
	if converted {
		// Converted kernels store activations/weights as QUInt8.
		sz = tensor.QUInt8.Size()
	}
	return device.Work{
		Kind:            kind,
		MACs:            c.MACs,
		MovedBytes:      (c.InElems + c.WElems + c.OutElems) * sz,
		WorkingSetBytes: (c.InElems + c.WElems) * sz,
		Compute:         dt,
		Converted:       converted,
	}
}

// allKinds lists every kind the predictor models.
var allKinds = []nn.OpKind{
	nn.OpConv, nn.OpDepthwise, nn.OpFC, nn.OpMaxPool, nn.OpAvgPool,
	nn.OpReLU, nn.OpLRN, nn.OpConcat, nn.OpSoftmax, nn.OpAdd,
}

// Build profiles every (processor, kind, dtype) combination on the given
// processors and fits the regression models, mirroring the offline
// profiling pass μLayer performs per device.
func Build(procs ...*device.Processor) *Predictor {
	pr := &Predictor{models: make(map[Key]linModel)}
	for _, p := range procs {
		for _, kind := range allKinds {
			for _, dt := range tensor.AllDataTypes {
				pts := profileKind(p, kind, dt, false)
				pr.models[Key{p.Name, kind, dt}] = fit(pts)
			}
			// The converted pipeline (QUInt8 storage, F16 compute) gets its
			// own model, keyed by the compute type with the converted flag
			// folded into a dedicated key name.
			pts := profileKind(p, kind, tensor.F16, true)
			pr.models[Key{p.Name + "+conv", kind, tensor.F16}] = fit(pts)
		}
	}
	return pr
}

// Predict estimates the latency of executing the full layer cost on proc
// with the given compute type. converted selects the QUInt8→F16 pipeline
// model.
func (pr *Predictor) Predict(proc string, kind nn.OpKind, dt tensor.DataType, converted bool, c nn.Cost) time.Duration {
	name := proc
	if converted {
		name += "+conv"
		dt = tensor.F16
	}
	m, ok := pr.models[Key{name, kind, dt}]
	if !ok || !m.ok {
		// Fall back to the conv model of the same processor.
		m = pr.models[Key{name, nn.OpConv, dt}]
		if !m.ok {
			return 0
		}
	}
	f := feature(kind, c)
	lat := math.Exp(m.A + m.B*math.Log(f))
	return time.Duration(lat * float64(time.Second))
}

// PredictSplit estimates the latency of executing the fraction p of the
// layer: the paper's predictor scales the full-layer estimate linearly by
// the split ratio (§6).
func (pr *Predictor) PredictSplit(proc string, kind nn.OpKind, dt tensor.DataType, converted bool, c nn.Cost, p float64) time.Duration {
	if p <= 0 {
		return 0
	}
	full := pr.Predict(proc, kind, dt, converted, c)
	return time.Duration(float64(full) * p)
}

// Models returns the number of fitted models (diagnostics).
func (pr *Predictor) Models() int { return len(pr.models) }

// FitError evaluates the predictor against the device model on a held-out
// sweep, returning the geometric-mean relative error for one kind — a
// diagnostic mirroring the paper's reliance on Neurosurgeon's reported
// accuracy.
func FitError(pr *Predictor, p *device.Processor, kind nn.OpKind, dt tensor.DataType) float64 {
	pts := profileKind(p, kind, dt, false)
	if len(pts) == 0 {
		return 0
	}
	var sumLog float64
	for _, pt := range pts {
		pred := pr.Predict(p.Name, kind, dt, false, nn.Cost{MACs: int64(pt.feature), InElems: int64(pt.feature / 2), OutElems: int64(pt.feature / 2)})
		if pred <= 0 || pt.latency <= 0 {
			continue
		}
		r := float64(pred) / float64(pt.latency)
		if r < 1 {
			r = 1 / r
		}
		sumLog += math.Log(r)
	}
	return math.Exp(sumLog/float64(len(pts))) - 1
}
