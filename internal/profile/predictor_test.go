package profile

import (
	"testing"
	"time"

	"mulayer/internal/nn"
	"mulayer/internal/soc"
	"mulayer/internal/tensor"
)

func TestBuildCoversAllModels(t *testing.T) {
	s := soc.Exynos7420()
	pr := Build(s.CPU, s.GPU)
	// 2 procs × (10 kinds × 3 dtypes + 10 converted) = 80.
	if pr.Models() != 80 {
		t.Fatalf("models = %d, want 80", pr.Models())
	}
}

func TestPredictMonotoneInWork(t *testing.T) {
	s := soc.Exynos7420()
	pr := Build(s.CPU, s.GPU)
	small := nn.Cost{MACs: 1e6, InElems: 1e5, WElems: 1e4, OutElems: 1e5}
	big := nn.Cost{MACs: 1e9, InElems: 1e7, WElems: 1e6, OutElems: 1e7}
	for _, dt := range tensor.AllDataTypes {
		ts := pr.Predict(s.CPU.Name, nn.OpConv, dt, false, small)
		tb := pr.Predict(s.CPU.Name, nn.OpConv, dt, false, big)
		if tb <= ts || ts <= 0 {
			t.Fatalf("%v: predict(big)=%v <= predict(small)=%v", dt, tb, ts)
		}
	}
}

func TestPredictTracksDeviceModel(t *testing.T) {
	// The regression should land within ~35% of the device model for conv
	// workloads inside the profiled range.
	s := soc.Exynos7420()
	pr := Build(s.CPU, s.GPU)
	l := &nn.Conv2D{LayerName: "c", InC: 128, OutC: 128, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	in := tensor.Shape{N: 1, C: 128, H: 28, W: 28}
	c := l.Cost([]tensor.Shape{in})
	for _, dt := range tensor.AllDataTypes {
		w := workFor(nn.OpConv, c, dt, false)
		truth := s.CPU.KernelTime(w)
		pred := pr.Predict(s.CPU.Name, nn.OpConv, dt, false, c)
		r := float64(pred) / float64(truth)
		if r < 0.65 || r > 1.55 {
			t.Fatalf("%v: pred %v vs device %v (ratio %.2f)", dt, pred, truth, r)
		}
	}
}

func TestPredictSplitScalesLinearly(t *testing.T) {
	s := soc.Exynos7420()
	pr := Build(s.CPU, s.GPU)
	c := nn.Cost{MACs: 5e8, InElems: 1e6, WElems: 1e6, OutElems: 1e6}
	full := pr.Predict(s.CPU.Name, nn.OpConv, tensor.QUInt8, false, c)
	half := pr.PredictSplit(s.CPU.Name, nn.OpConv, tensor.QUInt8, false, c, 0.5)
	if half != full/2 {
		t.Fatalf("split 0.5: %v, want %v", half, full/2)
	}
	if pr.PredictSplit(s.CPU.Name, nn.OpConv, tensor.QUInt8, false, c, 0) != 0 {
		t.Fatal("p=0 must predict zero work")
	}
}

func TestPredictConvertedPipelineDistinct(t *testing.T) {
	s := soc.Exynos7420()
	pr := Build(s.CPU, s.GPU)
	c := nn.Cost{MACs: 5e8, InElems: 2e6, WElems: 1e6, OutElems: 2e6}
	plain := pr.Predict(s.GPU.Name, nn.OpConv, tensor.F16, false, c)
	conv := pr.Predict(s.GPU.Name, nn.OpConv, tensor.F16, true, c)
	if plain <= 0 || conv <= 0 {
		t.Fatal("predictions must be positive")
	}
	if plain == conv {
		t.Fatal("converted pipeline must have its own model")
	}
}

func TestPredictorReproducesProcessorPreferences(t *testing.T) {
	// The predictor must preserve the Figure 8 ordering the partitioner
	// relies on: CPU prefers QUInt8, GPU prefers F16.
	for _, s := range soc.All() {
		pr := Build(s.CPU, s.GPU)
		c := nn.Cost{MACs: 1e9, InElems: 4e6, WElems: 1e6, OutElems: 4e6}
		cpuF32 := pr.Predict(s.CPU.Name, nn.OpConv, tensor.F32, false, c)
		cpuU8 := pr.Predict(s.CPU.Name, nn.OpConv, tensor.QUInt8, false, c)
		if cpuU8 >= cpuF32 {
			t.Errorf("%s: CPU QUInt8 %v !< F32 %v", s.Name, cpuU8, cpuF32)
		}
		gpuF32 := pr.Predict(s.GPU.Name, nn.OpConv, tensor.F32, false, c)
		gpuF16 := pr.Predict(s.GPU.Name, nn.OpConv, tensor.F16, false, c)
		if gpuF16 >= gpuF32 {
			t.Errorf("%s: GPU F16 %v !< F32 %v", s.Name, gpuF16, gpuF32)
		}
	}
}

func TestFitErrorIsModest(t *testing.T) {
	s := soc.Exynos7420()
	pr := Build(s.CPU, s.GPU)
	if e := FitError(pr, s.CPU, nn.OpConv, tensor.F32); e > 0.5 {
		t.Fatalf("conv fit error %.2f too large", e)
	}
}

func TestPredictUnknownProcFallsBackToZero(t *testing.T) {
	pr := &Predictor{models: map[Key]linModel{}}
	if got := pr.Predict("nope", nn.OpConv, tensor.F32, false, nn.Cost{MACs: 1}); got != 0 {
		t.Fatalf("unknown processor should predict 0, got %v", got)
	}
}

func TestFitDegenerate(t *testing.T) {
	if m := fit(nil); m.ok {
		t.Fatal("empty fit must be not-ok")
	}
	if m := fit([]trainPoint{{1, time.Millisecond}}); m.ok {
		t.Fatal("single-point fit must be not-ok")
	}
	// Identical x values: singular system.
	if m := fit([]trainPoint{{100, time.Millisecond}, {100, 2 * time.Millisecond}}); m.ok {
		t.Fatal("singular fit must be not-ok")
	}
}

func TestFeatureFallsBackToElems(t *testing.T) {
	c := nn.Cost{MACs: 0, InElems: 100, OutElems: 100}
	if feature(nn.OpConcat, c) != 200 {
		t.Fatalf("concat feature = %v", feature(nn.OpConcat, c))
	}
	if feature(nn.OpConv, nn.Cost{}) != 1 {
		t.Fatal("zero cost must clamp to 1")
	}
}
