package quant

import (
	"math"
	"testing"
)

// FuzzChooseParams checks the affine-grid invariants on arbitrary ranges:
// positive scale, exact zero representability, and range coverage.
func FuzzChooseParams(f *testing.F) {
	f.Add(float32(-1), float32(1))
	f.Add(float32(0), float32(0))
	f.Add(float32(2), float32(10))
	f.Add(float32(-10), float32(-2))
	f.Add(float32(-6e4), float32(6e4))
	f.Fuzz(func(t *testing.T, lo, hi float32) {
		if math.IsNaN(float64(lo)) || math.IsNaN(float64(hi)) ||
			math.IsInf(float64(lo), 0) || math.IsInf(float64(hi), 0) {
			return
		}
		if math.Abs(float64(lo)) > 1e30 || math.Abs(float64(hi)) > 1e30 {
			return
		}
		p := ChooseParams(lo, hi)
		if p.Scale <= 0 || math.IsNaN(float64(p.Scale)) || math.IsInf(float64(p.Scale), 0) {
			t.Fatalf("ChooseParams(%g,%g) scale %g", lo, hi, p.Scale)
		}
		if got := p.Dequantize(p.Quantize(0)); got != 0 {
			t.Fatalf("zero not exactly representable: %g", got)
		}
		// Quantize never escapes [0,255] by construction of uint8, but the
		// round-trip must stay within half a step inside the range.
		for _, v := range []float32{p.RangeMin(), p.RangeMax(), (p.RangeMin() + p.RangeMax()) / 2} {
			back := p.Dequantize(p.Quantize(v))
			if math.Abs(float64(back-v)) > float64(p.Scale)*0.5001 {
				t.Fatalf("round-trip error for %g: got %g (scale %g)", v, back, p.Scale)
			}
		}
	})
}

// FuzzRequantize checks the fixed-point pipeline against the float
// reference on arbitrary accumulators and grids.
func FuzzRequantize(f *testing.F) {
	f.Add(int32(0), float32(2), float32(0.5), float32(4))
	f.Add(int32(100000), float32(1), float32(1), float32(1))
	f.Add(int32(-100000), float32(3), float32(0.25), float32(8))
	f.Fuzz(func(t *testing.T, acc int32, inR, wR, outR float32) {
		for _, r := range []float32{inR, wR, outR} {
			if math.IsNaN(float64(r)) || math.IsInf(float64(r), 0) || r <= 1e-6 || r > 1e6 {
				return
			}
		}
		if acc > 1<<24 || acc < -(1<<24) {
			return
		}
		in := ChooseParams(-inR, inR)
		w := ChooseParams(-wR, wR)
		out := ChooseParams(-outR, outR)
		req := NewRequantizer(in, w, out, ActNone)
		got := req.Requantize(acc)
		real := float64(acc) * float64(in.Scale) * float64(w.Scale)
		want := math.Round(real/float64(out.Scale)) + float64(out.ZeroPoint)
		if want < 0 {
			want = 0
		}
		if want > 255 {
			want = 255
		}
		if math.Abs(float64(got)-want) > 1 {
			t.Fatalf("requantize(%d) grids(%v,%v,%v) = %d, float says %g", acc, in, w, out, got, want)
		}
	})
}

// FuzzRoundingDivideByPOT checks the rounding division against float math.
func FuzzRoundingDivideByPOT(f *testing.F) {
	f.Add(int32(100), uint8(3))
	f.Add(int32(-100), uint8(3))
	f.Add(int32(0), uint8(0))
	f.Fuzz(func(t *testing.T, x int32, e uint8) {
		exp := int(e % 31)
		got := RoundingDivideByPOT(x, exp)
		want := math.Round(float64(x) / math.Pow(2, float64(exp)))
		// math.Round ties away from zero, matching the primitive.
		if float64(got) != want {
			t.Fatalf("RDivByPOT(%d,%d) = %d, want %g", x, exp, got, want)
		}
	})
}
