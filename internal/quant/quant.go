// Package quant implements 8-bit linear ("affine") quantization as used by
// μLayer's processor-friendly quantization and by gemmlowp/TensorFlow Lite
// (Jacob et al., CVPR 2018).
//
// A real value r is represented by an 8-bit unsigned integer q through
//
//	r = Scale * (q - ZeroPoint)
//
// so that 0 and 255 map to (approximately) the minimum and the maximum of
// the represented range and the real value 0 is always exactly
// representable — a requirement for zero padding in convolutions.
//
// Integer-only inference additionally needs requantization: convolution
// accumulates int32 sums whose effective scale is inputScale*weightScale,
// and the result must be rescaled to the output's quantization grid using
// only integer arithmetic. The fixed-point machinery here (quantized
// multipliers, saturating rounding doubling high multiplication, rounding
// right shifts) is bit-compatible with the gemmlowp output pipeline.
package quant

import (
	"fmt"
	"math"
)

// Params describes the affine mapping of one quantized tensor.
type Params struct {
	// Scale is the real-valued size of one quantization step. Must be > 0.
	Scale float32
	// ZeroPoint is the quantized value that represents real 0.
	ZeroPoint uint8
}

// String implements fmt.Stringer.
func (p Params) String() string {
	return fmt.Sprintf("quant.Params{scale=%g zp=%d}", p.Scale, p.ZeroPoint)
}

// ChooseParams returns quantization parameters covering the real range
// [min, max], nudged so that real 0 is exactly representable. The range is
// widened to include 0 if necessary (gemmlowp does the same) and degenerate
// ranges get a tiny non-zero scale so division is always safe.
func ChooseParams(min, max float32) Params {
	if min > max {
		min, max = max, min
	}
	// The representable range must straddle zero.
	if min > 0 {
		min = 0
	}
	if max < 0 {
		max = 0
	}
	if max == min {
		// All-zero (or constant-zero) tensor: any positive scale works.
		return Params{Scale: 1.0 / 255.0, ZeroPoint: 0}
	}
	scale := (max - min) / 255.0
	// The zero point is the quantized value corresponding to real 0:
	// zp = -min/scale, rounded and clamped to [0,255].
	zpReal := -float64(min) / float64(scale)
	zp := int(math.Round(zpReal))
	if zp < 0 {
		zp = 0
	} else if zp > 255 {
		zp = 255
	}
	return Params{Scale: scale, ZeroPoint: uint8(zp)}
}

// Quantize maps a real value onto the quantized grid with
// round-to-nearest (away-from-zero ties, matching ARM and gemmlowp) and
// saturation to [0, 255].
func (p Params) Quantize(r float32) uint8 {
	q := math.Round(float64(r)/float64(p.Scale)) + float64(p.ZeroPoint)
	if q < 0 {
		return 0
	}
	if q > 255 {
		return 255
	}
	return uint8(q)
}

// Dequantize maps a quantized value back to its real representative.
func (p Params) Dequantize(q uint8) float32 {
	return p.Scale * float32(int32(q)-int32(p.ZeroPoint))
}

// QuantizeSlice quantizes src into a freshly allocated byte slice.
func (p Params) QuantizeSlice(src []float32) []uint8 {
	dst := make([]uint8, len(src))
	for i, v := range src {
		dst[i] = p.Quantize(v)
	}
	return dst
}

// DequantizeSlice dequantizes src into a freshly allocated float32 slice.
func (p Params) DequantizeSlice(src []uint8) []float32 {
	dst := make([]float32, len(src))
	for i, v := range src {
		dst[i] = p.Dequantize(v)
	}
	return dst
}

// MaxRoundTripError returns the worst-case absolute error of representing a
// value inside the params' range: half a quantization step.
func (p Params) MaxRoundTripError() float32 { return p.Scale / 2 }

// RangeMin returns the smallest representable real value.
func (p Params) RangeMin() float32 { return p.Dequantize(0) }

// RangeMax returns the largest representable real value.
func (p Params) RangeMax() float32 { return p.Dequantize(255) }

// Multiplier is a positive real factor represented in fixed point as
// M0 * 2^Shift with M0 an int32 in [2^30, 2^31) (i.e. a Q0.31 value in
// [0.5, 1)). It reproduces TensorFlow Lite's quantized multiplier.
type Multiplier struct {
	M0    int32
	Shift int
}

// NewMultiplier decomposes a positive real multiplier into fixed point.
// It panics on non-positive or non-finite input: multipliers in the
// requantization pipeline are always ratios of positive scales.
func NewMultiplier(real float64) Multiplier {
	if real <= 0 || math.IsInf(real, 0) || math.IsNaN(real) {
		panic(fmt.Sprintf("quant: invalid multiplier %g", real))
	}
	frac, shift := math.Frexp(real) // real = frac * 2^shift, frac ∈ [0.5, 1)
	m0 := int64(math.Round(frac * (1 << 31)))
	if m0 == 1<<31 { // rounding may push frac to 1.0
		m0 /= 2
		shift++
	}
	return Multiplier{M0: int32(m0), Shift: shift}
}

// Real returns the real value the multiplier approximates.
func (m Multiplier) Real() float64 {
	return float64(m.M0) / (1 << 31) * math.Pow(2, float64(m.Shift))
}

// Apply computes round(x * m) using only integer arithmetic, matching
// TFLite's MultiplyByQuantizedMultiplier. The pre-multiplication left
// shift saturates (ARM SQSHL semantics) so that pathological grids with a
// real multiplier far above 1 clamp instead of wrapping; any saturated
// value is far outside the 8-bit output range, so the downstream clamp
// yields the correct 0/255.
func (m Multiplier) Apply(x int32) int32 {
	left, right := m.Shift, 0
	if left < 0 {
		left, right = 0, -m.Shift
	}
	shifted := int64(x) << left
	if shifted > math.MaxInt32 {
		shifted = math.MaxInt32
	} else if shifted < math.MinInt32 {
		shifted = math.MinInt32
	}
	return RoundingDivideByPOT(SaturatingRoundingDoublingHighMul(int32(shifted), m.M0), right)
}

// SaturatingRoundingDoublingHighMul returns the high 32 bits of 2*a*b with
// rounding, saturating the single overflow case (both operands MinInt32).
// This is gemmlowp's SRDHM primitive (maps to ARM SQRDMULH).
func SaturatingRoundingDoublingHighMul(a, b int32) int32 {
	if a == math.MinInt32 && b == math.MinInt32 {
		return math.MaxInt32
	}
	ab := int64(a) * int64(b)
	var nudge int64 = 1 << 30
	if ab < 0 {
		nudge = 1 - 1<<30
	}
	// gemmlowp divides (truncation toward zero), it does not arithmetic-shift;
	// the two differ for negative products and only division is antisymmetric.
	return int32((ab + nudge) / (1 << 31))
}

// RoundingDivideByPOT divides by 2^exponent with round-to-nearest
// (ties away from zero), gemmlowp's RDivByPOT primitive.
func RoundingDivideByPOT(x int32, exponent int) int32 {
	if exponent < 0 || exponent > 31 {
		panic(fmt.Sprintf("quant: bad POT exponent %d", exponent))
	}
	if exponent == 0 {
		return x
	}
	mask := int32(1)<<exponent - 1
	remainder := x & mask
	threshold := mask >> 1
	if x < 0 {
		threshold++
	}
	q := x >> exponent
	if remainder > threshold {
		q++
	}
	return q
}

// Requantizer rescales int32 accumulators (scale = inScale*weightScale)
// onto an output quantization grid, clamping to an activation range. It is
// the integer-only output stage of a quantized convolution or FC layer.
type Requantizer struct {
	mult          Multiplier
	outZero       int32
	actMin        int32
	actMax        int32
	Input, Output Params
}

// NewRequantizer builds the output stage for accumulators produced from
// tensors quantized with in and w, targeting out. act constrains the output
// range (use ActNone for no activation).
func NewRequantizer(in, w, out Params, act Activation) Requantizer {
	real := float64(in.Scale) * float64(w.Scale) / float64(out.Scale)
	lo, hi := act.Clamp(out)
	return Requantizer{
		mult:    NewMultiplier(real),
		outZero: int32(out.ZeroPoint),
		actMin:  lo,
		actMax:  hi,
		Input:   in,
		Output:  out,
	}
}

// Requantize maps one int32 accumulator to the output grid.
func (r Requantizer) Requantize(acc int32) uint8 {
	v := r.mult.Apply(acc) + r.outZero
	if v < r.actMin {
		v = r.actMin
	}
	if v > r.actMax {
		v = r.actMax
	}
	return uint8(v)
}

// Activation selects the fused activation applied during requantization.
type Activation int

// Supported fused activations.
const (
	ActNone  Activation = iota // identity
	ActReLU                    // max(0, x)
	ActReLU6                   // min(6, max(0, x))
)

// String implements fmt.Stringer.
func (a Activation) String() string {
	switch a {
	case ActNone:
		return "none"
	case ActReLU:
		return "relu"
	case ActReLU6:
		return "relu6"
	}
	return fmt.Sprintf("Activation(%d)", int(a))
}

// Clamp returns the quantized [lo, hi] range the activation induces on the
// output grid described by p.
func (a Activation) Clamp(p Params) (lo, hi int32) {
	lo, hi = 0, 255
	switch a {
	case ActReLU:
		if z := int32(p.ZeroPoint); z > lo {
			lo = z
		}
	case ActReLU6:
		if z := int32(p.ZeroPoint); z > lo {
			lo = z
		}
		q6 := int32(math.Round(6/float64(p.Scale))) + int32(p.ZeroPoint)
		if q6 < hi {
			hi = q6
		}
		if hi < lo {
			hi = lo
		}
	}
	return lo, hi
}

// Apply applies the activation to a real value (the float-path equivalent
// of the fused quantized clamp).
func (a Activation) Apply(x float32) float32 {
	switch a {
	case ActReLU:
		if x < 0 {
			return 0
		}
	case ActReLU6:
		if x < 0 {
			return 0
		}
		if x > 6 {
			return 6
		}
	}
	return x
}

// Observer accumulates the min/max statistics of a stream of real values.
// Running calibration inputs through an F32 network with observers on every
// edge is the post-training analogue of TensorFlow's fake-quantization
// range learning; μLayer assumes those ranges are available.
type Observer struct {
	Min, Max float32
	seen     bool
}

// NewObserver returns an empty observer.
func NewObserver() *Observer { return &Observer{} }

// Observe folds one value into the running range.
func (o *Observer) Observe(v float32) {
	if math.IsNaN(float64(v)) {
		return
	}
	if !o.seen {
		o.Min, o.Max, o.seen = v, v, true
		return
	}
	if v < o.Min {
		o.Min = v
	}
	if v > o.Max {
		o.Max = v
	}
}

// ObserveSlice folds a batch of values into the running range.
func (o *Observer) ObserveSlice(vs []float32) {
	for _, v := range vs {
		o.Observe(v)
	}
}

// Seen reports whether any value has been observed.
func (o *Observer) Seen() bool { return o.seen }

// Params converts the observed range into quantization parameters.
// An untouched observer yields the degenerate unit range.
func (o *Observer) Params() Params {
	if !o.seen {
		return ChooseParams(0, 0)
	}
	return ChooseParams(o.Min, o.Max)
}
