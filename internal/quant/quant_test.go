package quant

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestChooseParamsBasics(t *testing.T) {
	p := ChooseParams(-1, 1)
	if p.Scale <= 0 {
		t.Fatal("scale must be positive")
	}
	if got := p.Dequantize(p.ZeroPoint); got != 0 {
		t.Fatalf("real zero not representable: %v", got)
	}
	if p.RangeMin() > -1+p.Scale || p.RangeMax() < 1-p.Scale {
		t.Fatalf("range [%v,%v] does not cover [-1,1]", p.RangeMin(), p.RangeMax())
	}
}

func TestChooseParamsAllPositiveRange(t *testing.T) {
	// Range that excludes zero must be widened so zero is representable.
	p := ChooseParams(2, 10)
	if p.ZeroPoint != 0 {
		t.Errorf("positive-only range should pin zero point at 0, got %d", p.ZeroPoint)
	}
	if p.Dequantize(0) != 0 {
		t.Error("zero not representable")
	}
}

func TestChooseParamsAllNegativeRange(t *testing.T) {
	p := ChooseParams(-10, -2)
	if p.ZeroPoint != 255 {
		t.Errorf("negative-only range should pin zero point at 255, got %d", p.ZeroPoint)
	}
}

func TestChooseParamsDegenerate(t *testing.T) {
	p := ChooseParams(0, 0)
	if p.Scale <= 0 {
		t.Fatal("degenerate range must still have positive scale")
	}
	if p.Quantize(0) != p.ZeroPoint {
		t.Fatal("zero must quantize to the zero point")
	}
}

func TestChooseParamsSwappedArgs(t *testing.T) {
	a, b := ChooseParams(-3, 5), ChooseParams(5, -3)
	if a != b {
		t.Fatalf("argument order should not matter: %v vs %v", a, b)
	}
}

func TestQuantizeSaturates(t *testing.T) {
	p := ChooseParams(-1, 1)
	if p.Quantize(100) != 255 {
		t.Error("over-range must saturate to 255")
	}
	if p.Quantize(-100) != 0 {
		t.Error("under-range must saturate to 0")
	}
}

func TestRoundTripWithinHalfStep(t *testing.T) {
	p := ChooseParams(-6, 6)
	for i := 0; i < 1000; i++ {
		v := float32(i-500) / 500 * 6
		got := p.Dequantize(p.Quantize(v))
		if d := math.Abs(float64(got - v)); d > float64(p.Scale)/2+1e-6 {
			t.Fatalf("round-trip error %v for %v exceeds half a step %v", d, v, p.Scale/2)
		}
	}
}

func TestPropertyRoundTrip(t *testing.T) {
	f := func(lo, hi float32, x float32) bool {
		if math.IsNaN(float64(lo)) || math.IsNaN(float64(hi)) || math.IsNaN(float64(x)) {
			return true
		}
		if math.Abs(float64(lo)) > 1e6 || math.Abs(float64(hi)) > 1e6 {
			return true
		}
		p := ChooseParams(lo, hi)
		// Clamp x into the representable range first.
		if x < p.RangeMin() {
			x = p.RangeMin()
		}
		if x > p.RangeMax() {
			x = p.RangeMax()
		}
		got := p.Dequantize(p.Quantize(x))
		return math.Abs(float64(got-x)) <= float64(p.Scale)*0.5001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestMultiplierDecomposition(t *testing.T) {
	for _, m := range []float64{1, 0.5, 0.25, 2, 1.5, 0.0001, 0.9999, 123.456, 1e-9} {
		q := NewMultiplier(m)
		if q.M0 < 1<<30 {
			t.Fatalf("M0 %d not normalized for %g", q.M0, m)
		}
		if rel := math.Abs(q.Real()-m) / m; rel > 1e-9 {
			t.Fatalf("multiplier %g decomposes to %g (rel err %g)", m, q.Real(), rel)
		}
	}
}

func TestMultiplierPanicsOnInvalid(t *testing.T) {
	for _, bad := range []float64{0, -1, math.Inf(1), math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewMultiplier(%g) did not panic", bad)
				}
			}()
			NewMultiplier(bad)
		}()
	}
}

func TestMultiplierApplyMatchesFloat(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 5000; i++ {
		m := math.Exp(rng.Float64()*10 - 7) // ~[1e-3, 20]
		q := NewMultiplier(m)
		x := int32(rng.Intn(1<<20) - 1<<19)
		// Keep x*(1<<left) within int32 for the fixed-point path.
		if q.Shift > 0 && int64(x)<<q.Shift > math.MaxInt32/2 {
			continue
		}
		got := q.Apply(x)
		want := math.Round(float64(x) * m)
		if math.Abs(float64(got)-want) > 1 {
			t.Fatalf("Apply(%d)*%g = %d, float says %g", x, m, got, want)
		}
	}
}

func TestSRDHM(t *testing.T) {
	if got := SaturatingRoundingDoublingHighMul(math.MinInt32, math.MinInt32); got != math.MaxInt32 {
		t.Errorf("saturation case = %d", got)
	}
	// 2*a*b>>32 with rounding: a=b=1<<30 → 2*2^60 = 2^61, >>31 = 2^30.
	if got := SaturatingRoundingDoublingHighMul(1<<30, 1<<30); got != 1<<29 {
		t.Errorf("2^30*2^30 high mul = %d, want %d", got, 1<<29)
	}
	// Symmetry in sign.
	if SaturatingRoundingDoublingHighMul(12345, -678) != -SaturatingRoundingDoublingHighMul(12345, 678) {
		t.Error("SRDHM should be antisymmetric for these operands")
	}
}

func TestRoundingDivideByPOT(t *testing.T) {
	cases := []struct {
		x    int32
		e    int
		want int32
	}{
		{0, 4, 0},
		{16, 4, 1},
		{15, 4, 1},  // 0.9375 rounds to 1
		{8, 4, 1},   // exactly 0.5 rounds away from zero → 1
		{7, 4, 0},   // 0.4375 rounds to 0
		{-8, 4, -1}, // -0.5 rounds away from zero → -1
		{-7, 4, 0},
		{-16, 4, -1},
		{100, 0, 100},
	}
	for _, c := range cases {
		if got := RoundingDivideByPOT(c.x, c.e); got != c.want {
			t.Errorf("RDivByPOT(%d,%d) = %d, want %d", c.x, c.e, got, c.want)
		}
	}
}

func TestRoundingDivideByPOTPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative exponent must panic")
		}
	}()
	RoundingDivideByPOT(1, -1)
}

func TestRequantizerMatchesFloatReference(t *testing.T) {
	in := ChooseParams(-2, 2)
	w := ChooseParams(-0.5, 0.5)
	out := ChooseParams(-4, 4)
	r := NewRequantizer(in, w, out, ActNone)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		acc := int32(rng.Intn(200000) - 100000)
		real := float64(acc) * float64(in.Scale) * float64(w.Scale)
		wantQ := math.Round(real/float64(out.Scale)) + float64(out.ZeroPoint)
		if wantQ < 0 {
			wantQ = 0
		}
		if wantQ > 255 {
			wantQ = 255
		}
		got := r.Requantize(acc)
		if math.Abs(float64(got)-wantQ) > 1 {
			t.Fatalf("acc %d: requantized %d, float reference %g", acc, got, wantQ)
		}
	}
}

func TestRequantizerReLUClamps(t *testing.T) {
	in := ChooseParams(-1, 1)
	w := ChooseParams(-1, 1)
	out := ChooseParams(-1, 1)
	r := NewRequantizer(in, w, out, ActReLU)
	// A strongly negative accumulator must clamp to the zero point.
	if got := r.Requantize(-1000000); got != out.ZeroPoint {
		t.Errorf("ReLU clamp: got %d, want zero point %d", got, out.ZeroPoint)
	}
}

func TestActivationClampReLU6(t *testing.T) {
	p := ChooseParams(0, 12)
	lo, hi := ActReLU6.Clamp(p)
	if lo != int32(p.ZeroPoint) {
		t.Errorf("lo = %d", lo)
	}
	want6 := int32(math.Round(6/float64(p.Scale))) + int32(p.ZeroPoint)
	if hi != want6 {
		t.Errorf("hi = %d want %d", hi, want6)
	}
	if v := ActReLU6.Apply(9); v != 6 {
		t.Errorf("Apply(9) = %v", v)
	}
	if v := ActReLU6.Apply(-3); v != 0 {
		t.Errorf("Apply(-3) = %v", v)
	}
	if v := ActNone.Apply(-3); v != -3 {
		t.Errorf("ActNone.Apply(-3) = %v", v)
	}
	if v := ActReLU.Apply(5); v != 5 {
		t.Errorf("ActReLU.Apply(5) = %v", v)
	}
}

func TestObserver(t *testing.T) {
	o := NewObserver()
	if o.Seen() {
		t.Fatal("fresh observer should be empty")
	}
	p := o.Params()
	if p.Scale <= 0 {
		t.Fatal("empty observer params must be usable")
	}
	o.ObserveSlice([]float32{3, -1, 2})
	o.Observe(float32(math.NaN())) // ignored
	if o.Min != -1 || o.Max != 3 {
		t.Fatalf("range [%v,%v]", o.Min, o.Max)
	}
	p = o.Params()
	if p.RangeMin() > -1+p.Scale || p.RangeMax() < 3-p.Scale {
		t.Fatal("params must cover observed range")
	}
}

func TestPropertyRequantizeMonotone(t *testing.T) {
	in := ChooseParams(-3, 3)
	w := ChooseParams(-1, 1)
	out := ChooseParams(-6, 6)
	r := NewRequantizer(in, w, out, ActNone)
	f := func(a, b int32) bool {
		a %= 1 << 24
		b %= 1 << 24
		if a > b {
			a, b = b, a
		}
		return r.Requantize(a) <= r.Requantize(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkRequantize(b *testing.B) {
	r := NewRequantizer(ChooseParams(-2, 2), ChooseParams(-1, 1), ChooseParams(-4, 4), ActReLU)
	var sink uint8
	for i := 0; i < b.N; i++ {
		sink = r.Requantize(int32(i))
	}
	_ = sink
}
