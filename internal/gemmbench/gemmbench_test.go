package gemmbench

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestZooShapesCoverBothKinds(t *testing.T) {
	shapes, err := ZooShapes(64, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[string]int{}
	modelsSeen := map[string]bool{}
	for _, s := range shapes {
		kinds[s.Kind]++
		modelsSeen[s.Model] = true
		if s.M <= 0 || s.K <= 0 || s.N <= 0 {
			t.Fatalf("%s/%s: bad dims %dx%dx%d", s.Model, s.Layer, s.M, s.K, s.N)
		}
		if s.Kind == "fc" && s.N != 1 {
			t.Fatalf("%s/%s: fc shape with n=%d", s.Model, s.Layer, s.N)
		}
		if s.MACs != int64(s.M)*int64(s.K)*int64(s.N) {
			t.Fatalf("%s/%s: MACs %d inconsistent with dims", s.Model, s.Layer, s.MACs)
		}
	}
	if kinds["conv"] == 0 || kinds["fc"] == 0 {
		t.Fatalf("want both conv and fc shapes, got %v", kinds)
	}
	// Every zoo model contributes at least one shape (a few may dedup).
	if len(modelsSeen) < 5 {
		t.Fatalf("only %d models contributed shapes: %v", len(modelsSeen), modelsSeen)
	}
}

func TestSmokeRunProducesValidReport(t *testing.T) {
	rep, err := Run(SmokeConfig())
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(data); err != nil {
		t.Fatalf("smoke report fails validation: %v\n%s", err, data)
	}
}

func TestValidateRejectsBrokenReports(t *testing.T) {
	rep, err := Run(SmokeConfig())
	if err != nil {
		t.Fatal(err)
	}
	good, _ := json.Marshal(rep)
	cases := []struct {
		name   string
		mutate func(r *Report)
		want   string
	}{
		{"no shapes", func(r *Report) { r.Shapes = nil }, "no shapes"},
		{"multithreaded", func(r *Report) { r.GoMaxProc = 8 }, "gomaxprocs"},
		{"zero throughput", func(r *Report) { r.Shapes[0].QPackedGOPS = 0 }, "want > 0"},
		{"bad kind", func(r *Report) { r.Shapes[0].Kind = "rnn" }, "unknown kind"},
		{"fc only", func(r *Report) {
			kept := r.Shapes[:0]
			for _, s := range r.Shapes {
				if s.Kind == "fc" {
					kept = append(kept, s)
				}
			}
			r.Shapes = kept
		}, "both conv and fc"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var r Report
			if err := json.Unmarshal(good, &r); err != nil {
				t.Fatal(err)
			}
			tc.mutate(&r)
			data, _ := json.Marshal(r)
			err := Validate(data)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want mention of %q", err, tc.want)
			}
		})
	}
	if err := Validate([]byte("{not json")); err == nil {
		t.Fatal("malformed JSON must not validate")
	}
}
