// Package gemmbench measures the packed/tiled GEMM kernels against the
// naive *Ref oracles on the matrix shapes the bundled model zoo
// actually produces, and records the trajectory as BENCH_gemm.json.
//
// Shapes are extracted from the spec-only graphs (no weights are
// allocated): every Conv2D lowers to an (OutC × InC·KH·KW × OutH·OutW)
// GEMM after im2col, and every FullyConnected is an (OutC × InFeatures
// × 1) GEMV. Per model, the largest conv-shaped and the largest
// FC-shaped problem (by MAC count) are benchmarked, so the sweep covers
// both regimes the tiled kernels must win on: wide GEMMs with operand
// reuse, and reuse-free GEMVs where only the pre-packed weight path
// pays off.
//
// All measurements are single-threaded (GOMAXPROCS(1)) so the numbers
// isolate kernel quality from parallel scaling.
package gemmbench

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"time"

	"mulayer/internal/gemm"
	"mulayer/internal/models"
	"mulayer/internal/nn"
)

// Shape is one GEMM problem extracted from the zoo.
type Shape struct {
	Model string `json:"model"`
	Layer string `json:"layer"`
	// Kind is "conv" (im2col-lowered, n = output plane) or "fc" (GEMV).
	Kind string `json:"kind"`
	M    int    `json:"m"`
	K    int    `json:"k"`
	N    int    `json:"n"`
	MACs int64  `json:"macs"`
}

// zooBuilders mirrors the golden-test model set.
func zooBuilders() []struct {
	name  string
	build func(models.Config) (*models.Model, error)
} {
	return []struct {
		name  string
		build func(models.Config) (*models.Model, error)
	}{
		{"lenet5", models.LeNet5},
		{"alexnet", models.AlexNet},
		{"vgg16", models.VGG16},
		{"googlenet", models.GoogLeNet},
		{"squeezenet", models.SqueezeNetV11},
		{"mobilenet", models.MobileNetV1},
		{"resnet18", models.ResNet18},
	}
}

// ZooShapes extracts the benchmark shapes from spec-only zoo graphs.
// inputHW and widthScale are forwarded to the model builders (0 keeps
// the defaults). Per model it keeps the largest conv and the largest fc
// problem by MACs; grouped (depthwise) convolutions are skipped because
// they lower to many tiny per-group GEMMs rather than one big one.
func ZooShapes(inputHW int, widthScale float64) ([]Shape, error) {
	var shapes []Shape
	seen := make(map[[4]interface{}]bool)
	for _, mb := range zooBuilders() {
		m, err := mb.build(models.Config{InputHW: inputHW, WidthScale: widthScale, Classes: 10})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", mb.name, err)
		}
		dims, err := m.Graph.InferShapes()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", mb.name, err)
		}
		var bestConv, bestFC *Shape
		order, err := m.Graph.Toposort()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", mb.name, err)
		}
		for _, id := range order {
			node := m.Graph.Node(id)
			var s Shape
			switch l := node.Layer.(type) {
			case *nn.Conv2D:
				if l.Groups > 1 {
					continue
				}
				out := dims[node.ID]
				s = Shape{
					Model: mb.name, Layer: l.LayerName, Kind: "conv",
					M: l.OutC, K: l.InC * l.KH * l.KW, N: out.H * out.W,
				}
			case *nn.FullyConnected:
				s = Shape{
					Model: mb.name, Layer: l.LayerName, Kind: "fc",
					M: l.OutC, K: l.InFeatures, N: 1,
				}
			default:
				continue
			}
			s.MACs = int64(s.M) * int64(s.K) * int64(s.N)
			best := &bestConv
			if s.Kind == "fc" {
				best = &bestFC
			}
			if *best == nil || s.MACs > (*best).MACs {
				cp := s
				*best = &cp
			}
		}
		for _, b := range []*Shape{bestConv, bestFC} {
			if b == nil {
				continue
			}
			key := [4]interface{}{b.Kind, b.M, b.K, b.N}
			if seen[key] {
				continue
			}
			seen[key] = true
			shapes = append(shapes, *b)
		}
	}
	sort.Slice(shapes, func(i, j int) bool {
		if shapes[i].Kind != shapes[j].Kind {
			return shapes[i].Kind < shapes[j].Kind
		}
		return shapes[i].MACs > shapes[j].MACs
	})
	if len(shapes) == 0 {
		return nil, fmt.Errorf("no GEMM shapes extracted from zoo")
	}
	return shapes, nil
}

// Result is the measurement for one shape.
type Result struct {
	Shape
	// QUInt8 path, GOP/s (2·m·k·n integer ops per multiply).
	QRefGOPS    float64 `json:"q_ref_gops"`
	QPackedGOPS float64 `json:"q_packed_gops"`
	QSpeedup    float64 `json:"q_speedup_packed"`
	// F32 path, GFLOP/s.
	F32RefGFLOPS    float64 `json:"f32_ref_gflops"`
	F32PackedGFLOPS float64 `json:"f32_packed_gflops"`
	F32Speedup      float64 `json:"f32_speedup_packed"`
}

// Config controls a benchmark run.
type Config struct {
	// InputHW/WidthScale shrink the zoo for smoke runs (0 = defaults).
	InputHW    int     `json:"input_hw,omitempty"`
	WidthScale float64 `json:"width_scale,omitempty"`
	// MinTime is the minimum measured duration per kernel per shape;
	// every kernel always runs at least once.
	MinTime time.Duration `json:"min_time_ns"`
}

// DefaultConfig is the committed-trajectory configuration.
func DefaultConfig() Config {
	return Config{MinTime: 200 * time.Millisecond}
}

// SmokeConfig is a CI-sized configuration: scaled-down shapes, single
// iteration per kernel.
func SmokeConfig() Config {
	return Config{InputHW: 64, WidthScale: 0.25, MinTime: 0}
}

// Report is the BENCH_gemm.json document.
type Report struct {
	Benchmark string   `json:"benchmark"`
	Config    Config   `json:"config"`
	GoMaxProc int      `json:"gomaxprocs"`
	Shapes    []Result `json:"shapes"`
	Summary   Summary  `json:"summary"`
}

// Summary aggregates the speedups the ROADMAP tracks.
type Summary struct {
	QSpeedupConvMax float64 `json:"q_speedup_packed_conv_max"`
	QSpeedupFCMax   float64 `json:"q_speedup_packed_fc_max"`
	QSpeedupGeoMean float64 `json:"q_speedup_packed_geomean"`
	F32SpeedupGeo   float64 `json:"f32_speedup_packed_geomean"`
}

// measure runs fn in a loop until cfg.MinTime has elapsed (at least
// once) and returns achieved ops/sec for `ops` operations per call.
func measure(minTime time.Duration, ops int64, fn func()) float64 {
	fn() // warm up (and populate any lazily-built state)
	var iters int64
	start := time.Now()
	for {
		fn()
		iters++
		if el := time.Since(start); el >= minTime && iters >= 1 {
			return float64(ops*iters) / el.Seconds()
		}
	}
}

// Run benchmarks every zoo shape single-threaded and returns the report.
func Run(cfg Config) (*Report, error) {
	shapes, err := ZooShapes(cfg.InputHW, cfg.WidthScale)
	if err != nil {
		return nil, err
	}
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)

	rep := &Report{
		Benchmark: "packed register-tiled GEMM vs naive reference kernels, single-thread, model-zoo shapes",
		Config:    cfg,
		GoMaxProc: 1,
	}
	rng := rand.New(rand.NewSource(42))
	for _, s := range shapes {
		m, k, n := s.M, s.K, s.N
		ops := 2 * s.MACs

		// Collect the previous shape's operands before timing: the
		// zoo's largest shapes leave ~100MB of garbage, and with a
		// bloated heap the packed path's per-call B-pack allocations
		// pay GC-assist costs the allocation-free Ref loops never see,
		// skewing small-shape measurements by up to 10x.
		runtime.GC()

		aq := make([]uint8, m*k)
		bq := make([]uint8, k*n)
		for i := range aq {
			aq[i] = uint8(rng.Intn(256))
		}
		for i := range bq {
			bq[i] = uint8(rng.Intn(256))
		}
		acc := make([]int32, m*n)
		const za, zb = 128, 3
		paq := gemm.PackAU8(aq, m, k)

		af := make([]float32, m*k)
		bf := make([]float32, k*n)
		for i := range af {
			af[i] = rng.Float32() - 0.5
		}
		for i := range bf {
			bf[i] = rng.Float32() - 0.5
		}
		cf := make([]float32, m*n)
		paf := gemm.PackAF32(af, m, k)

		r := Result{Shape: s}
		r.QRefGOPS = measure(cfg.MinTime, ops, func() {
			gemm.QGEMMRef(aq, bq, acc, m, k, n, za, zb)
		}) / 1e9
		r.QPackedGOPS = measure(cfg.MinTime, ops, func() {
			gemm.QGEMMPacked(paq, bq, acc, n, za, zb)
		}) / 1e9
		r.QSpeedup = r.QPackedGOPS / r.QRefGOPS
		r.F32RefGFLOPS = measure(cfg.MinTime, ops, func() {
			gemm.F32Ref(af, bf, cf, m, k, n)
		}) / 1e9
		r.F32PackedGFLOPS = measure(cfg.MinTime, ops, func() {
			gemm.F32Packed(paf, bf, cf, n)
		}) / 1e9
		r.F32Speedup = r.F32PackedGFLOPS / r.F32RefGFLOPS
		rep.Shapes = append(rep.Shapes, r)
	}
	rep.Summary = summarize(rep.Shapes)
	return rep, nil
}

func summarize(rs []Result) Summary {
	var s Summary
	logQ, logF := 0.0, 0.0
	for _, r := range rs {
		if r.Kind == "conv" && r.QSpeedup > s.QSpeedupConvMax {
			s.QSpeedupConvMax = r.QSpeedup
		}
		if r.Kind == "fc" && r.QSpeedup > s.QSpeedupFCMax {
			s.QSpeedupFCMax = r.QSpeedup
		}
		logQ += math.Log(r.QSpeedup)
		logF += math.Log(r.F32Speedup)
	}
	if len(rs) > 0 {
		s.QSpeedupGeoMean = math.Exp(logQ / float64(len(rs)))
		s.F32SpeedupGeo = math.Exp(logF / float64(len(rs)))
	}
	return s
}

// Validate checks a BENCH_gemm.json document for structural sanity: at
// least one conv-shaped and one fc-shaped entry, positive throughputs
// and dimensions throughout, and a consistent summary.
func Validate(data []byte) error {
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return fmt.Errorf("parse: %w", err)
	}
	if rep.Benchmark == "" {
		return fmt.Errorf("missing benchmark field")
	}
	if rep.GoMaxProc != 1 {
		return fmt.Errorf("gomaxprocs = %d, want single-thread measurements", rep.GoMaxProc)
	}
	if len(rep.Shapes) == 0 {
		return fmt.Errorf("no shapes recorded")
	}
	kinds := map[string]int{}
	for i, r := range rep.Shapes {
		kinds[r.Kind]++
		if r.Kind != "conv" && r.Kind != "fc" {
			return fmt.Errorf("shape %d: unknown kind %q", i, r.Kind)
		}
		if r.M <= 0 || r.K <= 0 || r.N <= 0 {
			return fmt.Errorf("shape %d (%s/%s): non-positive dims %dx%dx%d", i, r.Model, r.Layer, r.M, r.K, r.N)
		}
		if r.Kind == "fc" && r.N != 1 {
			return fmt.Errorf("shape %d (%s/%s): fc with n=%d", i, r.Model, r.Layer, r.N)
		}
		for name, v := range map[string]float64{
			"q_ref_gops": r.QRefGOPS, "q_packed_gops": r.QPackedGOPS,
			"f32_ref_gflops": r.F32RefGFLOPS, "f32_packed_gflops": r.F32PackedGFLOPS,
			"q_speedup_packed": r.QSpeedup, "f32_speedup_packed": r.F32Speedup,
		} {
			if !(v > 0) {
				return fmt.Errorf("shape %d (%s/%s): %s = %v, want > 0", i, r.Model, r.Layer, name, v)
			}
		}
	}
	if kinds["conv"] == 0 || kinds["fc"] == 0 {
		return fmt.Errorf("need both conv and fc shapes, got %v", kinds)
	}
	if !(rep.Summary.QSpeedupConvMax > 0) || !(rep.Summary.QSpeedupFCMax > 0) {
		return fmt.Errorf("summary speedups missing: %+v", rep.Summary)
	}
	return nil
}
