// Package dataset provides the synthetic classification benchmark that
// substitutes for ImageNet in the Figure 10 accuracy experiment
// (DESIGN.md §2).
//
// The paper measures top-5 ImageNet accuracy of pretrained networks under
// F16 and QUInt8 quantization. Without ImageNet or pretrained weights, we
// use the teacher-label construction: the F32 network itself defines the
// ground truth (its top-1 prediction on each input is the label), and a
// quantized variant is scored by how often its top-k predictions contain
// the teacher's label. By construction F32 scores 100%; what the
// experiment measures — identically to the paper — is how much prediction
// agreement each quantization scheme destroys. The relative ladder
// (F16 ≈ F32, naive QUInt8 collapsing on deep networks, range-calibrated
// QUInt8 recovering to within a few points) is the reproduced result.
package dataset

import (
	"fmt"
	"sort"

	"mulayer/internal/models"
	"mulayer/internal/tensor"
)

// Dataset is a synthetic labelled sample set.
type Dataset struct {
	Inputs []*tensor.Tensor
	Labels []int
}

// Synthesize draws n pseudo-random inputs and labels them with the F32
// teacher (the model must be numeric). The same (model, n, seed) always
// yields the same dataset.
func Synthesize(m *models.Model, n int, seed uint64) (*Dataset, error) {
	if n <= 0 {
		return nil, fmt.Errorf("dataset: need a positive sample count")
	}
	d := &Dataset{Inputs: make([]*tensor.Tensor, n), Labels: make([]int, n)}
	for i := 0; i < n; i++ {
		in := tensor.New(m.InputShape)
		in.FillRandom(seed+uint64(i)*7919, 1)
		vals, err := m.RunF32(in)
		if err != nil {
			return nil, err
		}
		d.Inputs[i] = in
		d.Labels[i] = Argmax(vals[m.Graph.Output()].Data)
	}
	return d, nil
}

// Argmax returns the index of the largest value.
func Argmax(xs []float32) int {
	best := 0
	for i, v := range xs {
		if v > xs[best] {
			best = i
		}
	}
	return best
}

// TopK returns the indices of the k largest values, best first.
func TopK(xs []float32, k int) []int {
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return xs[idx[a]] > xs[idx[b]] })
	if k > len(idx) {
		k = len(idx)
	}
	return idx[:k]
}

// Accuracy holds top-1 and top-5 agreement rates in [0,1].
type Accuracy struct {
	Top1, Top5 float64
}

// Score evaluates a predictor function over the dataset. predict must
// return the class scores for one input.
func (d *Dataset) Score(predict func(*tensor.Tensor) ([]float32, error)) (Accuracy, error) {
	var a Accuracy
	for i, in := range d.Inputs {
		scores, err := predict(in)
		if err != nil {
			return Accuracy{}, err
		}
		label := d.Labels[i]
		top5 := TopK(scores, 5)
		if top5[0] == label {
			a.Top1++
		}
		for _, t := range top5 {
			if t == label {
				a.Top5++
				break
			}
		}
	}
	n := float64(len(d.Inputs))
	a.Top1 /= n
	a.Top5 /= n
	return a, nil
}
