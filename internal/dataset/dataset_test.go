package dataset

import (
	"testing"

	"mulayer/internal/models"
	"mulayer/internal/tensor"
)

func teacher(t *testing.T) *models.Model {
	t.Helper()
	m, err := models.LeNet5(models.Config{Numeric: true, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestSynthesizeDeterministic(t *testing.T) {
	m := teacher(t)
	a, err := Synthesize(m, 8, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Synthesize(m, 8, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] {
			t.Fatal("labels must be deterministic")
		}
		if a.Inputs[i].MaxAbsDiff(b.Inputs[i]) != 0 {
			t.Fatal("inputs must be deterministic")
		}
	}
	c, _ := Synthesize(m, 8, 43)
	same := true
	for i := range a.Inputs {
		if a.Inputs[i].MaxAbsDiff(c.Inputs[i]) != 0 {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds should differ")
	}
}

func TestSynthesizeRejectsBadCount(t *testing.T) {
	m := teacher(t)
	if _, err := Synthesize(m, 0, 1); err == nil {
		t.Fatal("zero samples must fail")
	}
}

func TestTeacherScoresPerfectly(t *testing.T) {
	m := teacher(t)
	d, err := Synthesize(m, 10, 7)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := d.Score(func(in *tensor.Tensor) ([]float32, error) {
		vals, err := m.RunF32(in)
		if err != nil {
			return nil, err
		}
		return vals[m.Graph.Output()].Data, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if acc.Top1 != 1 || acc.Top5 != 1 {
		t.Fatalf("teacher must agree with itself: %+v", acc)
	}
}

func TestRandomGuessScoresPoorly(t *testing.T) {
	m := teacher(t)
	d, _ := Synthesize(m, 30, 9)
	i := 0
	acc, err := d.Score(func(in *tensor.Tensor) ([]float32, error) {
		// A rotating one-hot guess uncorrelated with the teacher.
		scores := make([]float32, 10)
		scores[i%10] = 1
		i++
		return scores, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if acc.Top1 > 0.5 {
		t.Fatalf("uncorrelated guesses should score poorly, got %+v", acc)
	}
	if acc.Top5 < acc.Top1 {
		t.Fatal("top-5 can never be below top-1")
	}
}

func TestTopK(t *testing.T) {
	xs := []float32{0.1, 0.9, 0.3, 0.7, 0.5}
	got := TopK(xs, 3)
	want := []int{1, 3, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("topk = %v", got)
		}
	}
	if len(TopK(xs, 99)) != 5 {
		t.Fatal("k beyond length must clamp")
	}
	if Argmax(xs) != 1 {
		t.Fatal("argmax")
	}
}
