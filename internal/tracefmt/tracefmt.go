// Package tracefmt renders the Chrome Trace Event Format (the JSON array
// variant consumed by chrome://tracing and https://ui.perfetto.dev). It is
// the shared serializer behind both the simulator's timeline export
// (internal/sim) and the serving subsystem's per-request traces
// (internal/trace): one Event type, metadata helpers for naming processes
// and tracks, and a stable string→track-id mapping.
//
// Only the subset of the format the viewers rely on is produced: "M"
// metadata events (process_name / thread_name) and "X" complete events
// with microsecond timestamps.
package tracefmt

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// Event is one Trace Event Format entry.
type Event struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`  // microseconds
	Dur   float64        `json:"dur"` // microseconds
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Args  map[string]any `json:"args,omitempty"`
}

// Micros converts a duration to the format's microsecond floats.
func Micros(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }

// ThreadName returns the metadata event naming one track (tid) of a
// process.
func ThreadName(pid, tid int, name string) Event {
	return Event{Name: "thread_name", Cat: "__metadata", Phase: "M",
		PID: pid, TID: tid, Args: map[string]any{"name": name}}
}

// ProcessName returns the metadata event naming one process (pid).
func ProcessName(pid int, name string) Event {
	return Event{Name: "process_name", Cat: "__metadata", Phase: "M",
		PID: pid, Args: map[string]any{"name": name}}
}

// Complete returns one "X" complete event spanning [start, start+dur).
func Complete(name, cat string, pid, tid int, start, dur time.Duration, args map[string]any) Event {
	return Event{Name: name, Cat: cat, Phase: "X",
		TS: Micros(start), Dur: Micros(dur), PID: pid, TID: tid, Args: args}
}

// Tracks assigns stable track ids to names in first-appearance order —
// the per-processor lane mapping of a timeline export.
type Tracks struct {
	ids   map[string]int
	order []string
}

// NewTracks returns an empty mapping.
func NewTracks() *Tracks { return &Tracks{ids: make(map[string]int)} }

// ID returns the track id for name, allocating the next id on first use.
func (t *Tracks) ID(name string) int {
	if id, ok := t.ids[name]; ok {
		return id
	}
	id := len(t.order)
	t.ids[name] = id
	t.order = append(t.order, name)
	return id
}

// Names returns the track names in id order.
func (t *Tracks) Names() []string { return t.order }

// Write serializes the events as one JSON array. A nil or empty slice
// yields an empty array, which the viewers accept.
func Write(w io.Writer, events []Event) error {
	if events == nil {
		events = []Event{}
	}
	if err := json.NewEncoder(w).Encode(events); err != nil {
		return fmt.Errorf("tracefmt: encoding trace: %w", err)
	}
	return nil
}
