package tracefmt

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestMicros(t *testing.T) {
	if got := Micros(1500 * time.Nanosecond); got != 1.5 {
		t.Fatalf("Micros(1.5µs) = %v, want 1.5", got)
	}
	if got := Micros(2 * time.Millisecond); got != 2000 {
		t.Fatalf("Micros(2ms) = %v, want 2000", got)
	}
}

func TestMetadataEvents(t *testing.T) {
	th := ThreadName(1, 3, "CPU")
	if th.Phase != "M" || th.Cat != "__metadata" || th.Name != "thread_name" {
		t.Fatalf("ThreadName shape wrong: %+v", th)
	}
	if th.PID != 1 || th.TID != 3 || th.Args["name"] != "CPU" {
		t.Fatalf("ThreadName fields wrong: %+v", th)
	}
	pn := ProcessName(2, "device")
	if pn.Phase != "M" || pn.Name != "process_name" || pn.PID != 2 || pn.Args["name"] != "device" {
		t.Fatalf("ProcessName fields wrong: %+v", pn)
	}
}

func TestComplete(t *testing.T) {
	ev := Complete("conv1", "kernel", 1, 2, 10*time.Microsecond, 5*time.Microsecond,
		map[string]any{"p": 0.5})
	if ev.Phase != "X" || ev.TS != 10 || ev.Dur != 5 || ev.PID != 1 || ev.TID != 2 {
		t.Fatalf("Complete fields wrong: %+v", ev)
	}
	if ev.Args["p"] != 0.5 {
		t.Fatalf("Complete args wrong: %+v", ev.Args)
	}
}

func TestTracksStableIDs(t *testing.T) {
	tr := NewTracks()
	if id := tr.ID("CPU"); id != 0 {
		t.Fatalf("first track id = %d, want 0", id)
	}
	if id := tr.ID("GPU"); id != 1 {
		t.Fatalf("second track id = %d, want 1", id)
	}
	if id := tr.ID("CPU"); id != 0 {
		t.Fatalf("repeat lookup changed id: %d", id)
	}
	names := tr.Names()
	if len(names) != 2 || names[0] != "CPU" || names[1] != "GPU" {
		t.Fatalf("Names() = %v", names)
	}
}

func TestWriteEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, nil); err != nil {
		t.Fatalf("Write(nil): %v", err)
	}
	if got := strings.TrimSpace(buf.String()); got != "[]" {
		t.Fatalf("empty write = %q, want []", got)
	}
}

// TestWriteRoundTrip pins the JSON field names the trace viewers rely on.
func TestWriteRoundTrip(t *testing.T) {
	events := []Event{
		ThreadName(1, 0, "CPU"),
		Complete("fc1", "kernel", 1, 0, 0, time.Microsecond, map[string]any{"energy_pj": 12.0}),
	}
	var buf bytes.Buffer
	if err := Write(&buf, events); err != nil {
		t.Fatalf("Write: %v", err)
	}
	var decoded []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if len(decoded) != 2 {
		t.Fatalf("decoded %d events, want 2", len(decoded))
	}
	for _, key := range []string{"name", "cat", "ph", "ts", "dur", "pid", "tid"} {
		if _, ok := decoded[0][key]; !ok {
			t.Errorf("missing field %q in serialized event", key)
		}
	}
	if decoded[1]["ph"] != "X" || decoded[1]["dur"] != 1.0 {
		t.Fatalf("complete event serialized wrong: %v", decoded[1])
	}
}
