// Package nn implements the neural-network layers μLayer executes:
// convolutional (including depthwise and grouped), fully-connected,
// pooling, activation, local response normalization, concatenation, and
// softmax layers, each with three arithmetic pipelines (F32, F16, QUInt8).
//
// Every kernel takes an output-channel range [c0,c1): this is the
// primitive behind μLayer's channel-wise workload distribution (§3.2).
// Executing the same layer once with [0,c) on one processor and once with
// [c,C) on another covers every output element exactly once — no redundant
// computation — and merging is a contiguous copy in the NCHW layout.
package nn

import (
	"fmt"

	"mulayer/internal/quant"
	"mulayer/internal/tensor"
)

// OpKind classifies layers for cost modeling and plan construction.
type OpKind int

// The layer kinds of the evaluated NNs.
const (
	OpInput OpKind = iota
	OpConv
	OpDepthwise
	OpFC
	OpMaxPool
	OpAvgPool
	OpReLU
	OpLRN
	OpConcat
	OpSoftmax
	OpAdd
)

// String implements fmt.Stringer.
func (k OpKind) String() string {
	switch k {
	case OpInput:
		return "input"
	case OpConv:
		return "conv"
	case OpDepthwise:
		return "dwconv"
	case OpFC:
		return "fc"
	case OpMaxPool:
		return "maxpool"
	case OpAvgPool:
		return "avgpool"
	case OpReLU:
		return "relu"
	case OpLRN:
		return "lrn"
	case OpConcat:
		return "concat"
	case OpSoftmax:
		return "softmax"
	case OpAdd:
		return "add"
	}
	return fmt.Sprintf("OpKind(%d)", int(k))
}

// Cost summarizes the work of executing a layer (or a channel slice of
// one): multiply-accumulate count and element traffic. The device model
// turns it into time and energy given the data types in play.
type Cost struct {
	MACs     int64 // multiply-accumulates (comparisons/adds for pooling)
	InElems  int64 // activation elements read
	WElems   int64 // weight elements read
	OutElems int64 // elements written
}

// Add returns the elementwise sum of two costs.
func (c Cost) Add(o Cost) Cost {
	return Cost{
		MACs:     c.MACs + o.MACs,
		InElems:  c.InElems + o.InElems,
		WElems:   c.WElems + o.WElems,
		OutElems: c.OutElems + o.OutElems,
	}
}

// Scale returns the cost of executing the fraction p of the layer's output
// channels: compute, weight traffic and output traffic scale with p while
// the activation input is shared (read in full by both processors under
// the channel-wise distribution).
func (c Cost) Scale(p float64) Cost {
	return Cost{
		MACs:     int64(float64(c.MACs) * p),
		InElems:  c.InElems,
		WElems:   int64(float64(c.WElems) * p),
		OutElems: int64(float64(c.OutElems) * p),
	}
}

// QuantInfo carries the quantization artifacts a layer needs for the
// integer pipelines. It is populated by calibration (models package):
// μLayer assumes 8-bit linear quantization was already applied to the
// network (§6).
type QuantInfo struct {
	In  quant.Params // input activation grid
	W   quant.Params // weight grid (per-tensor, or the first channel's when per-channel)
	Out quant.Params // output activation grid
	// WPerChannel holds one weight grid per output channel when the layer
	// uses per-channel weight quantization — the standard production
	// refinement for depthwise convolutions, whose per-channel weight
	// ranges vary wildly (an extension beyond the paper's per-tensor
	// gemmlowp scheme).
	WPerChannel []quant.Params
	Ready       bool // true once calibration has run
}

// PerChannel reports whether per-channel weight grids are installed.
func (q *QuantInfo) PerChannel() bool { return len(q.WPerChannel) > 0 }

// Layer is one NN layer. Implementations also provide dtype-specific
// forward methods; the executor dispatches on the concrete type.
type Layer interface {
	Name() string
	Kind() OpKind
	// OutShape computes the output shape from the input shapes, or an
	// error when the layer cannot accept them.
	OutShape(ins []tensor.Shape) (tensor.Shape, error)
	// Cost returns the full-layer cost for the input shapes.
	Cost(ins []tensor.Shape) Cost
	// SplitChannels returns the number of output channels the layer can be
	// split over for channel-wise distribution, or 0 when the layer must
	// run whole on a single processor.
	SplitChannels(ins []tensor.Shape) int
	// Quant exposes the layer's quantization info (nil for layers with no
	// quantized state, e.g. Input).
	Quant() *QuantInfo
}

// shapeErr builds a consistent error for shape mismatches.
func shapeErr(layer, format string, args ...any) error {
	return fmt.Errorf("nn: %s: %s", layer, fmt.Sprintf(format, args...))
}

// checkRange panics when a channel range is out of bounds; kernels use it
// to fail fast on malformed plans.
func checkRange(c0, c1, c int, layer string) {
	if c0 < 0 || c1 > c || c0 >= c1 {
		panic(fmt.Sprintf("nn: %s: invalid channel range [%d,%d) of %d", layer, c0, c1, c))
	}
}

// Input is the graph source pseudo-layer. It performs no computation.
type Input struct {
	LayerName string
	Shape     tensor.Shape
}

// Name implements Layer.
func (l *Input) Name() string { return l.LayerName }

// Kind implements Layer.
func (l *Input) Kind() OpKind { return OpInput }

// OutShape implements Layer.
func (l *Input) OutShape(ins []tensor.Shape) (tensor.Shape, error) {
	if len(ins) != 0 {
		return tensor.Shape{}, shapeErr(l.LayerName, "input layer takes no inputs")
	}
	return l.Shape, nil
}

// Cost implements Layer.
func (l *Input) Cost(ins []tensor.Shape) Cost { return Cost{} }

// SplitChannels implements Layer.
func (l *Input) SplitChannels(ins []tensor.Shape) int { return 0 }

// Quant implements Layer.
func (l *Input) Quant() *QuantInfo { return nil }
