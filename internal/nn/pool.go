package nn

import (
	"math"

	"mulayer/internal/f16"
	"mulayer/internal/tensor"
)

// Pool is a max or average pooling layer. Pooling applies its window
// spatially and independently per channel, so the number of output
// channels equals the number of input channels and μLayer distributes the
// *input* channels across processors (§3.2, Figure 7b) — which is the same
// [c0,c1) range primitive as the output-channel split of convolutions.
type Pool struct {
	LayerName        string
	Max              bool // true = max pooling, false = average pooling
	KH, KW           int
	StrideH, StrideW int
	PadH, PadW       int
	Global           bool // window covers the whole input plane
	CountIncludePad  bool // average denominator includes padding taps
	QI               QuantInfo
}

// Name implements Layer.
func (l *Pool) Name() string { return l.LayerName }

// Kind implements Layer.
func (l *Pool) Kind() OpKind {
	if l.Max {
		return OpMaxPool
	}
	return OpAvgPool
}

// Quant implements Layer.
func (l *Pool) Quant() *QuantInfo { return &l.QI }

func (l *Pool) window(in tensor.Shape) (kh, kw, sh, sw int) {
	if l.Global {
		return in.H, in.W, 1, 1
	}
	return l.KH, l.KW, l.StrideH, l.StrideW
}

// OutShape implements Layer.
func (l *Pool) OutShape(ins []tensor.Shape) (tensor.Shape, error) {
	if len(ins) != 1 {
		return tensor.Shape{}, shapeErr(l.LayerName, "want 1 input, got %d", len(ins))
	}
	in := ins[0]
	kh, kw, sh, sw := l.window(in)
	oh := (in.H+2*l.PadH-kh)/sh + 1
	ow := (in.W+2*l.PadW-kw)/sw + 1
	if oh <= 0 || ow <= 0 {
		return tensor.Shape{}, shapeErr(l.LayerName, "non-positive output %dx%d for input %v", oh, ow, in)
	}
	return tensor.Shape{N: in.N, C: in.C, H: oh, W: ow}, nil
}

// Cost implements Layer. Each output element reads a kh×kw window.
func (l *Pool) Cost(ins []tensor.Shape) Cost {
	out, err := l.OutShape(ins)
	if err != nil {
		return Cost{}
	}
	kh, kw, _, _ := l.window(ins[0])
	return Cost{
		MACs:     int64(out.Elems()) * int64(kh) * int64(kw),
		InElems:  int64(ins[0].Elems()),
		OutElems: int64(out.Elems()),
	}
}

// SplitChannels implements Layer: pooling splits over its (equal) channel
// count.
func (l *Pool) SplitChannels(ins []tensor.Shape) int {
	if len(ins) != 1 {
		return 0
	}
	return ins[0].C
}

// forEachWindow visits every output position of channels [c0,c1) and
// yields the valid input taps, letting each dtype share the window walk.
func (l *Pool) forEachWindow(in, out tensor.Shape, c0, c1 int, visit func(n, c, oy, ox int, taps []int, denom int)) {
	kh, kw, sh, sw := l.window(in)
	taps := make([]int, 0, kh*kw)
	for n := 0; n < in.N; n++ {
		for c := c0; c < c1; c++ {
			for oy := 0; oy < out.H; oy++ {
				for ox := 0; ox < out.W; ox++ {
					taps = taps[:0]
					for y := 0; y < kh; y++ {
						sy := oy*sh - l.PadH + y
						if sy < 0 || sy >= in.H {
							continue
						}
						for x := 0; x < kw; x++ {
							sx := ox*sw - l.PadW + x
							if sx < 0 || sx >= in.W {
								continue
							}
							taps = append(taps, in.Index(n, c, sy, sx))
						}
					}
					denom := len(taps)
					if l.CountIncludePad {
						denom = kh * kw
					}
					visit(n, c, oy, ox, taps, denom)
				}
			}
		}
	}
}

// ForwardF32 pools channels [c0,c1) in single precision.
func (l *Pool) ForwardF32(ins []*tensor.Tensor, out *tensor.Tensor, c0, c1 int) {
	in := ins[0]
	checkRange(c0, c1, in.Shape.C, l.LayerName)
	l.forEachWindow(in.Shape, out.Shape, c0, c1, func(n, c, oy, ox int, taps []int, denom int) {
		if l.Max {
			m := float32(math.Inf(-1))
			for _, t := range taps {
				if v := in.Data[t]; v > m {
					m = v
				}
			}
			out.Set(n, c, oy, ox, m)
			return
		}
		var s float32
		for _, t := range taps {
			s += in.Data[t]
		}
		out.Set(n, c, oy, ox, s/float32(denom))
	})
}

// ForwardQ pools channels [c0,c1) on the quantized grid. Max pooling is
// exact (max is monotone under the affine map); average pooling rounds the
// integer mean. Input and output must share quantization parameters, which
// calibration guarantees for pooling layers.
func (l *Pool) ForwardQ(ins []*tensor.QTensor, out *tensor.QTensor, c0, c1 int) {
	in := ins[0]
	checkRange(c0, c1, in.Shape.C, l.LayerName)
	if in.Params != out.Params {
		panic("nn: pooling requires matching input/output quantization params on " + l.LayerName)
	}
	l.forEachWindow(in.Shape, out.Shape, c0, c1, func(n, c, oy, ox int, taps []int, denom int) {
		if l.Max {
			var m uint8
			for _, t := range taps {
				if v := in.Data[t]; v > m {
					m = v
				}
			}
			out.Set(n, c, oy, ox, m)
			return
		}
		var s int32
		for _, t := range taps {
			s += int32(in.Data[t])
		}
		// Padding taps contribute the zero point when included in the count.
		if l.CountIncludePad {
			s += int32(denom-len(taps)) * int32(in.Params.ZeroPoint)
		}
		q := (s + int32(denom)/2) / int32(denom) // rounded integer mean
		out.Set(n, c, oy, ox, uint8(q))
	})
}

// ForwardF16 pools channels [c0,c1) in half precision; the average
// accumulates in float32 and rounds once, like the GEMM kernels.
func (l *Pool) ForwardF16(ins []*tensor.HTensor, out *tensor.HTensor, c0, c1 int) {
	in := ins[0]
	checkRange(c0, c1, in.Shape.C, l.LayerName)
	l.forEachWindow(in.Shape, out.Shape, c0, c1, func(n, c, oy, ox int, taps []int, denom int) {
		if l.Max {
			m := float32(math.Inf(-1))
			for _, t := range taps {
				if v := in.Data[t].Float32(); v > m {
					m = v
				}
			}
			out.Set(n, c, oy, ox, f16.FromFloat32(m))
			return
		}
		var s float32
		for _, t := range taps {
			s += in.Data[t].Float32()
		}
		out.Set(n, c, oy, ox, f16.FromFloat32(s/float32(denom)))
	})
}
