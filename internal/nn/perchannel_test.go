package nn

import (
	"math"
	"testing"

	"mulayer/internal/quant"
	"mulayer/internal/tensor"
)

// newPerChannelConv builds a depthwise conv whose per-channel weight
// magnitudes differ by orders of magnitude — the regime where per-tensor
// quantization collapses small channels to zero.
func newPerChannelConv(t *testing.T, perChannel bool) (*Conv2D, *tensor.Tensor) {
	t.Helper()
	const c = 6
	in := tensor.New(tensor.Shape{N: 1, C: c, H: 8, W: 8})
	in.FillRandom(31, 1)
	w := tensor.New(tensor.Shape{N: c, C: 1, H: 3, W: 3})
	w.FillRandom(32, 1)
	// Scale channel i's weights by 2^-i: channel 5 is 32× smaller than
	// channel 0, the regime where a shared per-tensor grid leaves the
	// small channels only a handful of quantization levels.
	for oc := 0; oc < c; oc++ {
		mul := float32(math.Pow(2, -float64(oc)))
		for i := 0; i < 9; i++ {
			w.Data[oc*9+i] *= mul
		}
	}
	l := &Conv2D{
		LayerName: "dw_pc", InC: c, OutC: c, KH: 3, KW: 3,
		StrideH: 1, StrideW: 1, PadH: 1, PadW: 1, Groups: c,
		PerChannelW: perChannel, W: w, Bias: make([]float32, c),
	}
	outShape, err := l.OutShape([]tensor.Shape{in.Shape})
	if err != nil {
		t.Fatal(err)
	}
	ref := tensor.New(outShape)
	l.ForwardF32([]*tensor.Tensor{in}, ref, 0, c)
	inMin, inMax := in.Range()
	oMin, oMax := ref.Range()
	l.SetQuant(quant.ChooseParams(inMin, inMax), quant.ChooseParams(oMin, oMax))
	return l, in
}

// relErr measures the per-channel relative error of the quantized path
// against the *output-grid-rounded* F32 reference: rounding the reference
// onto the output grid first isolates the error induced by weight
// quantization from the unavoidable output-activation rounding that both
// schemes share.
func relErr(t *testing.T, l *Conv2D, in *tensor.Tensor, oc int) float64 {
	t.Helper()
	outShape, _ := l.OutShape([]tensor.Shape{in.Shape})
	ref := tensor.New(outShape)
	l.ForwardF32([]*tensor.Tensor{in}, ref, 0, l.OutC)
	refQ := tensor.Dequantize(tensor.Quantize(ref, l.QI.Out))
	qin := tensor.Quantize(in, l.QI.In)
	qout := tensor.NewQ(outShape, l.QI.Out)
	l.ForwardQ([]*tensor.QTensor{qin}, qout, 0, l.OutC)
	deq := tensor.Dequantize(qout)
	var num, den float64
	lo, hi := outShape.ChannelSpan(0, oc, oc+1)
	for i := lo; i < hi; i++ {
		num += math.Abs(float64(deq.Data[i] - refQ.Data[i]))
		den += math.Abs(float64(ref.Data[i]))
	}
	if den == 0 {
		return 0
	}
	return num / den
}

func TestPerChannelRescuesSmallChannels(t *testing.T) {
	pt, in := newPerChannelConv(t, false)
	pc, _ := newPerChannelConv(t, true)
	// Per-tensor: channel 5's weights (32× below channel 0) keep only a
	// few quantization levels; per-channel restores the full 8 bits.
	ptErr := relErr(t, pt, in, 5)
	pcErr := relErr(t, pc, in, 5)
	if pcErr >= ptErr/2 {
		t.Fatalf("per-channel rel. error %.3f must be well below per-tensor %.3f on the small channel", pcErr, ptErr)
	}
	if !pc.QI.PerChannel() || pt.QI.PerChannel() {
		t.Fatal("PerChannel flags")
	}
	if len(pc.QI.WPerChannel) != 6 {
		t.Fatal("per-channel grid count")
	}
}

func TestPerChannelSplitMergeBitExact(t *testing.T) {
	l, in := newPerChannelConv(t, true)
	outShape, _ := l.OutShape([]tensor.Shape{in.Shape})
	qin := tensor.Quantize(in, l.QI.In)
	full := tensor.NewQ(outShape, l.QI.Out)
	l.ForwardQ([]*tensor.QTensor{qin}, full, 0, l.OutC)
	a := tensor.NewQ(outShape, l.QI.Out)
	b := tensor.NewQ(outShape, l.QI.Out)
	l.ForwardQ([]*tensor.QTensor{qin}, a, 0, 2)
	l.ForwardQ([]*tensor.QTensor{qin}, b, 2, l.OutC)
	m := tensor.NewQ(outShape, l.QI.Out)
	m.CopyChannels(a, 0, 2)
	m.CopyChannels(b, 2, l.OutC)
	for i := range m.Data {
		if m.Data[i] != full.Data[i] {
			t.Fatal("per-channel split-merge differs")
		}
	}
}

func TestPerChannelGPUPathAgrees(t *testing.T) {
	l, in := newPerChannelConv(t, true)
	outShape, _ := l.OutShape([]tensor.Shape{in.Shape})
	qin := tensor.Quantize(in, l.QI.In)
	cpu := tensor.NewQ(outShape, l.QI.Out)
	gpu := tensor.NewQ(outShape, l.QI.Out)
	l.ForwardQ([]*tensor.QTensor{qin}, cpu, 0, l.OutC)
	l.ForwardQViaF16([]*tensor.QTensor{qin}, gpu, 0, l.OutC)
	for i := range cpu.Data {
		d := int(cpu.Data[i]) - int(gpu.Data[i])
		if d < -2 || d > 2 {
			t.Fatalf("per-channel CPU/GPU paths differ by %d at %d", d, i)
		}
	}
}

func TestPerChannelDenseConvIm2ColPath(t *testing.T) {
	// Per-channel requantization must also work through the im2col+GEMM
	// fast path (Groups == 1).
	in := tensor.New(tensor.Shape{N: 1, C: 3, H: 7, W: 7})
	in.FillRandom(41, 1)
	w := tensor.New(tensor.Shape{N: 4, C: 3, H: 3, W: 3})
	w.FillRandom(42, 0.5)
	for i := 0; i < 27; i++ {
		w.Data[2*27+i] *= 1e-3 // shrink channel 2
	}
	l := &Conv2D{
		LayerName: "pc_dense", InC: 3, OutC: 4, KH: 3, KW: 3,
		StrideH: 1, StrideW: 1, PadH: 1, PadW: 1,
		PerChannelW: true, W: w,
	}
	outShape, _ := l.OutShape([]tensor.Shape{in.Shape})
	ref := tensor.New(outShape)
	l.ForwardF32([]*tensor.Tensor{in}, ref, 0, 4)
	inMin, inMax := in.Range()
	oMin, oMax := ref.Range()
	l.SetQuant(quant.ChooseParams(inMin, inMax), quant.ChooseParams(oMin, oMax))
	qin := tensor.Quantize(in, l.QI.In)
	qout := tensor.NewQ(outShape, l.QI.Out)
	l.ForwardQ([]*tensor.QTensor{qin}, qout, 0, 4)
	deq := tensor.Dequantize(qout)
	if d := deq.MaxAbsDiff(ref); d > float64(l.QI.Out.Scale)*6 {
		t.Fatalf("dense per-channel error %v", d)
	}
}

func TestPerChannelWeightRoundTripError(t *testing.T) {
	// The quantized weights themselves: per-channel scales must represent
	// each channel within its own half-step, while per-tensor cannot.
	l, _ := newPerChannelConv(t, true)
	rows := 9
	for oc := 0; oc < l.OutC; oc++ {
		wp := l.QI.WPerChannel[oc]
		for i := 0; i < rows; i++ {
			orig := l.W.Data[oc*rows+i]
			back := wp.Dequantize(l.wq.Data[oc*rows+i])
			if math.Abs(float64(back-orig)) > float64(wp.Scale)*0.5001 {
				t.Fatalf("channel %d weight %d: %v vs %v (scale %v)", oc, i, back, orig, wp.Scale)
			}
		}
	}
}
