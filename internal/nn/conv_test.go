package nn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mulayer/internal/quant"
	"mulayer/internal/tensor"
)

// newTestConv builds a small convolution with deterministic random weights
// and calibrated quantization grids derived from a reference input.
func newTestConv(t *testing.T, inC, outC, k, stride, pad, groups int, act quant.Activation) (*Conv2D, *tensor.Tensor) {
	t.Helper()
	in := tensor.New(tensor.Shape{N: 1, C: inC, H: 9, W: 9})
	in.FillRandom(11, 1)
	icg := inC
	if groups > 1 {
		icg = inC / groups
	}
	w := tensor.New(tensor.Shape{N: outC, C: icg, H: k, W: k})
	w.FillRandom(22, 0.5)
	bias := make([]float32, outC)
	for i := range bias {
		bias[i] = float32(i%5) * 0.1
	}
	l := &Conv2D{
		LayerName: "conv_t", InC: inC, OutC: outC,
		KH: k, KW: k, StrideH: stride, StrideW: stride, PadH: pad, PadW: pad,
		Groups: groups, Act: act, W: w, Bias: bias,
	}
	// Calibrate activation grids from the F32 reference run.
	outShape, err := l.OutShape([]tensor.Shape{in.Shape})
	if err != nil {
		t.Fatal(err)
	}
	ref := tensor.New(outShape)
	l.ForwardF32([]*tensor.Tensor{in}, ref, 0, outC)
	inMin, inMax := in.Range()
	oMin, oMax := ref.Range()
	l.SetQuant(quant.ChooseParams(inMin, inMax), quant.ChooseParams(oMin, oMax))
	return l, in
}

func TestConvSplitMergeEqualsFullF32(t *testing.T) {
	l, in := newTestConv(t, 4, 8, 3, 1, 1, 1, quant.ActReLU)
	outShape, _ := l.OutShape([]tensor.Shape{in.Shape})
	full := tensor.New(outShape)
	l.ForwardF32([]*tensor.Tensor{in}, full, 0, l.OutC)
	for split := 1; split < l.OutC; split++ {
		cpu := tensor.New(outShape)
		gpu := tensor.New(outShape)
		l.ForwardF32([]*tensor.Tensor{in}, cpu, 0, split)
		l.ForwardF32([]*tensor.Tensor{in}, gpu, split, l.OutC)
		merged := tensor.New(outShape)
		merged.CopyChannels(cpu, 0, split)
		merged.CopyChannels(gpu, split, l.OutC)
		if merged.MaxAbsDiff(full) != 0 {
			t.Fatalf("split %d: merged F32 output differs from full run", split)
		}
	}
}

func TestConvSplitMergeEqualsFullQ(t *testing.T) {
	l, in := newTestConv(t, 4, 8, 3, 1, 1, 1, quant.ActNone)
	outShape, _ := l.OutShape([]tensor.Shape{in.Shape})
	qin := tensor.Quantize(in, l.QI.In)
	full := tensor.NewQ(outShape, l.QI.Out)
	l.ForwardQ([]*tensor.QTensor{qin}, full, 0, l.OutC)
	for _, split := range []int{1, 2, 4, 6, 7} {
		a := tensor.NewQ(outShape, l.QI.Out)
		b := tensor.NewQ(outShape, l.QI.Out)
		l.ForwardQ([]*tensor.QTensor{qin}, a, 0, split)
		l.ForwardQ([]*tensor.QTensor{qin}, b, split, l.OutC)
		merged := tensor.NewQ(outShape, l.QI.Out)
		merged.CopyChannels(a, 0, split)
		merged.CopyChannels(b, split, l.OutC)
		for i := range merged.Data {
			if merged.Data[i] != full.Data[i] {
				t.Fatalf("split %d elem %d: %d vs %d (quantized path must be bit-exact)", split, i, merged.Data[i], full.Data[i])
			}
		}
	}
}

func TestConvProcessorFriendlySplitBitExactPerSide(t *testing.T) {
	// μLayer's cooperative execution: CPU computes [0,split) in QUInt8 and
	// GPU computes [split,outC) via F16. Each side must be bit-identical to
	// the corresponding channels of its own full single-processor run —
	// the no-redundancy invariant with heterogeneous arithmetic.
	l, in := newTestConv(t, 4, 8, 3, 1, 1, 1, quant.ActReLU)
	outShape, _ := l.OutShape([]tensor.Shape{in.Shape})
	qin := tensor.Quantize(in, l.QI.In)
	cpuFull := tensor.NewQ(outShape, l.QI.Out)
	gpuFull := tensor.NewQ(outShape, l.QI.Out)
	l.ForwardQ([]*tensor.QTensor{qin}, cpuFull, 0, l.OutC)
	l.ForwardQViaF16([]*tensor.QTensor{qin}, gpuFull, 0, l.OutC)
	split := 5
	merged := tensor.NewQ(outShape, l.QI.Out)
	cpuPart := tensor.NewQ(outShape, l.QI.Out)
	gpuPart := tensor.NewQ(outShape, l.QI.Out)
	l.ForwardQ([]*tensor.QTensor{qin}, cpuPart, 0, split)
	l.ForwardQViaF16([]*tensor.QTensor{qin}, gpuPart, split, l.OutC)
	merged.CopyChannels(cpuPart, 0, split)
	merged.CopyChannels(gpuPart, split, l.OutC)
	for n := 0; n < outShape.N; n++ {
		lo, hi := outShape.ChannelSpan(n, 0, split)
		for i := lo; i < hi; i++ {
			if merged.Data[i] != cpuFull.Data[i] {
				t.Fatalf("CPU-side channel data differs at %d", i)
			}
		}
		lo, hi = outShape.ChannelSpan(n, split, l.OutC)
		for i := lo; i < hi; i++ {
			if merged.Data[i] != gpuFull.Data[i] {
				t.Fatalf("GPU-side channel data differs at %d", i)
			}
		}
	}
}

func TestConvQCloseToF32(t *testing.T) {
	l, in := newTestConv(t, 3, 6, 3, 1, 1, 1, quant.ActReLU)
	outShape, _ := l.OutShape([]tensor.Shape{in.Shape})
	ref := tensor.New(outShape)
	l.ForwardF32([]*tensor.Tensor{in}, ref, 0, l.OutC)
	qin := tensor.Quantize(in, l.QI.In)
	qout := tensor.NewQ(outShape, l.QI.Out)
	l.ForwardQ([]*tensor.QTensor{qin}, qout, 0, l.OutC)
	deq := tensor.Dequantize(qout)
	// Input and weight quantization noise propagate through the K taps;
	// allow a few output quantization steps.
	tol := float64(l.QI.Out.Scale) * 6
	if d := deq.MaxAbsDiff(ref); d > tol {
		t.Fatalf("quantized output error %v exceeds %v", d, tol)
	}
}

func TestConvQViaF16CloseToQ(t *testing.T) {
	// Paper §4: the CPU (QUInt8) and GPU (F16) compute slightly different
	// results from identical quantized inputs; both must stay near the F32
	// reference. Verify the two quantized pipelines agree within a step or
	// two of each other.
	l, in := newTestConv(t, 3, 6, 3, 1, 1, 1, quant.ActNone)
	outShape, _ := l.OutShape([]tensor.Shape{in.Shape})
	qin := tensor.Quantize(in, l.QI.In)
	a := tensor.NewQ(outShape, l.QI.Out)
	b := tensor.NewQ(outShape, l.QI.Out)
	l.ForwardQ([]*tensor.QTensor{qin}, a, 0, l.OutC)
	l.ForwardQViaF16([]*tensor.QTensor{qin}, b, 0, l.OutC)
	for i := range a.Data {
		d := int(a.Data[i]) - int(b.Data[i])
		if d < -2 || d > 2 {
			t.Fatalf("elem %d: CPU %d vs GPU %d differ by more than 2 steps", i, a.Data[i], b.Data[i])
		}
	}
}

func TestConvF16CloseToF32(t *testing.T) {
	l, in := newTestConv(t, 3, 6, 3, 1, 1, 1, quant.ActReLU)
	outShape, _ := l.OutShape([]tensor.Shape{in.Shape})
	ref := tensor.New(outShape)
	l.ForwardF32([]*tensor.Tensor{in}, ref, 0, l.OutC)
	hin := tensor.ToHalf(in)
	hout := tensor.NewH(outShape)
	l.ForwardF16([]*tensor.HTensor{hin}, hout, 0, l.OutC, false)
	got := tensor.HalfToFloat(hout)
	if d := got.MaxAbsDiff(ref); d > 0.02 {
		t.Fatalf("F16 error vs F32: %v", d)
	}
}

func TestDepthwiseConv(t *testing.T) {
	l, in := newTestConv(t, 6, 6, 3, 1, 1, 6, quant.ActNone)
	if l.Kind() != OpDepthwise {
		t.Fatal("groups==InC should classify as depthwise")
	}
	outShape, _ := l.OutShape([]tensor.Shape{in.Shape})
	out := tensor.New(outShape)
	l.ForwardF32([]*tensor.Tensor{in}, out, 0, l.OutC)
	// Independent check for one output element: channel 2, position (4,4).
	var want float32
	for kh := 0; kh < 3; kh++ {
		for kw := 0; kw < 3; kw++ {
			want += l.W.At(2, 0, kh, kw) * in.At(0, 2, 3+kh, 3+kw)
		}
	}
	want += l.Bias[2]
	if got := out.At(0, 2, 4, 4); math.Abs(float64(got-want)) > 1e-4 {
		t.Fatalf("depthwise elem: got %v want %v", got, want)
	}
	// Split-merge exactness for grouped path too.
	a := tensor.New(outShape)
	b := tensor.New(outShape)
	l.ForwardF32([]*tensor.Tensor{in}, a, 0, 2)
	l.ForwardF32([]*tensor.Tensor{in}, b, 2, 6)
	merged := tensor.New(outShape)
	merged.CopyChannels(a, 0, 2)
	merged.CopyChannels(b, 2, 6)
	if merged.MaxAbsDiff(out) != 0 {
		t.Fatal("depthwise split-merge differs")
	}
}

func TestGroupedConvMatchesTwoHalves(t *testing.T) {
	// A 2-group conv must equal two independent convs on channel halves.
	l, in := newTestConv(t, 4, 6, 3, 1, 1, 2, quant.ActNone)
	outShape, _ := l.OutShape([]tensor.Shape{in.Shape})
	out := tensor.New(outShape)
	l.ForwardF32([]*tensor.Tensor{in}, out, 0, l.OutC)
	// Build the group-0 sub-conv: input channels [0,2), output channels [0,3).
	sub := &Conv2D{
		LayerName: "g0", InC: 2, OutC: 3, KH: 3, KW: 3,
		StrideH: 1, StrideW: 1, PadH: 1, PadW: 1, Groups: 1,
		W:    tensor.NewFrom(tensor.Shape{N: 3, C: 2, H: 3, W: 3}, l.W.Data[:3*2*9]),
		Bias: l.Bias[:3],
	}
	subIn := tensor.New(tensor.Shape{N: 1, C: 2, H: 9, W: 9})
	copy(subIn.Data, in.Data[:2*81])
	subOutShape, _ := sub.OutShape([]tensor.Shape{subIn.Shape})
	subOut := tensor.New(subOutShape)
	sub.ForwardF32([]*tensor.Tensor{subIn}, subOut, 0, 3)
	for c := 0; c < 3; c++ {
		for y := 0; y < outShape.H; y++ {
			for x := 0; x < outShape.W; x++ {
				if d := math.Abs(float64(out.At(0, c, y, x) - subOut.At(0, c, y, x))); d > 1e-4 {
					t.Fatalf("group conv mismatch at c=%d (%v vs %v)", c, out.At(0, c, y, x), subOut.At(0, c, y, x))
				}
			}
		}
	}
}

func TestConvQDepthwiseSplitBitExact(t *testing.T) {
	l, in := newTestConv(t, 4, 4, 3, 1, 1, 4, quant.ActReLU)
	outShape, _ := l.OutShape([]tensor.Shape{in.Shape})
	qin := tensor.Quantize(in, l.QI.In)
	full := tensor.NewQ(outShape, l.QI.Out)
	l.ForwardQ([]*tensor.QTensor{qin}, full, 0, 4)
	a := tensor.NewQ(outShape, l.QI.Out)
	b := tensor.NewQ(outShape, l.QI.Out)
	l.ForwardQ([]*tensor.QTensor{qin}, a, 0, 1)
	l.ForwardQ([]*tensor.QTensor{qin}, b, 1, 4)
	merged := tensor.NewQ(outShape, l.QI.Out)
	merged.CopyChannels(a, 0, 1)
	merged.CopyChannels(b, 1, 4)
	for i := range merged.Data {
		if merged.Data[i] != full.Data[i] {
			t.Fatalf("depthwise Q split-merge differs at %d", i)
		}
	}
}

func TestConvShapeErrors(t *testing.T) {
	l := &Conv2D{LayerName: "c", InC: 3, OutC: 8, KH: 3, KW: 3, StrideH: 1, StrideW: 1}
	if _, err := l.OutShape(nil); err == nil {
		t.Error("no inputs must error")
	}
	if _, err := l.OutShape([]tensor.Shape{{N: 1, C: 4, H: 8, W: 8}}); err == nil {
		t.Error("channel mismatch must error")
	}
	if _, err := l.OutShape([]tensor.Shape{{N: 1, C: 3, H: 2, W: 2}}); err == nil {
		t.Error("too-small input must error")
	}
	bad := &Conv2D{LayerName: "b", InC: 3, OutC: 8, KH: 1, KW: 1, StrideH: 1, StrideW: 1, Groups: 2}
	if _, err := bad.OutShape([]tensor.Shape{{N: 1, C: 3, H: 4, W: 4}}); err == nil {
		t.Error("indivisible groups must error")
	}
}

func TestConvCostAccounting(t *testing.T) {
	// VGG-16 conv1_1: 3→64 channels, 3×3, 224², stride 1, pad 1.
	l := &Conv2D{LayerName: "conv1_1", InC: 3, OutC: 64, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	in := tensor.Shape{N: 1, C: 3, H: 224, W: 224}
	c := l.Cost([]tensor.Shape{in})
	wantMACs := int64(64) * 224 * 224 * 3 * 3 * 3 // ≈86.7M
	if c.MACs != wantMACs {
		t.Fatalf("MACs = %d, want %d", c.MACs, wantMACs)
	}
	if c.WElems != 64*3*3*3 {
		t.Fatalf("WElems = %d", c.WElems)
	}
	if c.OutElems != 64*224*224 {
		t.Fatalf("OutElems = %d", c.OutElems)
	}
	// Scaling by p=0.5 halves compute and weights, keeps input reads.
	h := c.Scale(0.5)
	if h.MACs != wantMACs/2 || h.InElems != c.InElems || h.WElems != c.WElems/2 {
		t.Fatal("Cost.Scale semantics")
	}
}

func TestConvPropertySplitMergeQ(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	f := func(inCs, outCs, ks, splitS uint8) bool {
		inC := int(inCs%4) + 1
		outC := int(outCs%8) + 2
		k := []int{1, 3}[int(ks)%2]
		split := int(splitS)%(outC-1) + 1
		in := tensor.New(tensor.Shape{N: 1, C: inC, H: 6, W: 6})
		in.FillRandom(uint64(rng.Int63()), 1)
		w := tensor.New(tensor.Shape{N: outC, C: inC, H: k, W: k})
		w.FillRandom(uint64(rng.Int63()), 0.6)
		l := &Conv2D{LayerName: "p", InC: inC, OutC: outC, KH: k, KW: k, StrideH: 1, StrideW: 1, PadH: k / 2, PadW: k / 2, W: w}
		outShape, err := l.OutShape([]tensor.Shape{in.Shape})
		if err != nil {
			return false
		}
		ref := tensor.New(outShape)
		l.ForwardF32([]*tensor.Tensor{in}, ref, 0, outC)
		inMin, inMax := in.Range()
		oMin, oMax := ref.Range()
		l.SetQuant(quant.ChooseParams(inMin, inMax), quant.ChooseParams(oMin, oMax))
		qin := tensor.Quantize(in, l.QI.In)
		full := tensor.NewQ(outShape, l.QI.Out)
		l.ForwardQ([]*tensor.QTensor{qin}, full, 0, outC)
		a := tensor.NewQ(outShape, l.QI.Out)
		b := tensor.NewQ(outShape, l.QI.Out)
		l.ForwardQ([]*tensor.QTensor{qin}, a, 0, split)
		l.ForwardQ([]*tensor.QTensor{qin}, b, split, outC)
		merged := tensor.NewQ(outShape, l.QI.Out)
		merged.CopyChannels(a, 0, split)
		merged.CopyChannels(b, split, outC)
		for i := range merged.Data {
			if merged.Data[i] != full.Data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestConvPanicsOnBadRange(t *testing.T) {
	l, in := newTestConv(t, 2, 4, 3, 1, 1, 1, quant.ActNone)
	outShape, _ := l.OutShape([]tensor.Shape{in.Shape})
	out := tensor.New(outShape)
	defer func() {
		if recover() == nil {
			t.Error("out-of-bounds channel range must panic")
		}
	}()
	l.ForwardF32([]*tensor.Tensor{in}, out, 2, 9)
}

func TestConvSpecOnlyPanicsOnForward(t *testing.T) {
	l := &Conv2D{LayerName: "spec", InC: 2, OutC: 2, KH: 1, KW: 1, StrideH: 1, StrideW: 1}
	in := tensor.New(tensor.Shape{N: 1, C: 2, H: 2, W: 2})
	out := tensor.New(tensor.Shape{N: 1, C: 2, H: 2, W: 2})
	defer func() {
		if recover() == nil {
			t.Error("spec-only forward must panic")
		}
	}()
	l.ForwardF16([]*tensor.HTensor{tensor.ToHalf(in)}, tensor.NewH(out.Shape), 0, 2, false)
}
