package nn

import "mulayer/internal/tensor"

// Concat joins its inputs along the channel dimension, the fan-in of
// Inception and Fire modules (Figure 11). It performs no arithmetic —
// only data movement — so μLayer leaves it on a single processor
// (SplitChannels reports 0); under branch distribution the concat is the
// join node where the processors synchronize.
type Concat struct {
	LayerName string
	QI        QuantInfo
}

// Name implements Layer.
func (l *Concat) Name() string { return l.LayerName }

// Kind implements Layer.
func (l *Concat) Kind() OpKind { return OpConcat }

// Quant implements Layer.
func (l *Concat) Quant() *QuantInfo { return &l.QI }

// OutShape implements Layer.
func (l *Concat) OutShape(ins []tensor.Shape) (tensor.Shape, error) {
	if len(ins) < 1 {
		return tensor.Shape{}, shapeErr(l.LayerName, "want at least 1 input")
	}
	out := ins[0]
	for _, in := range ins[1:] {
		if in.N != out.N || in.H != out.H || in.W != out.W {
			return tensor.Shape{}, shapeErr(l.LayerName, "spatial/batch mismatch: %v vs %v", ins[0], in)
		}
		out.C += in.C
	}
	return out, nil
}

// Cost implements Layer: pure data movement.
func (l *Concat) Cost(ins []tensor.Shape) Cost {
	var e int64
	for _, in := range ins {
		e += int64(in.Elems())
	}
	return Cost{InElems: e, OutElems: e}
}

// SplitChannels implements Layer: never split.
func (l *Concat) SplitChannels(ins []tensor.Shape) int { return 0 }

// ForwardF32 stacks the inputs along C.
func (l *Concat) ForwardF32(ins []*tensor.Tensor, out *tensor.Tensor, c0, c1 int) {
	off := 0
	for _, in := range ins {
		for n := 0; n < out.Shape.N; n++ {
			slo, shi := in.Shape.ChannelSpan(n, 0, in.Shape.C)
			dlo, _ := out.Shape.ChannelSpan(n, off, off+in.Shape.C)
			copy(out.Data[dlo:dlo+(shi-slo)], in.Data[slo:shi])
		}
		off += in.Shape.C
	}
}

// ForwardQ stacks quantized inputs. Inputs whose parameters match the
// output are copied byte-for-byte; mismatched inputs are requantized
// elementwise onto the output grid (the runtime analogue of TFLite's
// concat rescaling).
func (l *Concat) ForwardQ(ins []*tensor.QTensor, out *tensor.QTensor, c0, c1 int) {
	off := 0
	for _, in := range ins {
		same := in.Params == out.Params
		for n := 0; n < out.Shape.N; n++ {
			slo, shi := in.Shape.ChannelSpan(n, 0, in.Shape.C)
			dlo, _ := out.Shape.ChannelSpan(n, off, off+in.Shape.C)
			if same {
				copy(out.Data[dlo:dlo+(shi-slo)], in.Data[slo:shi])
				continue
			}
			for i := slo; i < shi; i++ {
				out.Data[dlo+i-slo] = out.Params.Quantize(in.Params.Dequantize(in.Data[i]))
			}
		}
		off += in.Shape.C
	}
}

// ForwardF16 stacks half-precision inputs.
func (l *Concat) ForwardF16(ins []*tensor.HTensor, out *tensor.HTensor, c0, c1 int) {
	off := 0
	for _, in := range ins {
		for n := 0; n < out.Shape.N; n++ {
			slo, shi := in.Shape.ChannelSpan(n, 0, in.Shape.C)
			dlo, _ := out.Shape.ChannelSpan(n, off, off+in.Shape.C)
			copy(out.Data[dlo:dlo+(shi-slo)], in.Data[slo:shi])
		}
		off += in.Shape.C
	}
}
