package nn

import (
	"math"

	"mulayer/internal/f16"
	"mulayer/internal/tensor"
)

// LRN is AlexNet-style local response normalization across channels:
//
//	out[c] = in[c] / (K + Alpha/Size · Σ_{c'∈window(c)} in[c']²)^Beta
//
// where the window spans Size channels centered on c. The layer is
// splittable over output channels: computing channel c reads neighboring
// input channels, but the input is shared between processors under the
// channel-wise distribution, so reads outside the assigned range are free
// of conflicts.
type LRN struct {
	LayerName string
	Size      int // cross-channel window (odd)
	K         float32
	Alpha     float32
	Beta      float32
	QI        QuantInfo
}

// Name implements Layer.
func (l *LRN) Name() string { return l.LayerName }

// Kind implements Layer.
func (l *LRN) Kind() OpKind { return OpLRN }

// Quant implements Layer.
func (l *LRN) Quant() *QuantInfo { return &l.QI }

// OutShape implements Layer.
func (l *LRN) OutShape(ins []tensor.Shape) (tensor.Shape, error) {
	if len(ins) != 1 {
		return tensor.Shape{}, shapeErr(l.LayerName, "want 1 input, got %d", len(ins))
	}
	if l.Size <= 0 || l.Size%2 == 0 {
		return tensor.Shape{}, shapeErr(l.LayerName, "window size %d must be odd and positive", l.Size)
	}
	return ins[0], nil
}

// Cost implements Layer: one window sum plus a power per element.
func (l *LRN) Cost(ins []tensor.Shape) Cost {
	if len(ins) != 1 {
		return Cost{}
	}
	e := int64(ins[0].Elems())
	return Cost{MACs: e * int64(l.Size+4), InElems: e, OutElems: e}
}

// SplitChannels implements Layer.
func (l *LRN) SplitChannels(ins []tensor.Shape) int {
	if len(ins) != 1 {
		return 0
	}
	return ins[0].C
}

// normalize computes the LRN output for one position given a channel
// reader.
func (l *LRN) normalize(at func(c int) float32, c, maxC int) float32 {
	half := l.Size / 2
	var sum float64
	for cc := c - half; cc <= c+half; cc++ {
		if cc < 0 || cc >= maxC {
			continue
		}
		v := float64(at(cc))
		sum += v * v
	}
	denom := math.Pow(float64(l.K)+float64(l.Alpha)/float64(l.Size)*sum, float64(l.Beta))
	return float32(float64(at(c)) / denom)
}

// ForwardF32 normalizes channels [c0,c1).
func (l *LRN) ForwardF32(ins []*tensor.Tensor, out *tensor.Tensor, c0, c1 int) {
	in := ins[0]
	checkRange(c0, c1, in.Shape.C, l.LayerName)
	s := in.Shape
	for n := 0; n < s.N; n++ {
		for y := 0; y < s.H; y++ {
			for x := 0; x < s.W; x++ {
				at := func(c int) float32 { return in.At(n, c, y, x) }
				for c := c0; c < c1; c++ {
					out.Set(n, c, y, x, l.normalize(at, c, s.C))
				}
			}
		}
	}
}

// ForwardQ dequantizes the window, normalizes in float, and requantizes —
// LRN has no efficient pure-integer form and contributes negligibly to
// total work (AlexNet only).
func (l *LRN) ForwardQ(ins []*tensor.QTensor, out *tensor.QTensor, c0, c1 int) {
	in := ins[0]
	checkRange(c0, c1, in.Shape.C, l.LayerName)
	s := in.Shape
	for n := 0; n < s.N; n++ {
		for y := 0; y < s.H; y++ {
			for x := 0; x < s.W; x++ {
				at := func(c int) float32 { return in.Params.Dequantize(in.At(n, c, y, x)) }
				for c := c0; c < c1; c++ {
					out.Set(n, c, y, x, out.Params.Quantize(l.normalize(at, c, s.C)))
				}
			}
		}
	}
}

// ForwardF16 normalizes in float32 from half inputs and rounds back.
func (l *LRN) ForwardF16(ins []*tensor.HTensor, out *tensor.HTensor, c0, c1 int) {
	in := ins[0]
	checkRange(c0, c1, in.Shape.C, l.LayerName)
	s := in.Shape
	for n := 0; n < s.N; n++ {
		for y := 0; y < s.H; y++ {
			for x := 0; x < s.W; x++ {
				at := func(c int) float32 { return in.At(n, c, y, x).Float32() }
				for c := c0; c < c1; c++ {
					out.Set(n, c, y, x, f16.FromFloat32(l.normalize(at, c, s.C)))
				}
			}
		}
	}
}
