package nn

import (
	"math"
	"testing"

	"mulayer/internal/quant"
	"mulayer/internal/tensor"
)

func TestFCSplitMergeAllPipelines(t *testing.T) {
	in := tensor.New(tensor.Shape{N: 2, C: 3, H: 2, W: 2})
	in.FillRandom(5, 1)
	w := tensor.New(tensor.Shape{N: 10, C: 12, H: 1, W: 1})
	w.FillRandom(6, 0.4)
	bias := make([]float32, 10)
	for i := range bias {
		bias[i] = float32(i) * 0.05
	}
	l := &FullyConnected{LayerName: "fc", InFeatures: 12, OutC: 10, W: w, Bias: bias, Act: quant.ActReLU}
	outShape, err := l.OutShape([]tensor.Shape{in.Shape})
	if err != nil {
		t.Fatal(err)
	}
	if outShape != (tensor.Shape{N: 2, C: 10, H: 1, W: 1}) {
		t.Fatalf("out shape %v", outShape)
	}
	ref := tensor.New(outShape)
	l.ForwardF32([]*tensor.Tensor{in}, ref, 0, 10)
	inMin, inMax := in.Range()
	oMin, oMax := ref.Range()
	l.SetQuant(quant.ChooseParams(inMin, inMax), quant.ChooseParams(oMin, oMax))

	// F32 split-merge.
	a, b := tensor.New(outShape), tensor.New(outShape)
	l.ForwardF32([]*tensor.Tensor{in}, a, 0, 4)
	l.ForwardF32([]*tensor.Tensor{in}, b, 4, 10)
	m := tensor.New(outShape)
	m.CopyChannels(a, 0, 4)
	m.CopyChannels(b, 4, 10)
	if m.MaxAbsDiff(ref) != 0 {
		t.Fatal("F32 FC split-merge differs")
	}

	// Quantized split-merge, bit-exact.
	qin := tensor.Quantize(in, l.QI.In)
	qfull := tensor.NewQ(outShape, l.QI.Out)
	l.ForwardQ([]*tensor.QTensor{qin}, qfull, 0, 10)
	qa, qb := tensor.NewQ(outShape, l.QI.Out), tensor.NewQ(outShape, l.QI.Out)
	l.ForwardQ([]*tensor.QTensor{qin}, qa, 0, 7)
	l.ForwardQ([]*tensor.QTensor{qin}, qb, 7, 10)
	qm := tensor.NewQ(outShape, l.QI.Out)
	qm.CopyChannels(qa, 0, 7)
	qm.CopyChannels(qb, 7, 10)
	for i := range qm.Data {
		if qm.Data[i] != qfull.Data[i] {
			t.Fatal("Q FC split-merge differs")
		}
	}

	// Quantized result near F32.
	deq := tensor.Dequantize(qfull)
	if d := deq.MaxAbsDiff(ref); d > float64(l.QI.Out.Scale)*6 {
		t.Fatalf("FC quantized error %v", d)
	}

	// GPU path near CPU path.
	qg := tensor.NewQ(outShape, l.QI.Out)
	l.ForwardQViaF16([]*tensor.QTensor{qin}, qg, 0, 10)
	for i := range qg.Data {
		d := int(qg.Data[i]) - int(qfull.Data[i])
		if d < -2 || d > 2 {
			t.Fatalf("FC QViaF16 vs Q differ by %d at %d", d, i)
		}
	}

	// F16 path near F32.
	hin := tensor.ToHalf(in)
	hout := tensor.NewH(outShape)
	l.ForwardF16([]*tensor.HTensor{hin}, hout, 0, 10, false)
	if d := tensor.HalfToFloat(hout).MaxAbsDiff(ref); d > 0.02 {
		t.Fatalf("FC F16 error %v", d)
	}
}

func TestFCShapeError(t *testing.T) {
	l := &FullyConnected{LayerName: "fc", InFeatures: 10, OutC: 4}
	if _, err := l.OutShape([]tensor.Shape{{N: 1, C: 3, H: 2, W: 2}}); err == nil {
		t.Error("feature mismatch must error")
	}
}

func TestMaxPoolF32(t *testing.T) {
	in := tensor.NewFrom(tensor.Shape{N: 1, C: 1, H: 4, W: 4}, []float32{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	})
	l := &Pool{LayerName: "mp", Max: true, KH: 2, KW: 2, StrideH: 2, StrideW: 2}
	outShape, err := l.OutShape([]tensor.Shape{in.Shape})
	if err != nil {
		t.Fatal(err)
	}
	out := tensor.New(outShape)
	l.ForwardF32([]*tensor.Tensor{in}, out, 0, 1)
	want := []float32{6, 8, 14, 16}
	for i, w := range want {
		if out.Data[i] != w {
			t.Fatalf("maxpool[%d] = %v want %v", i, out.Data[i], w)
		}
	}
}

func TestAvgPoolExcludePad(t *testing.T) {
	in := tensor.NewFrom(tensor.Shape{N: 1, C: 1, H: 2, W: 2}, []float32{2, 4, 6, 8})
	l := &Pool{LayerName: "ap", KH: 2, KW: 2, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	outShape, _ := l.OutShape([]tensor.Shape{in.Shape})
	if outShape.H != 3 || outShape.W != 3 {
		t.Fatalf("out %v", outShape)
	}
	out := tensor.New(outShape)
	l.ForwardF32([]*tensor.Tensor{in}, out, 0, 1)
	// Corner output averages the single valid tap.
	if out.At(0, 0, 0, 0) != 2 {
		t.Fatalf("corner = %v", out.At(0, 0, 0, 0))
	}
	// Center averages all four.
	if out.At(0, 0, 1, 1) != 5 {
		t.Fatalf("center = %v", out.At(0, 0, 1, 1))
	}
}

func TestGlobalAvgPool(t *testing.T) {
	in := tensor.New(tensor.Shape{N: 1, C: 3, H: 4, W: 4})
	for c := 0; c < 3; c++ {
		for i := 0; i < 16; i++ {
			in.Data[c*16+i] = float32(c + 1)
		}
	}
	l := &Pool{LayerName: "gap", Global: true}
	outShape, _ := l.OutShape([]tensor.Shape{in.Shape})
	if outShape.H != 1 || outShape.W != 1 || outShape.C != 3 {
		t.Fatalf("out %v", outShape)
	}
	out := tensor.New(outShape)
	l.ForwardF32([]*tensor.Tensor{in}, out, 0, 3)
	for c := 0; c < 3; c++ {
		if out.Data[c] != float32(c+1) {
			t.Fatalf("gap[%d] = %v", c, out.Data[c])
		}
	}
}

func TestMaxPoolQExactUnderAffineMap(t *testing.T) {
	// Max commutes with the monotone affine dequantization, so quantized
	// max pooling must match quantize(maxpool(dequantize)) exactly.
	in := tensor.New(tensor.Shape{N: 1, C: 2, H: 6, W: 6})
	in.FillRandom(9, 2)
	p := quant.ChooseParams(-2, 2)
	qin := tensor.Quantize(in, p)
	l := &Pool{LayerName: "mp", Max: true, KH: 3, KW: 3, StrideH: 2, StrideW: 2}
	outShape, _ := l.OutShape([]tensor.Shape{qin.Shape})
	qout := tensor.NewQ(outShape, p)
	l.ForwardQ([]*tensor.QTensor{qin}, qout, 0, 2)
	fin := tensor.Dequantize(qin)
	fout := tensor.New(outShape)
	l.ForwardF32([]*tensor.Tensor{fin}, fout, 0, 2)
	for i := range qout.Data {
		if got, want := qout.Data[i], p.Quantize(fout.Data[i]); got != want {
			t.Fatalf("elem %d: %d vs %d", i, got, want)
		}
	}
}

func TestPoolSplitMerge(t *testing.T) {
	in := tensor.New(tensor.Shape{N: 1, C: 5, H: 8, W: 8})
	in.FillRandom(10, 1)
	l := &Pool{LayerName: "mp", Max: true, KH: 2, KW: 2, StrideH: 2, StrideW: 2}
	outShape, _ := l.OutShape([]tensor.Shape{in.Shape})
	full := tensor.New(outShape)
	l.ForwardF32([]*tensor.Tensor{in}, full, 0, 5)
	a, b := tensor.New(outShape), tensor.New(outShape)
	l.ForwardF32([]*tensor.Tensor{in}, a, 0, 2)
	l.ForwardF32([]*tensor.Tensor{in}, b, 2, 5)
	m := tensor.New(outShape)
	m.CopyChannels(a, 0, 2)
	m.CopyChannels(b, 2, 5)
	if m.MaxAbsDiff(full) != 0 {
		t.Fatal("pool split-merge differs")
	}
	if l.SplitChannels([]tensor.Shape{in.Shape}) != 5 {
		t.Fatal("pool splits over its channel count")
	}
}

func TestPoolF16(t *testing.T) {
	in := tensor.New(tensor.Shape{N: 1, C: 2, H: 4, W: 4})
	in.FillRandom(12, 1)
	l := &Pool{LayerName: "ap", KH: 2, KW: 2, StrideH: 2, StrideW: 2}
	outShape, _ := l.OutShape([]tensor.Shape{in.Shape})
	fout := tensor.New(outShape)
	l.ForwardF32([]*tensor.Tensor{in}, fout, 0, 2)
	hout := tensor.NewH(outShape)
	l.ForwardF16([]*tensor.HTensor{tensor.ToHalf(in)}, hout, 0, 2)
	if d := tensor.HalfToFloat(hout).MaxAbsDiff(fout); d > 0.005 {
		t.Fatalf("F16 pooling error %v", d)
	}
}

func TestReLUAllPipelines(t *testing.T) {
	in := tensor.NewFrom(tensor.Shape{N: 1, C: 2, H: 1, W: 2}, []float32{-1, 2, -3, 4})
	l := &ReLU{LayerName: "relu"}
	outShape, _ := l.OutShape([]tensor.Shape{in.Shape})
	out := tensor.New(outShape)
	l.ForwardF32([]*tensor.Tensor{in}, out, 0, 2)
	want := []float32{0, 2, 0, 4}
	for i, w := range want {
		if out.Data[i] != w {
			t.Fatalf("relu f32 [%d] = %v", i, out.Data[i])
		}
	}
	p := quant.ChooseParams(-3, 4)
	qin := tensor.Quantize(in, p)
	qout := tensor.NewQ(outShape, p)
	l.ForwardQ([]*tensor.QTensor{qin}, qout, 0, 2)
	for i := range qout.Data {
		got := p.Dequantize(qout.Data[i])
		if math.Abs(float64(got-want[i])) > float64(p.Scale) {
			t.Fatalf("relu q [%d] = %v want %v", i, got, want[i])
		}
	}
	hout := tensor.NewH(outShape)
	l.ForwardF16([]*tensor.HTensor{tensor.ToHalf(in)}, hout, 0, 2)
	for i, w := range want {
		if hout.Data[i].Float32() != w {
			t.Fatalf("relu f16 [%d] = %v", i, hout.Data[i].Float32())
		}
	}
}

func TestSoftmaxSumsToOne(t *testing.T) {
	in := tensor.New(tensor.Shape{N: 2, C: 7, H: 1, W: 1})
	in.FillRandom(13, 3)
	l := &Softmax{LayerName: "sm"}
	outShape, _ := l.OutShape([]tensor.Shape{in.Shape})
	out := tensor.New(outShape)
	l.ForwardF32([]*tensor.Tensor{in}, out, 0, 7)
	for n := 0; n < 2; n++ {
		var s float64
		maxIn, maxOut := 0, 0
		for c := 0; c < 7; c++ {
			s += float64(out.At(n, c, 0, 0))
			if in.At(n, c, 0, 0) > in.At(n, maxIn, 0, 0) {
				maxIn = c
			}
			if out.At(n, c, 0, 0) > out.At(n, maxOut, 0, 0) {
				maxOut = c
			}
		}
		if math.Abs(s-1) > 1e-5 {
			t.Fatalf("softmax sum %v", s)
		}
		if maxIn != maxOut {
			t.Fatal("softmax must preserve the argmax")
		}
	}
	if l.SplitChannels([]tensor.Shape{in.Shape}) != 0 {
		t.Fatal("softmax must not be split")
	}
}

func TestSoftmaxQPreservesArgmax(t *testing.T) {
	in := tensor.New(tensor.Shape{N: 1, C: 5, H: 1, W: 1})
	copy(in.Data, []float32{0.1, 2.5, -1, 0.9, 2.0})
	pin := quant.ChooseParams(-1, 2.5)
	pout := quant.ChooseParams(0, 1)
	qin := tensor.Quantize(in, pin)
	l := &Softmax{LayerName: "sm"}
	qout := tensor.NewQ(in.Shape, pout)
	l.ForwardQ([]*tensor.QTensor{qin}, qout, 0, 5)
	best := 0
	for c := 1; c < 5; c++ {
		if qout.Data[c] > qout.Data[best] {
			best = c
		}
	}
	if best != 1 {
		t.Fatalf("argmax = %d, want 1", best)
	}
}

func TestLRNFormula(t *testing.T) {
	in := tensor.New(tensor.Shape{N: 1, C: 5, H: 1, W: 1})
	copy(in.Data, []float32{1, 2, 3, 4, 5})
	l := &LRN{LayerName: "lrn", Size: 5, K: 2, Alpha: 1e-4, Beta: 0.75}
	outShape, _ := l.OutShape([]tensor.Shape{in.Shape})
	out := tensor.New(outShape)
	l.ForwardF32([]*tensor.Tensor{in}, out, 0, 5)
	// Channel 2 window covers all 5 channels.
	sum := 1.0 + 4 + 9 + 16 + 25
	want := 3.0 / math.Pow(2+1e-4/5*sum, 0.75)
	if d := math.Abs(float64(out.At(0, 2, 0, 0)) - want); d > 1e-5 {
		t.Fatalf("lrn = %v want %v", out.At(0, 2, 0, 0), want)
	}
	// Edge channel window is truncated.
	sum0 := 1.0 + 4 + 9 // channels 0..2
	want0 := 1.0 / math.Pow(2+1e-4/5*sum0, 0.75)
	if d := math.Abs(float64(out.At(0, 0, 0, 0)) - want0); d > 1e-5 {
		t.Fatalf("lrn edge = %v want %v", out.At(0, 0, 0, 0), want0)
	}
}

func TestLRNSplitMerge(t *testing.T) {
	in := tensor.New(tensor.Shape{N: 1, C: 8, H: 3, W: 3})
	in.FillRandom(14, 1)
	l := &LRN{LayerName: "lrn", Size: 5, K: 2, Alpha: 1e-4, Beta: 0.75}
	outShape, _ := l.OutShape([]tensor.Shape{in.Shape})
	full := tensor.New(outShape)
	l.ForwardF32([]*tensor.Tensor{in}, full, 0, 8)
	a, b := tensor.New(outShape), tensor.New(outShape)
	l.ForwardF32([]*tensor.Tensor{in}, a, 0, 3)
	l.ForwardF32([]*tensor.Tensor{in}, b, 3, 8)
	m := tensor.New(outShape)
	m.CopyChannels(a, 0, 3)
	m.CopyChannels(b, 3, 8)
	if m.MaxAbsDiff(full) != 0 {
		t.Fatal("LRN split-merge differs (cross-channel reads must come from the shared input)")
	}
}

func TestLRNRejectsEvenWindow(t *testing.T) {
	l := &LRN{LayerName: "lrn", Size: 4}
	if _, err := l.OutShape([]tensor.Shape{{N: 1, C: 4, H: 1, W: 1}}); err == nil {
		t.Error("even window must error")
	}
}

func TestConcatF32AndShapes(t *testing.T) {
	a := tensor.New(tensor.Shape{N: 1, C: 2, H: 2, W: 2})
	b := tensor.New(tensor.Shape{N: 1, C: 3, H: 2, W: 2})
	a.Fill(1)
	b.Fill(2)
	l := &Concat{LayerName: "cat"}
	outShape, err := l.OutShape([]tensor.Shape{a.Shape, b.Shape})
	if err != nil {
		t.Fatal(err)
	}
	if outShape.C != 5 {
		t.Fatalf("out C = %d", outShape.C)
	}
	out := tensor.New(outShape)
	l.ForwardF32([]*tensor.Tensor{a, b}, out, 0, 5)
	if out.At(0, 1, 0, 0) != 1 || out.At(0, 2, 0, 0) != 2 || out.At(0, 4, 1, 1) != 2 {
		t.Fatal("concat ordering")
	}
	if _, err := l.OutShape([]tensor.Shape{a.Shape, {N: 1, C: 1, H: 3, W: 2}}); err == nil {
		t.Error("spatial mismatch must error")
	}
}

func TestConcatQRequantizes(t *testing.T) {
	pa := quant.ChooseParams(-1, 1)
	pb := quant.ChooseParams(-4, 4)
	pout := quant.ChooseParams(-4, 4)
	a := tensor.NewQ(tensor.Shape{N: 1, C: 1, H: 1, W: 2}, pa)
	b := tensor.NewQ(tensor.Shape{N: 1, C: 1, H: 1, W: 2}, pb)
	a.Data[0], a.Data[1] = pa.Quantize(0.5), pa.Quantize(-0.5)
	b.Data[0], b.Data[1] = pb.Quantize(3), pb.Quantize(-3)
	l := &Concat{LayerName: "cat"}
	out := tensor.NewQ(tensor.Shape{N: 1, C: 2, H: 1, W: 2}, pout)
	l.ForwardQ([]*tensor.QTensor{a, b}, out, 0, 2)
	wants := []float32{0.5, -0.5, 3, -3}
	for i, w := range wants {
		got := pout.Dequantize(out.Data[i])
		if math.Abs(float64(got-w)) > float64(pout.Scale) {
			t.Fatalf("elem %d: %v want %v", i, got, w)
		}
	}
}

func TestOpKindStrings(t *testing.T) {
	kinds := []OpKind{OpInput, OpConv, OpDepthwise, OpFC, OpMaxPool, OpAvgPool, OpReLU, OpLRN, OpConcat, OpSoftmax}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Fatalf("kind %d has bad or duplicate string %q", int(k), s)
		}
		seen[s] = true
	}
}

func TestInputLayer(t *testing.T) {
	l := &Input{LayerName: "input", Shape: tensor.Shape{N: 1, C: 3, H: 8, W: 8}}
	s, err := l.OutShape(nil)
	if err != nil || s != l.Shape {
		t.Fatal("input shape")
	}
	if _, err := l.OutShape([]tensor.Shape{s}); err == nil {
		t.Error("input with inputs must error")
	}
	if l.Cost(nil) != (Cost{}) || l.SplitChannels(nil) != 0 || l.Quant() != nil {
		t.Error("input layer must be inert")
	}
}

func TestCostAdd(t *testing.T) {
	a := Cost{MACs: 1, InElems: 2, WElems: 3, OutElems: 4}
	b := Cost{MACs: 10, InElems: 20, WElems: 30, OutElems: 40}
	got := a.Add(b)
	if got != (Cost{MACs: 11, InElems: 22, WElems: 33, OutElems: 44}) {
		t.Fatalf("Add = %+v", got)
	}
}
