package nn

import (
	"mulayer/internal/f16"
	"mulayer/internal/quant"
	"mulayer/internal/tensor"
)

// Add is the elementwise residual-sum layer of ResNet-style networks
// (He et al., one of the Figure 10 families). It sums two equal-shape
// inputs and applies an optional fused activation. Like pooling it is
// splittable over channels: each processor sums a disjoint channel range.
type Add struct {
	LayerName string
	Act       quant.Activation
	QI        QuantInfo
}

// Name implements Layer.
func (l *Add) Name() string { return l.LayerName }

// Kind implements Layer.
func (l *Add) Kind() OpKind { return OpAdd }

// Quant implements Layer.
func (l *Add) Quant() *QuantInfo { return &l.QI }

// OutShape implements Layer.
func (l *Add) OutShape(ins []tensor.Shape) (tensor.Shape, error) {
	if len(ins) != 2 {
		return tensor.Shape{}, shapeErr(l.LayerName, "want 2 inputs, got %d", len(ins))
	}
	if ins[0] != ins[1] {
		return tensor.Shape{}, shapeErr(l.LayerName, "shape mismatch %v vs %v", ins[0], ins[1])
	}
	return ins[0], nil
}

// Cost implements Layer.
func (l *Add) Cost(ins []tensor.Shape) Cost {
	if len(ins) != 2 {
		return Cost{}
	}
	e := int64(ins[0].Elems())
	return Cost{MACs: e, InElems: 2 * e, OutElems: e}
}

// SplitChannels implements Layer.
func (l *Add) SplitChannels(ins []tensor.Shape) int {
	if len(ins) != 2 {
		return 0
	}
	return ins[0].C
}

// ForwardF32 sums channels [c0,c1).
func (l *Add) ForwardF32(ins []*tensor.Tensor, out *tensor.Tensor, c0, c1 int) {
	a, b := ins[0], ins[1]
	checkRange(c0, c1, a.Shape.C, l.LayerName)
	for n := 0; n < a.Shape.N; n++ {
		lo, hi := a.Shape.ChannelSpan(n, c0, c1)
		for i := lo; i < hi; i++ {
			out.Data[i] = l.Act.Apply(a.Data[i] + b.Data[i])
		}
	}
}

// ForwardQ sums on the quantized grids: each operand dequantizes with its
// own grid, the real sum requantizes onto the output grid (the standard
// integer-runtime treatment of residual adds — the two operands typically
// carry different scales).
func (l *Add) ForwardQ(ins []*tensor.QTensor, out *tensor.QTensor, c0, c1 int) {
	a, b := ins[0], ins[1]
	checkRange(c0, c1, a.Shape.C, l.LayerName)
	for n := 0; n < a.Shape.N; n++ {
		lo, hi := a.Shape.ChannelSpan(n, c0, c1)
		for i := lo; i < hi; i++ {
			v := a.Params.Dequantize(a.Data[i]) + b.Params.Dequantize(b.Data[i])
			out.Data[i] = out.Params.Quantize(l.Act.Apply(v))
		}
	}
}

// ForwardF16 sums in half precision.
func (l *Add) ForwardF16(ins []*tensor.HTensor, out *tensor.HTensor, c0, c1 int) {
	a, b := ins[0], ins[1]
	checkRange(c0, c1, a.Shape.C, l.LayerName)
	for n := 0; n < a.Shape.N; n++ {
		lo, hi := a.Shape.ChannelSpan(n, c0, c1)
		for i := lo; i < hi; i++ {
			s := f16.Add(a.Data[i], b.Data[i])
			out.Data[i] = f16.FromFloat32(l.Act.Apply(s.Float32()))
		}
	}
}
