package nn

import (
	"math"

	"mulayer/internal/f16"
	"mulayer/internal/gemm"
	"mulayer/internal/quant"
	"mulayer/internal/tensor"
)

// Conv2D is a 2-D convolutional layer (OIHW filters, NCHW activations)
// with optional grouping (Groups=InC gives a depthwise convolution) and a
// fused activation. A fully-connected layer is expressible as a 1×1
// convolution over a 1×1 spatial extent (§2.1), but the dedicated FC layer
// in fc.go is cheaper for flattened inputs.
//
// The layer carries float32 master weights plus caches for the other
// pipelines: QUInt8 weights and int32 bias for the CPU integer path, and
// two binary16 weight sets — one rounded from the F32 master (pure-F16
// execution) and one dequantized from the QUInt8 weights (the GPU path of
// processor-friendly quantization, which uploads filters as dequantized
// halves, §6).
type Conv2D struct {
	LayerName        string
	InC, OutC        int
	KH, KW           int
	StrideH, StrideW int
	PadH, PadW       int
	Groups           int
	Act              quant.Activation

	// PerChannelW selects per-output-channel symmetric weight grids
	// instead of one per-tensor grid — the standard refinement for
	// depthwise convolutions (an extension beyond the paper's gemmlowp
	// scheme). Weights then share zero point 128 and differ only in scale,
	// so the integer GEMM is unchanged and only the requantization step
	// becomes per-channel.
	PerChannelW bool

	W    *tensor.Tensor // (OutC, InC/Groups, KH, KW); nil in spec-only mode
	Bias []float32      // length OutC, or nil

	QI QuantInfo

	wq      *tensor.QTensor
	biasQ   []int32
	reqs    []quant.Requantizer // per-channel output stages (PerChannelW)
	hwFromF []f16.F16
	hwFromQ []f16.F16

	// Packed-weight caches, one per weight form, keyed by the output
	// channel range [c0,c1) a split plan assigns to a processor. Filters
	// are reused on every request, so the im2col GEMMs run against
	// panels packed once per (range, form) and shared across calls —
	// including concurrent CPU/GPU halves of a split layer.
	packF32 gemm.PackCache[gemm.PackedAF32]
	packQ   gemm.PackCache[gemm.PackedAU8]
	packHF  gemm.PackCache[gemm.PackedAF16]
	packHQ  gemm.PackCache[gemm.PackedAF16]
}

// resetPacks drops the packed-weight caches after the underlying weight
// forms change (SetQuant rebuilds the QUInt8 and binary16 sets).
func (l *Conv2D) resetPacks() {
	l.packF32.Reset()
	l.packQ.Reset()
	l.packHF.Reset()
	l.packHQ.Reset()
}

// Name implements Layer.
func (l *Conv2D) Name() string { return l.LayerName }

// Kind implements Layer.
func (l *Conv2D) Kind() OpKind {
	if l.Groups > 1 && l.Groups == l.InC {
		return OpDepthwise
	}
	return OpConv
}

// Quant implements Layer.
func (l *Conv2D) Quant() *QuantInfo { return &l.QI }

func (l *Conv2D) groups() int {
	if l.Groups <= 0 {
		return 1
	}
	return l.Groups
}

func (l *Conv2D) geom(in tensor.Shape) gemm.ConvGeom {
	return gemm.ConvGeom{
		InC: l.InC, InH: in.H, InW: in.W,
		KH: l.KH, KW: l.KW,
		StrideH: l.StrideH, StrideW: l.StrideW,
		PadH: l.PadH, PadW: l.PadW,
	}
}

// OutShape implements Layer.
func (l *Conv2D) OutShape(ins []tensor.Shape) (tensor.Shape, error) {
	if len(ins) != 1 {
		return tensor.Shape{}, shapeErr(l.LayerName, "want 1 input, got %d", len(ins))
	}
	in := ins[0]
	if in.C != l.InC {
		return tensor.Shape{}, shapeErr(l.LayerName, "input channels %d != layer InC %d", in.C, l.InC)
	}
	g := l.geom(in)
	oh, ow := g.OutH(), g.OutW()
	if oh <= 0 || ow <= 0 {
		return tensor.Shape{}, shapeErr(l.LayerName, "non-positive output %dx%d for input %v", oh, ow, in)
	}
	if l.OutC%l.groups() != 0 || l.InC%l.groups() != 0 {
		return tensor.Shape{}, shapeErr(l.LayerName, "channels (%d in, %d out) not divisible by %d groups", l.InC, l.OutC, l.groups())
	}
	return tensor.Shape{N: in.N, C: l.OutC, H: oh, W: ow}, nil
}

// Cost implements Layer.
func (l *Conv2D) Cost(ins []tensor.Shape) Cost {
	out, err := l.OutShape(ins)
	if err != nil {
		return Cost{}
	}
	in := ins[0]
	icg := int64(l.InC / l.groups())
	perOut := icg * int64(l.KH) * int64(l.KW)
	return Cost{
		MACs:     int64(out.Elems()) * perOut,
		InElems:  int64(in.Elems()),
		WElems:   int64(l.OutC) * perOut,
		OutElems: int64(out.Elems()),
	}
}

// SplitChannels implements Layer. Convolutions split over output channels.
func (l *Conv2D) SplitChannels(ins []tensor.Shape) int { return l.OutC }

// SetQuant installs the calibrated input/output activation grids, derives
// the weight grid from the master weights, and builds the cached QUInt8 /
// binary16 weight forms. Must be called before any quantized or
// processor-friendly forward.
func (l *Conv2D) SetQuant(in, out quant.Params) {
	if l.W == nil {
		panic("nn: SetQuant on spec-only Conv2D " + l.LayerName)
	}
	l.resetPacks()
	if l.PerChannelW {
		l.setQuantPerChannel(in, out)
		return
	}
	wmin, wmax := l.W.Range()
	wp := quant.ChooseParams(wmin, wmax)
	l.QI = QuantInfo{In: in, W: wp, Out: out, Ready: true}
	l.wq = tensor.Quantize(l.W, wp)
	l.biasQ = make([]int32, l.OutC)
	biasScale := float64(in.Scale) * float64(wp.Scale)
	for i := 0; i < l.OutC; i++ {
		var b float64
		if l.Bias != nil {
			b = float64(l.Bias[i])
		}
		l.biasQ[i] = int32(math.Round(b / biasScale))
	}
	l.hwFromF = f16.FromSlice32(l.W.Data)
	l.hwFromQ = make([]f16.F16, len(l.wq.Data))
	for i, q := range l.wq.Data {
		l.hwFromQ[i] = f16.FromFloat32(wp.Dequantize(q))
	}
}

// setQuantPerChannel installs symmetric per-output-channel weight grids:
// every channel shares zero point 128 (so the integer GEMM's single
// weight zero point still holds) with its own scale, and the output stage
// requantizes with a per-channel multiplier.
func (l *Conv2D) setQuantPerChannel(in, out quant.Params) {
	rows := l.W.Shape.C * l.W.Shape.H * l.W.Shape.W
	perCh := make([]quant.Params, l.OutC)
	l.wq = tensor.NewQ(l.W.Shape, quant.Params{Scale: 1, ZeroPoint: 128})
	l.biasQ = make([]int32, l.OutC)
	l.reqs = make([]quant.Requantizer, l.OutC)
	l.hwFromQ = make([]f16.F16, len(l.W.Data))
	for oc := 0; oc < l.OutC; oc++ {
		row := l.W.Data[oc*rows : (oc+1)*rows]
		var amax float64
		for _, v := range row {
			if a := math.Abs(float64(v)); a > amax {
				amax = a
			}
		}
		if amax == 0 {
			amax = 1.0 / 127
		}
		wp := quant.Params{Scale: float32(amax / 127), ZeroPoint: 128}
		perCh[oc] = wp
		for i, v := range row {
			l.wq.Data[oc*rows+i] = wp.Quantize(v)
			l.hwFromQ[oc*rows+i] = f16.FromFloat32(wp.Dequantize(l.wq.Data[oc*rows+i]))
		}
		var b float64
		if l.Bias != nil {
			b = float64(l.Bias[oc])
		}
		l.biasQ[oc] = int32(math.Round(b / (float64(in.Scale) * float64(wp.Scale))))
		l.reqs[oc] = quant.NewRequantizer(in, wp, out, l.Act)
	}
	l.QI = QuantInfo{In: in, W: perCh[0], Out: out, WPerChannel: perCh, Ready: true}
	l.wq.Params = quant.Params{Scale: perCh[0].Scale, ZeroPoint: 128}
	l.hwFromF = f16.FromSlice32(l.W.Data)
}

// requantizerFor returns the output stage for one output channel.
func (l *Conv2D) requantizerFor(in quant.Params, outP quant.Params, oc int, fallback *quant.Requantizer) quant.Requantizer {
	if l.QI.PerChannel() {
		return l.reqs[oc]
	}
	return *fallback
}

// ForwardF32 computes output channels [c0,c1) of the F32 pipeline.
func (l *Conv2D) ForwardF32(ins []*tensor.Tensor, out *tensor.Tensor, c0, c1 int) {
	in := ins[0]
	checkRange(c0, c1, l.OutC, l.LayerName)
	g := l.geom(in.Shape)
	oh, ow := g.OutH(), g.OutW()
	plane := oh * ow
	if l.groups() == 1 {
		k := g.PatchRows()
		pw := l.packF32.Get(c0, c1, func() *gemm.PackedAF32 {
			return gemm.PackAF32(l.W.Data[c0*k:c1*k], c1-c0, k)
		})
		patches := make([]float32, k*g.PatchCols())
		for n := 0; n < in.Shape.N; n++ {
			gemm.Im2ColF32(in.Data[n*l.InC*in.Shape.H*in.Shape.W:(n+1)*l.InC*in.Shape.H*in.Shape.W], g, patches)
			lo, _ := out.Shape.ChannelSpan(n, c0, c1)
			gemm.F32Packed(pw, patches, out.Data[lo:lo+(c1-c0)*plane], plane)
		}
	} else {
		l.directF32(in, out, c0, c1)
	}
	// Bias + activation epilogue.
	for n := 0; n < out.Shape.N; n++ {
		for oc := c0; oc < c1; oc++ {
			var b float32
			if l.Bias != nil {
				b = l.Bias[oc]
			}
			lo, hi := out.Shape.ChannelSpan(n, oc, oc+1)
			for i := lo; i < hi; i++ {
				out.Data[i] = l.Act.Apply(out.Data[i] + b)
			}
		}
	}
}

// directF32 handles grouped/depthwise convolutions with straight loops.
func (l *Conv2D) directF32(in *tensor.Tensor, out *tensor.Tensor, c0, c1 int) {
	gr := l.groups()
	icg := l.InC / gr
	ocg := l.OutC / gr
	oh, ow := out.Shape.H, out.Shape.W
	for n := 0; n < in.Shape.N; n++ {
		for oc := c0; oc < c1; oc++ {
			gidx := oc / ocg
			for y := 0; y < oh; y++ {
				for x := 0; x < ow; x++ {
					var s float32
					for ic := 0; ic < icg; ic++ {
						cin := gidx*icg + ic
						for kh := 0; kh < l.KH; kh++ {
							sy := y*l.StrideH - l.PadH + kh
							if sy < 0 || sy >= in.Shape.H {
								continue
							}
							for kw := 0; kw < l.KW; kw++ {
								sx := x*l.StrideW - l.PadW + kw
								if sx < 0 || sx >= in.Shape.W {
									continue
								}
								s += l.W.Data[((oc*icg+ic)*l.KH+kh)*l.KW+kw] * in.At(n, cin, sy, sx)
							}
						}
					}
					out.Set(n, oc, y, x, s)
				}
			}
		}
	}
}

// ForwardQ computes output channels [c0,c1) of the CPU integer pipeline:
// uint8 operands, int32 accumulation, fixed-point requantization with the
// fused activation clamp — the gemmlowp path of processor-friendly
// quantization (Figure 9a).
func (l *Conv2D) ForwardQ(ins []*tensor.QTensor, out *tensor.QTensor, c0, c1 int) {
	in := ins[0]
	checkRange(c0, c1, l.OutC, l.LayerName)
	l.mustQuantReady()
	req := quant.NewRequantizer(in.Params, l.QI.W, out.Params, l.Act)
	g := l.geom(in.Shape)
	oh, ow := g.OutH(), g.OutW()
	plane := oh * ow
	za, zw := int32(in.Params.ZeroPoint), int32(l.QI.W.ZeroPoint)
	if l.groups() == 1 {
		k := g.PatchRows()
		pw := l.packQ.Get(c0, c1, func() *gemm.PackedAU8 {
			return gemm.PackAU8(l.wq.Data[c0*k:c1*k], c1-c0, k)
		})
		patches := make([]uint8, k*g.PatchCols())
		acc := make([]int32, (c1-c0)*plane)
		for n := 0; n < in.Shape.N; n++ {
			gemm.Im2ColU8(in.Data[n*l.InC*in.Shape.H*in.Shape.W:(n+1)*l.InC*in.Shape.H*in.Shape.W], g, patches, in.Params.ZeroPoint)
			gemm.QGEMMPacked(pw, patches, acc, plane, zw, za)
			lo, _ := out.Shape.ChannelSpan(n, c0, c1)
			for r := 0; r < c1-c0; r++ {
				rq := l.requantizerFor(in.Params, out.Params, c0+r, &req)
				bq := l.biasQ[c0+r]
				row := acc[r*plane : (r+1)*plane]
				dst := out.Data[lo+r*plane : lo+(r+1)*plane]
				for i, a := range row {
					dst[i] = rq.Requantize(a + bq)
				}
			}
		}
	} else {
		l.directQ(in, out, c0, c1, req)
	}
}

// directQ handles grouped/depthwise quantized convolutions.
func (l *Conv2D) directQ(in *tensor.QTensor, out *tensor.QTensor, c0, c1 int, req quant.Requantizer) {
	gr := l.groups()
	icg := l.InC / gr
	ocg := l.OutC / gr
	oh, ow := out.Shape.H, out.Shape.W
	za, zw := int32(in.Params.ZeroPoint), int32(l.QI.W.ZeroPoint)
	for n := 0; n < in.Shape.N; n++ {
		for oc := c0; oc < c1; oc++ {
			gidx := oc / ocg
			for y := 0; y < oh; y++ {
				rq := l.requantizerFor(in.Params, out.Params, oc, &req)
				for x := 0; x < ow; x++ {
					acc := l.biasQ[oc]
					for ic := 0; ic < icg; ic++ {
						cin := gidx*icg + ic
						for kh := 0; kh < l.KH; kh++ {
							sy := y*l.StrideH - l.PadH + kh
							for kw := 0; kw < l.KW; kw++ {
								sx := x*l.StrideW - l.PadW + kw
								var iv int32
								if sy < 0 || sy >= in.Shape.H || sx < 0 || sx >= in.Shape.W {
									iv = 0 // zero-point padding: (zp - zp) = 0
								} else {
									iv = int32(in.At(n, cin, sy, sx)) - za
								}
								wv := int32(l.wq.Data[((oc*icg+ic)*l.KH+kh)*l.KW+kw]) - zw
								acc += wv * iv
							}
						}
					}
					out.Set(n, oc, y, x, rq.Requantize(acc))
				}
			}
		}
	}
}

// ForwardF16 computes output channels [c0,c1) in half precision. fromQ
// selects the weight set: false uses halves rounded from the F32 master
// (pure-F16 execution, Figure 8), true uses halves dequantized from the
// QUInt8 weights (the GPU side of processor-friendly quantization).
func (l *Conv2D) ForwardF16(ins []*tensor.HTensor, out *tensor.HTensor, c0, c1 int, fromQ bool) {
	in := ins[0]
	checkRange(c0, c1, l.OutC, l.LayerName)
	w := l.halfWeights(fromQ)
	g := l.geom(in.Shape)
	oh, ow := g.OutH(), g.OutW()
	plane := oh * ow
	if l.groups() == 1 {
		k := g.PatchRows()
		pw := l.packedHalfWeights(fromQ, c0, c1, k)
		patches := make([]f16.F16, k*g.PatchCols())
		for n := 0; n < in.Shape.N; n++ {
			gemm.Im2ColF16(in.Data[n*l.InC*in.Shape.H*in.Shape.W:(n+1)*l.InC*in.Shape.H*in.Shape.W], g, patches)
			lo, _ := out.Shape.ChannelSpan(n, c0, c1)
			gemm.F16GEMMPacked(pw, patches, out.Data[lo:lo+(c1-c0)*plane], plane)
		}
	} else {
		l.directF16(in, out, c0, c1, w)
	}
	for n := 0; n < out.Shape.N; n++ {
		for oc := c0; oc < c1; oc++ {
			var b float32
			if l.Bias != nil {
				b = l.Bias[oc]
			}
			lo, hi := out.Shape.ChannelSpan(n, oc, oc+1)
			for i := lo; i < hi; i++ {
				out.Data[i] = f16.FromFloat32(l.Act.Apply(out.Data[i].Float32() + b))
			}
		}
	}
}

// packedHalfWeights returns the cached packed binary16 weight panels for
// output channels [c0,c1); fromQ selects the weight set as in
// halfWeights.
func (l *Conv2D) packedHalfWeights(fromQ bool, c0, c1, k int) *gemm.PackedAF16 {
	w := l.halfWeights(fromQ)
	cache := &l.packHF
	if fromQ {
		cache = &l.packHQ
	}
	return cache.Get(c0, c1, func() *gemm.PackedAF16 {
		return gemm.PackAF16(w[c0*k:c1*k], c1-c0, k)
	})
}

// directF16 handles grouped/depthwise half-precision convolutions,
// accumulating in float32 like the GEMM kernel.
func (l *Conv2D) directF16(in *tensor.HTensor, out *tensor.HTensor, c0, c1 int, w []f16.F16) {
	gr := l.groups()
	icg := l.InC / gr
	ocg := l.OutC / gr
	oh, ow := out.Shape.H, out.Shape.W
	for n := 0; n < in.Shape.N; n++ {
		for oc := c0; oc < c1; oc++ {
			gidx := oc / ocg
			for y := 0; y < oh; y++ {
				for x := 0; x < ow; x++ {
					var s float32
					for ic := 0; ic < icg; ic++ {
						cin := gidx*icg + ic
						for kh := 0; kh < l.KH; kh++ {
							sy := y*l.StrideH - l.PadH + kh
							if sy < 0 || sy >= in.Shape.H {
								continue
							}
							for kw := 0; kw < l.KW; kw++ {
								sx := x*l.StrideW - l.PadW + kw
								if sx < 0 || sx >= in.Shape.W {
									continue
								}
								s += w[((oc*icg+ic)*l.KH+kh)*l.KW+kw].Float32() * in.At(n, cin, sy, sx).Float32()
							}
						}
					}
					out.Set(n, oc, y, x, f16.FromFloat32(s))
				}
			}
		}
	}
}

// ForwardQViaF16 is the GPU side of processor-friendly quantization
// (Figure 9b): load QUInt8 activations, dequantize on the fly to binary16,
// convolve in half precision against the dequantized-half weights, and
// requantize the result back onto the QUInt8 output grid.
func (l *Conv2D) ForwardQViaF16(ins []*tensor.QTensor, out *tensor.QTensor, c0, c1 int) {
	in := ins[0]
	checkRange(c0, c1, l.OutC, l.LayerName)
	l.mustQuantReady()
	hin := tensor.DequantizeToHalf(in)
	hout := tensor.NewH(out.Shape)
	l.forwardF16NoBias(hin, hout, c0, c1)
	// Epilogue in half precision: add bias (the dequantized integer bias,
	// matching what the CPU path adds), apply activation, requantize.
	for n := 0; n < out.Shape.N; n++ {
		for oc := c0; oc < c1; oc++ {
			ws := float64(l.QI.W.Scale)
			if l.QI.PerChannel() {
				ws = float64(l.QI.WPerChannel[oc].Scale)
			}
			b := f16.FromFloat32(float32(float64(l.biasQ[oc]) * float64(in.Params.Scale) * ws))
			lo, hi := out.Shape.ChannelSpan(n, oc, oc+1)
			for i := lo; i < hi; i++ {
				v := f16.Add(hout.Data[i], b)
				out.Data[i] = out.Params.Quantize(l.Act.Apply(v.Float32()))
			}
		}
	}
}

// forwardF16NoBias runs only the multiply-accumulate portion with the
// dequantized-from-QUInt8 weights.
func (l *Conv2D) forwardF16NoBias(in *tensor.HTensor, out *tensor.HTensor, c0, c1 int) {
	g := l.geom(in.Shape)
	plane := g.OutH() * g.OutW()
	if l.groups() == 1 {
		k := g.PatchRows()
		pw := l.packedHalfWeights(true, c0, c1, k)
		patches := make([]f16.F16, k*g.PatchCols())
		for n := 0; n < in.Shape.N; n++ {
			gemm.Im2ColF16(in.Data[n*l.InC*in.Shape.H*in.Shape.W:(n+1)*l.InC*in.Shape.H*in.Shape.W], g, patches)
			lo, _ := out.Shape.ChannelSpan(n, c0, c1)
			gemm.F16GEMMPacked(pw, patches, out.Data[lo:lo+(c1-c0)*plane], plane)
		}
	} else {
		l.directF16(in, out, c0, c1, l.halfWeights(true))
	}
}

func (l *Conv2D) halfWeights(fromQ bool) []f16.F16 {
	if fromQ {
		l.mustQuantReady()
		return l.hwFromQ
	}
	if l.hwFromF == nil {
		if l.W == nil {
			panic("nn: forward on spec-only Conv2D " + l.LayerName)
		}
		l.hwFromF = f16.FromSlice32(l.W.Data)
	}
	return l.hwFromF
}

func (l *Conv2D) mustQuantReady() {
	if !l.QI.Ready {
		panic("nn: quantized forward before SetQuant on " + l.LayerName)
	}
}
