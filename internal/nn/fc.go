package nn

import (
	"math"

	"mulayer/internal/f16"
	"mulayer/internal/gemm"
	"mulayer/internal/quant"
	"mulayer/internal/tensor"
)

// FullyConnected is a dense layer over the flattened input (C·H·W
// features). Like a convolution it is split over output neurons ("output
// channels", §3.2): each processor computes a disjoint neuron range.
type FullyConnected struct {
	LayerName  string
	InFeatures int
	OutC       int
	Act        quant.Activation
	W          *tensor.Tensor // (OutC, InFeatures, 1, 1); nil in spec-only mode
	Bias       []float32
	QI         QuantInfo
	wq         *tensor.QTensor
	biasQ      []int32
	hwFromF    []f16.F16
	hwFromQ    []f16.F16

	// Packed-weight caches keyed by neuron range, as in Conv2D. FC
	// forwards are GEMVs, where packing the weights per call would cost
	// as much as the multiply itself — the cache is what makes the
	// tiled kernels pay off on FC-shaped work.
	packF32 gemm.PackCache[gemm.PackedAF32]
	packQ   gemm.PackCache[gemm.PackedAU8]
	packHF  gemm.PackCache[gemm.PackedAF16]
	packHQ  gemm.PackCache[gemm.PackedAF16]
}

// resetPacks drops the packed-weight caches after weight forms change.
func (l *FullyConnected) resetPacks() {
	l.packF32.Reset()
	l.packQ.Reset()
	l.packHF.Reset()
	l.packHQ.Reset()
}

// Name implements Layer.
func (l *FullyConnected) Name() string { return l.LayerName }

// Kind implements Layer.
func (l *FullyConnected) Kind() OpKind { return OpFC }

// Quant implements Layer.
func (l *FullyConnected) Quant() *QuantInfo { return &l.QI }

// OutShape implements Layer.
func (l *FullyConnected) OutShape(ins []tensor.Shape) (tensor.Shape, error) {
	if len(ins) != 1 {
		return tensor.Shape{}, shapeErr(l.LayerName, "want 1 input, got %d", len(ins))
	}
	in := ins[0]
	if in.C*in.H*in.W != l.InFeatures {
		return tensor.Shape{}, shapeErr(l.LayerName, "input %v has %d features, want %d", in, in.C*in.H*in.W, l.InFeatures)
	}
	return tensor.Shape{N: in.N, C: l.OutC, H: 1, W: 1}, nil
}

// Cost implements Layer.
func (l *FullyConnected) Cost(ins []tensor.Shape) Cost {
	if _, err := l.OutShape(ins); err != nil {
		return Cost{}
	}
	n := int64(ins[0].N)
	return Cost{
		MACs:     n * int64(l.OutC) * int64(l.InFeatures),
		InElems:  n * int64(l.InFeatures),
		WElems:   int64(l.OutC) * int64(l.InFeatures),
		OutElems: n * int64(l.OutC),
	}
}

// SplitChannels implements Layer.
func (l *FullyConnected) SplitChannels(ins []tensor.Shape) int { return l.OutC }

// SetQuant installs calibrated activation grids and builds weight caches
// (see Conv2D.SetQuant).
func (l *FullyConnected) SetQuant(in, out quant.Params) {
	if l.W == nil {
		panic("nn: SetQuant on spec-only FullyConnected " + l.LayerName)
	}
	l.resetPacks()
	wmin, wmax := l.W.Range()
	wp := quant.ChooseParams(wmin, wmax)
	l.QI = QuantInfo{In: in, W: wp, Out: out, Ready: true}
	l.wq = tensor.Quantize(l.W, wp)
	l.biasQ = make([]int32, l.OutC)
	biasScale := float64(in.Scale) * float64(wp.Scale)
	for i := 0; i < l.OutC; i++ {
		var b float64
		if l.Bias != nil {
			b = float64(l.Bias[i])
		}
		l.biasQ[i] = int32(math.Round(b / biasScale))
	}
	l.hwFromF = f16.FromSlice32(l.W.Data)
	l.hwFromQ = make([]f16.F16, len(l.wq.Data))
	for i, q := range l.wq.Data {
		l.hwFromQ[i] = f16.FromFloat32(wp.Dequantize(q))
	}
}

// ForwardF32 computes output neurons [c0,c1) in single precision.
func (l *FullyConnected) ForwardF32(ins []*tensor.Tensor, out *tensor.Tensor, c0, c1 int) {
	in := ins[0]
	checkRange(c0, c1, l.OutC, l.LayerName)
	k := l.InFeatures
	pw := l.packF32.Get(c0, c1, func() *gemm.PackedAF32 {
		return gemm.PackAF32(l.W.Data[c0*k:c1*k], c1-c0, k)
	})
	for n := 0; n < in.Shape.N; n++ {
		vec := in.Data[n*k : (n+1)*k]
		dst := out.Data[n*l.OutC+c0 : n*l.OutC+c1]
		gemm.F32Packed(pw, vec, dst, 1)
		for i := range dst {
			var b float32
			if l.Bias != nil {
				b = l.Bias[c0+i]
			}
			dst[i] = l.Act.Apply(dst[i] + b)
		}
	}
}

// ForwardQ computes output neurons [c0,c1) in the CPU integer pipeline.
func (l *FullyConnected) ForwardQ(ins []*tensor.QTensor, out *tensor.QTensor, c0, c1 int) {
	in := ins[0]
	checkRange(c0, c1, l.OutC, l.LayerName)
	if !l.QI.Ready {
		panic("nn: quantized forward before SetQuant on " + l.LayerName)
	}
	req := quant.NewRequantizer(in.Params, l.QI.W, out.Params, l.Act)
	k := l.InFeatures
	za, zw := int32(in.Params.ZeroPoint), int32(l.QI.W.ZeroPoint)
	pw := l.packQ.Get(c0, c1, func() *gemm.PackedAU8 {
		return gemm.PackAU8(l.wq.Data[c0*k:c1*k], c1-c0, k)
	})
	acc := make([]int32, c1-c0)
	for n := 0; n < in.Shape.N; n++ {
		vec := in.Data[n*k : (n+1)*k]
		gemm.QGEMMPacked(pw, vec, acc, 1, zw, za)
		for i, a := range acc {
			out.Data[n*l.OutC+c0+i] = req.Requantize(a + l.biasQ[c0+i])
		}
	}
}

// ForwardF16 computes output neurons [c0,c1) in half precision; fromQ
// selects the weight cache as in Conv2D.ForwardF16.
func (l *FullyConnected) ForwardF16(ins []*tensor.HTensor, out *tensor.HTensor, c0, c1 int, fromQ bool) {
	in := ins[0]
	checkRange(c0, c1, l.OutC, l.LayerName)
	k := l.InFeatures
	pw := l.packedHalfWeights(fromQ, c0, c1, k)
	for n := 0; n < in.Shape.N; n++ {
		vec := in.Data[n*k : (n+1)*k]
		dst := out.Data[n*l.OutC+c0 : n*l.OutC+c1]
		gemm.F16GEMMPacked(pw, vec, dst, 1)
		for i := range dst {
			var b float32
			if l.Bias != nil {
				b = l.Bias[c0+i]
			}
			dst[i] = f16.FromFloat32(l.Act.Apply(dst[i].Float32() + b))
		}
	}
}

// ForwardQViaF16 is the GPU processor-friendly path: dequantize the input
// to halves, run the half GEMV with dequantized-half weights, requantize.
func (l *FullyConnected) ForwardQViaF16(ins []*tensor.QTensor, out *tensor.QTensor, c0, c1 int) {
	in := ins[0]
	checkRange(c0, c1, l.OutC, l.LayerName)
	if !l.QI.Ready {
		panic("nn: quantized forward before SetQuant on " + l.LayerName)
	}
	hin := tensor.DequantizeToHalf(in)
	k := l.InFeatures
	pw := l.packedHalfWeights(true, c0, c1, k)
	biasScale := float64(in.Params.Scale) * float64(l.QI.W.Scale)
	dst := make([]f16.F16, c1-c0)
	for n := 0; n < in.Shape.N; n++ {
		vec := hin.Data[n*k : (n+1)*k]
		gemm.F16GEMMPacked(pw, vec, dst, 1)
		for i := range dst {
			b := f16.FromFloat32(float32(float64(l.biasQ[c0+i]) * biasScale))
			v := f16.Add(dst[i], b)
			out.Data[n*l.OutC+c0+i] = out.Params.Quantize(l.Act.Apply(v.Float32()))
		}
	}
}

// packedHalfWeights returns the cached packed binary16 weight panels for
// neurons [c0,c1); fromQ selects the weight set as in halfWeights.
func (l *FullyConnected) packedHalfWeights(fromQ bool, c0, c1, k int) *gemm.PackedAF16 {
	w := l.halfWeights(fromQ)
	cache := &l.packHF
	if fromQ {
		cache = &l.packHQ
	}
	return cache.Get(c0, c1, func() *gemm.PackedAF16 {
		return gemm.PackAF16(w[c0*k:c1*k], c1-c0, k)
	})
}

func (l *FullyConnected) halfWeights(fromQ bool) []f16.F16 {
	if fromQ {
		if !l.QI.Ready {
			panic("nn: quantized forward before SetQuant on " + l.LayerName)
		}
		return l.hwFromQ
	}
	if l.hwFromF == nil {
		if l.W == nil {
			panic("nn: forward on spec-only FullyConnected " + l.LayerName)
		}
		l.hwFromF = f16.FromSlice32(l.W.Data)
	}
	return l.hwFromF
}
