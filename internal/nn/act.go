package nn

import (
	"math"

	"mulayer/internal/f16"
	"mulayer/internal/tensor"
)

// ReLU is a standalone rectified-linear layer. Most activations in the
// model zoo are fused into the preceding convolution; the standalone layer
// exists for networks that interleave normalization between convolution
// and activation (AlexNet) and for tests.
type ReLU struct {
	LayerName string
	QI        QuantInfo
}

// Name implements Layer.
func (l *ReLU) Name() string { return l.LayerName }

// Kind implements Layer.
func (l *ReLU) Kind() OpKind { return OpReLU }

// Quant implements Layer.
func (l *ReLU) Quant() *QuantInfo { return &l.QI }

// OutShape implements Layer.
func (l *ReLU) OutShape(ins []tensor.Shape) (tensor.Shape, error) {
	if len(ins) != 1 {
		return tensor.Shape{}, shapeErr(l.LayerName, "want 1 input, got %d", len(ins))
	}
	return ins[0], nil
}

// Cost implements Layer.
func (l *ReLU) Cost(ins []tensor.Shape) Cost {
	if len(ins) != 1 {
		return Cost{}
	}
	e := int64(ins[0].Elems())
	return Cost{MACs: e, InElems: e, OutElems: e}
}

// SplitChannels implements Layer.
func (l *ReLU) SplitChannels(ins []tensor.Shape) int {
	if len(ins) != 1 {
		return 0
	}
	return ins[0].C
}

// ForwardF32 rectifies channels [c0,c1).
func (l *ReLU) ForwardF32(ins []*tensor.Tensor, out *tensor.Tensor, c0, c1 int) {
	in := ins[0]
	checkRange(c0, c1, in.Shape.C, l.LayerName)
	for n := 0; n < in.Shape.N; n++ {
		lo, hi := in.Shape.ChannelSpan(n, c0, c1)
		for i := lo; i < hi; i++ {
			v := in.Data[i]
			if v < 0 {
				v = 0
			}
			out.Data[i] = v
		}
	}
}

// ForwardQ rectifies on the quantized grid: clamp to the zero point.
// Input and output share parameters.
func (l *ReLU) ForwardQ(ins []*tensor.QTensor, out *tensor.QTensor, c0, c1 int) {
	in := ins[0]
	checkRange(c0, c1, in.Shape.C, l.LayerName)
	if in.Params != out.Params {
		panic("nn: ReLU requires matching quantization params on " + l.LayerName)
	}
	zp := in.Params.ZeroPoint
	for n := 0; n < in.Shape.N; n++ {
		lo, hi := in.Shape.ChannelSpan(n, c0, c1)
		for i := lo; i < hi; i++ {
			v := in.Data[i]
			if v < zp {
				v = zp
			}
			out.Data[i] = v
		}
	}
}

// ForwardF16 rectifies in half precision (a sign-bit test).
func (l *ReLU) ForwardF16(ins []*tensor.HTensor, out *tensor.HTensor, c0, c1 int) {
	in := ins[0]
	checkRange(c0, c1, in.Shape.C, l.LayerName)
	for n := 0; n < in.Shape.N; n++ {
		lo, hi := in.Shape.ChannelSpan(n, c0, c1)
		for i := lo; i < hi; i++ {
			v := in.Data[i]
			if v.Signbit() && !v.IsZero() {
				v = f16.Zero
			}
			out.Data[i] = v
		}
	}
}

// Softmax normalizes across channels per spatial position. The layer is
// numerically delicate and tiny, so μLayer never splits it: it runs whole
// on the CPU (SplitChannels reports 0).
type Softmax struct {
	LayerName string
	QI        QuantInfo
}

// Name implements Layer.
func (l *Softmax) Name() string { return l.LayerName }

// Kind implements Layer.
func (l *Softmax) Kind() OpKind { return OpSoftmax }

// Quant implements Layer.
func (l *Softmax) Quant() *QuantInfo { return &l.QI }

// OutShape implements Layer.
func (l *Softmax) OutShape(ins []tensor.Shape) (tensor.Shape, error) {
	if len(ins) != 1 {
		return tensor.Shape{}, shapeErr(l.LayerName, "want 1 input, got %d", len(ins))
	}
	return ins[0], nil
}

// Cost implements Layer.
func (l *Softmax) Cost(ins []tensor.Shape) Cost {
	if len(ins) != 1 {
		return Cost{}
	}
	e := int64(ins[0].Elems())
	return Cost{MACs: 4 * e, InElems: e, OutElems: e}
}

// SplitChannels implements Layer: never split.
func (l *Softmax) SplitChannels(ins []tensor.Shape) int { return 0 }

// ForwardF32 computes a max-subtracted softmax across channels.
func (l *Softmax) ForwardF32(ins []*tensor.Tensor, out *tensor.Tensor, c0, c1 int) {
	in := ins[0]
	s := in.Shape
	for n := 0; n < s.N; n++ {
		for y := 0; y < s.H; y++ {
			for x := 0; x < s.W; x++ {
				m := float32(math.Inf(-1))
				for c := 0; c < s.C; c++ {
					if v := in.At(n, c, y, x); v > m {
						m = v
					}
				}
				var sum float64
				for c := 0; c < s.C; c++ {
					sum += math.Exp(float64(in.At(n, c, y, x) - m))
				}
				for c := 0; c < s.C; c++ {
					out.Set(n, c, y, x, float32(math.Exp(float64(in.At(n, c, y, x)-m))/sum))
				}
			}
		}
	}
}

// ForwardQ dequantizes, applies the float softmax, and requantizes onto
// the output grid — the standard integer-runtime treatment of softmax.
func (l *Softmax) ForwardQ(ins []*tensor.QTensor, out *tensor.QTensor, c0, c1 int) {
	fin := tensor.Dequantize(ins[0])
	fout := tensor.New(fin.Shape)
	l.ForwardF32([]*tensor.Tensor{fin}, fout, 0, fin.Shape.C)
	for i, v := range fout.Data {
		out.Data[i] = out.Params.Quantize(v)
	}
}

// ForwardF16 widens to float32, applies softmax, and rounds back.
func (l *Softmax) ForwardF16(ins []*tensor.HTensor, out *tensor.HTensor, c0, c1 int) {
	fin := tensor.HalfToFloat(ins[0])
	fout := tensor.New(fin.Shape)
	l.ForwardF32([]*tensor.Tensor{fin}, fout, 0, fin.Shape.C)
	for i, v := range fout.Data {
		out.Data[i] = f16.FromFloat32(v)
	}
}
