package models

import (
	"fmt"

	"mulayer/internal/graph"
	"mulayer/internal/nn"
	"mulayer/internal/quant"
	"mulayer/internal/tensor"
)

// LeNet5 builds the digit-recognition network of Figure 1a: two 5×5
// convolutions with max pooling followed by three fully-connected layers.
// Default input is 1×28×28, 10 classes.
func LeNet5(cfg Config) (*Model, error) {
	m := newBuilder("lenet5", cfg)
	hw := cfg.inputHW(28)
	in := m.input(tensor.Shape{N: 1, C: 1, H: hw, W: hw})
	x := m.conv("conv1", in, m.sc(6), 5, 1, 2, 1, quant.ActReLU)
	x = m.maxPool("pool1", x, 2, 2, 0)
	x = m.conv("conv2", x, m.sc(16), 5, 1, 0, 1, quant.ActReLU)
	x = m.maxPool("pool2", x, 2, 2, 0)
	x = m.fc("fc1", x, m.sc(120), quant.ActReLU)
	x = m.fc("fc2", x, m.sc(84), quant.ActReLU)
	x = m.fc("fc3", x, cfg.classes(10), quant.ActNone)
	x = m.softmax("prob", x)
	return m.finish("LeNet-5", x, tensor.Shape{N: 1, C: 1, H: hw, W: hw}, false)
}

// AlexNet builds the 2012 ImageNet network (Table 1: "early NN with large
// filter sizes"), including its grouped convolutions and LRN layers.
// Default input is 3×227×227, 1000 classes.
func AlexNet(cfg Config) (*Model, error) {
	m := newBuilder("alexnet", cfg)
	hw := cfg.inputHW(227)
	shape := tensor.Shape{N: 1, C: 3, H: hw, W: hw}
	in := m.input(shape)
	x := m.conv("conv1", in, m.sc(96), 11, 4, 0, 1, quant.ActReLU)
	x = m.lrn("norm1", x)
	x = m.maxPool("pool1", x, 3, 2, 0)
	x = m.convGrouped("conv2", x, m.sc(256), 5, 1, 2, 2, quant.ActReLU)
	x = m.lrn("norm2", x)
	x = m.maxPool("pool2", x, 3, 2, 0)
	x = m.conv("conv3", x, m.sc(384), 3, 1, 1, 1, quant.ActReLU)
	x = m.convGrouped("conv4", x, m.sc(384), 3, 1, 1, 2, quant.ActReLU)
	x = m.convGrouped("conv5", x, m.sc(256), 3, 1, 1, 2, quant.ActReLU)
	x = m.maxPool("pool5", x, 3, 2, 0)
	x = m.fc("fc6", x, m.sc(4096), quant.ActReLU)
	x = m.fc("fc7", x, m.sc(4096), quant.ActReLU)
	x = m.fc("fc8", x, cfg.classes(1000), quant.ActNone)
	x = m.softmax("prob", x)
	return m.finish("AlexNet", x, shape, false)
}

// VGG16 builds configuration D of Simonyan & Zisserman (Table 1: "early NN
// with large filter sizes" — large in compute, uniform 3×3 kernels).
// Default input is 3×224×224, 1000 classes.
func VGG16(cfg Config) (*Model, error) {
	m := newBuilder("vgg16", cfg)
	hw := cfg.inputHW(224)
	shape := tensor.Shape{N: 1, C: 3, H: hw, W: hw}
	in := m.input(shape)
	x := in
	blocks := []struct {
		convs int
		c     int
	}{{2, 64}, {2, 128}, {3, 256}, {3, 512}, {3, 512}}
	for bi, blk := range blocks {
		for ci := 0; ci < blk.convs; ci++ {
			x = m.conv(fmt.Sprintf("conv%d_%d", bi+1, ci+1), x, m.sc(blk.c), 3, 1, 1, 1, quant.ActReLU)
		}
		x = m.maxPool(fmt.Sprintf("pool%d", bi+1), x, 2, 2, 0)
	}
	x = m.fc("fc6", x, m.sc(4096), quant.ActReLU)
	x = m.fc("fc7", x, m.sc(4096), quant.ActReLU)
	x = m.fc("fc8", x, cfg.classes(1000), quant.ActNone)
	x = m.softmax("prob", x)
	return m.finish("VGG-16", x, shape, false)
}

// inception adds one GoogLeNet Inception module (Figure 11a): four
// branches — 1×1, 1×1→3×3, 1×1→5×5, and 3×3 maxpool→1×1 — concatenated
// along channels.
func (m *builder) inception(name string, in graphNode, c1, c3r, c3, c5r, c5, pp int) graphNode {
	b0 := m.conv(name+"/1x1", in, m.sc(c1), 1, 1, 0, 1, quant.ActReLU)
	b1 := m.conv(name+"/3x3_reduce", in, m.sc(c3r), 1, 1, 0, 1, quant.ActReLU)
	b1 = m.conv(name+"/3x3", b1, m.sc(c3), 3, 1, 1, 1, quant.ActReLU)
	b2 := m.conv(name+"/5x5_reduce", in, m.sc(c5r), 1, 1, 0, 1, quant.ActReLU)
	b2 = m.conv(name+"/5x5", b2, m.sc(c5), 5, 1, 2, 1, quant.ActReLU)
	b3 := m.maxPool(name+"/pool", in, 3, 1, 1)
	b3 = m.conv(name+"/pool_proj", b3, m.sc(pp), 1, 1, 0, 1, quant.ActReLU)
	return m.concat(name+"/output", b0, b1, b2, b3)
}

// graphNode abbreviates graph.NodeID inside the zoo builders.
type graphNode = graph.NodeID

// GoogLeNet builds the 22-layer Inception v1 network (Table 1: "NN with
// divergent branches"). Default input is 3×224×224, 1000 classes.
func GoogLeNet(cfg Config) (*Model, error) {
	m := newBuilder("googlenet", cfg)
	hw := cfg.inputHW(224)
	shape := tensor.Shape{N: 1, C: 3, H: hw, W: hw}
	in := m.input(shape)
	x := m.conv("conv1/7x7_s2", in, m.sc(64), 7, 2, 3, 1, quant.ActReLU)
	x = m.maxPool("pool1/3x3_s2", x, 3, 2, 1)
	x = m.conv("conv2/3x3_reduce", x, m.sc(64), 1, 1, 0, 1, quant.ActReLU)
	x = m.conv("conv2/3x3", x, m.sc(192), 3, 1, 1, 1, quant.ActReLU)
	x = m.maxPool("pool2/3x3_s2", x, 3, 2, 1)
	x = m.inception("inception_3a", x, 64, 96, 128, 16, 32, 32)
	x = m.inception("inception_3b", x, 128, 128, 192, 32, 96, 64)
	x = m.maxPool("pool3/3x3_s2", x, 3, 2, 1)
	x = m.inception("inception_4a", x, 192, 96, 208, 16, 48, 64)
	x = m.inception("inception_4b", x, 160, 112, 224, 24, 64, 64)
	x = m.inception("inception_4c", x, 128, 128, 256, 24, 64, 64)
	x = m.inception("inception_4d", x, 112, 144, 288, 32, 64, 64)
	x = m.inception("inception_4e", x, 256, 160, 320, 32, 128, 128)
	x = m.maxPool("pool4/3x3_s2", x, 3, 2, 1)
	x = m.inception("inception_5a", x, 256, 160, 320, 32, 128, 128)
	x = m.inception("inception_5b", x, 384, 192, 384, 48, 128, 128)
	x = m.globalAvgPool("pool5", x)
	x = m.fc("loss3/classifier", x, cfg.classes(1000), quant.ActNone)
	x = m.softmax("prob", x)
	return m.finish("GoogLeNet", x, shape, true)
}

// fire adds one SqueezeNet Fire module (Figure 11b): a 1×1 squeeze feeding
// parallel 1×1 and 3×3 expands, concatenated.
func (m *builder) fire(name string, in graphNode, squeeze, expand int) graphNode {
	s := m.conv(name+"/squeeze1x1", in, m.sc(squeeze), 1, 1, 0, 1, quant.ActReLU)
	e1 := m.conv(name+"/expand1x1", s, m.sc(expand), 1, 1, 0, 1, quant.ActReLU)
	e3 := m.conv(name+"/expand3x3", s, m.sc(expand), 3, 1, 1, 1, quant.ActReLU)
	return m.concat(name+"/concat", e1, e3)
}

// SqueezeNetV11 builds SqueezeNet v1.1 (Table 1: "NN with divergent
// branches"). Default input is 3×224×224, 1000 classes.
func SqueezeNetV11(cfg Config) (*Model, error) {
	m := newBuilder("squeezenet11", cfg)
	hw := cfg.inputHW(224)
	shape := tensor.Shape{N: 1, C: 3, H: hw, W: hw}
	in := m.input(shape)
	x := m.conv("conv1", in, m.sc(64), 3, 2, 0, 1, quant.ActReLU)
	x = m.maxPool("pool1", x, 3, 2, 0)
	x = m.fire("fire2", x, 16, 64)
	x = m.fire("fire3", x, 16, 64)
	x = m.maxPool("pool3", x, 3, 2, 0)
	x = m.fire("fire4", x, 32, 128)
	x = m.fire("fire5", x, 32, 128)
	x = m.maxPool("pool5", x, 3, 2, 0)
	x = m.fire("fire6", x, 48, 192)
	x = m.fire("fire7", x, 48, 192)
	x = m.fire("fire8", x, 64, 256)
	x = m.fire("fire9", x, 64, 256)
	x = m.conv("conv10", x, cfg.classes(1000), 1, 1, 0, 1, quant.ActReLU)
	x = m.globalAvgPool("pool10", x)
	x = m.softmax("prob", x)
	return m.finish("SqueezeNet v1.1", x, shape, true)
}

// MobileNetV1 builds the depthwise-separable network (Table 1:
// "small-scale NN aimed at minimizing computation"). Default input is
// 3×224×224, 1000 classes, width multiplier 1.0 (scaled by WidthScale).
func MobileNetV1(cfg Config) (*Model, error) {
	m := newBuilder("mobilenetv1", cfg)
	hw := cfg.inputHW(224)
	shape := tensor.Shape{N: 1, C: 3, H: hw, W: hw}
	in := m.input(shape)
	x := m.conv("conv1", in, m.sc(32), 3, 2, 1, 1, quant.ActReLU6)
	blocks := []struct {
		stride int
		outC   int
	}{
		{1, 64}, {2, 128}, {1, 128}, {2, 256}, {1, 256},
		{2, 512}, {1, 512}, {1, 512}, {1, 512}, {1, 512}, {1, 512},
		{2, 1024}, {1, 1024},
	}
	for i, blk := range blocks {
		x = m.dwconv(fmt.Sprintf("conv_dw_%d", i+2), x, 3, blk.stride, 1, quant.ActReLU6)
		x = m.conv(fmt.Sprintf("conv_pw_%d", i+2), x, m.sc(blk.outC), 1, 1, 0, 1, quant.ActReLU6)
	}
	x = m.globalAvgPool("pool", x)
	x = m.fc("fc", x, cfg.classes(1000), quant.ActNone)
	x = m.softmax("prob", x)
	return m.finish("MobileNet v1", x, shape, false)
}

// basicBlock adds one ResNet basic block: two 3×3 convolutions with a
// residual shortcut (identity, or a 1×1 projection when downsampling) and
// a fused ReLU on the sum.
func (m *builder) basicBlock(name string, in graphNode, outC, stride int) graphNode {
	shortcut := in
	if stride != 1 || m.shapes[in].C != outC {
		shortcut = m.conv(name+"/proj", in, outC, 1, stride, 0, 1, quant.ActNone)
	}
	x := m.conv(name+"/conv1", in, outC, 3, stride, 1, 1, quant.ActReLU)
	x = m.conv(name+"/conv2", x, outC, 3, 1, 1, 1, quant.ActNone)
	return m.add(&nn.Add{LayerName: name + "/add", Act: quant.ActReLU}, shortcut, x)
}

// ResNet18 builds the 18-layer residual network (He et al., one of the
// Figure 10 accuracy families; an extension beyond the paper's Table 1
// zoo). Default input is 3×224×224, 1000 classes.
func ResNet18(cfg Config) (*Model, error) {
	m := newBuilder("resnet18", cfg)
	hw := cfg.inputHW(224)
	shape := tensor.Shape{N: 1, C: 3, H: hw, W: hw}
	in := m.input(shape)
	x := m.conv("conv1", in, m.sc(64), 7, 2, 3, 1, quant.ActReLU)
	x = m.maxPool("pool1", x, 3, 2, 1)
	stages := []struct {
		c      int
		stride int
	}{{64, 1}, {128, 2}, {256, 2}, {512, 2}}
	for si, st := range stages {
		for b := 0; b < 2; b++ {
			stride := 1
			if b == 0 {
				stride = st.stride
			}
			x = m.basicBlock(fmt.Sprintf("layer%d_%d", si+1, b+1), x, m.sc(st.c), stride)
		}
	}
	x = m.globalAvgPool("pool5", x)
	x = m.fc("fc", x, cfg.classes(1000), quant.ActNone)
	x = m.softmax("prob", x)
	return m.finish("ResNet-18", x, shape, false)
}

// Inception3a builds GoogLeNet's first Inception module as a standalone
// network — the Figure 12 branch-distribution scenario. The default input
// is the module's in-situ activation shape, 192×28×28.
func Inception3a(cfg Config) (*Model, error) {
	m := newBuilder("inception3a", cfg)
	hw := cfg.inputHW(28)
	shape := tensor.Shape{N: 1, C: m.sc(192), H: hw, W: hw}
	in := m.input(shape)
	x := m.inception("inception_3a", in, 64, 96, 128, 16, 32, 32)
	return m.finish("Inception(3a)", x, shape, true)
}

// Evaluated returns the paper's five evaluation NNs (Table 1) in paper
// order: GoogLeNet, SqueezeNet v1.1, VGG-16, AlexNet, MobileNet v1.
func Evaluated(cfg Config) ([]*Model, error) {
	builders := []func(Config) (*Model, error){
		GoogLeNet, SqueezeNetV11, VGG16, AlexNet, MobileNetV1,
	}
	out := make([]*Model, 0, len(builders))
	for _, b := range builders {
		mdl, err := b(cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, mdl)
	}
	return out, nil
}
