// Package models builds the five networks the paper evaluates (Table 1) —
// GoogLeNet, SqueezeNet v1.1, VGG-16, AlexNet, and MobileNet v1 — plus
// LeNet-5 (Figure 1), as μLayer graphs.
//
// The paper uses ImageNet-pretrained weights; this reproduction has no
// weight files, so the zoo synthesizes deterministic pseudo-random weights
// (He-style initialization, SplitMix64-seeded) that produce well-behaved
// activations. Each builder supports two modes:
//
//   - spec-only (Config.Numeric=false): full-size layer descriptors with
//     no weight storage, used by the latency/energy experiments, which are
//     driven entirely by the analytic cost model;
//   - numeric (Config.Numeric=true): weights allocated, typically with a
//     reduced input resolution and channel width so pure-Go kernels finish
//     quickly; used by correctness tests, examples, and the Figure 10
//     accuracy substitution.
package models

import (
	"fmt"
	"math"

	"mulayer/internal/graph"
	"mulayer/internal/nn"
	"mulayer/internal/quant"
	"mulayer/internal/tensor"
)

// Config selects the model variant.
type Config struct {
	// Numeric allocates weights; spec-only models cannot run numerically.
	Numeric bool
	// InputHW overrides the input resolution (0 keeps the paper default).
	InputHW int
	// WidthScale multiplies every channel count (0 or 1 keeps defaults).
	WidthScale float64
	// Classes overrides the classifier width (0 keeps the default, 1000
	// for the ImageNet networks).
	Classes int
	// PerChannelWeights quantizes convolution weights with per-output-
	// channel symmetric grids instead of per-tensor grids — the standard
	// production refinement for depthwise layers (extension; the paper's
	// gemmlowp scheme is per-tensor).
	PerChannelWeights bool
	// NoSoftmax drops the final softmax layer so the network outputs raw
	// logits. The accuracy experiments score logits directly: quantizing a
	// near-uniform softmax distribution onto the 8-bit grid collapses the
	// class ordering, which would measure the output grid rather than the
	// arithmetic pipelines.
	NoSoftmax bool
	// Seed varies the synthesized weights.
	Seed uint64
}

func (c Config) widthScale() float64 {
	if c.WidthScale <= 0 {
		return 1
	}
	return c.WidthScale
}

// Model couples a graph with its quantization metadata.
type Model struct {
	Name       string
	Graph      *graph.Graph
	InputShape tensor.Shape
	// InputParams is the input activation grid (set by calibration).
	InputParams quant.Params
	// Calibrated is true once activation ranges have been installed.
	Calibrated bool
	// SpecOnly marks models without weights.
	SpecOnly bool
	// HasBranches marks networks with divergent branches, the Table 1
	// "branch distribution applicable" column.
	HasBranches bool
}

// builder wraps graph.Builder with shape tracking and weight synthesis.
type builder struct {
	b      *graph.Builder
	cfg    Config
	shapes map[graph.NodeID]tensor.Shape
	seed   uint64
	nextID int
}

func newBuilder(name string, cfg Config) *builder {
	return &builder{
		b:      graph.NewBuilder(name),
		cfg:    cfg,
		shapes: make(map[graph.NodeID]tensor.Shape),
		seed:   cfg.Seed*1e9 + 17,
	}
}

func (m *builder) nextSeed() uint64 {
	m.nextID++
	return m.seed + uint64(m.nextID)*0x9e3779b9
}

// sc scales a channel count by the width multiplier.
func (m *builder) sc(c int) int {
	s := int(math.Round(float64(c) * m.cfg.widthScale()))
	if s < 1 {
		s = 1
	}
	return s
}

func (m *builder) input(s tensor.Shape) graph.NodeID {
	id := m.b.Input(s)
	m.shapes[id] = s
	return id
}

func (m *builder) add(layer nn.Layer, inputs ...graph.NodeID) graph.NodeID {
	ins := make([]tensor.Shape, len(inputs))
	for i, in := range inputs {
		ins[i] = m.shapes[in]
	}
	out, err := layer.OutShape(ins)
	if err != nil {
		panic(fmt.Sprintf("models: %v", err))
	}
	id := m.b.Add(layer, inputs...)
	m.shapes[id] = out
	return id
}

// conv adds a convolution (already channel-scaled counts) with fused
// activation and optional He-initialized weights.
func (m *builder) conv(name string, in graph.NodeID, outC, k, stride, pad, groups int, act quant.Activation) graph.NodeID {
	inC := m.shapes[in].C
	if groups == 0 {
		groups = 1
	}
	l := &nn.Conv2D{
		LayerName: name, InC: inC, OutC: outC, KH: k, KW: k,
		StrideH: stride, StrideW: stride, PadH: pad, PadW: pad,
		Groups: groups, Act: act, PerChannelW: m.cfg.PerChannelWeights,
	}
	if m.cfg.Numeric {
		icg := inC / groups
		fanIn := icg * k * k
		w := tensor.New(tensor.Shape{N: outC, C: icg, H: k, W: k})
		w.FillRandom(m.nextSeed(), float32(math.Sqrt(6/float64(fanIn))))
		l.W = w
		l.Bias = make([]float32, outC) // zero biases
	}
	return m.add(l, in)
}

// dwconv adds a depthwise convolution.
func (m *builder) dwconv(name string, in graph.NodeID, k, stride, pad int, act quant.Activation) graph.NodeID {
	c := m.shapes[in].C
	return m.convGrouped(name, in, c, k, stride, pad, c, act)
}

func (m *builder) convGrouped(name string, in graph.NodeID, outC, k, stride, pad, groups int, act quant.Activation) graph.NodeID {
	return m.conv(name, in, outC, k, stride, pad, groups, act)
}

// fc adds a fully-connected layer over the flattened current shape.
func (m *builder) fc(name string, in graph.NodeID, outC int, act quant.Activation) graph.NodeID {
	s := m.shapes[in]
	feat := s.C * s.H * s.W
	l := &nn.FullyConnected{LayerName: name, InFeatures: feat, OutC: outC, Act: act}
	if m.cfg.Numeric {
		w := tensor.New(tensor.Shape{N: outC, C: feat, H: 1, W: 1})
		w.FillRandom(m.nextSeed(), float32(math.Sqrt(6/float64(feat))))
		l.W = w
		l.Bias = make([]float32, outC)
	}
	return m.add(l, in)
}

func (m *builder) maxPool(name string, in graph.NodeID, k, stride, pad int) graph.NodeID {
	return m.add(&nn.Pool{LayerName: name, Max: true, KH: k, KW: k, StrideH: stride, StrideW: stride, PadH: pad, PadW: pad}, in)
}

func (m *builder) globalAvgPool(name string, in graph.NodeID) graph.NodeID {
	return m.add(&nn.Pool{LayerName: name, Global: true}, in)
}

func (m *builder) lrn(name string, in graph.NodeID) graph.NodeID {
	return m.add(&nn.LRN{LayerName: name, Size: 5, K: 2, Alpha: 1e-4, Beta: 0.75}, in)
}

func (m *builder) concat(name string, ins ...graph.NodeID) graph.NodeID {
	return m.add(&nn.Concat{LayerName: name}, ins...)
}

func (m *builder) softmax(name string, in graph.NodeID) graph.NodeID {
	if m.cfg.NoSoftmax {
		return in
	}
	return m.add(&nn.Softmax{LayerName: name}, in)
}

func (m *builder) finish(name string, out graph.NodeID, inputShape tensor.Shape, hasBranches bool) (*Model, error) {
	g, err := m.b.Build(out)
	if err != nil {
		return nil, err
	}
	return &Model{
		Name:        name,
		Graph:       g,
		InputShape:  inputShape,
		SpecOnly:    !m.cfg.Numeric,
		HasBranches: hasBranches,
	}, nil
}

// classes resolves the classifier width.
func (c Config) classes(def int) int {
	if c.Classes > 0 {
		return c.Classes
	}
	return def
}

// inputHW resolves the input resolution.
func (c Config) inputHW(def int) int {
	if c.InputHW > 0 {
		return c.InputHW
	}
	return def
}
