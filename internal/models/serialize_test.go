package models

import (
	"bytes"
	"testing"

	"mulayer/internal/tensor"
)

func TestSaveLoadRoundTripNumerics(t *testing.T) {
	// A calibrated model must survive save/load with bit-identical
	// behavior under every pipeline.
	builders := []func(Config) (*Model, error){LeNet5, GoogLeNet, SqueezeNetV11, MobileNetV1}
	for _, build := range builders {
		orig, err := build(smallCfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := orig.Calibrate(calInputs(orig.InputShape, 2)); err != nil {
			t.Fatal(err)
		}

		var buf bytes.Buffer
		if err := orig.Save(&buf); err != nil {
			t.Fatalf("%s: save: %v", orig.Name, err)
		}
		loaded, err := Load(&buf)
		if err != nil {
			t.Fatalf("%s: load: %v", orig.Name, err)
		}

		if loaded.Name != orig.Name || loaded.InputShape != orig.InputShape {
			t.Fatalf("%s: metadata changed", orig.Name)
		}
		if loaded.InputParams != orig.InputParams || !loaded.Calibrated {
			t.Fatalf("%s: calibration state lost", orig.Name)
		}
		if loaded.HasBranches != orig.HasBranches {
			t.Fatalf("%s: branch flag lost", orig.Name)
		}
		if loaded.Graph.Len() != orig.Graph.Len() {
			t.Fatalf("%s: node count %d vs %d", orig.Name, loaded.Graph.Len(), orig.Graph.Len())
		}

		in := tensor.New(orig.InputShape)
		in.FillRandom(777, 1)
		a, err := orig.RunF32(in)
		if err != nil {
			t.Fatal(err)
		}
		b, err := loaded.RunF32(in)
		if err != nil {
			t.Fatal(err)
		}
		if a[orig.Graph.Output()].MaxAbsDiff(b[loaded.Graph.Output()]) != 0 {
			t.Fatalf("%s: loaded model computes differently", orig.Name)
		}
	}
}

func TestSaveLoadPreservesBranchGroups(t *testing.T) {
	orig, err := SqueezeNetV11(smallCfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := orig.Calibrate(calInputs(orig.InputShape, 1)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(loaded.Graph.BranchGroups()), len(orig.Graph.BranchGroups()); got != want {
		t.Fatalf("branch groups %d vs %d", got, want)
	}
}

func TestSaveRejectsSpecOnly(t *testing.T) {
	m, _ := VGG16(Config{})
	var buf bytes.Buffer
	if err := m.Save(&buf); err == nil {
		t.Fatal("spec-only save must fail")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewBufferString("not a gob stream")); err == nil {
		t.Fatal("garbage must fail to load")
	}
}

func TestSaveLoadUncalibrated(t *testing.T) {
	orig, err := LeNet5(Config{Numeric: true, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Calibrated {
		t.Fatal("uncalibrated model must load uncalibrated")
	}
	// It can be calibrated after loading.
	if err := loaded.Calibrate(calInputs(loaded.InputShape, 1)); err != nil {
		t.Fatal(err)
	}
}
