package models

import (
	"math"
	"testing"

	"mulayer/internal/graph"
	"mulayer/internal/nn"
	"mulayer/internal/quant"
	"mulayer/internal/tensor"
)

func TestResNet18FullSizeShapes(t *testing.T) {
	m, err := ResNet18(Config{})
	if err != nil {
		t.Fatal(err)
	}
	shapes, err := m.Graph.InferShapes()
	if err != nil {
		t.Fatal(err)
	}
	out := shapes[m.Graph.Output()]
	if out.C != 1000 || out.H != 1 || out.W != 1 {
		t.Fatalf("output %v", out)
	}
	cost, err := m.Graph.TotalCost()
	if err != nil {
		t.Fatal(err)
	}
	// ResNet-18 is ~1.8 GMACs at 224².
	if g := float64(cost.MACs) / 1e9; g < 1.5 || g > 2.2 {
		t.Fatalf("ResNet-18 MACs %.2fG outside [1.5, 2.2]", g)
	}
	adds, projs := 0, 0
	for i := 0; i < m.Graph.Len(); i++ {
		n := m.Graph.Node(graph.NodeID(i))
		if n.Layer.Kind() == nn.OpAdd {
			adds++
		}
		if c, ok := n.Layer.(*nn.Conv2D); ok && c.KH == 1 && c.StrideH == 2 {
			projs++
		}
	}
	if adds != 8 {
		t.Fatalf("8 residual adds expected, got %d", adds)
	}
	if projs != 3 {
		t.Fatalf("3 projection shortcuts expected, got %d", projs)
	}
}

func TestResNet18NumericAndCalibration(t *testing.T) {
	m, err := ResNet18(smallCfg)
	if err != nil {
		t.Fatal(err)
	}
	in := tensor.New(m.InputShape)
	in.FillRandom(17, 1)
	vals, err := m.RunF32(in)
	if err != nil {
		t.Fatal(err)
	}
	out := vals[m.Graph.Output()]
	var sum float64
	for _, v := range out.Data {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			t.Fatal("non-finite output")
		}
		sum += float64(v)
	}
	if math.Abs(sum-1) > 1e-3 {
		t.Fatalf("softmax sum %v", sum)
	}
	if err := m.Calibrate(calInputs(m.InputShape, 2)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < m.Graph.Len(); i++ {
		n := m.Graph.Node(graph.NodeID(i))
		if n.Layer.Kind() == nn.OpInput {
			continue
		}
		if qi := n.Layer.Quant(); qi == nil || !qi.Ready {
			t.Fatalf("layer %s not calibrated", n.Layer.Name())
		}
	}
}

func TestResNetResidualsAreNotBranchGroups(t *testing.T) {
	// Residual forks have an empty identity branch, which branch
	// distribution cannot represent (§5's groups are layer chains); the
	// detector must skip them rather than misclassify.
	m, _ := ResNet18(Config{})
	for _, bg := range m.Graph.BranchGroups() {
		for _, br := range bg.Branches {
			if len(br) == 0 {
				t.Fatal("empty branch leaked into a group")
			}
		}
	}
}

func TestAddLayerQuantizedPath(t *testing.T) {
	m, err := ResNet18(smallCfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Calibrate(calInputs(m.InputShape, 2)); err != nil {
		t.Fatal(err)
	}
	// Find a residual add and run its Q path against the F32 reference.
	in := tensor.New(m.InputShape)
	in.FillRandom(23, 1)
	vals, err := m.RunF32(in)
	if err != nil {
		t.Fatal(err)
	}
	shapes, _ := m.Graph.InferShapes()
	for i := 0; i < m.Graph.Len(); i++ {
		n := m.Graph.Node(graph.NodeID(i))
		add, ok := n.Layer.(*nn.Add)
		if !ok {
			continue
		}
		// Grids drawn from the exact tensors in play, so the only error is
		// quantization rounding (calibration-range clipping on unseen
		// inputs is a separate, expected effect).
		aID, bID := n.Inputs[0], n.Inputs[1]
		aMin, aMax := vals[aID].Range()
		bMin, bMax := vals[bID].Range()
		oMin, oMax := vals[n.ID].Range()
		aP := quant.ChooseParams(aMin, aMax)
		bP := quant.ChooseParams(bMin, bMax)
		oP := quant.ChooseParams(oMin, oMax)
		qa := tensor.Quantize(vals[aID], aP)
		qb := tensor.Quantize(vals[bID], bP)
		qout := tensor.NewQ(shapes[n.ID], oP)
		add.ForwardQ([]*tensor.QTensor{qa, qb}, qout, 0, shapes[n.ID].C)
		deq := tensor.Dequantize(qout)
		tol := float64(oP.Scale+aP.Scale+bP.Scale) * 0.75
		if d := deq.MaxAbsDiff(vals[n.ID]); d > tol {
			t.Fatalf("%s: quantized add error %v > %v", add.LayerName, d, tol)
		}
		return // one residual is enough
	}
	t.Fatal("no Add layer found")
}
