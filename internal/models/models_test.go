package models

import (
	"math"
	"testing"

	"mulayer/internal/graph"
	"mulayer/internal/nn"
	"mulayer/internal/tensor"
)

// smallCfg is the reduced numeric configuration used across the tests.
var smallCfg = Config{Numeric: true, InputHW: 32, WidthScale: 0.25, Classes: 10, Seed: 1}

func calInputs(shape tensor.Shape, n int) []*tensor.Tensor {
	out := make([]*tensor.Tensor, n)
	for i := range out {
		t := tensor.New(shape)
		t.FillRandom(uint64(1000+i), 1)
		out[i] = t
	}
	return out
}

func TestSpecOnlyFullSizeShapes(t *testing.T) {
	cases := []struct {
		build   func(Config) (*Model, error)
		classes int
		macsLo  float64 // expected full-size MACs (known values ±20%)
		macsHi  float64
	}{
		{GoogLeNet, 1000, 1.3e9, 2.1e9},      // ~1.6 GMACs
		{SqueezeNetV11, 1000, 0.25e9, 0.6e9}, // ~0.39 GMACs
		{VGG16, 1000, 13e9, 18e9},            // ~15.5 GMACs
		{AlexNet, 1000, 0.55e9, 1.0e9},       // ~0.72 GMACs
		{MobileNetV1, 1000, 0.45e9, 0.75e9},  // ~0.57 GMACs
	}
	for _, c := range cases {
		m, err := c.build(Config{})
		if err != nil {
			t.Fatal(err)
		}
		if !m.SpecOnly {
			t.Errorf("%s: default build must be spec-only", m.Name)
		}
		shapes, err := m.Graph.InferShapes()
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		out := shapes[m.Graph.Output()]
		if out.C != c.classes || out.H != 1 || out.W != 1 {
			t.Errorf("%s: output shape %v", m.Name, out)
		}
		cost, err := m.Graph.TotalCost()
		if err != nil {
			t.Fatal(err)
		}
		if float64(cost.MACs) < c.macsLo || float64(cost.MACs) > c.macsHi {
			t.Errorf("%s: %0.2f GMACs outside [%g, %g]", m.Name, float64(cost.MACs)/1e9, c.macsLo/1e9, c.macsHi/1e9)
		}
	}
}

func TestVGG16LayerCount(t *testing.T) {
	m, _ := VGG16(Config{})
	// 13 convs + 5 pools + 3 fc + softmax + input = 23.
	if m.Graph.Len() != 23 {
		t.Fatalf("VGG-16 nodes = %d, want 23", m.Graph.Len())
	}
}

func TestGoogLeNetBranchStructure(t *testing.T) {
	m, _ := GoogLeNet(Config{})
	if !m.HasBranches {
		t.Fatal("GoogLeNet must be branch-applicable (Table 1)")
	}
	groups := m.Graph.BranchGroups()
	if len(groups) != 9 {
		t.Fatalf("GoogLeNet has 9 inception modules, found %d groups", len(groups))
	}
	for _, g := range groups {
		if len(g.Branches) != 4 {
			t.Fatalf("inception module with %d branches", len(g.Branches))
		}
	}
}

func TestSqueezeNetBranchStructure(t *testing.T) {
	m, _ := SqueezeNetV11(Config{})
	groups := m.Graph.BranchGroups()
	if len(groups) != 8 {
		t.Fatalf("SqueezeNet v1.1 has 8 fire modules, found %d groups", len(groups))
	}
	for _, g := range groups {
		if len(g.Branches) != 2 {
			t.Fatalf("fire module with %d branches", len(g.Branches))
		}
	}
}

func TestNonBranchModelsHaveNoGroups(t *testing.T) {
	for _, build := range []func(Config) (*Model, error){VGG16, AlexNet, MobileNetV1, LeNet5} {
		m, _ := build(Config{})
		if m.HasBranches {
			t.Errorf("%s must not be branch-applicable", m.Name)
		}
		if len(m.Graph.BranchGroups()) != 0 {
			t.Errorf("%s: unexpected branch groups", m.Name)
		}
	}
}

func TestGoogLeNetInceptionOutputChannels(t *testing.T) {
	m, _ := GoogLeNet(Config{})
	shapes, _ := m.Graph.InferShapes()
	// inception_3a output: 64+128+32+32 = 256 channels at 28×28.
	for i := 0; i < m.Graph.Len(); i++ {
		n := m.Graph.Node(graph.NodeID(i))
		if n.Layer.Name() == "inception_3a/output" {
			s := shapes[n.ID]
			if s.C != 256 || s.H != 28 || s.W != 28 {
				t.Fatalf("inception_3a output %v, want 256x28x28", s)
			}
			return
		}
	}
	t.Fatal("inception_3a/output not found")
}

func TestMobileNetDepthwiseLayers(t *testing.T) {
	m, _ := MobileNetV1(Config{})
	dw := 0
	for i := 0; i < m.Graph.Len(); i++ {
		if m.Graph.Node(graph.NodeID(i)).Layer.Kind() == nn.OpDepthwise {
			dw++
		}
	}
	if dw != 13 {
		t.Fatalf("MobileNet has 13 depthwise layers, found %d", dw)
	}
}

func TestEvaluatedOrder(t *testing.T) {
	ms, err := Evaluated(Config{})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"GoogLeNet", "SqueezeNet v1.1", "VGG-16", "AlexNet", "MobileNet v1"}
	if len(ms) != len(want) {
		t.Fatalf("count %d", len(ms))
	}
	for i, m := range ms {
		if m.Name != want[i] {
			t.Errorf("slot %d: %s, want %s", i, m.Name, want[i])
		}
	}
}

func TestNumericRunF32AllModels(t *testing.T) {
	type entry struct {
		build func(Config) (*Model, error)
		cfg   Config
	}
	builders := []entry{
		{LeNet5, smallCfg},
		// AlexNet's stride-4 stem needs a larger input to survive its
		// three pooling stages.
		{AlexNet, Config{Numeric: true, InputHW: 67, WidthScale: 0.25, Classes: 10, Seed: 1}},
		{VGG16, smallCfg},
		{GoogLeNet, smallCfg},
		{SqueezeNetV11, smallCfg},
		{MobileNetV1, smallCfg},
	}
	for _, e := range builders {
		m, err := e.build(e.cfg)
		if err != nil {
			t.Fatal(err)
		}
		in := tensor.New(m.InputShape)
		in.FillRandom(7, 1)
		vals, err := m.RunF32(in)
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		out := vals[m.Graph.Output()]
		var sum float64
		for _, v := range out.Data {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				t.Fatalf("%s: non-finite output", m.Name)
			}
			sum += float64(v)
		}
		// Softmax output sums to ~1 per batch element.
		if math.Abs(sum-float64(out.Shape.N)) > 1e-3 {
			t.Fatalf("%s: softmax sum %v", m.Name, sum)
		}
	}
}

func TestSpecOnlyRunFails(t *testing.T) {
	m, _ := VGG16(Config{})
	in := tensor.New(m.InputShape)
	if _, err := m.RunF32(in); err == nil {
		t.Fatal("spec-only run must fail")
	}
	if err := m.CalibrateNaive(); err == nil {
		t.Fatal("spec-only naive calibration must fail")
	}
}

func TestCalibrateInstallsAllLayers(t *testing.T) {
	m, err := GoogLeNet(smallCfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Calibrate(calInputs(m.InputShape, 2)); err != nil {
		t.Fatal(err)
	}
	if !m.Calibrated {
		t.Fatal("flag")
	}
	for i := 0; i < m.Graph.Len(); i++ {
		n := m.Graph.Node(graph.NodeID(i))
		if n.Layer.Kind() == nn.OpInput {
			continue
		}
		qi := n.Layer.Quant()
		if qi == nil || !qi.Ready {
			t.Fatalf("layer %s not calibrated", n.Layer.Name())
		}
		if qi.Out.Scale <= 0 {
			t.Fatalf("layer %s has bad scale", n.Layer.Name())
		}
	}
	if m.InputParams.Scale <= 0 {
		t.Fatal("input params not set")
	}
}

func TestCalibrateRequiresInputs(t *testing.T) {
	m, _ := LeNet5(smallCfg)
	if err := m.Calibrate(nil); err == nil {
		t.Fatal("empty calibration set must fail")
	}
}

func TestNaiveBoundsExceedObserved(t *testing.T) {
	// The analytic worst-case bound must be (much) looser than observed
	// ranges — that's the mechanism behind the Figure 10 accuracy gap.
	mA, _ := LeNet5(smallCfg)
	if err := mA.Calibrate(calInputs(mA.InputShape, 2)); err != nil {
		t.Fatal(err)
	}
	mB, _ := LeNet5(smallCfg)
	if err := mB.CalibrateNaive(); err != nil {
		t.Fatal(err)
	}
	// Compare the scales on the last FC layer.
	var obsScale, naiveScale float32
	for i := 0; i < mA.Graph.Len(); i++ {
		n := mA.Graph.Node(graph.NodeID(i))
		if n.Layer.Name() == "fc3" {
			obsScale = n.Layer.Quant().Out.Scale
		}
	}
	for i := 0; i < mB.Graph.Len(); i++ {
		n := mB.Graph.Node(graph.NodeID(i))
		if n.Layer.Name() == "fc3" {
			naiveScale = n.Layer.Quant().Out.Scale
		}
	}
	if naiveScale <= obsScale*2 {
		t.Fatalf("naive scale %v not clearly coarser than observed %v", naiveScale, obsScale)
	}
}

func TestWeightDeterminism(t *testing.T) {
	a, _ := LeNet5(smallCfg)
	b, _ := LeNet5(smallCfg)
	in := tensor.New(a.InputShape)
	in.FillRandom(3, 1)
	va, _ := a.RunF32(in)
	vb, _ := b.RunF32(in)
	if va[a.Graph.Output()].MaxAbsDiff(vb[b.Graph.Output()]) != 0 {
		t.Fatal("same config+seed must give identical networks")
	}
	c, _ := LeNet5(Config{Numeric: true, InputHW: 32, WidthScale: 0.25, Classes: 10, Seed: 2})
	vc, _ := c.RunF32(in)
	if va[a.Graph.Output()].MaxAbsDiff(vc[c.Graph.Output()]) == 0 {
		t.Fatal("different seeds should differ")
	}
}

func TestWidthScaleReducesCost(t *testing.T) {
	full, _ := VGG16(Config{})
	quarter, _ := VGG16(Config{WidthScale: 0.25})
	cf, _ := full.Graph.TotalCost()
	cq, _ := quarter.Graph.TotalCost()
	ratio := float64(cf.MACs) / float64(cq.MACs)
	// Channel scaling on both sides of each conv ≈ 16× fewer MACs.
	if ratio < 10 || ratio > 22 {
		t.Fatalf("quarter-width MAC ratio %v", ratio)
	}
}
