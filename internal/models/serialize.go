package models

import (
	"encoding/gob"
	"fmt"
	"io"

	"mulayer/internal/graph"
	"mulayer/internal/nn"
	"mulayer/internal/quant"
	"mulayer/internal/tensor"
)

// Model serialization: Save writes a numeric model — graph structure,
// weights, and calibration state — in a self-contained gob stream; Load
// reconstructs it, rebuilding the quantized weight caches from the
// calibrated grids. This is the persistence story a deployed runtime
// needs: calibrate once, ship the artifact, load on device.

// savedModel is the on-disk representation (gob-encoded).
type savedModel struct {
	Version     int
	Name        string
	GraphName   string
	InputShape  tensor.Shape
	InputParams quant.Params
	Calibrated  bool
	HasBranches bool
	Output      graph.NodeID
	Nodes       []savedNode
}

const saveVersion = 1

// savedNode captures one layer; exactly one of the payload pointers is
// set, mirroring the layer's concrete type.
type savedNode struct {
	Inputs  []graph.NodeID
	Input   *savedInput
	Conv    *savedConv
	FC      *savedFC
	Pool    *savedPool
	ReLU    *savedSimple
	LRN     *savedLRN
	Concat  *savedSimple
	Softmax *savedSimple
	Add     *savedAdd
}

type savedAdd struct {
	Name string
	Act  quant.Activation
	Q    savedQuant
}

type savedInput struct {
	Name  string
	Shape tensor.Shape
}

type savedQuant struct {
	In, Out quant.Params
	Ready   bool
}

type savedConv struct {
	Name             string
	InC, OutC        int
	KH, KW           int
	StrideH, StrideW int
	PadH, PadW       int
	Groups           int
	Act              quant.Activation
	PerChannel       bool
	WShape           tensor.Shape
	W                []float32
	Bias             []float32
	Q                savedQuant
}

type savedFC struct {
	Name       string
	InFeatures int
	OutC       int
	Act        quant.Activation
	WShape     tensor.Shape
	W          []float32
	Bias       []float32
	Q          savedQuant
}

type savedPool struct {
	Name             string
	Max              bool
	KH, KW           int
	StrideH, StrideW int
	PadH, PadW       int
	Global           bool
	CountIncludePad  bool
	Q                savedQuant
}

type savedLRN struct {
	Name           string
	Size           int
	K, Alpha, Beta float32
	Q              savedQuant
}

type savedSimple struct {
	Name string
	Q    savedQuant
}

func toSavedQuant(qi nn.QuantInfo) savedQuant {
	return savedQuant{In: qi.In, Out: qi.Out, Ready: qi.Ready}
}

// Save serializes a numeric model. Spec-only models have no weights to
// persist and are rejected.
func (m *Model) Save(w io.Writer) error {
	if m.SpecOnly {
		return fmt.Errorf("models: cannot save spec-only model %s", m.Name)
	}
	sm := savedModel{
		Version:     saveVersion,
		Name:        m.Name,
		GraphName:   m.Graph.Name,
		InputShape:  m.InputShape,
		InputParams: m.InputParams,
		Calibrated:  m.Calibrated,
		HasBranches: m.HasBranches,
		Output:      m.Graph.Output(),
	}
	for i := 0; i < m.Graph.Len(); i++ {
		n := m.Graph.Node(graph.NodeID(i))
		sn := savedNode{Inputs: append([]graph.NodeID(nil), n.Inputs...)}
		switch l := n.Layer.(type) {
		case *nn.Input:
			sn.Input = &savedInput{Name: l.LayerName, Shape: l.Shape}
		case *nn.Conv2D:
			sn.Conv = &savedConv{
				Name: l.LayerName, InC: l.InC, OutC: l.OutC, KH: l.KH, KW: l.KW,
				StrideH: l.StrideH, StrideW: l.StrideW, PadH: l.PadH, PadW: l.PadW,
				Groups: l.Groups, Act: l.Act, PerChannel: l.PerChannelW,
				WShape: l.W.Shape, W: l.W.Data, Bias: l.Bias, Q: toSavedQuant(l.QI),
			}
		case *nn.FullyConnected:
			sn.FC = &savedFC{
				Name: l.LayerName, InFeatures: l.InFeatures, OutC: l.OutC, Act: l.Act,
				WShape: l.W.Shape, W: l.W.Data, Bias: l.Bias, Q: toSavedQuant(l.QI),
			}
		case *nn.Pool:
			sn.Pool = &savedPool{
				Name: l.LayerName, Max: l.Max, KH: l.KH, KW: l.KW,
				StrideH: l.StrideH, StrideW: l.StrideW, PadH: l.PadH, PadW: l.PadW,
				Global: l.Global, CountIncludePad: l.CountIncludePad, Q: toSavedQuant(l.QI),
			}
		case *nn.ReLU:
			sn.ReLU = &savedSimple{Name: l.LayerName, Q: toSavedQuant(l.QI)}
		case *nn.LRN:
			sn.LRN = &savedLRN{Name: l.LayerName, Size: l.Size, K: l.K, Alpha: l.Alpha, Beta: l.Beta, Q: toSavedQuant(l.QI)}
		case *nn.Concat:
			sn.Concat = &savedSimple{Name: l.LayerName, Q: toSavedQuant(l.QI)}
		case *nn.Softmax:
			sn.Softmax = &savedSimple{Name: l.LayerName, Q: toSavedQuant(l.QI)}
		case *nn.Add:
			sn.Add = &savedAdd{Name: l.LayerName, Act: l.Act, Q: toSavedQuant(l.QI)}
		default:
			return fmt.Errorf("models: cannot serialize layer type %T", n.Layer)
		}
		sm.Nodes = append(sm.Nodes, sn)
	}
	return gob.NewEncoder(w).Encode(&sm)
}

// Load reconstructs a model saved by Save, rebuilding the integer weight
// caches of calibrated layers so the loaded model is immediately runnable
// under every pipeline.
func Load(r io.Reader) (*Model, error) {
	var sm savedModel
	if err := gob.NewDecoder(r).Decode(&sm); err != nil {
		return nil, fmt.Errorf("models: decoding: %w", err)
	}
	if sm.Version != saveVersion {
		return nil, fmt.Errorf("models: unsupported save version %d (want %d)", sm.Version, saveVersion)
	}
	b := graph.NewBuilder(sm.GraphName)
	for i, sn := range sm.Nodes {
		layer, isInput, err := rebuildLayer(sn)
		if err != nil {
			return nil, fmt.Errorf("models: node %d: %w", i, err)
		}
		if isInput {
			if got := b.Input(sn.Input.Shape); got != graph.NodeID(i) {
				return nil, fmt.Errorf("models: input node moved to %d", got)
			}
			continue
		}
		if got := b.Add(layer, sn.Inputs...); got != graph.NodeID(i) {
			return nil, fmt.Errorf("models: node renumbered to %d", got)
		}
	}
	g, err := b.Build(sm.Output)
	if err != nil {
		return nil, err
	}
	m := &Model{
		Name:        sm.Name,
		Graph:       g,
		InputShape:  sm.InputShape,
		InputParams: sm.InputParams,
		Calibrated:  sm.Calibrated,
		HasBranches: sm.HasBranches,
	}
	if _, err := g.InferShapes(); err != nil {
		return nil, fmt.Errorf("models: loaded graph is inconsistent: %w", err)
	}
	return m, nil
}

// rebuildLayer reconstructs one layer (and its caches when calibrated).
func rebuildLayer(sn savedNode) (nn.Layer, bool, error) {
	restore := func(q savedQuant, qi *nn.QuantInfo) {
		qi.In, qi.Out, qi.Ready = q.In, q.Out, q.Ready
	}
	switch {
	case sn.Input != nil:
		return nil, true, nil
	case sn.Conv != nil:
		c := sn.Conv
		l := &nn.Conv2D{
			LayerName: c.Name, InC: c.InC, OutC: c.OutC, KH: c.KH, KW: c.KW,
			StrideH: c.StrideH, StrideW: c.StrideW, PadH: c.PadH, PadW: c.PadW,
			Groups: c.Groups, Act: c.Act, PerChannelW: c.PerChannel,
			W: tensor.NewFrom(c.WShape, c.W), Bias: c.Bias,
		}
		if c.Q.Ready {
			l.SetQuant(c.Q.In, c.Q.Out) // rebuilds wq/biasQ/half caches
		}
		return l, false, nil
	case sn.FC != nil:
		f := sn.FC
		l := &nn.FullyConnected{
			LayerName: f.Name, InFeatures: f.InFeatures, OutC: f.OutC, Act: f.Act,
			W: tensor.NewFrom(f.WShape, f.W), Bias: f.Bias,
		}
		if f.Q.Ready {
			l.SetQuant(f.Q.In, f.Q.Out)
		}
		return l, false, nil
	case sn.Pool != nil:
		p := sn.Pool
		l := &nn.Pool{
			LayerName: p.Name, Max: p.Max, KH: p.KH, KW: p.KW,
			StrideH: p.StrideH, StrideW: p.StrideW, PadH: p.PadH, PadW: p.PadW,
			Global: p.Global, CountIncludePad: p.CountIncludePad,
		}
		restore(p.Q, &l.QI)
		return l, false, nil
	case sn.ReLU != nil:
		l := &nn.ReLU{LayerName: sn.ReLU.Name}
		restore(sn.ReLU.Q, &l.QI)
		return l, false, nil
	case sn.LRN != nil:
		d := sn.LRN
		l := &nn.LRN{LayerName: d.Name, Size: d.Size, K: d.K, Alpha: d.Alpha, Beta: d.Beta}
		restore(d.Q, &l.QI)
		return l, false, nil
	case sn.Concat != nil:
		l := &nn.Concat{LayerName: sn.Concat.Name}
		restore(sn.Concat.Q, &l.QI)
		return l, false, nil
	case sn.Softmax != nil:
		l := &nn.Softmax{LayerName: sn.Softmax.Name}
		restore(sn.Softmax.Q, &l.QI)
		return l, false, nil
	case sn.Add != nil:
		l := &nn.Add{LayerName: sn.Add.Name, Act: sn.Add.Act}
		restore(sn.Add.Q, &l.QI)
		return l, false, nil
	}
	return nil, false, fmt.Errorf("empty node payload")
}
