package models

import (
	"fmt"
	"math"

	"mulayer/internal/graph"
	"mulayer/internal/nn"
	"mulayer/internal/quant"
	"mulayer/internal/tensor"
)

// f32Forwarder matches every layer's F32 pipeline.
type f32Forwarder interface {
	ForwardF32(ins []*tensor.Tensor, out *tensor.Tensor, c0, c1 int)
}

// RunF32 executes the network in the reference F32 pipeline and returns
// every node's activation. It is the calibration and accuracy-evaluation
// workhorse; the exec package has its own simulated-run machinery.
func (m *Model) RunF32(input *tensor.Tensor) (map[graph.NodeID]*tensor.Tensor, error) {
	if m.SpecOnly {
		return nil, fmt.Errorf("models: %s is spec-only; build with Config.Numeric", m.Name)
	}
	if input.Shape != m.InputShape {
		return nil, fmt.Errorf("models: input shape %v, want %v", input.Shape, m.InputShape)
	}
	g := m.Graph
	shapes, err := g.InferShapes()
	if err != nil {
		return nil, err
	}
	order, err := g.Toposort()
	if err != nil {
		return nil, err
	}
	vals := make(map[graph.NodeID]*tensor.Tensor, g.Len())
	for _, id := range order {
		n := g.Node(id)
		if n.Layer.Kind() == nn.OpInput {
			vals[id] = input
			continue
		}
		ins := make([]*tensor.Tensor, len(n.Inputs))
		for i, inID := range n.Inputs {
			ins[i] = vals[inID]
		}
		out := tensor.New(shapes[id])
		c1 := n.Layer.SplitChannels(g.InputShapes(id, shapes))
		if c1 < 1 {
			c1 = 1
		}
		n.Layer.(f32Forwarder).ForwardF32(ins, out, 0, c1)
		vals[id] = out
	}
	return vals, nil
}

// Calibrate observes per-node activation ranges over the calibration
// inputs and installs quantization grids on every layer. This is the
// post-training stand-in for the fake-quantization range learning the
// paper assumes has already been applied to the network (§6); Figure 10
// labels the resulting configuration "QUInt8+FakeQuant".
func (m *Model) Calibrate(inputs []*tensor.Tensor) error {
	if len(inputs) == 0 {
		return fmt.Errorf("models: calibration needs at least one input")
	}
	g := m.Graph
	obs := make(map[graph.NodeID]*quant.Observer, g.Len())
	for i := 0; i < g.Len(); i++ {
		obs[graph.NodeID(i)] = quant.NewObserver()
	}
	for _, in := range inputs {
		vals, err := m.RunF32(in)
		if err != nil {
			return err
		}
		for id, v := range vals {
			obs[id].ObserveSlice(v.Data)
		}
	}
	params := make(map[graph.NodeID]quant.Params, g.Len())
	order, _ := g.Toposort()
	for _, id := range order {
		n := g.Node(id)
		switch l := n.Layer.(type) {
		case *nn.Input:
			params[id] = obs[id].Params()
			m.InputParams = params[id]
		default:
			m.installParams(n, l, params, obs[id].Params())
		}
	}
	m.Calibrated = true
	return nil
}

// CalibrateNaive installs activation grids from analytic worst-case bounds
// instead of observed ranges: each layer's output bound is the input bound
// times the largest absolute filter row sum. Bounds compound
// multiplicatively with depth, so deep networks get absurdly coarse
// quantization grids — reproducing the accuracy collapse Figure 10 shows
// for naive post-training QUInt8 (up to 50.7 percentage points on
// Inception-v4) without needing the real ImageNet pipeline.
func (m *Model) CalibrateNaive() error {
	if m.SpecOnly {
		return fmt.Errorf("models: %s is spec-only", m.Name)
	}
	g := m.Graph
	bound := make(map[graph.NodeID]float64, g.Len())
	params := make(map[graph.NodeID]quant.Params, g.Len())
	order, _ := g.Toposort()
	for _, id := range order {
		n := g.Node(id)
		switch l := n.Layer.(type) {
		case *nn.Input:
			bound[id] = 1 // synthetic inputs live in [-1, 1]
			params[id] = quant.ChooseParams(-1, 1)
			m.InputParams = params[id]
		case *nn.Conv2D:
			b := bound[n.Inputs[0]] * maxAbsRowSum(l.W.Data, rowLen(l.W.Shape))
			p := naiveParams(b, l.Act)
			bound[id] = b
			m.installParams(n, l, params, p)
		case *nn.FullyConnected:
			b := bound[n.Inputs[0]] * maxAbsRowSum(l.W.Data, l.InFeatures)
			p := naiveParams(b, l.Act)
			bound[id] = b
			m.installParams(n, l, params, p)
		case *nn.Softmax:
			bound[id] = 1
			m.installParams(n, l, params, quant.ChooseParams(0, 1))
		default:
			// Shape-preserving layers keep the input bound.
			var b float64
			for _, in := range n.Inputs {
				if bound[in] > b {
					b = bound[in]
				}
			}
			bound[id] = b
			m.installParams(n, n.Layer, params, quant.ChooseParams(float32(-b), float32(b)))
		}
	}
	m.Calibrated = true
	return nil
}

// rowLen returns the per-output-channel weight count of an OIHW filter.
func rowLen(s tensor.Shape) int { return s.C * s.H * s.W }

// maxAbsRowSum returns max over rows of Σ|w|, the worst-case gain of one
// output channel.
func maxAbsRowSum(w []float32, k int) float64 {
	var best float64
	for i := 0; i+k <= len(w); i += k {
		var s float64
		for _, v := range w[i : i+k] {
			s += math.Abs(float64(v))
		}
		if s > best {
			best = s
		}
	}
	return best
}

// naiveParams converts a symmetric bound to quantization parameters,
// honoring the activation's sign constraint.
func naiveParams(b float64, act quant.Activation) quant.Params {
	lo := float32(-b)
	if act == quant.ActReLU || act == quant.ActReLU6 {
		lo = 0
	}
	return quant.ChooseParams(lo, float32(b))
}

// installParams wires one layer's quantization grids: weighted layers get
// SetQuant (building their integer caches); shape-preserving layers adopt
// their input grid as both input and output so the quantized kernels'
// equality preconditions hold.
func (m *Model) installParams(n *graph.Node, layer nn.Layer, params map[graph.NodeID]quant.Params, observed quant.Params) {
	inP := params[n.Inputs[0]]
	switch l := layer.(type) {
	case *nn.Conv2D:
		l.SetQuant(inP, observed)
		params[n.ID] = observed
	case *nn.FullyConnected:
		l.SetQuant(inP, observed)
		params[n.ID] = observed
	case *nn.Pool:
		l.QI = nn.QuantInfo{In: inP, Out: inP, Ready: true}
		params[n.ID] = inP
	case *nn.ReLU:
		l.QI = nn.QuantInfo{In: inP, Out: inP, Ready: true}
		params[n.ID] = inP
	case *nn.LRN:
		l.QI = nn.QuantInfo{In: inP, Out: observed, Ready: true}
		params[n.ID] = observed
	case *nn.Concat:
		l.QI = nn.QuantInfo{Out: observed, Ready: true}
		params[n.ID] = observed
	case *nn.Add:
		l.QI = nn.QuantInfo{In: inP, Out: observed, Ready: true}
		params[n.ID] = observed
	case *nn.Softmax:
		out := quant.ChooseParams(0, 1)
		l.QI = nn.QuantInfo{In: inP, Out: out, Ready: true}
		params[n.ID] = out
	default:
		params[n.ID] = inP
	}
}
