package trace

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func testTrace(id string) *Trace {
	return New(id, "lenet5", "mulayer", "exynos", 1, time.Unix(1000, 0), true)
}

func TestSpanTree(t *testing.T) {
	tr := testTrace("t1")
	q := tr.Add("queue", 0, 0, 2*time.Millisecond)
	tr.Add("batch-window", q, time.Millisecond, 2*time.Millisecond)
	tr.Add("execute", 0, 2*time.Millisecond, 5*time.Millisecond, Attr{Key: "device", Val: "d0"})
	tr.Finish(5*time.Millisecond, nil)

	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(spans))
	}
	if spans[0].Name != "request" || spans[0].Parent != -1 || spans[0].End != 5*time.Millisecond {
		t.Fatalf("root span wrong: %+v", spans[0])
	}
	if spans[2].Parent != q {
		t.Fatalf("batch-window parent = %d, want %d", spans[2].Parent, q)
	}
	if tr.Wall() != 5*time.Millisecond {
		t.Fatalf("Wall = %v", tr.Wall())
	}
	if tr.Err() != "" {
		t.Fatalf("Err = %q, want empty", tr.Err())
	}
}

func TestFinishRecordsError(t *testing.T) {
	tr := testTrace("t1")
	tr.Finish(time.Millisecond, fmt.Errorf("deadline exceeded"))
	if tr.Err() != "deadline exceeded" {
		t.Fatalf("Err = %q", tr.Err())
	}
}

func TestOffsetClampsNegative(t *testing.T) {
	tr := testTrace("t1")
	if got := tr.Offset(tr.Begin.Add(-time.Second)); got != 0 {
		t.Fatalf("Offset before Begin = %v, want 0", got)
	}
	if got := tr.Offset(tr.Begin.Add(3 * time.Millisecond)); got != 3*time.Millisecond {
		t.Fatalf("Offset = %v", got)
	}
}

func TestAddClampsBackwardSpan(t *testing.T) {
	tr := testTrace("t1")
	id := tr.Add("stage", 0, 5*time.Millisecond, time.Millisecond)
	s := tr.Spans()[id]
	if s.End != s.Start {
		t.Fatalf("backward span not clamped: %+v", s)
	}
}

func TestErrorRatio(t *testing.T) {
	k := KernelSpan{Predicted: 2 * time.Millisecond, Actual: time.Millisecond}
	if got := k.ErrorRatio(); got != 2 {
		t.Fatalf("ErrorRatio = %v, want 2", got)
	}
	if got := (KernelSpan{Predicted: time.Millisecond}).ErrorRatio(); got != 0 {
		t.Fatalf("zero-actual ErrorRatio = %v, want 0", got)
	}
}

func TestTopKernels(t *testing.T) {
	tr := testTrace("t1")
	if tr.TopKernels(3) != nil {
		t.Fatal("TopKernels on kernel-less trace should be nil")
	}
	c := &Capture{Device: "d0", Spans: []KernelSpan{
		{Label: "a", Start: 0, End: time.Millisecond},
		{Label: "b", Start: 0, End: 5 * time.Millisecond},
		{Label: "c", Start: 0, End: 3 * time.Millisecond},
		{Label: "d", Start: 0, End: 2 * time.Millisecond},
	}}
	tr.AttachKernels(c)
	top := tr.TopKernels(3)
	if len(top) != 3 || top[0].Label != "b" || top[1].Label != "c" || top[2].Label != "d" {
		t.Fatalf("TopKernels = %+v", top)
	}
	// The attached capture must not be reordered by the sort.
	if c.Spans[0].Label != "a" {
		t.Fatalf("TopKernels mutated the shared capture: %+v", c.Spans)
	}
}

// TestSharedCaptureConcurrent exercises the batching contract under
// -race: one worker builds a capture, many traced batch members attach
// and export it concurrently.
func TestSharedCaptureConcurrent(t *testing.T) {
	c := &Capture{Device: "d0", Rows: 8}
	for i := 0; i < 20; i++ {
		c.Spans = append(c.Spans, KernelSpan{
			Proc: "CPU", Side: "CPU", Label: fmt.Sprintf("k%d", i), Kind: "conv",
			Start: time.Duration(i) * time.Millisecond, End: time.Duration(i+1) * time.Millisecond,
			P: 0.5, Rows: 8, Predicted: time.Millisecond, Actual: time.Millisecond,
		})
	}
	var wg sync.WaitGroup
	traces := make([]*Trace, 8)
	for i := range traces {
		traces[i] = testTrace(fmt.Sprintf("t%d", i))
		wg.Add(1)
		go func(tr *Trace) {
			defer wg.Done()
			tr.Add("queue", 0, 0, time.Millisecond)
			tr.AttachKernels(c)
			tr.Finish(2*time.Millisecond, nil)
			var buf bytes.Buffer
			if err := tr.WriteChrome(&buf); err != nil {
				t.Errorf("WriteChrome: %v", err)
			}
			_ = tr.TopKernels(3)
		}(traces[i])
	}
	wg.Wait()
	for _, tr := range traces {
		if tr.Kernels() != c {
			t.Fatal("member lost the shared capture")
		}
		if len(tr.Spans()) != 2 {
			t.Fatalf("member has %d spans, want 2 (demuxed per-member)", len(tr.Spans()))
		}
	}
}

// TestWriteChromeGolden pins the export shape: valid JSON array, both
// process groups, per-kernel proc + split-ratio + drift attrs.
func TestWriteChromeGolden(t *testing.T) {
	tr := testTrace("req-1")
	tr.SetDevice("exynos-0")
	tr.Add("queue", 0, 0, 2*time.Millisecond)
	tr.AttachKernels(&Capture{Device: "exynos-0", Rows: 1, Spans: []KernelSpan{
		{Proc: "BigCPU", Side: "CPU", Label: "conv1[cpu]", Kind: "conv",
			Start: 0, End: 3 * time.Millisecond, P: 0.25, Rows: 1,
			Predicted: 2 * time.Millisecond, Actual: 3 * time.Millisecond},
		{Proc: "Mali", Side: "GPU", Label: "conv1[gpu]", Kind: "conv",
			Start: 0, End: 2 * time.Millisecond, P: 0.75, Rows: 1,
			Predicted: 2 * time.Millisecond, Actual: 2 * time.Millisecond},
	}})
	tr.Finish(6*time.Millisecond, nil)

	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, buf.String())
	}

	// 2 process_name + 1 stages thread + 2 kernel threads + 2 stage spans
	// + 2 kernel spans.
	if len(events) != 9 {
		t.Fatalf("got %d events, want 9:\n%s", len(events), buf.String())
	}
	byName := map[string]map[string]any{}
	procs := map[float64]bool{}
	for _, ev := range events {
		name := ev["name"].(string)
		if ev["ph"] == "M" {
			if name == "process_name" {
				procs[ev["pid"].(float64)] = true
			}
			continue
		}
		byName[name] = ev
	}
	if !procs[1] || !procs[2] {
		t.Fatalf("missing process groups: %v", procs)
	}

	root := byName["request"]
	if root == nil {
		t.Fatal("no root request span")
	}
	args := root["args"].(map[string]any)
	if args["model"] != "lenet5" || args["device"] != "exynos-0" || args["sampled"] != true {
		t.Fatalf("root args wrong: %v", args)
	}
	if root["dur"].(float64) != 6000 {
		t.Fatalf("root dur = %v µs, want 6000", root["dur"])
	}

	k := byName["conv1[cpu]"]
	if k == nil {
		t.Fatal("no conv1[cpu] kernel span")
	}
	ka := k["args"].(map[string]any)
	if ka["proc"] != "CPU" || ka["p"] != 0.25 || ka["kind"] != "conv" {
		t.Fatalf("kernel attrs wrong: %v", ka)
	}
	ratio := ka["error_ratio"].(float64)
	if ratio < 0.66 || ratio > 0.67 {
		t.Fatalf("error_ratio = %v, want ≈0.667", ratio)
	}
	// The two kernels land on distinct device tracks.
	if byName["conv1[cpu]"]["tid"] == byName["conv1[gpu]"]["tid"] {
		t.Fatal("cpu and gpu kernels share a track")
	}
	if !strings.Contains(buf.String(), "simulated time") {
		t.Fatal("device process not labeled as simulated time")
	}
}

func TestWriteChromeNoKernels(t *testing.T) {
	tr := testTrace("t1")
	tr.Finish(time.Millisecond, fmt.Errorf("queue full"))
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	// process_name + thread_name + root span only; error attr present.
	if len(events) != 3 {
		t.Fatalf("got %d events, want 3", len(events))
	}
	if events[2]["args"].(map[string]any)["error"] != "queue full" {
		t.Fatalf("error attr missing: %v", events[2])
	}
}

func TestRingEviction(t *testing.T) {
	r := NewRing(3)
	if r.Cap() != 3 {
		t.Fatalf("Cap = %d", r.Cap())
	}
	for i := 0; i < 5; i++ {
		r.Add(testTrace(fmt.Sprintf("t%d", i)))
	}
	if r.Len() != 3 {
		t.Fatalf("Len = %d, want 3", r.Len())
	}
	list := r.List()
	if len(list) != 3 || list[0].ID != "t4" || list[1].ID != "t3" || list[2].ID != "t2" {
		ids := make([]string, len(list))
		for i, tr := range list {
			ids[i] = tr.ID
		}
		t.Fatalf("List = %v, want [t4 t3 t2]", ids)
	}
	if r.Get("t0") != nil {
		t.Fatal("evicted trace still retrievable")
	}
	if got := r.Get("t3"); got == nil || got.ID != "t3" {
		t.Fatalf("Get(t3) = %v", got)
	}
}

func TestRingMinCapacity(t *testing.T) {
	r := NewRing(0)
	r.Add(testTrace("a"))
	r.Add(testTrace("b"))
	if r.Len() != 1 || r.List()[0].ID != "b" {
		t.Fatalf("zero-cap ring should hold exactly the newest trace")
	}
}

func TestRingConcurrent(t *testing.T) {
	r := NewRing(8)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				r.Add(testTrace(fmt.Sprintf("g%d-%d", n, j)))
				r.List()
				r.Get(fmt.Sprintf("g%d-%d", n, j))
			}
		}(i)
	}
	wg.Wait()
	if r.Len() != 8 {
		t.Fatalf("Len = %d, want 8", r.Len())
	}
}
