// Package trace is the serving stack's per-request span recorder. A
// Trace is a small tree of wall-clock stage spans (admission → queue →
// batch window → device queue → plan lookup → execute) plus an attached
// Capture of simulated-time kernel spans produced by the executor's
// TraceHook. Traces are allocation-frugal — one mutex, one span slice,
// one shared read-only kernel capture — and export to the Chrome Trace
// Event Format (internal/tracefmt) so a request can be opened in
// Perfetto: process 1 shows the request's wall-clock stages, process 2
// shows the simulated device timeline with one lane per processor and
// per-kernel split-ratio and predictor-drift attributes.
//
// Concurrency: a Trace is written by the request's handler goroutine and
// the scheduler worker that serves its batch; every mutation and read
// goes through the Trace's mutex. A Capture is built by a single worker
// goroutine while it runs the batch and then attached, read-only, to
// every traced member of that batch — members share the capture without
// copying and demux per-member views at export time.
package trace

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"mulayer/internal/tracefmt"
)

// Attr is one key/value span attribute.
type Attr struct {
	Key string
	Val any
}

// Span is one wall-clock stage of a request, stored as offsets from the
// trace's begin time. Parent is the index of the enclosing span (-1 for
// the root), forming the request's span tree.
type Span struct {
	Name   string
	Parent int
	Start  time.Duration
	End    time.Duration
	Attrs  []Attr
}

// KernelSpan is one executed kernel in simulated device time, annotated
// with the split share it computed and the predictor's estimate of its
// duration — the raw material of the drift telemetry.
type KernelSpan struct {
	// Proc is the full processor name (the timeline track, e.g.
	// "Exynos7420-GPU(MaliT760@772MHz)").
	Proc string
	// Side is the short processor tag: "CPU", "GPU", or "NPU".
	Side  string
	Label string
	Kind  string
	// Start/End bound the kernel on the simulated timeline.
	Start time.Duration
	End   time.Duration
	// P is the share of the layer's output channels this kernel computed
	// (1 for a whole, unsplit layer).
	P    float64
	Rows int
	// Predicted is the latency predictor's estimate of the pure kernel
	// time for this share; Actual is the device cost model's. Both
	// exclude the kernel launch overhead.
	Predicted time.Duration
	Actual    time.Duration
}

// ErrorRatio is predicted/actual — 1.0 means the predictor was exact,
// >1 overestimates, <1 underestimates. Returns 0 when actual is zero.
func (k KernelSpan) ErrorRatio() float64 {
	if k.Actual <= 0 {
		return 0
	}
	return float64(k.Predicted) / float64(k.Actual)
}

// Capture is the kernel-span record of one batch execution. It is built
// by a single goroutine (the scheduler worker driving the batch) and
// MUST NOT be mutated after being attached to a trace: concurrent
// traced batch members share one capture by pointer.
type Capture struct {
	// Device is the serving device that ran the batch.
	Device string
	// Rows is the total fused row count of the batch.
	Rows  int
	Spans []KernelSpan
}

// Trace is one request's recording. The identity fields (ID, Model,
// Mechanism, SoC, Rows, Begin, Sampled) are set at New and never change;
// everything else is guarded by the mutex.
type Trace struct {
	ID        string
	Model     string
	Mechanism string
	SoC       string
	Rows      int
	// Begin anchors every span offset.
	Begin time.Time
	// Sampled is true when the head sampler chose this request (as
	// opposed to a slow-only capture that is kept only if it crosses the
	// always-trace threshold).
	Sampled bool

	mu      sync.Mutex
	device  string
	slow    bool
	wall    time.Duration
	errMsg  string
	spans   []Span
	kernels *Capture
}

// New starts a trace whose root "request" span opens at begin.
func New(id, model, mechanism, soc string, rows int, begin time.Time, sampled bool) *Trace {
	t := &Trace{ID: id, Model: model, Mechanism: mechanism, SoC: soc,
		Rows: rows, Begin: begin, Sampled: sampled}
	t.spans = append(t.spans, Span{Name: "request", Parent: -1})
	return t
}

// Offset converts an absolute time to a span offset from Begin, clamped
// to zero so clock jitter never produces negative timestamps.
func (t *Trace) Offset(tm time.Time) time.Duration {
	d := tm.Sub(t.Begin)
	if d < 0 {
		return 0
	}
	return d
}

// Add records one stage span under parent (0 is the root) and returns
// its index for use as a parent of finer spans.
func (t *Trace) Add(name string, parent int, start, end time.Duration, attrs ...Attr) int {
	if end < start {
		end = start
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.spans = append(t.spans, Span{Name: name, Parent: parent, Start: start, End: end, Attrs: attrs})
	return len(t.spans) - 1
}

// SetDevice records the serving device once placement is known.
func (t *Trace) SetDevice(name string) {
	t.mu.Lock()
	t.device = name
	t.mu.Unlock()
}

// Device returns the recorded serving device ("" before placement).
func (t *Trace) Device() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.device
}

// AttachKernels shares a batch execution's kernel capture with this
// trace. The capture must be complete (no further appends) before it is
// attached anywhere.
func (t *Trace) AttachKernels(c *Capture) {
	t.mu.Lock()
	t.kernels = c
	t.mu.Unlock()
}

// Kernels returns the attached capture (nil when execution never ran or
// the request failed before placement).
func (t *Trace) Kernels() *Capture {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.kernels
}

// MarkSlow flags the trace as a slow-request capture.
func (t *Trace) MarkSlow() {
	t.mu.Lock()
	t.slow = true
	t.mu.Unlock()
}

// Slow reports whether the trace crossed the always-trace threshold.
func (t *Trace) Slow() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.slow
}

// Finish closes the root span at wall and records the request's terminal
// error, if any.
func (t *Trace) Finish(wall time.Duration, err error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.wall = wall
	t.spans[0].End = wall
	if err != nil {
		t.errMsg = err.Error()
	}
}

// Wall returns the root span's duration (0 before Finish).
func (t *Trace) Wall() time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.wall
}

// Err returns the request's terminal error message ("" on success).
func (t *Trace) Err() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.errMsg
}

// Spans returns a copy of the stage spans recorded so far.
func (t *Trace) Spans() []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	return out
}

// TopKernels returns the n longest kernel spans, longest first — the
// "where did the time go" line of the slow-request log.
func (t *Trace) TopKernels(n int) []KernelSpan {
	c := t.Kernels()
	if c == nil || n <= 0 {
		return nil
	}
	spans := make([]KernelSpan, len(c.Spans))
	copy(spans, c.Spans)
	sort.SliceStable(spans, func(i, j int) bool {
		return spans[i].End-spans[i].Start > spans[j].End-spans[j].Start
	})
	if len(spans) > n {
		spans = spans[:n]
	}
	return spans
}

// Chrome Trace process ids: the request's wall-clock stages and the
// simulated device timeline are separate processes so Perfetto renders
// them as distinct groups with independent time tracks.
const (
	pidRequest = 1
	pidDevice  = 2
)

// WriteChrome exports the trace in the Chrome Trace Event Format.
func (t *Trace) WriteChrome(w io.Writer) error {
	t.mu.Lock()
	spans := make([]Span, len(t.spans))
	copy(spans, t.spans)
	kernels := t.kernels
	device, errMsg, slow := t.device, t.errMsg, t.slow
	t.mu.Unlock()

	events := make([]tracefmt.Event, 0, len(spans)+8)
	events = append(events,
		tracefmt.ProcessName(pidRequest, "request "+t.ID+" (wall clock)"),
		tracefmt.ThreadName(pidRequest, 0, "stages"))
	for i, s := range spans {
		args := map[string]any{"parent": s.Parent}
		if i == 0 {
			args["model"] = t.Model
			args["mechanism"] = t.Mechanism
			args["soc"] = t.SoC
			args["rows"] = t.Rows
			args["sampled"] = t.Sampled
			args["slow"] = slow
			if device != "" {
				args["device"] = device
			}
			if errMsg != "" {
				args["error"] = errMsg
			}
		}
		for _, a := range s.Attrs {
			args[a.Key] = a.Val
		}
		events = append(events, tracefmt.Complete(s.Name, "stage", pidRequest, 0, s.Start, s.End-s.Start, args))
	}

	if kernels != nil {
		events = append(events, tracefmt.ProcessName(pidDevice, "device "+kernels.Device+" (simulated time)"))
		tracks := tracefmt.NewTracks()
		for _, k := range kernels.Spans {
			tracks.ID(k.Proc)
		}
		for tid, name := range tracks.Names() {
			events = append(events, tracefmt.ThreadName(pidDevice, tid, name))
		}
		for _, k := range kernels.Spans {
			args := map[string]any{
				"proc": k.Side,
				"kind": k.Kind,
				"p":    k.P,
				"rows": k.Rows,
			}
			if k.Actual > 0 {
				args["predicted_us"] = tracefmt.Micros(k.Predicted)
				args["actual_us"] = tracefmt.Micros(k.Actual)
				args["error_ratio"] = k.ErrorRatio()
			}
			events = append(events, tracefmt.Complete(k.Label, "kernel", pidDevice, tracks.ID(k.Proc),
				k.Start, k.End-k.Start, args))
		}
	}
	return tracefmt.Write(w, events)
}

// Ring is a bounded, concurrency-safe buffer of recent traces; adding
// past capacity evicts the oldest. The serving layer keeps one ring and
// serves it at /debug/traces.
type Ring struct {
	mu  sync.Mutex
	max int
	buf []*Trace
}

// NewRing returns a ring holding at most max traces (minimum 1).
func NewRing(max int) *Ring {
	if max < 1 {
		max = 1
	}
	return &Ring{max: max}
}

// Add appends a trace, evicting the oldest when full.
func (r *Ring) Add(t *Trace) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.buf) == r.max {
		copy(r.buf, r.buf[1:])
		r.buf[len(r.buf)-1] = t
		return
	}
	r.buf = append(r.buf, t)
}

// Get returns the trace with the given id, or nil.
func (r *Ring) Get(id string) *Trace {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := len(r.buf) - 1; i >= 0; i-- {
		if r.buf[i].ID == id {
			return r.buf[i]
		}
	}
	return nil
}

// List returns the held traces, newest first.
func (r *Ring) List() []*Trace {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Trace, len(r.buf))
	for i, t := range r.buf {
		out[len(r.buf)-1-i] = t
	}
	return out
}

// Len returns the number of held traces.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.buf)
}

// Cap returns the ring's capacity.
func (r *Ring) Cap() int { return r.max }

// String implements fmt.Stringer for debug logging.
func (t *Trace) String() string {
	return fmt.Sprintf("trace %s %s wall=%s spans=%d", t.ID, t.Model, t.Wall(), len(t.Spans()))
}
