package f16

import (
	"math"
	"testing"
)

// FuzzFromFloat32 cross-checks the production converter against the
// bit-level nearest-even reference on arbitrary inputs.
// Run with `go test -fuzz=FuzzFromFloat32 ./internal/f16` to explore; the
// seed corpus runs in every ordinary `go test`.
func FuzzFromFloat32(f *testing.F) {
	seeds := []float32{
		0, 1, -1, 65504, 65520, -65536, 5.96e-8, 2.98e-8,
		float32(math.Inf(1)), float32(math.NaN()), 0.1, 3.14159,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, x float32) {
		got := FromFloat32(x)
		if math.IsNaN(float64(x)) {
			if !got.IsNaN() {
				t.Fatalf("NaN input produced %#04x", got)
			}
			return
		}
		want := refFromFloat64(float64(x))
		if got != want {
			t.Fatalf("FromFloat32(%g) = %#04x, reference %#04x", x, got, want)
		}
		// Decoding must round-trip: re-encoding the decoded value is a
		// fixed point.
		if again := FromFloat32(got.Float32()); again != got {
			t.Fatalf("decode/encode not a fixed point: %#04x -> %#04x", got, again)
		}
	})
}

// FuzzArithmetic checks algebraic sanity of the software half ALU.
func FuzzArithmetic(f *testing.F) {
	f.Add(uint16(0x3c00), uint16(0x4000))
	f.Add(uint16(0x0001), uint16(0x8001))
	f.Add(uint16(0x7bff), uint16(0x7bff))
	f.Fuzz(func(t *testing.T, a, b uint16) {
		x, y := FromBits(a), FromBits(b)
		if x.IsNaN() || y.IsNaN() {
			return
		}
		// Commutativity (modulo signed zeros).
		s1, s2 := Add(x, y), Add(y, x)
		if s1 != s2 && !(s1.IsZero() && s2.IsZero()) && !(s1.IsNaN() && s2.IsNaN()) {
			t.Fatalf("add not commutative: %#04x vs %#04x", s1, s2)
		}
		p1, p2 := Mul(x, y), Mul(y, x)
		if p1 != p2 && !(p1.IsNaN() && p2.IsNaN()) {
			t.Fatalf("mul not commutative: %#04x vs %#04x", p1, p2)
		}
		// Neg is an involution.
		if x.Neg().Neg() != x {
			t.Fatalf("neg not involutive for %#04x", a)
		}
		// |x| never negative.
		if x.Abs().Signbit() {
			t.Fatalf("abs produced a negative for %#04x", a)
		}
	})
}
