package f16

import (
	"math"
	"testing"
	"testing/quick"
)

// refFromFloat64 is an independent reference conversion: it finds the
// binary16 value nearest to f (ties to even) by scanning the candidate
// neighborhood with exact float64 arithmetic. Slow but obviously correct.
func refFromFloat64(f float64) F16 {
	if math.IsNaN(f) {
		return NaN
	}
	if f > 65519.999 { // halfway point between MaxValue and 2^16
		return Inf
	}
	if f < -65519.999 {
		return NegInf
	}
	// Scan all finite half values is 63488*2 candidates; instead binary
	// search on the ordered mapping of non-negative halves.
	neg := math.Signbit(f)
	af := math.Abs(f)
	lo, hi := uint16(0), uint16(0x7c00) // [0, +Inf]
	for lo+1 < hi {
		mid := (lo + hi) / 2
		if F16(mid).Float64() <= af {
			lo = mid
		} else {
			hi = mid
		}
	}
	// af lies in [val(lo), val(hi)); pick nearest, ties to even.
	vlo, vhi := F16(lo).Float64(), F16(hi).Float64()
	var pick uint16
	switch {
	case af-vlo < vhi-af:
		pick = lo
	case af-vlo > vhi-af:
		pick = hi
	default: // exact tie → even significand
		if lo%2 == 0 {
			pick = lo
		} else {
			pick = hi
		}
	}
	if pick == 0x7c00 && !math.IsInf(af, 1) && af <= 65519.999 {
		// Values in (65504, 65520) round down per RNE since 65520 is the
		// midpoint; the scan above already handles this via the pick logic,
		// but Inf as hi has value +Inf so distance math needs the guard.
		if af-vlo <= 16 {
			pick = 0x7bff
		}
	}
	r := F16(pick)
	if neg {
		r |= 0x8000
	}
	return r
}

func TestRoundTripAllBitPatterns(t *testing.T) {
	for b := 0; b <= 0xffff; b++ {
		h := FromBits(uint16(b))
		if h.IsNaN() {
			got := FromFloat32(h.Float32())
			if !got.IsNaN() {
				t.Fatalf("NaN pattern %#04x round-tripped to non-NaN %#04x", b, got)
			}
			continue
		}
		got := FromFloat32(h.Float32())
		if got != h {
			t.Fatalf("bits %#04x: decode %v re-encode %#04x", b, h.Float32(), got)
		}
	}
}

func TestFromFloat32AgainstReference(t *testing.T) {
	cases := []float64{
		0, 1, -1, 0.5, 2, 65504, -65504, 65505, 65519, 65520, 65536,
		1e-8, -1e-8, 5.96e-8, 6.0e-8, 1.0 / 3.0, math.Pi, math.Sqrt2,
		2.980232238769531e-08,  // exactly half of the smallest subnormal
		2.9802322387695312e-08, // boundary neighborhood
		0.00006103515625,       // MinNormal
		0.00006103515625 / 2,
	}
	for i := 0; i < 4000; i++ {
		cases = append(cases, (float64(i)-2000)/7.3)
		cases = append(cases, math.Ldexp(1+float64(i)/4096, (i%40)-25))
	}
	for _, c := range cases {
		want := refFromFloat64(c)
		got := FromFloat32(float32(c))
		if got != want {
			t.Fatalf("FromFloat32(%g) = %#04x (%g), want %#04x (%g)",
				c, got, got.Float64(), want, want.Float64())
		}
	}
}

func TestFromFloat32PropertyNearest(t *testing.T) {
	f := func(x float32) bool {
		if math.IsNaN(float64(x)) {
			return FromFloat32(x).IsNaN()
		}
		got := FromFloat32(x)
		want := refFromFloat64(float64(x))
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Fatal(err)
	}
}

func TestSpecialValues(t *testing.T) {
	if !FromFloat32(float32(math.Inf(1))).IsInf(1) {
		t.Error("+Inf not preserved")
	}
	if !FromFloat32(float32(math.Inf(-1))).IsInf(-1) {
		t.Error("-Inf not preserved")
	}
	if !FromFloat32(float32(math.NaN())).IsNaN() {
		t.Error("NaN not preserved")
	}
	if FromFloat32(0).Bits() != 0 {
		t.Error("+0 bits")
	}
	if FromFloat32(float32(math.Copysign(0, -1))).Bits() != 0x8000 {
		t.Error("-0 bits")
	}
	if One.Float32() != 1.0 {
		t.Error("One constant")
	}
	if MaxValue.Float32() != 65504 {
		t.Errorf("MaxValue = %v", MaxValue.Float32())
	}
	if MinPositive.Float64() != math.Ldexp(1, -24) {
		t.Errorf("MinPositive = %v", MinPositive.Float64())
	}
	if MinNormal.Float64() != math.Ldexp(1, -14) {
		t.Errorf("MinNormal = %v", MinNormal.Float64())
	}
}

func TestOverflowToInf(t *testing.T) {
	if got := FromFloat32(65536); !got.IsInf(1) {
		t.Errorf("65536 → %#04x, want +Inf", got)
	}
	if got := FromFloat32(-1e9); !got.IsInf(-1) {
		t.Errorf("-1e9 → %#04x, want -Inf", got)
	}
	// 65520 is the midpoint between 65504 and 65536: RNE rounds to even,
	// and the candidate with even significand is 65536 (Inf side).
	if got := FromFloat32(65520); !got.IsInf(1) {
		t.Errorf("65520 → %#04x (%v), want +Inf", got, got.Float64())
	}
	if got := FromFloat32(65519); got != MaxValue {
		t.Errorf("65519 → %#04x (%v), want MaxValue", got, got.Float64())
	}
}

func TestUnderflowToZero(t *testing.T) {
	tiny := float32(math.Ldexp(1, -26)) // quarter of MinPositive
	if got := FromFloat32(tiny); got != Zero {
		t.Errorf("2^-26 → %#04x, want +0", got)
	}
	half := float32(math.Ldexp(1, -25)) // exactly half of MinPositive: ties-to-even → 0
	if got := FromFloat32(half); got != Zero {
		t.Errorf("2^-25 → %#04x, want +0 (ties to even)", got)
	}
	justOver := float32(math.Ldexp(1.0001, -25))
	if got := FromFloat32(justOver); got != MinPositive {
		t.Errorf("just over 2^-25 → %#04x, want MinPositive", got)
	}
}

func TestArithmeticRounds(t *testing.T) {
	// 1 + 2^-11 is exactly halfway between 1 and the next half (1+2^-10);
	// RNE keeps 1.
	a := One
	b := FromFloat32(float32(math.Ldexp(1, -11)))
	if got := Add(a, b); got != One {
		t.Errorf("1 + 2^-11 = %v, want 1", got.Float64())
	}
	// 1 + 1.5*2^-10 rounds up.
	c := FromFloat32(float32(1.5 * math.Ldexp(1, -10)))
	want := FromFloat32(float32(1 + math.Ldexp(1, -10)*2))
	if got := Add(a, c); got != want {
		t.Errorf("1 + 1.5*2^-10 = %v, want %v", got.Float64(), want.Float64())
	}
	if got := Mul(FromFloat32(3), FromFloat32(7)); got.Float32() != 21 {
		t.Errorf("3*7 = %v", got.Float32())
	}
	if got := Div(FromFloat32(1), FromFloat32(3)); math.Abs(got.Float64()-1.0/3.0) > 1e-3 {
		t.Errorf("1/3 = %v", got.Float64())
	}
}

func TestMulAddSingleRounding(t *testing.T) {
	// Pick operands where round(round(a*b)+c) differs from round(a*b+c).
	// a*b = 1+2^-10+2^-20 region: a = 1+2^-10 (h: 0x3c01), b = 1+2^-10.
	a := FromBits(0x3c01)
	got := MulAdd(a, a, Zero)
	exact := a.Float64() * a.Float64()
	want := refFromFloat64(exact)
	if got != want {
		t.Errorf("MulAdd fused rounding: got %v want %v", got.Float64(), want.Float64())
	}
}

func TestNegAbsSignbit(t *testing.T) {
	v := FromFloat32(2.5)
	if v.Neg().Float32() != -2.5 || !v.Neg().Signbit() {
		t.Error("Neg")
	}
	if v.Neg().Abs() != v {
		t.Error("Abs")
	}
	if !NegZero.IsZero() || !Zero.IsZero() {
		t.Error("IsZero")
	}
	if NaN.Neg().IsNaN() != true {
		t.Error("Neg(NaN) should stay NaN")
	}
}

func TestMinMax(t *testing.T) {
	a, b := FromFloat32(-3), FromFloat32(4)
	if Max(a, b) != b || Min(a, b) != a {
		t.Error("Min/Max ordering")
	}
	if !Less(a, b) || Less(b, a) {
		t.Error("Less")
	}
	if Less(NaN, a) || Less(a, NaN) {
		t.Error("Less with NaN must be false")
	}
}

func TestSliceConversions(t *testing.T) {
	src := []float32{0, 1, -2.5, 1e-6, 70000}
	hs := FromSlice32(src)
	back := ToSlice32(hs)
	if len(back) != len(src) {
		t.Fatal("length")
	}
	if back[0] != 0 || back[1] != 1 || back[2] != -2.5 {
		t.Error("exact values must survive")
	}
	if !math.IsInf(float64(back[4]), 1) {
		t.Error("70000 overflows to +Inf")
	}
}

func TestPropertyAddCommutative(t *testing.T) {
	f := func(a, b uint16) bool {
		x, y := FromBits(a), FromBits(b)
		if x.IsNaN() || y.IsNaN() {
			return true
		}
		s1, s2 := Add(x, y), Add(y, x)
		if s1.IsNaN() && s2.IsNaN() {
			return true // Inf + -Inf
		}
		// +0 and -0 compare equal numerically; bit patterns may differ only
		// for zero results of opposite-sign operands.
		return s1 == s2 || (s1.IsZero() && s2.IsZero())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyMulByOneIdentity(t *testing.T) {
	f := func(a uint16) bool {
		x := FromBits(a)
		if x.IsNaN() {
			return Mul(x, One).IsNaN()
		}
		return Mul(x, One) == x
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyAbsNonNegative(t *testing.T) {
	f := func(a uint16) bool {
		x := FromBits(a).Abs()
		return !x.Signbit()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkFromFloat32(b *testing.B) {
	var sink F16
	for i := 0; i < b.N; i++ {
		sink = FromFloat32(float32(i) * 0.001)
	}
	_ = sink
}

func BenchmarkFloat32(b *testing.B) {
	var sink float32
	for i := 0; i < b.N; i++ {
		sink = F16(i & 0x7bff).Float32()
	}
	_ = sink
}

func BenchmarkMulAdd(b *testing.B) {
	x, y, acc := FromFloat32(1.5), FromFloat32(0.75), Zero
	for i := 0; i < b.N; i++ {
		acc = MulAdd(x, y, acc)
	}
	_ = acc
}
