// Package f16 implements IEEE 754-2008 binary16 ("half precision")
// floating-point values in software.
//
// Mobile GPUs such as the ARM Mali family execute the OpenCL half data
// type natively; μLayer's processor-friendly quantization makes the GPU
// compute in F16. This package reproduces those numerics on hosts without
// native half-precision support: every arithmetic helper rounds its result
// back to binary16 (round-to-nearest-even), exactly as a half-precision ALU
// would.
package f16

import "math"

// F16 is an IEEE 754 binary16 value stored in its 16-bit interchange format:
// 1 sign bit, 5 exponent bits (bias 15), 10 significand bits.
type F16 uint16

// Frequently used constants, expressed in binary16 interchange format.
const (
	Zero        F16 = 0x0000 // +0
	NegZero     F16 = 0x8000 // -0
	One         F16 = 0x3c00 // 1.0
	Inf         F16 = 0x7c00 // +Inf
	NegInf      F16 = 0xfc00 // -Inf
	NaN         F16 = 0x7e00 // a quiet NaN
	MaxValue    F16 = 0x7bff // 65504, the largest finite binary16
	MinNormal   F16 = 0x0400 // 2^-14, the smallest positive normal
	MinPositive F16 = 0x0001 // 2^-24, the smallest positive subnormal
)

// FromFloat32 converts a float32 to binary16 using round-to-nearest-even,
// the default IEEE 754 rounding mode and the one implemented by hardware
// F32→F16 conversion instructions.
func FromFloat32(f float32) F16 {
	u := math.Float32bits(f)
	sign := (u >> 16) & 0x8000
	exp := u & 0x7f800000
	coef := u & 0x007fffff

	if exp == 0x7f800000 { // Inf or NaN
		if coef == 0 {
			return F16(sign | 0x7c00)
		}
		// NaN: keep the top significand bits, force a quiet NaN if the
		// truncated payload would read as infinity.
		nan := uint32(sign | 0x7c00 | coef>>13)
		if nan&0x03ff == 0 {
			nan |= 0x0200
		}
		return F16(nan)
	}

	halfExp := int32(exp>>23) - 127 + 15
	if halfExp >= 0x1f { // overflow → ±Inf
		return F16(sign | 0x7c00)
	}
	if halfExp <= 0 { // subnormal half or underflow to zero
		if 14-halfExp > 24 {
			return F16(sign) // rounds to ±0 even with RNE
		}
		c := coef | 0x00800000 // restore the implicit leading bit
		shift := uint32(14 - halfExp)
		halfCoef := c >> shift
		roundBit := uint32(1) << (shift - 1)
		if c&roundBit != 0 && c&(3*roundBit-1) != 0 {
			halfCoef++ // carries into the exponent field correctly
		}
		return F16(sign | halfCoef)
	}

	// Normal number: drop 13 significand bits with round-to-nearest-even.
	halfCoef := coef >> 13
	const roundBit = uint32(1) << 12
	h := sign | uint32(halfExp)<<10 | halfCoef
	if coef&roundBit != 0 && coef&(3*roundBit-1) != 0 {
		h++ // mantissa overflow carries into the exponent (may yield Inf)
	}
	return F16(h)
}

// Float32 converts the binary16 value to float32. The conversion is exact:
// every binary16 value is representable as a float32.
func (h F16) Float32() float32 {
	sign := uint32(h&0x8000) << 16
	exp := uint32(h>>10) & 0x1f
	coef := uint32(h & 0x03ff)

	switch exp {
	case 0x1f: // Inf or NaN
		if coef == 0 {
			return math.Float32frombits(sign | 0x7f800000)
		}
		return math.Float32frombits(sign | 0x7fc00000 | coef<<13)
	case 0:
		if coef == 0 {
			return math.Float32frombits(sign) // ±0
		}
		// Subnormal: renormalize into the float32 format.
		e := uint32(127 - 15 + 1)
		for coef&0x0400 == 0 {
			coef <<= 1
			e--
		}
		return math.Float32frombits(sign | e<<23 | (coef&0x03ff)<<13)
	default:
		return math.Float32frombits(sign | (exp+112)<<23 | coef<<13)
	}
}

// FromFloat64 converts a float64 to binary16. The double rounding through
// float32 is harmless here because float32 has more than twice the binary16
// significand width plus two, which makes the composition exact for the
// round-to-nearest-even mode.
func FromFloat64(f float64) F16 { return FromFloat32(float32(f)) }

// Float64 converts the binary16 value to float64 exactly.
func (h F16) Float64() float64 { return float64(h.Float32()) }

// Bits returns the raw interchange-format bits.
func (h F16) Bits() uint16 { return uint16(h) }

// FromBits reinterprets raw interchange-format bits as an F16.
func FromBits(b uint16) F16 { return F16(b) }

// IsNaN reports whether h is an IEEE 754 "not-a-number" value.
func (h F16) IsNaN() bool { return h&0x7c00 == 0x7c00 && h&0x03ff != 0 }

// IsInf reports whether h is an infinity, according to sign:
// sign > 0 checks +Inf, sign < 0 checks -Inf, sign == 0 checks either.
func (h F16) IsInf(sign int) bool {
	if h&0x7fff != 0x7c00 {
		return false
	}
	neg := h&0x8000 != 0
	return sign == 0 || (sign > 0 && !neg) || (sign < 0 && neg)
}

// IsZero reports whether h is +0 or -0.
func (h F16) IsZero() bool { return h&0x7fff == 0 }

// Signbit reports whether h is negative or negative zero.
func (h F16) Signbit() bool { return h&0x8000 != 0 }

// Neg returns -h. Negation is exact (a sign-bit flip) for all values
// including NaNs, mirroring hardware FNEG.
func (h F16) Neg() F16 { return h ^ 0x8000 }

// Abs returns |h| by clearing the sign bit.
func (h F16) Abs() F16 { return h &^ 0x8000 }

// Add returns a+b rounded to binary16, as a half-precision ALU would
// compute it.
func Add(a, b F16) F16 { return FromFloat32(a.Float32() + b.Float32()) }

// Sub returns a-b rounded to binary16.
func Sub(a, b F16) F16 { return FromFloat32(a.Float32() - b.Float32()) }

// Mul returns a*b rounded to binary16.
func Mul(a, b F16) F16 { return FromFloat32(a.Float32() * b.Float32()) }

// Div returns a/b rounded to binary16.
func Div(a, b F16) F16 { return FromFloat32(a.Float32() / b.Float32()) }

// MulAdd returns a*b+c with a single binary16 rounding of the final result,
// modeling a fused multiply-add unit. The intermediate product is held in
// float32, which is wide enough to make the fused semantics exact for
// binary16 operands.
func MulAdd(a, b, c F16) F16 {
	return FromFloat32(a.Float32()*b.Float32() + c.Float32())
}

// Less reports whether a < b under IEEE 754 ordering (NaN compares false).
func Less(a, b F16) bool { return a.Float32() < b.Float32() }

// Max returns the larger of a and b; NaNs propagate as in math.Max.
func Max(a, b F16) F16 {
	return FromFloat32(float32(math.Max(a.Float64(), b.Float64())))
}

// Min returns the smaller of a and b; NaNs propagate as in math.Min.
func Min(a, b F16) F16 {
	return FromFloat32(float32(math.Min(a.Float64(), b.Float64())))
}

// FromSlice32 converts a float32 slice to a freshly allocated F16 slice.
func FromSlice32(src []float32) []F16 {
	dst := make([]F16, len(src))
	for i, v := range src {
		dst[i] = FromFloat32(v)
	}
	return dst
}

// ToSlice32 converts an F16 slice to a freshly allocated float32 slice.
func ToSlice32(src []F16) []float32 {
	dst := make([]float32, len(src))
	for i, v := range src {
		dst[i] = v.Float32()
	}
	return dst
}
