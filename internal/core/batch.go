package core

import (
	"fmt"

	"mulayer/internal/exec"
	"mulayer/internal/models"
	"mulayer/internal/partition"
	"mulayer/internal/tensor"
)

// RunBatch plans and executes one fused micro-batch: every item's rows are
// fused into a single batched kernel per layer, so the batch pays one
// kernel launch and one weight read per layer regardless of the row count.
// Per-item deadlines ride on each item's Ctx — a cancelled item is dropped
// from the batch (its result carries the context error) without aborting
// its batchmates. A one-item, one-row batch is equivalent to RunContext.
func (rt *Runtime) RunBatch(m *models.Model, items []exec.FusedItem, rc RunConfig) (*exec.FusedResult, error) {
	plan, err := rt.Plan(m, rc)
	if err != nil {
		return nil, err
	}
	return rt.RunBatchPlan(m, plan, items, rc)
}

// ExecOpts carries per-execution hooks that must not influence planning —
// they live outside RunConfig so plan-cache keys (which embed RunConfig)
// stay comparable and hook-free.
type ExecOpts struct {
	// Faults, when non-nil, is consulted before every scheduled kernel; see
	// exec.Config.FaultHook. The serving layer installs a fault injector
	// here; cost estimation always runs with a nil hook.
	Faults exec.FaultHook
	// Trace, when non-nil, observes every booked kernel; see
	// exec.Config.TraceHook. The serving layer installs a per-batch kernel
	// recorder here when a batch member is traced; cost estimation always
	// runs with a nil hook.
	Trace exec.TraceHook
	// WatchdogFactor, when > 0, arms the executor's kernel stall watchdog;
	// see exec.Config.WatchdogFactor. Like the hooks it must not influence
	// planning, so it rides here rather than on RunConfig.
	WatchdogFactor float64
}

// RunBatchPlan is RunBatch under a previously built plan — the serving
// path, where the plan comes from a PlanCache instead of a per-request
// partitioner run. The plan must cover m's graph and match rc's pipeline
// (use PlanCache.Plan or Runtime.Plan with the same RunConfig).
func (rt *Runtime) RunBatchPlan(m *models.Model, plan *partition.Plan, items []exec.FusedItem, rc RunConfig) (*exec.FusedResult, error) {
	return rt.RunBatchPlanOpts(m, plan, items, rc, ExecOpts{})
}

// RunBatchPlanOpts is RunBatchPlan with execution hooks attached.
func (rt *Runtime) RunBatchPlanOpts(m *models.Model, plan *partition.Plan, items []exec.FusedItem, rc RunConfig, opts ExecOpts) (*exec.FusedResult, error) {
	o, err := rt.options(rc)
	if err != nil {
		return nil, err
	}
	if rc.Numeric {
		if m.SpecOnly {
			return nil, fmt.Errorf("core: model %s is spec-only; build it with Config.Numeric", m.Name)
		}
		if o.Pipe.Storage == tensor.QUInt8 && !m.Calibrated {
			return nil, fmt.Errorf("core: model %s is not calibrated; run Calibrate first", m.Name)
		}
	}
	cfg := exec.Config{
		SoC:            rt.soc,
		Pipe:           o.Pipe,
		Numeric:        rc.Numeric,
		InputParams:    m.InputParams,
		AsyncIssue:     !rc.DisableAsyncIssue,
		ZeroCopy:       !rc.DisableZeroCopy,
		FaultHook:      opts.Faults,
		TraceHook:      opts.Trace,
		WatchdogFactor: opts.WatchdogFactor,
	}
	return exec.RunFused(m.Graph, plan, items, cfg)
}
