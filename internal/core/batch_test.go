package core

import (
	"testing"
	"time"

	"mulayer/internal/exec"
	"mulayer/internal/models"
	"mulayer/internal/tensor"
)

func TestRunBatchOfOneMatchesRun(t *testing.T) {
	rt := newRT(t)
	m, err := models.GoogLeNet(models.Config{})
	if err != nil {
		t.Fatal(err)
	}
	rc := RunConfig{Mechanism: MechMuLayer}
	single, err := rt.Run(m, nil, rc)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := rt.RunBatch(m, []exec.FusedItem{{}}, rc)
	if err != nil {
		t.Fatal(err)
	}
	if batch.Rows != 1 {
		t.Fatalf("rows %d, want 1", batch.Rows)
	}
	if batch.Report.Latency != single.Report.Latency {
		t.Fatalf("one-row fused batch %v must cost exactly a single run %v", batch.Report.Latency, single.Report.Latency)
	}
}

func TestRunBatchAmortizesFixedCosts(t *testing.T) {
	rt := newRT(t)
	m, err := models.LeNet5(models.Config{})
	if err != nil {
		t.Fatal(err)
	}
	rc := RunConfig{Mechanism: MechMuLayer}
	single, err := rt.Run(m, nil, rc)
	if err != nil {
		t.Fatal(err)
	}
	const rows = 8
	batch, err := rt.RunBatch(m, []exec.FusedItem{{Rows: rows}}, rc)
	if err != nil {
		t.Fatal(err)
	}
	if batch.Rows != rows {
		t.Fatalf("rows %d, want %d", batch.Rows, rows)
	}
	// Fused rows share every kernel launch and weight read, so the batch
	// must be strictly cheaper than sequential runs — and on launch-bound
	// LeNet-5, by a wide margin.
	seq := time.Duration(rows) * single.Report.Latency
	if batch.Report.Latency >= seq {
		t.Fatalf("fused batch of %d (%v) not cheaper than %d sequential runs (%v)", rows, batch.Report.Latency, rows, seq)
	}
	if perRow := batch.Report.Latency / rows; perRow >= single.Report.Latency*2/3 {
		t.Fatalf("per-row cost %v barely below single-run %v; LeNet-5 batching must amortize launch overhead", perRow, single.Report.Latency)
	}
}

func TestRunBatchNumericGuards(t *testing.T) {
	rt := newRT(t)
	rc := RunConfig{Mechanism: MechMuLayer, Numeric: true}

	spec, _ := models.LeNet5(models.Config{})
	if _, err := rt.RunBatch(spec, []exec.FusedItem{{}}, rc); err == nil {
		t.Fatal("spec-only numeric batch must fail")
	}

	m, err := models.LeNet5(models.Config{Numeric: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	in := tensor.New(m.InputShape)
	in.FillRandom(1, 1)
	if _, err := rt.RunBatch(m, []exec.FusedItem{{Input: in}}, rc); err == nil {
		t.Fatal("uncalibrated quantized numeric batch must fail")
	}
	if err := m.Calibrate([]*tensor.Tensor{in}); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.RunBatch(m, []exec.FusedItem{{Input: in, Rows: 2}}, rc); err == nil {
		t.Fatal("numeric member with Rows > 1 must fail")
	}
	if _, err := rt.RunBatch(m, []exec.FusedItem{{}}, rc); err == nil {
		t.Fatal("numeric member without input must fail")
	}

	// And the happy path is bit-identical to the plain numeric run.
	single, err := rt.Run(m, in, rc)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := rt.RunBatch(m, []exec.FusedItem{{Input: in}, {Input: in}}, rc)
	if err != nil {
		t.Fatal(err)
	}
	for i, ir := range batch.Items {
		if ir.Err != nil {
			t.Fatalf("member %d: %v", i, ir.Err)
		}
		if d := ir.Output.MaxAbsDiff(single.Output); d != 0 {
			t.Fatalf("member %d output differs from single run by %v", i, d)
		}
	}
}

func TestPlanCacheMemoizes(t *testing.T) {
	rt := newRT(t)
	c := NewPlanCache(rt)
	if c.Runtime() != rt {
		t.Fatal("cache runtime accessor")
	}
	m, err := models.GoogLeNet(models.Config{})
	if err != nil {
		t.Fatal(err)
	}
	rc := RunConfig{Mechanism: MechMuLayer}

	p1, err := c.Plan(m, rc)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := c.Plan(m, rc)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Fatal("repeated Plan must return the cached plan, not re-partition")
	}
	// The Numeric flag is per-request and must not split the key.
	numRC := rc
	numRC.Numeric = true
	p3, err := c.Plan(m, numRC)
	if err != nil {
		t.Fatal(err)
	}
	if p3 != p1 {
		t.Fatal("numeric and cost-only requests must share one plan entry")
	}

	// Estimate agrees with a direct cost-only run and memoizes per row count.
	est, err := c.Estimate(m, rc, 1)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := rt.Run(m, nil, rc)
	if err != nil {
		t.Fatal(err)
	}
	if est != direct.Report.Latency {
		t.Fatalf("estimate %v != direct cost-only latency %v", est, direct.Report.Latency)
	}
	if _, err := c.Estimate(m, rc, 0); err != nil { // clamps to 1
		t.Fatal(err)
	}
	if _, err := c.Estimate(m, rc, 4); err != nil {
		t.Fatal(err)
	}
	s := c.Stats()
	if s.Plans != 1 || s.Makespans != 2 {
		t.Fatalf("want 1 plan and 2 memoized makespans, got %+v", s)
	}
	if s.Hits == 0 || s.Misses == 0 {
		t.Fatalf("counters not moving: %+v", s)
	}

	// A different mechanism is a different key.
	if _, err := c.Plan(m, RunConfig{Mechanism: MechCPUOnly, DType: tensor.QUInt8}); err != nil {
		t.Fatal(err)
	}
	if s := c.Stats(); s.Plans != 2 {
		t.Fatalf("want 2 plans after a second mechanism, got %+v", s)
	}

	// Planner errors surface, not cache.
	if _, err := c.Plan(m, RunConfig{Mechanism: Mechanism(42)}); err == nil {
		t.Fatal("unknown mechanism must fail through the cache")
	}
}

// TestPlanCachedHitState: PlanCached reports a miss on a fresh key and a
// hit afterwards, returning the same cached plan either way.
func TestPlanCachedHitState(t *testing.T) {
	c := NewPlanCache(newRT(t))
	m, err := models.LeNet5(models.Config{})
	if err != nil {
		t.Fatal(err)
	}
	rc := RunConfig{Mechanism: MechMuLayer}
	p1, hit, err := c.PlanCached(m, rc)
	if err != nil || hit {
		t.Fatalf("fresh key: hit=%v err=%v, want miss", hit, err)
	}
	p2, hit, err := c.PlanCached(m, rc)
	if err != nil || !hit {
		t.Fatalf("repeat key: hit=%v err=%v, want hit", hit, err)
	}
	if p1 != p2 {
		t.Fatal("PlanCached returned different plans for one key")
	}
}
