package core

import (
	"sync"
	"time"

	"mulayer/internal/exec"
	"mulayer/internal/models"
	"mulayer/internal/partition"
)

// planKey identifies one cached plan. The mechanism (plus the data type,
// which only the single-processor mechanisms consult) fully determines the
// partitioner's split ratios for a model, so the split ratio the issue's
// cache key names is an attribute of the entry, not a free key dimension.
// RunConfig.Unhealthy — the healthy-processor mask — is part of RunConfig
// and therefore of the key: a device running degraded caches its p=0/p=1
// plans separately from the healthy cooperative plans, and a recovery
// flips back to the healthy entries without invalidation.
type planKey struct {
	model string
	rc    RunConfig
}

// cacheRC strips the per-request fields that do not influence planning or
// cost so equivalent requests share one entry.
func cacheRC(rc RunConfig) RunConfig {
	rc.Numeric = false
	return rc
}

type planEntry struct {
	plan *partition.Plan
	// makespans memoizes the predicted fused-batch makespan per row count,
	// filled by cost-only simulation of the cached plan on first demand.
	makespans map[int]time.Duration
}

// PlanCache memoizes partitioner plans and predicted batched makespans for
// one Runtime, keyed by (model, run config, batch rows): the serving layer
// pays the partitioner and the latency predictor once per key instead of
// once per request. Safe for concurrent use; a miss builds the plan while
// holding the cache lock, serializing concurrent first requests for the
// same model instead of duplicating planner work.
type PlanCache struct {
	rt *Runtime

	mu      sync.Mutex
	entries map[planKey]*planEntry
	hits    int64
	misses  int64
}

// NewPlanCache returns an empty cache bound to rt.
func NewPlanCache(rt *Runtime) *PlanCache {
	return &PlanCache{rt: rt, entries: make(map[planKey]*planEntry)}
}

// Runtime returns the cache's runtime.
func (c *PlanCache) Runtime() *Runtime { return c.rt }

func (c *PlanCache) entry(m *models.Model, rc RunConfig) (*planEntry, error) {
	key := planKey{model: m.Name, rc: cacheRC(rc)}
	if e, ok := c.entries[key]; ok {
		c.hits++
		return e, nil
	}
	c.misses++
	plan, err := c.rt.Plan(m, rc)
	if err != nil {
		return nil, err
	}
	e := &planEntry{plan: plan, makespans: make(map[int]time.Duration)}
	c.entries[key] = e
	return e, nil
}

// Plan returns the cached plan for (m, rc), running the partitioner on the
// first request for the key.
func (c *PlanCache) Plan(m *models.Model, rc RunConfig) (*partition.Plan, error) {
	p, _, err := c.PlanCached(m, rc)
	return p, err
}

// PlanCached is Plan plus a hit indicator: hit is true when the plan was
// already cached (no partitioner run). The tracing layer records it as a
// plan-lookup span attribute.
func (c *PlanCache) PlanCached(m *models.Model, rc RunConfig) (plan *partition.Plan, hit bool, err error) {
	key := planKey{model: m.Name, rc: cacheRC(rc)}
	c.mu.Lock()
	defer c.mu.Unlock()
	_, hit = c.entries[key]
	e, err := c.entry(m, rc)
	if err != nil {
		return nil, false, err
	}
	return e.plan, hit, nil
}

// Estimate returns the predicted makespan of a fused batch of rows rows
// under (m, rc) — the number the scheduler uses for admission control,
// Retry-After, and device pacing. The first request for a (key, rows) pair
// simulates the cached plan cost-only; later requests hit the memo.
func (c *PlanCache) Estimate(m *models.Model, rc RunConfig, rows int) (time.Duration, error) {
	if rows < 1 {
		rows = 1
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	e, err := c.entry(m, rc)
	if err != nil {
		return 0, err
	}
	if d, ok := e.makespans[rows]; ok {
		c.hits++
		return d, nil
	}
	c.misses++
	rcCost := cacheRC(rc)
	res, err := c.rt.RunBatchPlan(m, e.plan, []exec.FusedItem{{Rows: rows}}, rcCost)
	if err != nil {
		return 0, err
	}
	e.makespans[rows] = res.Report.Latency
	return res.Report.Latency, nil
}

// PlanCacheStats is a snapshot of a cache's effectiveness counters.
type PlanCacheStats struct {
	// Plans is the number of distinct (model, config) plans held.
	Plans int `json:"plans"`
	// Makespans is the number of memoized (plan, rows) cost estimates.
	Makespans int   `json:"makespans"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
}

// Stats returns a snapshot of the cache's counters.
func (c *PlanCache) Stats() PlanCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := PlanCacheStats{Plans: len(c.entries), Hits: c.hits, Misses: c.misses}
	for _, e := range c.entries {
		s.Makespans += len(e.makespans)
	}
	return s
}
