// Package core assembles μLayer's three runtime components — the NN
// partitioner, the latency predictor, and the NN executor (Figure 13) —
// into a single Runtime that plans and executes inference on a modeled
// SoC under any of the paper's execution mechanisms.
package core

import (
	"context"
	"fmt"

	"mulayer/internal/exec"
	"mulayer/internal/models"
	"mulayer/internal/partition"
	"mulayer/internal/profile"
	"mulayer/internal/soc"
	"mulayer/internal/tensor"
)

// Mechanism selects how a network is mapped onto the SoC's processors.
type Mechanism int

// The execution mechanisms of the evaluation (§7.2).
const (
	// MechCPUOnly runs the whole network on the CPU.
	MechCPUOnly Mechanism = iota
	// MechGPUOnly runs the whole network on the GPU.
	MechGPUOnly
	// MechLayerToProcessor is the state-of-the-art baseline: each layer on
	// the faster processor, QUInt8 everywhere.
	MechLayerToProcessor
	// MechChannelDist adds the channel-wise workload distribution (§3.2),
	// both processors still computing QUInt8.
	MechChannelDist
	// MechChannelDistProcQuant adds processor-friendly quantization (§4):
	// CPU QUInt8, GPU F16 with on-the-fly conversion.
	MechChannelDistProcQuant
	// MechMuLayer is the complete system, adding branch distribution (§5).
	MechMuLayer
	// MechNPUOnly runs the whole network on the NPU (requires an
	// NPU-equipped SoC, §8.3).
	MechNPUOnly
	// MechMuLayerNPU is μLayer with three-way CPU+GPU+NPU cooperation
	// (requires an NPU-equipped SoC, §8.3).
	MechMuLayerNPU
)

// String implements fmt.Stringer.
func (m Mechanism) String() string {
	switch m {
	case MechCPUOnly:
		return "cpu-only"
	case MechGPUOnly:
		return "gpu-only"
	case MechLayerToProcessor:
		return "layer-to-processor"
	case MechChannelDist:
		return "channel-dist"
	case MechChannelDistProcQuant:
		return "channel-dist+proc-quant"
	case MechMuLayer:
		return "mulayer"
	case MechNPUOnly:
		return "npu-only"
	case MechMuLayerNPU:
		return "mulayer+npu"
	}
	return fmt.Sprintf("Mechanism(%d)", int(m))
}

// RunConfig configures one inference.
type RunConfig struct {
	// Mechanism picks the execution mechanism (default MechMuLayer).
	Mechanism Mechanism
	// DType is the uniform data type of the single-processor mechanisms
	// (default QUInt8, the fastest); ignored by the cooperative ones.
	DType tensor.DataType
	// Numeric runs the real kernels and produces an output tensor; the
	// default cost-only mode simulates timing and energy only.
	Numeric bool
	// DisableAsyncIssue and DisableZeroCopy turn off §6's implementation
	// optimizations (ablations).
	DisableAsyncIssue bool
	DisableZeroCopy   bool
	// Unhealthy names processors the plan must avoid — the degraded-mode
	// lever of the fault-tolerance layer. A cooperative mechanism with one
	// side unhealthy degenerates to single-processor plans (p=0 or p=1,
	// no branch distribution); a mechanism that cannot run on the surviving
	// processors errors at plan time. Part of the plan-cache key: degraded
	// and healthy plans never alias.
	Unhealthy ProcSet
}

// Runtime is a μLayer runtime bound to one SoC model: it owns the fitted
// latency predictor and plans/executes networks on demand.
//
// # Concurrency
//
// A Runtime is immutable after NewRuntime: Plan, Run, and RunContext never
// mutate the Runtime, the SoC model, or the predictor, so one Runtime is
// safe for concurrent use by multiple goroutines. Each call builds its own
// plan, timeline, and (in numeric mode) activation tensors. The Model is
// read-only during a run, so concurrent runs may share a Model — provided
// no goroutine mutates it concurrently (calibration, which installs
// quantization grids and weight caches into the layers, must happen
// strictly before the model is shared). Note that concurrent Run calls
// model independent SoCs: each call gets its own simulated timeline, so
// two concurrent inferences do not contend for the modeled processors —
// serving-style contention is a scheduling concern layered above (see
// internal/server).
type Runtime struct {
	soc  *soc.SoC
	pred *profile.Predictor
}

// NewRuntime profiles the SoC's processors and fits the latency predictor
// (the offline step of §6).
func NewRuntime(s *soc.SoC) (*Runtime, error) {
	if s == nil {
		return nil, fmt.Errorf("core: nil SoC")
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &Runtime{soc: s, pred: profile.Build(s.Processors()...)}, nil
}

// SoC returns the runtime's SoC model.
func (rt *Runtime) SoC() *soc.SoC { return rt.soc }

// Predictor returns the fitted latency predictor.
func (rt *Runtime) Predictor() *profile.Predictor { return rt.pred }

// options maps a RunConfig to planner options, applying the degraded-mode
// restriction when rc names unhealthy processors.
func (rt *Runtime) options(rc RunConfig) (partition.Options, error) {
	dt := rc.DType
	var o partition.Options
	switch rc.Mechanism {
	case MechCPUOnly:
		o = partition.SingleProcessor(rt.soc, rt.pred, partition.ProcCPU, dt)
	case MechGPUOnly:
		o = partition.SingleProcessor(rt.soc, rt.pred, partition.ProcGPU, dt)
	case MechLayerToProcessor:
		o = partition.LayerToProcessor(rt.soc, rt.pred)
	case MechChannelDist:
		o = partition.ChannelDistOnly(rt.soc, rt.pred)
	case MechChannelDistProcQuant:
		o = partition.ChannelDistProcQuant(rt.soc, rt.pred)
	case MechMuLayer:
		o = partition.MuLayer(rt.soc, rt.pred)
	case MechNPUOnly:
		o = partition.NPUOnly(rt.soc, rt.pred)
	case MechMuLayerNPU:
		o = partition.MuLayerNPU(rt.soc, rt.pred)
	default:
		return partition.Options{}, fmt.Errorf("core: unknown mechanism %d", int(rc.Mechanism))
	}
	return degrade(o, rc)
}

// Plan builds the execution plan a RunConfig implies for a model.
func (rt *Runtime) Plan(m *models.Model, rc RunConfig) (*partition.Plan, error) {
	o, err := rt.options(rc)
	if err != nil {
		return nil, err
	}
	return partition.Build(m.Graph, o)
}

// Run plans and executes one inference. In numeric mode the model must be
// numeric and, for quantized pipelines, calibrated; input may be nil in
// cost-only mode.
func (rt *Runtime) Run(m *models.Model, input *tensor.Tensor, rc RunConfig) (*exec.Result, error) {
	return rt.RunContext(context.Background(), m, input, rc)
}

// RunContext is Run under a context: the executor checks ctx between plan
// steps, so canceling it (or its deadline expiring) aborts the inference
// promptly and returns the context's error. This is the entry point the
// serving scheduler uses to enforce per-request deadlines.
func (rt *Runtime) RunContext(ctx context.Context, m *models.Model, input *tensor.Tensor, rc RunConfig) (*exec.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	o, err := rt.options(rc)
	if err != nil {
		return nil, err
	}
	plan, err := partition.Build(m.Graph, o)
	if err != nil {
		return nil, err
	}
	if rc.Numeric {
		if m.SpecOnly {
			return nil, fmt.Errorf("core: model %s is spec-only; build it with Config.Numeric", m.Name)
		}
		if o.Pipe.Storage == tensor.QUInt8 && !m.Calibrated {
			return nil, fmt.Errorf("core: model %s is not calibrated; run Calibrate first", m.Name)
		}
	}
	cfg := exec.Config{
		SoC:         rt.soc,
		Ctx:         ctx,
		Pipe:        o.Pipe,
		Numeric:     rc.Numeric,
		InputParams: m.InputParams,
		AsyncIssue:  !rc.DisableAsyncIssue,
		ZeroCopy:    !rc.DisableZeroCopy,
	}
	return exec.Run(m.Graph, plan, input, cfg)
}
