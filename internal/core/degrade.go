package core

import (
	"fmt"
	"strings"

	"mulayer/internal/partition"
)

// ProcSet is a bitmask of a SoC's processors. The serving layer uses it to
// name the processors a device must plan around: RunConfig.Unhealthy
// carries the mask into the planner, which then degenerates cooperative
// mechanisms to the surviving processor (p=0 or p=1 plans, single-processor
// branch assignment).
type ProcSet uint8

// The processor bits.
const (
	ProcSetCPU ProcSet = 1 << iota
	ProcSetGPU
	ProcSetNPU
)

// Has reports whether the set contains p.
func (s ProcSet) Has(p ProcSet) bool { return s&p != 0 }

// Empty reports whether the set names no processor.
func (s ProcSet) Empty() bool { return s == 0 }

// String implements fmt.Stringer ("cpu+gpu", "none").
func (s ProcSet) String() string {
	if s == 0 {
		return "none"
	}
	var parts []string
	if s.Has(ProcSetCPU) {
		parts = append(parts, "cpu")
	}
	if s.Has(ProcSetGPU) {
		parts = append(parts, "gpu")
	}
	if s.Has(ProcSetNPU) {
		parts = append(parts, "npu")
	}
	return strings.Join(parts, "+")
}

// ProcSetOf maps a partition processor to its mask bit.
func ProcSetOf(p partition.Proc) ProcSet {
	switch p {
	case partition.ProcCPU:
		return ProcSetCPU
	case partition.ProcNPU:
		return ProcSetNPU
	}
	return ProcSetGPU
}

// degrade restricts planner options to the healthy processors. An unhealthy
// processor is removed from the allowed set, which makes the partitioner
// degenerate naturally: channel splitting needs both CPU and GPU, so losing
// either forces p=0/p=1 plans; branch distribution and three-way NPU
// cooperation likewise require the full set and switch themselves off.
// Returns an error when the mechanism cannot run on what remains.
func degrade(o partition.Options, rc RunConfig) (partition.Options, error) {
	u := rc.Unhealthy
	if u.Empty() {
		return o, nil
	}
	if o.NPUOnly {
		if u.Has(ProcSetNPU) {
			return o, fmt.Errorf("core: mechanism %s cannot run with unhealthy processors %s", rc.Mechanism, u)
		}
		return o, nil
	}
	if u.Has(ProcSetCPU) {
		o.AllowCPU = false
	}
	if u.Has(ProcSetGPU) {
		o.AllowGPU = false
	}
	if u.Has(ProcSetNPU) {
		o.AllowNPU = false
	}
	if !o.AllowCPU && !o.AllowGPU {
		return o, fmt.Errorf("core: mechanism %s cannot run with unhealthy processors %s", rc.Mechanism, u)
	}
	return o, nil
}
