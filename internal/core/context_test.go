package core

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"mulayer/internal/models"
	"mulayer/internal/tensor"
)

// countdownCtx is a context whose Err flips to Canceled after its Err
// method has been consulted n times — a deterministic stand-in for a
// cancellation that lands mid-execution.
type countdownCtx struct {
	context.Context
	mu   sync.Mutex
	left int
}

func (c *countdownCtx) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.left <= 0 {
		return context.Canceled
	}
	c.left--
	return nil
}

func TestRunContextPreCanceled(t *testing.T) {
	rt := newRT(t)
	m, err := models.GoogLeNet(models.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := rt.RunContext(ctx, m, nil, RunConfig{Mechanism: MechMuLayer}); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled context: got %v, want context.Canceled", err)
	}
}

func TestRunContextDeadlineExceeded(t *testing.T) {
	rt := newRT(t)
	m, err := models.GoogLeNet(models.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := rt.RunContext(ctx, m, nil, RunConfig{Mechanism: MechMuLayer}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired deadline: got %v, want context.DeadlineExceeded", err)
	}
}

func TestRunContextCancelMidRunStopsPromptly(t *testing.T) {
	rt := newRT(t)
	m, err := models.VGG16(models.Config{})
	if err != nil {
		t.Fatal(err)
	}
	// The executor consults ctx.Err once before the run and once per plan
	// step; letting a handful of checks pass cancels mid-walk, and the run
	// must abort there instead of finishing the remaining steps.
	ctx := &countdownCtx{Context: context.Background(), left: 3}
	if _, err := rt.RunContext(ctx, m, nil, RunConfig{Mechanism: MechMuLayer}); !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-run cancel: got %v, want context.Canceled", err)
	}
}

// TestConcurrentRunsRace exercises the documented concurrency contract:
// one Runtime and shared read-only Models, hit from many goroutines at
// once (run under -race). Results must also be deterministic — every
// goroutine sees the identical simulated latency for the same work.
func TestConcurrentRunsRace(t *testing.T) {
	rt := newRT(t)
	g, err := models.GoogLeNet(models.Config{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := models.SqueezeNetV11(models.Config{})
	if err != nil {
		t.Fatal(err)
	}
	shared := []*models.Model{g, s}
	mechs := []Mechanism{MechCPUOnly, MechLayerToProcessor, MechMuLayer}

	want := make(map[string]time.Duration)
	for _, m := range shared {
		for _, mech := range mechs {
			res, err := rt.Run(m, nil, RunConfig{Mechanism: mech, DType: tensor.QUInt8})
			if err != nil {
				t.Fatal(err)
			}
			want[m.Name+"/"+mech.String()] = res.Report.Latency
		}
	}

	const workers = 16
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				m := shared[(w+i)%len(shared)]
				mech := mechs[(w+i)%len(mechs)]
				res, err := rt.Run(m, nil, RunConfig{Mechanism: mech, DType: tensor.QUInt8})
				if err != nil {
					errs <- err
					return
				}
				if got := res.Report.Latency; got != want[m.Name+"/"+mech.String()] {
					t.Errorf("%s %v: latency %v, want %v", m.Name, mech, got, want[m.Name+"/"+mech.String()])
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestConcurrentNumericRuns runs the numeric pipeline concurrently on a
// shared calibrated model: calibration happens strictly before sharing,
// after which the layers (weights, grids, caches) are read-only.
func TestConcurrentNumericRuns(t *testing.T) {
	rt := newRT(t)
	m, err := models.LeNet5(models.Config{Numeric: true})
	if err != nil {
		t.Fatal(err)
	}
	var cal []*tensor.Tensor
	for i := uint64(0); i < 2; i++ {
		in := tensor.New(m.InputShape)
		in.FillRandom(7+i, 1)
		cal = append(cal, in)
	}
	if err := m.Calibrate(cal); err != nil {
		t.Fatal(err)
	}
	input := tensor.New(m.InputShape)
	input.FillRandom(42, 1)

	ref, err := rt.Run(m, input, RunConfig{Mechanism: MechMuLayer, Numeric: true})
	if err != nil {
		t.Fatal(err)
	}

	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := rt.Run(m, input, RunConfig{Mechanism: MechMuLayer, Numeric: true})
			if err != nil {
				errs <- err
				return
			}
			for i, v := range res.Output.Data {
				if v != ref.Output.Data[i] {
					t.Errorf("output[%d] = %v, want %v", i, v, ref.Output.Data[i])
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
