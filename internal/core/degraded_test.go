package core

import (
	"testing"
	"time"

	"mulayer/internal/device"
	"mulayer/internal/exec"
	"mulayer/internal/models"
	"mulayer/internal/nn"
	"mulayer/internal/partition"
	"mulayer/internal/tensor"
)

func TestProcSetString(t *testing.T) {
	cases := map[ProcSet]string{
		0:                                    "none",
		ProcSetCPU:                           "cpu",
		ProcSetGPU:                           "gpu",
		ProcSetNPU:                           "npu",
		ProcSetCPU | ProcSetGPU:              "cpu+gpu",
		ProcSetCPU | ProcSetGPU | ProcSetNPU: "cpu+gpu+npu",
	}
	for s, want := range cases {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), want)
		}
	}
	if !ProcSetGPU.Has(ProcSetGPU) || ProcSetGPU.Has(ProcSetCPU) {
		t.Fatal("Has")
	}
	for _, p := range []partition.Proc{partition.ProcCPU, partition.ProcGPU, partition.ProcNPU} {
		if ProcSetOf(p).Empty() {
			t.Fatalf("ProcSetOf(%v) empty", p)
		}
	}
}

// TestDegradedPlanShape: losing one processor of a cooperative mechanism
// must force every layer onto the survivor — no splits, no branch
// distribution.
func TestDegradedPlanShape(t *testing.T) {
	rt := newRT(t)
	m, err := models.GoogLeNet(models.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		down  ProcSet
		wantP float64
	}{
		{ProcSetGPU, 1}, // survivor CPU: every step p=1
		{ProcSetCPU, 0}, // survivor GPU: every step p=0
	} {
		plan, err := rt.Plan(m, RunConfig{Mechanism: MechMuLayer, Unhealthy: tc.down})
		if err != nil {
			t.Fatalf("down=%v: %v", tc.down, err)
		}
		if plan.BranchCount() != 0 {
			t.Fatalf("down=%v: degraded plan still branch-distributes", tc.down)
		}
		if plan.SplitCount() != 0 {
			t.Fatalf("down=%v: degraded plan still splits", tc.down)
		}
		for _, s := range plan.Steps {
			if s.Layer == nil || s.Layer.P != tc.wantP || s.Layer.PNPU != 0 {
				t.Fatalf("down=%v: step %+v, want pure p=%v", tc.down, s.Layer, tc.wantP)
			}
		}
	}
}

// TestDegradedUnservable: a mechanism whose only processor is unhealthy
// must fail at plan time with a clear error, not produce a bogus plan.
func TestDegradedUnservable(t *testing.T) {
	rt := newRT(t)
	m, _ := models.LeNet5(models.Config{})
	cases := []RunConfig{
		{Mechanism: MechCPUOnly, Unhealthy: ProcSetCPU},
		{Mechanism: MechGPUOnly, Unhealthy: ProcSetGPU},
		{Mechanism: MechMuLayer, Unhealthy: ProcSetCPU | ProcSetGPU},
		{Mechanism: MechLayerToProcessor, Unhealthy: ProcSetCPU | ProcSetGPU},
	}
	for _, rc := range cases {
		if _, err := rt.Plan(m, rc); err == nil {
			t.Fatalf("%v down=%v: want error", rc.Mechanism, rc.Unhealthy)
		}
	}
	// The NPU baseline dies with its NPU.
	if _, err := rt.Plan(m, RunConfig{Mechanism: MechNPUOnly, Unhealthy: ProcSetNPU}); err == nil {
		t.Fatal("NPU-only with NPU down: want error")
	}
	// Losing the NPU under three-way cooperation degrades to two-way.
	if _, err := rt.Plan(m, RunConfig{Mechanism: MechMuLayer, Unhealthy: ProcSetNPU}); err != nil {
		t.Fatalf("mulayer with NPU down must still plan: %v", err)
	}
}

// forcedPlan builds the p=const golden plan by hand: every splittable
// layer at p, non-splittable layers on the plan's surviving processor.
func forcedPlan(t *testing.T, m *models.Model, p float64) *partition.Plan {
	t.Helper()
	order, err := m.Graph.Toposort()
	if err != nil {
		t.Fatal(err)
	}
	var plan partition.Plan
	for _, id := range order {
		if m.Graph.Node(id).Layer.Kind() == nn.OpInput {
			continue
		}
		plan.Steps = append(plan.Steps, partition.Step{Layer: &partition.LayerStep{Node: id, P: p}})
	}
	return &plan
}

// TestDegradedOutputsBitIdentical is the acceptance check: a degraded
// cooperative run's numeric output is bit-identical to the corresponding
// single-processor golden. GPU-down degenerates to the CPU's QUInt8
// kernels, which compute exactly what a hand-built p=1 plan computes;
// CPU-down degenerates to the converted-GPU pipeline of a hand-built p=0
// plan. Both goldens run through exec directly, bypassing the partitioner.
func TestDegradedOutputsBitIdentical(t *testing.T) {
	rt := newRT(t)
	m, err := models.LeNet5(models.Config{Numeric: true, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	in := tensor.New(m.InputShape)
	in.FillRandom(2, 1)
	if err := m.Calibrate([]*tensor.Tensor{in}); err != nil {
		t.Fatal(err)
	}

	golden := func(p float64) *tensor.Tensor {
		cfg := exec.Config{
			SoC:         rt.SoC(),
			Pipe:        partition.ProcessorFriendly(),
			Numeric:     true,
			InputParams: m.InputParams,
			AsyncIssue:  true,
			ZeroCopy:    true,
		}
		res, err := exec.Run(m.Graph, forcedPlan(t, m, p), in, cfg)
		if err != nil {
			t.Fatalf("golden p=%v: %v", p, err)
		}
		return res.Output
	}

	for _, tc := range []struct {
		name string
		down ProcSet
		p    float64
	}{
		{"gpu-down-p1", ProcSetGPU, 1},
		{"cpu-down-p0", ProcSetCPU, 0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			res, err := rt.Run(m, in, RunConfig{Mechanism: MechMuLayer, Numeric: true, Unhealthy: tc.down})
			if err != nil {
				t.Fatal(err)
			}
			want := golden(tc.p)
			if res.Output.Shape != want.Shape {
				t.Fatalf("shape %v vs %v", res.Output.Shape, want.Shape)
			}
			for i, v := range res.Output.Data {
				if v != want.Data[i] {
					t.Fatalf("element %d: degraded %v != golden %v", i, v, want.Data[i])
				}
			}
		})
	}
}

// TestDegradedPlanCacheKeys: degraded and healthy plans must occupy
// distinct cache entries — the healthy-processor mask is part of the key.
func TestDegradedPlanCacheKeys(t *testing.T) {
	rt := newRT(t)
	c := NewPlanCache(rt)
	m, _ := models.SqueezeNetV11(models.Config{})
	healthy, err := c.Plan(m, RunConfig{Mechanism: MechMuLayer})
	if err != nil {
		t.Fatal(err)
	}
	degraded, err := c.Plan(m, RunConfig{Mechanism: MechMuLayer, Unhealthy: ProcSetGPU})
	if err != nil {
		t.Fatal(err)
	}
	if healthy == degraded {
		t.Fatal("degraded plan aliases the healthy entry")
	}
	if got := c.Stats().Plans; got != 2 {
		t.Fatalf("cache holds %d plans, want 2", got)
	}
	// Repeat lookups hit.
	if p2, _ := c.Plan(m, RunConfig{Mechanism: MechMuLayer, Unhealthy: ProcSetGPU}); p2 != degraded {
		t.Fatal("degraded entry not reused")
	}
	// Degraded estimates work and differ from healthy ones (single-processor
	// execution is slower than cooperative execution on this model).
	h, err := c.Estimate(m, RunConfig{Mechanism: MechMuLayer}, 1)
	if err != nil {
		t.Fatal(err)
	}
	d, err := c.Estimate(m, RunConfig{Mechanism: MechMuLayer, Unhealthy: ProcSetGPU}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d <= h {
		t.Fatalf("degraded estimate %v not above healthy %v", d, h)
	}
}

// TestExecOptsFaultHook: a hook installed via RunBatchPlanOpts reaches the
// executor; the zero-opts path stays hook-free.
func TestExecOptsFaultHook(t *testing.T) {
	rt := newRT(t)
	m, err := models.LeNet5(models.Config{})
	if err != nil {
		t.Fatal(err)
	}
	rc := RunConfig{Mechanism: MechMuLayer}
	plan, err := rt.Plan(m, rc)
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	opts := ExecOpts{Faults: func(p *device.Processor, kernel string, d time.Duration) (time.Duration, error) {
		calls++
		return d, nil
	}}
	if _, err := rt.RunBatchPlanOpts(m, plan, []exec.FusedItem{{Rows: 1}}, rc, opts); err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Fatal("fault hook never consulted")
	}
	// The hook-free delegate still works and does not invent faults.
	if _, err := rt.RunBatchPlan(m, plan, []exec.FusedItem{{Rows: 1}}, rc); err != nil {
		t.Fatal(err)
	}
}
