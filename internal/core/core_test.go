package core

import (
	"testing"

	"mulayer/internal/models"
	"mulayer/internal/soc"
	"mulayer/internal/tensor"
)

func newRT(t *testing.T) *Runtime {
	t.Helper()
	rt, err := NewRuntime(soc.Exynos7420())
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

func TestNewRuntimeValidates(t *testing.T) {
	if _, err := NewRuntime(nil); err == nil {
		t.Fatal("nil SoC must fail")
	}
	bad := soc.Exynos7420()
	bad.CPU.Cores = 0
	if _, err := NewRuntime(bad); err == nil {
		t.Fatal("invalid SoC must fail")
	}
	rt := newRT(t)
	if rt.SoC() == nil || rt.Predictor() == nil {
		t.Fatal("accessors")
	}
}

func TestAllMechanismsCostOnly(t *testing.T) {
	rt := newRT(t)
	m, err := models.GoogLeNet(models.Config{})
	if err != nil {
		t.Fatal(err)
	}
	mechs := []Mechanism{
		MechCPUOnly, MechGPUOnly, MechLayerToProcessor,
		MechChannelDist, MechChannelDistProcQuant, MechMuLayer,
	}
	var prev string
	for _, mech := range mechs {
		res, err := rt.Run(m, nil, RunConfig{Mechanism: mech, DType: tensor.QUInt8})
		if err != nil {
			t.Fatalf("%v: %v", mech, err)
		}
		if res.Report.Latency <= 0 {
			t.Fatalf("%v: non-positive latency", mech)
		}
		if mech.String() == prev || mech.String() == "" {
			t.Fatalf("mechanism strings must be distinct, got %q", mech.String())
		}
		prev = mech.String()
	}
	if Mechanism(99).String() == "" {
		t.Fatal("unknown mechanism string")
	}
}

func TestMuLayerBeatsBaseline(t *testing.T) {
	rt := newRT(t)
	m, _ := models.VGG16(models.Config{})
	mu, err := rt.Run(m, nil, RunConfig{Mechanism: MechMuLayer})
	if err != nil {
		t.Fatal(err)
	}
	l2p, err := rt.Run(m, nil, RunConfig{Mechanism: MechLayerToProcessor})
	if err != nil {
		t.Fatal(err)
	}
	if mu.Report.Latency >= l2p.Report.Latency {
		t.Fatalf("μLayer %v !< layer-to-processor %v", mu.Report.Latency, l2p.Report.Latency)
	}
}

func TestNumericRunRequiresCalibration(t *testing.T) {
	rt := newRT(t)
	m, err := models.LeNet5(models.Config{Numeric: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	in := tensor.New(m.InputShape)
	in.FillRandom(1, 1)
	if _, err := rt.Run(m, in, RunConfig{Mechanism: MechMuLayer, Numeric: true}); err == nil {
		t.Fatal("uncalibrated quantized numeric run must fail")
	}
	if err := m.Calibrate([]*tensor.Tensor{in}); err != nil {
		t.Fatal(err)
	}
	res, err := rt.Run(m, in, RunConfig{Mechanism: MechMuLayer, Numeric: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Output == nil {
		t.Fatal("numeric run must produce output")
	}
}

func TestNumericRunRejectsSpecOnly(t *testing.T) {
	rt := newRT(t)
	m, _ := models.VGG16(models.Config{})
	if _, err := rt.Run(m, nil, RunConfig{Mechanism: MechMuLayer, Numeric: true}); err == nil {
		t.Fatal("spec-only numeric run must fail")
	}
}

func TestAblationFlags(t *testing.T) {
	rt := newRT(t)
	m, _ := models.GoogLeNet(models.Config{})
	full, _ := rt.Run(m, nil, RunConfig{Mechanism: MechMuLayer})
	noAsync, _ := rt.Run(m, nil, RunConfig{Mechanism: MechMuLayer, DisableAsyncIssue: true})
	noZC, _ := rt.Run(m, nil, RunConfig{Mechanism: MechMuLayer, DisableZeroCopy: true})
	if noAsync.Report.Latency <= full.Report.Latency {
		t.Fatal("disabling async issue must cost time")
	}
	if noZC.Report.Latency <= full.Report.Latency {
		t.Fatal("disabling zero-copy must cost time")
	}
}

func TestPlanCoversModel(t *testing.T) {
	rt := newRT(t)
	m, _ := models.SqueezeNetV11(models.Config{})
	plan, err := rt.Plan(m, RunConfig{Mechanism: MechMuLayer})
	if err != nil {
		t.Fatal(err)
	}
	covered := 0
	for _, n := range plan.Covered() {
		covered += n
	}
	if covered != m.Graph.Len()-1 { // every node except the input
		t.Fatalf("plan covers %d of %d nodes", covered, m.Graph.Len()-1)
	}
}

func TestUnknownMechanism(t *testing.T) {
	rt := newRT(t)
	m, _ := models.VGG16(models.Config{})
	if _, err := rt.Run(m, nil, RunConfig{Mechanism: Mechanism(42)}); err == nil {
		t.Fatal("unknown mechanism must fail")
	}
}

func TestNPUMechanisms(t *testing.T) {
	rt, err := NewRuntime(soc.Exynos7420NPU())
	if err != nil {
		t.Fatal(err)
	}
	m, _ := models.GoogLeNet(models.Config{})
	three, err := rt.Run(m, nil, RunConfig{Mechanism: MechMuLayerNPU})
	if err != nil {
		t.Fatal(err)
	}
	two, err := rt.Run(m, nil, RunConfig{Mechanism: MechMuLayer})
	if err != nil {
		t.Fatal(err)
	}
	npu, err := rt.Run(m, nil, RunConfig{Mechanism: MechNPUOnly})
	if err != nil {
		t.Fatal(err)
	}
	if three.Report.Latency >= two.Report.Latency || three.Report.Latency >= npu.Report.Latency {
		t.Fatalf("three-way %v must beat two-way %v and NPU-only %v",
			three.Report.Latency, two.Report.Latency, npu.Report.Latency)
	}
	if three.Report.NPUBusy <= 0 {
		t.Fatal("NPU busy time missing")
	}
}

func TestNPUMechanismsRequireNPUSoC(t *testing.T) {
	rt := newRT(t) // plain Exynos 7420
	m, _ := models.LeNet5(models.Config{})
	if _, err := rt.Run(m, nil, RunConfig{Mechanism: MechNPUOnly}); err == nil {
		t.Fatal("NPU-only on an NPU-less SoC must fail")
	}
}
