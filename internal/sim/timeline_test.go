package sim

import (
	"strings"
	"testing"
	"time"
)

func TestScheduleSerializesPerProcessor(t *testing.T) {
	tl := NewTimeline()
	s1, e1 := tl.Schedule("cpu", "a", 0, 10*time.Millisecond, 1)
	if s1 != 0 || e1 != 10*time.Millisecond {
		t.Fatalf("first span [%v,%v)", s1, e1)
	}
	// Ready at 5ms but the processor is busy until 10ms.
	s2, e2 := tl.Schedule("cpu", "b", 5*time.Millisecond, 5*time.Millisecond, 1)
	if s2 != 10*time.Millisecond || e2 != 15*time.Millisecond {
		t.Fatalf("second span [%v,%v)", s2, e2)
	}
	// A different processor is free immediately.
	s3, _ := tl.Schedule("gpu", "c", 5*time.Millisecond, 2*time.Millisecond, 1)
	if s3 != 5*time.Millisecond {
		t.Fatalf("gpu span starts %v", s3)
	}
	if err := tl.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMakespanAndBusy(t *testing.T) {
	tl := NewTimeline()
	tl.Schedule("cpu", "a", 0, 4*time.Millisecond, 0)
	tl.Schedule("gpu", "b", 0, 7*time.Millisecond, 0)
	tl.Schedule("cpu", "c", 0, 2*time.Millisecond, 0)
	if tl.Makespan() != 7*time.Millisecond {
		t.Fatalf("makespan %v", tl.Makespan())
	}
	if tl.BusyTime("cpu") != 6*time.Millisecond {
		t.Fatalf("cpu busy %v", tl.BusyTime("cpu"))
	}
	if tl.BusyTime("gpu") != 7*time.Millisecond {
		t.Fatalf("gpu busy %v", tl.BusyTime("gpu"))
	}
	// Makespan can never be below any processor's busy time.
	if tl.Makespan() < tl.BusyTime("cpu") || tl.Makespan() < tl.BusyTime("gpu") {
		t.Fatal("makespan below busy time")
	}
}

func TestDynamicEnergySum(t *testing.T) {
	tl := NewTimeline()
	tl.Schedule("cpu", "a", 0, time.Millisecond, 100)
	tl.Schedule("gpu", "b", 0, time.Millisecond, 250)
	if tl.DynamicEnergyPJ() != 350 {
		t.Fatalf("energy %v", tl.DynamicEnergyPJ())
	}
}

func TestValidateCatchesOverlap(t *testing.T) {
	tl := NewTimeline()
	tl.spans = []Span{
		{Proc: "cpu", Label: "a", Start: 0, End: 10},
		{Proc: "cpu", Label: "b", Start: 5, End: 15},
	}
	if tl.Validate() == nil {
		t.Fatal("overlap must be detected")
	}
}

func TestScheduleRejectsNegativeDuration(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative duration must panic")
		}
	}()
	NewTimeline().Schedule("cpu", "x", 0, -1, 0)
}

func TestRender(t *testing.T) {
	tl := NewTimeline()
	tl.Schedule("cpu", "conv1", 0, time.Millisecond, 0)
	var sb strings.Builder
	tl.Render(&sb)
	out := sb.String()
	if !strings.Contains(out, "conv1") || !strings.Contains(out, "makespan") {
		t.Fatalf("render output missing fields: %q", out)
	}
}

func TestReportTotals(t *testing.T) {
	r := Report{Latency: time.Millisecond, DynamicJ: 0.001, DRAMJ: 0.002, StaticJ: 0.003}
	if r.TotalJ() != 0.006 {
		t.Fatalf("total %v", r.TotalJ())
	}
	if !strings.Contains(r.String(), "latency") {
		t.Fatal("report string")
	}
}

func TestSpansCopy(t *testing.T) {
	tl := NewTimeline()
	tl.Schedule("cpu", "a", 0, time.Millisecond, 0)
	spans := tl.Spans()
	spans[0].Label = "mutated"
	if tl.spans[0].Label != "a" {
		t.Fatal("Spans must return a copy")
	}
}
