// Package sim provides the simulated execution timeline μLayer's executor
// builds while running (or cost-walking) a network: per-processor spans,
// busy-time accounting, makespan, and energy integration. The timeline is
// the substitute for the paper's wall-clock and Monsoon power-monitor
// measurements (DESIGN.md §2).
package sim

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// Span is one scheduled interval on a processor.
type Span struct {
	Proc  string
	Label string
	Start time.Duration
	End   time.Duration
	// EnergyPJ is the dynamic energy charged to this span.
	EnergyPJ float64
}

// Timeline accumulates spans and per-processor availability.
type Timeline struct {
	spans []Span
	avail map[string]time.Duration
}

// NewTimeline returns an empty timeline.
func NewTimeline() *Timeline {
	return &Timeline{avail: make(map[string]time.Duration)}
}

// Schedule books dur of work on proc, starting no earlier than ready and
// no earlier than the processor's previous span end. It returns the actual
// [start, end) interval.
func (t *Timeline) Schedule(proc, label string, ready, dur time.Duration, energyPJ float64) (start, end time.Duration) {
	if dur < 0 {
		panic("sim: negative duration")
	}
	start = ready
	if a := t.avail[proc]; a > start {
		start = a
	}
	end = start + dur
	t.avail[proc] = end
	t.spans = append(t.spans, Span{Proc: proc, Label: label, Start: start, End: end, EnergyPJ: energyPJ})
	return start, end
}

// Avail returns the time at which proc becomes free.
func (t *Timeline) Avail(proc string) time.Duration { return t.avail[proc] }

// Spans returns a copy of the recorded spans in scheduling order.
func (t *Timeline) Spans() []Span { return append([]Span(nil), t.spans...) }

// Makespan returns the end of the last span.
func (t *Timeline) Makespan() time.Duration {
	var m time.Duration
	for _, s := range t.spans {
		if s.End > m {
			m = s.End
		}
	}
	return m
}

// BusyTime returns the total scheduled time on one processor.
func (t *Timeline) BusyTime(proc string) time.Duration {
	var b time.Duration
	for _, s := range t.spans {
		if s.Proc == proc {
			b += s.End - s.Start
		}
	}
	return b
}

// DynamicEnergyPJ sums the dynamic energy over all spans.
func (t *Timeline) DynamicEnergyPJ() float64 {
	var e float64
	for _, s := range t.spans {
		e += s.EnergyPJ
	}
	return e
}

// Validate checks the structural invariants: no two spans on the same
// processor overlap, and every span is well-formed.
func (t *Timeline) Validate() error {
	byProc := make(map[string][]Span)
	for _, s := range t.spans {
		if s.End < s.Start {
			return fmt.Errorf("sim: span %q on %s ends before it starts", s.Label, s.Proc)
		}
		byProc[s.Proc] = append(byProc[s.Proc], s)
	}
	for proc, spans := range byProc {
		sort.Slice(spans, func(i, j int) bool { return spans[i].Start < spans[j].Start })
		for i := 1; i < len(spans); i++ {
			if spans[i].Start < spans[i-1].End {
				return fmt.Errorf("sim: spans %q and %q overlap on %s", spans[i-1].Label, spans[i].Label, proc)
			}
		}
	}
	return nil
}

// Render writes a human-readable trace, ordered by start time.
func (t *Timeline) Render(w io.Writer) {
	spans := t.Spans()
	sort.SliceStable(spans, func(i, j int) bool {
		if spans[i].Start != spans[j].Start {
			return spans[i].Start < spans[j].Start
		}
		return spans[i].Proc < spans[j].Proc
	})
	for _, s := range spans {
		fmt.Fprintf(w, "%10.3fms %10.3fms  %-40s %s\n",
			float64(s.Start)/1e6, float64(s.End)/1e6, s.Proc, s.Label)
	}
	fmt.Fprintf(w, "makespan %.3fms\n", float64(t.Makespan())/1e6)
}

// Report is the cost summary of one simulated inference.
type Report struct {
	Latency        time.Duration
	DynamicJ       float64 // compute energy (work-based)
	DRAMJ          float64 // data-movement energy
	StaticJ        float64 // uncore power × makespan
	CPUBusy        time.Duration
	GPUBusy        time.Duration
	NPUBusy        time.Duration // zero without the §8.3 NPU extension
	KernelLaunches int
}

// TotalJ returns the total energy in joules.
func (r Report) TotalJ() float64 { return r.DynamicJ + r.DRAMJ + r.StaticJ }

// String implements fmt.Stringer.
func (r Report) String() string {
	s := fmt.Sprintf("latency=%.3fms energy=%.2fmJ (dyn %.2f + dram %.2f + static %.2f) cpuBusy=%.3fms gpuBusy=%.3fms",
		float64(r.Latency)/1e6, r.TotalJ()*1e3, r.DynamicJ*1e3, r.DRAMJ*1e3, r.StaticJ*1e3,
		float64(r.CPUBusy)/1e6, float64(r.GPUBusy)/1e6)
	if r.NPUBusy > 0 {
		s += fmt.Sprintf(" npuBusy=%.3fms", float64(r.NPUBusy)/1e6)
	}
	return s
}
