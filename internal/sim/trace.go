package sim

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// chromeEvent is one Trace Event Format entry ("X" = complete event).
// The format is consumed by chrome://tracing and https://ui.perfetto.dev.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`  // microseconds
	Dur   float64        `json:"dur"` // microseconds
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Args  map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace serializes the timeline in the Chrome Trace Event
// Format (JSON array variant): one track per processor, one complete
// event per span. Load the output in chrome://tracing or Perfetto to see
// the cooperative execution visually — CPU and GPU lanes overlapping on
// split layers, serialized branches, and synchronization gaps.
func (t *Timeline) WriteChromeTrace(w io.Writer) error {
	spans := t.Spans()
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].Start < spans[j].Start })

	// Stable processor → track id mapping, ordered by first appearance.
	tids := make(map[string]int)
	var order []string
	for _, s := range spans {
		if _, ok := tids[s.Proc]; !ok {
			tids[s.Proc] = len(order)
			order = append(order, s.Proc)
		}
	}

	events := make([]chromeEvent, 0, len(spans)+len(order))
	for name, tid := range tids {
		events = append(events, chromeEvent{
			Name: "thread_name", Cat: "__metadata", Phase: "M",
			PID: 1, TID: tid,
			Args: map[string]any{"name": name},
		})
	}
	// Metadata events have no timestamp ordering requirement but keeping
	// them first renders cleanly.
	sort.SliceStable(events, func(i, j int) bool { return events[i].TID < events[j].TID })

	for _, s := range spans {
		events = append(events, chromeEvent{
			Name:  s.Label,
			Cat:   "kernel",
			Phase: "X",
			TS:    float64(s.Start) / float64(time.Microsecond),
			Dur:   float64(s.End-s.Start) / float64(time.Microsecond),
			PID:   1,
			TID:   tids[s.Proc],
			Args:  map[string]any{"energy_pj": s.EnergyPJ},
		})
	}

	enc := json.NewEncoder(w)
	if err := enc.Encode(events); err != nil {
		return fmt.Errorf("sim: encoding chrome trace: %w", err)
	}
	return nil
}
