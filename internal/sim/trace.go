package sim

import (
	"io"
	"sort"

	"mulayer/internal/tracefmt"
)

// WriteChromeTrace serializes the timeline in the Chrome Trace Event
// Format (JSON array variant): one track per processor, one complete
// event per span. Load the output in chrome://tracing or Perfetto to see
// the cooperative execution visually — CPU and GPU lanes overlapping on
// split layers, serialized branches, and synchronization gaps. The event
// serialization itself lives in internal/tracefmt, shared with the
// serving subsystem's per-request traces.
func (t *Timeline) WriteChromeTrace(w io.Writer) error {
	spans := t.Spans()
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].Start < spans[j].Start })

	// Stable processor → track id mapping, ordered by first appearance.
	tracks := tracefmt.NewTracks()
	for _, s := range spans {
		tracks.ID(s.Proc)
	}

	events := make([]tracefmt.Event, 0, len(spans)+len(tracks.Names()))
	// Metadata events have no timestamp ordering requirement but keeping
	// them first (in track order) renders cleanly.
	for tid, name := range tracks.Names() {
		events = append(events, tracefmt.ThreadName(1, tid, name))
	}
	for _, s := range spans {
		events = append(events, tracefmt.Complete(s.Label, "kernel", 1, tracks.ID(s.Proc),
			s.Start, s.End-s.Start, map[string]any{"energy_pj": s.EnergyPJ}))
	}
	return tracefmt.Write(w, events)
}
