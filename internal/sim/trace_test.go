package sim

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

func TestWriteChromeTrace(t *testing.T) {
	tl := NewTimeline()
	tl.Schedule("cpu", "conv1[cpu]", 0, 2*time.Millisecond, 100)
	tl.Schedule("gpu", "conv1[gpu]", 0, 3*time.Millisecond, 200)
	tl.Schedule("cpu", "conv2", 3*time.Millisecond, time.Millisecond, 50)

	var buf bytes.Buffer
	if err := tl.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	// 2 metadata events + 3 spans.
	if len(events) != 5 {
		t.Fatalf("events = %d, want 5", len(events))
	}
	var meta, complete int
	for _, e := range events {
		switch e["ph"] {
		case "M":
			meta++
			if e["args"].(map[string]any)["name"] == "" {
				t.Fatal("metadata event without a processor name")
			}
		case "X":
			complete++
			if e["dur"].(float64) <= 0 {
				t.Fatalf("non-positive duration in %v", e)
			}
		default:
			t.Fatalf("unexpected phase %v", e["ph"])
		}
	}
	if meta != 2 || complete != 3 {
		t.Fatalf("meta=%d complete=%d", meta, complete)
	}
	// Timestamps are microseconds: the 2ms span must read 2000.
	for _, e := range events {
		if e["name"] == "conv1[cpu]" && e["dur"].(float64) != 2000 {
			t.Fatalf("conv1[cpu] dur = %v µs", e["dur"])
		}
	}
	// Same-processor spans share a track id.
	tids := map[string]float64{}
	for _, e := range events {
		if e["ph"] == "X" {
			tids[e["name"].(string)] = e["tid"].(float64)
		}
	}
	if tids["conv1[cpu]"] != tids["conv2"] {
		t.Fatal("cpu spans must share a track")
	}
	if tids["conv1[cpu]"] == tids["conv1[gpu]"] {
		t.Fatal("cpu and gpu spans must not share a track")
	}
}

func TestWriteChromeTraceEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := NewTimeline().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var events []any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil || len(events) != 0 {
		t.Fatalf("empty timeline should produce an empty JSON array: %v %v", events, err)
	}
}
