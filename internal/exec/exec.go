// Package exec implements μLayer's NN executor (§6, Figure 13): it runs an
// execution plan over a network graph, performing the channel-wise
// workload distribution (each processor computes a disjoint output-channel
// range), processor-friendly quantization (QUInt8 kernels on the CPU, on-
// the-fly F16 kernels on the GPU), and branch distribution (whole branches
// per processor), while modeling the paper's implementation optimizations:
// asynchronous GPU command issue overlapped with CPU-side work and
// zero-copy CPU-GPU shared memory.
//
// The executor has two modes. In numeric mode it actually computes the
// network's tensors with the substrate kernels, so correctness tests can
// compare cooperative output against single-processor references bit for
// bit. In cost-only mode it walks the identical scheduling code without
// touching tensor data, which is how the full-size paper workloads (e.g.
// VGG-16 at 224²) are simulated quickly. Either way the simulated
// timeline, latency, and energy come from the device cost models.
package exec

import (
	"context"
	"fmt"
	"math"
	"time"

	"mulayer/internal/device"
	"mulayer/internal/graph"
	"mulayer/internal/nn"
	"mulayer/internal/partition"
	"mulayer/internal/quant"
	"mulayer/internal/sim"
	"mulayer/internal/soc"
	"mulayer/internal/tensor"
)

// Config controls one execution.
type Config struct {
	SoC  *soc.SoC
	Pipe partition.Pipeline
	// Ctx, when non-nil, is checked between plan steps so a server-side
	// deadline or cancellation stops a queued or in-flight execution
	// promptly; Run then returns the context's error.
	Ctx context.Context
	// Numeric enables real tensor computation alongside the simulation.
	Numeric bool
	// InputParams is the quantization grid of the network input
	// (required for QUInt8 storage in numeric mode).
	InputParams quant.Params
	// AsyncIssue enables asynchronous GPU command issue (§6); disabling it
	// (ablation) blocks the CPU for the GPU's dispatch latency.
	AsyncIssue bool
	// ZeroCopy enables zero-copy shared CPU-GPU memory (§6); disabling it
	// (ablation) charges copy-based synchronization on processor
	// transitions.
	ZeroCopy bool
	// FaultHook, when non-nil, is consulted for every kernel the executor
	// schedules (internal/faults implements it): it may inflate the
	// kernel's duration (a stall) or return an error (a transient kernel
	// failure or a permanent processor death), which aborts the run at the
	// end of the current plan step with that error. The nil hook costs
	// nothing — the healthy serving path never pays for fault injection.
	FaultHook FaultHook
	// TraceHook, when non-nil, observes every kernel the executor books
	// on the simulated timeline (internal/server builds per-request
	// traces and predictor-drift telemetry from it). Like FaultHook, the
	// nil hook costs nothing: untraced requests never pay for tracing.
	TraceHook TraceHook
	// WatchdogFactor, when > 0, arms the kernel stall watchdog: every
	// kernel gets a budget of WatchdogFactor × its cost-model predicted
	// duration, and a kernel whose post-hook duration exceeds the budget
	// is booked only up to the budget and aborts the run (at the end of
	// the current plan step) with a *WatchdogError. The serving layer
	// treats that like a device failure — failover plus quarantine — so a
	// stalled kernel cannot hold its batch, or its batchmates, hostage.
	// Overruns can only originate from FaultHook (the simulator otherwise
	// books exactly the predicted duration), so the watchdog costs nothing
	// on the healthy path. Factors below 1 would trip on every kernel;
	// callers validate the range.
	WatchdogFactor float64
}

// WatchdogError reports a kernel that exceeded its stall-watchdog budget.
// It blames the device, not the request: the serving scheduler fails the
// batch over to another device and advances the stalled device's circuit
// breaker, exactly as for an injected fault or a recovered panic.
type WatchdogError struct {
	// Proc is the processor model name the kernel ran on.
	Proc string
	// ProcType is the processor class (CPU/GPU/NPU).
	ProcType device.Type
	// Kernel is the kernel label.
	Kernel string
	// Budget is the allowed duration (predicted × watchdog factor); Took
	// is the duration the kernel would have run without the watchdog.
	Budget time.Duration
	Took   time.Duration
}

// Error implements error.
func (e *WatchdogError) Error() string {
	return fmt.Sprintf("exec: watchdog: kernel %s on %s ran %v, budget %v",
		e.Kernel, e.Proc, e.Took, e.Budget)
}

// FaultHook intercepts one scheduled kernel: it receives the processor,
// the kernel label, and the predicted duration, and returns the duration
// to charge plus an optional error that fails the run.
type FaultHook func(p *device.Processor, kernel string, d time.Duration) (time.Duration, error)

// TraceEvent describes one kernel the executor booked on the simulated
// timeline.
type TraceEvent struct {
	Proc  *device.Processor
	Side  partition.Proc
	Label string
	Kind  nn.OpKind
	Node  graph.NodeID
	// Start/End bound the booked timeline interval; they include the
	// kernel launch overhead and any injected stall.
	Start time.Duration
	End   time.Duration
	// KernelDur is the cost model's pure kernel time for this share,
	// launch overhead excluded. Predictor-drift telemetry compares it
	// against a predictor estimate of the same quantity.
	KernelDur time.Duration
	// P is the share of the layer's split channels this kernel computed
	// (1 for whole-layer execution).
	P float64
	// Rows is the fused row count carried by the kernel's panels.
	Rows int
	// Cost is the full batch-scaled layer cost (all shares together); a
	// predictor estimates this kernel as PredictSplit(Cost, P).
	Cost nn.Cost
	// DType and Converted identify the processor's compute pipeline,
	// matching the latency predictor's model key.
	DType     tensor.DataType
	Converted bool
}

// TraceHook observes one booked kernel. Implementations must be cheap
// and must not retain the event's Proc pointer beyond the call.
type TraceHook func(TraceEvent)

// DefaultConfig returns the μLayer production configuration for a SoC.
func DefaultConfig(s *soc.SoC) Config {
	return Config{SoC: s, Pipe: partition.ProcessorFriendly(), AsyncIssue: true, ZeroCopy: true}
}

// Result is the outcome of one simulated inference.
type Result struct {
	// Output is the final activation as float32 (dequantized if needed);
	// nil in cost-only mode.
	Output   *tensor.Tensor
	Report   sim.Report
	Timeline *sim.Timeline
}

// procMask tracks which processors hold a tensor coherently.
type procMask uint8

const (
	onCPU procMask = 1 << iota
	onGPU
	onNPU
)

func maskOf(p partition.Proc) procMask {
	switch p {
	case partition.ProcCPU:
		return onCPU
	case partition.ProcNPU:
		return onNPU
	}
	return onGPU
}

type runner struct {
	g      *graph.Graph
	cfg    Config
	shapes map[graph.NodeID]tensor.Shape
	tl     *sim.Timeline

	ready      map[graph.NodeID]time.Duration
	producedOn map[graph.NodeID]procMask

	// batch is the number of input rows fused into every kernel of this
	// run (≥1). Rows share each layer's weights: activations, compute, and
	// output traffic scale with the row count while the weight traffic and
	// the per-layer kernel launch are paid once — the row-panel
	// amortization server-side micro-batching exists to exploit.
	batch int
	// items carries the per-member state of a fused run: one entry per
	// batch member (a single Run has exactly one). Numeric value maps are
	// populated only in numeric mode; a member whose context dies mid-run
	// records its error here and stops receiving numeric work without
	// disturbing its batchmates.
	items []*fusedMember

	// seq is the completion time of the previous plan step: μLayer's
	// executor processes the plan sequentially, one step at a time (§5
	// notes layers are "executed in a serialized manner"; only the
	// branches inside one BranchStep run concurrently).
	seq time.Duration

	dramBytes int64
	launches  int

	// failure is the first error raised inside a plan step — an injected
	// kernel fault or a pipeline defect surfaced by a numeric forward. The
	// step loop aborts on it; keeping it on the runner lets the deeply
	// nested schedule/forward paths fail without threading errors through
	// every cost-model call.
	failure error

	// all is the mask of every processor present on the SoC; a tensor
	// with producedOn == all is coherent everywhere.
	all procMask
}

// schedule books one kernel on the timeline, first consulting the fault
// hook (when configured): a stall inflates the duration, a failure is
// recorded on the runner and aborts the run at the end of the step. The
// kernel is still booked on failure — the processor was occupied when it
// faulted, and the timeline stays internally consistent for the partial
// report. An armed watchdog bounds the post-hook duration to
// WatchdogFactor × the predicted duration: an over-budget kernel is
// booked only up to its budget (the watchdog killed it there) and fails
// the run with a *WatchdogError.
func (r *runner) schedule(p *device.Processor, label string, ready, dur time.Duration, energyPJ float64) (start, end time.Duration) {
	if r.cfg.FaultHook != nil && r.failure == nil {
		d, err := r.cfg.FaultHook(p, label, dur)
		budget := time.Duration(r.cfg.WatchdogFactor * float64(dur))
		switch {
		case err != nil:
			r.failure = err
		case r.cfg.WatchdogFactor > 0 && d > budget:
			r.failure = &WatchdogError{Proc: p.Name, ProcType: p.Type, Kernel: label, Budget: budget, Took: d}
			dur = budget
		default:
			dur = d
		}
	}
	return r.tl.Schedule(p.Name, label, ready, dur, energyPJ)
}

// traceKernel reports one booked kernel to the trace hook. Callers guard
// on r.cfg.TraceHook != nil so untraced runs pay nothing.
func (r *runner) traceKernel(p *device.Processor, side partition.Proc, label string, kind nn.OpKind,
	node graph.NodeID, start, end, kernelDur time.Duration, share float64, cost nn.Cost) {
	r.cfg.TraceHook(TraceEvent{
		Proc: p, Side: side, Label: label, Kind: kind, Node: node,
		Start: start, End: end, KernelDur: kernelDur,
		P: share, Rows: r.batch, Cost: cost,
		DType: r.cfg.Pipe.ComputeType(side), Converted: r.cfg.Pipe.Converted(side),
	})
}

// newRunner prepares per-inference state over a (possibly shared)
// timeline; arrival is the time the input becomes available.
func newRunner(g *graph.Graph, cfg Config, shapes map[graph.NodeID]tensor.Shape, tl *sim.Timeline, arrival time.Duration) *runner {
	r := &runner{
		g: g, cfg: cfg, shapes: shapes,
		tl:         tl,
		ready:      make(map[graph.NodeID]time.Duration),
		producedOn: make(map[graph.NodeID]procMask),
		batch:      1,
		seq:        arrival,
		all:        onCPU | onGPU,
	}
	if cfg.SoC.NPU != nil {
		r.all |= onNPU
	}
	// The input arrives in zero-copy shared memory: visible everywhere.
	in := g.Input()
	r.ready[in] = arrival
	r.producedOn[in] = r.all
	return r
}

// fusedMember is one batch member of a (possibly fused) run.
type fusedMember struct {
	// ctx, when non-nil, is this member's own deadline/cancellation: its
	// expiry drops the member from the batch without touching batchmates.
	ctx context.Context
	// err records the member's terminal context error once dropped.
	err error
	// vals holds the member's per-node activations in numeric mode.
	vals map[graph.NodeID]any
}

// checkMembers drops batch members whose context has died since the last
// plan step. Their rows stay in the fused panels (the work is already
// fused), but they receive no further numeric computation.
func (r *runner) checkMembers() {
	for _, it := range r.items {
		if it.err == nil && it.ctx != nil {
			if err := it.ctx.Err(); err != nil {
				it.err = err
			}
		}
	}
}

// eachLive runs fn once per still-live member's value map; a no-op in
// cost-only mode or once the run has failed. A pipeline defect reported
// by fn (e.g. a layer with no kernel for the storage type) fails the
// whole run, not one member — it is a plan problem, not a deadline.
func (r *runner) eachLive(fn func(vals map[graph.NodeID]any) error) {
	if !r.cfg.Numeric || r.failure != nil {
		return
	}
	for _, it := range r.items {
		if it.err == nil {
			if err := fn(it.vals); err != nil {
				r.failure = err
				return
			}
		}
	}
}

// scaleBatch widens a layer cost to the fused batch: activations, compute,
// and outputs grow with the row count; the weights are read once.
func (r *runner) scaleBatch(c nn.Cost) nn.Cost {
	if r.batch <= 1 {
		return c
	}
	b := int64(r.batch)
	return nn.Cost{MACs: c.MACs * b, InElems: c.InElems * b, WElems: c.WElems, OutElems: c.OutElems * b}
}

// execute walks the plan's steps in order, aborting between steps once the
// configured context is done.
func (r *runner) execute(plan *partition.Plan) error {
	for _, st := range plan.Steps {
		if r.cfg.Ctx != nil {
			if err := r.cfg.Ctx.Err(); err != nil {
				return err
			}
		}
		r.checkMembers()
		switch {
		case st.Layer != nil:
			if st.Layer.PNPU > 0 && st.Layer.PNPU < 1 {
				r.runLayer3(st.Layer.Node, st.Layer.P, st.Layer.PNPU)
			} else if st.Layer.PNPU >= 1 {
				r.runSingle(st.Layer.Node, partition.ProcNPU)
			} else {
				r.runLayer(st.Layer.Node, st.Layer.P)
			}
		case st.Branch != nil:
			r.runBranch(st.Branch)
		}
		if r.failure != nil {
			return r.failure
		}
	}
	return nil
}

// Run executes plan over g with the given float32 input.
func Run(g *graph.Graph, plan *partition.Plan, input *tensor.Tensor, cfg Config) (*Result, error) {
	if cfg.SoC == nil {
		return nil, fmt.Errorf("exec: SoC is required")
	}
	if err := checkStorage(cfg.Pipe.Storage); err != nil {
		return nil, err
	}
	shapes, err := g.InferShapes()
	if err != nil {
		return nil, err
	}
	if cfg.Numeric {
		if input == nil {
			return nil, fmt.Errorf("exec: numeric mode requires an input tensor")
		}
		if input.Shape != shapes[g.Input()] {
			return nil, fmt.Errorf("exec: input shape %v, graph wants %v", input.Shape, shapes[g.Input()])
		}
	}
	cover := plan.Covered()
	for i := 0; i < g.Len(); i++ {
		id := graph.NodeID(i)
		if g.Node(id).Layer.Kind() == nn.OpInput {
			continue
		}
		if cover[id] != 1 {
			return nil, fmt.Errorf("exec: plan covers node %d %dx, want exactly once", id, cover[id])
		}
	}

	r := newRunner(g, cfg, shapes, sim.NewTimeline(), 0)
	it := &fusedMember{}
	if cfg.Numeric {
		in, err := r.convertInput(input)
		if err != nil {
			return nil, err
		}
		it.vals = map[graph.NodeID]any{g.Input(): in}
	}
	r.items = []*fusedMember{it}
	if err := r.execute(plan); err != nil {
		return nil, err
	}

	if err := r.tl.Validate(); err != nil {
		return nil, err
	}
	makespan := r.tl.Makespan()
	rep := sim.Report{
		Latency:        makespan,
		DynamicJ:       r.tl.DynamicEnergyPJ() * 1e-12,
		DRAMJ:          float64(r.dramBytes) * cfg.SoC.DRAMPicoJPerByte * 1e-12,
		StaticJ:        cfg.SoC.StaticPowerW * makespan.Seconds(),
		CPUBusy:        r.tl.BusyTime(cfg.SoC.CPU.Name),
		GPUBusy:        r.tl.BusyTime(cfg.SoC.GPU.Name),
		KernelLaunches: r.launches,
	}
	if cfg.SoC.NPU != nil {
		rep.NPUBusy = r.tl.BusyTime(cfg.SoC.NPU.Name)
	}
	res := &Result{Report: rep, Timeline: r.tl}
	if cfg.Numeric {
		res.Output = outputF32(it.vals, g.Output())
	}
	return res, nil
}

// checkStorage rejects a pipeline whose storage type the executor has no
// kernels for — a malformed plan/config is a returned error, not a crash.
func checkStorage(dt tensor.DataType) error {
	switch dt {
	case tensor.F32, tensor.F16, tensor.QUInt8:
		return nil
	}
	return fmt.Errorf("exec: unknown storage type %v", dt)
}

// convertInput lowers the float32 input into the pipeline's storage type.
func (r *runner) convertInput(in *tensor.Tensor) (any, error) {
	switch r.cfg.Pipe.Storage {
	case tensor.F32:
		return in.Clone(), nil
	case tensor.F16:
		return tensor.ToHalf(in), nil
	case tensor.QUInt8:
		return tensor.Quantize(in, r.cfg.InputParams), nil
	}
	return nil, checkStorage(r.cfg.Pipe.Storage)
}

// outputF32 widens the final activation back to float32.
func outputF32(vals map[graph.NodeID]any, id graph.NodeID) *tensor.Tensor {
	switch v := vals[id].(type) {
	case *tensor.Tensor:
		return v
	case *tensor.HTensor:
		return tensor.HalfToFloat(v)
	case *tensor.QTensor:
		return tensor.Dequantize(v)
	}
	return nil
}

// proc returns the device model for a processor.
func (r *runner) proc(p partition.Proc) *device.Processor {
	switch p {
	case partition.ProcCPU:
		return r.cfg.SoC.CPU
	case partition.ProcNPU:
		return r.cfg.SoC.NPU
	}
	return r.cfg.SoC.GPU
}

// inputsReady returns the time at which every input of node id is
// available on the processors in need, charging CPU-GPU synchronization
// when a tensor was produced elsewhere (zero-copy map/unmap, or a full
// copy in the ablation configuration).
func (r *runner) inputsReady(id graph.NodeID, need procMask) time.Duration {
	var ready time.Duration
	for _, in := range r.g.Node(id).Inputs {
		t := r.ready[in]
		if need&^r.producedOn[in] != 0 {
			t += r.syncCost(in)
			// After synchronization the tensor is coherent everywhere.
			r.producedOn[in] = r.all
			r.ready[in] = t
		}
		if t > ready {
			ready = t
		}
	}
	return ready
}

// syncCost is the latency of making one tensor visible across processors:
// zero-copy cache maintenance over the buffer, or a full copy in the
// ablation configuration. Fused batches carry one activation buffer per
// row, so the maintained bytes scale with the row count.
func (r *runner) syncCost(id graph.NodeID) time.Duration {
	bytes := int64(r.shapes[id].Elems()) * r.cfg.Pipe.Storage.Size() * int64(r.batch)
	if r.cfg.ZeroCopy {
		return r.cfg.SoC.SyncCost(bytes)
	}
	// The copy-based path still performs the cache maintenance and then
	// moves the buffer through DRAM on top.
	copyT := float64(bytes) / (r.cfg.SoC.CPU.MemBWGBs * 1e9)
	return r.cfg.SoC.CopySyncOverhead + r.cfg.SoC.SyncCost(bytes) + time.Duration(copyT*float64(time.Second))
}

// sideWork builds the device work item for one processor's share of a
// layer.
func (r *runner) sideWork(p partition.Proc, kind nn.OpKind, c nn.Cost, sideCh int) device.Work {
	ssz := r.cfg.Pipe.Storage.Size()
	wsz := r.cfg.Pipe.WeightBytes(p)
	// The resident set stays per-row under fusion: a row-paneled kernel
	// streams one row tile at a time past the cache-resident weight block,
	// so batching widens the panel without pushing the layer over the
	// cache knee.
	perRowIn := c.InElems / int64(r.batch)
	return device.Work{
		Kind:            kind,
		MACs:            c.MACs,
		MovedBytes:      c.InElems*ssz + c.WElems*wsz + c.OutElems*ssz,
		WorkingSetBytes: perRowIn*ssz + c.WElems*wsz,
		Compute:         r.cfg.Pipe.ComputeType(p),
		Converted:       r.cfg.Pipe.Converted(p),
		SideChannels:    sideCh,
		Rows:            r.batch,
	}
}

// runSingle schedules one whole layer on one processor as its own plan
// step (serialized against the previous step).
func (r *runner) runSingle(id graph.NodeID, p partition.Proc) {
	r.runWhole(id, p, true, r.seq)
	r.seq = r.ready[id]
}

// runWhole schedules one whole layer on one processor, starting no earlier
// than floor. chargeLaunch=false models back-to-back command enqueueing
// within a branch: consecutive GPU kernels of the same branch need no CPU
// round-trip, so only the branch's first kernel pays the dispatch latency.
func (r *runner) runWhole(id graph.NodeID, p partition.Proc, chargeLaunch bool, floor time.Duration) {
	n := r.g.Node(id)
	ins := r.g.InputShapes(id, r.shapes)
	cost := r.scaleBatch(n.Layer.Cost(ins))
	ready := r.inputsReady(id, maskOf(p))
	if floor > ready {
		ready = floor
	}
	proc := r.proc(p)
	w := r.sideWork(p, n.Layer.Kind(), cost, 0)
	kernelDur := proc.KernelTime(w)
	dur := kernelDur
	if chargeLaunch {
		dur += proc.LaunchOverhead
	}
	start, end := r.schedule(proc, n.Layer.Name(), ready, dur, proc.KernelEnergyPJ(w))
	if r.cfg.TraceHook != nil {
		r.traceKernel(proc, p, n.Layer.Name(), n.Layer.Kind(), id, start, end, kernelDur, 1, cost)
	}
	r.launches++
	r.dramBytes += w.MovedBytes
	r.ready[id] = end
	r.producedOn[id] = maskOf(p)
	r.eachLive(func(vals map[graph.NodeID]any) error {
		out, err := r.allocOut(id, vals)
		if err != nil {
			return err
		}
		if err := r.forward(id, out, 0, r.fullRange(id), p, vals); err != nil {
			return err
		}
		vals[id] = out
		return nil
	})
}

// runLayer executes one plan layer step with split ratio p.
func (r *runner) runLayer(id graph.NodeID, p float64) {
	if p >= 1 {
		r.runSingle(id, partition.ProcCPU)
		return
	}
	if p <= 0 {
		r.runSingle(id, partition.ProcGPU)
		return
	}
	n := r.g.Node(id)
	ins := r.g.InputShapes(id, r.shapes)
	c := n.Layer.SplitChannels(ins)
	if c < 2 {
		// Degenerate: cannot split a single channel; run on the CPU.
		r.runSingle(id, partition.ProcCPU)
		return
	}
	splitC := int(math.Round(p * float64(c)))
	if splitC < 1 {
		splitC = 1
	}
	if splitC > c-1 {
		splitC = c - 1
	}
	pEff := float64(splitC) / float64(c)

	cost := r.scaleBatch(n.Layer.Cost(ins))
	kind := n.Layer.Kind()
	ready := r.inputsReady(id, onCPU|onGPU)
	if r.seq > ready {
		ready = r.seq
	}

	cpu, gpu := r.cfg.SoC.CPU, r.cfg.SoC.GPU
	cw := r.sideWork(partition.ProcCPU, kind, cost.Scale(pEff), splitC)
	gw := r.sideWork(partition.ProcGPU, kind, cost.Scale(1-pEff), c-splitC)
	cpuK := cpu.KernelTime(cw)
	gpuK := gpu.KernelTime(gw)

	var cpuDur, gpuDur time.Duration
	var gpuReady time.Duration
	if r.cfg.AsyncIssue {
		// The CPU enqueues the GPU command asynchronously and proceeds with
		// its own share; the dispatch latency runs on the GPU side (§6).
		cpuDur = cpu.LaunchOverhead + cpuK
		gpuDur = gpu.LaunchOverhead + gpuK
		gpuReady = ready
	} else {
		// Blocking issue: the CPU stalls for the GPU dispatch first.
		cpuDur = gpu.LaunchOverhead + cpu.LaunchOverhead + cpuK
		gpuDur = gpuK
		gpuReady = ready + gpu.LaunchOverhead
	}
	cpuStart, cpuEnd := r.schedule(cpu, n.Layer.Name()+"[cpu]", ready, cpuDur, cpu.KernelEnergyPJ(cw))
	gpuStart, gpuEnd := r.schedule(gpu, n.Layer.Name()+"[gpu]", gpuReady, gpuDur, gpu.KernelEnergyPJ(gw))
	if r.cfg.TraceHook != nil {
		r.traceKernel(cpu, partition.ProcCPU, n.Layer.Name()+"[cpu]", kind, id, cpuStart, cpuEnd, cpuK, pEff, cost)
		r.traceKernel(gpu, partition.ProcGPU, n.Layer.Name()+"[gpu]", kind, id, gpuStart, gpuEnd, gpuK, 1-pEff, cost)
	}
	r.launches += 2
	r.dramBytes += cw.MovedBytes + gw.MovedBytes

	end := cpuEnd
	if gpuEnd > end {
		end = gpuEnd
	}
	// Merge: with zero-copy memory the partial outputs already live in the
	// same buffer; the merge is the map/unmap barrier, whose cache
	// maintenance covers the shared input and output buffers.
	ssz := r.cfg.Pipe.Storage.Size()
	coherent := (cost.InElems + cost.OutElems) * ssz
	end += r.cfg.SoC.SyncCost(coherent)
	if !r.cfg.ZeroCopy {
		bytes := int64(r.shapes[id].Elems()) * ssz * int64(r.batch)
		end += r.cfg.SoC.CopySyncOverhead + time.Duration(float64(bytes)/(cpu.MemBWGBs*1e9)*float64(time.Second))
	}
	r.ready[id] = end
	r.producedOn[id] = r.all
	r.seq = end

	r.eachLive(func(vals map[graph.NodeID]any) error {
		out, err := r.allocOut(id, vals)
		if err != nil {
			return err
		}
		if err := r.forward(id, out, 0, splitC, partition.ProcCPU, vals); err != nil {
			return err
		}
		if err := r.forward(id, out, splitC, c, partition.ProcGPU, vals); err != nil {
			return err
		}
		vals[id] = out
		return nil
	})
}

// runBranch executes one branch-distributed fork-join group: every branch
// runs whole on its assigned processor, branches on the same processor
// serialize, and the downstream join synchronizes on all of them (§5).
func (r *runner) runBranch(st *partition.BranchStep) {
	floor := r.seq
	var groupEnd time.Duration
	for i, br := range st.Group.Branches {
		p := st.Assign[i]
		for j, id := range br {
			// A branch's kernels are enqueued back-to-back: only the first
			// pays the dispatch latency (§6's asynchronous command issue).
			r.runWhole(id, p, j == 0, floor)
		}
		if end := r.ready[br[len(br)-1]]; end > groupEnd {
			groupEnd = end
		}
	}
	r.seq = groupEnd
}

// fullRange returns the layer's split-channel count, or 1 for whole-layer
// execution of non-splittable layers.
func (r *runner) fullRange(id graph.NodeID) int {
	n := r.g.Node(id)
	ins := r.g.InputShapes(id, r.shapes)
	if c := n.Layer.SplitChannels(ins); c > 0 {
		return c
	}
	return 1
}

// allocOut allocates the node's output tensor in the storage type.
func (r *runner) allocOut(id graph.NodeID, vals map[graph.NodeID]any) (any, error) {
	shape := r.shapes[id]
	switch r.cfg.Pipe.Storage {
	case tensor.F32:
		return tensor.New(shape), nil
	case tensor.F16:
		return tensor.NewH(shape), nil
	case tensor.QUInt8:
		return tensor.NewQ(shape, r.outParams(id, vals)), nil
	}
	return nil, checkStorage(r.cfg.Pipe.Storage)
}

// outParams resolves the quantization grid of a node's output: the layer's
// calibrated output params, falling back to its first input's params for
// shape-preserving layers.
func (r *runner) outParams(id graph.NodeID, vals map[graph.NodeID]any) quant.Params {
	n := r.g.Node(id)
	if qi := n.Layer.Quant(); qi != nil && qi.Ready {
		return qi.Out
	}
	if len(n.Inputs) > 0 {
		if q, ok := vals[n.Inputs[0]].(*tensor.QTensor); ok {
			return q.Params
		}
	}
	return r.cfg.InputParams
}

// Forwarding interfaces implemented by the nn layers per pipeline.
type f32Forwarder interface {
	ForwardF32(ins []*tensor.Tensor, out *tensor.Tensor, c0, c1 int)
}
type hForwarder interface {
	ForwardF16(ins []*tensor.HTensor, out *tensor.HTensor, c0, c1 int)
}
type hWeightedForwarder interface {
	ForwardF16(ins []*tensor.HTensor, out *tensor.HTensor, c0, c1 int, fromQ bool)
}
type qForwarder interface {
	ForwardQ(ins []*tensor.QTensor, out *tensor.QTensor, c0, c1 int)
}
type qViaF16Forwarder interface {
	ForwardQViaF16(ins []*tensor.QTensor, out *tensor.QTensor, c0, c1 int)
}

// forward dispatches the numeric kernel for channels [c0,c1) of node id on
// the pipeline of processor side, reading and writing one batch member's
// value map. A layer with no kernel for the pipeline is a malformed plan:
// a returned error (a 500 at the serving layer), not a crash.
func (r *runner) forward(id graph.NodeID, out any, c0, c1 int, side partition.Proc, vals map[graph.NodeID]any) error {
	n := r.g.Node(id)
	layer := n.Layer
	switch r.cfg.Pipe.Storage {
	case tensor.F32:
		ins := make([]*tensor.Tensor, len(n.Inputs))
		for i, inID := range n.Inputs {
			ins[i] = vals[inID].(*tensor.Tensor)
		}
		l, ok := layer.(f32Forwarder)
		if !ok {
			return fmt.Errorf("exec: layer %s has no F32 pipeline", layer.Name())
		}
		l.ForwardF32(ins, out.(*tensor.Tensor), c0, c1)
	case tensor.F16:
		ins := make([]*tensor.HTensor, len(n.Inputs))
		for i, inID := range n.Inputs {
			ins[i] = vals[inID].(*tensor.HTensor)
		}
		switch l := layer.(type) {
		case hWeightedForwarder:
			l.ForwardF16(ins, out.(*tensor.HTensor), c0, c1, false)
		case hForwarder:
			l.ForwardF16(ins, out.(*tensor.HTensor), c0, c1)
		default:
			return fmt.Errorf("exec: layer %s has no F16 pipeline", layer.Name())
		}
	case tensor.QUInt8:
		ins := make([]*tensor.QTensor, len(n.Inputs))
		for i, inID := range n.Inputs {
			ins[i] = vals[inID].(*tensor.QTensor)
		}
		if r.cfg.Pipe.Converted(side) {
			if l, ok := layer.(qViaF16Forwarder); ok {
				l.ForwardQViaF16(ins, out.(*tensor.QTensor), c0, c1)
				return nil
			}
		}
		l, ok := layer.(qForwarder)
		if !ok {
			return fmt.Errorf("exec: layer %s has no QUInt8 pipeline", layer.Name())
		}
		l.ForwardQ(ins, out.(*tensor.QTensor), c0, c1)
	}
	return nil
}
