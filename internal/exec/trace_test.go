package exec

import (
	"math"
	"testing"

	"mulayer/internal/models"
	"mulayer/internal/nn"
	"mulayer/internal/partition"
)

// TestTraceHookZeroWhenNil: attaching a hook must observe the execution
// without changing it — the traced report equals the untraced one.
func TestTraceHookZeroWhenNil(t *testing.T) {
	m, plan, cfg := faultModel(t)
	base, err := Run(m.Graph, plan, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	events := 0
	cfg.TraceHook = func(TraceEvent) { events++ }
	traced, err := Run(m.Graph, plan, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if traced.Report != base.Report {
		t.Fatalf("trace hook changed the report: %+v vs %+v", traced.Report, base.Report)
	}
	if events != traced.Report.KernelLaunches {
		t.Fatalf("hook saw %d events, report counts %d launches", events, traced.Report.KernelLaunches)
	}
}

// TestTraceHookCoversEveryLayer: a split run emits one event per booked
// kernel — two per split layer with complementary shares — and every
// non-input node appears.
func TestTraceHookCoversEveryLayer(t *testing.T) {
	m, _, cfg := faultModel(t)
	plan := splitPlan(t, m, 0.5)
	var events []TraceEvent
	cfg.TraceHook = func(ev TraceEvent) { events = append(events, ev) }
	res, err := Run(m.Graph, plan, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("no trace events")
	}

	perNode := map[int][]TraceEvent{}
	for _, ev := range events {
		perNode[int(ev.Node)] = append(perNode[int(ev.Node)], ev)
		if ev.End < ev.Start || ev.End > res.Report.Latency {
			t.Fatalf("event %s interval [%v,%v] outside makespan %v", ev.Label, ev.Start, ev.End, res.Report.Latency)
		}
		if ev.KernelDur <= 0 || ev.KernelDur > ev.End-ev.Start {
			t.Fatalf("event %s kernel dur %v vs booked %v", ev.Label, ev.KernelDur, ev.End-ev.Start)
		}
		if ev.P <= 0 || ev.P > 1 {
			t.Fatalf("event %s share %v out of range", ev.Label, ev.P)
		}
		if ev.Rows != 1 || ev.Proc == nil || ev.Kind == nn.OpInput {
			t.Fatalf("event fields wrong: %+v", ev)
		}
	}
	for _, st := range plan.Steps {
		evs := perNode[int(st.Layer.Node)]
		if len(evs) == 0 {
			t.Fatalf("node %d executed but never traced", st.Layer.Node)
		}
		if st.Layer.P > 0 && st.Layer.P < 1 {
			if len(evs) != 2 {
				t.Fatalf("split node %d emitted %d events, want 2", st.Layer.Node, len(evs))
			}
			if sum := evs[0].P + evs[1].P; math.Abs(sum-1) > 1e-9 {
				t.Fatalf("split shares sum to %v, want 1", sum)
			}
			if evs[0].Side == evs[1].Side {
				t.Fatalf("split node %d traced twice on side %v", st.Layer.Node, evs[0].Side)
			}
		}
	}
}

// TestTraceHookFusedRows: fused runs carry the batch row count on every
// event.
func TestTraceHookFusedRows(t *testing.T) {
	m, plan, cfg := faultModel(t)
	rows := 0
	cfg.TraceHook = func(ev TraceEvent) {
		if rows == 0 {
			rows = ev.Rows
		}
		if ev.Rows != rows {
			t.Fatalf("row count varies across events: %d vs %d", ev.Rows, rows)
		}
	}
	if _, err := RunFused(m.Graph, plan, []FusedItem{{Rows: 3}, {Rows: 2}}, cfg); err != nil {
		t.Fatal(err)
	}
	if rows != 5 {
		t.Fatalf("fused events carry %d rows, want 5", rows)
	}
}

// TestTraceHookThreeWay: a CPU+GPU+NPU layer emits three events whose
// shares sum to one, each on a distinct side.
func TestTraceHookThreeWay(t *testing.T) {
	m := smallModel(t, models.GoogLeNet)
	shapes, err := m.Graph.InferShapes()
	if err != nil {
		t.Fatal(err)
	}
	order, err := m.Graph.Toposort()
	if err != nil {
		t.Fatal(err)
	}
	var plan partition.Plan
	for _, id := range order {
		n := m.Graph.Node(id)
		if n.Layer.Kind() == nn.OpInput {
			continue
		}
		st := &partition.LayerStep{Node: id, P: 1}
		if n.Layer.SplitChannels(m.Graph.InputShapes(id, shapes)) >= 3 {
			st.P, st.PNPU = 0.25, 0.25
		}
		plan.Steps = append(plan.Steps, partition.Step{Layer: st})
	}

	cfg := npuCfg(m, partition.ProcessorFriendly(), false)
	perNode := map[int][]TraceEvent{}
	cfg.TraceHook = func(ev TraceEvent) { perNode[int(ev.Node)] = append(perNode[int(ev.Node)], ev) }
	if _, err := Run(m.Graph, &plan, nil, cfg); err != nil {
		t.Fatal(err)
	}
	threeWay := 0
	for _, st := range plan.Steps {
		if st.Layer.PNPU <= 0 || st.Layer.PNPU >= 1 {
			continue
		}
		evs := perNode[int(st.Layer.Node)]
		if len(evs) != 3 {
			continue // degenerate split (too few channels)
		}
		threeWay++
		sum := 0.0
		sides := map[partition.Proc]bool{}
		for _, ev := range evs {
			sum += ev.P
			sides[ev.Side] = true
		}
		if math.Abs(sum-1) > 1e-9 || len(sides) != 3 {
			t.Fatalf("three-way node %d: shares sum %v across %d sides", st.Layer.Node, sum, len(sides))
		}
	}
	if threeWay == 0 {
		t.Fatal("no three-way layer was traced")
	}
}
