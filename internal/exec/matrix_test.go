package exec

import (
	"testing"

	"mulayer/internal/models"
	"mulayer/internal/partition"
	"mulayer/internal/tensor"
)

// TestModelMechanismMatrix runs every numeric zoo model through every
// pipeline end to end and checks that the predicted class agrees with the
// F32 reference — the broad integration safety net across layers
// (conv, depthwise, grouped, FC, pools, LRN, concat, residual add,
// softmax) × pipelines (F32, F16, uniform QUInt8, processor-friendly,
// three-way NPU).
func TestModelMechanismMatrix(t *testing.T) {
	type builder struct {
		name  string
		build func(models.Config) (*models.Model, error)
		cfg   models.Config
	}
	small := models.Config{Numeric: true, InputHW: 32, WidthScale: 0.25, Classes: 10, Seed: 1}
	alex := small
	alex.InputHW = 67
	// MobileNet's 27-layer ReLU6 stack crushes logit margins below the
	// softmax output's 8-bit grid, so it is scored on logits (the same
	// treatment as the Figure 10 accuracy experiment).
	mobile := small
	mobile.NoSoftmax = true
	builders := []builder{
		{"lenet", models.LeNet5, models.Config{Numeric: true, Seed: 1}},
		{"alexnet", models.AlexNet, alex},
		{"vgg16", models.VGG16, small},
		{"googlenet", models.GoogLeNet, small},
		{"squeezenet", models.SqueezeNetV11, small},
		{"mobilenet", models.MobileNetV1, mobile},
		{"resnet18", models.ResNet18, small},
	}
	type pipeline struct {
		name string
		opts func(m *models.Model) (partition.Options, Config)
	}
	pipes := []pipeline{
		{"f32-gpu", func(m *models.Model) (partition.Options, Config) {
			o := partition.SingleProcessor(testSoC, testPred, partition.ProcGPU, tensor.F32)
			return o, runCfg(m, o.Pipe, true)
		}},
		{"f16-gpu", func(m *models.Model) (partition.Options, Config) {
			o := partition.SingleProcessor(testSoC, testPred, partition.ProcGPU, tensor.F16)
			return o, runCfg(m, o.Pipe, true)
		}},
		{"u8-cpu", func(m *models.Model) (partition.Options, Config) {
			o := partition.SingleProcessor(testSoC, testPred, partition.ProcCPU, tensor.QUInt8)
			return o, runCfg(m, o.Pipe, true)
		}},
		{"mulayer", func(m *models.Model) (partition.Options, Config) {
			o := partition.MuLayer(testSoC, testPred)
			return o, runCfg(m, o.Pipe, true)
		}},
		{"mulayer+npu", func(m *models.Model) (partition.Options, Config) {
			o := partition.MuLayerNPU(npuSoC, npuPred)
			cfg := Config{SoC: npuSoC, Pipe: o.Pipe, Numeric: true, InputParams: m.InputParams, AsyncIssue: true, ZeroCopy: true}
			return o, cfg
		}},
	}

	for _, b := range builders {
		b := b
		t.Run(b.name, func(t *testing.T) {
			m, err := b.build(b.cfg)
			if err != nil {
				t.Fatal(err)
			}
			cal := make([]*tensor.Tensor, 2)
			for i := range cal {
				c := tensor.New(m.InputShape)
				c.FillRandom(uint64(100+i), 1)
				cal[i] = c
			}
			if err := m.Calibrate(cal); err != nil {
				t.Fatal(err)
			}
			in := testInput(m)
			refVals, err := m.RunF32(in)
			if err != nil {
				t.Fatal(err)
			}
			want := argmax(refVals[m.Graph.Output()])
			for _, p := range pipes {
				o, cfg := p.opts(m)
				plan, err := partition.Build(m.Graph, o)
				if err != nil {
					t.Fatalf("%s: plan: %v", p.name, err)
				}
				res, err := Run(m.Graph, plan, in, cfg)
				if err != nil {
					t.Fatalf("%s: run: %v", p.name, err)
				}
				if got := argmax(res.Output); got != want {
					t.Errorf("%s: predicted class %d, F32 reference %d", p.name, got, want)
				}
				if res.Report.Latency <= 0 {
					t.Errorf("%s: non-positive latency", p.name)
				}
				if err := res.Timeline.Validate(); err != nil {
					t.Errorf("%s: %v", p.name, err)
				}
			}
		})
	}
}
