package exec

import (
	"testing"

	"mulayer/internal/gemm"
	"mulayer/internal/models"
	"mulayer/internal/partition"
	"mulayer/internal/tensor"
)

// TestGoldenTiledKernelsMatchRefKernels extends the golden-output gate
// to the packed/tiled GEMM kernels: for every bundled model and split
// ratio p ∈ {0, .25, .5, .75, 1} under the uniform QUInt8 pipeline, a
// forward pass through the default kernels (packed weights, register
// tiles) must be bit-identical to the same pass forced through the naive
// *Ref oracle loops. The QUInt8 pipeline is exactly integer arithmetic
// on the CPU side and order-preserving float32 accumulation on the F16
// GPU side, so any tiling, packing, or zero-point-decomposition bug
// shows up as a hard diff — there is no tolerance to hide behind.
//
// Not parallel: it toggles gemm.ForceRef, which is process-global.
func TestGoldenTiledKernelsMatchRefKernels(t *testing.T) {
	if gemm.ForceRef {
		t.Fatal("gemm.ForceRef set at test entry")
	}
	defer func() { gemm.ForceRef = false }()
	builders := map[string]struct {
		build   func(models.Config) (*models.Model, error)
		inputHW int // AlexNet's stride-4 stem collapses below 64x64
	}{
		"lenet5":     {models.LeNet5, 32},
		"alexnet":    {models.AlexNet, 64},
		"vgg16":      {models.VGG16, 32},
		"googlenet":  {models.GoogLeNet, 32},
		"squeezenet": {models.SqueezeNetV11, 32},
		"mobilenet":  {models.MobileNetV1, 32},
		"resnet18":   {models.ResNet18, 32},
	}
	for name, bc := range builders {
		t.Run(name, func(t *testing.T) {
			m, err := bc.build(models.Config{Numeric: true, InputHW: bc.inputHW, WidthScale: 0.25, Classes: 10, Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			cal := make([]*tensor.Tensor, 2)
			for i := range cal {
				in := tensor.New(m.InputShape)
				in.FillRandom(uint64(100+i), 1)
				cal[i] = in
			}
			if err := m.Calibrate(cal); err != nil {
				t.Fatal(err)
			}
			pipe := partition.Uniform(tensor.QUInt8)
			cfg := runCfg(m, pipe, true)
			in := tensor.New(m.InputShape)
			in.FillRandom(9000, 1)

			for _, p := range []float64{0, 0.25, 0.5, 0.75, 1} {
				plan := splitPlan(t, m, p)

				tiled, err := Run(m.Graph, plan, in, cfg)
				if err != nil {
					t.Fatalf("p=%v tiled: %v", p, err)
				}

				gemm.ForceRef = true
				ref, errRef := Run(m.Graph, plan, in, cfg)
				gemm.ForceRef = false
				if errRef != nil {
					t.Fatalf("p=%v ref: %v", p, errRef)
				}

				if d := tiled.Output.MaxAbsDiff(ref.Output); d != 0 {
					t.Fatalf("p=%v: tiled output differs from ref kernels by %v", p, d)
				}
			}
		})
	}
}
