package exec

import (
	"context"
	"fmt"
	"time"

	"mulayer/internal/graph"
	"mulayer/internal/nn"
	"mulayer/internal/partition"
	"mulayer/internal/sim"
	"mulayer/internal/tensor"
)

// FusedItem is one member of a fused micro-batch.
type FusedItem struct {
	// Ctx, when non-nil, is the member's own deadline/cancellation.
	// Its expiry drops the member from the batch — the member's result
	// carries the context error — without aborting its batchmates; the
	// member's rows stay in the already-fused panels.
	Ctx context.Context
	// Input is the member's input tensor (numeric mode only).
	Input *tensor.Tensor
	// Rows is the member's row multiplicity in the fused panels (0 and 1
	// mean one row). Rows > 1 is a cost-only construct — one client
	// submitting several inputs at once — and is rejected in numeric mode,
	// where each member carries exactly one input tensor.
	Rows int
}

// rows returns the member's effective row count.
func (it FusedItem) rows() int {
	if it.Rows < 1 {
		return 1
	}
	return it.Rows
}

// FusedItemResult is one member's slice of a fused run.
type FusedItemResult struct {
	// Err is the member's context error when it was dropped mid-run; nil
	// for members that completed.
	Err error
	// Output is the member's final activation (numeric mode, completed
	// members only).
	Output *tensor.Tensor
	// Latency is the member's completion time. Fused members finish with
	// the batch: every completed member observes the batch makespan.
	Latency time.Duration
}

// FusedResult is the outcome of one fused micro-batch execution.
type FusedResult struct {
	Items []FusedItemResult
	// Rows is the total row count fused into every kernel.
	Rows     int
	Report   sim.Report
	Timeline *sim.Timeline
}

// RunFused executes plan once over g with every item's rows fused into a
// single batched kernel per layer — the server-side micro-batching
// primitive. Unlike RunBatch (which simulates independent single-row
// inferences sharing a timeline), RunFused models one execution whose GEMM
// row panels carry the whole batch: each layer pays one kernel launch and
// one weight read regardless of the row count, which is where batching's
// throughput win comes from. A one-item, one-row call is exactly Run.
//
// In numeric mode every item must carry an input; outputs are computed per
// member and are bit-identical to the member's own single-input Run under
// the same plan (the fused panels change the cost model, not the math).
func RunFused(g *graph.Graph, plan *partition.Plan, items []FusedItem, cfg Config) (*FusedResult, error) {
	if cfg.SoC == nil {
		return nil, fmt.Errorf("exec: SoC is required")
	}
	if err := checkStorage(cfg.Pipe.Storage); err != nil {
		return nil, err
	}
	if len(items) == 0 {
		return nil, fmt.Errorf("exec: fused batch needs at least one item")
	}
	shapes, err := g.InferShapes()
	if err != nil {
		return nil, err
	}
	rows := 0
	for i, it := range items {
		rows += it.rows()
		if cfg.Numeric {
			if it.Rows > 1 {
				return nil, fmt.Errorf("exec: numeric fused item %d has %d rows; numeric members carry one input each", i, it.Rows)
			}
			if it.Input == nil {
				return nil, fmt.Errorf("exec: numeric fused item %d has no input", i)
			}
			if it.Input.Shape != shapes[g.Input()] {
				return nil, fmt.Errorf("exec: fused item %d input shape %v, graph wants %v", i, it.Input.Shape, shapes[g.Input()])
			}
		}
	}
	cover := plan.Covered()
	for i := 0; i < g.Len(); i++ {
		id := graph.NodeID(i)
		if g.Node(id).Layer.Kind() == nn.OpInput {
			continue
		}
		if cover[id] != 1 {
			return nil, fmt.Errorf("exec: plan covers node %d %dx, want exactly once", id, cover[id])
		}
	}

	r := newRunner(g, cfg, shapes, sim.NewTimeline(), 0)
	r.batch = rows
	r.items = make([]*fusedMember, len(items))
	for i, it := range items {
		m := &fusedMember{ctx: it.Ctx}
		if cfg.Numeric {
			in, err := r.convertInput(it.Input)
			if err != nil {
				return nil, err
			}
			m.vals = map[graph.NodeID]any{g.Input(): in}
		}
		r.items[i] = m
	}
	if err := r.execute(plan); err != nil {
		return nil, err
	}
	r.checkMembers()

	if err := r.tl.Validate(); err != nil {
		return nil, err
	}
	makespan := r.tl.Makespan()
	rep := sim.Report{
		Latency:        makespan,
		DynamicJ:       r.tl.DynamicEnergyPJ() * 1e-12,
		DRAMJ:          float64(r.dramBytes) * cfg.SoC.DRAMPicoJPerByte * 1e-12,
		StaticJ:        cfg.SoC.StaticPowerW * makespan.Seconds(),
		CPUBusy:        r.tl.BusyTime(cfg.SoC.CPU.Name),
		GPUBusy:        r.tl.BusyTime(cfg.SoC.GPU.Name),
		KernelLaunches: r.launches,
	}
	if cfg.SoC.NPU != nil {
		rep.NPUBusy = r.tl.BusyTime(cfg.SoC.NPU.Name)
	}
	res := &FusedResult{Rows: rows, Report: rep, Timeline: r.tl}
	end := r.ready[g.Output()]
	res.Items = make([]FusedItemResult, len(items))
	for i, m := range r.items {
		ir := FusedItemResult{Err: m.err}
		if m.err == nil {
			ir.Latency = end
			if cfg.Numeric {
				ir.Output = outputF32(m.vals, g.Output())
			}
		}
		res.Items[i] = ir
	}
	return res, nil
}
