package exec

import (
	"testing"

	"mulayer/internal/models"
	"mulayer/internal/partition"
	"mulayer/internal/tensor"
)

// batchPlans builds the policy plan set for a spec model.
func batchPlans(t *testing.T, m *models.Model) BatchPlans {
	t.Helper()
	cpuO := partition.SingleProcessor(testSoC, testPred, partition.ProcCPU, tensor.QUInt8)
	gpuO := partition.SingleProcessor(testSoC, testPred, partition.ProcGPU, tensor.F16)
	coopO := partition.MuLayer(testSoC, testPred)
	cpuP, err := partition.Build(m.Graph, cpuO)
	if err != nil {
		t.Fatal(err)
	}
	gpuP, err := partition.Build(m.Graph, gpuO)
	if err != nil {
		t.Fatal(err)
	}
	coopP, err := partition.Build(m.Graph, coopO)
	if err != nil {
		t.Fatal(err)
	}
	return BatchPlans{
		CPU: cpuP, GPU: gpuP, Coop: coopP,
		CPUPipe: cpuO.Pipe, GPUPipe: gpuO.Pipe, CoopPipe: coopO.Pipe,
	}
}

func batchCfg() Config {
	return Config{SoC: testSoC, AsyncIssue: true, ZeroCopy: true}
}

func TestBatchTaxonomyFigure4(t *testing.T) {
	// The §2.2 taxonomy, quantified: network-to-processor mapping improves
	// throughput over a single processor but not single-input latency;
	// μLayer improves both.
	m, err := models.GoogLeNet(models.Config{})
	if err != nil {
		t.Fatal(err)
	}
	plans := batchPlans(t, m)
	const n = 8
	run := func(p BatchPolicy) *BatchResult {
		r, err := RunBatch(m.Graph, p, plans, n, batchCfg())
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		return r
	}
	cpu := run(BatchSingleCPU)
	gpu := run(BatchSingleGPU)
	n2p := run(BatchNetworkToProcessor)
	mu := run(BatchMuLayer)

	bestSingle := cpu
	if gpu.ThroughputIPS > bestSingle.ThroughputIPS {
		bestSingle = gpu
	}
	if n2p.ThroughputIPS <= bestSingle.ThroughputIPS {
		t.Errorf("network-to-processor throughput %.2f must beat best single %.2f",
			n2p.ThroughputIPS, bestSingle.ThroughputIPS)
	}
	// First-input latency under N2P is a single-processor run: the mean
	// per-input latency cannot drop below the faster processor's
	// single-inference time.
	singleInferCPU := cpu.Makespan / n
	singleInferGPU := gpu.Makespan / n
	fastest := singleInferCPU
	if singleInferGPU < fastest {
		fastest = singleInferGPU
	}
	muSingle := mu.Makespan / n
	if muSingle >= fastest {
		t.Errorf("μLayer per-input time %v must beat the fastest single processor %v", muSingle, fastest)
	}
	if mu.ThroughputIPS <= bestSingle.ThroughputIPS {
		t.Errorf("μLayer throughput %.2f must beat best single %.2f", mu.ThroughputIPS, bestSingle.ThroughputIPS)
	}
	// Sanity: mean ≤ max, makespan ≥ max single latency.
	for _, r := range []*BatchResult{cpu, gpu, n2p, mu} {
		if r.MeanLatency > r.MaxLatency {
			t.Error("mean latency above max")
		}
		if r.Makespan < r.MaxLatency {
			t.Error("makespan below max latency")
		}
		if err := r.Timeline.Validate(); err != nil {
			t.Error(err)
		}
	}
}

func TestBatchNetworkToProcessorOverlaps(t *testing.T) {
	m, _ := models.AlexNet(models.Config{})
	plans := batchPlans(t, m)
	two, err := RunBatch(m.Graph, BatchNetworkToProcessor, plans, 2, batchCfg())
	if err != nil {
		t.Fatal(err)
	}
	cpuOne, err := RunBatch(m.Graph, BatchSingleCPU, plans, 1, batchCfg())
	if err != nil {
		t.Fatal(err)
	}
	gpuOne, err := RunBatch(m.Graph, BatchSingleGPU, plans, 1, batchCfg())
	if err != nil {
		t.Fatal(err)
	}
	slower := cpuOne.Makespan
	if gpuOne.Makespan > slower {
		slower = gpuOne.Makespan
	}
	// Two alternating inputs run concurrently: the batch finishes with the
	// slower of the two single runs (plus negligible interaction), not
	// their sum.
	if two.Makespan > slower+slower/20 {
		t.Fatalf("alternating batch %v did not overlap (single runs %v / %v)",
			two.Makespan, cpuOne.Makespan, gpuOne.Makespan)
	}
}

func TestBatchErrors(t *testing.T) {
	m, _ := models.LeNet5(models.Config{})
	plans := batchPlans(t, m)
	if _, err := RunBatch(m.Graph, BatchMuLayer, plans, 0, batchCfg()); err == nil {
		t.Error("zero batch must fail")
	}
	cfg := batchCfg()
	cfg.Numeric = true
	if _, err := RunBatch(m.Graph, BatchMuLayer, plans, 1, cfg); err == nil {
		t.Error("numeric batch must fail")
	}
	if _, err := RunBatch(m.Graph, BatchPolicy(9), plans, 1, batchCfg()); err == nil {
		t.Error("unknown policy must fail")
	}
	if _, err := RunBatch(m.Graph, BatchMuLayer, BatchPlans{}, 1, batchCfg()); err == nil {
		t.Error("missing plan must fail")
	}
	if _, err := RunBatch(m.Graph, BatchMuLayer, plans, 1, Config{}); err == nil {
		t.Error("missing SoC must fail")
	}
}

func TestBatchPolicyStrings(t *testing.T) {
	seen := map[string]bool{}
	for _, p := range []BatchPolicy{BatchSingleCPU, BatchSingleGPU, BatchNetworkToProcessor, BatchMuLayer} {
		s := p.String()
		if s == "" || seen[s] {
			t.Fatalf("bad or duplicate policy string %q", s)
		}
		seen[s] = true
	}
}
