package exec

import (
	"errors"
	"testing"
	"time"

	"mulayer/internal/device"
)

// TestWatchdogTripsOnStall: a kernel stalled past its budget must abort
// the run with a typed *WatchdogError carrying the processor and budget,
// and the partial timeline must book the budget, not the full stall —
// the watchdog killed the kernel at the budget boundary.
func TestWatchdogTripsOnStall(t *testing.T) {
	m, plan, cfg := faultModel(t)
	base, err := Run(m.Graph, plan, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	cfg.FaultHook = func(p *device.Processor, kernel string, d time.Duration) (time.Duration, error) {
		calls++
		if calls == 3 {
			return d * 100, nil // one enormous stall
		}
		return d, nil
	}
	cfg.WatchdogFactor = 8
	res, err := Run(m.Graph, plan, nil, cfg)
	var wd *WatchdogError
	if !errors.As(err, &wd) {
		t.Fatalf("got %v, want *WatchdogError", err)
	}
	if wd.Proc == "" || wd.Kernel == "" {
		t.Fatalf("watchdog error missing identity: %+v", wd)
	}
	if wd.Took <= wd.Budget {
		t.Fatalf("trip with Took %v <= Budget %v", wd.Took, wd.Budget)
	}
	if res != nil && res.Report.Latency > base.Report.Latency*100 {
		t.Fatalf("partial report booked the full stall: %v vs base %v", res.Report.Latency, base.Report.Latency)
	}
}

// TestWatchdogWithinBudgetPasses: stalls inside the budget pass through
// untouched — the watchdog only converts runaway stalls into failures.
func TestWatchdogWithinBudgetPasses(t *testing.T) {
	m, plan, cfg := faultModel(t)
	cfg.FaultHook = func(p *device.Processor, kernel string, d time.Duration) (time.Duration, error) {
		return d * 4, nil // everywhere stalled, but within an 8× budget
	}
	cfg.WatchdogFactor = 8
	if _, err := Run(m.Graph, plan, nil, cfg); err != nil {
		t.Fatalf("within-budget stall failed the run: %v", err)
	}
}

// TestWatchdogDisarmedWithoutFactor: factor 0 keeps the PR 3 behavior —
// arbitrary stalls lengthen the makespan but never fail the run.
func TestWatchdogDisarmedWithoutFactor(t *testing.T) {
	m, plan, cfg := faultModel(t)
	cfg.FaultHook = func(p *device.Processor, kernel string, d time.Duration) (time.Duration, error) {
		return d * 1000, nil
	}
	if _, err := Run(m.Graph, plan, nil, cfg); err != nil {
		t.Fatalf("disarmed watchdog failed a stalled run: %v", err)
	}
}

// TestWatchdogFusedRun: the fused (batched) path takes the same abort —
// a stalled device cannot hold a batch's members hostage.
func TestWatchdogFusedRun(t *testing.T) {
	m, plan, cfg := faultModel(t)
	calls := 0
	cfg.FaultHook = func(p *device.Processor, kernel string, d time.Duration) (time.Duration, error) {
		calls++
		if calls == 2 {
			return d * 100, nil
		}
		return d, nil
	}
	cfg.WatchdogFactor = 8
	var wd *WatchdogError
	if _, err := RunFused(m.Graph, plan, []FusedItem{{Rows: 2}, {Rows: 1}}, cfg); !errors.As(err, &wd) {
		t.Fatalf("fused: got %v, want *WatchdogError", err)
	}
}
