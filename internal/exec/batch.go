package exec

import (
	"fmt"
	"time"

	"mulayer/internal/graph"
	"mulayer/internal/partition"
	"mulayer/internal/sim"
)

// BatchPolicy selects how a batch of independent inputs is distributed —
// the NN-execution taxonomy of §2.2 / Figure 4.
type BatchPolicy int

// The multi-input execution policies.
const (
	// BatchSingleCPU processes every input sequentially on the CPU.
	BatchSingleCPU BatchPolicy = iota
	// BatchSingleGPU processes every input sequentially on the GPU.
	BatchSingleGPU
	// BatchNetworkToProcessor alternates whole inputs between the CPU and
	// the GPU (Figure 4a, e.g. MCDNN): throughput improves, but each
	// input's latency is still bounded by a single processor.
	BatchNetworkToProcessor
	// BatchMuLayer runs every input with the cooperative μLayer plan
	// (Figure 4c): both throughput and single-input latency improve.
	BatchMuLayer
)

// String implements fmt.Stringer.
func (p BatchPolicy) String() string {
	switch p {
	case BatchSingleCPU:
		return "single-cpu"
	case BatchSingleGPU:
		return "single-gpu"
	case BatchNetworkToProcessor:
		return "network-to-processor"
	case BatchMuLayer:
		return "mulayer"
	}
	return fmt.Sprintf("BatchPolicy(%d)", int(p))
}

// BatchPlans carries the per-policy execution plans RunBatch dispatches
// over (build them with the partition presets).
type BatchPlans struct {
	CPU  *partition.Plan // whole network on the CPU
	GPU  *partition.Plan // whole network on the GPU
	Coop *partition.Plan // the μLayer plan
	// CoopPipe is the pipeline of the cooperative plan (the single-
	// processor plans use CPUPipe/GPUPipe).
	CPUPipe, GPUPipe, CoopPipe partition.Pipeline
}

// BatchResult aggregates one batch simulation.
type BatchResult struct {
	// Makespan is the time to drain the whole batch.
	Makespan time.Duration
	// ThroughputIPS is inputs per second over the makespan.
	ThroughputIPS float64
	// MeanLatency and MaxLatency are per-input completion times measured
	// from the batch arrival at t=0 (queueing included, §2.2's
	// single-input-latency argument).
	MeanLatency time.Duration
	MaxLatency  time.Duration
	Timeline    *sim.Timeline
}

// RunBatch simulates n independent inputs, all arriving at t=0, under the
// given policy. Cost-only: the numeric pipelines are exercised by Run.
func RunBatch(g *graph.Graph, policy BatchPolicy, plans BatchPlans, n int, cfg Config) (*BatchResult, error) {
	if cfg.SoC == nil {
		return nil, fmt.Errorf("exec: SoC is required")
	}
	if n <= 0 {
		return nil, fmt.Errorf("exec: batch size must be positive")
	}
	if cfg.Numeric {
		return nil, fmt.Errorf("exec: RunBatch is cost-only; use Run for numeric inference")
	}
	shapes, err := g.InferShapes()
	if err != nil {
		return nil, err
	}

	pick := func(i int) (*partition.Plan, partition.Pipeline, error) {
		switch policy {
		case BatchSingleCPU:
			return plans.CPU, plans.CPUPipe, nil
		case BatchSingleGPU:
			return plans.GPU, plans.GPUPipe, nil
		case BatchNetworkToProcessor:
			if i%2 == 0 {
				return plans.CPU, plans.CPUPipe, nil
			}
			return plans.GPU, plans.GPUPipe, nil
		case BatchMuLayer:
			return plans.Coop, plans.CoopPipe, nil
		}
		return nil, partition.Pipeline{}, fmt.Errorf("exec: unknown batch policy %d", int(policy))
	}

	tl := sim.NewTimeline()
	res := &BatchResult{Timeline: tl}
	var totalLatency time.Duration
	for i := 0; i < n; i++ {
		plan, pipe, err := pick(i)
		if err != nil {
			return nil, err
		}
		if plan == nil {
			return nil, fmt.Errorf("exec: policy %v needs a plan that was not provided", policy)
		}
		c := cfg
		c.Pipe = pipe
		// All inputs are available at t=0; the shared timeline makes
		// same-processor inputs queue and different-processor inputs
		// overlap, which is exactly Figure 4's distinction.
		r := newRunner(g, c, shapes, tl, 0)
		if err := r.execute(plan); err != nil {
			return nil, err
		}
		end := r.ready[g.Output()]
		totalLatency += end
		if end > res.MaxLatency {
			res.MaxLatency = end
		}
	}
	if err := tl.Validate(); err != nil {
		return nil, err
	}
	res.Makespan = tl.Makespan()
	res.MeanLatency = totalLatency / time.Duration(n)
	res.ThroughputIPS = float64(n) / res.Makespan.Seconds()
	return res, nil
}
