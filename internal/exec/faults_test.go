package exec

import (
	"errors"
	"strings"
	"testing"
	"time"

	"mulayer/internal/device"
	"mulayer/internal/models"
	"mulayer/internal/partition"
	"mulayer/internal/soc"
	"mulayer/internal/tensor"
)

// faultModel builds a small cost-only model and a mulayer-style plan.
func faultModel(t *testing.T) (*models.Model, *partition.Plan, Config) {
	t.Helper()
	m, err := models.LeNet5(models.Config{})
	if err != nil {
		t.Fatal(err)
	}
	s := soc.Exynos7420()
	cfg := DefaultConfig(s)
	plan := splitPlan(t, m, 0.5)
	return m, plan, cfg
}

// TestFaultHookStall: a stalling hook must lengthen the simulated
// makespan and never fail the run.
func TestFaultHookStall(t *testing.T) {
	m, plan, cfg := faultModel(t)
	base, err := Run(m.Graph, plan, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.FaultHook = func(p *device.Processor, kernel string, d time.Duration) (time.Duration, error) {
		return d * 10, nil
	}
	stalled, err := Run(m.Graph, plan, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if stalled.Report.Latency <= base.Report.Latency {
		t.Fatalf("stalled latency %v not above base %v", stalled.Report.Latency, base.Report.Latency)
	}
}

// TestFaultHookFail: a failing hook must abort the run with the hook's
// error — no panic, no partial success.
func TestFaultHookFail(t *testing.T) {
	m, plan, cfg := faultModel(t)
	boom := errors.New("injected kernel failure")
	calls := 0
	cfg.FaultHook = func(p *device.Processor, kernel string, d time.Duration) (time.Duration, error) {
		calls++
		if calls == 3 {
			return d, boom
		}
		return d, nil
	}
	if _, err := Run(m.Graph, plan, nil, cfg); !errors.Is(err, boom) {
		t.Fatalf("got %v, want the injected failure", err)
	}
	// Fused runs take the same abort path.
	calls = 0
	if _, err := RunFused(m.Graph, plan, []FusedItem{{Rows: 2}}, cfg); !errors.Is(err, boom) {
		t.Fatalf("fused: got %v, want the injected failure", err)
	}
}

// TestFaultHookZeroWhenNil: the healthy path must not change behavior —
// hook absent and hook present-but-quiet produce identical reports.
func TestFaultHookZeroWhenNil(t *testing.T) {
	m, plan, cfg := faultModel(t)
	base, err := Run(m.Graph, plan, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.FaultHook = func(p *device.Processor, kernel string, d time.Duration) (time.Duration, error) {
		return d, nil
	}
	quiet, err := Run(m.Graph, plan, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if quiet.Report.Latency != base.Report.Latency || quiet.Report.KernelLaunches != base.Report.KernelLaunches {
		t.Fatalf("quiet hook changed the report: %+v vs %+v", quiet.Report, base.Report)
	}
}

// TestUnknownStorageIsError: a malformed pipeline is a returned error,
// not a process crash (the former panic path).
func TestUnknownStorageIsError(t *testing.T) {
	m, plan, cfg := faultModel(t)
	cfg.Pipe.Storage = tensor.DataType(99)
	if _, err := Run(m.Graph, plan, nil, cfg); err == nil || !strings.Contains(err.Error(), "unknown storage") {
		t.Fatalf("unknown storage: got %v, want error", err)
	}
	if _, err := RunFused(m.Graph, plan, []FusedItem{{}}, cfg); err == nil || !strings.Contains(err.Error(), "unknown storage") {
		t.Fatalf("fused unknown storage: got %v, want error", err)
	}
}
