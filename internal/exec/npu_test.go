package exec

import (
	"testing"

	"mulayer/internal/models"
	"mulayer/internal/nn"
	"mulayer/internal/partition"
	"mulayer/internal/profile"
	"mulayer/internal/soc"
	"mulayer/internal/tensor"
)

var (
	npuSoC  = soc.Exynos7420NPU()
	npuPred = profile.Build(npuSoC.Processors()...)
)

func npuCfg(m *models.Model, pipe partition.Pipeline, numeric bool) Config {
	return Config{
		SoC: npuSoC, Pipe: pipe, Numeric: numeric,
		InputParams: m.InputParams, AsyncIssue: true, ZeroCopy: true,
	}
}

func TestThreeWaySplitBitExactVsSingleCPU(t *testing.T) {
	// Under a uniform QUInt8 pipeline all three processors run identical
	// integer arithmetic, so a forced three-way split must reproduce the
	// single-CPU output bit for bit — the §8.3 no-redundancy invariant.
	m := smallModel(t, models.GoogLeNet)
	in := testInput(m)
	pipe := partition.Uniform(tensor.QUInt8)

	single, err := partition.Build(m.Graph, partition.SingleProcessor(npuSoC, npuPred, partition.ProcCPU, tensor.QUInt8))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Run(m.Graph, single, in, npuCfg(m, pipe, true))
	if err != nil {
		t.Fatal(err)
	}

	shapes, _ := m.Graph.InferShapes()
	var plan partition.Plan
	order, _ := m.Graph.Toposort()
	for _, id := range order {
		n := m.Graph.Node(id)
		if n.Layer.Kind() == nn.OpInput {
			continue
		}
		st := &partition.LayerStep{Node: id, P: 1}
		if n.Layer.SplitChannels(m.Graph.InputShapes(id, shapes)) >= 3 {
			st.P, st.PNPU = 0.25, 0.25 // CPU 25%, NPU 25%, GPU 50%
		}
		plan.Steps = append(plan.Steps, partition.Step{Layer: st})
	}
	got, err := Run(m.Graph, &plan, in, npuCfg(m, pipe, true))
	if err != nil {
		t.Fatal(err)
	}
	if got.Output.MaxAbsDiff(ref.Output) != 0 {
		t.Fatal("three-way uniform-QUInt8 output differs from single-CPU output")
	}
	if got.Report.NPUBusy <= 0 {
		t.Fatal("the NPU must have been busy")
	}
}

func TestMuLayerNPUBeatsTwoWaySimulated(t *testing.T) {
	for _, build := range []func(models.Config) (*models.Model, error){models.VGG16, models.GoogLeNet} {
		m, err := build(models.Config{})
		if err != nil {
			t.Fatal(err)
		}
		run := func(o partition.Options) *Result {
			plan, err := partition.Build(m.Graph, o)
			if err != nil {
				t.Fatal(err)
			}
			res, err := Run(m.Graph, plan, nil, Config{SoC: npuSoC, Pipe: o.Pipe, AsyncIssue: true, ZeroCopy: true})
			if err != nil {
				t.Fatal(err)
			}
			return res
		}
		three := run(partition.MuLayerNPU(npuSoC, npuPred))
		two := run(partition.MuLayer(npuSoC, npuPred))
		npuOnly := run(partition.NPUOnly(npuSoC, npuPred))
		if three.Report.Latency >= two.Report.Latency {
			t.Errorf("%s: three-way %v !< two-way %v", m.Name, three.Report.Latency, two.Report.Latency)
		}
		if three.Report.Latency >= npuOnly.Report.Latency {
			t.Errorf("%s: three-way %v !< NPU-only %v", m.Name, three.Report.Latency, npuOnly.Report.Latency)
		}
		if three.Report.NPUBusy <= 0 || three.Report.CPUBusy <= 0 || three.Report.GPUBusy <= 0 {
			t.Errorf("%s: all three processors must contribute", m.Name)
		}
		if err := three.Timeline.Validate(); err != nil {
			t.Error(err)
		}
	}
}

func TestNPUOnlyUsesOnlyNPU(t *testing.T) {
	m, _ := models.AlexNet(models.Config{})
	o := partition.NPUOnly(npuSoC, npuPred)
	plan, err := partition.Build(m.Graph, o)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(m.Graph, plan, nil, Config{SoC: npuSoC, Pipe: o.Pipe, AsyncIssue: true, ZeroCopy: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.CPUBusy != 0 || res.Report.GPUBusy != 0 {
		t.Fatal("NPU-only must not touch the CPU or GPU")
	}
	if res.Report.NPUBusy == 0 {
		t.Fatal("NPU must be busy")
	}
}

func TestThreeWayNumericMuLayerNPU(t *testing.T) {
	// End-to-end: a planned three-way processor-friendly run computes
	// correctly (argmax preserved vs the F32 reference).
	m := smallModel(t, models.SqueezeNetV11)
	in := testInput(m)
	refVals, err := m.RunF32(in)
	if err != nil {
		t.Fatal(err)
	}
	o := partition.MuLayerNPU(npuSoC, npuPred)
	plan, err := partition.Build(m.Graph, o)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(m.Graph, plan, in, npuCfg(m, o.Pipe, true))
	if err != nil {
		t.Fatal(err)
	}
	if argmax(res.Output) != argmax(refVals[m.Graph.Output()]) {
		t.Fatal("three-way inference changed the predicted class")
	}
}
