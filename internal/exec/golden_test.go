package exec

import (
	"testing"

	"mulayer/internal/models"
	"mulayer/internal/nn"
	"mulayer/internal/partition"
	"mulayer/internal/tensor"
)

// splitPlan builds a plan that forces split ratio p on every splittable
// layer and runs the rest on a single processor.
func splitPlan(t *testing.T, m *models.Model, p float64) *partition.Plan {
	t.Helper()
	shapes, err := m.Graph.InferShapes()
	if err != nil {
		t.Fatal(err)
	}
	order, err := m.Graph.Toposort()
	if err != nil {
		t.Fatal(err)
	}
	var plan partition.Plan
	for _, id := range order {
		n := m.Graph.Node(id)
		if n.Layer.Kind() == nn.OpInput {
			continue
		}
		lp := 1.0
		if n.Layer.SplitChannels(m.Graph.InputShapes(id, shapes)) > 1 {
			lp = p
		}
		plan.Steps = append(plan.Steps, partition.Step{Layer: &partition.LayerStep{Node: id, P: lp}})
	}
	return &plan
}

// TestGoldenFusedBitExact is the golden-output regression gate for the
// fused micro-batching path: for every bundled model, fixed-seed forward
// passes under the uniform QUInt8 pipeline must be bit-identical between
// plain single-request execution and fused batched execution, at every
// split ratio p in {0, 0.25, 0.5, 0.75, 1} and batch sizes {1, 4}.
//
// The golden outputs are the single-CPU (p = 1) Run results. Two system
// invariants make them the reference for every configuration:
//   - uniform QUInt8 runs identical integer arithmetic on both
//     processors, so the split ratio cannot change the output;
//   - fusing rows into batched panels changes the cost model only, never
//     the per-member math.
func TestGoldenFusedBitExact(t *testing.T) {
	builders := map[string]struct {
		build   func(models.Config) (*models.Model, error)
		inputHW int // AlexNet's stride-4 stem collapses below 64x64
	}{
		"lenet5":     {models.LeNet5, 32},
		"alexnet":    {models.AlexNet, 64},
		"vgg16":      {models.VGG16, 32},
		"googlenet":  {models.GoogLeNet, 32},
		"squeezenet": {models.SqueezeNetV11, 32},
		"mobilenet":  {models.MobileNetV1, 32},
		"resnet18":   {models.ResNet18, 32},
	}
	for name, bc := range builders {
		bc := bc
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			m, err := bc.build(models.Config{Numeric: true, InputHW: bc.inputHW, WidthScale: 0.25, Classes: 10, Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			cal := make([]*tensor.Tensor, 2)
			for i := range cal {
				in := tensor.New(m.InputShape)
				in.FillRandom(uint64(100+i), 1)
				cal[i] = in
			}
			if err := m.Calibrate(cal); err != nil {
				t.Fatal(err)
			}
			pipe := partition.Uniform(tensor.QUInt8)
			cfg := runCfg(m, pipe, true)

			const batch = 4
			inputs := make([]*tensor.Tensor, batch)
			for i := range inputs {
				in := tensor.New(m.InputShape)
				in.FillRandom(uint64(7000+i), 1)
				inputs[i] = in
			}

			// Golden outputs: each input through the single-CPU plan.
			golden := make([]*tensor.Tensor, batch)
			for i, in := range inputs {
				res, err := Run(m.Graph, splitPlan(t, m, 1), in, cfg)
				if err != nil {
					t.Fatal(err)
				}
				golden[i] = res.Output
			}

			for _, p := range []float64{0, 0.25, 0.5, 0.75, 1} {
				plan := splitPlan(t, m, p)

				// The cross-ratio invariant itself: a plain run at this
				// ratio reproduces the golden output bit-for-bit.
				res, err := Run(m.Graph, plan, inputs[0], cfg)
				if err != nil {
					t.Fatalf("p=%v: %v", p, err)
				}
				if d := res.Output.MaxAbsDiff(golden[0]); d != 0 {
					t.Fatalf("p=%v: single run differs from golden by %v", p, d)
				}

				// Batch size 1: a one-member fused run is exactly Run.
				b1, err := RunFused(m.Graph, plan, []FusedItem{{Input: inputs[0]}}, cfg)
				if err != nil {
					t.Fatalf("p=%v batch=1: %v", p, err)
				}
				if b1.Rows != 1 {
					t.Fatalf("p=%v batch=1: fused rows %d", p, b1.Rows)
				}
				if d := b1.Items[0].Output.MaxAbsDiff(golden[0]); d != 0 {
					t.Fatalf("p=%v batch=1: fused output differs from golden by %v", p, d)
				}

				// Batch size 4: every member's slice of the fused run must
				// match its own golden output.
				items := make([]FusedItem, batch)
				for i := range items {
					items[i] = FusedItem{Input: inputs[i]}
				}
				b4, err := RunFused(m.Graph, plan, items, cfg)
				if err != nil {
					t.Fatalf("p=%v batch=4: %v", p, err)
				}
				if b4.Rows != batch {
					t.Fatalf("p=%v batch=4: fused rows %d", p, b4.Rows)
				}
				for i, ir := range b4.Items {
					if ir.Err != nil {
						t.Fatalf("p=%v batch=4 member %d: %v", p, i, ir.Err)
					}
					if d := ir.Output.MaxAbsDiff(golden[i]); d != 0 {
						t.Fatalf("p=%v batch=4 member %d: fused output differs from golden by %v", p, i, d)
					}
				}
				// Amortization sanity: the fused batch must beat four
				// sequential single runs at the same split ratio.
				single := res.Report.Latency.Seconds()
				if got := b4.Report.Latency.Seconds(); got >= float64(batch)*single {
					t.Fatalf("p=%v: fused batch of %d (%.6fs) not faster than %d sequential runs (%.6fs each)", p, batch, got, batch, single)
				}
			}
		})
	}
}
