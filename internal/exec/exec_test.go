package exec

import (
	"testing"
	"time"

	"mulayer/internal/graph"
	"mulayer/internal/models"
	"mulayer/internal/nn"
	"mulayer/internal/partition"
	"mulayer/internal/profile"
	"mulayer/internal/soc"
	"mulayer/internal/tensor"
)

var (
	testSoC  = soc.Exynos7420()
	testPred = profile.Build(testSoC.CPU, testSoC.GPU)
)

// smallModel builds a calibrated reduced GoogLeNet for numeric runs.
func smallModel(t *testing.T, build func(models.Config) (*models.Model, error)) *models.Model {
	t.Helper()
	m, err := build(models.Config{Numeric: true, InputHW: 32, WidthScale: 0.25, Classes: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	cal := make([]*tensor.Tensor, 2)
	for i := range cal {
		in := tensor.New(m.InputShape)
		in.FillRandom(uint64(100+i), 1)
		cal[i] = in
	}
	if err := m.Calibrate(cal); err != nil {
		t.Fatal(err)
	}
	return m
}

func testInput(m *models.Model) *tensor.Tensor {
	in := tensor.New(m.InputShape)
	in.FillRandom(999, 1)
	return in
}

func buildPlan(t *testing.T, m *models.Model, o partition.Options) *partition.Plan {
	t.Helper()
	p, err := partition.Build(m.Graph, o)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func runCfg(m *models.Model, pipe partition.Pipeline, numeric bool) Config {
	return Config{
		SoC: testSoC, Pipe: pipe, Numeric: numeric,
		InputParams: m.InputParams, AsyncIssue: true, ZeroCopy: true,
	}
}

func argmax(t *tensor.Tensor) int {
	best := 0
	for i, v := range t.Data {
		if v > t.Data[best] {
			best = i
		}
	}
	return best
}

func TestCooperativeSplitBitExactVsSingleCPU(t *testing.T) {
	// With a *uniform* QUInt8 pipeline both processors run identical
	// integer arithmetic, so an everywhere-split cooperative run must be
	// bit-identical to the single-CPU run — the end-to-end no-redundancy
	// invariant of the channel-wise distribution.
	m := smallModel(t, models.GoogLeNet)
	in := testInput(m)
	pipe := partition.Uniform(tensor.QUInt8)

	single := buildPlan(t, m, partition.SingleProcessor(testSoC, testPred, partition.ProcCPU, tensor.QUInt8))
	refRes, err := Run(m.Graph, single, in, runCfg(m, pipe, true))
	if err != nil {
		t.Fatal(err)
	}

	// Force a 0.5 split on every splittable layer.
	shapes, _ := m.Graph.InferShapes()
	var split partition.Plan
	order, _ := m.Graph.Toposort()
	for _, id := range order {
		n := m.Graph.Node(id)
		if n.Layer.Kind() == nn.OpInput {
			continue
		}
		p := 1.0
		if n.Layer.SplitChannels(m.Graph.InputShapes(id, shapes)) > 1 {
			p = 0.5
		}
		split.Steps = append(split.Steps, partition.Step{Layer: &partition.LayerStep{Node: id, P: p}})
	}
	coopRes, err := Run(m.Graph, &split, in, runCfg(m, pipe, true))
	if err != nil {
		t.Fatal(err)
	}
	if coopRes.Output.MaxAbsDiff(refRes.Output) != 0 {
		t.Fatal("uniform-QUInt8 cooperative output differs from single-CPU output")
	}
}

func TestProcessorFriendlyCooperativeCloseToF32(t *testing.T) {
	m := smallModel(t, models.GoogLeNet)
	in := testInput(m)
	refVals, err := m.RunF32(in)
	if err != nil {
		t.Fatal(err)
	}
	ref := refVals[m.Graph.Output()]

	plan := buildPlan(t, m, partition.MuLayer(testSoC, testPred))
	res, err := Run(m.Graph, plan, in, runCfg(m, partition.ProcessorFriendly(), true))
	if err != nil {
		t.Fatal(err)
	}
	if argmax(res.Output) != argmax(ref) {
		t.Fatal("μLayer inference changed the predicted class")
	}
	if d := res.Output.MaxAbsDiff(ref); d > 0.15 {
		t.Fatalf("cooperative quantized output error %v vs F32", d)
	}
}

func TestMechanismLatencyOrdering(t *testing.T) {
	// Figure 16's headline: μLayer < layer-to-processor ≤ best
	// single-processor, on both SoCs, for the full-size spec models.
	for _, s := range soc.All() {
		pred := profile.Build(s.CPU, s.GPU)
		for _, build := range []func(models.Config) (*models.Model, error){models.VGG16, models.GoogLeNet, models.AlexNet} {
			m, err := build(models.Config{})
			if err != nil {
				t.Fatal(err)
			}
			run := func(o partition.Options, pipe partition.Pipeline) time.Duration {
				plan, err := partition.Build(m.Graph, o)
				if err != nil {
					t.Fatal(err)
				}
				res, err := Run(m.Graph, plan, nil, Config{SoC: s, Pipe: pipe, AsyncIssue: true, ZeroCopy: true})
				if err != nil {
					t.Fatal(err)
				}
				return res.Report.Latency
			}
			mu := run(partition.MuLayer(s, pred), partition.ProcessorFriendly())
			l2p := run(partition.LayerToProcessor(s, pred), partition.Uniform(tensor.QUInt8))
			cpuQ := run(partition.SingleProcessor(s, pred, partition.ProcCPU, tensor.QUInt8), partition.Uniform(tensor.QUInt8))
			if mu >= l2p {
				t.Errorf("%s/%s: μLayer %v !< layer-to-proc %v", s.Name, m.Name, mu, l2p)
			}
			// The layer-to-processor mechanism can never lose to the
			// single-CPU QUInt8 plan it subsumes.
			if l2p > cpuQ+cpuQ/100 {
				t.Errorf("%s/%s: layer-to-proc %v worse than single-CPU %v", s.Name, m.Name, l2p, cpuQ)
			}
		}
	}
}

func TestCostOnlyMatchesNumericTiming(t *testing.T) {
	m := smallModel(t, models.SqueezeNetV11)
	in := testInput(m)
	plan := buildPlan(t, m, partition.MuLayer(testSoC, testPred))
	a, err := Run(m.Graph, plan, in, runCfg(m, partition.ProcessorFriendly(), true))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(m.Graph, plan, nil, runCfg(m, partition.ProcessorFriendly(), false))
	if err != nil {
		t.Fatal(err)
	}
	if a.Report.Latency != b.Report.Latency {
		t.Fatalf("numeric %v vs cost-only %v simulated latency", a.Report.Latency, b.Report.Latency)
	}
	if b.Output != nil {
		t.Fatal("cost-only run must not produce an output tensor")
	}
	if a.Output == nil {
		t.Fatal("numeric run must produce an output tensor")
	}
}

func TestAsyncIssueHidesDispatch(t *testing.T) {
	m, _ := models.VGG16(models.Config{})
	plan := buildPlan(t, m, partition.MuLayer(testSoC, testPred))
	base := Config{SoC: testSoC, Pipe: partition.ProcessorFriendly(), AsyncIssue: true, ZeroCopy: true}
	on, err := Run(m.Graph, plan, nil, base)
	if err != nil {
		t.Fatal(err)
	}
	base.AsyncIssue = false
	off, err := Run(m.Graph, plan, nil, base)
	if err != nil {
		t.Fatal(err)
	}
	if off.Report.Latency <= on.Report.Latency {
		t.Fatalf("blocking issue %v must be slower than async %v", off.Report.Latency, on.Report.Latency)
	}
}

func TestZeroCopyBeatsCopies(t *testing.T) {
	m, _ := models.GoogLeNet(models.Config{})
	plan := buildPlan(t, m, partition.MuLayer(testSoC, testPred))
	base := Config{SoC: testSoC, Pipe: partition.ProcessorFriendly(), AsyncIssue: true, ZeroCopy: true}
	on, err := Run(m.Graph, plan, nil, base)
	if err != nil {
		t.Fatal(err)
	}
	base.ZeroCopy = false
	off, err := Run(m.Graph, plan, nil, base)
	if err != nil {
		t.Fatal(err)
	}
	if off.Report.Latency <= on.Report.Latency {
		t.Fatalf("copy-based sync %v must be slower than zero-copy %v", off.Report.Latency, on.Report.Latency)
	}
}

func TestBranchDistributionHelpsGoogLeNet(t *testing.T) {
	m, _ := models.GoogLeNet(models.Config{})
	pred := testPred
	with := buildPlan(t, m, partition.MuLayer(testSoC, pred))
	without := buildPlan(t, m, partition.ChannelDistProcQuant(testSoC, pred))
	cfg := Config{SoC: testSoC, Pipe: partition.ProcessorFriendly(), AsyncIssue: true, ZeroCopy: true}
	a, err := Run(m.Graph, with, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(m.Graph, without, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Branch distribution is applied per group only when the collected
	// profiles say it wins, so the full system can never lose to the
	// no-branch configuration.
	if a.Report.Latency > b.Report.Latency {
		t.Fatalf("branch distribution %v must not lose to channel-split-everywhere %v on GoogLeNet", a.Report.Latency, b.Report.Latency)
	}
}

func TestTimelineInvariants(t *testing.T) {
	m, _ := models.GoogLeNet(models.Config{})
	plan := buildPlan(t, m, partition.MuLayer(testSoC, testPred))
	res, err := Run(m.Graph, plan, nil, Config{SoC: testSoC, Pipe: partition.ProcessorFriendly(), AsyncIssue: true, ZeroCopy: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Timeline.Validate(); err != nil {
		t.Fatal(err)
	}
	r := res.Report
	if r.Latency < r.CPUBusy || r.Latency < r.GPUBusy {
		t.Fatal("makespan below a processor's busy time")
	}
	if r.CPUBusy == 0 || r.GPUBusy == 0 {
		t.Fatal("μLayer must use both processors")
	}
	if r.DynamicJ <= 0 || r.DRAMJ <= 0 || r.StaticJ <= 0 {
		t.Fatal("energy components must be positive")
	}
	if r.KernelLaunches < m.Graph.Len()-1 {
		t.Fatalf("launches %d too few", r.KernelLaunches)
	}
}

func TestRunDeterministic(t *testing.T) {
	m := smallModel(t, models.LeNet5)
	in := testInput(m)
	plan := buildPlan(t, m, partition.MuLayer(testSoC, testPred))
	a, _ := Run(m.Graph, plan, in, runCfg(m, partition.ProcessorFriendly(), true))
	b, _ := Run(m.Graph, plan, in, runCfg(m, partition.ProcessorFriendly(), true))
	if a.Report.Latency != b.Report.Latency || a.Report.TotalJ() != b.Report.TotalJ() {
		t.Fatal("simulation must be deterministic")
	}
	if a.Output.MaxAbsDiff(b.Output) != 0 {
		t.Fatal("numeric output must be deterministic")
	}
}

func TestRunRejectsBadPlans(t *testing.T) {
	m := smallModel(t, models.LeNet5)
	in := testInput(m)
	// Empty plan misses every node.
	if _, err := Run(m.Graph, &partition.Plan{}, in, runCfg(m, partition.ProcessorFriendly(), true)); err == nil {
		t.Fatal("empty plan must be rejected")
	}
	// Duplicate step.
	plan := buildPlan(t, m, partition.MuLayer(testSoC, testPred))
	dup := *plan
	dup.Steps = append(dup.Steps, plan.Steps[0])
	if _, err := Run(m.Graph, &dup, in, runCfg(m, partition.ProcessorFriendly(), true)); err == nil {
		t.Fatal("duplicate coverage must be rejected")
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	m := smallModel(t, models.LeNet5)
	plan := buildPlan(t, m, partition.MuLayer(testSoC, testPred))
	cfg := runCfg(m, partition.ProcessorFriendly(), true)
	if _, err := Run(m.Graph, plan, nil, cfg); err == nil {
		t.Fatal("numeric mode without input must fail")
	}
	wrong := tensor.New(tensor.Shape{N: 1, C: 3, H: 8, W: 8})
	if _, err := Run(m.Graph, plan, wrong, cfg); err == nil {
		t.Fatal("wrong input shape must fail")
	}
	if _, err := Run(m.Graph, plan, wrong, Config{}); err == nil {
		t.Fatal("missing SoC must fail")
	}
}

func TestF32AndF16PipelinesNumeric(t *testing.T) {
	m := smallModel(t, models.LeNet5)
	in := testInput(m)
	refVals, _ := m.RunF32(in)
	ref := refVals[m.Graph.Output()]
	for _, dt := range []tensor.DataType{tensor.F32, tensor.F16} {
		plan := buildPlan(t, m, partition.SingleProcessor(testSoC, testPred, partition.ProcGPU, dt))
		res, err := Run(m.Graph, plan, in, runCfg(m, partition.Uniform(dt), true))
		if err != nil {
			t.Fatal(err)
		}
		tol := 1e-6
		if dt == tensor.F16 {
			tol = 0.01
		}
		if d := res.Output.MaxAbsDiff(ref); d > tol {
			t.Fatalf("%v pipeline error %v", dt, d)
		}
	}
}

func TestGraphNodeCoverageHelper(t *testing.T) {
	// Ensure plan coverage uses graph node IDs consistently.
	m := smallModel(t, models.LeNet5)
	plan := buildPlan(t, m, partition.MuLayer(testSoC, testPred))
	cover := plan.Covered()
	for id := range cover {
		if int(id) <= 0 || int(id) >= m.Graph.Len() {
			t.Fatalf("bogus node id %d", id)
		}
	}
	_ = graph.NodeID(0)
}

func TestResNetEndToEndMuLayer(t *testing.T) {
	// Residual networks exercise the Add layer through the cooperative
	// executor: channel-split residual sums, mixed-processor operand
	// synchronization, and argmax preservation.
	m := smallModel(t, models.ResNet18)
	in := testInput(m)
	refVals, err := m.RunF32(in)
	if err != nil {
		t.Fatal(err)
	}
	plan := buildPlan(t, m, partition.MuLayer(testSoC, testPred))
	res, err := Run(m.Graph, plan, in, runCfg(m, partition.ProcessorFriendly(), true))
	if err != nil {
		t.Fatal(err)
	}
	if argmax(res.Output) != argmax(refVals[m.Graph.Output()]) {
		t.Fatal("residual network inference changed the predicted class")
	}
	l2p := buildPlan(t, m, partition.LayerToProcessor(testSoC, testPred))
	base, err := Run(m.Graph, l2p, nil, Config{SoC: testSoC, Pipe: partition.Uniform(tensor.QUInt8), AsyncIssue: true, ZeroCopy: true})
	if err != nil {
		t.Fatal(err)
	}
	mu, err := Run(m.Graph, plan, nil, Config{SoC: testSoC, Pipe: partition.ProcessorFriendly(), AsyncIssue: true, ZeroCopy: true})
	if err != nil {
		t.Fatal(err)
	}
	if mu.Report.Latency >= base.Report.Latency {
		t.Fatalf("μLayer %v must beat layer-to-processor %v on ResNet-18", mu.Report.Latency, base.Report.Latency)
	}
}
