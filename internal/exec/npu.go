package exec

import (
	"time"

	"mulayer/internal/graph"
	"mulayer/internal/partition"
)

// runLayer3 executes one layer cooperatively across the CPU, the GPU, and
// the NPU — the §8.3 extension of the channel-wise workload distribution.
// pCPU and pNPU are the CPU and NPU output-channel shares; the GPU
// computes the remainder. Shares of 0 deactivate a side; a single active
// side degenerates to runSingle.
func (r *runner) runLayer3(id graph.NodeID, pCPU, pNPU float64) {
	n := r.g.Node(id)
	ins := r.g.InputShapes(id, r.shapes)
	c := n.Layer.SplitChannels(ins)
	if c < 2 {
		r.runSingle(id, partition.ProcCPU)
		return
	}
	cpuCh, gpuCh, npuCh := partition.SplitChannels3(pCPU, pNPU, c)
	active := 0
	for _, ch := range []int{cpuCh, gpuCh, npuCh} {
		if ch > 0 {
			active++
		}
	}
	if active < 2 {
		switch {
		case cpuCh == c:
			r.runSingle(id, partition.ProcCPU)
		case npuCh == c:
			r.runSingle(id, partition.ProcNPU)
		default:
			r.runSingle(id, partition.ProcGPU)
		}
		return
	}

	cost := r.scaleBatch(n.Layer.Cost(ins))
	kind := n.Layer.Kind()
	ready := r.inputsReady(id, r.all)
	if r.seq > ready {
		ready = r.seq
	}

	// Accelerator dispatches are enqueued asynchronously (§6); in the
	// blocking-issue ablation the CPU stalls for each accelerator's
	// dispatch before starting its own share.
	var issueStall time.Duration
	end := ready
	side := func(p partition.Proc, ch int) {
		if ch <= 0 {
			return
		}
		share := float64(ch) / float64(c)
		proc := r.proc(p)
		w := r.sideWork(p, kind, cost.Scale(share), ch)
		kernelDur := proc.KernelTime(w)
		dur := proc.LaunchOverhead + kernelDur
		start := ready
		if !r.cfg.AsyncIssue && p != partition.ProcCPU {
			issueStall += proc.LaunchOverhead
		}
		if p == partition.ProcCPU {
			dur += issueStall
		}
		label := n.Layer.Name() + "[" + procSuffix(p) + "]"
		s, e := r.schedule(proc, label, start, dur, proc.KernelEnergyPJ(w))
		if r.cfg.TraceHook != nil {
			r.traceKernel(proc, p, label, kind, id, s, e, kernelDur, share, cost)
		}
		r.launches++
		r.dramBytes += w.MovedBytes
		if e > end {
			end = e
		}
	}
	// Issue accelerators first (the CPU enqueues their commands), then the
	// CPU's own share.
	side(partition.ProcGPU, gpuCh)
	side(partition.ProcNPU, npuCh)
	side(partition.ProcCPU, cpuCh)

	// Merge: one map/unmap barrier over the shared buffers.
	ssz := r.cfg.Pipe.Storage.Size()
	end += r.cfg.SoC.SyncCost((cost.InElems + cost.OutElems) * ssz)
	if !r.cfg.ZeroCopy {
		bytes := int64(r.shapes[id].Elems()) * ssz * int64(r.batch)
		end += r.cfg.SoC.CopySyncOverhead + time.Duration(float64(bytes)/(r.cfg.SoC.CPU.MemBWGBs*1e9)*float64(time.Second))
	}
	r.ready[id] = end
	r.producedOn[id] = r.all
	r.seq = end

	r.eachLive(func(vals map[graph.NodeID]any) error {
		out, err := r.allocOut(id, vals)
		if err != nil {
			return err
		}
		lo := 0
		if cpuCh > 0 {
			if err := r.forward(id, out, lo, lo+cpuCh, partition.ProcCPU, vals); err != nil {
				return err
			}
			lo += cpuCh
		}
		if gpuCh > 0 {
			if err := r.forward(id, out, lo, lo+gpuCh, partition.ProcGPU, vals); err != nil {
				return err
			}
			lo += gpuCh
		}
		if npuCh > 0 {
			if err := r.forward(id, out, lo, lo+npuCh, partition.ProcNPU, vals); err != nil {
				return err
			}
		}
		vals[id] = out
		return nil
	})
}

func procSuffix(p partition.Proc) string {
	switch p {
	case partition.ProcCPU:
		return "cpu"
	case partition.ProcNPU:
		return "npu"
	}
	return "gpu"
}
