package faults

import (
	"errors"
	"strings"
	"testing"
	"time"

	"mulayer/internal/device"
	"mulayer/internal/soc"
)

func procs(t *testing.T) (*device.Processor, *device.Processor) {
	t.Helper()
	s := soc.Exynos7420()
	return s.CPU, s.GPU
}

// drive pushes n kernels through the injector and returns the decision
// trace (kind per kernel, duration-relative).
func drive(in *Injector, p *device.Processor, n int) []Kind {
	out := make([]Kind, n)
	base := time.Millisecond
	for i := range out {
		func() {
			defer func() {
				if r := recover(); r != nil {
					out[i] = Panic
				}
			}()
			d, err := in.Kernel(p, "k", base)
			switch {
			case err != nil:
				var f *Fault
				if errors.As(err, &f) {
					out[i] = f.Kind
				} else {
					out[i] = Fail
				}
			case d > base:
				out[i] = Stall
			default:
				out[i] = None
			}
		}()
	}
	return out
}

func TestDeterministicStreams(t *testing.T) {
	cpu, _ := procs(t)
	cfg := Config{Seed: 7, FailRate: 0.2, StallRate: 0.1, PanicRate: 0.05}
	a := drive(New(cfg, 3), cpu, 500)
	b := drive(New(cfg, 3), cpu, 500)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d diverged: %v vs %v", i, a[i], b[i])
		}
	}
	// A different salt must give a different stream.
	c := drive(New(cfg, 4), cpu, 500)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("salted streams identical")
	}
}

func TestRatesRoughlyHonored(t *testing.T) {
	cpu, _ := procs(t)
	in := New(Config{Seed: 1, FailRate: 0.1, StallRate: 0.1}, 0)
	const n = 5000
	trace := drive(in, cpu, n)
	counts := map[Kind]int{}
	for _, k := range trace {
		counts[k]++
	}
	for _, k := range []Kind{Fail, Stall} {
		frac := float64(counts[k]) / n
		if frac < 0.06 || frac > 0.14 {
			t.Fatalf("%v fraction %.3f, want ≈0.10", k, frac)
		}
	}
	st := in.Stats()
	if st.Kernels != n || st.Fails != int64(counts[Fail]) || st.Stalls != int64(counts[Stall]) {
		t.Fatalf("stats %+v disagree with trace %v", st, counts)
	}
}

func TestDeathIsSticky(t *testing.T) {
	cpu, _ := procs(t)
	in := New(Config{Seed: 1, DieRate: 1}, 0)
	if _, err := in.Kernel(cpu, "k0", time.Millisecond); err == nil {
		t.Fatal("die rate 1 did not kill")
	}
	// Every later kernel on the dead processor fails with a Die fault,
	// without consuming budget or randomness.
	for i := 0; i < 3; i++ {
		_, err := in.Kernel(cpu, "k", time.Millisecond)
		var f *Fault
		if !errors.As(err, &f) || f.Kind != Die {
			t.Fatalf("dead processor kernel %d: got %v, want Die fault", i, err)
		}
	}
	if got := in.DeadProcs(); len(got) != 1 || got[0] != cpu.Name {
		t.Fatalf("dead procs %v", got)
	}
	if st := in.Stats(); st.Dies != 1 {
		t.Fatalf("die counted %d times, want 1", st.Dies)
	}
}

func TestProcFilterAndBudget(t *testing.T) {
	cpu, gpu := procs(t)
	in := New(Config{Seed: 1, FailRate: 1, Proc: "gpu", MaxFaults: 2}, 0)
	if _, err := in.Kernel(cpu, "k", time.Millisecond); err != nil {
		t.Fatalf("cpu kernel faulted under gpu filter: %v", err)
	}
	for i := 0; i < 2; i++ {
		if _, err := in.Kernel(gpu, "k", time.Millisecond); err == nil {
			t.Fatalf("gpu kernel %d did not fault", i)
		}
	}
	// Budget exhausted: the injector goes quiet.
	if _, err := in.Kernel(gpu, "k", time.Millisecond); err != nil {
		t.Fatalf("budget-exhausted kernel faulted: %v", err)
	}
	if st := in.Stats(); st.Fails != 2 {
		t.Fatalf("fails %d, want 2", st.Fails)
	}
}

func TestStallInflatesDuration(t *testing.T) {
	cpu, _ := procs(t)
	in := New(Config{Seed: 1, StallRate: 1, StallFactor: 4}, 0)
	d, err := in.Kernel(cpu, "k", 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if d != 40*time.Millisecond {
		t.Fatalf("stalled duration %v, want 40ms", d)
	}
}

func TestObserveCallback(t *testing.T) {
	cpu, _ := procs(t)
	in := New(Config{Seed: 1, FailRate: 1}, 0)
	var got []string
	in.Observe = func(k Kind, proc string) { got = append(got, k.String()+":"+proc) }
	_, _ = in.Kernel(cpu, "k", time.Millisecond)
	if len(got) != 1 || got[0] != "fail:"+cpu.Name {
		t.Fatalf("observations %v", got)
	}
}

func TestParseSpec(t *testing.T) {
	m, err := ParseSpec("fail=0.05,stall=0.02,stallx=5,die=0.001,panic=0.001,seed=42,max=10")
	if err != nil {
		t.Fatal(err)
	}
	cfg, ok := m[""]
	if !ok {
		t.Fatalf("no all-classes config in %v", m)
	}
	want := Config{Seed: 42, FailRate: 0.05, StallRate: 0.02, StallFactor: 5, DieRate: 0.001, PanicRate: 0.001, MaxFaults: 10}
	if cfg != want {
		t.Fatalf("got %+v, want %+v", cfg, want)
	}

	m, err = ParseSpec("high:fail=0.1,proc=gpu;mid:die=1,max=1")
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 2 || m["high"].FailRate != 0.1 || m["high"].Proc != "gpu" || m["mid"].DieRate != 1 || m["mid"].MaxFaults != 1 {
		t.Fatalf("scoped parse %v", m)
	}

	if m, err = ParseSpec("  "); err != nil || len(m) != 0 {
		t.Fatalf("empty spec: %v %v", m, err)
	}

	for _, bad := range []string{
		"fail=2",           // rate out of range
		"fail=-0.1",        // negative
		"fail=NaN",         // non-finite
		"stallx=0.5",       // factor below 1
		"stallx=+Inf",      // non-finite factor
		"fail=0.6,die=0.6", // rates sum past 1
		"bogus=1",          // unknown key
		"fail",             // missing value
		"proc=tpu",         // unknown processor
		"max=-1",           // negative budget
		"high:fail=0.1;high:fail=0.2", // duplicate class
		":fail=0.1",        // empty class scope
		"seed=1,seed=2",    // duplicate key
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("spec %q parsed without error", bad)
		}
	}
}

func TestParseSpecErrorsMentionClass(t *testing.T) {
	_, err := ParseSpec("high:fail=3")
	if err == nil || !strings.Contains(err.Error(), "high") {
		t.Fatalf("error %v does not name the class", err)
	}
}
