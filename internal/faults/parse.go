package faults

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseSpec decodes a fault-injection flag value into per-class configs.
//
// Grammar: semicolon-separated blocks, each an optional "class:" scope
// followed by comma-separated key=value pairs:
//
//	fail=0.05,stall=0.02,stallx=5,die=0.001,panic=0.001,seed=42
//	high:fail=0.1,die=0.01;mid:fail=0.02
//	gpu only: high:die=1,proc=gpu,max=1
//
// An unscoped block applies to every device class (key ""). Keys:
//
//	seed   PRNG seed (integer)
//	fail   per-kernel transient failure probability
//	stall  per-kernel stall probability
//	stallx stall duration multiplier (≥ 1)
//	die    per-kernel permanent processor-death probability
//	panic  per-kernel panic probability
//	proc   restrict injection to one processor class (cpu|gpu|npu)
//	max    fault budget: stop injecting after this many faults (0 = ∞)
//
// Every malformed spec — unknown keys, bad numbers, out-of-range rates,
// duplicate classes — returns an error, never a panic (FuzzFaultConfig
// holds it to that). An empty spec returns an empty, non-nil map.
func ParseSpec(spec string) (map[string]Config, error) {
	out := make(map[string]Config)
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return out, nil
	}
	for _, block := range strings.Split(spec, ";") {
		block = strings.TrimSpace(block)
		if block == "" {
			continue
		}
		class := ""
		if head, rest, ok := strings.Cut(block, ":"); ok {
			class = strings.TrimSpace(head)
			if class == "" {
				return nil, fmt.Errorf("faults: empty class scope in %q", block)
			}
			block = rest
		}
		if _, dup := out[class]; dup {
			return nil, fmt.Errorf("faults: duplicate spec for class %q", classLabel(class))
		}
		cfg, err := parseBlock(block)
		if err != nil {
			return nil, fmt.Errorf("faults: class %s: %w", classLabel(class), err)
		}
		out[class] = cfg
	}
	return out, nil
}

func classLabel(class string) string {
	if class == "" {
		return "(all)"
	}
	return fmt.Sprintf("%q", class)
}

func parseBlock(block string) (Config, error) {
	var cfg Config
	seen := map[string]bool{}
	for _, pair := range strings.Split(block, ",") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		key, val, ok := strings.Cut(pair, "=")
		if !ok {
			return cfg, fmt.Errorf("want key=value, got %q", pair)
		}
		key = strings.TrimSpace(key)
		val = strings.TrimSpace(val)
		if seen[key] {
			return cfg, fmt.Errorf("duplicate key %q", key)
		}
		seen[key] = true
		switch key {
		case "seed", "max":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return cfg, fmt.Errorf("bad %s %q", key, val)
			}
			if key == "seed" {
				cfg.Seed = n
			} else {
				if n < 0 || n > 1<<31 {
					return cfg, fmt.Errorf("fault budget %d out of range", n)
				}
				cfg.MaxFaults = int(n)
			}
		case "fail", "stall", "stallx", "die", "panic":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return cfg, fmt.Errorf("bad %s %q", key, val)
			}
			switch key {
			case "fail":
				cfg.FailRate = f
			case "stall":
				cfg.StallRate = f
			case "stallx":
				cfg.StallFactor = f
			case "die":
				cfg.DieRate = f
			case "panic":
				cfg.PanicRate = f
			}
		case "proc":
			cfg.Proc = strings.ToLower(val)
		default:
			return cfg, fmt.Errorf("unknown key %q", key)
		}
	}
	if err := cfg.Validate(); err != nil {
		return cfg, err
	}
	return cfg, nil
}
