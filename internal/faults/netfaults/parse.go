package netfaults

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// ParseSpec decodes a network-fault flag value into per-target configs.
//
// Grammar: semicolon-separated blocks of comma-separated key=value
// pairs. A block with a target=host:port pair scopes to that backend;
// a block without one is the default path for every untargeted backend:
//
//	drop=0.02,reset=0.01,seed=42
//	target=127.0.0.1:8081,lat=1,latms=250;target=127.0.0.1:8082,corrupt=0.5
//	dialto=0.05,hangms=500,max=20
//
// Keys:
//
//	seed    PRNG seed (integer)
//	lat     per-request added-latency probability
//	latms   injected latency in milliseconds (default 200)
//	dialto  per-request dial black-hole probability
//	hangms  how long a black-holed dial blocks, in ms (default 1000)
//	reset   per-request connection-reset probability
//	drop    per-request response-drop probability
//	trunc   per-request body-truncation probability
//	corrupt per-request body bit-flip probability
//	target  scope the block to one backend (host:port)
//	max     fault budget: stop injecting after this many faults (0 = ∞)
//
// Every malformed spec — unknown keys, bad numbers, out-of-range rates,
// duplicate targets — returns an error, never a panic (FuzzNetFaultConfig
// holds it to that). An empty spec returns an empty, non-nil map.
func ParseSpec(spec string) (map[string]Config, error) {
	out := make(map[string]Config)
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return out, nil
	}
	for _, block := range strings.Split(spec, ";") {
		block = strings.TrimSpace(block)
		if block == "" {
			continue
		}
		cfg, err := parseBlock(block)
		if err != nil {
			return nil, err
		}
		if _, dup := out[cfg.Target]; dup {
			return nil, fmt.Errorf("netfaults: duplicate spec for target %s", targetLabel(cfg.Target))
		}
		out[cfg.Target] = cfg
	}
	return out, nil
}

func targetLabel(target string) string {
	if target == "" {
		return "(all)"
	}
	return fmt.Sprintf("%q", target)
}

func parseBlock(block string) (Config, error) {
	var cfg Config
	seen := map[string]bool{}
	for _, pair := range strings.Split(block, ",") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		key, val, ok := strings.Cut(pair, "=")
		if !ok {
			return cfg, fmt.Errorf("netfaults: want key=value, got %q", pair)
		}
		key = strings.TrimSpace(key)
		val = strings.TrimSpace(val)
		if seen[key] {
			return cfg, fmt.Errorf("netfaults: duplicate key %q", key)
		}
		seen[key] = true
		switch key {
		case "seed", "max":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return cfg, fmt.Errorf("netfaults: bad %s %q", key, val)
			}
			if key == "seed" {
				cfg.Seed = n
			} else {
				if n < 0 || n > 1<<31 {
					return cfg, fmt.Errorf("netfaults: fault budget %d out of range", n)
				}
				cfg.MaxFaults = int(n)
			}
		case "latms", "hangms":
			ms, err := strconv.ParseFloat(val, 64)
			if err != nil || ms < 0 || ms > 3.6e6 {
				return cfg, fmt.Errorf("netfaults: bad %s %q", key, val)
			}
			d := time.Duration(ms * float64(time.Millisecond))
			if key == "latms" {
				cfg.Latency = d
			} else {
				cfg.DialHang = d
			}
		case "lat", "dialto", "reset", "drop", "trunc", "corrupt":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return cfg, fmt.Errorf("netfaults: bad %s %q", key, val)
			}
			switch key {
			case "lat":
				cfg.LatencyRate = f
			case "dialto":
				cfg.DialTimeoutRate = f
			case "reset":
				cfg.ResetRate = f
			case "drop":
				cfg.DropRate = f
			case "trunc":
				cfg.TruncateRate = f
			case "corrupt":
				cfg.CorruptRate = f
			}
		case "target":
			// Accept a bare host:port or a full backend URL.
			val = strings.TrimPrefix(val, "http://")
			val = strings.TrimPrefix(val, "https://")
			val = strings.TrimSuffix(val, "/")
			if val == "" {
				return cfg, fmt.Errorf("netfaults: empty target")
			}
			cfg.Target = val
		default:
			return cfg, fmt.Errorf("netfaults: unknown key %q", key)
		}
	}
	if err := cfg.Validate(); err != nil {
		return cfg, err
	}
	return cfg, nil
}
