package netfaults

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// get issues one GET through the transport and returns status, body,
// and the declared Content-Length.
func get(t *testing.T, tr http.RoundTripper, url string) (int, []byte, int64, error) {
	t.Helper()
	c := &http.Client{Transport: tr, Timeout: 5 * time.Second}
	resp, err := c.Get(url)
	if err != nil {
		return 0, nil, 0, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, nil, resp.ContentLength, err
	}
	return resp.StatusCode, body, resp.ContentLength, nil
}

const echoBody = `{"model":"lenet5","latency_us":123.4}`

func echoServer(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, echoBody)
	}))
	t.Cleanup(ts.Close)
	return ts
}

func TestPassThroughWithoutConfig(t *testing.T) {
	ts := echoServer(t)
	tr := NewTransport(nil, nil)
	code, body, _, err := get(t, tr, ts.URL)
	if err != nil || code != http.StatusOK || string(body) != echoBody {
		t.Fatalf("passthrough: %d %q %v", code, body, err)
	}
	if n := tr.TotalStats().Requests; n != 0 {
		t.Fatalf("untargeted request counted: %d", n)
	}
}

func TestResetAndBudget(t *testing.T) {
	ts := echoServer(t)
	host := strings.TrimPrefix(ts.URL, "http://")
	tr := NewTransport(map[string]Config{
		host: {ResetRate: 1, MaxFaults: 2, Seed: 7},
	}, nil)
	for i := 0; i < 2; i++ {
		if _, _, _, err := get(t, tr, ts.URL); err == nil {
			t.Fatalf("request %d survived a certain reset", i)
		}
	}
	// Budget exhausted: the path is clean again.
	code, body, _, err := get(t, tr, ts.URL)
	if err != nil || code != http.StatusOK || string(body) != echoBody {
		t.Fatalf("post-budget request: %d %q %v", code, body, err)
	}
	st := tr.Stats()[host]
	if st.Resets != 2 || st.Requests != 3 {
		t.Fatalf("stats %+v", st)
	}
}

func TestDropReachesBackend(t *testing.T) {
	hits := 0
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits++
		io.WriteString(w, echoBody)
	}))
	t.Cleanup(ts.Close)
	host := strings.TrimPrefix(ts.URL, "http://")
	tr := NewTransport(map[string]Config{host: {DropRate: 1, MaxFaults: 1}}, nil)
	if _, _, _, err := get(t, tr, ts.URL); err == nil {
		t.Fatal("dropped response delivered")
	}
	if hits != 1 {
		t.Fatalf("drop did not reach the backend: %d hits", hits)
	}
}

func TestTruncateKeepsContentLength(t *testing.T) {
	ts := echoServer(t)
	host := strings.TrimPrefix(ts.URL, "http://")
	tr := NewTransport(map[string]Config{host: {TruncateRate: 1, MaxFaults: 1}}, nil)
	code, body, clen, err := get(t, tr, ts.URL)
	if err != nil || code != http.StatusOK {
		t.Fatalf("truncated request failed outright: %d %v", code, err)
	}
	if len(body) >= len(echoBody) {
		t.Fatalf("body not truncated: %d bytes", len(body))
	}
	if clen != int64(len(echoBody)) {
		t.Fatalf("Content-Length rewritten to %d, want %d", clen, len(echoBody))
	}
}

func TestCorruptFlipsExactlyOneBit(t *testing.T) {
	ts := echoServer(t)
	host := strings.TrimPrefix(ts.URL, "http://")
	tr := NewTransport(map[string]Config{host: {CorruptRate: 1, MaxFaults: 1}}, nil)
	code, body, _, err := get(t, tr, ts.URL)
	if err != nil || code != http.StatusOK {
		t.Fatalf("corrupted request failed outright: %d %v", code, err)
	}
	if len(body) != len(echoBody) {
		t.Fatalf("corrupt changed length: %d vs %d", len(body), len(echoBody))
	}
	diffBits := 0
	for i := range body {
		for b := body[i] ^ echoBody[i]; b != 0; b &= b - 1 {
			diffBits++
		}
	}
	if diffBits != 1 {
		t.Fatalf("%d bits flipped, want exactly 1", diffBits)
	}
}

func TestLatencyDelaysAndHonorsContext(t *testing.T) {
	ts := echoServer(t)
	host := strings.TrimPrefix(ts.URL, "http://")
	tr := NewTransport(map[string]Config{
		host: {LatencyRate: 1, Latency: 80 * time.Millisecond},
	}, nil)
	start := time.Now()
	code, _, _, err := get(t, tr, ts.URL)
	if err != nil || code != http.StatusOK {
		t.Fatalf("delayed request: %d %v", code, err)
	}
	if lat := time.Since(start); lat < 80*time.Millisecond {
		t.Fatalf("latency not injected: %v", lat)
	}

	// A cancelled context cuts the injected delay short.
	tr2 := NewTransport(map[string]Config{
		host: {LatencyRate: 1, Latency: 10 * time.Second},
	}, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL, nil)
	start = time.Now()
	_, err = (&http.Client{Transport: tr2}).Do(req)
	if err == nil {
		t.Fatal("cancelled delayed request succeeded")
	}
	if lat := time.Since(start); lat > 5*time.Second {
		t.Fatalf("injected delay ignored cancellation: %v", lat)
	}
}

func TestDialTimeoutHangsThenFails(t *testing.T) {
	ts := echoServer(t)
	host := strings.TrimPrefix(ts.URL, "http://")
	tr := NewTransport(map[string]Config{
		host: {DialTimeoutRate: 1, DialHang: 60 * time.Millisecond, MaxFaults: 1},
	}, nil)
	start := time.Now()
	_, _, _, err := get(t, tr, ts.URL)
	if err == nil {
		t.Fatal("black-holed dial succeeded")
	}
	if lat := time.Since(start); lat < 60*time.Millisecond {
		t.Fatalf("dial failed before the hang elapsed: %v", lat)
	}
}

func TestDeterministicStreams(t *testing.T) {
	cfg := Config{ResetRate: 0.3, DropRate: 0.2, CorruptRate: 0.1, Seed: 42, Target: "a:1"}
	seq := func() []Kind {
		in := newInjector(cfg)
		out := make([]Kind, 32)
		for i := range out {
			out[i] = in.decide().kind
		}
		return out
	}
	a, b := seq(), seq()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs: %v vs %v", i, a[i], b[i])
		}
	}
	// A different target salt yields a different stream.
	cfg2 := cfg
	cfg2.Target = "b:2"
	in2 := newInjector(cfg2)
	same := true
	for i := 0; i < 32; i++ {
		if in2.decide().kind != a[i] {
			same = false
		}
	}
	if same {
		t.Fatal("independent targets drew identical streams")
	}
}

func TestSetConfigAndClear(t *testing.T) {
	ts := echoServer(t)
	host := strings.TrimPrefix(ts.URL, "http://")
	tr := NewTransport(nil, nil)
	if err := tr.SetConfig(host, Config{ResetRate: 1}); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := get(t, tr, ts.URL); err == nil {
		t.Fatal("SetConfig fault not applied")
	}
	tr.Clear(host)
	if code, _, _, err := get(t, tr, ts.URL); err != nil || code != http.StatusOK {
		t.Fatalf("cleared target still faulted: %d %v", code, err)
	}
	if err := tr.SetConfig(host, Config{ResetRate: 2}); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestDefaultTargetFallback(t *testing.T) {
	ts := echoServer(t)
	tr := NewTransport(map[string]Config{"": {ResetRate: 1, MaxFaults: 1}}, nil)
	if _, _, _, err := get(t, tr, ts.URL); err == nil {
		t.Fatal("default config not applied to untargeted host")
	}
}

func TestParseSpec(t *testing.T) {
	cfgs, err := ParseSpec("drop=0.02,seed=9;target=http://10.0.0.1:8081/,lat=1,latms=250,max=5")
	if err != nil {
		t.Fatal(err)
	}
	if len(cfgs) != 2 {
		t.Fatalf("%d configs", len(cfgs))
	}
	if c := cfgs[""]; c.DropRate != 0.02 || c.Seed != 9 {
		t.Fatalf("default config %+v", c)
	}
	c, ok := cfgs["10.0.0.1:8081"]
	if !ok || c.LatencyRate != 1 || c.Latency != 250*time.Millisecond || c.MaxFaults != 5 {
		t.Fatalf("targeted config %+v (ok=%v)", c, ok)
	}

	if m, err := ParseSpec("  "); err != nil || len(m) != 0 {
		t.Fatalf("empty spec: %v %v", m, err)
	}
	for _, bad := range []string{
		"nope=1",
		"reset=1.5",
		"reset=0.6,drop=0.6",
		"lat=NaN",
		"latms=-1",
		"max=-2",
		"target=",
		"drop=0.1;drop=0.2",
		"target=a:1,reset=1;target=a:1,drop=1",
		"reset",
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("spec %q parsed", bad)
		}
	}
}
