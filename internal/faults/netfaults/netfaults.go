// Package netfaults is a deterministic, seedable network fault model
// for the fleet tier: an http.RoundTripper wrapper that makes the path
// between the frontend and a backend fail the way real networks fail —
// added latency, dials that black-hole, connections reset mid-flight,
// responses dropped after the backend did the work, and bodies that
// arrive truncated or bit-flipped. It mirrors the device-level injector
// (internal/faults): one uniform variate per request drawn from a
// splitmix64-seeded stream, compared against stacked rate thresholds,
// with an optional fault budget so chaos tests can fault a path and
// then watch it recover.
//
// Determinism: each targeted backend gets its own PRNG stream, seeded
// from (Config.Seed, hash of the target), so the decision sequence for
// a given target depends only on the seed and the order of requests to
// that target — not on cross-target interleaving.
package netfaults

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"math/rand"
	"net"
	"net/http"
	"sync"
	"time"
)

// Kind classifies one injected network fault decision.
type Kind int

// The fault kinds a Transport can inject on one request.
const (
	// None leaves the request untouched.
	None Kind = iota
	// Latency delays the request by Config.Latency before forwarding.
	Latency
	// DialTimeout black-holes the dial: the request hangs for
	// Config.DialHang (or until its context expires) and then fails.
	DialTimeout
	// Reset fails the request immediately with a connection-reset error.
	Reset
	// Drop forwards the request but discards the response — the backend
	// did the work, the caller never hears about it.
	Drop
	// Truncate delivers the response with its body cut short, headers
	// (including Content-Length) untouched.
	Truncate
	// Corrupt delivers the response with one bit flipped in its body.
	Corrupt
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case Latency:
		return "latency"
	case DialTimeout:
		return "dial_timeout"
	case Reset:
		return "reset"
	case Drop:
		return "drop"
	case Truncate:
		return "truncate"
	case Corrupt:
		return "corrupt"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Config is the fault model of one network path (one backend target, or
// the default path when Target is empty). All rates are per-request
// probabilities in [0,1]; their sum must not exceed 1 — the kinds are
// mutually exclusive per request.
type Config struct {
	// Seed seeds the target's PRNG stream (mixed with a per-target salt).
	Seed int64
	// LatencyRate is the probability a request is delayed by Latency.
	LatencyRate float64
	// Latency is the injected delay (default 200ms).
	Latency time.Duration
	// DialTimeoutRate is the probability a request's dial black-holes.
	DialTimeoutRate float64
	// DialHang is how long a black-holed dial blocks before failing, the
	// request context permitting (default 1s).
	DialHang time.Duration
	// ResetRate is the probability a request fails instantly with a
	// connection reset.
	ResetRate float64
	// DropRate is the probability the response is dropped after the
	// backend served it.
	DropRate float64
	// TruncateRate is the probability the response body arrives cut
	// short, Content-Length untouched.
	TruncateRate float64
	// CorruptRate is the probability the response body arrives with one
	// bit flipped.
	CorruptRate float64
	// Target restricts this config to one backend ("host:port"); empty
	// applies to every target without a config of its own.
	Target string
	// MaxFaults bounds the number of non-None decisions this target's
	// injector makes (0 = unbounded) — the fault budget that lets chaos
	// tests fault a path and then watch it clear.
	MaxFaults int
}

// Enabled reports whether the config can inject anything.
func (c Config) Enabled() bool {
	return c.LatencyRate > 0 || c.DialTimeoutRate > 0 || c.ResetRate > 0 ||
		c.DropRate > 0 || c.TruncateRate > 0 || c.CorruptRate > 0
}

// Validate checks rates and ranges.
func (c Config) Validate() error {
	sum := 0.0
	for _, r := range []struct {
		name string
		v    float64
	}{
		{"latency", c.LatencyRate}, {"dial-timeout", c.DialTimeoutRate},
		{"reset", c.ResetRate}, {"drop", c.DropRate},
		{"truncate", c.TruncateRate}, {"corrupt", c.CorruptRate},
	} {
		if !(r.v >= 0 && r.v <= 1) { // negated: also rejects NaN
			return fmt.Errorf("netfaults: %s rate %v outside [0,1]", r.name, r.v)
		}
		sum += r.v
	}
	if sum > 1 {
		return fmt.Errorf("netfaults: rates sum to %v > 1", sum)
	}
	if c.Latency < 0 || c.Latency > time.Hour {
		return fmt.Errorf("netfaults: latency %v outside [0, 1h]", c.Latency)
	}
	if c.DialHang < 0 || c.DialHang > time.Hour {
		return fmt.Errorf("netfaults: dial hang %v outside [0, 1h]", c.DialHang)
	}
	if c.MaxFaults < 0 {
		return fmt.Errorf("netfaults: negative fault budget %d", c.MaxFaults)
	}
	return nil
}

// Stats is a snapshot of one target's decision counters.
type Stats struct {
	Requests  int64 `json:"requests"`
	Latencies int64 `json:"latencies"`
	DialTOs   int64 `json:"dial_timeouts"`
	Resets    int64 `json:"resets"`
	Drops     int64 `json:"drops"`
	Truncates int64 `json:"truncates"`
	Corrupts  int64 `json:"corrupts"`
}

// Injected returns the total number of injected (non-None) decisions.
func (s Stats) Injected() int64 {
	return s.Latencies + s.DialTOs + s.Resets + s.Drops + s.Truncates + s.Corrupts
}

// add accumulates another target's counters (for Transport-wide totals).
func (s *Stats) add(o Stats) {
	s.Requests += o.Requests
	s.Latencies += o.Latencies
	s.DialTOs += o.DialTOs
	s.Resets += o.Resets
	s.Drops += o.Drops
	s.Truncates += o.Truncates
	s.Corrupts += o.Corrupts
}

// decision is one request's fate: the kind plus the variates that
// parameterize body mutation, drawn under the injector lock so the
// stream stays deterministic.
type decision struct {
	kind Kind
	// frac positions the truncation cut or the corrupted byte in [0,1).
	frac float64
	// bit is the bit flipped within the corrupted byte (0..7).
	bit uint
}

// injector is one target's deterministic decision stream.
type injector struct {
	cfg Config

	mu     sync.Mutex
	rng    *rand.Rand
	stats  Stats
	budget int // remaining fault budget; -1 = unbounded
}

// splitmix64 mixes the seed with a per-target salt, mirroring the
// device-level injector's stream derivation.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func newInjector(cfg Config) *injector {
	if cfg.Latency == 0 {
		cfg.Latency = 200 * time.Millisecond
	}
	if cfg.DialHang == 0 {
		cfg.DialHang = time.Second
	}
	budget := -1
	if cfg.MaxFaults > 0 {
		budget = cfg.MaxFaults
	}
	h := fnv.New64a()
	_, _ = io.WriteString(h, cfg.Target)
	seed := splitmix64(uint64(cfg.Seed)*0x9e3779b97f4a7c15 + h.Sum64() + 1)
	return &injector{
		cfg:    cfg,
		rng:    rand.New(rand.NewSource(int64(seed))),
		budget: budget,
	}
}

// decide draws one request's fate. Parameter variates for body mutation
// are drawn only when their kind is chosen, so rate changes do not
// perturb the main decision stream any more than the device injector's.
func (in *injector) decide() decision {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.stats.Requests++
	if in.budget == 0 {
		return decision{kind: None}
	}
	u := in.rng.Float64()
	c := in.cfg
	d := decision{kind: None}
	edge := 0.0
	for _, step := range []struct {
		rate float64
		kind Kind
	}{
		{c.DialTimeoutRate, DialTimeout}, {c.ResetRate, Reset},
		{c.DropRate, Drop}, {c.TruncateRate, Truncate},
		{c.CorruptRate, Corrupt}, {c.LatencyRate, Latency},
	} {
		edge += step.rate
		if u < edge {
			d.kind = step.kind
			break
		}
	}
	if d.kind == None {
		return d
	}
	if in.budget > 0 {
		in.budget--
	}
	switch d.kind {
	case Latency:
		in.stats.Latencies++
	case DialTimeout:
		in.stats.DialTOs++
	case Reset:
		in.stats.Resets++
	case Drop:
		in.stats.Drops++
	case Truncate:
		in.stats.Truncates++
		d.frac = in.rng.Float64()
	case Corrupt:
		in.stats.Corrupts++
		d.frac = in.rng.Float64()
		d.bit = uint(in.rng.Intn(8))
	}
	return d
}

// Transport injects network faults between an HTTP client and its
// targets. Safe for concurrent use. Targets without a matching config
// (exact "host:port" match, falling back to the empty-target default)
// pass through untouched.
type Transport struct {
	inner http.RoundTripper

	mu   sync.Mutex
	injs map[string]*injector // keyed by Config.Target ("" = default)
}

// NewTransport wraps inner with the given fault configs, keyed by
// target ("host:port"; "" is the default path). Configs must already
// Validate. A nil inner uses http.DefaultTransport.
func NewTransport(cfgs map[string]Config, inner http.RoundTripper) *Transport {
	if inner == nil {
		inner = http.DefaultTransport
	}
	t := &Transport{inner: inner, injs: make(map[string]*injector)}
	for target, cfg := range cfgs {
		cfg.Target = target
		t.injs[target] = newInjector(cfg)
	}
	return t
}

// SetConfig installs (or replaces) the fault config for one target at
// runtime, resetting that target's stream and budget — the live chaos
// knob ("fault this backend now", "clear it").
func (t *Transport) SetConfig(target string, cfg Config) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	cfg.Target = target
	t.mu.Lock()
	defer t.mu.Unlock()
	t.injs[target] = newInjector(cfg)
	return nil
}

// Clear removes one target's fault config; its traffic flows clean
// (subject to the default "" config, if any).
func (t *Transport) Clear(target string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.injs, target)
}

// Stats snapshots per-target decision counters, keyed by config target.
func (t *Transport) Stats() map[string]Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]Stats, len(t.injs))
	for target, in := range t.injs {
		in.mu.Lock()
		out[target] = in.stats
		in.mu.Unlock()
	}
	return out
}

// TotalStats sums decision counters across every target.
func (t *Transport) TotalStats() Stats {
	var total Stats
	for _, s := range t.Stats() {
		total.add(s)
	}
	return total
}

// injectorFor picks the injector governing one request host: exact
// target match first, then the default path.
func (t *Transport) injectorFor(host string) *injector {
	t.mu.Lock()
	defer t.mu.Unlock()
	if in, ok := t.injs[host]; ok {
		return in
	}
	return t.injs[""]
}

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	in := t.injectorFor(req.URL.Host)
	if in == nil {
		return t.inner.RoundTrip(req)
	}
	d := in.decide()
	switch d.kind {
	case None:
		return t.inner.RoundTrip(req)
	case Latency:
		if err := sleepCtx(req.Context(), in.cfg.Latency); err != nil {
			return nil, err
		}
		return t.inner.RoundTrip(req)
	case DialTimeout:
		if err := sleepCtx(req.Context(), in.cfg.DialHang); err != nil {
			return nil, err
		}
		return nil, &net.OpError{Op: "dial", Net: "tcp",
			Err: fmt.Errorf("netfaults: injected dial timeout to %s", req.URL.Host)}
	case Reset:
		return nil, &net.OpError{Op: "read", Net: "tcp",
			Err: errors.New("netfaults: injected connection reset")}
	case Drop:
		resp, err := t.inner.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		// The backend served it; the network ate the reply.
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return nil, &net.OpError{Op: "read", Net: "tcp",
			Err: errors.New("netfaults: injected response drop")}
	case Truncate, Corrupt:
		resp, err := t.inner.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		return mutateBody(resp, d)
	}
	return t.inner.RoundTrip(req)
}

// mutateBody rereads the response body and applies the decision's
// mutation, leaving every header — Content-Length included — exactly as
// the backend sent it: the corruption happens below HTTP, the way a bad
// NIC or proxy would do it.
func mutateBody(resp *http.Response, d decision) (*http.Response, error) {
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, err
	}
	switch d.kind {
	case Truncate:
		if len(body) > 0 {
			keep := int(math.Floor(d.frac * float64(len(body))))
			if keep >= len(body) {
				keep = len(body) - 1
			}
			body = body[:keep]
		}
	case Corrupt:
		if len(body) > 0 {
			i := int(math.Floor(d.frac * float64(len(body))))
			if i >= len(body) {
				i = len(body) - 1
			}
			body[i] ^= 1 << (d.bit & 7)
		}
	}
	resp.Body = io.NopCloser(bytes.NewReader(body))
	return resp, nil
}

// sleepCtx waits d out unless the context dies first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
