package netfaults

import (
	"io"
	"net/http"
	"strings"
	"testing"
)

// nopTripper is an in-memory backend for fuzz drives: every request
// gets a small fixed 200.
type nopTripper struct{}

func (nopTripper) RoundTrip(req *http.Request) (*http.Response, error) {
	return &http.Response{
		StatusCode:    http.StatusOK,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		ContentLength: 4,
		Header:        http.Header{},
		Body:          io.NopCloser(strings.NewReader(`"ok"`)),
		Request:       req,
	}, nil
}

// FuzzNetFaultConfig hardens the network-fault spec decoder: any input
// must either parse into configs that validate cleanly and drive a
// Transport without panicking, or return an error — never crash.
func FuzzNetFaultConfig(f *testing.F) {
	for _, seed := range []string{
		"",
		"drop=0.02,reset=0.01,seed=42",
		"target=127.0.0.1:8081,lat=1,latms=250;target=127.0.0.1:8082,corrupt=0.5",
		"dialto=0.05,hangms=1,max=20",
		"trunc=1",
		"lat=NaN",
		"latms=1e308",
		";;;",
		"target=a:1,reset=1;target=a:1,drop=1",
		"reset=0.6,drop=0.6",
		"max=9999999999999",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		cfgs, err := ParseSpec(spec)
		if err != nil {
			return
		}
		for target, cfg := range cfgs {
			if verr := cfg.Validate(); verr != nil {
				t.Fatalf("spec %q: target %q parsed but does not validate: %v", spec, target, verr)
			}
			if cfg.Target != target {
				t.Fatalf("spec %q: config for %q carries target %q", spec, target, cfg.Target)
			}
		}
		// A parsed spec must drive a transport without panicking. Cap the
		// injected delays so a latency fault cannot stall the fuzzer.
		for target, cfg := range cfgs {
			cfg.Latency = 1 // nanoseconds: keep the code path, not the wait
			cfg.DialHang = 1
			cfgs[target] = cfg
		}
		tr := NewTransport(cfgs, nopTripper{})
		req, rerr := http.NewRequest(http.MethodGet, "http://fuzz.invalid:1/x", nil)
		if rerr != nil {
			t.Fatal(rerr)
		}
		for i := 0; i < 8; i++ {
			resp, err := tr.RoundTrip(req)
			if err != nil {
				continue
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		_ = tr.TotalStats()
	})
}
