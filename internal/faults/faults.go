// Package faults is a deterministic, seedable fault model for the
// simulated device fleet: it can make a processor fail a kernel, stall a
// kernel for a multiple of its predicted time, die permanently, or panic
// mid-kernel (exercising the serving layer's recovery path). The serving
// scheduler consults one Injector per pool device through the executor's
// kernel hook; a nil hook costs nothing on the healthy path.
//
// Determinism: an Injector draws one uniform variate per kernel from its
// own PRNG stream, seeded from (Config.Seed, device salt). Each pool
// device is served by a single worker goroutine, so the kernel sequence —
// and therefore every fault decision — is reproducible for a given seed
// regardless of cross-device interleaving. The single draw per kernel
// also keeps decisions stable when individual rates change: a kernel's
// variate is compared against stacked rate thresholds.
package faults

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"mulayer/internal/device"
)

// Kind classifies one injected fault decision.
type Kind int

// The fault kinds an Injector can produce.
const (
	// None leaves the kernel untouched.
	None Kind = iota
	// Stall inflates the kernel's duration by Config.StallFactor.
	Stall
	// Fail fails the kernel; the run aborts with a *Fault.
	Fail
	// Die kills the kernel's processor permanently: this kernel and every
	// later kernel on the same processor fail with a Die fault.
	Die
	// Panic panics mid-kernel — the chaos probe for the serving layer's
	// worker recovery path.
	Panic
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case Stall:
		return "stall"
	case Fail:
		return "fail"
	case Die:
		return "die"
	case Panic:
		return "panic"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Fault is the typed error carried out of a failed kernel. The serving
// scheduler inspects Kind and Proc to decide between retry-with-quarantine
// (transient failures) and degraded replanning (a dead processor).
type Fault struct {
	// Device is the pool device name the fault was injected on (filled by
	// the scheduler's hook; empty at the injector level).
	Device string
	// Proc is the processor model name the kernel ran on.
	Proc string
	// ProcType is the processor class (CPU/GPU/NPU).
	ProcType device.Type
	// Kernel is the kernel label.
	Kernel string
	// Kind is Fail or Die.
	Kind Kind
}

// Error implements error.
func (f *Fault) Error() string {
	where := f.Proc
	if f.Device != "" {
		where = f.Device + "/" + where
	}
	if f.Kind == Die {
		return fmt.Sprintf("faults: processor %s died (kernel %s)", where, f.Kernel)
	}
	return fmt.Sprintf("faults: kernel %s failed on %s", f.Kernel, where)
}

// Config is the fault model of one device. All rates are per-kernel
// probabilities in [0,1]; their sum must not exceed 1 (the kinds are
// mutually exclusive per kernel).
type Config struct {
	// Seed seeds the injector's PRNG stream (mixed with a per-device salt).
	Seed int64
	// FailRate is the probability a kernel fails transiently.
	FailRate float64
	// StallRate is the probability a kernel stalls for StallFactor× its
	// predicted time.
	StallRate float64
	// StallFactor multiplies a stalled kernel's duration (default 10).
	StallFactor float64
	// DieRate is the probability the kernel's processor dies permanently.
	DieRate float64
	// PanicRate is the probability a kernel panics (chaos-tests the
	// serving layer's worker recovery).
	PanicRate float64
	// Proc restricts injection to one processor class ("cpu", "gpu",
	// "npu"); empty injects on every processor.
	Proc string
	// MaxFaults bounds the number of non-None decisions the injector makes
	// (0 = unbounded). Dead-processor rejections do not count: once a
	// processor dies it stays dead. The bound is the error budget that
	// lets chaos tests fault a device and then watch it recover.
	MaxFaults int
}

// Enabled reports whether the config can inject anything.
func (c Config) Enabled() bool {
	return c.FailRate > 0 || c.StallRate > 0 || c.DieRate > 0 || c.PanicRate > 0
}

// Validate checks rates and ranges.
func (c Config) Validate() error {
	for _, r := range []struct {
		name string
		v    float64
	}{{"fail", c.FailRate}, {"stall", c.StallRate}, {"die", c.DieRate}, {"panic", c.PanicRate}} {
		if !(r.v >= 0 && r.v <= 1) { // negated: also rejects NaN
			return fmt.Errorf("faults: %s rate %v outside [0,1]", r.name, r.v)
		}
	}
	if sum := c.FailRate + c.StallRate + c.DieRate + c.PanicRate; sum > 1 {
		return fmt.Errorf("faults: rates sum to %v > 1", sum)
	}
	if !(c.StallFactor == 0 || (c.StallFactor >= 1 && !math.IsInf(c.StallFactor, 1))) {
		return fmt.Errorf("faults: stall factor %v not in [1, ∞)", c.StallFactor)
	}
	if c.MaxFaults < 0 {
		return fmt.Errorf("faults: negative fault budget %d", c.MaxFaults)
	}
	switch c.Proc {
	case "", "cpu", "gpu", "npu":
	default:
		return fmt.Errorf("faults: unknown processor filter %q (want cpu, gpu, npu)", c.Proc)
	}
	return nil
}

// procMatches reports whether the filter admits a processor class.
func (c Config) procMatches(t device.Type) bool {
	switch c.Proc {
	case "cpu":
		return t == device.CPU
	case "gpu":
		return t == device.GPU
	case "npu":
		return t == device.NPU
	}
	return true
}

// Stats is a snapshot of an injector's decision counters.
type Stats struct {
	Kernels int64 `json:"kernels"`
	Stalls  int64 `json:"stalls"`
	Fails   int64 `json:"fails"`
	Dies    int64 `json:"dies"`
	Panics  int64 `json:"panics"`
}

// Injected returns the total number of injected (non-None) decisions.
func (s Stats) Injected() int64 { return s.Stalls + s.Fails + s.Dies + s.Panics }

// Injector injects faults into one device's kernel stream. Safe for
// concurrent use; decisions are deterministic for a fixed seed and kernel
// order.
type Injector struct {
	cfg Config

	mu     sync.Mutex
	rng    *rand.Rand
	dead   map[string]device.Type // processor name → class, for dead procs
	stats  Stats
	budget int // remaining fault budget; -1 = unbounded

	// Observe, when set before the injector is used, is called once per
	// injected (non-None) decision — the serving metrics hook.
	Observe func(kind Kind, proc string)
}

// splitmix64 mixes the seed with a per-device salt so every device gets an
// independent deterministic stream from one fleet seed.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// New returns an injector for cfg; salt distinguishes devices sharing one
// fleet-level seed (use the pool device id).
func New(cfg Config, salt int64) *Injector {
	if cfg.StallFactor == 0 {
		cfg.StallFactor = 10
	}
	budget := -1
	if cfg.MaxFaults > 0 {
		budget = cfg.MaxFaults
	}
	seed := splitmix64(uint64(cfg.Seed)*0x9e3779b97f4a7c15 + uint64(salt) + 1)
	return &Injector{
		cfg:    cfg,
		rng:    rand.New(rand.NewSource(int64(seed))),
		dead:   make(map[string]device.Type),
		budget: budget,
	}
}

// Config returns the injector's configuration.
func (in *Injector) Config() Config { return in.cfg }

// Stats returns a snapshot of the decision counters.
func (in *Injector) Stats() Stats {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.stats
}

// DeadProcs returns the names of processors the injector has killed.
func (in *Injector) DeadProcs() []string {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]string, 0, len(in.dead))
	for name := range in.dead {
		out = append(out, name)
	}
	return out
}

// Kernel is the executor hook: it decides the fate of one kernel on one
// processor. It returns the (possibly inflated) duration, or an error for
// Fail/Die decisions; a Panic decision panics. A kernel on an
// already-dead processor always fails with a Die fault.
func (in *Injector) Kernel(p *device.Processor, kernel string, d time.Duration) (time.Duration, error) {
	in.mu.Lock()
	in.stats.Kernels++
	if _, gone := in.dead[p.Name]; gone {
		in.mu.Unlock()
		return d, &Fault{Proc: p.Name, ProcType: p.Type, Kernel: kernel, Kind: Die}
	}
	if !in.cfg.procMatches(p.Type) || in.budget == 0 {
		in.mu.Unlock()
		return d, nil
	}
	u := in.rng.Float64()
	kind := None
	switch {
	case u < in.cfg.DieRate:
		kind = Die
	case u < in.cfg.DieRate+in.cfg.FailRate:
		kind = Fail
	case u < in.cfg.DieRate+in.cfg.FailRate+in.cfg.PanicRate:
		kind = Panic
	case u < in.cfg.DieRate+in.cfg.FailRate+in.cfg.PanicRate+in.cfg.StallRate:
		kind = Stall
	}
	if kind == None {
		in.mu.Unlock()
		return d, nil
	}
	if in.budget > 0 {
		in.budget--
	}
	switch kind {
	case Stall:
		in.stats.Stalls++
	case Fail:
		in.stats.Fails++
	case Die:
		in.stats.Dies++
		in.dead[p.Name] = p.Type
	case Panic:
		in.stats.Panics++
	}
	observe := in.Observe
	in.mu.Unlock()
	if observe != nil {
		observe(kind, p.Name)
	}
	switch kind {
	case Stall:
		return time.Duration(float64(d) * in.cfg.StallFactor), nil
	case Panic:
		panic(fmt.Sprintf("faults: injected panic in kernel %s on %s", kernel, p.Name))
	}
	return d, &Fault{Proc: p.Name, ProcType: p.Type, Kernel: kernel, Kind: kind}
}
