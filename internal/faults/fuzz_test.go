package faults

import (
	"testing"
	"time"

	"mulayer/internal/soc"
)

// FuzzFaultConfig hardens the fault-spec decoder: any input must either
// parse into configs that validate cleanly and drive an injector without
// panicking, or return an error — never crash.
func FuzzFaultConfig(f *testing.F) {
	for _, seed := range []string{
		"",
		"fail=0.05,stall=0.02,stallx=5,die=0.001,panic=0.001,seed=42",
		"high:fail=0.1,die=0.01;mid:fail=0.02",
		"proc=gpu,max=1,die=1",
		"fail=NaN",
		"stallx=1e308",
		";;;",
		"a:b:c",
		"fail=0.3,fail=0.3",
		"high:;mid:fail=0.1",
	} {
		f.Add(seed)
	}
	cpu := soc.Exynos7420().CPU
	f.Fuzz(func(t *testing.T, spec string) {
		m, err := ParseSpec(spec)
		if err != nil {
			return
		}
		for class, cfg := range m {
			if verr := cfg.Validate(); verr != nil {
				t.Fatalf("spec %q: class %q parsed but does not validate: %v", spec, class, verr)
			}
			// A parsed config must drive an injector without panicking
			// (injected Panic decisions are the one intentional panic).
			in := New(cfg, 1)
			for i := 0; i < 8; i++ {
				func() {
					defer func() { _ = recover() }()
					_, _ = in.Kernel(cpu, "fuzz", time.Millisecond)
				}()
			}
		}
	})
}
