package graph

import (
	"testing"

	"mulayer/internal/nn"
	"mulayer/internal/quant"
	"mulayer/internal/tensor"
)

func conv(name string, inC, outC, k int) *nn.Conv2D {
	return &nn.Conv2D{
		LayerName: name, InC: inC, OutC: outC, KH: k, KW: k,
		StrideH: 1, StrideW: 1, PadH: k / 2, PadW: k / 2, Act: quant.ActReLU,
	}
}

// buildChain is a 3-layer linear network.
func buildChain(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder("chain")
	in := b.Input(tensor.Shape{N: 1, C: 3, H: 16, W: 16})
	c1 := b.Add(conv("c1", 3, 8, 3), in)
	p1 := b.Add(&nn.Pool{LayerName: "p1", Max: true, KH: 2, KW: 2, StrideH: 2, StrideW: 2}, c1)
	c2 := b.Add(conv("c2", 8, 16, 3), p1)
	g, err := b.Build(c2)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// buildInception is a 4-branch fork-join module like GoogLeNet's
// inception(3a) (Figure 11a).
func buildInception(t *testing.T) (*Graph, NodeID, NodeID) {
	t.Helper()
	b := NewBuilder("inception")
	in := b.Input(tensor.Shape{N: 1, C: 16, H: 14, W: 14})
	stem := b.Add(conv("stem", 16, 32, 3), in)
	br0 := b.Add(conv("b0_1x1", 32, 16, 1), stem)
	br1a := b.Add(conv("b1_1x1", 32, 24, 1), stem)
	br1b := b.Add(conv("b1_3x3", 24, 32, 3), br1a)
	br2a := b.Add(conv("b2_1x1", 32, 4, 1), stem)
	br2b := b.Add(conv("b2_5x5", 4, 8, 5), br2a)
	br3a := b.Add(&nn.Pool{LayerName: "b3_pool", Max: true, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}, stem)
	br3b := b.Add(conv("b3_1x1", 32, 8, 1), br3a)
	cat := b.Add(&nn.Concat{LayerName: "cat"}, br0, br1b, br2b, br3b)
	g, err := b.Build(cat)
	if err != nil {
		t.Fatal(err)
	}
	return g, stem, cat
}

func TestToposortRespectsEdges(t *testing.T) {
	g := buildChain(t)
	order, err := g.Toposort()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[NodeID]int)
	for i, id := range order {
		pos[id] = i
	}
	for i := 0; i < g.Len(); i++ {
		n := g.Node(NodeID(i))
		for _, in := range n.Inputs {
			if pos[in] >= pos[n.ID] {
				t.Fatalf("node %d before its input %d", n.ID, in)
			}
		}
	}
	if len(order) != g.Len() {
		t.Fatal("order must cover every node")
	}
}

func TestInferShapes(t *testing.T) {
	g := buildChain(t)
	shapes, err := g.InferShapes()
	if err != nil {
		t.Fatal(err)
	}
	if shapes[g.Output()] != (tensor.Shape{N: 1, C: 16, H: 8, W: 8}) {
		t.Fatalf("output shape %v", shapes[g.Output()])
	}
	if shapes[g.Input()] != (tensor.Shape{N: 1, C: 3, H: 16, W: 16}) {
		t.Fatalf("input shape %v", shapes[g.Input()])
	}
}

func TestInferShapesDetectsMismatch(t *testing.T) {
	b := NewBuilder("bad")
	in := b.Input(tensor.Shape{N: 1, C: 3, H: 8, W: 8})
	c := b.Add(conv("c", 4, 8, 3), in) // wrong InC
	g, err := b.Build(c)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.InferShapes(); err == nil {
		t.Fatal("channel mismatch must surface in shape inference")
	}
}

func TestBranchGroupsInception(t *testing.T) {
	g, stem, cat := buildInception(t)
	groups := g.BranchGroups()
	if len(groups) != 1 {
		t.Fatalf("want 1 branch group, got %d", len(groups))
	}
	bg := groups[0]
	if bg.Fork != stem || bg.Join != cat {
		t.Fatalf("fork/join = %d/%d, want %d/%d", bg.Fork, bg.Join, stem, cat)
	}
	if len(bg.Branches) != 4 {
		t.Fatalf("want 4 branches, got %d", len(bg.Branches))
	}
	lens := map[int]int{}
	for _, br := range bg.Branches {
		lens[len(br)]++
	}
	// One 1-layer branch (1x1) and three 2-layer branches.
	if lens[1] != 1 || lens[2] != 3 {
		t.Fatalf("branch length histogram %v", lens)
	}
	// Every node appears exactly once across branches.
	members := bg.Members()
	if len(members) != 7 {
		t.Fatalf("member count %d", len(members))
	}
}

func TestBranchGroupsChainHasNone(t *testing.T) {
	g := buildChain(t)
	if groups := g.BranchGroups(); len(groups) != 0 {
		t.Fatalf("linear chain must have no branch groups, got %d", len(groups))
	}
}

func TestBranchGroupsFireModule(t *testing.T) {
	// SqueezeNet Fire: squeeze 1x1 → {expand 1x1, expand 3x3} → concat.
	b := NewBuilder("fire")
	in := b.Input(tensor.Shape{N: 1, C: 16, H: 8, W: 8})
	sq := b.Add(conv("squeeze", 16, 4, 1), in)
	e1 := b.Add(conv("expand1", 4, 16, 1), sq)
	e3 := b.Add(conv("expand3", 4, 16, 3), sq)
	cat := b.Add(&nn.Concat{LayerName: "cat"}, e1, e3)
	g, err := b.Build(cat)
	if err != nil {
		t.Fatal(err)
	}
	groups := g.BranchGroups()
	if len(groups) != 1 {
		t.Fatalf("want 1 group, got %d", len(groups))
	}
	if len(groups[0].Branches) != 2 {
		t.Fatalf("fire module has 2 branches, got %d", len(groups[0].Branches))
	}
	if groups[0].Fork != sq || groups[0].Join != cat {
		t.Fatal("fork/join")
	}
}

func TestBranchGroupsRejectsNestedFork(t *testing.T) {
	// A branch that itself forks is not a simple chain; the outer group
	// must be rejected (branch distribution only handles flat groups, §5).
	b := NewBuilder("nested")
	in := b.Input(tensor.Shape{N: 1, C: 8, H: 8, W: 8})
	f := b.Add(conv("f", 8, 8, 1), in)
	l := b.Add(conv("l", 8, 8, 1), f)
	// Right branch forks again.
	r := b.Add(conv("r", 8, 8, 1), f)
	r1 := b.Add(conv("r1", 8, 8, 1), r)
	r2 := b.Add(conv("r2", 8, 8, 1), r)
	inner := b.Add(&nn.Concat{LayerName: "inner"}, r1, r2)
	outer := b.Add(&nn.Concat{LayerName: "outer"}, l, inner)
	g, err := b.Build(outer)
	if err != nil {
		t.Fatal(err)
	}
	for _, bg := range g.BranchGroups() {
		if bg.Fork == f {
			t.Fatal("outer fork with nested fork must not form a group")
		}
	}
	// The inner fork is a valid group.
	found := false
	for _, bg := range g.BranchGroups() {
		if bg.Fork == r && bg.Join == inner {
			found = true
		}
	}
	if !found {
		t.Fatal("inner group should be detected")
	}
}

func TestBuilderErrors(t *testing.T) {
	b := NewBuilder("e1")
	b.Add(conv("c", 3, 4, 1), 0) // Add before Input
	if _, err := b.Build(0); err == nil {
		t.Error("Add before Input must fail Build")
	}

	b2 := NewBuilder("e2")
	in := b2.Input(tensor.Shape{N: 1, C: 3, H: 4, W: 4})
	b2.Add(conv("c", 3, 4, 1), NodeID(99))
	if _, err := b2.Build(in); err == nil {
		t.Error("unknown input reference must fail Build")
	}

	b3 := NewBuilder("e3")
	in3 := b3.Input(tensor.Shape{N: 1, C: 3, H: 4, W: 4})
	if _, err := b3.Build(in3 + 5); err == nil {
		t.Error("unknown output must fail Build")
	}

	b4 := NewBuilder("e4")
	in4 := b4.Input(tensor.Shape{N: 1, C: 3, H: 4, W: 4})
	if _, err := b4.Build(in4); err != nil {
		t.Errorf("input-only graph should build: %v", err)
	}
	if _, err := b4.Build(in4); err == nil {
		t.Error("double Build must fail")
	}
}

func TestConsumers(t *testing.T) {
	g, stem, _ := buildInception(t)
	if len(g.Consumers(stem)) != 4 {
		t.Fatalf("stem consumers = %d, want 4", len(g.Consumers(stem)))
	}
	if len(g.Consumers(g.Output())) != 0 {
		t.Fatal("output has no consumers")
	}
}

func TestTotalCost(t *testing.T) {
	g := buildChain(t)
	c, err := g.TotalCost()
	if err != nil {
		t.Fatal(err)
	}
	// c1: 8·16·16·3·3·3 MACs; p1: 8·8·8·4; c2: 16·8·8·8·3·3.
	want := int64(8*16*16*27 + 8*8*8*4 + 16*8*8*72)
	if c.MACs != want {
		t.Fatalf("total MACs = %d, want %d", c.MACs, want)
	}
}

func TestInputShapesHelper(t *testing.T) {
	g := buildChain(t)
	shapes, _ := g.InferShapes()
	ins := g.InputShapes(NodeID(1), shapes) // c1 consumes the input node
	if len(ins) != 1 || ins[0] != (tensor.Shape{N: 1, C: 3, H: 16, W: 16}) {
		t.Fatalf("ins = %v", ins)
	}
}
