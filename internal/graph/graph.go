// Package graph provides μLayer's NN intermediate representation: a DAG of
// layers with a single input, plus the structural analyses the runtime
// needs — topological ordering, shape inference, and the fork-join
// branch-group detection that drives branch distribution (§5).
package graph

import (
	"fmt"

	"mulayer/internal/nn"
	"mulayer/internal/tensor"
)

// NodeID identifies a node within its graph.
type NodeID int

// Node is one layer instance in the DAG.
type Node struct {
	ID     NodeID
	Layer  nn.Layer
	Inputs []NodeID
}

// Graph is an immutable NN DAG built by a Builder.
type Graph struct {
	Name      string
	nodes     []*Node
	consumers [][]NodeID
	input     NodeID
	output    NodeID
}

// Builder incrementally constructs a Graph.
type Builder struct {
	name  string
	nodes []*Node
	input NodeID
	built bool
	err   error
}

// NewBuilder starts a graph with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{name: name, input: -1}
}

// Input declares the single input node with the given shape and returns
// its ID. It must be called exactly once, before any Add.
func (b *Builder) Input(shape tensor.Shape) NodeID {
	if b.input >= 0 {
		b.fail("graph %q: multiple inputs", b.name)
		return b.input
	}
	id := NodeID(len(b.nodes))
	b.nodes = append(b.nodes, &Node{ID: id, Layer: &nn.Input{LayerName: "input", Shape: shape}})
	b.input = id
	return id
}

// Add appends a layer consuming the given inputs and returns the new
// node's ID.
func (b *Builder) Add(layer nn.Layer, inputs ...NodeID) NodeID {
	if b.input < 0 {
		b.fail("graph %q: Add before Input", b.name)
		return -1
	}
	for _, in := range inputs {
		if int(in) < 0 || int(in) >= len(b.nodes) {
			b.fail("graph %q: layer %q references unknown node %d", b.name, layer.Name(), in)
			return -1
		}
	}
	id := NodeID(len(b.nodes))
	b.nodes = append(b.nodes, &Node{ID: id, Layer: layer, Inputs: append([]NodeID(nil), inputs...)})
	return id
}

func (b *Builder) fail(format string, args ...any) {
	if b.err == nil {
		b.err = fmt.Errorf(format, args...)
	}
}

// Build finalizes the graph with the given node as its output.
func (b *Builder) Build(output NodeID) (*Graph, error) {
	if b.err != nil {
		return nil, b.err
	}
	if b.built {
		return nil, fmt.Errorf("graph %q: Build called twice", b.name)
	}
	if b.input < 0 {
		return nil, fmt.Errorf("graph %q: no input", b.name)
	}
	if int(output) < 0 || int(output) >= len(b.nodes) {
		return nil, fmt.Errorf("graph %q: unknown output node %d", b.name, output)
	}
	b.built = true
	g := &Graph{Name: b.name, nodes: b.nodes, input: b.input, output: output}
	g.consumers = make([][]NodeID, len(b.nodes))
	for _, n := range b.nodes {
		for _, in := range n.Inputs {
			g.consumers[in] = append(g.consumers[in], n.ID)
		}
	}
	if _, err := g.Toposort(); err != nil {
		return nil, err
	}
	return g, nil
}

// MustBuild is Build for static model definitions, panicking on error.
func (b *Builder) MustBuild(output NodeID) *Graph {
	g, err := b.Build(output)
	if err != nil {
		panic(err)
	}
	return g
}

// Len returns the number of nodes (including the input pseudo-node).
func (g *Graph) Len() int { return len(g.nodes) }

// Node returns the node with the given ID.
func (g *Graph) Node(id NodeID) *Node { return g.nodes[id] }

// Input returns the input node's ID.
func (g *Graph) Input() NodeID { return g.input }

// Output returns the output node's ID.
func (g *Graph) Output() NodeID { return g.output }

// Consumers returns the IDs of the nodes that consume id's output.
func (g *Graph) Consumers(id NodeID) []NodeID { return g.consumers[id] }

// Toposort returns the node IDs in a topological order (inputs before
// consumers). Builders only create forward references in Add, but the sort
// also serves as validation and yields the canonical execution order.
func (g *Graph) Toposort() ([]NodeID, error) {
	indeg := make([]int, len(g.nodes))
	for _, n := range g.nodes {
		indeg[n.ID] = len(n.Inputs)
	}
	queue := make([]NodeID, 0, len(g.nodes))
	for _, n := range g.nodes {
		if indeg[n.ID] == 0 {
			queue = append(queue, n.ID)
		}
	}
	order := make([]NodeID, 0, len(g.nodes))
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		order = append(order, id)
		for _, c := range g.consumers[id] {
			indeg[c]--
			if indeg[c] == 0 {
				queue = append(queue, c)
			}
		}
	}
	if len(order) != len(g.nodes) {
		return nil, fmt.Errorf("graph %q: cycle or unreachable nodes", g.Name)
	}
	return order, nil
}

// InferShapes propagates shapes from the input node and returns the output
// shape of every node.
func (g *Graph) InferShapes() (map[NodeID]tensor.Shape, error) {
	order, err := g.Toposort()
	if err != nil {
		return nil, err
	}
	shapes := make(map[NodeID]tensor.Shape, len(g.nodes))
	for _, id := range order {
		n := g.nodes[id]
		ins := make([]tensor.Shape, len(n.Inputs))
		for i, inID := range n.Inputs {
			ins[i] = shapes[inID]
		}
		s, err := n.Layer.OutShape(ins)
		if err != nil {
			return nil, fmt.Errorf("graph %q node %d: %w", g.Name, id, err)
		}
		shapes[id] = s
	}
	return shapes, nil
}

// InputShapes returns the input shapes of node id given the per-node
// output shapes from InferShapes.
func (g *Graph) InputShapes(id NodeID, shapes map[NodeID]tensor.Shape) []tensor.Shape {
	n := g.nodes[id]
	ins := make([]tensor.Shape, len(n.Inputs))
	for i, inID := range n.Inputs {
		ins[i] = shapes[inID]
	}
	return ins
}

// TotalCost sums the per-layer costs over the whole graph.
func (g *Graph) TotalCost() (nn.Cost, error) {
	shapes, err := g.InferShapes()
	if err != nil {
		return nn.Cost{}, err
	}
	var total nn.Cost
	for _, n := range g.nodes {
		total = total.Add(n.Layer.Cost(g.InputShapes(n.ID, shapes)))
	}
	return total, nil
}

// BranchGroup is a fork-join region: every branch is a simple chain of
// layers reading (transitively) from Fork and feeding the single Join
// node. GoogLeNet's Inception modules fork four ways into a Concat;
// SqueezeNet's Fire modules fork two ways (Figure 11).
type BranchGroup struct {
	Fork     NodeID     // the node whose output all branches consume
	Join     NodeID     // the node where the branches reconverge
	Branches [][]NodeID // per-branch layer chains, fork-exclusive, join-exclusive
}

// Members returns the set of all nodes inside the group's branches.
func (bg BranchGroup) Members() map[NodeID]bool {
	m := make(map[NodeID]bool)
	for _, br := range bg.Branches {
		for _, id := range br {
			m[id] = true
		}
	}
	return m
}

// BranchGroups detects the fork-join regions eligible for branch
// distribution. A fork qualifies when every one of its ≥2 consumers starts
// a simple chain (each node has exactly one input and one consumer) that
// terminates at one shared multi-input join node.
func (g *Graph) BranchGroups() []BranchGroup {
	var groups []BranchGroup
	order, err := g.Toposort()
	if err != nil {
		return nil
	}
	for _, id := range order {
		cons := g.consumers[id]
		if len(cons) < 2 {
			continue
		}
		var join NodeID = -1
		branches := make([][]NodeID, 0, len(cons))
		ok := true
		for _, start := range cons {
			chain, end := g.walkChain(start)
			if end < 0 {
				ok = false
				break
			}
			if join < 0 {
				join = end
			} else if join != end {
				ok = false
				break
			}
			branches = append(branches, chain)
		}
		if !ok || join < 0 {
			continue
		}
		// The join must consume exactly the branch ends and nothing else,
		// so that it becomes ready the moment the branches complete.
		if len(g.nodes[join].Inputs) != len(branches) {
			continue
		}
		groups = append(groups, BranchGroup{Fork: id, Join: join, Branches: branches})
	}
	return groups
}

// walkChain follows a simple chain starting at id: nodes with one input
// and one consumer. It returns the chain (possibly several nodes) and the
// multi-input node that terminates it, or end = -1 when the structure is
// not a simple chain into a join.
func (g *Graph) walkChain(id NodeID) (chain []NodeID, end NodeID) {
	cur := id
	for {
		n := g.nodes[cur]
		if len(n.Inputs) > 1 {
			// Reached a join without traversing any chain nodes is fine:
			// the branch is then empty — not supported, treat as failure
			// unless we already collected nodes.
			if len(chain) == 0 {
				return nil, -1
			}
			return chain, cur
		}
		chain = append(chain, cur)
		cons := g.consumers[cur]
		if len(cons) != 1 {
			return nil, -1 // dead end or nested fork: not a simple chain
		}
		next := g.nodes[cons[0]]
		if len(next.Inputs) > 1 {
			return chain, next.ID
		}
		cur = cons[0]
	}
}
