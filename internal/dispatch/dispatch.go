// Package dispatch holds the admission and placement policies shared by
// the two scheduling tiers: the node-level scheduler (internal/server),
// which places requests on pool devices, and the fleet-level router
// (internal/frontend), which places requests on serve backends. Both
// tiers make the same two decisions — may this work enter the bounded
// queue, and which replica takes it — and both drive the second decision
// with the same signal, a predicted completion time per candidate. The
// paper's makespan argument (pick the split whose predicted finish is
// earliest) generalizes unchanged from channels within a layer (
// internal/partition), to devices within a node (internal/server), to
// backends within a fleet (internal/frontend); this package is the
// decision logic with the tiers supplying the candidates.
package dispatch

import (
	"errors"
	"time"
)

// Typed admission errors. The tiers wrap them with their own context;
// both map them to HTTP 503.
var (
	// ErrQueueFull means the bounded queue is at capacity.
	ErrQueueFull = errors.New("dispatch: queue full")
	// ErrDraining means the tier no longer admits work.
	ErrDraining = errors.New("dispatch: draining")
)

// QueueState is an admission policy's view of the tier's bounded queue.
type QueueState struct {
	// Depth is the number of admitted-but-unfinished units of work.
	Depth int
	// Cap bounds Depth; 0 means unbounded.
	Cap int
	// Draining reports that the tier is shutting down.
	Draining bool
}

// Admission decides whether one unit of work may enter the queue.
type Admission interface {
	Admit(QueueState) error
}

// BoundedQueue is the shared admission policy: refuse while draining,
// refuse at capacity, admit otherwise.
type BoundedQueue struct{}

// Admit implements Admission.
func (BoundedQueue) Admit(q QueueState) error {
	if q.Draining {
		return ErrDraining
	}
	if q.Cap > 0 && q.Depth >= q.Cap {
		return ErrQueueFull
	}
	return nil
}

// Candidate is one placement target a policy may pick: a pool device at
// node level, a serve backend at fleet level.
type Candidate struct {
	// ID names the target ("high-0", "http://127.0.0.1:8081").
	ID string
	// Done is the target's predicted completion time for this unit of
	// work: its committed backlog plus the work's predicted cost. Lower
	// is better; the zero value means "idle as far as we know".
	Done time.Duration
}

// Decision is one ranked placement choice and the reason it holds its
// rank — the label routing-decision metrics count by.
type Decision struct {
	// Index points into the candidate slice given to Rank.
	Index int
	// Reason is "least_load", "affinity", or "affinity_spill".
	Reason string
}

// Placement reasons.
const (
	// ReasonLeastLoad: picked for the earliest predicted completion.
	ReasonLeastLoad = "least_load"
	// ReasonAffinity: picked for key affinity (rendezvous rank).
	ReasonAffinity = "affinity"
	// ReasonAffinitySpill: the affinity choice was overloaded relative to
	// the fleet, so the work spilled to the least-loaded candidate.
	ReasonAffinitySpill = "affinity_spill"
)

// Policy ranks candidates for one unit of work. key carries the work's
// affinity key (the model name at both tiers); policies without affinity
// ignore it. The result is a preference order: element 0 is the pick,
// later elements are the failover/hedge alternates. An empty result
// means no candidate can take the work (only possible with no
// candidates — policies never reject, they only order).
type Policy interface {
	Rank(key string, cands []Candidate) []Decision
}

// MinCompletion is the node-level policy: earliest predicted completion
// first, ties broken by candidate order. This is the paper's makespan
// argument applied across replicas.
type MinCompletion struct{}

// Rank implements Policy by insertion-ranking on Done (candidate counts
// are small at both tiers — a handful of devices or backends).
func (MinCompletion) Rank(_ string, cands []Candidate) []Decision {
	out := make([]Decision, 0, len(cands))
	for i := range cands {
		out = append(out, Decision{Index: i, Reason: ReasonLeastLoad})
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && cands[out[j].Index].Done < cands[out[j-1].Index].Done; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// RendezvousLeastLoad is the fleet-level policy: highest-random-weight
// (rendezvous) hashing concentrates one key's work on a stable few
// replicas — plan caches stay warm and same-model requests land where
// batch fusion can catch them — while a load-spill guard keeps affinity
// from defeating balancing: when the affinity choice's predicted
// completion is far enough past the fleet's best, the work spills to the
// least-loaded candidate instead.
//
// Both spill conditions must hold, so neither noise source can trigger a
// spill alone: SpillFactor guards against ratio blow-ups between small
// numbers, SpillMargin against absolute jitter on busy replicas.
type RendezvousLeastLoad struct {
	// SpillFactor is the multiple of the best candidate's predicted
	// completion past which affinity yields (≤ 0 means 2×).
	SpillFactor float64
	// SpillMargin is the absolute slack the affinity choice may hold over
	// the best candidate before spilling (≤ 0 means 10ms).
	SpillMargin time.Duration
}

// Defaults for RendezvousLeastLoad's zero value.
const (
	DefaultSpillFactor = 2.0
	DefaultSpillMargin = 10 * time.Millisecond
)

// Rank implements Policy: candidates in descending rendezvous weight for
// key, then the spill guard against the head of the order.
func (p RendezvousLeastLoad) Rank(key string, cands []Candidate) []Decision {
	factor := p.SpillFactor
	if factor <= 0 {
		factor = DefaultSpillFactor
	}
	margin := p.SpillMargin
	if margin <= 0 {
		margin = DefaultSpillMargin
	}
	out := make([]Decision, 0, len(cands))
	weights := make([]uint64, len(cands))
	for i, c := range cands {
		weights[i] = rendezvousWeight(key, c.ID)
		out = append(out, Decision{Index: i, Reason: ReasonAffinity})
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && weights[out[j].Index] > weights[out[j-1].Index]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	if len(out) < 2 {
		return out
	}
	bestLoad, bestAt := cands[out[0].Index].Done, 0
	for r := 1; r < len(out); r++ {
		if d := cands[out[r].Index].Done; d < bestLoad {
			bestLoad, bestAt = d, r
		}
	}
	head := cands[out[0].Index].Done
	if bestAt != 0 &&
		head > time.Duration(float64(bestLoad)*factor) &&
		head > bestLoad+margin {
		// Promote the least-loaded candidate over the overloaded affinity
		// head; the rest keep their rendezvous order as alternates.
		spilled := out[bestAt]
		spilled.Reason = ReasonAffinitySpill
		copy(out[1:bestAt+1], out[:bestAt])
		out[0] = spilled
	}
	return out
}

// rendezvousWeight is the FNV-1a hash of key and id — each (key,
// candidate) pair gets an independent stable weight, so removing one
// candidate only remaps the keys it owned (the property that keeps a
// drain from reshuffling every model's plan-cache affinity).
func rendezvousWeight(key, id string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	h ^= 0xff // separator: ("ab","c") must not collide with ("a","bc")
	h *= prime64
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= prime64
	}
	return h
}
