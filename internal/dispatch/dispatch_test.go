package dispatch

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestBoundedQueueAdmit(t *testing.T) {
	var p BoundedQueue
	if err := p.Admit(QueueState{Depth: 3, Cap: 4}); err != nil {
		t.Fatalf("under capacity: %v", err)
	}
	if err := p.Admit(QueueState{Depth: 4, Cap: 4}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("at capacity: got %v, want ErrQueueFull", err)
	}
	if err := p.Admit(QueueState{Depth: 1 << 20, Cap: 0}); err != nil {
		t.Fatalf("unbounded queue: %v", err)
	}
	if err := p.Admit(QueueState{Depth: 0, Cap: 4, Draining: true}); !errors.Is(err, ErrDraining) {
		t.Fatalf("draining: got %v, want ErrDraining", err)
	}
	// Draining wins over queue-full: the caller should see the drain.
	if err := p.Admit(QueueState{Depth: 9, Cap: 4, Draining: true}); !errors.Is(err, ErrDraining) {
		t.Fatalf("draining at capacity: got %v, want ErrDraining", err)
	}
}

func TestMinCompletionRank(t *testing.T) {
	cands := []Candidate{
		{ID: "a", Done: 30 * time.Millisecond},
		{ID: "b", Done: 10 * time.Millisecond},
		{ID: "c", Done: 20 * time.Millisecond},
	}
	got := MinCompletion{}.Rank("ignored", cands)
	if len(got) != 3 {
		t.Fatalf("rank length %d", len(got))
	}
	for r, want := range []string{"b", "c", "a"} {
		if id := cands[got[r].Index].ID; id != want {
			t.Errorf("rank %d: got %s, want %s", r, id, want)
		}
		if got[r].Reason != ReasonLeastLoad {
			t.Errorf("rank %d reason %q", r, got[r].Reason)
		}
	}
	// Ties keep candidate order (deterministic dispatch).
	tied := []Candidate{{ID: "x"}, {ID: "y"}, {ID: "z"}}
	got = MinCompletion{}.Rank("", tied)
	for r, want := range []string{"x", "y", "z"} {
		if id := tied[got[r].Index].ID; id != want {
			t.Errorf("tied rank %d: got %s, want %s", r, id, want)
		}
	}
	if got := (MinCompletion{}).Rank("", nil); len(got) != 0 {
		t.Fatalf("no candidates: %v", got)
	}
}

// TestRendezvousAffinity: the same key always ranks the same candidate
// first while loads stay comparable, and distinct keys spread across
// candidates rather than piling onto one.
func TestRendezvousAffinity(t *testing.T) {
	var p RendezvousLeastLoad
	cands := []Candidate{{ID: "b1"}, {ID: "b2"}, {ID: "b3"}, {ID: "b4"}}
	owners := map[string]int{}
	for i := 0; i < 64; i++ {
		key := fmt.Sprintf("model-%d", i)
		first := p.Rank(key, cands)[0]
		again := p.Rank(key, cands)[0]
		if first.Index != again.Index {
			t.Fatalf("key %s: unstable rank %d vs %d", key, first.Index, again.Index)
		}
		if first.Reason != ReasonAffinity {
			t.Fatalf("key %s: reason %q", key, first.Reason)
		}
		owners[cands[first.Index].ID]++
	}
	if len(owners) < 3 {
		t.Fatalf("64 keys landed on only %d of 4 candidates: %v", len(owners), owners)
	}
}

// TestRendezvousMinimalRemap: dropping one candidate must remap only the
// keys it owned — every other key keeps its owner (the plan-cache
// affinity argument for rendezvous over modulo hashing).
func TestRendezvousMinimalRemap(t *testing.T) {
	var p RendezvousLeastLoad
	all := []Candidate{{ID: "b1"}, {ID: "b2"}, {ID: "b3"}, {ID: "b4"}}
	without := all[:3] // b4 drained
	moved := 0
	for i := 0; i < 128; i++ {
		key := fmt.Sprintf("model-%d", i)
		before := all[p.Rank(key, all)[0].Index].ID
		after := without[p.Rank(key, without)[0].Index].ID
		if before == "b4" {
			moved++
			continue
		}
		if before != after {
			t.Fatalf("key %s moved %s -> %s though its owner stayed", key, before, after)
		}
	}
	if moved == 0 {
		t.Fatal("no key owned the drained candidate; weight hash is degenerate")
	}
}

// TestRendezvousSpill: an overloaded affinity choice yields to the
// least-loaded candidate only when both spill conditions hold.
func TestRendezvousSpill(t *testing.T) {
	p := RendezvousLeastLoad{SpillFactor: 2, SpillMargin: 10 * time.Millisecond}
	cands := []Candidate{{ID: "b1"}, {ID: "b2"}, {ID: "b3"}}
	// Find a key owned by b2 so the test does not depend on hash values.
	key := ""
	for i := 0; i < 256; i++ {
		k := fmt.Sprintf("probe-%d", i)
		if cands[p.Rank(k, cands)[0].Index].ID == "b2" {
			key = k
			break
		}
	}
	if key == "" {
		t.Fatal("no key hashed to b2")
	}
	set := func(b1, b2, b3 time.Duration) []Candidate {
		return []Candidate{{ID: "b1", Done: b1}, {ID: "b2", Done: b2}, {ID: "b3", Done: b3}}
	}

	// Comparable load: affinity holds.
	comparable := set(40*time.Millisecond, 60*time.Millisecond, 50*time.Millisecond)
	got := p.Rank(key, comparable)
	if comparable[got[0].Index].ID != "b2" || got[0].Reason != ReasonAffinity {
		t.Fatalf("comparable load: %+v (%s)", got[0], comparable[got[0].Index].ID)
	}
	// Past both factor and margin: spill to the least loaded.
	loaded := set(40*time.Millisecond, 200*time.Millisecond, 50*time.Millisecond)
	got = p.Rank(key, loaded)
	if loaded[got[0].Index].ID != "b1" || got[0].Reason != ReasonAffinitySpill {
		t.Fatalf("overloaded affinity head: %+v (%s)", got[0], loaded[got[0].Index].ID)
	}
	// Alternates keep rendezvous order and include the demoted head.
	seen := map[string]bool{}
	for _, d := range got {
		seen[loaded[d.Index].ID] = true
	}
	if len(got) != 3 || !seen["b1"] || !seen["b2"] || !seen["b3"] {
		t.Fatalf("spilled rank lost candidates: %+v", got)
	}
	// Past the factor but inside the absolute margin: no spill (both
	// conditions must hold).
	tiny := set(1*time.Millisecond, 5*time.Millisecond, 3*time.Millisecond)
	got = p.Rank(key, tiny)
	if tiny[got[0].Index].ID != "b2" || got[0].Reason != ReasonAffinity {
		t.Fatalf("inside margin: %+v", got[0])
	}
	// Past the margin but inside the factor: no spill.
	got = p.Rank(key, set(100*time.Millisecond, 150*time.Millisecond, 120*time.Millisecond))
	if got[0].Reason != ReasonAffinity {
		t.Fatalf("inside factor: %+v", got[0])
	}
}

// TestRendezvousSingleCandidate: one candidate is always picked, loaded
// or not.
func TestRendezvousSingleCandidate(t *testing.T) {
	var p RendezvousLeastLoad
	got := p.Rank("m", []Candidate{{ID: "only", Done: time.Hour}})
	if len(got) != 1 || got[0].Index != 0 {
		t.Fatalf("single candidate: %+v", got)
	}
}
