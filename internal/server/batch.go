package server

import (
	"time"

	"mulayer/internal/core"
	"mulayer/internal/dispatch"
	"mulayer/internal/models"
)

// groupKey identifies one batching window: only requests for the same
// model, mechanism, SoC-class constraint, and failover exclusion set can
// share a fused execution (a retried request must not drag fresh
// batchmates onto its shrunken device set, or vice versa).
type groupKey struct {
	model string
	mech  core.Mechanism
	soc   string // requested class ("" = any device)
	// exclude is the bitmask of device ids the members' retries must avoid
	// (0 for first attempts).
	exclude uint64
}

// batchGroup is one micro-batch: an open accumulation window while in
// s.open, then a dispatched unit of work on a device queue. All mutable
// fields are guarded by the scheduler mutex until dispatch; after dispatch
// the group is owned by exactly one device worker.
type batchGroup struct {
	key    groupKey
	model  *models.Model
	items  []*pending
	rows   int // total rows across items
	opened time.Time
	timer  *time.Timer
	// flushed flips when the group leaves the open set; it makes the
	// window timer, a MaxBatch fill, and Drain idempotent against each
	// other.
	flushed bool
	// cost is the predicted fused makespan charged to the device backlog
	// at dispatch, released when the batch settles.
	cost time.Duration
	// rc is the run configuration chosen at dispatch: it carries the
	// winning device's degraded-mode mask, so the worker executes exactly
	// the plan the dispatcher costed.
	rc core.RunConfig
	// dispatched is when the window sealed and the group was handed to a
	// device queue (stamps the batch-window → device-queue trace boundary).
	dispatched time.Time
	// probe marks the batch as a quarantined device's half-open probe.
	probe bool
	// released flips when the group's backlog/depth charges are returned;
	// it makes the normal path and the worker's panic recovery idempotent.
	released bool
}

// runCfg is the serving run configuration for a mechanism (cost-only:
// serving simulates latency and energy over spec models).
func runCfg(mech core.Mechanism) core.RunConfig {
	return core.RunConfig{Mechanism: mech}
}

// enqueueLocked adds an admitted request to its batching window, opening
// one (with its flush timer) if needed and dispatching when the window
// fills. Caller holds s.mu.
func (s *Scheduler) enqueueLocked(p *pending) {
	key := groupKey{model: p.modelName, mech: p.mech, soc: p.soc, exclude: p.exclude}
	g := s.open[key]
	if g != nil && g.rows+p.rows > s.cfg.MaxBatch {
		// The newcomer would overflow the window: seal it and start fresh.
		s.dispatchLocked(g)
		g = nil
	}
	if g == nil {
		g = &batchGroup{key: key, model: p.model, opened: time.Now()}
		s.open[key] = g
		// The window length comes from the brownout ladder: under overload
		// the configured wait shrinks so queue time is not spent holding
		// windows open for occupancy.
		if wait := s.effectiveBatchWait(); s.cfg.MaxBatch > 1 && wait > 0 {
			g.timer = time.AfterFunc(wait, func() {
				s.mu.Lock()
				defer s.mu.Unlock()
				if !g.flushed {
					s.dispatchLocked(g)
				}
			})
		}
	}
	g.items = append(g.items, p)
	g.rows += p.rows
	if g.rows >= s.cfg.MaxBatch {
		s.dispatchLocked(g)
	}
}

// dispatchLocked seals a window and hands it to the device the placement
// policy picks — by default the minimum predicted completion time for the
// fused batch: the makespan argument of the single-request dispatcher,
// evaluated at the batch's actual row count via the per-class plan cache.
// Devices that are quarantined (backoff pending), probing, dead, or on
// the group's exclusion list are skipped; a degraded device is costed
// under its own degraded plan. Picking a quarantined-past-backoff device
// claims its half-open probe slot. Caller holds s.mu.
func (s *Scheduler) dispatchLocked(g *batchGroup) {
	g.flushed = true
	if g.timer != nil {
		g.timer.Stop()
	}
	delete(s.open, g.key)
	s.mets.windowWait.With(g.key.model).Observe(time.Since(g.opened).Seconds())

	now := time.Now()
	g.dispatched = now
	// Candidates for the shared placement policy: every eligible device
	// with its predicted completion for this batch (backlog + fused cost).
	type devChoice struct {
		d    *poolDevice
		rc   core.RunConfig
		cost time.Duration
	}
	var cands []dispatch.Candidate
	var choices []devChoice
	var lastErr error
	classSeen := false
	for _, d := range s.devices {
		if g.key.soc != "" && d.class != g.key.soc {
			continue
		}
		classSeen = true
		if g.key.exclude&(1<<uint(d.id)) != 0 || !d.canServe(now) {
			continue
		}
		rc := d.runCfg(g.key.mech)
		cost, err := s.caches[d.class].Estimate(g.model, rc, g.rows)
		if err != nil {
			// A degraded device may be unable to plan this mechanism at
			// all (e.g. cpu-only with the CPU down); skip it rather than
			// failing the group — another device may still serve it.
			lastErr = err
			continue
		}
		cands = append(cands, dispatch.Candidate{ID: d.name, Done: d.predictedCompletion() + cost})
		choices = append(choices, devChoice{d: d, rc: rc, cost: cost})
	}
	ranked := s.place.Rank(g.key.model, cands)
	if len(ranked) == 0 {
		switch {
		case !classSeen:
			s.settleGroupLocked(g, ErrNoDevice)
		case lastErr != nil:
			s.settleGroupLocked(g, lastErr)
		default:
			s.settleGroupLocked(g, ErrNoHealthyDevice)
		}
		return
	}
	pick := choices[ranked[0].Index]
	best, bestCost := pick.d, pick.cost
	g.cost = bestCost
	g.rc = pick.rc
	if best.noteDispatch() {
		g.probe = true
		s.mets.quarantine.With(best.name, "probe").Inc()
	}
	best.backlogNS.Add(int64(bestCost))
	best.depth.Add(int64(len(g.items)))
	// The queue's capacity equals the global request bound and every group
	// holds at least one request, so this send cannot block; holding the
	// mutex across it keeps Drain's close safe.
	best.queue <- g
}

// requeueLocked re-dispatches one member of a failed batch immediately as
// its own group: retries skip the batching window — their deadline already
// absorbed one queue wait. Caller holds s.mu.
func (s *Scheduler) requeueLocked(p *pending) {
	g := &batchGroup{
		key:    groupKey{model: p.modelName, mech: p.mech, soc: p.soc, exclude: p.exclude},
		model:  p.model,
		items:  []*pending{p},
		rows:   p.rows,
		opened: time.Now(),
	}
	s.dispatchLocked(g)
}

// settleGroupLocked fails every member of an undispatched group. Caller
// holds s.mu.
func (s *Scheduler) settleGroupLocked(g *batchGroup, err error) {
	for _, p := range g.items {
		s.settleLocked(p, outcome{err: err})
	}
}
