package server

import (
	"time"

	"mulayer/internal/core"
	"mulayer/internal/models"
)

// groupKey identifies one batching window: only requests for the same
// model, mechanism, and SoC-class constraint can share a fused execution.
type groupKey struct {
	model string
	mech  core.Mechanism
	soc   string // requested class ("" = any device)
}

// batchGroup is one micro-batch: an open accumulation window while in
// s.open, then a dispatched unit of work on a device queue. All mutable
// fields are guarded by the scheduler mutex until dispatch; after dispatch
// the group is owned by exactly one device worker.
type batchGroup struct {
	key    groupKey
	model  *models.Model
	items  []*pending
	rows   int // total rows across items
	opened time.Time
	timer  *time.Timer
	// flushed flips when the group leaves the open set; it makes the
	// window timer, a MaxBatch fill, and Drain idempotent against each
	// other.
	flushed bool
	// cost is the predicted fused makespan charged to the device backlog
	// at dispatch, released when the batch settles.
	cost time.Duration
}

// runCfg is the serving run configuration for a mechanism (cost-only:
// serving simulates latency and energy over spec models).
func runCfg(mech core.Mechanism) core.RunConfig {
	return core.RunConfig{Mechanism: mech}
}

// enqueueLocked adds an admitted request to its batching window, opening
// one (with its flush timer) if needed and dispatching when the window
// fills. Caller holds s.mu.
func (s *Scheduler) enqueueLocked(p *pending, socClass string) {
	key := groupKey{model: p.modelName, mech: p.mech, soc: socClass}
	g := s.open[key]
	if g != nil && g.rows+p.rows > s.cfg.MaxBatch {
		// The newcomer would overflow the window: seal it and start fresh.
		s.dispatchLocked(g)
		g = nil
	}
	if g == nil {
		g = &batchGroup{key: key, model: p.model, opened: time.Now()}
		s.open[key] = g
		if s.cfg.MaxBatch > 1 && s.cfg.BatchWait > 0 {
			g.timer = time.AfterFunc(s.cfg.BatchWait, func() {
				s.mu.Lock()
				defer s.mu.Unlock()
				if !g.flushed {
					s.dispatchLocked(g)
				}
			})
		}
	}
	g.items = append(g.items, p)
	g.rows += p.rows
	if g.rows >= s.cfg.MaxBatch {
		s.dispatchLocked(g)
	}
}

// dispatchLocked seals a window and hands it to the device with the
// minimum predicted completion time for the fused batch — the makespan
// argument of the single-request dispatcher, evaluated at the batch's
// actual row count via the per-class plan cache. Caller holds s.mu.
func (s *Scheduler) dispatchLocked(g *batchGroup) {
	g.flushed = true
	if g.timer != nil {
		g.timer.Stop()
	}
	delete(s.open, g.key)
	s.mets.windowWait.With(g.key.model).Observe(time.Since(g.opened).Seconds())

	var best *poolDevice
	var bestCost, bestDone time.Duration
	for _, d := range s.devices {
		if g.key.soc != "" && d.class != g.key.soc {
			continue
		}
		cost, err := s.caches[d.class].Estimate(g.model, runCfg(g.key.mech), g.rows)
		if err != nil {
			// Admission warmed the single-row estimate, so a failure here
			// is a planner regression; fail the whole group.
			s.settleGroupLocked(g, err)
			return
		}
		if done := d.predictedCompletion() + cost; best == nil || done < bestDone {
			best, bestCost, bestDone = d, cost, done
		}
	}
	if best == nil {
		s.settleGroupLocked(g, ErrNoDevice)
		return
	}
	g.cost = bestCost
	best.backlogNS.Add(int64(bestCost))
	best.depth.Add(int64(len(g.items)))
	// The queue's capacity equals the global request bound and every group
	// holds at least one request, so this send cannot block; holding the
	// mutex across it keeps Drain's close safe.
	best.queue <- g
}

// settleGroupLocked fails every member of an undispatched group. Caller
// holds s.mu.
func (s *Scheduler) settleGroupLocked(g *batchGroup, err error) {
	s.queued -= len(g.items)
	for _, p := range g.items {
		p.done <- outcome{err: err}
	}
}
