package server

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"mulayer/internal/core"
	"mulayer/internal/exec"
	"mulayer/internal/models"
	"mulayer/internal/server/metrics"
)

// Admission errors, mapped to HTTP statuses by the handler.
var (
	// ErrQueueFull means the bounded queue is at capacity (503).
	ErrQueueFull = errors.New("server: queue full")
	// ErrDraining means the scheduler no longer admits requests (503).
	ErrDraining = errors.New("server: draining")
	// ErrNoDevice means no pool device matches the requested SoC class
	// (400).
	ErrNoDevice = errors.New("server: no matching device")
)

// pending is one admitted request waiting on (or occupying) a device.
type pending struct {
	ctx       context.Context
	model     *models.Model
	modelName string
	mech      core.Mechanism
	cost      time.Duration // predicted simulated latency on the target device
	enqueued  time.Time
	done      chan outcome // buffered(1): the worker never blocks on it
}

// outcome is the terminal state of one admitted request.
type outcome struct {
	res       *exec.Result
	err       error
	device    string
	class     string
	queueWait time.Duration
}

type costKey struct {
	class string
	model string
	mech  core.Mechanism
}

// Scheduler owns the device pool, the bounded admission queue, and the
// predictor-guided dispatcher.
type Scheduler struct {
	cfg     Config
	devices []*poolDevice
	mets    *schedMetrics

	mu       sync.Mutex
	queued   int // admitted but unfinished, across all devices
	draining bool
	costs    map[costKey]time.Duration

	// hardCtx is canceled when a drain deadline expires: it aborts queued
	// and in-flight work that graceful draining could not finish.
	hardCtx  context.Context
	hardKill context.CancelFunc

	wg sync.WaitGroup
}

// schedMetrics is the scheduler's slice of the metrics registry.
type schedMetrics struct {
	requests  *metrics.CounterVec   // model, soc, mechanism, code
	rejected  *metrics.CounterVec   // reason
	timeouts  *metrics.CounterVec   // stage: queued | running
	queueWait *metrics.HistogramVec // soc
	simLat    *metrics.HistogramVec // model, soc, mechanism
	wallLat   *metrics.HistogramVec // model, soc
	inflight  *metrics.GaugeVec     // device
}

func newSchedMetrics(reg *metrics.Registry) *schedMetrics {
	return &schedMetrics{
		requests: metrics.NewCounterVec(reg, "mulayer_requests_total",
			"Inference requests by terminal status code.", "model", "soc", "mechanism", "code"),
		rejected: metrics.NewCounterVec(reg, "mulayer_rejected_total",
			"Requests refused at admission.", "reason"),
		timeouts: metrics.NewCounterVec(reg, "mulayer_timeouts_total",
			"Requests whose deadline expired, by stage.", "stage"),
		queueWait: metrics.NewHistogramVec(reg, "mulayer_queue_wait_seconds",
			"Wall time from admission to dispatch.", metrics.LatencyBuckets(), "soc"),
		simLat: metrics.NewHistogramVec(reg, "mulayer_inference_latency_seconds",
			"Simulated on-device inference latency.", metrics.LatencyBuckets(), "model", "soc", "mechanism"),
		wallLat: metrics.NewHistogramVec(reg, "mulayer_wall_seconds",
			"Wall time from admission to completion.", metrics.LatencyBuckets(), "model", "soc"),
		inflight: metrics.NewGaugeVec(reg, "mulayer_inflight",
			"Requests currently executing, by device.", "device"),
	}
}

// NewScheduler builds the pool and starts one worker per device. The
// registry receives the scheduler's metric families.
func NewScheduler(cfg Config, reg *metrics.Registry) (*Scheduler, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	devices, err := buildPool(cfg)
	if err != nil {
		return nil, err
	}
	hardCtx, hardKill := context.WithCancel(context.Background())
	s := &Scheduler{
		cfg:      cfg,
		devices:  devices,
		mets:     newSchedMetrics(reg),
		costs:    make(map[costKey]time.Duration),
		hardCtx:  hardCtx,
		hardKill: hardKill,
	}
	metrics.NewGaugeFunc(reg, "mulayer_queue_depth",
		"Admitted but unfinished requests across all devices.", func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(s.queued)
		})
	for _, d := range devices {
		s.wg.Add(1)
		go s.worker(d)
	}
	return s, nil
}

// Devices returns the pool (for /statusz).
func (s *Scheduler) Devices() []*poolDevice { return s.devices }

// QueueDepth returns the number of admitted but unfinished requests.
func (s *Scheduler) QueueDepth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queued
}

// Draining reports whether the scheduler has stopped admitting.
func (s *Scheduler) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// estimate returns the predicted simulated latency of (model, mech) on a
// device class, planning once and caching.
func (s *Scheduler) estimate(d *poolDevice, m *models.Model, modelName string, mech core.Mechanism) (time.Duration, error) {
	key := costKey{class: d.class, model: modelName, mech: mech}
	s.mu.Lock()
	c, ok := s.costs[key]
	s.mu.Unlock()
	if ok {
		return c, nil
	}
	plan, err := d.rt.Plan(m, core.RunConfig{Mechanism: mech})
	if err != nil {
		return 0, err
	}
	c = plan.Predicted
	if c <= 0 {
		c = time.Microsecond
	}
	s.mu.Lock()
	s.costs[key] = c
	s.mu.Unlock()
	return c, nil
}

// RetryAfter estimates how long a rejected client should back off: the
// minimum predicted completion time across devices, converted to wall
// seconds by the pacing time scale and clamped to [1s, 30s].
func (s *Scheduler) RetryAfter() int {
	min := time.Duration(math.MaxInt64)
	for _, d := range s.devices {
		if b := d.predictedCompletion(); b < min {
			min = b
		}
	}
	secs := min.Seconds()
	if s.cfg.TimeScale > 0 {
		secs /= s.cfg.TimeScale
	}
	n := int(math.Ceil(secs))
	if n < 1 {
		n = 1
	}
	if n > 30 {
		n = 30
	}
	return n
}

// Submit admits, dispatches, and waits out one request. socClass may be
// empty (any device) or name a configured class. The returned outcome's
// err distinguishes admission rejections (ErrQueueFull, ErrDraining,
// ErrNoDevice), deadline expiry (the context error), and planner errors.
func (s *Scheduler) Submit(ctx context.Context, modelName string, m *models.Model, mech core.Mechanism, socClass string) outcome {
	// Estimate the request's cost on every eligible class before taking
	// the admission decision: dispatch needs per-class costs to compare
	// predicted completion times.
	type candidate struct {
		d    *poolDevice
		cost time.Duration
	}
	var cands []candidate
	for _, d := range s.devices {
		if socClass != "" && d.class != socClass {
			continue
		}
		cost, err := s.estimate(d, m, modelName, mech)
		if err != nil {
			return outcome{err: err}
		}
		cands = append(cands, candidate{d: d, cost: cost})
	}
	if len(cands) == 0 {
		return outcome{err: fmt.Errorf("%w: soc class %q", ErrNoDevice, socClass)}
	}

	p := &pending{
		ctx:       ctx,
		model:     m,
		modelName: modelName,
		mech:      mech,
		enqueued:  time.Now(),
		done:      make(chan outcome, 1),
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.mets.rejected.With("draining").Inc()
		return outcome{err: ErrDraining}
	}
	if s.queued >= s.cfg.QueueDepth {
		s.mu.Unlock()
		s.mets.rejected.With("queue_full").Inc()
		return outcome{err: ErrQueueFull}
	}
	// Makespan-style dispatch: minimum predicted completion time =
	// device backlog + this request's predicted cost on that device.
	best := cands[0]
	bestDone := best.d.predictedCompletion() + best.cost
	for _, c := range cands[1:] {
		if done := c.d.predictedCompletion() + c.cost; done < bestDone {
			best, bestDone = c, done
		}
	}
	p.cost = best.cost
	s.queued++
	best.d.backlogNS.Add(int64(best.cost))
	best.d.depth.Add(1)
	// The queue's capacity equals the global bound, so this send cannot
	// block; holding the mutex across it keeps Drain's close safe.
	best.d.queue <- p
	s.mu.Unlock()

	select {
	case out := <-p.done:
		return out
	case <-ctx.Done():
		// The worker will observe the dead context when it reaches the
		// request (or mid-run) and settle the accounting; the client gets
		// the timeout now.
		return outcome{err: ctx.Err(), device: best.d.name, class: best.d.class}
	}
}

// worker drains one device's queue sequentially.
func (s *Scheduler) worker(d *poolDevice) {
	defer s.wg.Done()
	for p := range d.queue {
		s.serve(d, p)
	}
}

// serve runs one admitted request on its device and settles accounting.
func (s *Scheduler) serve(d *poolDevice, p *pending) {
	wait := time.Since(p.enqueued)
	s.mets.queueWait.With(d.class).Observe(wait.Seconds())

	out := outcome{device: d.name, class: d.class, queueWait: wait}
	switch {
	case s.hardCtx.Err() != nil:
		out.err = ErrDraining
	case p.ctx.Err() != nil:
		// Expired while queued: never touched the device.
		out.err = p.ctx.Err()
		s.mets.timeouts.With("queued").Inc()
	default:
		out.res, out.err = s.runPaced(d, p)
	}

	d.backlogNS.Add(-int64(p.cost))
	d.depth.Add(-1)
	s.mu.Lock()
	s.queued--
	s.mu.Unlock()

	code := statusFor(out.err)
	s.mets.requests.With(p.modelName, d.class, p.mech.String(), fmt.Sprint(code)).Inc()
	if out.err == nil {
		d.served.Add(1)
		s.mets.simLat.With(p.modelName, d.class, p.mech.String()).Observe(out.res.Report.Latency.Seconds())
		s.mets.wallLat.With(p.modelName, d.class).Observe(time.Since(p.enqueued).Seconds())
	}
	p.done <- out
}

// runPaced executes the inference and, when pacing is enabled, occupies
// the device for the simulated latency scaled by TimeScale — so offered
// load saturates the pool the way it would saturate the modeled hardware.
func (s *Scheduler) runPaced(d *poolDevice, p *pending) (*exec.Result, error) {
	runCtx, cancel := context.WithCancel(p.ctx)
	defer cancel()
	stop := context.AfterFunc(s.hardCtx, cancel)
	defer stop()

	s.mets.inflight.With(d.name).Add(1)
	defer s.mets.inflight.With(d.name).Add(-1)

	start := time.Now()
	res, err := d.rt.RunContext(runCtx, p.model, nil, core.RunConfig{Mechanism: p.mech})
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			if s.hardCtx.Err() != nil {
				return nil, ErrDraining
			}
			s.mets.timeouts.With("running").Inc()
			return nil, p.ctx.Err()
		}
		return nil, err
	}
	if s.cfg.TimeScale > 0 {
		pace := time.Duration(float64(res.Report.Latency) / s.cfg.TimeScale)
		if rem := pace - time.Since(start); rem > 0 {
			t := time.NewTimer(rem)
			defer t.Stop()
			select {
			case <-t.C:
			case <-runCtx.Done():
				if s.hardCtx.Err() != nil {
					return nil, ErrDraining
				}
				s.mets.timeouts.With("running").Inc()
				return nil, p.ctx.Err()
			}
		}
	}
	return res, nil
}

// Drain stops admitting, lets the pool finish queued and in-flight work,
// and waits for the workers to exit. When ctx expires first, remaining
// work is canceled and ctx's error returned.
func (s *Scheduler) Drain(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		for _, d := range s.devices {
			close(d.queue)
		}
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.hardKill()
		<-done
		return ctx.Err()
	}
}

// statusFor maps a request outcome error to its HTTP status code.
func statusFor(err error) int {
	switch {
	case err == nil:
		return 200
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrDraining):
		return 503
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return 504
	case errors.Is(err, ErrNoDevice):
		return 400
	default:
		return 500
	}
}
