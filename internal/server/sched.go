package server

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"mulayer/internal/core"
	"mulayer/internal/dispatch"
	"mulayer/internal/exec"
	"mulayer/internal/faults"
	"mulayer/internal/models"
	"mulayer/internal/server/metrics"
	"mulayer/internal/trace"
)

// Admission errors, mapped to HTTP statuses by the handler. Queue-full
// and draining are the shared policy's errors (internal/dispatch), so the
// node and fleet tiers reject identically.
var (
	// ErrQueueFull means the bounded queue is at capacity (503).
	ErrQueueFull = dispatch.ErrQueueFull
	// ErrDraining means the scheduler no longer admits requests (503).
	ErrDraining = dispatch.ErrDraining
	// ErrNoDevice means no pool device matches the requested SoC class
	// (400).
	ErrNoDevice = errors.New("server: no matching device")
)

// pending is one admitted request: a member of a batching window, then of
// a dispatched batch, possibly requeued across devices by failover.
type pending struct {
	ctx       context.Context
	model     *models.Model
	modelName string
	mech      core.Mechanism
	soc       string   // requested class ("" = any device)
	rows      int      // rows this request contributes to its batch (≥1)
	priority  Priority // shedding class (brownout ladder level 3 rejects low)
	enqueued  time.Time
	done      chan outcome // buffered(1): the worker never blocks on it
	// tr is the request's trace (nil when tracing is off). The handler
	// owns creation and finish; the serving worker records stage and
	// kernel spans on it through the trace's own mutex.
	tr *trace.Trace

	// attempts counts device failures this request survived; exclude is
	// the bitmask of device ids those failures occurred on. Guarded by
	// s.mu (a request is owned by one worker at a time, but failover hands
	// it between workers through the scheduler lock).
	attempts int
	exclude  uint64
	// settled flips when the request's outcome is delivered; it makes
	// settlement idempotent so the normal path, the failover path, and the
	// worker's panic recovery can race safely. Guarded by s.mu.
	settled bool
}

// outcome is the terminal state of one admitted request.
type outcome struct {
	err       error
	device    string
	class     string
	queueWait time.Duration
	// simLat is the simulated latency the request observed: the fused
	// batch's makespan (a batch member finishes with its batch).
	simLat time.Duration
	// energyJ is the request's share of the batch energy, split by rows.
	energyJ float64
	// batchRows is the total row count of the batch that served the
	// request.
	batchRows int
}

// Scheduler owns the device pool, the bounded admission queue, the
// batching windows, and the predictor-guided dispatcher.
type Scheduler struct {
	cfg     Config
	devices []*poolDevice
	// caches holds one plan/makespan cache per SoC class: the partitioner
	// and the cost-only makespan simulation run once per (model,
	// mechanism, rows) key instead of once per request.
	caches map[string]*core.PlanCache
	mets   *schedMetrics

	// admit and place are the pluggable admission and placement policies
	// shared with the fleet tier (Config.Admission / Config.Dispatch;
	// defaults: bounded queue, minimum predicted completion).
	admit dispatch.Admission
	place dispatch.Policy

	// overload is the brownout-ladder controller (nil when the ladder is
	// off); retryB is the fleet-wide failover retry budget (nil when off);
	// overloadStop ends the controller's evaluation loop at drain.
	overload     *overloadController
	retryB       *retryBudget
	overloadStop chan struct{}

	mu       sync.Mutex
	queued   int // admitted but unfinished, across all devices
	draining bool
	open     map[groupKey]*batchGroup

	// hardCtx is canceled when a drain deadline expires: it aborts queued
	// and in-flight work that graceful draining could not finish.
	hardCtx  context.Context
	hardKill context.CancelFunc

	wg sync.WaitGroup
}

// schedMetrics is the scheduler's slice of the metrics registry.
type schedMetrics struct {
	requests   *metrics.CounterVec   // model, soc, mechanism, code
	rejected   *metrics.CounterVec   // reason
	timeouts   *metrics.CounterVec   // stage: queued | running
	batches    *metrics.CounterVec   // soc
	queueWait  *metrics.HistogramVec // soc
	windowWait *metrics.HistogramVec // model
	occupancy  *metrics.HistogramVec // model, soc
	simLat     *metrics.HistogramVec // model, soc, mechanism
	wallLat    *metrics.HistogramVec // model, soc
	inflight   *metrics.GaugeVec     // device
	faults     *metrics.CounterVec   // device, kind
	retries    *metrics.CounterVec   // device (the one that failed)
	quarantine *metrics.CounterVec   // device, transition
	degraded   *metrics.CounterVec   // device
	predErr    *metrics.HistogramVec // proc, kind, mechanism

	admissionRejects *metrics.CounterVec // reason: deadline_infeasible | queue_aged | priority_shed
	watchdogTrips    *metrics.CounterVec // proc (the processor that stalled)
	retryExhausted   *metrics.CounterVec // model
	overloadSteps    *metrics.CounterVec // direction: up | down
}

func newSchedMetrics(reg *metrics.Registry) *schedMetrics {
	return &schedMetrics{
		requests: metrics.NewCounterVec(reg, "mulayer_requests_total",
			"Inference requests by terminal status code.", "model", "soc", "mechanism", "code"),
		rejected: metrics.NewCounterVec(reg, "mulayer_rejected_total",
			"Requests refused at admission.", "reason"),
		timeouts: metrics.NewCounterVec(reg, "mulayer_timeouts_total",
			"Requests whose deadline expired, by stage.", "stage"),
		batches: metrics.NewCounterVec(reg, "mulayer_batches_total",
			"Fused batch executions dispatched, by device class.", "soc"),
		queueWait: metrics.NewHistogramVec(reg, "mulayer_queue_wait_seconds",
			"Wall time from admission to dispatch.", metrics.LatencyBuckets(), "soc"),
		windowWait: metrics.NewHistogramVec(reg, "mulayer_batch_window_wait_seconds",
			"Wall time a batching window stayed open before dispatch.", metrics.LatencyBuckets(), "model"),
		occupancy: metrics.NewHistogramVec(reg, "mulayer_batch_occupancy",
			"Rows fused into one batched execution.", metrics.OccupancyBuckets(), "model", "soc"),
		simLat: metrics.NewHistogramVec(reg, "mulayer_inference_latency_seconds",
			"Simulated on-device inference latency.", metrics.LatencyBuckets(), "model", "soc", "mechanism"),
		wallLat: metrics.NewHistogramVec(reg, "mulayer_wall_seconds",
			"Wall time from admission to completion.", metrics.LatencyBuckets(), "model", "soc"),
		inflight: metrics.NewGaugeVec(reg, "mulayer_inflight",
			"Requests currently executing, by device.", "device"),
		faults: metrics.NewCounterVec(reg, "mulayer_faults_injected_total",
			"Injected fault decisions, by device and kind.", "device", "kind"),
		retries: metrics.NewCounterVec(reg, "mulayer_failover_retries_total",
			"Requests requeued onto another device after a device failure.", "device"),
		quarantine: metrics.NewCounterVec(reg, "mulayer_quarantine_transitions_total",
			"Device circuit-breaker transitions.", "device", "transition"),
		degraded: metrics.NewCounterVec(reg, "mulayer_degraded_batches_total",
			"Batches executed under a degraded (processor-down) plan.", "device"),
		predErr: metrics.NewHistogramVec(reg, "mulayer_predictor_error_ratio",
			"Latency predictor drift: predicted/actual kernel time per processor and layer kind "+
				"(proc \"all\", kind \"network\" rows compare whole-request makespans).",
			metrics.RatioBuckets(), "proc", "kind", "mechanism"),
		admissionRejects: metrics.NewCounterVec(reg, "mulayer_admission_rejects_total",
			"Requests shed by overload protection, by reason.", "reason"),
		watchdogTrips: metrics.NewCounterVec(reg, "mulayer_watchdog_trips_total",
			"Kernel stall watchdog trips, by processor.", "proc"),
		retryExhausted: metrics.NewCounterVec(reg, "mulayer_retry_budget_exhausted_total",
			"Failover retries refused by the per-model retry budget.", "model"),
		overloadSteps: metrics.NewCounterVec(reg, "mulayer_overload_transitions_total",
			"Brownout ladder level transitions, by direction.", "direction"),
	}
}

// NewScheduler builds the pool and starts one worker per device. The
// registry receives the scheduler's metric families.
func NewScheduler(cfg Config, reg *metrics.Registry) (*Scheduler, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	devices, err := buildPool(cfg)
	if err != nil {
		return nil, err
	}
	caches := make(map[string]*core.PlanCache)
	for _, d := range devices {
		if _, ok := caches[d.class]; !ok {
			caches[d.class] = core.NewPlanCache(d.rt)
		}
	}
	hardCtx, hardKill := context.WithCancel(context.Background())
	s := &Scheduler{
		cfg:      cfg,
		devices:  devices,
		caches:   caches,
		mets:     newSchedMetrics(reg),
		admit:    cfg.Admission,
		place:    cfg.Dispatch,
		open:     make(map[groupKey]*batchGroup),
		hardCtx:  hardCtx,
		hardKill: hardKill,
		retryB:   newRetryBudget(cfg.Overload),
	}
	if cfg.Overload.QueueWaitP95 > 0 {
		s.overload = newOverloadController(cfg.Overload)
		s.overloadStop = make(chan struct{})
	}
	metrics.NewGaugeFunc(reg, "mulayer_overload_level",
		"Current brownout ladder level (0 = normal service).", func() float64 {
			return float64(s.overload.level())
		})
	metrics.NewGaugeFunc(reg, "mulayer_queue_depth",
		"Admitted but unfinished requests across all devices.", func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(s.queued)
		})
	metrics.NewGaugeFunc(reg, "mulayer_plan_cache_hits_total",
		"Plan/makespan cache hits across all device classes.", func() float64 {
			return float64(s.cacheStats().Hits)
		})
	metrics.NewGaugeFunc(reg, "mulayer_plan_cache_misses_total",
		"Plan/makespan cache misses across all device classes.", func() float64 {
			return float64(s.cacheStats().Misses)
		})
	for _, d := range devices {
		if d.faults != nil {
			dev := d
			dev.faults.Observe = func(kind faults.Kind, proc string) {
				s.mets.faults.With(dev.name, kind.String()).Inc()
			}
		}
		s.wg.Add(1)
		go s.worker(d)
	}
	if s.overload != nil {
		s.wg.Add(1)
		go s.overloadLoop()
	}
	return s, nil
}

// overloadLoop is the brownout controller's evaluation ticker: one ladder
// step decision per EvalEvery, until drain.
func (s *Scheduler) overloadLoop() {
	defer s.wg.Done()
	t := time.NewTicker(s.cfg.Overload.EvalEvery)
	defer t.Stop()
	for {
		select {
		case <-s.overloadStop:
			return
		case now := <-t.C:
			s.mu.Lock()
			empty := s.queued == 0
			s.mu.Unlock()
			switch s.overload.evaluate(now, empty) {
			case "up":
				s.mets.overloadSteps.With("up").Inc()
			case "down":
				s.mets.overloadSteps.With("down").Inc()
			}
		}
	}
}

// OverloadLevel returns the current brownout ladder level (0 when the
// ladder is disabled or calm).
func (s *Scheduler) OverloadLevel() int { return s.overload.level() }

// OverloadStatus is the overload-protection section of /statusz.
type OverloadStatus struct {
	Enabled   bool                 `json:"enabled"`
	Config    OverloadStatusConfig `json:"config"`
	Level     int                  `json:"level"`
	P95MS     float64              `json:"queue_wait_p95_ms"`
	StepsUp   int64                `json:"steps_up"`
	StepsDown int64                `json:"steps_down"`
	// RetryTokens is the per-model retry-budget token level (omitted when
	// budgets are off; a model appears after its first failover attempt).
	RetryTokens map[string]float64 `json:"retry_tokens,omitempty"`
}

// OverloadStatusConfig echoes the active overload configuration.
type OverloadStatusConfig struct {
	DeadlineAdmission bool    `json:"deadline_admission"`
	WatchdogFactor    float64 `json:"watchdog_factor"`
	QueueWaitP95MS    float64 `json:"queue_wait_p95_threshold_ms"`
	RetryRate         float64 `json:"retry_rate"`
	RetryBurst        int     `json:"retry_burst"`
}

// OverloadStatus reports the overload controller's state for /statusz.
func (s *Scheduler) OverloadStatus() OverloadStatus {
	o := s.cfg.Overload
	level, p95, up, down := s.overload.snapshot()
	return OverloadStatus{
		Enabled: o.Enabled(),
		Config: OverloadStatusConfig{
			DeadlineAdmission: o.DeadlineAdmission,
			WatchdogFactor:    o.WatchdogFactor,
			QueueWaitP95MS:    float64(o.QueueWaitP95) / float64(time.Millisecond),
			RetryRate:         o.RetryRate,
			RetryBurst:        o.RetryBurst,
		},
		Level:       level,
		P95MS:       float64(p95) / float64(time.Millisecond),
		StepsUp:     up,
		StepsDown:   down,
		RetryTokens: s.retryB.tokens(time.Now()),
	}
}

// effectiveBatchWait is the batching window under the brownout ladder:
// from level 1 up the configured window is halved per level, trading batch
// occupancy back for queue-wait latency.
func (s *Scheduler) effectiveBatchWait() time.Duration {
	w := s.cfg.BatchWait
	if lvl := s.overload.level(); lvl >= overloadLevelShrinkWindow {
		w >>= uint(lvl)
	}
	return w
}

// wallOf converts a simulated duration to predicted wall time under the
// pacing time scale (0 when pacing is off — predictions then cost nothing).
func (s *Scheduler) wallOf(sim time.Duration) time.Duration {
	if s.cfg.TimeScale <= 0 {
		return 0
	}
	return time.Duration(float64(sim) / s.cfg.TimeScale)
}

// Devices returns the pool (for /statusz).
func (s *Scheduler) Devices() []*poolDevice { return s.devices }

// QueueDepth returns the number of admitted but unfinished requests.
func (s *Scheduler) QueueDepth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queued
}

// Draining reports whether the scheduler has stopped admitting.
func (s *Scheduler) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// AllDead reports whether every pool device is dead — the readiness probe
// answers 503 once nothing can serve.
func (s *Scheduler) AllDead() bool {
	for _, d := range s.devices {
		if d.health().State != healthDead {
			return false
		}
	}
	return true
}

// CacheStats aggregates the per-class plan caches (for /statusz).
func (s *Scheduler) CacheStats() core.PlanCacheStats { return s.cacheStats() }

func (s *Scheduler) cacheStats() core.PlanCacheStats {
	var total core.PlanCacheStats
	for _, c := range s.caches {
		st := c.Stats()
		total.Plans += st.Plans
		total.Makespans += st.Makespans
		total.Hits += st.Hits
		total.Misses += st.Misses
	}
	return total
}

// RetryAfter estimates how long a rejected client should back off: the
// predicted drain time of the least-loaded device's committed backlog,
// plus the fused cost of every still-open batching window and the window
// time left before the last of them seals — converted to wall seconds by
// the pacing time scale and clamped to [1s, 30s].
func (s *Scheduler) RetryAfter() int {
	minBacklog := time.Duration(math.MaxInt64)
	for _, d := range s.devices {
		if b := d.predictedCompletion(); b < minBacklog {
			minBacklog = b
		}
	}
	openCost, windowRem := s.openWindowCost()

	secs := (minBacklog + openCost).Seconds()
	if s.cfg.TimeScale > 0 {
		secs /= s.cfg.TimeScale
	}
	secs += windowRem.Seconds() // window time runs on the wall clock
	n := int(math.Ceil(secs))
	if n < 1 {
		n = 1
	}
	if n > 30 {
		n = 30
	}
	return n
}

// openWindowCost is the predicted fused cost of every still-open
// batching window (simulated time, cheapest eligible class per window)
// and the wall-clock window time left before the last of them seals.
func (s *Scheduler) openWindowCost() (openCost, windowRem time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, g := range s.open {
		var cheapest time.Duration
		for class, c := range s.caches {
			if g.key.soc != "" && class != g.key.soc {
				continue
			}
			if est, err := c.Estimate(g.model, runCfg(g.key.mech), g.rows); err == nil {
				if cheapest == 0 || est < cheapest {
					cheapest = est
				}
			}
		}
		openCost += cheapest
		if rem := s.effectiveBatchWait() - time.Since(g.opened); rem > windowRem {
			windowRem = rem
		}
	}
	return openCost, windowRem
}

// Request is one inference submission's scheduling parameters.
type Request struct {
	// ModelName keys the model in metrics and the retry budget.
	ModelName string
	// Model is the spec model to run.
	Model *models.Model
	// Mech is the execution mechanism.
	Mech core.Mechanism
	// SoC may be empty (any device) or name a configured class.
	SoC string
	// Rows is the number of input rows the request contributes (≥1).
	Rows int
	// Priority is the request's shedding class (zero value PriorityHigh;
	// the HTTP layer defaults absent fields to PriorityNormal).
	Priority Priority
	// Trace, when non-nil, receives queue, batch-window, plan, and kernel
	// spans as the request moves through the scheduler.
	Trace *trace.Trace
}

// Submit admits one request into its batching window and waits out its
// outcome. The returned outcome's err distinguishes admission rejections
// (ErrQueueFull, ErrDraining, ErrNoDevice, ErrPriorityShed,
// ErrDeadlineInfeasible), deadline expiry (the context error), and
// planner errors.
func (s *Scheduler) Submit(ctx context.Context, modelName string, m *models.Model, mech core.Mechanism, socClass string, rows int) outcome {
	return s.SubmitRequest(ctx, Request{
		ModelName: modelName, Model: m, Mech: mech, SoC: socClass,
		Rows: rows, Priority: PriorityNormal,
	})
}

// SubmitTraced is Submit with a request trace attached (nil for none).
func (s *Scheduler) SubmitTraced(ctx context.Context, modelName string, m *models.Model, mech core.Mechanism, socClass string, rows int, tr *trace.Trace) outcome {
	return s.SubmitRequest(ctx, Request{
		ModelName: modelName, Model: m, Mech: mech, SoC: socClass,
		Rows: rows, Priority: PriorityNormal, Trace: tr,
	})
}

// SubmitRequest is the full submission API: Submit with a priority class
// and an optional trace.
func (s *Scheduler) SubmitRequest(ctx context.Context, req Request) outcome {
	modelName, m, mech := req.ModelName, req.Model, req.Mech
	socClass, rows, tr := req.SoC, req.Rows, req.Trace
	if rows < 1 {
		rows = 1
	}
	// Brownout level 3: the lowest class is rejected before any planning
	// work — shedding must be O(1), not O(queue).
	if req.Priority >= PriorityLow && s.overload.level() >= overloadLevelShedLow {
		s.mets.admissionRejects.With("priority_shed").Inc()
		return outcome{err: ErrPriorityShed}
	}
	// Warm the single-row estimate on every eligible class before the
	// admission decision: it validates the class constraint and surfaces
	// planner errors now, and dispatch-time estimates then hit the cache.
	warmed := map[string]bool{}
	eligible := false
	for _, d := range s.devices {
		if socClass != "" && d.class != socClass {
			continue
		}
		eligible = true
		if warmed[d.class] {
			continue
		}
		warmed[d.class] = true
		if _, err := s.caches[d.class].Estimate(m, runCfg(mech), 1); err != nil {
			return outcome{err: err}
		}
	}
	if !eligible {
		return outcome{err: fmt.Errorf("%w: soc class %q", ErrNoDevice, socClass)}
	}

	p := &pending{
		ctx:       ctx,
		model:     m,
		modelName: modelName,
		mech:      mech,
		soc:       socClass,
		rows:      rows,
		priority:  req.Priority,
		enqueued:  time.Now(),
		done:      make(chan outcome, 1),
		tr:        tr,
	}

	s.mu.Lock()
	if err := s.admit.Admit(dispatch.QueueState{
		Depth: s.queued, Cap: s.cfg.QueueDepth, Draining: s.draining,
	}); err != nil {
		s.mu.Unlock()
		switch {
		case errors.Is(err, dispatch.ErrDraining):
			s.mets.rejected.With("draining").Inc()
		case errors.Is(err, dispatch.ErrQueueFull):
			s.mets.rejected.With("queue_full").Inc()
		default:
			s.mets.rejected.With("policy").Inc()
		}
		return outcome{err: err}
	}
	// Deadline-aware admission: the predictor already knows the cheapest
	// device's committed backlog and this request's fused cost; if that
	// predicted completion (plus the batching window it may wait out)
	// cannot fit the deadline, reject now with a typed 503 instead of
	// letting the request rot in the queue toward a certain 504. Inert
	// without pacing: wall predictions are then 0.
	if s.cfg.Overload.DeadlineAdmission {
		now := time.Now()
		if eligible, wall := s.retryCostLocked(p, 0, now); eligible &&
			!deadlineAllows(ctx, wall+s.effectiveBatchWait(), now) {
			s.mu.Unlock()
			s.mets.admissionRejects.With("deadline_infeasible").Inc()
			return outcome{err: fmt.Errorf("%w: predicted completion %v exceeds the deadline", ErrDeadlineInfeasible, wall)}
		}
	}
	s.queued++
	s.enqueueLocked(p)
	s.mu.Unlock()

	select {
	case out := <-p.done:
		return out
	case <-ctx.Done():
		// The worker will observe the dead member when it reaches the
		// batch (or at the end of the fused run) and settle the
		// accounting; the client gets the timeout now.
		return outcome{err: ctx.Err()}
	}
}

// worker drains one device's queue of dispatched batches sequentially. A
// panic escaping a batch (a scheduler bug — injected kernel panics are
// already recovered inside runBatchPaced) is converted to a DeviceError
// and every unsettled member is failed over or settled, so one bad batch
// can neither crash the server nor strand queue entries.
func (s *Scheduler) worker(d *poolDevice) {
	defer s.wg.Done()
	for g := range d.queue {
		s.serveBatchSafe(d, g)
	}
}

func (s *Scheduler) serveBatchSafe(d *poolDevice, g *batchGroup) {
	defer func() {
		if r := recover(); r != nil {
			err := &DeviceError{Device: d.name, Cause: fmt.Errorf("panic: %v", r)}
			s.releaseGroup(d, g)
			s.failMembers(d, g, err)
		}
	}()
	s.serveBatch(d, g)
}

// settleLocked delivers a request's terminal outcome exactly once; it
// returns false when someone settled the request already. Caller holds
// s.mu.
func (s *Scheduler) settleLocked(p *pending, out outcome) bool {
	if p.settled {
		return false
	}
	p.settled = true
	s.queued--
	p.done <- out
	return true
}

// settleFinal settles p and records its terminal request metrics.
func (s *Scheduler) settleFinal(d *poolDevice, p *pending, out outcome) {
	s.mu.Lock()
	ok := s.settleLocked(p, out)
	s.mu.Unlock()
	if !ok {
		return
	}
	s.mets.requests.With(p.modelName, d.class, p.mech.String(), fmt.Sprint(statusFor(out.err))).Inc()
	if out.err == nil {
		d.served.Add(1)
		s.mets.simLat.With(p.modelName, d.class, p.mech.String()).Observe(out.simLat.Seconds())
		s.mets.wallLat.With(p.modelName, d.class).Observe(time.Since(p.enqueued).Seconds())
	}
}

// releaseGroup returns a dispatched group's backlog and depth charges to
// its device, once, no matter how the batch ended (the worker's panic
// recovery may run after a partial serveBatch).
func (s *Scheduler) releaseGroup(d *poolDevice, g *batchGroup) {
	if g.released {
		return
	}
	g.released = true
	d.backlogNS.Add(-int64(g.cost))
	d.depth.Add(-int64(len(g.items)))
}

// serveBatch runs one dispatched batch on its device and settles every
// member: already-dead members are dropped before the run (their rows
// never touch the device), members whose deadline dies mid-batch get
// their context error, and the rest share the fused execution's report.
// A device failure (injected fault or recovered panic) settles nobody
// directly — live members fail over through failMembers.
func (s *Scheduler) serveBatch(d *poolDevice, g *batchGroup) {
	serveStart := time.Now()
	outs := make([]outcome, len(g.items))
	for i, p := range g.items {
		wait := serveStart.Sub(p.enqueued)
		s.mets.queueWait.With(d.class).Observe(wait.Seconds())
		s.overload.observe(serveStart, wait)
		outs[i] = outcome{device: d.name, class: d.class, queueWait: wait}
		if p.tr != nil {
			// Two wall-clock stages per attempt: the open batching window
			// (admission to seal) and the sealed batch waiting for its
			// device worker.
			p.tr.SetDevice(d.name)
			p.tr.Add("batch-window", 0, p.tr.Offset(p.enqueued), p.tr.Offset(g.dispatched),
				trace.Attr{Key: "attempt", Val: p.attempts})
			p.tr.Add("device-queue", 0, p.tr.Offset(g.dispatched), p.tr.Offset(serveStart),
				trace.Attr{Key: "device", Val: d.name})
		}
	}

	var live []int // indices into g.items joining the fused run
	for i, p := range g.items {
		switch {
		case s.hardCtx.Err() != nil:
			outs[i].err = ErrDraining
		case p.ctx.Err() != nil:
			// Expired while queued: never touched the device.
			outs[i].err = p.ctx.Err()
			s.mets.timeouts.With("queued").Inc()
		case s.cfg.Overload.DeadlineAdmission && !deadlineAllows(p.ctx, s.wallOf(g.cost), serveStart):
			// CoDel-style queue aging: feasible at admission, but the queue
			// wait has since consumed the deadline's headroom — shed the
			// oldest-past-feasibility work before it burns device time.
			outs[i].err = fmt.Errorf("%w: shed after %v queued", ErrDeadlineInfeasible, serveStart.Sub(p.enqueued))
			s.mets.admissionRejects.With("queue_aged").Inc()
		default:
			live = append(live, i)
		}
	}

	var runErr error
	if len(live) == 0 && g.probe {
		// The probe batch produced no verdict; free the half-open slot.
		d.revertProbe()
	}
	if len(live) > 0 {
		fused := make([]exec.FusedItem, len(live))
		var traced []*trace.Trace
		for j, i := range live {
			fused[j] = exec.FusedItem{Ctx: g.items[i].ctx, Rows: g.items[i].rows}
			if tr := g.items[i].tr; tr != nil {
				traced = append(traced, tr)
			}
		}
		res, err := s.runBatchPaced(d, g, fused, traced)
		switch {
		case err != nil && isDeviceFailure(err):
			runErr = err
		case err != nil:
			if g.probe {
				d.revertProbe()
			}
			for _, i := range live {
				outs[i].err = err
			}
		default:
			if recovered := d.recordSuccess(); recovered {
				s.mets.quarantine.With(d.name, "recovered").Inc()
			}
			// res.Rows is what actually ran: members that died while
			// queued never contributed rows to the fused panels.
			for _, i := range live {
				outs[i].batchRows = res.Rows
			}
			s.mets.batches.With(d.class).Inc()
			s.mets.occupancy.With(g.key.model, d.class).Observe(float64(res.Rows))
			for j, i := range live {
				p := g.items[i]
				ir := res.Items[j]
				switch {
				case ir.Err != nil:
					outs[i].err = ir.Err
					s.mets.timeouts.With("running").Inc()
				case p.ctx.Err() != nil:
					// The deadline died during pacing: the batch kept the
					// device (batchmates' results stand) but this member's
					// client is gone.
					outs[i].err = p.ctx.Err()
					s.mets.timeouts.With("running").Inc()
				default:
					outs[i].simLat = ir.Latency
					outs[i].energyJ = res.Report.TotalJ() * float64(p.rows) / float64(res.Rows)
				}
			}
		}
	}

	s.releaseGroup(d, g)

	if runErr != nil {
		// Settle the members that never joined the run, then fail the rest
		// over to other devices.
		for i, p := range g.items {
			if outs[i].err != nil {
				s.settleFinal(d, p, outs[i])
			}
		}
		s.failMembers(d, g, runErr)
		return
	}
	for i, p := range g.items {
		s.settleFinal(d, p, outs[i])
	}
}

// failMembers handles one device failure: it advances the device's
// circuit breaker (recording permanent processor deaths from Die faults)
// and then requeues every unsettled member onto the remaining devices —
// or settles it with a typed 503 when no retry can help (budget spent,
// deadline too tight, no healthy device, draining). Nothing is dropped
// silently: every member either requeues or settles here.
func (s *Scheduler) failMembers(d *poolDevice, g *batchGroup, cause error) {
	var wd *exec.WatchdogError
	if errors.As(cause, &wd) {
		s.mets.watchdogTrips.With(wd.Proc).Inc()
	}
	var f *faults.Fault
	var permDown core.ProcSet
	if errors.As(cause, &f) {
		if f.Device == "" {
			f.Device = d.name
		}
		if f.Kind == faults.Die {
			permDown = procSetOfType(f.ProcType)
		}
	}
	switch d.recordFailure(permDown, s.cfg.FailThreshold, s.cfg.QuarantineBackoff, s.cfg.QuarantineBackoffMax, time.Now()) {
	case "dead":
		s.mets.quarantine.With(d.name, "dead").Inc()
	case "quarantined":
		s.mets.quarantine.With(d.name, "quarantined").Inc()
	case "degraded":
		s.mets.quarantine.With(d.name, "degraded").Inc()
	}

	now := time.Now()
	for _, p := range g.items {
		s.mu.Lock()
		if p.settled {
			s.mu.Unlock()
			continue
		}
		exclude := p.exclude | 1<<uint(d.id)
		var terminal error
		switch {
		case p.ctx.Err() != nil:
			terminal = p.ctx.Err()
		case s.draining:
			terminal = ErrDraining
		case p.attempts >= s.cfg.MaxRetries:
			terminal = fmt.Errorf("%w (after %d attempts): %w", ErrRetriesExhausted, p.attempts+1, cause)
		default:
			if !s.retryB.allow(p.modelName, now) {
				// The model's fleet-wide retry budget is spent: degrade to a
				// fast typed 503 instead of amplifying a correlated fault
				// into a retry storm.
				terminal = fmt.Errorf("%w: %w", ErrRetryBudgetExhausted, cause)
				s.mets.retryExhausted.With(p.modelName).Inc()
				break
			}
			eligible, wall := s.retryCostLocked(p, exclude, now)
			switch {
			case !eligible:
				terminal = fmt.Errorf("%w: %w", ErrNoHealthyDevice, cause)
			case !deadlineAllows(p.ctx, wall, now):
				terminal = fmt.Errorf("%w: %w", ErrDeadlineTooTight, cause)
			}
		}
		if terminal != nil {
			s.settleLocked(p, outcome{err: terminal, device: d.name, class: d.class})
			s.mu.Unlock()
			s.mets.requests.With(p.modelName, d.class, p.mech.String(), fmt.Sprint(statusFor(terminal))).Inc()
			continue
		}
		p.attempts++
		p.exclude = exclude
		s.mets.retries.With(d.name).Inc()
		s.requeueLocked(p)
		s.mu.Unlock()
	}
}

// retryCostLocked reports whether any device can take a retry of p under
// the exclusion mask, and the cheapest predicted wall-clock completion
// among them. Caller holds s.mu.
func (s *Scheduler) retryCostLocked(p *pending, exclude uint64, now time.Time) (eligible bool, wall time.Duration) {
	var best time.Duration
	for _, d := range s.devices {
		if p.soc != "" && d.class != p.soc {
			continue
		}
		if exclude&(1<<uint(d.id)) != 0 || !d.canServe(now) {
			continue
		}
		est, err := s.caches[d.class].Estimate(p.model, d.runCfg(p.mech), p.rows)
		if err != nil {
			continue
		}
		done := d.predictedCompletion() + est
		if !eligible || done < best {
			eligible, best = true, done
		}
	}
	if s.cfg.TimeScale > 0 {
		wall = time.Duration(float64(best) / s.cfg.TimeScale)
	}
	return eligible, wall
}

// deadlineAllows reports whether a retry predicted to take wall clock time
// fits in the request's remaining deadline.
func deadlineAllows(ctx context.Context, wall time.Duration, now time.Time) bool {
	dl, ok := ctx.Deadline()
	if !ok {
		return true
	}
	return dl.Sub(now) > wall
}

// runBatchPaced executes the fused batch under the dispatch-time run
// configuration (which carries the device's degraded-mode mask) and, when
// pacing is enabled, occupies the device for the batch's simulated
// makespan scaled by TimeScale — so offered load saturates the pool the
// way it would saturate the modeled hardware. Per-member deadlines ride
// inside the fused run; only a drain hard-kill aborts the batch as a
// whole. The device's fault injector rides in as the executor's kernel
// hook; an injected kernel panic is recovered here into a DeviceError so
// the worker sees an ordinary device failure.
func (s *Scheduler) runBatchPaced(d *poolDevice, g *batchGroup, fused []exec.FusedItem, traced []*trace.Trace) (res *exec.FusedResult, err error) {
	s.mets.inflight.With(d.name).Add(1)
	defer s.mets.inflight.With(d.name).Add(-1)

	planStart := time.Now()
	plan, planHit, err := s.caches[d.class].PlanCached(g.model, g.rc)
	if err != nil {
		return nil, err
	}
	if len(traced) > 0 {
		planEnd := time.Now()
		sum := plan.Summary()
		for _, tr := range traced {
			tr.Add("plan", 0, tr.Offset(planStart), tr.Offset(planEnd),
				trace.Attr{Key: "cache_hit", Val: planHit},
				trace.Attr{Key: "steps", Val: sum.Steps},
				trace.Attr{Key: "split_layers", Val: sum.SplitLayers},
				trace.Attr{Key: "mean_p", Val: sum.MeanP},
				trace.Attr{Key: "branches", Val: sum.BranchMap()},
				trace.Attr{Key: "predicted_us", Val: float64(plan.Predicted) / float64(time.Microsecond)})
		}
	}
	if g.rc.Unhealthy != 0 {
		s.mets.degraded.With(d.name).Inc()
	}
	var opts core.ExecOpts
	if d.faults != nil {
		opts.Faults = d.faults.Kernel
	}
	// The stall watchdog only arms when a fault hook is present: without
	// one every kernel books exactly its predicted duration, so there is
	// nothing to catch and the healthy path pays nothing.
	opts.WatchdogFactor = s.cfg.Overload.WatchdogFactor
	// With traced members aboard, the executor's trace hook records every
	// booked kernel into one shared capture (the worker is the only
	// goroutine appending) and feeds the predictor-drift histogram: the
	// partitioner-style estimate PredictSplit(layer cost, share) against
	// the cost model's pure kernel time, launch overhead excluded on both
	// sides.
	var capture *trace.Capture
	if len(traced) > 0 {
		capture = &trace.Capture{Device: d.name}
		pred := d.rt.Predictor()
		mechName := g.key.mech.String()
		opts.Trace = func(ev exec.TraceEvent) {
			predicted := pred.PredictSplit(ev.Proc.Name, ev.Kind, ev.DType, ev.Converted, ev.Cost, ev.P)
			if ev.KernelDur > 0 {
				s.mets.predErr.With(ev.Side.String(), ev.Kind.String(), mechName).
					Observe(float64(predicted) / float64(ev.KernelDur))
			}
			capture.Spans = append(capture.Spans, trace.KernelSpan{
				Proc: ev.Proc.Name, Side: ev.Side.String(), Label: ev.Label,
				Kind: ev.Kind.String(), Start: ev.Start, End: ev.End,
				P: ev.P, Rows: ev.Rows, Predicted: predicted, Actual: ev.KernelDur,
			})
		}
	}
	start := time.Now()
	res, err = func() (r *exec.FusedResult, e error) {
		defer func() {
			if rec := recover(); rec != nil {
				r, e = nil, &DeviceError{Device: d.name, Cause: fmt.Errorf("panic: %v", rec)}
			}
		}()
		return d.rt.RunBatchPlanOpts(g.model, plan, fused, g.rc, opts)
	}()
	if err != nil {
		var f *faults.Fault
		if errors.As(err, &f) && f.Device == "" {
			f.Device = d.name
		}
		return nil, err
	}
	if s.cfg.TimeScale > 0 {
		pace := time.Duration(float64(res.Report.Latency) / s.cfg.TimeScale)
		if rem := pace - time.Since(start); rem > 0 {
			t := time.NewTimer(rem)
			defer t.Stop()
			select {
			case <-t.C:
			case <-s.hardCtx.Done():
				return nil, ErrDraining
			}
		}
	}
	if len(traced) > 0 {
		end := time.Now()
		capture.Rows = res.Rows
		for _, tr := range traced {
			tr.Add("execute", 0, tr.Offset(start), tr.Offset(end),
				trace.Attr{Key: "device", Val: d.name},
				trace.Attr{Key: "rows", Val: res.Rows},
				trace.Attr{Key: "sim_latency_us", Val: float64(res.Report.Latency) / float64(time.Microsecond)})
			tr.AttachKernels(capture)
		}
		// Network-level drift: the plan's whole-request prediction against
		// the fused makespan. Only a single-row batch is comparable — the
		// plan predicts one inference, the makespan covers the whole batch.
		if res.Rows == 1 && res.Report.Latency > 0 {
			s.mets.predErr.With("all", "network", g.key.mech.String()).
				Observe(float64(plan.Predicted) / float64(res.Report.Latency))
		}
	}
	return res, nil
}

// Drain stops admitting, seals every open batching window, lets the pool
// finish queued and in-flight work, and waits for the workers to exit.
// When ctx expires first, remaining work is canceled and ctx's error
// returned.
func (s *Scheduler) Drain(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		if s.overloadStop != nil {
			close(s.overloadStop)
		}
		groups := make([]*batchGroup, 0, len(s.open))
		for _, g := range s.open {
			groups = append(groups, g)
		}
		for _, g := range groups {
			s.dispatchLocked(g)
		}
		for _, d := range s.devices {
			close(d.queue)
		}
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.hardKill()
		<-done
		return ctx.Err()
	}
}

// statusFor maps a request outcome error to its HTTP status code.
func statusFor(err error) int {
	switch {
	case err == nil:
		return 200
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrDraining),
		errors.Is(err, ErrRetriesExhausted), errors.Is(err, ErrDeadlineTooTight),
		errors.Is(err, ErrNoHealthyDevice), errors.Is(err, ErrDeadlineInfeasible),
		errors.Is(err, ErrRetryBudgetExhausted), errors.Is(err, ErrPriorityShed):
		return 503
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return 504
	case errors.Is(err, ErrNoDevice):
		return 400
	default:
		return 500
	}
}
