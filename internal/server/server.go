package server

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"math/rand/v2"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"mulayer/internal/core"
	"mulayer/internal/server/metrics"
	"mulayer/internal/trace"
)

// mechanisms maps API mechanism names to core mechanisms. NPU mechanisms
// are accepted and fail per-device when the class has no NPU.
var mechanisms = map[string]core.Mechanism{
	"cpu":         core.MechCPUOnly,
	"gpu":         core.MechGPUOnly,
	"l2p":         core.MechLayerToProcessor,
	"chdist":      core.MechChannelDist,
	"pquant":      core.MechChannelDistProcQuant,
	"mulayer":     core.MechMuLayer,
	"npu":         core.MechNPUOnly,
	"mulayer+npu": core.MechMuLayerNPU,
}

// Server is the μLayer inference server: HTTP API + scheduler + pool.
type Server struct {
	cfg   Config
	sched *Scheduler
	reg   *metrics.Registry
	http  *http.Server
	start time.Time

	healthy atomic.Bool

	// traces is the bounded ring of recent request traces served at
	// /debug/traces (nil when tracing is disabled). traceSeq numbers
	// requests for trace ids and the deterministic head sampler; sampleN
	// keeps every Nth request (0 disables head sampling — slow-only).
	traces   *trace.Ring
	traceSeq atomic.Uint64
	sampleN  uint64
}

// New builds a server (pool constructed, workers running) ready to Serve.
func New(cfg Config) (*Server, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	reg := metrics.NewRegistry()
	sched, err := NewScheduler(cfg, reg)
	if err != nil {
		return nil, err
	}
	s := &Server{cfg: cfg, sched: sched, reg: reg, start: time.Now()}
	s.healthy.Store(true)
	if cfg.tracingEnabled() {
		s.traces = trace.NewRing(cfg.TraceRing)
		switch {
		case cfg.TraceSample >= 1:
			s.sampleN = 1
		case cfg.TraceSample > 0:
			s.sampleN = uint64(math.Round(1 / cfg.TraceSample))
		}
	}
	s.http = &http.Server{
		Addr:              cfg.Addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	return s, nil
}

// Handler returns the API routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/infer", s.handleInfer)
	mux.HandleFunc("GET /v1/models", s.handleModels)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /statusz", s.handleStatusz)
	mux.HandleFunc("GET /statusz.json", s.handleStatuszJSON)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /debug/traces", s.handleTraces)
	mux.HandleFunc("GET /debug/traces/{id}", s.handleTraceByID)
	return mux
}

// ListenAndServe serves on the configured address until Shutdown.
func (s *Server) ListenAndServe() error { return s.http.ListenAndServe() }

// Serve serves on an existing listener (tests bind port 0 themselves).
func (s *Server) Serve(l net.Listener) error { return s.http.Serve(l) }

// Shutdown drains gracefully: stop admitting (healthz flips to draining),
// let the pool finish queued work within the drain timeout, then close
// the HTTP server.
func (s *Server) Shutdown(ctx context.Context) error {
	s.healthy.Store(false)
	drainCtx, cancel := context.WithTimeout(ctx, s.cfg.DrainTimeout)
	defer cancel()
	drainErr := s.sched.Drain(drainCtx)
	if err := s.http.Shutdown(ctx); err != nil {
		return err
	}
	return drainErr
}

// InferRequest is the body of POST /v1/infer.
type InferRequest struct {
	// Model names a loaded model (see /v1/models).
	Model string `json:"model"`
	// Mechanism is the execution mechanism (default "mulayer").
	Mechanism string `json:"mechanism,omitempty"`
	// SoC pins the request to one device class; empty lets the scheduler
	// pick any device.
	SoC string `json:"soc,omitempty"`
	// TimeoutMS overrides the server's default request deadline.
	TimeoutMS int `json:"timeout_ms,omitempty"`
	// Batch is the number of input rows this request contributes to its
	// fused micro-batch (default 1, max 64).
	Batch int `json:"batch,omitempty"`
	// Priority is the request's shedding class: "high", "normal" (default),
	// or "low". Under brownout the lowest class is rejected first; see
	// docs/serving.md.
	Priority string `json:"priority,omitempty"`
	// Shape and Input optionally carry one input row for validation:
	// Shape's element product must match the model's input and Input must
	// hold exactly that many finite values. The serving pool simulates
	// cost only, so the values themselves do not influence the reply.
	Shape []int     `json:"shape,omitempty"`
	Input []float32 `json:"input,omitempty"`
}

// Request validation bounds (shared with FuzzDecodeInferRequest).
const (
	// maxClientRows caps InferRequest.Batch.
	maxClientRows = 64
	// maxInputElems caps the element product of InferRequest.Shape.
	maxInputElems = 1 << 20
	// maxShapeDims caps the rank of InferRequest.Shape.
	maxShapeDims = 8
	// maxBodyBytes bounds the request body read off the wire.
	maxBodyBytes = 16 << 20
)

// decodeInferRequest parses and validates one /v1/infer body. Every
// malformed input — bad JSON, wrong field types, negative or oversized
// batches, degenerate or overflowing shapes, non-finite payload values,
// shape/payload length mismatches — returns an error, never a panic (the
// FuzzDecodeInferRequest target holds it to that).
func decodeInferRequest(body []byte) (InferRequest, error) {
	var req InferRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return req, fmt.Errorf("bad JSON: %w", err)
	}
	if req.TimeoutMS < 0 {
		return req, fmt.Errorf("timeout_ms %d is negative", req.TimeoutMS)
	}
	if req.Batch < 0 {
		return req, fmt.Errorf("batch %d is negative", req.Batch)
	}
	if req.Batch > maxClientRows {
		return req, fmt.Errorf("batch %d exceeds the per-request limit %d", req.Batch, maxClientRows)
	}
	if _, err := ParsePriority(req.Priority); err != nil {
		return req, err
	}
	if len(req.Shape) == 0 && len(req.Input) > 0 {
		return req, fmt.Errorf("input payload of %d values has no shape", len(req.Input))
	}
	if len(req.Shape) > 0 {
		if len(req.Shape) > maxShapeDims {
			return req, fmt.Errorf("shape rank %d exceeds %d", len(req.Shape), maxShapeDims)
		}
		elems := 1
		for _, d := range req.Shape {
			if d < 1 {
				return req, fmt.Errorf("shape %v has a non-positive dimension", req.Shape)
			}
			if d > maxInputElems/elems {
				return req, fmt.Errorf("shape %v overflows the %d-element limit", req.Shape, maxInputElems)
			}
			elems *= d
		}
		if len(req.Input) != elems {
			return req, fmt.Errorf("input holds %d values, shape %v wants %d", len(req.Input), req.Shape, elems)
		}
		for i, v := range req.Input {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				return req, fmt.Errorf("input[%d] is not finite", i)
			}
		}
	}
	return req, nil
}

// InferResponse is the body of a 200 reply.
type InferResponse struct {
	Model     string `json:"model"`
	Mechanism string `json:"mechanism"`
	SoC       string `json:"soc"`
	Device    string `json:"device"`
	// BatchRows is the total row count of the fused batch that served the
	// request (1 when batching is off or no batchmates arrived in time).
	BatchRows   int     `json:"batch_rows"`
	LatencyUS   float64 `json:"latency_us"`
	EnergyMJ    float64 `json:"energy_mj"`
	QueueWaitUS float64 `json:"queue_wait_us"`
	WallUS      float64 `json:"wall_us"`
}

// errorBody is the JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// ChecksumHeader carries the end-to-end integrity checksum of a
// /v1/infer reply body. The fleet frontend recomputes it over the bytes
// it received and treats a mismatch as a transport failure eligible for
// failover, so a corrupting backend or network path can never hand
// garbage to a client.
const ChecksumHeader = "X-Mulayer-Checksum"

// crcTable is CRC-32C (Castagnoli), the common wire-integrity polynomial.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// BodyChecksum computes the integrity checksum the serve tier stamps
// and the frontend verifies.
func BodyChecksum(body []byte) string {
	return fmt.Sprintf("crc32c=%08x", crc32.Checksum(body, crcTable))
}

// writeJSONSum is writeJSON plus the integrity stamp: the body is
// marshalled up front so its checksum can ride in a header.
func writeJSONSum(w http.ResponseWriter, code int, v any) {
	body, err := json.Marshal(v)
	if err != nil {
		writeJSON(w, code, v)
		return
	}
	body = append(body, '\n') // parity with json.Encoder
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set(ChecksumHeader, BodyChecksum(body))
	w.WriteHeader(code)
	_, _ = w.Write(body)
}

func (s *Server) handleInfer(w http.ResponseWriter, r *http.Request) {
	reqStart := time.Now()
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		writeJSONSum(w, http.StatusBadRequest, errorBody{Error: "read body: " + err.Error()})
		return
	}
	req, err := decodeInferRequest(body)
	if err != nil {
		writeJSONSum(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	m, ok := s.cfg.Models[req.Model]
	if !ok {
		writeJSONSum(w, http.StatusNotFound, errorBody{Error: fmt.Sprintf("unknown model %q", req.Model)})
		return
	}
	if len(req.Shape) > 0 {
		elems := 1
		for _, d := range req.Shape {
			elems *= d
		}
		if want := m.InputShape.Elems(); elems != want {
			writeJSONSum(w, http.StatusBadRequest, errorBody{
				Error: fmt.Sprintf("shape %v carries %d elements, model %q wants %d", req.Shape, elems, req.Model, want)})
			return
		}
	}
	mechName := req.Mechanism
	if mechName == "" {
		mechName = "mulayer"
	}
	mech, ok := mechanisms[mechName]
	if !ok {
		writeJSONSum(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("unknown mechanism %q", mechName)})
		return
	}
	rows := req.Batch
	if rows < 1 {
		rows = 1
	}
	prio, _ := ParsePriority(req.Priority) // validated by decodeInferRequest

	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	// When tracing is enabled every request records a trace: the head
	// sampler decides up front whether to keep it, and a slow finish keeps
	// it retroactively. The admission span covers body read, validation,
	// and model/mechanism resolution.
	tr := s.newTrace(req.Model, mechName, req.SoC, rows, reqStart)
	if tr != nil {
		tr.Add("admission", 0, 0, tr.Offset(time.Now()))
	}
	out := s.sched.SubmitRequest(ctx, Request{
		ModelName: req.Model, Model: m, Mech: mech, SoC: req.SoC,
		Rows: rows, Priority: prio, Trace: tr,
	})
	wall := time.Since(reqStart)
	if tr != nil {
		s.finishTrace(ctx, tr, out, wall)
	}
	code := statusFor(out.err)
	if out.err != nil {
		if code == http.StatusServiceUnavailable {
			// ±25% jitter decorrelates the retries of clients rejected
			// together, so they do not return as one herd.
			w.Header().Set("Retry-After", fmt.Sprint(jitterRetryAfter(s.sched.RetryAfter(), rand.Float64())))
		}
		writeJSONSum(w, code, errorBody{Error: out.err.Error()})
		return
	}
	writeJSONSum(w, http.StatusOK, InferResponse{
		Model:       req.Model,
		Mechanism:   mechName,
		SoC:         out.class,
		Device:      out.device,
		BatchRows:   out.batchRows,
		LatencyUS:   float64(out.simLat) / float64(time.Microsecond),
		EnergyMJ:    out.energyJ * 1e3,
		QueueWaitUS: float64(out.queueWait) / float64(time.Microsecond),
		WallUS:      float64(wall) / float64(time.Microsecond),
	})
}

// ModelInfo describes one served model.
type ModelInfo struct {
	Name        string `json:"name"`
	Layers      int    `json:"layers"`
	HasBranches bool   `json:"has_branches"`
	SpecOnly    bool   `json:"spec_only"`
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	names := make([]string, 0, len(s.cfg.Models))
	for n := range s.cfg.Models {
		names = append(names, n)
	}
	sort.Strings(names)
	out := struct {
		Models     []ModelInfo `json:"models"`
		Mechanisms []string    `json:"mechanisms"`
		SoCs       []string    `json:"socs"`
	}{}
	for _, n := range names {
		m := s.cfg.Models[n]
		out.Models = append(out.Models, ModelInfo{
			Name:        n,
			Layers:      m.Graph.Len(),
			HasBranches: m.HasBranches,
			SpecOnly:    m.SpecOnly,
		})
	}
	for name := range mechanisms {
		out.Mechanisms = append(out.Mechanisms, name)
	}
	sort.Strings(out.Mechanisms)
	for _, spec := range s.cfg.SoCs {
		out.SoCs = append(out.SoCs, spec.Name)
	}
	writeJSON(w, http.StatusOK, out)
}

// handleHealthz is the liveness probe: the process is up and able to
// answer HTTP. It stays 200 while draining or degraded — readiness
// (/readyz) carries those states, so an orchestrator restarts the process
// only when it is actually wedged, not while it sheds load.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	fmt.Fprintln(w, "ok")
}

// readyzDevice is one device's health row in /readyz.
type readyzDevice struct {
	Device string `json:"device"`
	SoC    string `json:"soc"`
	// Health is ok | quarantined | probing | dead.
	Health string `json:"health"`
	// Down lists permanently dead processors ("none" when whole).
	Down string `json:"down"`
}

// handleReadyz is the readiness probe: 503 while draining and 503 once
// every pool device is dead; otherwise 200. The body always carries the
// per-device health so an operator can see a partial outage before it
// becomes a total one.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	draining := !s.healthy.Load() || s.sched.Draining()
	allDead := s.sched.AllDead()
	out := struct {
		Ready    bool           `json:"ready"`
		Draining bool           `json:"draining"`
		AllDead  bool           `json:"all_dead"`
		Devices  []readyzDevice `json:"devices"`
	}{
		Ready:    !draining && !allDead,
		Draining: draining,
		AllDead:  allDead,
	}
	for _, d := range s.sched.Devices() {
		h := d.health()
		out.Devices = append(out.Devices, readyzDevice{
			Device: d.name,
			SoC:    d.class,
			Health: h.State.String(),
			Down:   h.Down.String(),
		})
	}
	code := http.StatusOK
	if !out.Ready {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, out)
}

// deviceStatus is one device's row in /statusz.
type deviceStatus struct {
	Device    string  `json:"device"`
	SoC       string  `json:"soc"`
	Queued    int64   `json:"queued"`
	BacklogMS float64 `json:"backlog_ms"`
	Served    int64   `json:"served"`
	// Health is ok | quarantined | probing | dead; Down lists permanently
	// dead processors; Failures is the consecutive-failure count feeding
	// the circuit breaker.
	Health   string `json:"health"`
	Down     string `json:"down"`
	Failures int    `json:"failures"`
	// FaultsInjected is the device injector's non-None decision count
	// (absent without injection).
	FaultsInjected int64 `json:"faults_injected,omitempty"`
}

func (s *Server) handleStatusz(w http.ResponseWriter, r *http.Request) {
	devs := s.sched.Devices()
	out := struct {
		UptimeS     float64             `json:"uptime_s"`
		QueueDepth  int                 `json:"queue_depth"`
		QueueCap    int                 `json:"queue_cap"`
		Draining    bool                `json:"draining"`
		TimeScale   float64             `json:"time_scale"`
		MaxBatch    int                 `json:"max_batch"`
		BatchWaitMS float64             `json:"batch_wait_ms"`
		PlanCache   core.PlanCacheStats `json:"plan_cache"`
		// QueueWait and Wall summarize the admission-to-dispatch and
		// admission-to-completion latency histograms (milliseconds).
		QueueWait []latencySummary `json:"queue_wait,omitempty"`
		Wall      []latencySummary `json:"wall,omitempty"`
		// PredictorDrift is the median predicted/actual kernel-time ratio
		// per (processor, layer kind, mechanism); 1.0 is an exact predictor.
		PredictorDrift []driftSummary `json:"predictor_drift,omitempty"`
		Tracing        traceStatus    `json:"tracing"`
		// Overload is the overload-protection state: brownout ladder level,
		// recent queue-wait p95, transition counts, retry-budget tokens.
		Overload OverloadStatus `json:"overload"`
		Devices  []deviceStatus `json:"devices"`
	}{
		UptimeS:        time.Since(s.start).Seconds(),
		QueueDepth:     s.sched.QueueDepth(),
		QueueCap:       s.cfg.QueueDepth,
		Draining:       s.sched.Draining(),
		TimeScale:      s.cfg.TimeScale,
		MaxBatch:       s.cfg.MaxBatch,
		BatchWaitMS:    float64(s.cfg.BatchWait) / float64(time.Millisecond),
		PlanCache:      s.sched.CacheStats(),
		QueueWait:      summarizeLatency(s.sched.mets.queueWait),
		Wall:           summarizeLatency(s.sched.mets.wallLat),
		PredictorDrift: summarizeDrift(s.sched.mets.predErr),
		Tracing:        s.traceStatus(),
		Overload:       s.sched.OverloadStatus(),
	}
	for _, d := range devs {
		h := d.health()
		row := deviceStatus{
			Device:    d.name,
			SoC:       d.class,
			Queued:    d.depth.Load(),
			BacklogMS: float64(d.predictedCompletion()) / float64(time.Millisecond),
			Served:    d.served.Load(),
			Health:    h.State.String(),
			Down:      h.Down.String(),
			Failures:  h.Failures,
		}
		if d.faults != nil {
			row.FaultsInjected = d.faults.Stats().Injected()
		}
		out.Devices = append(out.Devices, row)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_, _ = s.reg.WriteTo(w)
}

// ParseMechanism resolves an API mechanism name (exported for the load
// generator and serve binary's flag validation).
func ParseMechanism(name string) (core.Mechanism, error) {
	if name == "" {
		return core.MechMuLayer, nil
	}
	if m, ok := mechanisms[name]; ok {
		return m, nil
	}
	names := make([]string, 0, len(mechanisms))
	for n := range mechanisms {
		names = append(names, n)
	}
	sort.Strings(names)
	return 0, fmt.Errorf("unknown mechanism %q (want %s)", name, strings.Join(names, ", "))
}
