package server

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"mulayer/internal/core"
	"mulayer/internal/soc"
)

// TestBatcherCoalesces: concurrent same-model requests inside one window
// must run as one fused batch, and every member must observe the batch's
// row count.
func TestBatcherCoalesces(t *testing.T) {
	s := newSched(t, Config{
		SoCs:       []SoCSpec{{Name: "high", SoC: soc.Exynos7420, Workers: 1}},
		QueueDepth: 16,
		MaxBatch:   8,
		BatchWait:  100 * time.Millisecond,
	})
	const n = 6
	var wg sync.WaitGroup
	outs := make([]outcome, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			outs[i] = s.Submit(context.Background(), "lenet5", s.cfg.Models["lenet5"], core.MechMuLayer, "", 1)
		}(i)
	}
	wg.Wait()
	for i, o := range outs {
		if o.err != nil {
			t.Fatalf("request %d: %v", i, o.err)
		}
		if o.batchRows < 2 {
			t.Fatalf("request %d ran in a batch of %d; concurrent submissions inside one %v window must coalesce", i, o.batchRows, s.cfg.BatchWait)
		}
		if o.simLat <= 0 || o.energyJ <= 0 {
			t.Fatalf("request %d: degenerate result %+v", i, o)
		}
	}
}

// TestBatchFillDispatchesEarly: a window that reaches MaxBatch rows must
// dispatch immediately, not wait out BatchWait.
func TestBatchFillDispatchesEarly(t *testing.T) {
	s := newSched(t, Config{
		SoCs:       []SoCSpec{{Name: "high", SoC: soc.Exynos7420, Workers: 1}},
		QueueDepth: 16,
		MaxBatch:   2,
		BatchWait:  time.Hour, // the timer must never be the trigger
	})
	start := time.Now()
	var wg sync.WaitGroup
	outs := make([]outcome, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			outs[i] = s.Submit(context.Background(), "lenet5", s.cfg.Models["lenet5"], core.MechMuLayer, "", 1)
		}(i)
	}
	wg.Wait()
	if el := time.Since(start); el > 10*time.Second {
		t.Fatalf("full window took %v to dispatch", el)
	}
	for i, o := range outs {
		if o.err != nil {
			t.Fatalf("request %d: %v", i, o.err)
		}
		if o.batchRows != 2 {
			t.Fatalf("request %d: batch rows %d, want 2", i, o.batchRows)
		}
	}
}

// TestClientBatchRows: a request carrying Batch=n rows fills the window by
// itself when n == MaxBatch.
func TestClientBatchRows(t *testing.T) {
	s := newSched(t, Config{
		SoCs:       []SoCSpec{{Name: "high", SoC: soc.Exynos7420, Workers: 1}},
		QueueDepth: 16,
		MaxBatch:   4,
		BatchWait:  time.Hour,
	})
	out := s.Submit(context.Background(), "lenet5", s.cfg.Models["lenet5"], core.MechMuLayer, "", 4)
	if out.err != nil {
		t.Fatal(out.err)
	}
	if out.batchRows != 4 {
		t.Fatalf("batch rows %d, want 4", out.batchRows)
	}
}

// TestCancelWhileQueuedSparesBatchmates: a member cancelled before its
// batch reaches the device is dropped — its batchmates complete, and the
// fused run excludes the dead member's rows.
func TestCancelWhileQueuedSparesBatchmates(t *testing.T) {
	s := newSched(t, Config{
		SoCs:       []SoCSpec{{Name: "high", SoC: soc.Exynos7420, Workers: 1}},
		QueueDepth: 16,
		MaxBatch:   8,
		BatchWait:  150 * time.Millisecond,
	})
	ctxC, cancelC := context.WithCancel(context.Background())
	outs := make([]outcome, 3)
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx := context.Background()
			if i == 2 {
				ctx = ctxC
			}
			outs[i] = s.Submit(ctx, "lenet5", s.cfg.Models["lenet5"], core.MechMuLayer, "", 1)
		}(i)
	}
	// Cancel the third member while the window is still open.
	time.Sleep(30 * time.Millisecond)
	cancelC()
	wg.Wait()

	if !errors.Is(outs[2].err, context.Canceled) {
		t.Fatalf("cancelled member: got %v, want context.Canceled", outs[2].err)
	}
	for i := 0; i < 2; i++ {
		if outs[i].err != nil {
			t.Fatalf("batchmate %d failed after a member was cancelled: %v", i, outs[i].err)
		}
		if outs[i].batchRows != 2 {
			t.Fatalf("batchmate %d: fused rows %d, want 2 (the dead member's row must not run)", i, outs[i].batchRows)
		}
	}
}

// TestCancelMidBatchSparesBatchmates: a member whose deadline dies while
// the batch occupies the device gets its context error; its batchmates'
// results stand.
func TestCancelMidBatchSparesBatchmates(t *testing.T) {
	s := newSched(t, Config{
		SoCs:       []SoCSpec{{Name: "high", SoC: soc.Exynos7420, Workers: 1}},
		QueueDepth: 16,
		MaxBatch:   3,
		BatchWait:  time.Hour, // dispatch on fill
		TimeScale:  0.0001,    // lenet5 ≈ 120µs sim → >1s wall pacing
	})
	ctxC, cancelC := context.WithCancel(context.Background())
	outs := make([]outcome, 3)
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx := context.Background()
			if i == 2 {
				ctx = ctxC
			}
			outs[i] = s.Submit(ctx, "lenet5", s.cfg.Models["lenet5"], core.MechMuLayer, "", 1)
		}(i)
	}
	// The batch dispatches on fill and paces for >1s; cancel one member
	// while the batch occupies the device.
	time.Sleep(300 * time.Millisecond)
	cancelC()
	wg.Wait()

	if !errors.Is(outs[2].err, context.Canceled) {
		t.Fatalf("cancelled member: got %v, want context.Canceled", outs[2].err)
	}
	for i := 0; i < 2; i++ {
		if outs[i].err != nil {
			t.Fatalf("batchmate %d failed after a mid-batch cancellation: %v", i, outs[i].err)
		}
		if outs[i].batchRows != 3 {
			t.Fatalf("batchmate %d: fused rows %d, want 3 (the cancelled member's row was already in the panels)", i, outs[i].batchRows)
		}
	}
}

// TestBatchedEndToEnd is the end-to-end integration pass: concurrent HTTP
// clients with mixed models and mixed deadlines through the batcher,
// asserting per-request correctness and batch demux isolation (every
// reply reports its own model and a sane fused report).
func TestBatchedEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Config{
		SoCs: []SoCSpec{
			{Name: "high", SoC: soc.Exynos7420, Workers: 2},
			{Name: "mid", SoC: soc.Exynos7880, Workers: 1},
		},
		QueueDepth: 64,
		MaxBatch:   4,
		BatchWait:  20 * time.Millisecond,
	})

	const n = 24
	type reply struct {
		model string
		code  int
		body  InferResponse
	}
	replies := make([]reply, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			model := []string{"googlenet", "lenet5"}[i%2]
			req := InferRequest{Model: model, Mechanism: "mulayer", TimeoutMS: 10000}
			if i%4 == 0 {
				req.Batch = 2
			}
			resp, data := postInfer(t, ts.URL, req)
			replies[i] = reply{model: model, code: resp.StatusCode}
			if resp.StatusCode == http.StatusOK {
				if err := json.Unmarshal(data, &replies[i].body); err != nil {
					t.Errorf("request %d: bad JSON %v (%s)", i, err, data)
				}
			} else {
				t.Errorf("request %d: status %d (%s)", i, resp.StatusCode, data)
			}
		}(i)
	}
	wg.Wait()

	coalesced := false
	for i, r := range replies {
		if r.code != http.StatusOK {
			continue
		}
		// Demux isolation: the reply must describe the request's own model,
		// not a batchmate's.
		if r.body.Model != r.model {
			t.Errorf("request %d for %s got a reply for %s", i, r.model, r.body.Model)
		}
		if r.body.LatencyUS <= 0 || r.body.EnergyMJ <= 0 || r.body.BatchRows < 1 {
			t.Errorf("request %d: degenerate reply %+v", i, r.body)
		}
		if r.body.BatchRows > 4 {
			t.Errorf("request %d: batch rows %d exceed max_batch", i, r.body.BatchRows)
		}
		if r.body.BatchRows > 1 {
			coalesced = true
		}
	}
	if !coalesced {
		t.Error("no request was served in a batch of >1 rows; the batcher never coalesced")
	}

	// The batching metric families must be live.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(data)
	for _, want := range []string{
		"# TYPE mulayer_batch_occupancy histogram",
		"mulayer_batch_occupancy_count",
		"mulayer_batch_window_wait_seconds_count",
		"mulayer_batches_total",
		"mulayer_plan_cache_hits_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}
