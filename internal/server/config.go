// Package server is the μLayer inference serving subsystem: an HTTP JSON
// API backed by a pool of simulated SoC devices and a request scheduler
// with admission control (see cmd/mulayer-serve).
//
// The paper frames μLayer as an on-device runtime fed by a stream of
// inference requests (§6, Figure 13); this package puts that runtime
// behind a server the way a fleet of devices would be driven in
// production. Each pool device owns one core.Runtime — a simulated SoC
// runs one inference at a time — and the scheduler extends the paper's
// makespan argument from channels within a layer to requests across
// devices: using the latency predictor's per-plan cost estimate, every
// request goes to the device whose queue has the minimum predicted
// completion time.
package server

import (
	"fmt"
	"io"
	"os"
	"time"

	"mulayer/internal/dispatch"
	"mulayer/internal/faults"
	"mulayer/internal/models"
	"mulayer/internal/soc"
)

// SoCSpec names one device class of the pool.
type SoCSpec struct {
	// Name keys the class in the API ("high", "mid", "npu").
	Name string
	// SoC builds the device model.
	SoC func() *soc.SoC
	// Workers is the number of independent devices (each its own
	// core.Runtime) of this class; 0 means Config.DefaultWorkers.
	Workers int
}

// Config configures the serving subsystem.
type Config struct {
	// Addr is the listen address of ListenAndServe (default ":8080").
	Addr string

	// SoCs lists the device classes in the pool; empty means one class
	// per paper SoC ("high" Exynos 7420 and "mid" Exynos 7880).
	SoCs []SoCSpec
	// DefaultWorkers is the per-class device count when a spec leaves
	// Workers zero (default 2).
	DefaultWorkers int

	// Models maps API model names to spec models; empty loads the zoo's
	// five evaluated networks plus lenet5.
	Models map[string]*models.Model

	// QueueDepth bounds the total number of admitted-but-unfinished
	// requests across all devices; beyond it /v1/infer answers
	// 503 + Retry-After (default 256).
	QueueDepth int

	// MaxBatch caps the rows fused into one batched execution by the
	// micro-batcher. Admitted requests for the same (model, mechanism,
	// class constraint) accumulate in an open window until it holds
	// MaxBatch rows or BatchWait elapses, then run as one fused batch.
	// 0 or 1 disables batching: every request dispatches immediately by
	// itself (the max_batch=1 baseline of the saturation experiment).
	MaxBatch int
	// BatchWait is the longest a batching window stays open waiting for
	// more rows (default 2ms when MaxBatch > 1). It trades the first
	// request's latency for batch occupancy; see docs/serving.md.
	BatchWait time.Duration

	// DefaultTimeout caps a request that sets no timeout_ms (default 2s);
	// MaxTimeout clips client-requested timeouts (default 30s).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration

	// TimeScale paces each device by its simulated latency: a device that
	// predicts a 30ms inference occupies its worker for 30ms/TimeScale of
	// wall time, so the pool saturates like real hardware. 0 disables
	// pacing (the cost-only walk runs at full host speed, suitable for
	// tests); 1 is real time; 10 is 10× faster than the modeled SoC.
	TimeScale float64

	// DrainTimeout bounds graceful shutdown: after it expires, queued and
	// in-flight requests are canceled (default 10s).
	DrainTimeout time.Duration

	// Faults maps a SoC class name to its fault-injection config; the ""
	// key applies to every class without its own entry. Empty map (the
	// default) disables injection entirely — the executor's fault hook is
	// then nil and the healthy path pays nothing.
	Faults map[string]faults.Config

	// FailThreshold is the number of consecutive device failures that
	// quarantines a device (default 3).
	FailThreshold int
	// QuarantineBackoff is the first quarantine duration; each
	// re-quarantine doubles it up to QuarantineBackoffMax (defaults 2s and
	// 30s).
	QuarantineBackoff    time.Duration
	QuarantineBackoffMax time.Duration
	// MaxRetries bounds how many times one request may be requeued onto
	// another device after a device failure (default 2; negative disables
	// retries).
	MaxRetries int

	// TraceSample enables request tracing: the fraction of requests
	// (0..1] captured into the in-memory trace ring served at
	// /debug/traces. Sampling is deterministic 1-in-round(1/fraction).
	// 0 disables sampled capture.
	TraceSample float64
	// TraceSlow, when > 0, always captures the trace of a request whose
	// wall latency exceeds it — regardless of sampling — and emits a
	// structured slow-request log line to SlowLog. Tracing as a whole is
	// active when TraceSample > 0 or TraceSlow > 0; with both zero the
	// executor's trace hook stays nil and requests pay nothing.
	TraceSlow time.Duration
	// TraceRing bounds the in-memory ring of recent traces (default 64
	// when tracing is active).
	TraceRing int
	// SlowLog receives slow-request log lines, one JSON object per line
	// (default os.Stderr).
	SlowLog io.Writer

	// Overload configures overload protection: deadline-aware admission,
	// the kernel stall watchdog, fleet-wide retry budgets, and the
	// brownout degradation ladder. The zero value disables all of them.
	// See docs/serving.md and ParseOverloadSpec.
	Overload OverloadConfig

	// Admission and Dispatch are the pluggable scheduling policies shared
	// with the fleet tier (internal/dispatch): Admission decides whether a
	// request enters the bounded queue (default dispatch.BoundedQueue),
	// Dispatch ranks the pool devices for a sealed batch (default
	// dispatch.MinCompletion — earliest predicted completion wins).
	Admission dispatch.Admission
	Dispatch  dispatch.Policy
}

// tracingEnabled reports whether requests record traces at all.
func (c Config) tracingEnabled() bool {
	return c.TraceSample > 0 || c.TraceSlow > 0
}

// withDefaults fills zero fields.
func (c Config) withDefaults() (Config, error) {
	if c.Addr == "" {
		c.Addr = ":8080"
	}
	if c.DefaultWorkers <= 0 {
		c.DefaultWorkers = 2
	}
	if len(c.SoCs) == 0 {
		c.SoCs = []SoCSpec{
			{Name: "high", SoC: soc.Exynos7420},
			{Name: "mid", SoC: soc.Exynos7880},
		}
	}
	seen := map[string]bool{}
	for i := range c.SoCs {
		s := &c.SoCs[i]
		if s.Name == "" || s.SoC == nil {
			return c, fmt.Errorf("server: SoC spec %d needs a name and a builder", i)
		}
		if seen[s.Name] {
			return c, fmt.Errorf("server: duplicate SoC class %q", s.Name)
		}
		seen[s.Name] = true
		if s.Workers <= 0 {
			s.Workers = c.DefaultWorkers
		}
	}
	if c.Models == nil {
		c.Models = map[string]*models.Model{}
		builders := map[string]func(models.Config) (*models.Model, error){
			"googlenet":  models.GoogLeNet,
			"squeezenet": models.SqueezeNetV11,
			"vgg16":      models.VGG16,
			"alexnet":    models.AlexNet,
			"mobilenet":  models.MobileNetV1,
			"lenet5":     models.LeNet5,
		}
		for name, build := range builders {
			m, err := build(models.Config{})
			if err != nil {
				return c, fmt.Errorf("server: load %s: %w", name, err)
			}
			c.Models[name] = m
		}
	}
	if len(c.Models) == 0 {
		return c, fmt.Errorf("server: no models configured")
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 1
	}
	if c.MaxBatch > 1 && c.BatchWait <= 0 {
		c.BatchWait = 2 * time.Millisecond
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 2 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 30 * time.Second
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 10 * time.Second
	}
	for class, fc := range c.Faults {
		if class != "" && !seen[class] {
			return c, fmt.Errorf("server: fault config for unknown SoC class %q", class)
		}
		if err := fc.Validate(); err != nil {
			return c, fmt.Errorf("server: fault config for class %q: %w", classLabel(class), err)
		}
	}
	if c.FailThreshold <= 0 {
		c.FailThreshold = 3
	}
	if c.QuarantineBackoff <= 0 {
		c.QuarantineBackoff = 2 * time.Second
	}
	if c.QuarantineBackoffMax <= 0 {
		c.QuarantineBackoffMax = 30 * time.Second
	}
	if c.QuarantineBackoffMax < c.QuarantineBackoff {
		c.QuarantineBackoffMax = c.QuarantineBackoff
	}
	switch {
	case c.MaxRetries == 0:
		c.MaxRetries = 2
	case c.MaxRetries < 0:
		c.MaxRetries = 0
	}
	if c.TraceSample < 0 || c.TraceSample > 1 {
		return c, fmt.Errorf("server: trace sample %v outside [0, 1]", c.TraceSample)
	}
	if c.TraceSlow < 0 {
		return c, fmt.Errorf("server: negative trace-slow threshold %v", c.TraceSlow)
	}
	if c.TraceRing <= 0 {
		c.TraceRing = 64
	}
	if c.SlowLog == nil {
		c.SlowLog = os.Stderr
	}
	if err := c.Overload.Validate(); err != nil {
		return c, fmt.Errorf("server: %w", err)
	}
	c.Overload = c.Overload.withDefaults()
	if c.Admission == nil {
		c.Admission = dispatch.BoundedQueue{}
	}
	if c.Dispatch == nil {
		c.Dispatch = dispatch.MinCompletion{}
	}
	return c, nil
}

// classLabel names a fault-config key in errors ("" is the catch-all).
func classLabel(class string) string {
	if class == "" {
		return "all"
	}
	return class
}
