package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"mulayer/internal/soc"
)

// syncBuffer is a concurrency-safe bytes.Buffer for the slow-request log.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// getJSON fetches a URL and decodes its JSON body into out.
func getJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("bad JSON from %s: %v (%s)", url, err, data)
		}
	}
	return resp
}

// traceIndex mirrors the /debug/traces reply.
type traceIndex struct {
	Enabled bool              `json:"enabled"`
	Sample  float64           `json:"sample"`
	SlowMS  float64           `json:"slow_ms"`
	RingLen int               `json:"ring_len"`
	RingCap int               `json:"ring_cap"`
	Traces  []traceIndexEntry `json:"traces"`
}

// chromeEvent mirrors one Chrome Trace Event for validation.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`
	Dur   float64        `json:"dur"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Args  map[string]any `json:"args"`
}

// fetchChromeTrace downloads one trace and decodes the event array.
func fetchChromeTrace(t *testing.T, base, id string) []chromeEvent {
	t.Helper()
	resp, err := http.Get(base + "/debug/traces/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("trace %s: status %d (%s)", id, resp.StatusCode, body)
	}
	var events []chromeEvent
	if err := json.NewDecoder(resp.Body).Decode(&events); err != nil {
		t.Fatalf("trace %s: bad Chrome JSON: %v", id, err)
	}
	return events
}

// TestTraceSmokeServeLoad is the end-to-end observability smoke test: a
// small concurrent load with full sampling, then every debug surface is
// checked — the trace ring index, a Perfetto-loadable Chrome trace with
// per-layer kernel spans carrying split-ratio and drift attributes, the
// predictor-drift histogram in /metrics, and the /statusz summaries.
func TestTraceSmokeServeLoad(t *testing.T) {
	_, ts := newTestServer(t, Config{
		SoCs:        []SoCSpec{{Name: "high", SoC: soc.Exynos7420, Workers: 2}},
		QueueDepth:  64,
		TraceSample: 1.0,
	})

	const n = 8
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			model := []string{"googlenet", "lenet5"}[i%2]
			resp, data := postInfer(t, ts.URL, InferRequest{Model: model, Mechanism: "mulayer"})
			if resp.StatusCode != http.StatusOK {
				t.Errorf("request %d: status %d (%s)", i, resp.StatusCode, data)
			}
		}(i)
	}
	wg.Wait()

	// Index: everything sampled, nothing evicted (n < default ring 64).
	var idx traceIndex
	getJSON(t, ts.URL+"/debug/traces", &idx)
	if !idx.Enabled || idx.Sample != 1.0 {
		t.Fatalf("index config wrong: %+v", idx)
	}
	if idx.RingLen != n || len(idx.Traces) != n {
		t.Fatalf("ring holds %d/%d traces, want %d", idx.RingLen, len(idx.Traces), n)
	}
	for _, e := range idx.Traces {
		if !e.Sampled || e.Slow || e.Error != "" {
			t.Fatalf("trace %s: want sampled, not slow, no error: %+v", e.ID, e)
		}
		if e.WallMS <= 0 || e.Device == "" {
			t.Fatalf("trace %s: degenerate entry %+v", e.ID, e)
		}
	}

	// One full Chrome trace: stage spans on the request process, one
	// kernel span per executed layer on the device process. GoogLeNet is
	// big enough that μLayer actually splits layers across processors
	// (lenet5 may legitimately collapse onto the CPU alone).
	tr := idx.Traces[0]
	for _, e := range idx.Traces {
		if e.Model == "googlenet" {
			tr = e
			break
		}
	}
	events := fetchChromeTrace(t, ts.URL, tr.ID)
	stages := map[string]bool{}
	var kernels []chromeEvent
	for _, ev := range events {
		switch {
		case ev.Phase == "X" && ev.PID == 1:
			stages[ev.Name] = true
		case ev.Phase == "X" && ev.PID == 2 && ev.Cat == "kernel":
			kernels = append(kernels, ev)
		}
	}
	for _, want := range []string{"request", "admission", "batch-window", "device-queue", "plan", "execute"} {
		if !stages[want] {
			t.Fatalf("trace %s: missing stage span %q (have %v)", tr.ID, want, stages)
		}
	}
	// Every executed layer (the whole graph minus its input node) must
	// have at least one kernel span.
	model := testModels(t)[tr.Model]
	if want := model.Graph.Len() - 1; len(kernels) < want {
		t.Fatalf("trace %s: %d kernel spans for %d executed layers", tr.ID, len(kernels), want)
	}
	tids := map[int]bool{}
	for _, k := range kernels {
		proc, _ := k.Args["proc"].(string)
		if proc != "CPU" && proc != "GPU" && proc != "NPU" {
			t.Fatalf("kernel %q: bad proc attr %v", k.Name, k.Args["proc"])
		}
		p, ok := k.Args["p"].(float64)
		if !ok || p <= 0 || p > 1 {
			t.Fatalf("kernel %q: bad split-ratio attr %v", k.Name, k.Args["p"])
		}
		if ratio, ok := k.Args["error_ratio"].(float64); ok && ratio <= 0 {
			t.Fatalf("kernel %q: non-positive error_ratio %v", k.Name, ratio)
		}
		tids[k.TID] = true
	}
	if len(tids) < 2 {
		t.Fatalf("kernel spans landed on %d processor tracks, want ≥2 for mulayer", len(tids))
	}

	// Drift telemetry: the histogram is populated with full labels.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	if !strings.Contains(text, `mulayer_predictor_error_ratio_count{proc="CPU",kind="conv",mechanism="mulayer"}`) {
		t.Fatalf("metrics missing CPU conv drift series:\n%s", grepLines(text, "predictor_error_ratio_count"))
	}
	if !strings.Contains(text, `mulayer_predictor_error_ratio_count{proc="all",kind="network",mechanism="mulayer"}`) {
		t.Fatalf("metrics missing network-level drift series:\n%s", grepLines(text, "predictor_error_ratio_count"))
	}

	// /statusz: latency quantiles, drift medians, tracing state.
	var status struct {
		QueueWait      []latencySummary `json:"queue_wait"`
		Wall           []latencySummary `json:"wall"`
		PredictorDrift []driftSummary   `json:"predictor_drift"`
		Tracing        traceStatus      `json:"tracing"`
	}
	getJSON(t, ts.URL+"/statusz", &status)
	if len(status.QueueWait) == 0 || len(status.Wall) == 0 {
		t.Fatalf("statusz latency summaries empty: %+v", status)
	}
	for _, row := range status.Wall {
		if row.Count <= 0 || row.P50MS <= 0 || row.P99MS < row.P50MS {
			t.Fatalf("statusz wall row degenerate: %+v", row)
		}
	}
	if len(status.PredictorDrift) == 0 {
		t.Fatal("statusz predictor_drift empty after a traced load")
	}
	for _, row := range status.PredictorDrift {
		if row.Count <= 0 || row.P50Ratio <= 0 || row.Proc == "" || row.Kind == "" {
			t.Fatalf("statusz drift row degenerate: %+v", row)
		}
	}
	if !status.Tracing.Enabled || status.Tracing.RingLen != n {
		t.Fatalf("statusz tracing state wrong: %+v", status.Tracing)
	}
}

// grepLines returns the lines of text containing substr (test diagnostics).
func grepLines(text, substr string) string {
	var out []string
	for _, l := range strings.Split(text, "\n") {
		if strings.Contains(l, substr) {
			out = append(out, l)
		}
	}
	return strings.Join(out, "\n")
}

// TestTraceSampledVsForced: with head sampling at 1-in-2, exactly every
// second request lands in the ring; with sampling off and a 1ns slow
// threshold, every request is kept as a forced slow capture instead, and
// each one emits a structured slow-request log line.
func TestTraceSampledVsForced(t *testing.T) {
	t.Run("sampled", func(t *testing.T) {
		_, ts := newTestServer(t, Config{
			SoCs:        []SoCSpec{{Name: "high", SoC: soc.Exynos7420, Workers: 1}},
			TraceSample: 0.5,
		})
		for i := 0; i < 4; i++ {
			resp, data := postInfer(t, ts.URL, InferRequest{Model: "lenet5"})
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("request %d: status %d (%s)", i, resp.StatusCode, data)
			}
		}
		var idx traceIndex
		getJSON(t, ts.URL+"/debug/traces", &idx)
		if idx.RingLen != 2 {
			t.Fatalf("ring holds %d traces after 4 requests at sample 0.5, want 2", idx.RingLen)
		}
		for _, e := range idx.Traces {
			if !e.Sampled || e.Slow {
				t.Fatalf("trace %s: want sampled, not slow: %+v", e.ID, e)
			}
		}
	})

	t.Run("forced-slow", func(t *testing.T) {
		var slowLog syncBuffer
		_, ts := newTestServer(t, Config{
			SoCs:      []SoCSpec{{Name: "high", SoC: soc.Exynos7420, Workers: 1}},
			TraceSlow: time.Nanosecond,
			SlowLog:   &slowLog,
		})
		resp, data := postInfer(t, ts.URL, InferRequest{Model: "lenet5", Mechanism: "mulayer"})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d (%s)", resp.StatusCode, data)
		}
		var idx traceIndex
		getJSON(t, ts.URL+"/debug/traces", &idx)
		if idx.RingLen != 1 {
			t.Fatalf("ring holds %d traces, want 1 forced capture", idx.RingLen)
		}
		e := idx.Traces[0]
		if e.Sampled || !e.Slow {
			t.Fatalf("trace %s: want slow-only capture: %+v", e.ID, e)
		}

		// The slow log line is valid JSON with the where-did-time-go fields.
		var line struct {
			Msg         string       `json:"msg"`
			Trace       string       `json:"trace"`
			Model       string       `json:"model"`
			Mechanism   string       `json:"mechanism"`
			Device      string       `json:"device"`
			WallMS      float64      `json:"wall_ms"`
			ThresholdMS float64      `json:"threshold_ms"`
			TopKernels  []slowKernel `json:"top_kernels"`
		}
		logged := strings.TrimSpace(slowLog.String())
		if err := json.Unmarshal([]byte(logged), &line); err != nil {
			t.Fatalf("slow log not one JSON line: %v (%q)", err, logged)
		}
		if line.Msg != "slow request" || line.Trace != e.ID || line.Model != "lenet5" {
			t.Fatalf("slow log identity wrong: %+v", line)
		}
		if line.WallMS <= line.ThresholdMS || line.Device == "" {
			t.Fatalf("slow log numbers wrong: %+v", line)
		}
		if len(line.TopKernels) != 3 {
			t.Fatalf("slow log has %d top kernels, want 3", len(line.TopKernels))
		}
		for i, k := range line.TopKernels {
			if k.DurUS <= 0 || k.Proc == "" {
				t.Fatalf("top kernel %d degenerate: %+v", i, k)
			}
			if i > 0 && k.DurUS > line.TopKernels[i-1].DurUS {
				t.Fatalf("top kernels not sorted: %+v", line.TopKernels)
			}
		}
	})
}

// TestTraceRingEvictionHTTP: a full ring evicts oldest-first, and an
// evicted trace 404s while a survivor still serves.
func TestTraceRingEvictionHTTP(t *testing.T) {
	_, ts := newTestServer(t, Config{
		SoCs:        []SoCSpec{{Name: "high", SoC: soc.Exynos7420, Workers: 1}},
		TraceSample: 1.0,
		TraceRing:   2,
	})
	for i := 0; i < 5; i++ {
		resp, data := postInfer(t, ts.URL, InferRequest{Model: "lenet5"})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d (%s)", i, resp.StatusCode, data)
		}
	}
	var idx traceIndex
	getJSON(t, ts.URL+"/debug/traces", &idx)
	if idx.RingLen != 2 || idx.RingCap != 2 {
		t.Fatalf("ring %d/%d, want 2/2", idx.RingLen, idx.RingCap)
	}
	if idx.Traces[0].ID != "req-000005" || idx.Traces[1].ID != "req-000004" {
		t.Fatalf("ring kept %s, %s; want the two newest", idx.Traces[0].ID, idx.Traces[1].ID)
	}
	if resp := getJSON(t, ts.URL+"/debug/traces/req-000001", &json.RawMessage{}); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("evicted trace served with status %d, want 404", resp.StatusCode)
	}
	if events := fetchChromeTrace(t, ts.URL, "req-000005"); len(events) == 0 {
		t.Fatal("surviving trace has no events")
	}
}

// TestTracingDisabledSurfaces: with tracing off the debug surfaces stay
// up (empty index, 404 lookups) and /statusz reports it disabled.
func TestTracingDisabledSurfaces(t *testing.T) {
	_, ts := newTestServer(t, Config{
		SoCs: []SoCSpec{{Name: "high", SoC: soc.Exynos7420, Workers: 1}},
	})
	resp, data := postInfer(t, ts.URL, InferRequest{Model: "lenet5"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d (%s)", resp.StatusCode, data)
	}
	var idx traceIndex
	getJSON(t, ts.URL+"/debug/traces", &idx)
	if idx.Enabled || idx.RingLen != 0 || len(idx.Traces) != 0 {
		t.Fatalf("disabled tracing leaked traces: %+v", idx)
	}
	if resp := getJSON(t, ts.URL+"/debug/traces/req-000001", &json.RawMessage{}); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("trace lookup with tracing off: status %d, want 404", resp.StatusCode)
	}
	var status struct {
		Tracing traceStatus `json:"tracing"`
	}
	getJSON(t, ts.URL+"/statusz", &status)
	if status.Tracing.Enabled {
		t.Fatal("statusz reports tracing enabled")
	}
}

// TestTraceBatchMembersShareKernels: two requests fused into one batch
// each get a complete trace whose kernel spans come from the shared batch
// capture (same device, same fused row count on every span).
func TestTraceBatchMembersShareKernels(t *testing.T) {
	_, ts := newTestServer(t, Config{
		SoCs:        []SoCSpec{{Name: "high", SoC: soc.Exynos7420, Workers: 1}},
		MaxBatch:    4,
		BatchWait:   50 * time.Millisecond,
		TraceSample: 1.0,
	})
	const n = 2
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, data := postInfer(t, ts.URL, InferRequest{Model: "lenet5", Batch: 2})
			if resp.StatusCode != http.StatusOK {
				t.Errorf("status %d (%s)", resp.StatusCode, data)
			}
		}()
	}
	wg.Wait()

	var idx traceIndex
	getJSON(t, ts.URL+"/debug/traces", &idx)
	if idx.RingLen != n {
		t.Fatalf("ring holds %d traces, want %d", idx.RingLen, n)
	}
	// Both requests may or may not have fused into one batch (timing), but
	// every trace must carry kernel spans whose rows equal its own batch's
	// fused row count, and rows ≥ the member's own 2.
	for _, e := range idx.Traces {
		events := fetchChromeTrace(t, ts.URL, e.ID)
		var kernelRows float64 = -1
		for _, ev := range events {
			if ev.Cat != "kernel" {
				continue
			}
			rows, ok := ev.Args["rows"].(float64)
			if !ok || rows < 2 {
				t.Fatalf("trace %s kernel %q: rows attr %v, want ≥2", e.ID, ev.Name, ev.Args["rows"])
			}
			if kernelRows < 0 {
				kernelRows = rows
			} else if rows != kernelRows {
				t.Fatalf("trace %s: kernel rows disagree within one capture: %v vs %v", e.ID, rows, kernelRows)
			}
		}
		if kernelRows < 0 {
			t.Fatalf("trace %s: no kernel spans", e.ID)
		}
	}
}

// TestStatuszQuantilesMonotone pins the quantile helper: p50 ≤ p95 ≤ p99
// and counts add up across a mixed-model run.
func TestStatuszQuantilesMonotone(t *testing.T) {
	_, ts := newTestServer(t, Config{
		SoCs: []SoCSpec{{Name: "high", SoC: soc.Exynos7420, Workers: 1}},
	})
	const n = 6
	for i := 0; i < n; i++ {
		model := []string{"googlenet", "lenet5"}[i%2]
		if resp, data := postInfer(t, ts.URL, InferRequest{Model: model}); resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d (%s)", i, resp.StatusCode, data)
		}
	}
	var status struct {
		QueueWait []latencySummary `json:"queue_wait"`
		Wall      []latencySummary `json:"wall"`
	}
	getJSON(t, ts.URL+"/statusz", &status)
	var queueTotal, wallTotal int64
	for _, row := range status.QueueWait {
		queueTotal += row.Count
		if row.P50MS > row.P95MS || row.P95MS > row.P99MS {
			t.Fatalf("queue-wait quantiles not monotone: %+v", row)
		}
	}
	for _, row := range status.Wall {
		wallTotal += row.Count
		if row.P50MS > row.P95MS || row.P95MS > row.P99MS {
			t.Fatalf("wall quantiles not monotone: %+v", row)
		}
		if len(row.Labels) == 0 || row.Labels["model"] == "" {
			t.Fatalf("wall row missing model label: %+v", row)
		}
	}
	if queueTotal != n || wallTotal != n {
		t.Fatalf("quantile counts queue=%d wall=%d, want %d each", queueTotal, wallTotal, n)
	}
}
