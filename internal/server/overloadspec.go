package server

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// ParseOverloadSpec parses an overload-protection spec of the form
//
//	key=value[,key=value...]
//
// with keys:
//
//	admit=on|off       deadline-aware admission + queue aging
//	watchdog=F         kernel stall watchdog factor (0 off, else ≥ 1)
//	queue-wait=DUR     brownout ladder queue-wait p95 threshold (0 off)
//	eval=DUR           ladder evaluation period (default 250ms)
//	hold=DUR           ladder step-down hysteresis hold (default 2s)
//	retry-rate=R       failover retry budget, tokens/sec per model (0 off)
//	retry-burst=N      retry bucket capacity (default max(1, rate))
//
// Example: "admit=on,watchdog=8,queue-wait=50ms,retry-rate=5".
// An empty spec yields the zero config (everything off). The returned
// config has passed Validate.
func ParseOverloadSpec(spec string) (OverloadConfig, error) {
	var cfg OverloadConfig
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return cfg, nil
	}
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, val, ok := strings.Cut(field, "=")
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		if !ok || val == "" {
			return OverloadConfig{}, fmt.Errorf("overload spec: %q is not key=value", field)
		}
		var err error
		switch key {
		case "admit":
			switch val {
			case "on", "true", "1":
				cfg.DeadlineAdmission = true
			case "off", "false", "0":
				cfg.DeadlineAdmission = false
			default:
				err = fmt.Errorf("want on or off, got %q", val)
			}
		case "watchdog":
			cfg.WatchdogFactor, err = strconv.ParseFloat(val, 64)
		case "queue-wait":
			cfg.QueueWaitP95, err = time.ParseDuration(val)
		case "eval":
			cfg.EvalEvery, err = time.ParseDuration(val)
		case "hold":
			cfg.Hold, err = time.ParseDuration(val)
		case "retry-rate":
			cfg.RetryRate, err = strconv.ParseFloat(val, 64)
		case "retry-burst":
			cfg.RetryBurst, err = strconv.Atoi(val)
		default:
			err = fmt.Errorf("unknown key (want admit, watchdog, queue-wait, eval, hold, retry-rate, retry-burst)")
		}
		if err != nil {
			return OverloadConfig{}, fmt.Errorf("overload spec: %s: %v", key, err)
		}
	}
	if err := cfg.Validate(); err != nil {
		return OverloadConfig{}, err
	}
	return cfg, nil
}
