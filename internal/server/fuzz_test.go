package server

import (
	"math"
	"testing"
)

// FuzzDecodeInferRequest hammers the /v1/infer body parser with arbitrary
// bytes: malformed JSON, wrong field types, degenerate and overflowing
// shapes, oversized batches, and non-finite payloads must all come back
// as errors — never a panic — and any request the decoder accepts must
// satisfy the documented bounds.
func FuzzDecodeInferRequest(f *testing.F) {
	seeds := []string{
		`{"model":"lenet5"}`,
		`{"model":"googlenet","mechanism":"mulayer","soc":"high","timeout_ms":500}`,
		`{"model":"lenet5","batch":4}`,
		`{"model":"lenet5","batch":-1}`,
		`{"model":"lenet5","batch":1000000}`,
		`{"model":"lenet5","shape":[1,2,2],"input":[0,1,2,3]}`,
		`{"model":"lenet5","shape":[0],"input":[]}`,
		`{"model":"lenet5","shape":[-1,-1],"input":[1]}`,
		`{"model":"lenet5","shape":[1073741824,1073741824],"input":[]}`,
		`{"model":"lenet5","shape":[1],"input":[1e999]}`,
		`{"model":"lenet5","shape":[2],"input":[1]}`,
		`{"model":"lenet5","input":[1,2,3]}`,
		`{"model":"lenet5","shape":[1,1,1,1,1,1,1,1,1,1]}`,
		`{"model":"lenet5","timeout_ms":-5}`,
		`{"batch":"four"}`,
		`{"shape":{"x":1}}`,
		`{`,
		``,
		`null`,
		`[]`,
		`"model"`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := decodeInferRequest(data)
		if err != nil {
			return
		}
		if req.Batch < 0 || req.Batch > maxClientRows {
			t.Fatalf("accepted batch %d outside [0, %d]", req.Batch, maxClientRows)
		}
		if req.TimeoutMS < 0 {
			t.Fatalf("accepted negative timeout_ms %d", req.TimeoutMS)
		}
		if len(req.Input) > 0 && len(req.Shape) == 0 {
			t.Fatalf("accepted %d input values without a shape", len(req.Input))
		}
		if len(req.Shape) > maxShapeDims {
			t.Fatalf("accepted shape rank %d", len(req.Shape))
		}
		if len(req.Shape) > 0 {
			elems := 1
			for _, d := range req.Shape {
				if d < 1 {
					t.Fatalf("accepted non-positive dimension in %v", req.Shape)
				}
				elems *= d
			}
			if elems > maxInputElems {
				t.Fatalf("accepted %d-element shape %v", elems, req.Shape)
			}
			if len(req.Input) != elems {
				t.Fatalf("accepted input length %d against shape %v (%d elems)", len(req.Input), req.Shape, elems)
			}
			for i, v := range req.Input {
				if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
					t.Fatalf("accepted non-finite input[%d]", i)
				}
			}
		}
	})
}
