package server

import (
	"math"
	"testing"
)

// FuzzDecodeInferRequest hammers the /v1/infer body parser with arbitrary
// bytes: malformed JSON, wrong field types, degenerate and overflowing
// shapes, oversized batches, and non-finite payloads must all come back
// as errors — never a panic — and any request the decoder accepts must
// satisfy the documented bounds.
func FuzzDecodeInferRequest(f *testing.F) {
	seeds := []string{
		`{"model":"lenet5"}`,
		`{"model":"googlenet","mechanism":"mulayer","soc":"high","timeout_ms":500}`,
		`{"model":"lenet5","batch":4}`,
		`{"model":"lenet5","batch":-1}`,
		`{"model":"lenet5","batch":1000000}`,
		`{"model":"lenet5","shape":[1,2,2],"input":[0,1,2,3]}`,
		`{"model":"lenet5","shape":[0],"input":[]}`,
		`{"model":"lenet5","shape":[-1,-1],"input":[1]}`,
		`{"model":"lenet5","shape":[1073741824,1073741824],"input":[]}`,
		`{"model":"lenet5","shape":[1],"input":[1e999]}`,
		`{"model":"lenet5","shape":[2],"input":[1]}`,
		`{"model":"lenet5","input":[1,2,3]}`,
		`{"model":"lenet5","shape":[1,1,1,1,1,1,1,1,1,1]}`,
		`{"model":"lenet5","timeout_ms":-5}`,
		`{"batch":"four"}`,
		`{"shape":{"x":1}}`,
		`{`,
		``,
		`null`,
		`[]`,
		`"model"`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := decodeInferRequest(data)
		if err != nil {
			return
		}
		if req.Batch < 0 || req.Batch > maxClientRows {
			t.Fatalf("accepted batch %d outside [0, %d]", req.Batch, maxClientRows)
		}
		if req.TimeoutMS < 0 {
			t.Fatalf("accepted negative timeout_ms %d", req.TimeoutMS)
		}
		if len(req.Input) > 0 && len(req.Shape) == 0 {
			t.Fatalf("accepted %d input values without a shape", len(req.Input))
		}
		if len(req.Shape) > maxShapeDims {
			t.Fatalf("accepted shape rank %d", len(req.Shape))
		}
		if len(req.Shape) > 0 {
			elems := 1
			for _, d := range req.Shape {
				if d < 1 {
					t.Fatalf("accepted non-positive dimension in %v", req.Shape)
				}
				elems *= d
			}
			if elems > maxInputElems {
				t.Fatalf("accepted %d-element shape %v", elems, req.Shape)
			}
			if len(req.Input) != elems {
				t.Fatalf("accepted input length %d against shape %v (%d elems)", len(req.Input), req.Shape, elems)
			}
			for i, v := range req.Input {
				if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
					t.Fatalf("accepted non-finite input[%d]", i)
				}
			}
		}
	})
}

// FuzzOverloadConfig hammers the -overload spec parser with arbitrary
// strings: unknown keys, non-finite numbers, negative durations, and
// garbage must come back as errors — never a panic — and any config the
// parser accepts must itself pass Validate and survive withDefaults
// (NewScheduler runs both on every accepted spec).
func FuzzOverloadConfig(f *testing.F) {
	seeds := []string{
		"",
		"admit=on",
		"admit=on,watchdog=8,queue-wait=50ms,eval=10ms,hold=1s,retry-rate=5,retry-burst=10",
		"watchdog=1",
		"watchdog=0.5",
		"watchdog=NaN",
		"watchdog=-Inf",
		"watchdog=1e309",
		"queue-wait=10ms",
		"queue-wait=-1s",
		"queue-wait=9223372036854775807ns",
		"eval=0s,hold=0s",
		"retry-rate=0.0001,retry-burst=1",
		"retry-rate=Inf",
		"retry-burst=-1",
		"admit=maybe",
		"admit",
		"bogus=1",
		",,,",
		"admit=on,admit=off",
		"queue-wait=50ms,queue-wait=-50ms",
		"=",
		"watchdog==8",
		"admit=on\x00",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		cfg, err := ParseOverloadSpec(spec)
		if err != nil {
			return
		}
		if verr := cfg.Validate(); verr != nil {
			t.Fatalf("parser accepted %q but Validate rejects the result: %v", spec, verr)
		}
		def := cfg.withDefaults()
		if verr := def.Validate(); verr != nil {
			t.Fatalf("withDefaults broke a valid config from %q: %v", spec, verr)
		}
		if cfg.QueueWaitP95 > 0 && (def.EvalEvery <= 0 || def.Hold <= 0) {
			t.Fatalf("ladder enabled by %q but defaults left EvalEvery=%v Hold=%v", spec, def.EvalEvery, def.Hold)
		}
		if cfg.RetryRate > 0 && def.RetryBurst < 1 {
			t.Fatalf("retry budget enabled by %q but burst defaulted to %d", spec, def.RetryBurst)
		}
	})
}
