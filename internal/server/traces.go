package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"mulayer/internal/server/metrics"
	"mulayer/internal/trace"
)

// newTrace starts the trace for one admitted-or-about-to-be request, or
// returns nil when tracing is off. Every request gets a trace while
// tracing is enabled — head sampling only decides whether the trace is
// kept unconditionally; a non-sampled trace is still recorded so it can
// be kept retroactively if the request turns out slow.
func (s *Server) newTrace(model, mechName, soc string, rows int, begin time.Time) *trace.Trace {
	if s.traces == nil {
		return nil
	}
	// Brownout level 2 drops trace sampling to zero: under overload the
	// per-kernel capture overhead goes before any request is refused.
	if s.sched.OverloadLevel() >= overloadLevelNoTrace {
		return nil
	}
	n := s.traceSeq.Add(1)
	sampled := s.sampleN > 0 && n%s.sampleN == 0
	return trace.New(fmt.Sprintf("req-%06d", n), model, mechName, soc, rows, begin, sampled)
}

// finishTrace closes the trace, applies the slow-request policy (mark +
// structured log line), and admits the trace to the debug ring when the
// head sampler chose it or it crossed the slow threshold.
func (s *Server) finishTrace(ctx context.Context, tr *trace.Trace, out outcome, wall time.Duration) {
	tr.Finish(wall, out.err)
	slow := s.cfg.TraceSlow > 0 && wall > s.cfg.TraceSlow
	if slow {
		tr.MarkSlow()
		s.logSlow(ctx, tr, out, wall)
	}
	if tr.Sampled || slow {
		s.traces.Add(tr)
	}
}

// slowKernel is one entry of the slow-request log's top-kernels line.
type slowKernel struct {
	Label string  `json:"label"`
	Proc  string  `json:"proc"`
	Kind  string  `json:"kind"`
	DurUS float64 `json:"dur_us"`
	P     float64 `json:"p"`
}

// logSlow emits one structured JSON line for a request whose wall latency
// crossed the always-trace threshold: identity, where the time went
// (queue wait, top kernels), the plan's mean split ratio, and how much
// deadline was left when it finished.
func (s *Server) logSlow(ctx context.Context, tr *trace.Trace, out outcome, wall time.Duration) {
	line := struct {
		Msg             string       `json:"msg"`
		Trace           string       `json:"trace"`
		Model           string       `json:"model"`
		Mechanism       string       `json:"mechanism"`
		SoC             string       `json:"soc,omitempty"`
		Device          string       `json:"device,omitempty"`
		Rows            int          `json:"rows"`
		WallMS          float64      `json:"wall_ms"`
		QueueWaitMS     float64      `json:"queue_wait_ms"`
		ThresholdMS     float64      `json:"threshold_ms"`
		DeadlineSlackMS *float64     `json:"deadline_slack_ms,omitempty"`
		MeanP           float64      `json:"mean_p,omitempty"`
		Error           string       `json:"error,omitempty"`
		TopKernels      []slowKernel `json:"top_kernels,omitempty"`
	}{
		Msg:         "slow request",
		Trace:       tr.ID,
		Model:       tr.Model,
		Mechanism:   tr.Mechanism,
		SoC:         tr.SoC,
		Device:      tr.Device(),
		Rows:        tr.Rows,
		WallMS:      float64(wall) / float64(time.Millisecond),
		QueueWaitMS: float64(out.queueWait) / float64(time.Millisecond),
		ThresholdMS: float64(s.cfg.TraceSlow) / float64(time.Millisecond),
		MeanP:       planMeanP(tr),
		Error:       tr.Err(),
	}
	if dl, ok := ctx.Deadline(); ok {
		slack := float64(time.Until(dl)) / float64(time.Millisecond)
		line.DeadlineSlackMS = &slack
	}
	for _, k := range tr.TopKernels(3) {
		line.TopKernels = append(line.TopKernels, slowKernel{
			Label: k.Label, Proc: k.Side, Kind: k.Kind,
			DurUS: float64(k.End-k.Start) / float64(time.Microsecond),
			P:     k.P,
		})
	}
	b, err := json.Marshal(line)
	if err != nil {
		return
	}
	_, _ = s.cfg.SlowLog.Write(append(b, '\n'))
}

// planMeanP digs the plan stage's mean split ratio out of the trace (0
// when the request never reached planning).
func planMeanP(tr *trace.Trace) float64 {
	for _, sp := range tr.Spans() {
		if sp.Name != "plan" {
			continue
		}
		for _, a := range sp.Attrs {
			if a.Key == "mean_p" {
				if v, ok := a.Val.(float64); ok {
					return v
				}
			}
		}
	}
	return 0
}

// traceIndexEntry is one row of the /debug/traces index.
type traceIndexEntry struct {
	ID        string  `json:"id"`
	Model     string  `json:"model"`
	Mechanism string  `json:"mechanism"`
	SoC       string  `json:"soc,omitempty"`
	Device    string  `json:"device,omitempty"`
	Rows      int     `json:"rows"`
	WallMS    float64 `json:"wall_ms"`
	Sampled   bool    `json:"sampled"`
	Slow      bool    `json:"slow"`
	Error     string  `json:"error,omitempty"`
	// URL is the per-trace Chrome JSON (load it in Perfetto or
	// chrome://tracing).
	URL string `json:"url"`
}

// handleTraces serves the ring index, newest first.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	out := struct {
		Enabled bool              `json:"enabled"`
		Sample  float64           `json:"sample"`
		SlowMS  float64           `json:"slow_ms"`
		RingLen int               `json:"ring_len"`
		RingCap int               `json:"ring_cap"`
		Traces  []traceIndexEntry `json:"traces"`
	}{
		Enabled: s.traces != nil,
		Sample:  s.cfg.TraceSample,
		SlowMS:  float64(s.cfg.TraceSlow) / float64(time.Millisecond),
	}
	if s.traces != nil {
		out.RingLen = s.traces.Len()
		out.RingCap = s.traces.Cap()
		for _, tr := range s.traces.List() {
			out.Traces = append(out.Traces, traceIndexEntry{
				ID:        tr.ID,
				Model:     tr.Model,
				Mechanism: tr.Mechanism,
				SoC:       tr.SoC,
				Device:    tr.Device(),
				Rows:      tr.Rows,
				WallMS:    float64(tr.Wall()) / float64(time.Millisecond),
				Sampled:   tr.Sampled,
				Slow:      tr.Slow(),
				Error:     tr.Err(),
				URL:       "/debug/traces/" + tr.ID,
			})
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// handleTraceByID serves one trace in the Chrome Trace Event Format.
func (s *Server) handleTraceByID(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var tr *trace.Trace
	if s.traces != nil {
		tr = s.traces.Get(id)
	}
	if tr == nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: fmt.Sprintf("no trace %q in the ring", id)})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = tr.WriteChrome(w)
}

// latencySummary is one labeled histogram's quantile row in /statusz.
type latencySummary struct {
	Labels map[string]string `json:"labels,omitempty"`
	Count  int64             `json:"count"`
	P50MS  float64           `json:"p50_ms"`
	P95MS  float64           `json:"p95_ms"`
	P99MS  float64           `json:"p99_ms"`
}

// summarizeLatency renders a seconds-valued histogram family as
// millisecond p50/p95/p99 rows, one per label set.
func summarizeLatency(h *metrics.HistogramVec) []latencySummary {
	names := h.LabelNames()
	vals, hists := h.Snapshot()
	out := make([]latencySummary, 0, len(hists))
	for i, hist := range hists {
		if hist.Count() == 0 {
			continue
		}
		row := latencySummary{
			Count: hist.Count(),
			P50MS: hist.Quantile(0.50) * 1e3,
			P95MS: hist.Quantile(0.95) * 1e3,
			P99MS: hist.Quantile(0.99) * 1e3,
		}
		if len(vals[i]) > 0 {
			row.Labels = make(map[string]string, len(names))
			for j, n := range names {
				row.Labels[n] = vals[i][j]
			}
		}
		out = append(out, row)
	}
	return out
}

// driftSummary is one predictor-drift row in /statusz: the median
// predicted/actual ratio for one (proc, layer kind, mechanism) cell.
type driftSummary struct {
	Proc      string  `json:"proc"`
	Kind      string  `json:"kind"`
	Mechanism string  `json:"mechanism"`
	Count     int64   `json:"count"`
	P50Ratio  float64 `json:"p50_ratio"`
}

// summarizeDrift renders the mulayer_predictor_error_ratio family.
func summarizeDrift(h *metrics.HistogramVec) []driftSummary {
	vals, hists := h.Snapshot()
	out := make([]driftSummary, 0, len(hists))
	for i, hist := range hists {
		if hist.Count() == 0 || len(vals[i]) != 3 {
			continue
		}
		out = append(out, driftSummary{
			Proc:      vals[i][0],
			Kind:      vals[i][1],
			Mechanism: vals[i][2],
			Count:     hist.Count(),
			P50Ratio:  hist.Quantile(0.50),
		})
	}
	return out
}

// traceStatus is the tracing section of /statusz.
type traceStatus struct {
	Enabled bool    `json:"enabled"`
	Sample  float64 `json:"sample"`
	SlowMS  float64 `json:"slow_ms"`
	RingLen int     `json:"ring_len"`
	RingCap int     `json:"ring_cap"`
}

func (s *Server) traceStatus() traceStatus {
	st := traceStatus{
		Enabled: s.traces != nil,
		Sample:  s.cfg.TraceSample,
		SlowMS:  float64(s.cfg.TraceSlow) / float64(time.Millisecond),
	}
	if s.traces != nil {
		st.RingLen = s.traces.Len()
		st.RingCap = s.traces.Cap()
	}
	return st
}
