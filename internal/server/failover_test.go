package server

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"mulayer/internal/core"
	"mulayer/internal/faults"
	"mulayer/internal/server/metrics"
	"mulayer/internal/soc"
)

func devByName(t *testing.T, s *Scheduler, name string) *poolDevice {
	t.Helper()
	for _, d := range s.Devices() {
		if d.name == name {
			return d
		}
	}
	t.Fatalf("no device %q in pool", name)
	return nil
}

// waitIdle polls until no admitted request is outstanding — a stranded
// queue entry (settled by nobody) fails the test here.
func waitIdle(t *testing.T, s *Scheduler, d time.Duration) {
	t.Helper()
	deadline := time.Now().Add(d)
	for s.QueueDepth() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("queue depth %d after completion; stranded entries", s.QueueDepth())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestFailoverMidBatchDeath: a processor dies mid-batch on the preferred
// device; both batchmates must fail over to the surviving device and
// succeed, and the wounded device must keep serving under a degraded
// (processor-down) plan.
func TestFailoverMidBatchDeath(t *testing.T) {
	s := newSched(t, Config{
		SoCs: []SoCSpec{
			{Name: "high", SoC: soc.Exynos7420, Workers: 1},
			{Name: "mid", SoC: soc.Exynos7880, Workers: 1},
		},
		QueueDepth: 8,
		// MaxBatch 2 with a long window: the second submit seals the batch,
		// so both requests share the fused run deterministically.
		MaxBatch:  2,
		BatchWait: time.Second,
		Faults:    map[string]faults.Config{"high": {DieRate: 1, MaxFaults: 1, Seed: 1}},
	})
	m := s.cfg.Models["googlenet"]
	var wg sync.WaitGroup
	outs := make([]outcome, 2)
	for i := range outs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			outs[i] = s.Submit(context.Background(), "googlenet", m, core.MechMuLayer, "", 1)
		}(i)
	}
	wg.Wait()
	for i, o := range outs {
		if o.err != nil {
			t.Fatalf("batchmate %d: %v", i, o.err)
		}
		if o.class != "mid" {
			t.Errorf("batchmate %d served by %s, want failover to mid", i, o.device)
		}
	}

	hi := devByName(t, s, "high-0")
	h := hi.health()
	if h.Down == 0 {
		t.Fatalf("high-0 took a die fault but reports no dead processor: %+v", h)
	}
	if h.State != healthOK {
		t.Fatalf("one die fault should degrade, not quarantine: %+v", h)
	}
	if hi.faults.Stats().Dies != 1 {
		t.Fatalf("injector stats %+v, want exactly one die", hi.faults.Stats())
	}

	// The degraded device still serves: its plans route around the dead
	// processor (fault budget is spent, so nothing else is injected).
	out := s.Submit(context.Background(), "googlenet", m, core.MechMuLayer, "high", 1)
	if out.err != nil {
		t.Fatalf("degraded high-0 refused work: %v", out.err)
	}
	if out.device != "high-0" {
		t.Fatalf("pinned to high, served by %s", out.device)
	}
	waitIdle(t, s, time.Second)
}

// TestPanicRecoveryFailover: an injected kernel panic must be recovered
// into a DeviceError, counted as a transient device failure, and the
// request failed over — the server never crashes and nothing leaks.
func TestPanicRecoveryFailover(t *testing.T) {
	s := newSched(t, Config{
		SoCs: []SoCSpec{
			{Name: "high", SoC: soc.Exynos7420, Workers: 1},
			{Name: "mid", SoC: soc.Exynos7880, Workers: 1},
		},
		QueueDepth: 8,
		Faults:     map[string]faults.Config{"high": {PanicRate: 1, MaxFaults: 1, Seed: 7}},
	})
	m := s.cfg.Models["lenet5"]
	out := s.Submit(context.Background(), "lenet5", m, core.MechMuLayer, "", 1)
	if out.err != nil {
		t.Fatalf("request lost to a recovered panic: %v", out.err)
	}
	if out.class != "mid" {
		t.Fatalf("served by %s, want failover to mid after the panic", out.device)
	}
	hi := devByName(t, s, "high-0")
	if got := hi.faults.Stats().Panics; got != 1 {
		t.Fatalf("injected panics %d, want 1", got)
	}
	if h := hi.health(); h.Failures != 1 || h.Down != 0 {
		t.Fatalf("a panic is transient, not a processor death: %+v", h)
	}
	waitIdle(t, s, time.Second)
}

// TestRequeueExcludesFailedDevice: the retry of a failed request must land
// on a device it has not failed on yet; when every device has failed it,
// the terminal error is a typed 503 carrying the device fault.
func TestRequeueExcludesFailedDevice(t *testing.T) {
	s := newSched(t, Config{
		SoCs:       []SoCSpec{{Name: "high", SoC: soc.Exynos7420, Workers: 2}},
		QueueDepth: 8,
		Faults:     map[string]faults.Config{"": {FailRate: 1, Seed: 3}},
	})
	m := s.cfg.Models["lenet5"]
	out := s.Submit(context.Background(), "lenet5", m, core.MechMuLayer, "", 1)
	if !errors.Is(out.err, ErrNoHealthyDevice) {
		t.Fatalf("got %v, want ErrNoHealthyDevice once both devices are excluded", out.err)
	}
	var f *faults.Fault
	if !errors.As(out.err, &f) {
		t.Errorf("terminal error should carry the device fault: %v", out.err)
	}
	if statusFor(out.err) != 503 {
		t.Errorf("status %d for %v, want 503", statusFor(out.err), out.err)
	}
	// Both devices saw exactly one attempt: the retry excluded the first
	// failure's device instead of hammering it again.
	for _, d := range s.Devices() {
		if d.faults.Stats().Fails != 1 {
			t.Errorf("device %s took %d failures, want 1 (exclusion broken)", d.name, d.faults.Stats().Fails)
		}
	}
	waitIdle(t, s, time.Second)
}

// TestRetriesExhausted: with a one-retry budget and plenty of devices, the
// second failure settles the request with the typed budget error.
func TestRetriesExhausted(t *testing.T) {
	s := newSched(t, Config{
		SoCs:       []SoCSpec{{Name: "high", SoC: soc.Exynos7420, Workers: 3}},
		QueueDepth: 8,
		MaxRetries: 1,
		Faults:     map[string]faults.Config{"": {FailRate: 1, Seed: 4}},
	})
	m := s.cfg.Models["lenet5"]
	out := s.Submit(context.Background(), "lenet5", m, core.MechMuLayer, "", 1)
	if !errors.Is(out.err, ErrRetriesExhausted) {
		t.Fatalf("got %v, want ErrRetriesExhausted", out.err)
	}
	if statusFor(out.err) != 503 {
		t.Errorf("status %d, want 503", statusFor(out.err))
	}
	waitIdle(t, s, time.Second)
}

// TestDeadlineTooTightOnRetry: when the cheapest surviving device cannot
// finish a retry inside the request's remaining deadline, the request gets
// the typed feasibility error immediately instead of a doomed retry.
func TestDeadlineTooTightOnRetry(t *testing.T) {
	s := newSched(t, Config{
		SoCs:       []SoCSpec{{Name: "high", SoC: soc.Exynos7420, Workers: 2}},
		QueueDepth: 8,
		TimeScale:  0.005, // googlenet ≈ 30ms simulated → seconds of wall per attempt
		Faults:     map[string]faults.Config{"": {FailRate: 1, Seed: 6}},
	})
	m := s.cfg.Models["googlenet"]
	ctx, cancel := context.WithTimeout(context.Background(), 400*time.Millisecond)
	defer cancel()
	out := s.Submit(ctx, "googlenet", m, core.MechMuLayer, "", 1)
	if !errors.Is(out.err, ErrDeadlineTooTight) {
		t.Fatalf("got %v, want ErrDeadlineTooTight", out.err)
	}
	if statusFor(out.err) != 503 {
		t.Errorf("status %d, want 503", statusFor(out.err))
	}
	waitIdle(t, s, time.Second)
}

// TestHalfOpenProbeRecovery: three consecutive failures quarantine the
// only device; during backoff requests get the typed no-device error; the
// first request after backoff is the half-open probe, and its success
// closes the circuit.
func TestHalfOpenProbeRecovery(t *testing.T) {
	const backoff = 500 * time.Millisecond
	s := newSched(t, Config{
		SoCs:              []SoCSpec{{Name: "high", SoC: soc.Exynos7420, Workers: 1}},
		QueueDepth:        8,
		MaxRetries:        -1, // no failover: each failure settles immediately
		QuarantineBackoff: backoff,
		Faults:            map[string]faults.Config{"": {FailRate: 1, MaxFaults: 3, Seed: 5}},
	})
	m := s.cfg.Models["lenet5"]
	for i := 0; i < 3; i++ {
		out := s.Submit(context.Background(), "lenet5", m, core.MechMuLayer, "", 1)
		if !errors.Is(out.err, ErrRetriesExhausted) {
			t.Fatalf("faulty attempt %d: got %v, want ErrRetriesExhausted", i, out.err)
		}
	}
	d := s.Devices()[0]
	if h := d.health(); h.State != healthQuarantined || h.Failures != 3 {
		t.Fatalf("after three failures: %+v, want quarantined with 3 failures", h)
	}

	out := s.Submit(context.Background(), "lenet5", m, core.MechMuLayer, "", 1)
	if !errors.Is(out.err, ErrNoHealthyDevice) {
		t.Fatalf("during quarantine: got %v, want ErrNoHealthyDevice", out.err)
	}

	time.Sleep(backoff + 100*time.Millisecond)
	// The fault budget is spent, so the half-open probe runs clean and
	// closes the circuit.
	out = s.Submit(context.Background(), "lenet5", m, core.MechMuLayer, "", 1)
	if out.err != nil {
		t.Fatalf("probe after backoff: %v", out.err)
	}
	if h := d.health(); h.State != healthOK || h.Failures != 0 || !h.Until.IsZero() {
		t.Fatalf("after probe success: %+v, want a closed circuit", h)
	}
	waitIdle(t, s, time.Second)
}

// TestCircuitBreakerStateMachine drives one device's breaker directly:
// threshold, backoff doubling with its cap, the single half-open probe
// slot, probe reversion, recovery, and terminal death.
func TestCircuitBreakerStateMachine(t *testing.T) {
	d := &poolDevice{name: "x"}
	now := time.Now()
	const thr = 2
	step := func(perm core.ProcSet) string {
		return d.recordFailure(perm, thr, time.Second, 4*time.Second, now)
	}

	if tr := step(0); tr != "" {
		t.Fatalf("first failure transitioned %q, want none", tr)
	}
	if tr := step(0); tr != "quarantined" {
		t.Fatalf("threshold failure transitioned %q, want quarantined", tr)
	}
	if d.canServe(now) {
		t.Fatal("quarantined device served before its backoff expired")
	}
	if !d.canServe(now.Add(time.Second)) {
		t.Fatal("backoff expiry must make the device a probe candidate")
	}
	if !d.noteDispatch() {
		t.Fatal("first dispatch after backoff must claim the probe slot")
	}
	if d.noteDispatch() {
		t.Fatal("the half-open circuit has exactly one probe slot")
	}
	// A probe failure re-quarantines with a doubled backoff.
	if tr := step(0); tr != "quarantined" {
		t.Fatalf("probe failure transitioned %q, want quarantined", tr)
	}
	if until := d.health().Until; !until.Equal(now.Add(2 * time.Second)) {
		t.Fatalf("backoff after probe failure ends at %v, want now+2s", until)
	}
	// Doubling caps at the configured maximum.
	step(0)
	if until := d.health().Until; !until.Equal(now.Add(4 * time.Second)) {
		t.Fatalf("third backoff ends at %v, want now+4s", until)
	}
	step(0)
	if until := d.health().Until; !until.Equal(now.Add(4 * time.Second)) {
		t.Fatalf("backoff exceeded its cap: ends at %v", until)
	}
	// A claimed probe with no verdict reverts to quarantine.
	d.noteDispatch()
	d.revertProbe()
	if st := d.health().State; st != healthQuarantined {
		t.Fatalf("reverted probe left state %v, want quarantined", st)
	}
	if rec := d.recordSuccess(); !rec {
		t.Fatal("success out of quarantine must report recovery")
	}
	if h := d.health(); h.State != healthOK || h.Failures != 0 || h.Down != 0 {
		t.Fatalf("after recovery: %+v, want a clean device", h)
	}
	// Losing both processors is terminal: no probe, no recovery.
	if tr := step(core.ProcSetCPU); tr != "degraded" {
		t.Fatalf("CPU death transitioned %q, want degraded", tr)
	}
	if tr := step(core.ProcSetGPU); tr != "dead" {
		t.Fatalf("GPU death transitioned %q, want dead", tr)
	}
	if d.canServe(now.Add(time.Hour)) {
		t.Fatal("dead device must never serve")
	}
	d.recordSuccess()
	if st := d.health().State; st != healthDead {
		t.Fatalf("recordSuccess revived a dead device to %v", st)
	}
}

// TestCancellationRacesRetry: client cancellations racing the failover
// path must neither strand queue entries nor produce untyped errors; run
// under -race this hammers the settlement paths.
func TestCancellationRacesRetry(t *testing.T) {
	s := newSched(t, Config{
		SoCs:       []SoCSpec{{Name: "high", SoC: soc.Exynos7420, Workers: 4}},
		QueueDepth: 64,
		MaxRetries: 8,
		Faults:     map[string]faults.Config{"": {FailRate: 1, Seed: 9}},
	})
	m := s.cfg.Models["lenet5"]
	const n = 12
	var wg sync.WaitGroup
	outs := make([]outcome, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			go func() {
				time.Sleep(time.Duration(i%5) * 200 * time.Microsecond)
				cancel()
			}()
			outs[i] = s.Submit(ctx, "lenet5", m, core.MechMuLayer, "", 1)
		}(i)
	}
	wg.Wait()
	for i, o := range outs {
		switch {
		case o.err == nil:
			t.Errorf("request %d succeeded on an always-failing pool", i)
		case errors.Is(o.err, context.Canceled),
			errors.Is(o.err, ErrRetriesExhausted),
			errors.Is(o.err, ErrNoHealthyDevice):
		default:
			t.Errorf("request %d: untyped terminal error %v", i, o.err)
		}
	}
	waitIdle(t, s, 2*time.Second)
}

// TestChaosSeededFaults is the acceptance chaos run: a seeded fault mix
// (transient failures, stalls, panics, and a trickle of processor deaths)
// tuned so roughly a tenth of requests take a fault mid-run — per-kernel
// rates compound over the ~10²-kernel plans, so the per-kernel numbers
// are far below 0.1. Every request must end 200 or a typed 503, no panic
// may escape, no queue entry may strand, and the goroutine count must
// return to baseline after drain.
func TestChaosSeededFaults(t *testing.T) {
	base := runtime.NumGoroutine()
	cfg := Config{
		SoCs: []SoCSpec{
			{Name: "high", SoC: soc.Exynos7420, Workers: 2},
			{Name: "mid", SoC: soc.Exynos7880, Workers: 2},
		},
		QueueDepth:        128,
		MaxBatch:          4,
		BatchWait:         time.Millisecond,
		MaxRetries:        3,
		QuarantineBackoff: 50 * time.Millisecond,
		Models:            testModels(t),
		Faults: map[string]faults.Config{"": {
			Seed:        42,
			FailRate:    0.002,
			StallRate:   0.001,
			StallFactor: 2,
			DieRate:     0.0002,
			PanicRate:   0.0005,
		}},
	}
	s, err := NewScheduler(cfg, metrics.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}

	const workers, perWorker = 16, 10
	names := []string{"googlenet", "lenet5"}
	var mu sync.Mutex
	counts := map[int]int{}
	var untyped []error
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				name := names[(w+i)%len(names)]
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
				out := s.Submit(ctx, name, cfg.Models[name], core.MechMuLayer, "", 1)
				cancel()
				code := statusFor(out.err)
				mu.Lock()
				counts[code]++
				if code != 200 && code != 503 {
					untyped = append(untyped, out.err)
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()

	for _, e := range untyped {
		t.Errorf("request ended with an untyped error: %v", e)
	}
	total := 0
	for _, n := range counts {
		total += n
	}
	// Availability under chaos: failover should recover most faulted
	// requests, so well over half must succeed.
	if counts[200] < total/2 {
		t.Fatalf("availability collapsed under chaos: %v", counts)
	}
	waitIdle(t, s, 2*time.Second)

	var injected, kernels int64
	for _, d := range s.Devices() {
		if d.faults != nil {
			st := d.faults.Stats()
			injected += st.Injected()
			kernels += st.Kernels
		}
	}
	if injected == 0 {
		t.Fatal("chaos run injected no faults; the wiring is broken")
	}
	t.Logf("chaos: codes=%v injected=%d kernels=%d", counts, injected, kernels)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain after chaos: %v", err)
	}
	if got := s.QueueDepth(); got != 0 {
		t.Fatalf("stranded queue entries after drain: %d", got)
	}
	deadline := time.Now().Add(3 * time.Second)
	for runtime.NumGoroutine() > base+4 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines %d vs baseline %d: leak after chaos drain", runtime.NumGoroutine(), base)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
