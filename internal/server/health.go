package server

import (
	"errors"
	"fmt"
	"time"

	"mulayer/internal/core"
	"mulayer/internal/device"
	"mulayer/internal/exec"
	"mulayer/internal/faults"
)

// Failover errors, mapped to 503 by the handler: the service is degraded,
// not the request malformed.
var (
	// ErrRetriesExhausted means a request kept landing on failing devices
	// until its retry budget ran out.
	ErrRetriesExhausted = errors.New("server: device failed and retries are exhausted")
	// ErrDeadlineTooTight means a device failed and the request's remaining
	// deadline cannot survive a retry on any other device.
	ErrDeadlineTooTight = errors.New("server: device failed and the deadline cannot survive a retry")
	// ErrNoHealthyDevice means every device that could serve the request is
	// quarantined, probing, or dead.
	ErrNoHealthyDevice = errors.New("server: no healthy device")
)

// DeviceError wraps a device-level failure: an injected fault or a panic
// recovered from a device worker. The scheduler treats it as grounds for
// failover rather than a request error.
type DeviceError struct {
	Device string
	Cause  error
}

// Error implements error.
func (e *DeviceError) Error() string {
	return fmt.Sprintf("server: device %s failed: %v", e.Device, e.Cause)
}

// Unwrap implements errors.Unwrap.
func (e *DeviceError) Unwrap() error { return e.Cause }

// isDeviceFailure reports whether err blames the device (failover) rather
// than the request (terminal error). A watchdog trip counts: a kernel
// overrunning its predicted-time budget is a stalled device, and the
// circuit breaker should treat it like any other device fault.
func isDeviceFailure(err error) bool {
	var de *DeviceError
	var f *faults.Fault
	var wd *exec.WatchdogError
	return errors.As(err, &de) || errors.As(err, &f) || errors.As(err, &wd)
}

// healthState is the circuit-breaker state of one pool device.
type healthState int

const (
	// healthOK: the device takes work normally.
	healthOK healthState = iota
	// healthQuarantined: too many consecutive failures; the device takes no
	// work until its backoff expires, then becomes a probe candidate.
	healthQuarantined
	// healthProbing: the half-open state — exactly one probe batch is in
	// flight; success closes the circuit, failure re-quarantines with a
	// doubled backoff.
	healthProbing
	// healthDead: the device can serve nothing (both CPU and GPU died).
	healthDead
)

// String implements fmt.Stringer.
func (h healthState) String() string {
	switch h {
	case healthOK:
		return "ok"
	case healthQuarantined:
		return "quarantined"
	case healthProbing:
		return "probing"
	case healthDead:
		return "dead"
	}
	return fmt.Sprintf("healthState(%d)", int(h))
}

// procSetOfType maps a device processor class to its core mask bit.
func procSetOfType(t device.Type) core.ProcSet {
	switch t {
	case device.CPU:
		return core.ProcSetCPU
	case device.NPU:
		return core.ProcSetNPU
	}
	return core.ProcSetGPU
}

// healthSnapshot is one device's health view (for /readyz and /statusz).
type healthSnapshot struct {
	State    healthState
	Down     core.ProcSet
	Failures int
	Until    time.Time // quarantine expiry (zero unless quarantined)
}

// health returns a consistent snapshot.
func (d *poolDevice) health() healthSnapshot {
	d.hmu.Lock()
	defer d.hmu.Unlock()
	return healthSnapshot{State: d.state, Down: d.down, Failures: d.failures, Until: d.until}
}

// canServe reports whether the dispatcher may consider the device now:
// healthy, or quarantined with the backoff expired (a probe candidate).
// Probing devices are excluded — the half-open circuit admits exactly the
// one probe batch already in flight.
func (d *poolDevice) canServe(now time.Time) bool {
	d.hmu.Lock()
	defer d.hmu.Unlock()
	switch d.state {
	case healthOK:
		return true
	case healthQuarantined:
		return !now.Before(d.until)
	}
	return false
}

// runCfg returns the device's run configuration for a mechanism — the
// degraded-mode mask rides on RunConfig.Unhealthy, so a device with a dead
// processor plans (and caches plans) around it.
func (d *poolDevice) runCfg(mech core.Mechanism) core.RunConfig {
	d.hmu.Lock()
	down := d.down
	d.hmu.Unlock()
	return core.RunConfig{Mechanism: mech, Unhealthy: down}
}

// noteDispatch claims the half-open probe slot when the dispatcher picks a
// quarantined-past-backoff device; returns true when this dispatch is the
// probe.
func (d *poolDevice) noteDispatch() bool {
	d.hmu.Lock()
	defer d.hmu.Unlock()
	if d.state == healthQuarantined {
		d.state = healthProbing
		return true
	}
	return false
}

// revertProbe returns a claimed probe slot to quarantine when the probe
// batch produced no verdict (every member died while queued, or the run
// failed for reasons that do not blame the device). The expired backoff
// stays expired, so the device is immediately a probe candidate again.
func (d *poolDevice) revertProbe() {
	d.hmu.Lock()
	defer d.hmu.Unlock()
	if d.state == healthProbing {
		d.state = healthQuarantined
	}
}

// recordSuccess closes the circuit after a clean batch.
func (d *poolDevice) recordSuccess() (recovered bool) {
	d.hmu.Lock()
	defer d.hmu.Unlock()
	recovered = d.state == healthProbing || d.state == healthQuarantined
	if d.state != healthDead {
		d.state = healthOK
	}
	d.failures = 0
	d.backoff = 0
	d.until = time.Time{}
	return recovered
}

// recordFailure applies one device failure to the circuit breaker:
// permDown marks processors the fault killed permanently. It returns the
// transition taken ("" when the failure stayed under the threshold).
func (d *poolDevice) recordFailure(permDown core.ProcSet, threshold int, backoff, backoffMax time.Duration, now time.Time) string {
	d.hmu.Lock()
	defer d.hmu.Unlock()
	d.down |= permDown
	if d.down.Has(core.ProcSetCPU) && d.down.Has(core.ProcSetGPU) {
		d.state = healthDead
		return "dead"
	}
	d.failures++
	if d.state == healthProbing || d.failures >= threshold {
		d.state = healthQuarantined
		if d.backoff <= 0 {
			d.backoff = backoff
		} else {
			d.backoff *= 2
			if d.backoff > backoffMax {
				d.backoff = backoffMax
			}
		}
		d.until = now.Add(d.backoff)
		return "quarantined"
	}
	if permDown != 0 {
		return "degraded"
	}
	return ""
}
