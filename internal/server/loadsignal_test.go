package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"sync"
	"testing"
	"time"

	"mulayer/internal/soc"
)

// TestStatuszJSON drives a paced pool and checks the machine-readable
// load signal: schema stability, queue pressure, per-device health, and
// the draining flip — the contract the fleet frontend routes by.
func TestStatuszJSON(t *testing.T) {
	s, ts := newTestServer(t, Config{
		SoCs: []SoCSpec{
			{Name: "high", SoC: soc.Exynos7420, Workers: 1},
			{Name: "mid", SoC: soc.Exynos7880, Workers: 1},
		},
		QueueDepth: 16,
		TimeScale:  5,
	})
	getSignal := func() LoadSignal {
		t.Helper()
		resp, err := http.Get(ts.URL + "/statusz.json")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("statusz.json %d", resp.StatusCode)
		}
		var sig LoadSignal
		if err := json.NewDecoder(resp.Body).Decode(&sig); err != nil {
			t.Fatal(err)
		}
		return sig
	}

	sig := getSignal()
	if !sig.Ready || sig.Draining {
		t.Fatalf("fresh pool not ready: %+v", sig)
	}
	if sig.QueueCap != 16 || sig.QueueDepth != 0 {
		t.Fatalf("queue pressure %+v", sig)
	}
	if len(sig.Devices) != 2 {
		t.Fatalf("devices %+v", sig.Devices)
	}
	for _, d := range sig.Devices {
		if d.Health != "ok" || d.Device == "" || d.SoC == "" {
			t.Fatalf("device row %+v", d)
		}
	}

	// Serve some paced traffic; the queue-wait p95 becomes observable.
	for i := 0; i < 4; i++ {
		resp, body := postInfer(t, ts.URL, InferRequest{Model: "lenet5"})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("infer: %d (%s)", resp.StatusCode, body)
		}
	}
	sig = getSignal()
	if sig.QueueWaitP95MS < 0 {
		t.Fatalf("negative queue-wait p95: %+v", sig)
	}

	// With paced work on every device the forward predictor must see it:
	// the predicted wait is the least-loaded device's backlog, so both
	// devices carry work while the signal is read. Plain http.Post in the
	// goroutines — test helpers must not t.Fatal off the test goroutine.
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		model := "googlenet"
		if i%2 == 1 {
			model = "alexnet"
		}
		payload, _ := json.Marshal(InferRequest{Model: model})
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/infer", "application/json", bytes.NewReader(payload))
			if err == nil {
				resp.Body.Close()
			}
		}()
	}
	sawWait := false
	for deadline := time.Now().Add(5 * time.Second); time.Now().Before(deadline); {
		if getSignal().PredictedWaitMS > 0 {
			sawWait = true
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	wg.Wait()
	if !sawWait {
		t.Fatal("predicted_wait_ms never rose above 0 with paced work in flight")
	}

	// Draining flips ready off — the frontend must stop routing here.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.sched.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	sig = getSignal()
	if sig.Ready || !sig.Draining {
		t.Fatalf("draining pool still ready: %+v", sig)
	}
}
