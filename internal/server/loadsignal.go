package server

import (
	"math"
	"net/http"
	"time"
)

// LoadSignal is the machine-readable load and health summary served at
// GET /statusz.json: the signal the fleet frontend (internal/frontend)
// routes by, and a small stable schema for ops scripting. /statusz stays
// the full human-oriented view; this endpoint carries only what a remote
// placement decision needs — readiness, queue pressure, the overload
// ladder level, the recent queue-wait p95, the least-loaded device's
// predicted backlog, and per-device health.
type LoadSignal struct {
	// Ready mirrors /readyz: admitting and at least one device alive.
	Ready    bool `json:"ready"`
	Draining bool `json:"draining"`
	// QueueDepth / QueueCap is the bounded admission queue's pressure.
	QueueDepth int `json:"queue_depth"`
	QueueCap   int `json:"queue_cap"`
	// OverloadLevel is the brownout ladder level (0 = normal service).
	OverloadLevel int `json:"overload_level"`
	// QueueWaitP95MS is the admission-to-dispatch wait p95 in wall
	// milliseconds: the overload controller's recent-window p95 when the
	// ladder is armed, the cumulative histogram's p95 otherwise.
	QueueWaitP95MS float64 `json:"queue_wait_p95_ms"`
	// PredictedWaitMS is the predicted wall-clock completion for a
	// request arriving now: committed device backlog plus every open
	// batching window's fused cost plus the window time left. Unlike the
	// queue-wait p95 — trailing history, and quantized to histogram
	// bucket bounds — this is an exact forward prediction of current
	// state, so it is the figure remote placement should rank by.
	PredictedWaitMS float64 `json:"predicted_wait_ms"`
	// BacklogMS is the least-loaded serveable device's predicted
	// completion time in wall milliseconds (0 without pacing — makespan
	// predictions then cost no wall time).
	BacklogMS float64 `json:"backlog_ms"`
	// Devices is each device's circuit-breaker health.
	Devices []LoadSignalDevice `json:"devices"`
}

// LoadSignalDevice is one device's health row in the load signal.
type LoadSignalDevice struct {
	Device string `json:"device"`
	SoC    string `json:"soc"`
	// Health is ok | quarantined | probing | dead.
	Health string `json:"health"`
}

// LoadSignal assembles the /statusz.json reply.
func (s *Server) LoadSignal() LoadSignal {
	draining := !s.healthy.Load() || s.sched.Draining()
	sig := LoadSignal{
		Ready:          !draining && !s.sched.AllDead(),
		Draining:       draining,
		QueueDepth:     s.sched.QueueDepth(),
		QueueCap:       s.cfg.QueueDepth,
		OverloadLevel:  s.sched.OverloadLevel(),
		QueueWaitP95MS:  s.sched.queueWaitP95MS(),
		PredictedWaitMS: s.sched.predictedWaitMS(),
		BacklogMS:       s.sched.minBacklogMS(),
	}
	for _, d := range s.sched.Devices() {
		sig.Devices = append(sig.Devices, LoadSignalDevice{
			Device: d.name, SoC: d.class, Health: d.health().State.String(),
		})
	}
	return sig
}

func (s *Server) handleStatuszJSON(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.LoadSignal())
}

// queueWaitP95MS is the queue-wait p95 in wall milliseconds: the
// overload controller's recent window when armed (responsive under
// shifting load), otherwise the worst per-class p95 of the cumulative
// histogram.
func (s *Scheduler) queueWaitP95MS() float64 {
	if s.overload != nil {
		_, p95, _, _ := s.overload.snapshot()
		return float64(p95) / float64(time.Millisecond)
	}
	var worst float64
	_, hists := s.mets.queueWait.Snapshot()
	for _, h := range hists {
		if h.Count() == 0 {
			continue
		}
		if p := h.Quantile(0.95) * 1e3; p > worst {
			worst = p
		}
	}
	return worst
}

// minBacklogMS is the least-loaded serveable device's predicted
// completion, in wall milliseconds under the pacing time scale.
func (s *Scheduler) minBacklogMS() float64 {
	min, ok := s.minServeableBacklog()
	if !ok {
		return 0
	}
	return float64(s.wallOf(min)) / float64(time.Millisecond)
}

// predictedWaitMS is the predicted wall-clock completion for a request
// arriving now: the least-loaded serveable device's committed backlog
// plus the fused cost of every still-open batching window, scaled to
// wall time, plus the wall-clock window time left before the last open
// window seals — the same predictor deadline admission and Retry-After
// run on, exported for the fleet frontend's replica ranking.
func (s *Scheduler) predictedWaitMS() float64 {
	min, ok := s.minServeableBacklog()
	if !ok {
		return 0
	}
	openCost, windowRem := s.openWindowCost()
	wall := s.wallOf(min+openCost) + windowRem
	return float64(wall) / float64(time.Millisecond)
}

// minServeableBacklog is the least-loaded serveable device's predicted
// completion in simulated time; ok is false when nothing can serve.
func (s *Scheduler) minServeableBacklog() (min time.Duration, ok bool) {
	now := time.Now()
	min = time.Duration(math.MaxInt64)
	for _, d := range s.devices {
		if !d.canServe(now) {
			continue
		}
		ok = true
		if b := d.predictedCompletion(); b < min {
			min = b
		}
	}
	return min, ok
}
