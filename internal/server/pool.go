package server

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"mulayer/internal/core"
	"mulayer/internal/faults"
)

// poolDevice is one simulated device: a core.Runtime plus its dispatch
// queue. A simulated SoC runs one inference at a time, so each device is
// served by exactly one worker goroutine; concurrency comes from the pool
// having many devices.
type poolDevice struct {
	id    int
	name  string // e.g. "high-0"
	class string // SoC class name ("high", "mid", ...)
	rt    *core.Runtime

	// queue carries dispatched batches; its capacity equals the global
	// request bound and every batch holds at least one request, so sends
	// under the scheduler mutex can never block.
	queue chan *batchGroup

	// backlogNS is the predicted fused makespan of every dispatched but
	// unfinished batch on this device — the makespan term the dispatcher
	// minimizes.
	backlogNS atomic.Int64
	// depth is the number of dispatched but unfinished requests.
	depth atomic.Int64
	// served counts completed (2xx) inferences.
	served atomic.Int64

	// faults is the device's fault injector; nil when injection is off (the
	// executor hook is then nil too — the healthy path pays nothing).
	faults *faults.Injector

	// Circuit-breaker state, guarded by hmu. Lock order: s.mu may be held
	// when taking hmu, never the reverse.
	hmu      sync.Mutex
	state    healthState
	down     core.ProcSet // processors that died permanently
	failures int          // consecutive device failures
	backoff  time.Duration
	until    time.Time // quarantine expiry
}

// buildPool instantiates the device pool: Workers independent runtimes
// per configured SoC class.
func buildPool(cfg Config) ([]*poolDevice, error) {
	var pool []*poolDevice
	for _, spec := range cfg.SoCs {
		for w := 0; w < spec.Workers; w++ {
			rt, err := core.NewRuntime(spec.SoC())
			if err != nil {
				return nil, fmt.Errorf("server: build %s device %d: %w", spec.Name, w, err)
			}
			d := &poolDevice{
				id:    len(pool),
				name:  fmt.Sprintf("%s-%d", spec.Name, w),
				class: spec.Name,
				rt:    rt,
				queue: make(chan *batchGroup, cfg.QueueDepth),
			}
			// Class-specific fault configs win over the "" catch-all; a
			// per-device salt gives every device its own deterministic
			// stream from the one fleet seed.
			if fc, ok := cfg.Faults[spec.Name]; ok && fc.Enabled() {
				d.faults = faults.New(fc, int64(d.id))
			} else if fc, ok := cfg.Faults[""]; ok && fc.Enabled() {
				d.faults = faults.New(fc, int64(d.id))
			}
			pool = append(pool, d)
		}
	}
	return pool, nil
}

// predictedCompletion is the device's current predicted completion time:
// its outstanding backlog in simulated nanoseconds.
func (d *poolDevice) predictedCompletion() time.Duration {
	return time.Duration(d.backlogNS.Load())
}
