package server

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"mulayer/internal/core"
	"mulayer/internal/models"
	"mulayer/internal/server/metrics"
	"mulayer/internal/soc"
)

// testModels loads a small model set once per test.
func testModels(t *testing.T) map[string]*models.Model {
	t.Helper()
	out := map[string]*models.Model{}
	for name, build := range map[string]func(models.Config) (*models.Model, error){
		"googlenet": models.GoogLeNet,
		"lenet5":    models.LeNet5,
	} {
		m, err := build(models.Config{})
		if err != nil {
			t.Fatal(err)
		}
		out[name] = m
	}
	return out
}

func newSched(t *testing.T, cfg Config) *Scheduler {
	t.Helper()
	if cfg.Models == nil {
		cfg.Models = testModels(t)
	}
	s, err := NewScheduler(cfg, metrics.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Drain(ctx)
	})
	return s
}

func TestSubmitBasic(t *testing.T) {
	s := newSched(t, Config{
		SoCs:       []SoCSpec{{Name: "high", SoC: soc.Exynos7420, Workers: 2}},
		QueueDepth: 8,
	})
	out := s.Submit(context.Background(), "googlenet", s.cfg.Models["googlenet"], core.MechMuLayer, "", 1)
	if out.err != nil {
		t.Fatal(out.err)
	}
	if out.simLat <= 0 || out.energyJ <= 0 {
		t.Fatalf("degenerate result %+v", out)
	}
	if out.batchRows != 1 {
		t.Fatalf("batch rows %d with batching off, want 1", out.batchRows)
	}
	if out.class != "high" {
		t.Fatalf("class %q", out.class)
	}
	if s.QueueDepth() != 0 {
		t.Fatalf("queue depth %d after completion", s.QueueDepth())
	}
}

// TestDispatchPrefersFasterSoC: with one idle device per class, the
// makespan dispatcher must pick the class whose predicted latency is
// lower — the high-end SoC for every evaluated network.
func TestDispatchPrefersFasterSoC(t *testing.T) {
	s := newSched(t, Config{
		SoCs: []SoCSpec{
			{Name: "mid", SoC: soc.Exynos7880, Workers: 1},
			{Name: "high", SoC: soc.Exynos7420, Workers: 1},
		},
		QueueDepth: 8,
	})
	for i := 0; i < 3; i++ {
		out := s.Submit(context.Background(), "googlenet", s.cfg.Models["googlenet"], core.MechMuLayer, "", 1)
		if out.err != nil {
			t.Fatal(out.err)
		}
		if out.class != "high" {
			t.Fatalf("idle pool dispatched to %q, want high (lower predicted latency)", out.class)
		}
	}
}

func TestSoCClassPinningAndNoDevice(t *testing.T) {
	s := newSched(t, Config{
		SoCs: []SoCSpec{
			{Name: "mid", SoC: soc.Exynos7880, Workers: 1},
			{Name: "high", SoC: soc.Exynos7420, Workers: 1},
		},
		QueueDepth: 8,
	})
	out := s.Submit(context.Background(), "googlenet", s.cfg.Models["googlenet"], core.MechMuLayer, "mid", 1)
	if out.err != nil {
		t.Fatal(out.err)
	}
	if out.class != "mid" {
		t.Fatalf("pinned to mid, ran on %q", out.class)
	}
	out = s.Submit(context.Background(), "googlenet", s.cfg.Models["googlenet"], core.MechMuLayer, "tpu", 1)
	if !errors.Is(out.err, ErrNoDevice) {
		t.Fatalf("unknown class: got %v, want ErrNoDevice", out.err)
	}
}

// TestQueueFull: a single slow (paced) device with a one-slot queue must
// reject the second concurrent request with ErrQueueFull.
func TestQueueFull(t *testing.T) {
	s := newSched(t, Config{
		SoCs:       []SoCSpec{{Name: "high", SoC: soc.Exynos7420, Workers: 1}},
		QueueDepth: 1,
		TimeScale:  0.05, // ~30ms simulated → ~600ms wall: device stays busy
	})
	first := make(chan outcome, 1)
	go func() {
		first <- s.Submit(context.Background(), "googlenet", s.cfg.Models["googlenet"], core.MechMuLayer, "", 1)
	}()
	// Wait until the first request is admitted.
	deadline := time.Now().Add(2 * time.Second)
	for s.QueueDepth() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first request never admitted")
		}
		time.Sleep(time.Millisecond)
	}
	out := s.Submit(context.Background(), "googlenet", s.cfg.Models["googlenet"], core.MechMuLayer, "", 1)
	if !errors.Is(out.err, ErrQueueFull) {
		t.Fatalf("got %v, want ErrQueueFull", out.err)
	}
	if n := s.RetryAfter(); n < 1 || n > 30 {
		t.Fatalf("retry-after %d out of range", n)
	}
	if o := <-first; o.err != nil {
		t.Fatalf("first request: %v", o.err)
	}
}

// TestQueuedRequestDeadline: a request stuck behind a slow one times out
// while queued and reports the context error.
func TestQueuedRequestDeadline(t *testing.T) {
	s := newSched(t, Config{
		SoCs:       []SoCSpec{{Name: "high", SoC: soc.Exynos7420, Workers: 1}},
		QueueDepth: 8,
		TimeScale:  0.05,
	})
	first := make(chan outcome, 1)
	go func() {
		first <- s.Submit(context.Background(), "googlenet", s.cfg.Models["googlenet"], core.MechMuLayer, "", 1)
	}()
	deadline := time.Now().Add(2 * time.Second)
	for s.QueueDepth() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first request never admitted")
		}
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	out := s.Submit(ctx, "lenet5", s.cfg.Models["lenet5"], core.MechMuLayer, "", 1)
	if !errors.Is(out.err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want DeadlineExceeded", out.err)
	}
	if o := <-first; o.err != nil {
		t.Fatalf("first request: %v", o.err)
	}
}

// TestMakespanSpreadsLoad: many concurrent requests across two identical
// devices must land on both (minimum-completion-time dispatch balances
// identical queues).
func TestMakespanSpreadsLoad(t *testing.T) {
	s := newSched(t, Config{
		SoCs:       []SoCSpec{{Name: "high", SoC: soc.Exynos7420, Workers: 2}},
		QueueDepth: 64,
		TimeScale:  2, // paced but quick (~15ms wall per inference)
	})
	const n = 8
	var wg sync.WaitGroup
	outs := make([]outcome, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			outs[i] = s.Submit(context.Background(), "googlenet", s.cfg.Models["googlenet"], core.MechMuLayer, "", 1)
		}(i)
	}
	wg.Wait()
	used := map[string]int{}
	for _, o := range outs {
		if o.err != nil {
			t.Fatal(o.err)
		}
		used[o.device]++
	}
	if len(used) != 2 {
		t.Fatalf("all %d requests landed on %v; want both devices used", n, used)
	}
	for _, d := range s.Devices() {
		if got := d.predictedCompletion(); got != 0 {
			t.Fatalf("device %s backlog %v after drain to idle", d.name, got)
		}
	}
}

func TestDrainRejectsAndCompletes(t *testing.T) {
	s := newSched(t, Config{
		SoCs:       []SoCSpec{{Name: "high", SoC: soc.Exynos7420, Workers: 1}},
		QueueDepth: 8,
	})
	out := s.Submit(context.Background(), "lenet5", s.cfg.Models["lenet5"], core.MechMuLayer, "", 1)
	if out.err != nil {
		t.Fatal(out.err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	out = s.Submit(context.Background(), "lenet5", s.cfg.Models["lenet5"], core.MechMuLayer, "", 1)
	if !errors.Is(out.err, ErrDraining) {
		t.Fatalf("post-drain submit: got %v, want ErrDraining", out.err)
	}
	// Drain is idempotent.
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("second drain: %v", err)
	}
}

func TestPlanCacheIsPerClass(t *testing.T) {
	s := newSched(t, Config{
		SoCs: []SoCSpec{
			{Name: "high", SoC: soc.Exynos7420, Workers: 1},
			{Name: "mid", SoC: soc.Exynos7880, Workers: 1},
		},
		QueueDepth: 8,
	})
	m := s.cfg.Models["googlenet"]
	rc := runCfg(core.MechMuLayer)
	var costs []time.Duration
	for _, class := range []string{"high", "mid"} {
		c, err := s.caches[class].Estimate(m, rc, 1)
		if err != nil {
			t.Fatal(err)
		}
		costs = append(costs, c)
	}
	if costs[0] == costs[1] {
		t.Fatalf("high and mid predicted costs identical (%v); each class needs its own cache", costs[0])
	}
	// A second estimate for the same key must hit the memo, and a new row
	// count must reuse the cached plan (one plan, two makespans).
	before := s.caches["high"].Stats()
	if _, err := s.caches["high"].Estimate(m, rc, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.caches["high"].Estimate(m, rc, 4); err != nil {
		t.Fatal(err)
	}
	after := s.caches["high"].Stats()
	if after.Hits <= before.Hits {
		t.Fatalf("repeated estimate did not hit the cache: %+v -> %+v", before, after)
	}
	if after.Plans != 1 || after.Makespans != 2 {
		t.Fatalf("want 1 plan with 2 memoized makespans, got %+v", after)
	}
}
