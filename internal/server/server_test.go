package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"mulayer/internal/soc"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Models == nil {
		cfg.Models = testModels(t)
	}
	base := runtime.NumGoroutine()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.sched.Drain(ctx)
		// Every worker, window timer, and pacing timer must be gone after
		// the drain — a small slack absorbs httptest and runtime helpers.
		deadline := time.Now().Add(3 * time.Second)
		for runtime.NumGoroutine() > base+4 {
			if time.Now().After(deadline) {
				t.Errorf("goroutines %d vs baseline %d: leak after drain", runtime.NumGoroutine(), base)
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
	})
	return s, ts
}

func postInfer(t *testing.T, url string, req InferRequest) (*http.Response, []byte) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(url+"/v1/infer", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// TestEndToEnd drives the full API: concurrent inferences for two models,
// model listing, health, status, and metrics exposition.
func TestEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Config{
		SoCs: []SoCSpec{
			{Name: "high", SoC: soc.Exynos7420, Workers: 2},
			{Name: "mid", SoC: soc.Exynos7880, Workers: 1},
		},
		QueueDepth: 32,
	})

	const perModel = 6
	type reply struct {
		code int
		body InferResponse
	}
	var wg sync.WaitGroup
	replies := make([]reply, 2*perModel)
	for i := 0; i < 2*perModel; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			model := []string{"googlenet", "lenet5"}[i%2]
			resp, data := postInfer(t, ts.URL, InferRequest{Model: model, Mechanism: "mulayer"})
			replies[i].code = resp.StatusCode
			if resp.StatusCode == http.StatusOK {
				if err := json.Unmarshal(data, &replies[i].body); err != nil {
					t.Errorf("bad JSON: %v (%s)", err, data)
				}
			} else {
				t.Errorf("request %d: status %d (%s)", i, resp.StatusCode, data)
			}
		}(i)
	}
	wg.Wait()
	for i, r := range replies {
		if r.code != http.StatusOK {
			continue
		}
		if r.body.LatencyUS <= 0 || r.body.EnergyMJ <= 0 {
			t.Errorf("reply %d: degenerate report %+v", i, r.body)
		}
		if r.body.Device == "" || r.body.SoC == "" {
			t.Errorf("reply %d: missing placement %+v", i, r.body)
		}
	}

	// Model listing.
	resp, err := http.Get(ts.URL + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Models     []ModelInfo `json:"models"`
		Mechanisms []string    `json:"mechanisms"`
		SoCs       []string    `json:"socs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list.Models) != 2 || len(list.SoCs) != 2 || len(list.Mechanisms) == 0 {
		t.Fatalf("bad listing %+v", list)
	}

	// Health.
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz %d", resp.StatusCode)
	}

	// Status.
	resp, err = http.Get(ts.URL + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	var st struct {
		QueueDepth int `json:"queue_depth"`
		Devices    []deviceStatus
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(st.Devices) != 3 {
		t.Fatalf("statusz devices %+v", st.Devices)
	}

	// Metrics: the series the issue calls for must be present.
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mdata, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	metricsText := string(mdata)
	for _, want := range []string{
		`mulayer_requests_total{model="googlenet",soc="high",mechanism="mulayer",code="200"}`,
		"# TYPE mulayer_inference_latency_seconds histogram",
		"mulayer_queue_wait_seconds_count",
		"mulayer_queue_depth 0",
		"# TYPE mulayer_rejected_total counter",
		"mulayer_wall_seconds_sum",
	} {
		if !strings.Contains(metricsText, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{
		SoCs:       []SoCSpec{{Name: "high", SoC: soc.Exynos7420, Workers: 1}},
		QueueDepth: 8,
	})
	resp, _ := postInfer(t, ts.URL, InferRequest{Model: "nope"})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown model: %d", resp.StatusCode)
	}
	resp, _ = postInfer(t, ts.URL, InferRequest{Model: "lenet5", Mechanism: "warp"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown mechanism: %d", resp.StatusCode)
	}
	resp, _ = postInfer(t, ts.URL, InferRequest{Model: "lenet5", SoC: "tpu"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown soc: %d", resp.StatusCode)
	}
	r, err := http.Post(ts.URL+"/v1/infer", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad JSON: %d", r.StatusCode)
	}
}

// TestQueueFullHTTP: a tiny queue on a paced device must answer 503 with
// a Retry-After header once saturated.
func TestQueueFullHTTP(t *testing.T) {
	_, ts := newTestServer(t, Config{
		SoCs:       []SoCSpec{{Name: "high", SoC: soc.Exynos7420, Workers: 1}},
		QueueDepth: 1,
		TimeScale:  0.05,
	})
	const n = 6
	codes := make([]int, n)
	headers := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, _ := postInfer(t, ts.URL, InferRequest{Model: "googlenet", TimeoutMS: 5000})
			codes[i] = resp.StatusCode
			headers[i] = resp.Header.Get("Retry-After")
		}(i)
	}
	wg.Wait()
	var ok, rejected int
	for i, c := range codes {
		switch c {
		case http.StatusOK:
			ok++
		case http.StatusServiceUnavailable:
			rejected++
			if headers[i] == "" {
				t.Errorf("503 reply %d missing Retry-After", i)
			}
		default:
			t.Errorf("unexpected status %d", c)
		}
	}
	if ok == 0 || rejected == 0 {
		t.Fatalf("want both 200s and 503s under overload, got ok=%d rejected=%d", ok, rejected)
	}
}

// TestRequestTimeoutHTTP: a deadline shorter than the paced inference
// yields 504.
func TestRequestTimeoutHTTP(t *testing.T) {
	_, ts := newTestServer(t, Config{
		SoCs:       []SoCSpec{{Name: "high", SoC: soc.Exynos7420, Workers: 1}},
		QueueDepth: 8,
		TimeScale:  0.05, // googlenet ≈ 600ms wall
	})
	resp, body := postInfer(t, ts.URL, InferRequest{Model: "googlenet", TimeoutMS: 50})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d (%s), want 504", resp.StatusCode, body)
	}
}

// TestGracefulShutdown starts a real listener, serves traffic, then
// shuts down: in-flight work completes, healthz flips to draining, and
// the listener closes cleanly.
func TestGracefulShutdown(t *testing.T) {
	cfg := Config{
		SoCs:       []SoCSpec{{Name: "high", SoC: soc.Exynos7420, Workers: 2}},
		QueueDepth: 16,
		Models:     testModels(t),
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(l) }()
	url := "http://" + l.Addr().String()

	for i := 0; i < 4; i++ {
		resp, data := postInfer(t, url, InferRequest{Model: "lenet5"})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("pre-shutdown request: %d (%s)", resp.StatusCode, data)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-serveErr; err != http.ErrServerClosed {
		t.Fatalf("serve returned %v, want ErrServerClosed", err)
	}
	if _, err := http.Get(url + "/healthz"); err == nil {
		t.Fatal("listener still accepting after shutdown")
	}
	if got := s.sched.QueueDepth(); got != 0 {
		t.Fatalf("queue depth %d after shutdown", got)
	}
}

// TestReadyzDraining verifies the liveness/readiness split while
// draining: readiness flips to 503, liveness stays 200.
func TestReadyzDraining(t *testing.T) {
	s, ts := newTestServer(t, Config{
		SoCs:       []SoCSpec{{Name: "high", SoC: soc.Exynos7420, Workers: 1}},
		QueueDepth: 8,
	})
	// Before draining: both probes pass and readyz lists device health.
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var rz struct {
		Ready   bool `json:"ready"`
		Devices []struct {
			Health string `json:"health"`
			Down   string `json:"down"`
		} `json:"devices"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&rz); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !rz.Ready {
		t.Fatalf("readyz before drain: %d %+v", resp.StatusCode, rz)
	}
	if len(rz.Devices) != 1 || rz.Devices[0].Health != "ok" || rz.Devices[0].Down != "none" {
		t.Fatalf("readyz devices %+v", rz.Devices)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.sched.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	// Liveness stays 200 while draining (the process is fine).
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz while draining: %d, want 200", resp.StatusCode)
	}
	// Readiness flips.
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(data), `"draining":true`) {
		t.Fatalf("readyz while draining: %d %q", resp.StatusCode, data)
	}
	// Infer while draining also answers 503.
	resp2, _ := postInfer(t, ts.URL, InferRequest{Model: "lenet5"})
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("infer while draining: %d", resp2.StatusCode)
	}
}

// TestInferChecksumHeader: every /v1/infer reply — success and error
// alike — carries X-Mulayer-Checksum over the exact bytes sent, so a
// proxy can verify the reply survived the network intact.
func TestInferChecksumHeader(t *testing.T) {
	_, ts := newTestServer(t, Config{
		SoCs:       []SoCSpec{{Name: "high", SoC: soc.Exynos7420, Workers: 1}},
		QueueDepth: 8,
	})
	check := func(resp *http.Response, body []byte) {
		t.Helper()
		got := resp.Header.Get(ChecksumHeader)
		if got == "" {
			t.Fatalf("%d reply has no %s header", resp.StatusCode, ChecksumHeader)
		}
		if want := BodyChecksum(body); got != want {
			t.Fatalf("%d reply checksum %s, body hashes to %s", resp.StatusCode, got, want)
		}
	}
	resp, body := postInfer(t, ts.URL, InferRequest{Model: "lenet5"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("infer: %d (%s)", resp.StatusCode, body)
	}
	check(resp, body)
	resp, body = postInfer(t, ts.URL, InferRequest{Model: "nope"})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown model: %d", resp.StatusCode)
	}
	check(resp, body)
}
