package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"mulayer/internal/core"
	"mulayer/internal/faults"
	"mulayer/internal/server/metrics"
	"mulayer/internal/soc"
)

func TestParseOverloadSpec(t *testing.T) {
	cfg, err := ParseOverloadSpec("admit=on,watchdog=8,queue-wait=50ms,eval=10ms,hold=1s,retry-rate=5,retry-burst=10")
	if err != nil {
		t.Fatal(err)
	}
	want := OverloadConfig{
		DeadlineAdmission: true, WatchdogFactor: 8,
		QueueWaitP95: 50 * time.Millisecond, EvalEvery: 10 * time.Millisecond,
		Hold: time.Second, RetryRate: 5, RetryBurst: 10,
	}
	if cfg != want {
		t.Fatalf("parsed %+v, want %+v", cfg, want)
	}
	if empty, err := ParseOverloadSpec("  "); err != nil || empty.Enabled() {
		t.Fatalf("empty spec: %+v, %v", empty, err)
	}
	for _, bad := range []string{
		"watchdog=0.5", // factor in (0,1) trips on every kernel
		"watchdog=NaN",
		"watchdog=+Inf",
		"queue-wait=-1s",
		"eval=-1ms",
		"hold=-1s",
		"retry-rate=-1",
		"retry-rate=Inf",
		"retry-burst=-2",
		"admit=maybe",
		"bogus=1",
		"admit", // missing value
		"queue-wait=fast",
	} {
		if _, err := ParseOverloadSpec(bad); err == nil {
			t.Errorf("spec %q parsed without error", bad)
		}
	}
}

func TestParsePriority(t *testing.T) {
	for in, want := range map[string]Priority{
		"": PriorityNormal, "normal": PriorityNormal,
		"high": PriorityHigh, "low": PriorityLow,
	} {
		got, err := ParsePriority(in)
		if err != nil || got != want {
			t.Errorf("ParsePriority(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParsePriority("urgent"); err == nil {
		t.Error("unknown priority accepted")
	}
}

// TestJitterRetryAfterSpread: jittered Retry-After values must cover the
// ±25% band (not collapse to the input) and never drop below 1 second.
func TestJitterRetryAfterSpread(t *testing.T) {
	distinct := map[int]bool{}
	for i := 0; i < 100; i++ {
		u := float64(i) / 100
		v := jitterRetryAfter(20, u)
		if v < 15 || v > 25 {
			t.Fatalf("jitterRetryAfter(20, %v) = %d outside the ±25%% band", u, v)
		}
		distinct[v] = true
	}
	if len(distinct) < 5 {
		t.Fatalf("only %d distinct values across the unit interval; jitter is not spreading", len(distinct))
	}
	if got := jitterRetryAfter(1, 0); got < 1 {
		t.Fatalf("jitter produced a %d-second Retry-After", got)
	}
}

// TestRetryAfterJitterHTTP: the 503 Retry-After values handed to a burst
// of rejected clients must not all be identical — synchronized retries
// would herd back together.
func TestRetryAfterJitterHTTP(t *testing.T) {
	_, ts := newTestServer(t, Config{
		SoCs:       []SoCSpec{{Name: "high", SoC: soc.Exynos7420, Workers: 1}},
		QueueDepth: 4,
		TimeScale:  0.2, // googlenet ≈ 523ms of wall pacing: the queue stays full
	})
	var mu sync.Mutex
	headers := map[string]int{}
	var wg sync.WaitGroup
	for i := 0; i < 40; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, _ := postInfer(t, ts.URL, InferRequest{Model: "googlenet", TimeoutMS: 100})
			if resp.StatusCode == http.StatusServiceUnavailable {
				mu.Lock()
				headers[resp.Header.Get("Retry-After")]++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	total := 0
	for h, n := range headers {
		secs, err := strconv.Atoi(h)
		if err != nil || secs < 1 || secs > 38 {
			t.Fatalf("Retry-After %q outside [1, 38]", h)
		}
		total += n
	}
	if total < 10 {
		t.Fatalf("only %d rejections; the queue never filled", total)
	}
	if len(headers) < 2 {
		t.Fatalf("all %d rejected clients got the same Retry-After %v; jitter is not applied", total, headers)
	}
}

// TestRetryBudgetTokenBucket: the bucket starts at burst, spends one token
// per allow, refuses when empty, refills at the configured rate, and keys
// by model class.
func TestRetryBudgetTokenBucket(t *testing.T) {
	rb := newRetryBudget(OverloadConfig{RetryRate: 2, RetryBurst: 3})
	t0 := time.Now()
	for i := 0; i < 3; i++ {
		if !rb.allow("googlenet", t0) {
			t.Fatalf("allow %d refused inside the burst", i)
		}
	}
	if rb.allow("googlenet", t0) {
		t.Fatal("allow succeeded on an empty bucket")
	}
	if !rb.allow("lenet5", t0) {
		t.Fatal("a different model class shares the exhausted bucket")
	}
	if !rb.allow("googlenet", t0.Add(time.Second)) { // 2 tokens/s refill
		t.Fatal("bucket did not refill")
	}
	if toks := rb.tokens(t0.Add(time.Hour)); toks["googlenet"] > 3 {
		t.Fatalf("bucket refilled past its burst: %v", toks)
	}
	var nilRB *retryBudget
	if !nilRB.allow("anything", t0) {
		t.Fatal("disabled budget must allow everything")
	}
}

// TestOverloadControllerLadder drives the controller with synthetic
// clocks: queue-wait p95 above the threshold steps the ladder up once per
// evaluation, a mid-band p95 holds the level, and only a sustained p95
// under half the threshold steps it back down — one level per hold.
func TestOverloadControllerLadder(t *testing.T) {
	cfg := OverloadConfig{
		QueueWaitP95: 100 * time.Millisecond,
		EvalEvery:    10 * time.Millisecond,
		Hold:         50 * time.Millisecond,
	}.withDefaults()
	c := newOverloadController(cfg)
	t0 := time.Now()

	// Saturation: every evaluation steps up until the top of the ladder.
	for step := 1; step <= 5; step++ {
		now := t0.Add(time.Duration(step) * cfg.EvalEvery)
		c.observe(now, 300*time.Millisecond)
		c.evaluate(now, false)
	}
	if c.level() != maxOverloadLevel {
		t.Fatalf("level %d after sustained overload, want %d", c.level(), maxOverloadLevel)
	}

	// A wedged-but-nonempty queue with no fresh samples yields no verdict.
	stale := t0.Add(time.Hour)
	if tr := c.evaluate(stale, false); tr != "" || c.level() != maxOverloadLevel {
		t.Fatalf("no-sample evaluation transitioned %q to level %d", tr, c.level())
	}

	// Mid-band waits (between threshold/2 and threshold) hold the level.
	mid := stale.Add(cfg.EvalEvery)
	c.observe(mid, 70*time.Millisecond)
	if tr := c.evaluate(mid, false); tr != "" {
		t.Fatalf("mid-band p95 transitioned %q", tr)
	}

	// Recovery: an idle queue steps down one level per elapsed hold. The
	// first evaluation only starts the hold clock; each subsequent
	// hold-spaced evaluation takes one step.
	base := mid.Add(time.Hour) // age the mid-band sample out of the window
	for i := 0; i <= maxOverloadLevel; i++ {
		c.evaluate(base.Add(time.Duration(i)*cfg.Hold), true)
	}
	if c.level() != 0 {
		t.Fatalf("level %d after sustained idle, want 0", c.level())
	}
	_, _, up, down := c.snapshot()
	if up != int64(maxOverloadLevel) || down != int64(maxOverloadLevel) {
		t.Fatalf("transition counts up=%d down=%d, want %d each", up, down, maxOverloadLevel)
	}
}

// TestEffectiveBatchWaitShrinks: brownout levels halve the batching window
// per level from level 1 up.
func TestEffectiveBatchWaitShrinks(t *testing.T) {
	s := newSched(t, Config{
		SoCs:      []SoCSpec{{Name: "high", SoC: soc.Exynos7420, Workers: 1}},
		MaxBatch:  4,
		BatchWait: 8 * time.Millisecond,
		Overload:  OverloadConfig{QueueWaitP95: time.Second},
	})
	for lvl, want := range map[int]time.Duration{
		0: 8 * time.Millisecond,
		1: 4 * time.Millisecond,
		2: 2 * time.Millisecond,
		3: time.Millisecond,
	} {
		s.overload.lvl.Store(int32(lvl))
		if got := s.effectiveBatchWait(); got != want {
			t.Errorf("level %d: window %v, want %v", lvl, got, want)
		}
	}
	s.overload.lvl.Store(0)
}

// TestPriorityShedAtLevelThree: at the top brownout level low-priority
// requests are rejected before any planning work; normal and high still
// get service.
func TestPriorityShedAtLevelThree(t *testing.T) {
	s := newSched(t, Config{
		SoCs:     []SoCSpec{{Name: "high", SoC: soc.Exynos7420, Workers: 1}},
		Overload: OverloadConfig{QueueWaitP95: time.Second},
	})
	m := s.cfg.Models["lenet5"]
	s.overload.lvl.Store(overloadLevelShedLow)
	out := s.SubmitRequest(context.Background(), Request{
		ModelName: "lenet5", Model: m, Mech: core.MechMuLayer, Priority: PriorityLow,
	})
	if !errors.Is(out.err, ErrPriorityShed) {
		t.Fatalf("low-priority request at level 3: %v, want ErrPriorityShed", out.err)
	}
	if statusFor(out.err) != http.StatusServiceUnavailable {
		t.Fatalf("ErrPriorityShed maps to %d, want 503", statusFor(out.err))
	}
	for _, prio := range []Priority{PriorityHigh, PriorityNormal} {
		out := s.SubmitRequest(context.Background(), Request{
			ModelName: "lenet5", Model: m, Mech: core.MechMuLayer, Priority: prio,
		})
		if out.err != nil {
			t.Fatalf("%v request refused at level 3: %v", prio, out.err)
		}
	}
	if n := s.mets.admissionRejects.With("priority_shed").Value(); n != 1 {
		t.Fatalf("priority_shed rejects %d, want 1", n)
	}
}

// TestDeadlineInfeasibleAdmission: a request whose deadline cannot cover
// even its own predicted runtime is rejected at admission in O(admission)
// time with the typed error — not parked in the queue to 504.
func TestDeadlineInfeasibleAdmission(t *testing.T) {
	s := newSched(t, Config{
		SoCs:      []SoCSpec{{Name: "high", SoC: soc.Exynos7420, Workers: 1}},
		TimeScale: 0.01, // googlenet ≈ 3s of predicted wall time
		Overload:  OverloadConfig{DeadlineAdmission: true},
	})
	m := s.cfg.Models["googlenet"]
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	out := s.Submit(ctx, "googlenet", m, core.MechMuLayer, "", 1)
	elapsed := time.Since(start)
	if !errors.Is(out.err, ErrDeadlineInfeasible) {
		t.Fatalf("infeasible request: %v, want ErrDeadlineInfeasible", out.err)
	}
	if statusFor(out.err) != http.StatusServiceUnavailable {
		t.Fatalf("ErrDeadlineInfeasible maps to %d, want 503", statusFor(out.err))
	}
	if elapsed > 500*time.Millisecond {
		t.Fatalf("admission rejection took %v; it queued instead of rejecting", elapsed)
	}
	// Without a deadline a request sails through the same admission check
	// (lenet5: small enough that its paced run keeps the test fast).
	l5 := s.cfg.Models["lenet5"]
	if out := s.Submit(context.Background(), "lenet5", l5, core.MechMuLayer, "", 1); out.err != nil {
		t.Fatalf("deadline-free request refused: %v", out.err)
	}
	if n := s.mets.admissionRejects.With("deadline_infeasible").Value(); n != 1 {
		t.Fatalf("deadline_infeasible rejects %d, want 1", n)
	}
}

// TestQueueAgingShedsStaleWork: a request admitted as feasible whose queue
// wait then eats its headroom (here: the request ahead of it stalls to 2×
// its prediction) is shed at dispatch instead of burning device time on a
// doomed run.
func TestQueueAgingShedsStaleWork(t *testing.T) {
	s := newSched(t, Config{
		SoCs:       []SoCSpec{{Name: "high", SoC: soc.Exynos7420, Workers: 1}},
		QueueDepth: 8,
		TimeScale:  0.2, // googlenet ≈ 523ms predicted wall, ~1047ms stalled
		Faults: map[string]faults.Config{"high": {
			StallRate: 1, StallFactor: 2, Seed: 3,
		}},
		Overload: OverloadConfig{DeadlineAdmission: true},
	})
	m := s.cfg.Models["googlenet"]
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Occupies the device for ~1047ms: every kernel stalls 2×, and the
		// pacing loop books the stalled (actual) latency.
		s.Submit(context.Background(), "googlenet", m, core.MechMuLayer, "", 1)
	}()
	// Wait until the first request's cost is committed to the device.
	deadline := time.Now().Add(time.Second)
	for devByName(t, s, "high-0").depth.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first request never dispatched")
		}
		time.Sleep(time.Millisecond)
	}
	// Feasible at admission (predicted wait 523ms + run 523ms < 1300ms),
	// infeasible by dispatch (the actual wait ≈ 1047ms leaves ~253ms of
	// headroom against a 523ms predicted run).
	ctx, cancel := context.WithTimeout(context.Background(), 1300*time.Millisecond)
	defer cancel()
	out := s.Submit(ctx, "googlenet", m, core.MechMuLayer, "", 1)
	if !errors.Is(out.err, ErrDeadlineInfeasible) {
		t.Fatalf("aged request: %v, want ErrDeadlineInfeasible from queue aging", out.err)
	}
	if n := s.mets.admissionRejects.With("queue_aged").Value(); n != 1 {
		t.Fatalf("queue_aged rejects %d, want 1", n)
	}
	wg.Wait()
	waitIdle(t, s, 3*time.Second)
}

// TestWatchdogTripFailsOver: a stalled kernel past the watchdog budget
// must surface as a device failure — the request fails over to the other
// class and succeeds, the stalled device takes a circuit-breaker failure,
// and the trip is counted per processor.
func TestWatchdogTripFailsOver(t *testing.T) {
	reg := metrics.NewRegistry()
	s, err := NewScheduler(Config{
		Models: testModels(t),
		SoCs: []SoCSpec{
			{Name: "high", SoC: soc.Exynos7420, Workers: 1},
			{Name: "mid", SoC: soc.Exynos7880, Workers: 1},
		},
		QueueDepth: 8,
		Faults: map[string]faults.Config{"high": {
			StallRate: 1, StallFactor: 100, MaxFaults: 1, Seed: 5,
		}},
		Overload: OverloadConfig{WatchdogFactor: 8},
	}, reg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Drain(ctx)
	}()
	m := testModels(t)["googlenet"]
	out := s.Submit(context.Background(), "googlenet", m, core.MechMuLayer, "", 1)
	if out.err != nil {
		t.Fatalf("request lost to a watchdog trip: %v", out.err)
	}
	if out.class != "mid" {
		t.Fatalf("served by %s, want failover to mid after the trip", out.device)
	}
	if f := devByName(t, s, "high-0").health().Failures; f != 1 {
		t.Fatalf("stalled device has %d circuit-breaker failures, want 1", f)
	}
	var b strings.Builder
	_, _ = reg.WriteTo(&b)
	trips := regexp.MustCompile(`(?m)^mulayer_watchdog_trips_total\{proc="[^"]+"\} 1$`)
	if !trips.MatchString(b.String()) {
		t.Fatalf("no per-proc watchdog trip in the exposition:\n%s", b.String())
	}
}

// TestRetryBudgetStopsRetryStorm: with every device failing and a
// one-token retry budget, exactly one failover retry is spent and the
// rest of the burst degrades to fast typed 503s instead of a retry storm.
func TestRetryBudgetStopsRetryStorm(t *testing.T) {
	s := newSched(t, Config{
		SoCs: []SoCSpec{
			{Name: "high", SoC: soc.Exynos7420, Workers: 1},
			{Name: "mid", SoC: soc.Exynos7880, Workers: 1},
		},
		QueueDepth: 16,
		MaxRetries: 3,
		Faults:     map[string]faults.Config{"": {FailRate: 1, Seed: 11}},
		Overload:   OverloadConfig{RetryRate: 0.0001, RetryBurst: 1},
	})
	m := s.cfg.Models["lenet5"]
	var exhausted, retried int
	for i := 0; i < 6; i++ {
		out := s.Submit(context.Background(), "lenet5", m, core.MechMuLayer, "", 1)
		switch {
		case out.err == nil:
			t.Fatalf("request %d succeeded on an always-failing pool", i)
		case errors.Is(out.err, ErrRetryBudgetExhausted):
			exhausted++
		case errors.Is(out.err, ErrRetriesExhausted), errors.Is(out.err, ErrNoHealthyDevice):
			retried++
		default:
			t.Fatalf("request %d: untyped error %v", i, out.err)
		}
		if statusFor(out.err) != http.StatusServiceUnavailable {
			t.Fatalf("request %d: status %d, want 503", i, statusFor(out.err))
		}
	}
	if exhausted == 0 {
		t.Fatal("no request hit the retry budget")
	}
	// One token: at most one request got a real failover attempt.
	if got := s.mets.retryExhausted.With("lenet5").Value(); got != int64(exhausted) {
		t.Fatalf("retry_budget_exhausted metric %d, want %d", got, exhausted)
	}
	waitIdle(t, s, 2*time.Second)
}

// TestOverloadSoak is the admission-under-races soak: sustained 2×+
// saturation with the full overload stack on. Every request must end 200
// or a typed 503, the brownout ladder must climb and shed low-priority
// work, an infeasible deadline must be rejected in O(admission) while the
// queue is ~seconds deep, and the pool must drain back to the goroutine
// baseline. Run under -race (make ci does).
func TestOverloadSoak(t *testing.T) {
	base := runtime.NumGoroutine()
	cfg := Config{
		Models:     testModels(t),
		SoCs:       []SoCSpec{{Name: "high", SoC: soc.Exynos7420, Workers: 1}},
		QueueDepth: 256,
		TimeScale:  10, // googlenet ≈ 10.5ms of wall pacing per request
		Overload: OverloadConfig{
			DeadlineAdmission: true,
			QueueWaitP95:      10 * time.Millisecond,
			EvalEvery:         5 * time.Millisecond,
			Hold:              time.Minute, // never step down mid-test
		},
	}
	reg := metrics.NewRegistry()
	s, err := NewScheduler(cfg, reg)
	if err != nil {
		t.Fatal(err)
	}
	m := cfg.Models["googlenet"]

	counts := make(chan int, 512)
	var wg sync.WaitGroup
	submit := func(prio Priority, n int) {
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				out := s.SubmitRequest(context.Background(), Request{
					ModelName: "googlenet", Model: m, Mech: core.MechMuLayer, Priority: prio,
				})
				code := statusFor(out.err)
				if code != 200 && code != 503 {
					t.Errorf("untyped outcome under soak: %v", out.err)
				}
				counts <- code
			}()
		}
	}

	// Wave 1 saturates the single device (~10.5ms each, all at once): queue
	// waits blow past the 10ms threshold and the ladder climbs to 3.
	submit(PriorityNormal, 200)
	deadline := time.Now().Add(5 * time.Second)
	for s.overload.level() < overloadLevelShedLow {
		if time.Now().After(deadline) {
			t.Fatalf("ladder stuck at level %d under saturation", s.overload.level())
		}
		time.Sleep(time.Millisecond)
	}

	// The queue is now hundreds of milliseconds deep: an infeasible
	// deadline must be bounced at admission, not after a queue drain.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	start := time.Now()
	out := s.Submit(ctx, "googlenet", m, core.MechMuLayer, "", 1)
	cancel()
	if !errors.Is(out.err, ErrDeadlineInfeasible) {
		t.Fatalf("infeasible request under load: %v", out.err)
	}
	if rt := time.Since(start); rt > 100*time.Millisecond {
		t.Fatalf("infeasible rejection took %v under load; want O(admission)", rt)
	}

	// Wave 2 at the top of the ladder: lows are shed, highs keep service.
	submit(PriorityHigh, 20)
	submit(PriorityLow, 20)
	wg.Wait()
	close(counts)

	byCode := map[int]int{}
	for c := range counts {
		byCode[c]++
	}
	if shed := s.mets.admissionRejects.With("priority_shed").Value(); shed < 20 {
		t.Fatalf("only %d low-priority sheds at ladder level 3, want all 20 (codes %v)", shed, byCode)
	}
	if up := s.mets.overloadSteps.With("up").Value(); up < int64(maxOverloadLevel) {
		t.Fatalf("only %d ladder step-ups recorded", up)
	}
	if byCode[200] < 220 { // every normal and every high must be served
		t.Fatalf("availability collapsed under soak: %v", byCode)
	}

	ctx2, cancel2 := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel2()
	if err := s.Drain(ctx2); err != nil {
		t.Fatalf("drain after soak: %v", err)
	}
	if got := s.QueueDepth(); got != 0 {
		t.Fatalf("stranded queue entries after soak: %d", got)
	}
	leakDeadline := time.Now().Add(3 * time.Second)
	for runtime.NumGoroutine() > base+4 {
		if time.Now().After(leakDeadline) {
			t.Fatalf("goroutines %d vs baseline %d: leak after soak drain", runtime.NumGoroutine(), base)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestOverloadSmokeSaturation is the overload acceptance smoke (make
// overload-smoke): ~4× offered load with stall and failure faults, the
// watchdog, retry budgets, and the brownout ladder all armed. The top
// priority class must keep ≥99% availability, low-priority work must be
// shed, watchdog trips must surface in metrics, and /statusz must show
// the overload state.
func TestOverloadSmokeSaturation(t *testing.T) {
	srv, ts := newTestServer(t, Config{
		SoCs: []SoCSpec{
			// Four devices: a watchdog-tripped request can fail over twice
			// and still find a device its exclusion mask has not burned.
			{Name: "high", SoC: soc.Exynos7420, Workers: 2},
			{Name: "mid", SoC: soc.Exynos7880, Workers: 2},
		},
		QueueDepth:        256,
		TimeScale:         10, // googlenet ≈ 10.5ms (high class) wall per request
		MaxRetries:        4,
		FailThreshold:     8, // stall trips fail over; don't let them quarantine the pool
		QuarantineBackoff: 20 * time.Millisecond,
		Faults: map[string]faults.Config{"": {
			Seed:        17,
			FailRate:    0.0001,
			StallRate:   0.001,
			StallFactor: 100,
		}},
		Overload: OverloadConfig{
			DeadlineAdmission: true,
			WatchdogFactor:    8,
			QueueWaitP95:      5 * time.Millisecond,
			EvalEvery:         5 * time.Millisecond,
			Hold:              time.Minute,
			RetryRate:         200,
			RetryBurst:        50,
		},
	})

	var mu sync.Mutex
	sent := map[string]int{}
	ok := map[string]int{}
	var untyped []string
	var wg sync.WaitGroup
	drive := func(prio string, n int) {
		defer wg.Done()
		for i := 0; i < n; i++ {
			resp, data := postInfer(t, ts.URL, InferRequest{
				Model: "googlenet", Priority: prio, TimeoutMS: 10_000,
			})
			mu.Lock()
			sent[prio]++
			switch resp.StatusCode {
			case http.StatusOK:
				ok[prio]++
			case http.StatusServiceUnavailable:
				if prio == "high" {
					t.Logf("high 503: %s", data)
				}
			default:
				untyped = append(untyped, fmt.Sprintf("%s: %d %s", prio, resp.StatusCode, data))
			}
			mu.Unlock()
		}
	}
	// Closed-loop at ~4× capacity: 8 client workers over 2 devices.
	const perWorker = 25
	for i := 0; i < 4; i++ {
		wg.Add(2)
		go drive("high", perWorker)
		go drive("low", perWorker)
	}
	wg.Wait()

	for _, u := range untyped {
		t.Errorf("request ended untyped: %s", u)
	}
	availHigh := float64(ok["high"]) / float64(sent["high"])
	shedLow := sent["low"] - ok["low"]
	t.Logf("smoke: high %d/%d (%.3f), low %d/%d (%d shed)",
		ok["high"], sent["high"], availHigh, ok["low"], sent["low"], shedLow)
	if availHigh < 0.99 {
		t.Fatalf("top-priority availability %.3f under saturation, want >= 0.99", availHigh)
	}
	if shedLow == 0 {
		t.Fatal("no low-priority request was shed at ~4x offered load")
	}

	// All transitions visible: the exposition carries the overload level
	// and at least one ladder step, and /statusz reports the state.
	expo := readAll(t, ts.URL+"/metrics")
	for _, want := range []string{
		"mulayer_overload_level",
		`mulayer_overload_transitions_total{direction="up"}`,
		`mulayer_admission_rejects_total{reason="priority_shed"}`,
		"mulayer_watchdog_trips_total{proc=",
	} {
		if !strings.Contains(expo, want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}
	st := srv.sched.OverloadStatus()
	if !st.Enabled || st.Level < overloadLevelShedLow || st.StepsUp < int64(maxOverloadLevel) {
		t.Fatalf("overload status does not reflect the saturation: %+v", st)
	}
}

// readAll GETs a URL and returns its body as a string.
func readAll(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}
