package server

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Overload-protection errors, all mapped to 503 by the handler: the
// service is shedding load, not the request malformed.
var (
	// ErrDeadlineInfeasible means the predictor judged the request unable
	// to meet its deadline — at admission (predicted queue wait + makespan
	// exceeds it) or at dispatch (queue aging: the wait already consumed
	// it). The client gets an immediate typed 503 instead of a deadline
	// expiry after queueing.
	ErrDeadlineInfeasible = errors.New("server: deadline infeasible")
	// ErrRetryBudgetExhausted means a device failed and the fleet-wide
	// retry budget for the request's model class is spent — correlated
	// faults degrade to fast 503s rather than retry storms.
	ErrRetryBudgetExhausted = errors.New("server: device failed and the retry budget is exhausted")
	// ErrPriorityShed means the brownout ladder reached the level that
	// rejects the request's priority class.
	ErrPriorityShed = errors.New("server: low-priority request shed under overload")
)

// Priority is a request's shedding class. Lower values are more
// important; the brownout ladder sheds from the bottom up.
type Priority int

// The priority classes of the API's "priority" field.
const (
	// PriorityHigh is the top class: the last to be shed, and the class
	// whose availability the overload smoke run floors.
	PriorityHigh Priority = iota
	// PriorityNormal is the default for requests that name no priority.
	PriorityNormal
	// PriorityLow is background work: the first class the brownout ladder
	// rejects.
	PriorityLow
)

// String implements fmt.Stringer.
func (p Priority) String() string {
	switch p {
	case PriorityHigh:
		return "high"
	case PriorityNormal:
		return "normal"
	case PriorityLow:
		return "low"
	}
	return fmt.Sprintf("Priority(%d)", int(p))
}

// ParsePriority resolves an API priority name ("" means normal). Exported
// for the load generator's flag validation.
func ParsePriority(s string) (Priority, error) {
	switch s {
	case "", "normal":
		return PriorityNormal, nil
	case "high":
		return PriorityHigh, nil
	case "low":
		return PriorityLow, nil
	}
	return 0, fmt.Errorf("unknown priority %q (want high, normal, low)", s)
}

// The brownout ladder's levels: each adds one degradation on top of the
// previous. Level 0 is normal service.
const (
	// overloadLevelShrinkWindow halves the batching window per level from
	// here up: occupancy is traded back for queue-wait latency.
	overloadLevelShrinkWindow = 1
	// overloadLevelNoTrace stops recording request traces (sampling to 0).
	overloadLevelNoTrace = 2
	// overloadLevelShedLow rejects PriorityLow requests at admission.
	overloadLevelShedLow = 3
	// maxOverloadLevel is the top of the ladder.
	maxOverloadLevel = 3
)

// overloadSampleCap bounds the controller's queue-wait sample ring; at the
// default 250ms evaluation period this holds far more than one window.
const overloadSampleCap = 512

// OverloadConfig is the overload-protection configuration: deadline-aware
// admission, the kernel stall watchdog, fleet-wide retry budgets, and the
// brownout ladder. The zero value disables all four (the PR 3 behavior).
// Parse one from a flag string with ParseOverloadSpec.
type OverloadConfig struct {
	// DeadlineAdmission enables deadline-aware admission and CoDel-style
	// queue aging: a request whose predicted queue wait + makespan exceeds
	// its deadline is rejected with an immediate typed 503 at enqueue, and
	// a queued request whose deadline can no longer cover its batch's
	// predicted run is shed at dispatch instead of wasting device time.
	// Inert when pacing is off (TimeScale 0): wall predictions are then 0.
	DeadlineAdmission bool
	// WatchdogFactor arms the executor's kernel stall watchdog: each
	// kernel gets a budget of WatchdogFactor × its predicted duration, and
	// exceeding it is a device failure (failover + quarantine). 0 disables;
	// values in (0, 1) are invalid (they would trip on every kernel).
	WatchdogFactor float64
	// QueueWaitP95 drives the brownout ladder: when the recent queue-wait
	// p95 exceeds it, the overload controller steps the ladder up one
	// level per evaluation; when the p95 stays under half of it for Hold,
	// the controller steps back down. 0 disables the ladder.
	QueueWaitP95 time.Duration
	// EvalEvery is the controller's evaluation period (default 250ms).
	EvalEvery time.Duration
	// Hold is the step-down hysteresis: how long the p95 must stay below
	// QueueWaitP95/2 before the ladder steps down one level (default 2s).
	Hold time.Duration
	// RetryRate is the fleet-wide failover retry budget per model class,
	// in tokens per second (token bucket; each requeue spends one token).
	// 0 leaves retries bounded only by MaxRetries per request.
	RetryRate float64
	// RetryBurst is the bucket capacity (default max(1, RetryRate) when
	// RetryRate > 0).
	RetryBurst int
}

// Enabled reports whether any overload-protection feature is on.
func (c OverloadConfig) Enabled() bool {
	return c.DeadlineAdmission || c.WatchdogFactor > 0 || c.QueueWaitP95 > 0 || c.RetryRate > 0
}

// Validate checks ranges; it never panics on any value (FuzzOverloadConfig
// holds the spec parser + Validate to that).
func (c OverloadConfig) Validate() error {
	if math.IsNaN(c.WatchdogFactor) || math.IsInf(c.WatchdogFactor, 0) {
		return fmt.Errorf("overload: watchdog factor %v is not finite", c.WatchdogFactor)
	}
	if c.WatchdogFactor != 0 && c.WatchdogFactor < 1 {
		return fmt.Errorf("overload: watchdog factor %v not in {0} ∪ [1, ∞)", c.WatchdogFactor)
	}
	if c.QueueWaitP95 < 0 {
		return fmt.Errorf("overload: negative queue-wait threshold %v", c.QueueWaitP95)
	}
	if c.EvalEvery < 0 {
		return fmt.Errorf("overload: negative evaluation period %v", c.EvalEvery)
	}
	if c.Hold < 0 {
		return fmt.Errorf("overload: negative hysteresis hold %v", c.Hold)
	}
	if math.IsNaN(c.RetryRate) || math.IsInf(c.RetryRate, 0) || c.RetryRate < 0 {
		return fmt.Errorf("overload: retry rate %v not a finite non-negative number", c.RetryRate)
	}
	if c.RetryBurst < 0 {
		return fmt.Errorf("overload: negative retry burst %d", c.RetryBurst)
	}
	return nil
}

// withDefaults fills the zero fields the enabled features need.
func (c OverloadConfig) withDefaults() OverloadConfig {
	if c.QueueWaitP95 > 0 {
		if c.EvalEvery <= 0 {
			c.EvalEvery = 250 * time.Millisecond
		}
		if c.Hold <= 0 {
			c.Hold = 2 * time.Second
		}
	}
	if c.RetryRate > 0 && c.RetryBurst == 0 {
		// Clamp before converting: a huge finite rate must not overflow the
		// int conversion into a negative burst.
		b := math.Max(1, math.Ceil(c.RetryRate))
		if b > math.MaxInt32 {
			b = math.MaxInt32
		}
		c.RetryBurst = int(b)
	}
	return c
}

// waitSample is one queue-wait observation feeding the controller.
type waitSample struct {
	when time.Time
	wait time.Duration
}

// overloadController steps the brownout ladder from the recent queue-wait
// p95: above the threshold it steps up one level per evaluation; below
// half the threshold for a full hold period it steps down one level
// (hysteresis, so the ladder does not flap around the boundary). The
// current level is read lock-free on the request path.
type overloadController struct {
	threshold time.Duration
	evalEvery time.Duration
	hold      time.Duration

	lvl atomic.Int32

	mu         sync.Mutex
	samples    [overloadSampleCap]waitSample
	head, n    int
	belowSince time.Time
	lastP95    time.Duration
	stepsUp    int64
	stepsDown  int64
}

func newOverloadController(cfg OverloadConfig) *overloadController {
	return &overloadController{
		threshold: cfg.QueueWaitP95,
		evalEvery: cfg.EvalEvery,
		hold:      cfg.Hold,
	}
}

// level returns the current brownout level (0 when the controller is nil —
// the ladder disabled).
func (c *overloadController) level() int {
	if c == nil {
		return 0
	}
	return int(c.lvl.Load())
}

// observe records one queue-wait sample (called at dispatch for every
// batch member). Nil-safe: a disabled ladder costs one branch.
func (c *overloadController) observe(now time.Time, wait time.Duration) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.samples[c.head] = waitSample{when: now, wait: wait}
	c.head = (c.head + 1) % overloadSampleCap
	if c.n < overloadSampleCap {
		c.n++
	}
	c.mu.Unlock()
}

// window is the sample horizon the p95 is computed over.
func (c *overloadController) window() time.Duration {
	w := 4 * c.evalEvery
	if w < 500*time.Millisecond {
		w = 500 * time.Millisecond
	}
	if w > 10*time.Second {
		w = 10 * time.Second
	}
	return w
}

// p95Locked computes the p95 queue wait over the window ending at now.
// Caller holds c.mu.
func (c *overloadController) p95Locked(now time.Time) (time.Duration, int) {
	cutoff := now.Add(-c.window())
	waits := make([]time.Duration, 0, c.n)
	for i := 0; i < c.n; i++ {
		if s := c.samples[i]; s.when.After(cutoff) {
			waits = append(waits, s.wait)
		}
	}
	if len(waits) == 0 {
		return 0, 0
	}
	sort.Slice(waits, func(i, j int) bool { return waits[i] < waits[j] })
	idx := int(math.Ceil(0.95*float64(len(waits)))) - 1
	if idx < 0 {
		idx = 0
	}
	return waits[idx], len(waits)
}

// evaluate runs one controller step and returns the transition taken
// ("up", "down", or ""). queueEmpty lets an idle server step down even
// when no dispatches produce fresh samples; a wedged-but-nonempty queue
// with no samples yields no verdict (the ladder holds its level rather
// than stepping down blind).
func (c *overloadController) evaluate(now time.Time, queueEmpty bool) string {
	c.mu.Lock()
	defer c.mu.Unlock()
	p95, n := c.p95Locked(now)
	if n == 0 && !queueEmpty {
		return ""
	}
	c.lastP95 = p95
	lvl := c.lvl.Load()
	switch {
	case p95 > c.threshold:
		c.belowSince = time.Time{}
		if lvl < maxOverloadLevel {
			c.lvl.Store(lvl + 1)
			c.stepsUp++
			return "up"
		}
	case p95 <= c.threshold/2:
		if c.belowSince.IsZero() {
			c.belowSince = now
		}
		if now.Sub(c.belowSince) >= c.hold && lvl > 0 {
			c.lvl.Store(lvl - 1)
			c.stepsDown++
			c.belowSince = now // a fresh hold gates the next step down
			return "down"
		}
	default:
		// Between the hysteresis bands: hold the level, restart the clock.
		c.belowSince = time.Time{}
	}
	return ""
}

// snapshot returns the controller's state for /statusz.
func (c *overloadController) snapshot() (level int, p95 time.Duration, up, down int64) {
	if c == nil {
		return 0, 0, 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return int(c.lvl.Load()), c.lastP95, c.stepsUp, c.stepsDown
}

// retryBudget is a token bucket per model class capping failover retries
// fleet-wide: every requeue after a device failure spends one token, and
// an empty bucket turns the retry into a fast typed 503. Correlated
// faults (a whole class of devices stalling at once) then degrade service
// instead of multiplying offered load.
type retryBudget struct {
	rate  float64 // tokens per second
	burst float64

	mu      sync.Mutex
	buckets map[string]*bucketState
}

type bucketState struct {
	tokens float64
	last   time.Time
}

func newRetryBudget(cfg OverloadConfig) *retryBudget {
	if cfg.RetryRate <= 0 {
		return nil
	}
	return &retryBudget{
		rate:    cfg.RetryRate,
		burst:   float64(cfg.RetryBurst),
		buckets: make(map[string]*bucketState),
	}
}

// allow spends one token from the model's bucket, refilling by elapsed
// time first; it reports false when the bucket is empty. Nil-safe: a nil
// budget allows everything.
func (rb *retryBudget) allow(model string, now time.Time) bool {
	if rb == nil {
		return true
	}
	rb.mu.Lock()
	defer rb.mu.Unlock()
	b := rb.buckets[model]
	if b == nil {
		b = &bucketState{tokens: rb.burst, last: now}
		rb.buckets[model] = b
	}
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens = math.Min(rb.burst, b.tokens+dt*rb.rate)
		b.last = now
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// tokens reports the per-model token levels for /statusz.
func (rb *retryBudget) tokens(now time.Time) map[string]float64 {
	if rb == nil {
		return nil
	}
	rb.mu.Lock()
	defer rb.mu.Unlock()
	out := make(map[string]float64, len(rb.buckets))
	for model, b := range rb.buckets {
		out[model] = math.Min(rb.burst, b.tokens+now.Sub(b.last).Seconds()*rb.rate)
	}
	return out
}

// jitterRetryAfter spreads a Retry-After hint across ±25% so clients
// rejected together do not return together (the thundering herd against a
// recovering server). u is a uniform variate in [0, 1).
func jitterRetryAfter(n int, u float64) int {
	j := int(math.Round(float64(n) * (0.75 + 0.5*u)))
	if j < 1 {
		j = 1
	}
	return j
}
