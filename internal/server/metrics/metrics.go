// Package metrics is a small, dependency-free metrics library for the
// serving subsystem: counters, gauges, and histograms, optionally keyed by
// label values, with Prometheus text-format exposition (the subset of the
// format scrapers rely on: HELP/TYPE headers, label escaping, cumulative
// histogram buckets with +Inf, _sum and _count series).
//
// Everything is safe for concurrent use. Counters and gauges are lock-free
// atomics; histograms take a short mutex per observation. Collectors are
// registered once at startup and live for the process lifetime — there is
// no unregistration, matching how the server uses them.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// collector is one named metric family.
type collector interface {
	name() string
	help() string
	kind() string // "counter", "gauge", "histogram"
	write(w io.Writer)
}

// Registry holds a set of metric families and renders them.
type Registry struct {
	mu   sync.Mutex
	fams []collector
	byNm map[string]collector
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byNm: make(map[string]collector)}
}

func (r *Registry) register(c collector) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byNm[c.name()]; dup {
		panic(fmt.Sprintf("metrics: duplicate metric %q", c.name()))
	}
	r.byNm[c.name()] = c
	r.fams = append(r.fams, c)
}

// WriteTo renders every registered family in Prometheus text format,
// families in registration order.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	r.mu.Lock()
	fams := make([]collector, len(r.fams))
	copy(fams, r.fams)
	r.mu.Unlock()
	var sb strings.Builder
	for _, c := range fams {
		fmt.Fprintf(&sb, "# HELP %s %s\n# TYPE %s %s\n", c.name(), c.help(), c.name(), c.kind())
		c.write(&sb)
	}
	n, err := io.WriteString(w, sb.String())
	return int64(n), err
}

// labelSet formats a sorted, escaped {k="v",...} block ("" when empty).
func labelSet(names, values []string, extra ...string) string {
	if len(names) == 0 && len(extra) == 0 {
		return ""
	}
	parts := make([]string, 0, len(names)+len(extra)/2)
	for i, n := range names {
		parts = append(parts, n+`="`+escape(values[i])+`"`)
	}
	for i := 0; i+1 < len(extra); i += 2 {
		parts = append(parts, extra[i]+`="`+escape(extra[i+1])+`"`)
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// escape applies Prometheus label-value escaping: backslash, double
// quote, and newline.
func escape(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// fmtFloat renders a sample value the way Prometheus expects.
func fmtFloat(f float64) string {
	switch {
	case math.IsInf(f, 1):
		return "+Inf"
	case math.IsInf(f, -1):
		return "-Inf"
	}
	if f == math.Trunc(f) && math.Abs(f) < 1e15 {
		return fmt.Sprintf("%d", int64(f))
	}
	return fmt.Sprintf("%g", f)
}

// vec is the shared labeled-children machinery.
type vec[T any] struct {
	mu       sync.Mutex
	labels   []string
	children map[string]T
	order    []string
	make     func() T
}

func newVec[T any](labels []string, mk func() T) *vec[T] {
	return &vec[T]{labels: labels, children: make(map[string]T), make: mk}
}

func (v *vec[T]) with(values []string) T {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("metrics: got %d label values, want %d (%v)", len(values), len(v.labels), v.labels))
	}
	key := strings.Join(values, "\x00")
	v.mu.Lock()
	defer v.mu.Unlock()
	if c, ok := v.children[key]; ok {
		return c
	}
	c := v.make()
	v.children[key] = c
	v.order = append(v.order, key)
	return c
}

// snapshot returns (labelValues, child) pairs sorted by label key for
// stable exposition.
func (v *vec[T]) snapshot() ([][]string, []T) {
	v.mu.Lock()
	defer v.mu.Unlock()
	keys := make([]string, len(v.order))
	copy(keys, v.order)
	sort.Strings(keys)
	vals := make([][]string, len(keys))
	out := make([]T, len(keys))
	for i, k := range keys {
		if len(k) == 0 && len(v.labels) == 0 {
			vals[i] = nil
		} else {
			vals[i] = strings.Split(k, "\x00")
		}
		out[i] = v.children[k]
	}
	return vals, out
}

// Counter is a monotonically increasing count.
type Counter struct {
	n atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.n.Add(1) }

// Add adds d (d must be non-negative).
func (c *Counter) Add(d int64) {
	if d < 0 {
		panic("metrics: counter decrease")
	}
	c.n.Add(d)
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.n.Load() }

// CounterVec is a family of counters keyed by label values.
type CounterVec struct {
	nm, hp string
	v      *vec[*Counter]
}

// NewCounterVec registers a counter family; labels may be empty, in which
// case With() yields the single unlabeled child.
func NewCounterVec(r *Registry, name, help string, labels ...string) *CounterVec {
	c := &CounterVec{nm: name, hp: help, v: newVec(labels, func() *Counter { return &Counter{} })}
	r.register(c)
	return c
}

// With returns the child counter for the given label values, creating it
// on first use.
func (c *CounterVec) With(values ...string) *Counter { return c.v.with(values) }

func (c *CounterVec) name() string { return c.nm }
func (c *CounterVec) help() string { return c.hp }
func (c *CounterVec) kind() string { return "counter" }
func (c *CounterVec) write(w io.Writer) {
	vals, children := c.v.snapshot()
	for i, ch := range children {
		fmt.Fprintf(w, "%s%s %d\n", c.nm, labelSet(c.v.labels, vals[i]), ch.Value())
	}
}

// Gauge is a value that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds d.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// GaugeVec is a family of gauges keyed by label values.
type GaugeVec struct {
	nm, hp string
	v      *vec[*Gauge]
}

// NewGaugeVec registers a gauge family.
func NewGaugeVec(r *Registry, name, help string, labels ...string) *GaugeVec {
	g := &GaugeVec{nm: name, hp: help, v: newVec(labels, func() *Gauge { return &Gauge{} })}
	r.register(g)
	return g
}

// With returns the child gauge for the given label values.
func (g *GaugeVec) With(values ...string) *Gauge { return g.v.with(values) }

func (g *GaugeVec) name() string { return g.nm }
func (g *GaugeVec) help() string { return g.hp }
func (g *GaugeVec) kind() string { return "gauge" }
func (g *GaugeVec) write(w io.Writer) {
	vals, children := g.v.snapshot()
	for i, ch := range children {
		fmt.Fprintf(w, "%s%s %s\n", g.nm, labelSet(g.v.labels, vals[i]), fmtFloat(ch.Value()))
	}
}

// GaugeFunc exposes a value computed at scrape time (e.g. queue depth).
type GaugeFunc struct {
	nm, hp string
	fn     func() float64
}

// NewGaugeFunc registers a callback-backed gauge.
func NewGaugeFunc(r *Registry, name, help string, fn func() float64) *GaugeFunc {
	g := &GaugeFunc{nm: name, hp: help, fn: fn}
	r.register(g)
	return g
}

func (g *GaugeFunc) name() string { return g.nm }
func (g *GaugeFunc) help() string { return g.hp }
func (g *GaugeFunc) kind() string { return "gauge" }
func (g *GaugeFunc) write(w io.Writer) {
	fmt.Fprintf(w, "%s %s\n", g.nm, fmtFloat(g.fn()))
}

// Histogram observes a distribution into fixed cumulative buckets.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // upper bounds, ascending, +Inf implicit
	counts []int64   // per-bucket (non-cumulative) counts
	infN   int64
	sum    float64
	totalN int64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.sum += v
	h.totalN++
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i]++
			return
		}
	}
	h.infN++
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.totalN
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Quantile estimates the q-quantile (0..1) from the bucket counts by
// attributing each bucket's mass to its upper bound — good enough for
// /statusz summaries; Prometheus computes its own from the raw buckets.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.totalN == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(h.totalN)))
	var cum int64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			return h.bounds[i]
		}
	}
	return math.Inf(1)
}

// HistogramVec is a family of histograms keyed by label values, all
// sharing one bucket layout.
type HistogramVec struct {
	nm, hp string
	bounds []float64
	v      *vec[*Histogram]
}

// NewHistogramVec registers a histogram family. Bounds must be ascending
// upper bounds; the +Inf bucket is implicit.
func NewHistogramVec(r *Registry, name, help string, bounds []float64, labels ...string) *HistogramVec {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("metrics: histogram %q bounds not ascending", name))
		}
	}
	h := &HistogramVec{nm: name, hp: help, bounds: bounds,
		v: newVec(labels, func() *Histogram {
			return &Histogram{bounds: bounds, counts: make([]int64, len(bounds))}
		})}
	r.register(h)
	return h
}

// With returns the child histogram for the given label values.
func (h *HistogramVec) With(values ...string) *Histogram { return h.v.with(values) }

// LabelNames returns the family's label names in declaration order.
func (h *HistogramVec) LabelNames() []string {
	out := make([]string, len(h.v.labels))
	copy(out, h.v.labels)
	return out
}

// Snapshot returns the family's children as (labelValues, histogram)
// pairs sorted by label key — the /statusz path to quantile summaries
// without a Prometheus scrape.
func (h *HistogramVec) Snapshot() ([][]string, []*Histogram) {
	return h.v.snapshot()
}

func (h *HistogramVec) name() string { return h.nm }
func (h *HistogramVec) help() string { return h.hp }
func (h *HistogramVec) kind() string { return "histogram" }
func (h *HistogramVec) write(w io.Writer) {
	vals, children := h.v.snapshot()
	for i, ch := range children {
		ch.mu.Lock()
		var cum int64
		for j, b := range ch.bounds {
			cum += ch.counts[j]
			fmt.Fprintf(w, "%s_bucket%s %d\n", h.nm, labelSet(h.v.labels, vals[i], "le", fmtFloat(b)), cum)
		}
		fmt.Fprintf(w, "%s_bucket%s %d\n", h.nm, labelSet(h.v.labels, vals[i], "le", "+Inf"), ch.totalN)
		fmt.Fprintf(w, "%s_sum%s %s\n", h.nm, labelSet(h.v.labels, vals[i]), fmtFloat(ch.sum))
		fmt.Fprintf(w, "%s_count%s %d\n", h.nm, labelSet(h.v.labels, vals[i]), ch.totalN)
		ch.mu.Unlock()
	}
}

// LatencyBuckets is an exponential bucket layout (in seconds) spanning
// 100µs to ~100s, suited to both simulated device latencies and wall
// serving latencies.
func LatencyBuckets() []float64 {
	out := make([]float64, 0, 21)
	for v := 1e-4; v < 200; v *= 2 {
		out = append(out, v)
	}
	return out
}

// OccupancyBuckets is a power-of-two bucket layout for batch-occupancy
// histograms (rows fused into one batched execution).
func OccupancyBuckets() []float64 {
	out := make([]float64, 0, 7)
	for v := 1.0; v <= 64; v *= 2 {
		out = append(out, v)
	}
	return out
}

// RatioBuckets is a bucket layout for predicted/actual ratio histograms,
// dense around 1.0 (an exact predictor) and widening geometrically toward
// 8× under- and over-estimation.
func RatioBuckets() []float64 {
	return []float64{0.125, 0.25, 0.5, 0.7, 0.8, 0.9, 0.95,
		1.05, 1.1, 1.25, 1.5, 2, 4, 8}
}

// DurationSeconds converts a time.Duration to seconds for Observe.
func DurationSeconds(d time.Duration) float64 { return d.Seconds() }
