package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func render(r *Registry) string {
	var sb strings.Builder
	if _, err := r.WriteTo(&sb); err != nil {
		panic(err)
	}
	return sb.String()
}

func TestCounterVec(t *testing.T) {
	r := NewRegistry()
	c := NewCounterVec(r, "req_total", "requests", "model", "code")
	c.With("googlenet", "200").Add(3)
	c.With("googlenet", "200").Inc()
	c.With("vgg16", "503").Inc()
	out := render(r)
	for _, want := range []string{
		"# HELP req_total requests",
		"# TYPE req_total counter",
		`req_total{model="googlenet",code="200"} 4`,
		`req_total{model="vgg16",code="503"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestUnlabeledAndGauge(t *testing.T) {
	r := NewRegistry()
	c := NewCounterVec(r, "plain_total", "plain")
	c.With().Inc()
	g := NewGaugeVec(r, "depth", "queue depth", "device")
	g.With("dev0").Set(2.5)
	g.With("dev0").Add(0.5)
	NewGaugeFunc(r, "up", "always one", func() float64 { return 1 })
	out := render(r)
	for _, want := range []string{"plain_total 1\n", `depth{device="dev0"} 3` + "\n", "up 1\n"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := NewHistogramVec(r, "lat_seconds", "latency", []float64{0.01, 0.1, 1}, "model")
	child := h.With("m")
	for _, v := range []float64{0.005, 0.02, 0.02, 0.5, 5} {
		child.Observe(v)
	}
	if got := child.Count(); got != 5 {
		t.Fatalf("count %d", got)
	}
	if math.Abs(child.Sum()-5.545) > 1e-9 {
		t.Fatalf("sum %v", child.Sum())
	}
	// Cumulative buckets: ≤0.01 → 1, ≤0.1 → 3, ≤1 → 4, +Inf → 5.
	out := render(r)
	for _, want := range []string{
		`lat_seconds_bucket{model="m",le="0.01"} 1`,
		`lat_seconds_bucket{model="m",le="0.1"} 3`,
		`lat_seconds_bucket{model="m",le="1"} 4`,
		`lat_seconds_bucket{model="m",le="+Inf"} 5`,
		`lat_seconds_sum{model="m"} 5.545`,
		`lat_seconds_count{model="m"} 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// Quantile attributes bucket mass to upper bounds.
	if q := child.Quantile(0.5); q != 0.1 {
		t.Errorf("p50 = %v, want 0.1", q)
	}
	if q := child.Quantile(1); !math.IsInf(q, 1) {
		t.Errorf("p100 = %v, want +Inf", q)
	}
}

func TestHistogramQuantileEmpty(t *testing.T) {
	r := NewRegistry()
	h := NewHistogramVec(r, "h", "h", []float64{1})
	if q := h.With().Quantile(0.99); q != 0 {
		t.Fatalf("empty quantile %v", q)
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	NewCounterVec(r, "dup", "d")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate name")
		}
	}()
	NewGaugeVec(r, "dup", "d")
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	c := NewCounterVec(r, "esc_total", "esc", "v")
	c.With(`a"b\c` + "\nd").Inc()
	out := render(r)
	if !strings.Contains(out, `esc_total{v="a\"b\\c\nd"} 1`) {
		t.Errorf("bad escaping:\n%s", out)
	}
}

func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	c := NewCounterVec(r, "c_total", "c", "k")
	h := NewHistogramVec(r, "h_seconds", "h", LatencyBuckets(), "k")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			key := []string{"a", "b"}[w%2]
			for i := 0; i < 500; i++ {
				c.With(key).Inc()
				h.With(key).Observe(float64(i) * 1e-4)
			}
		}(w)
	}
	wg.Wait()
	if got := c.With("a").Value() + c.With("b").Value(); got != 4000 {
		t.Fatalf("total %d, want 4000", got)
	}
	if got := h.With("a").Count() + h.With("b").Count(); got != 4000 {
		t.Fatalf("histogram total %d, want 4000", got)
	}
	render(r) // must not race with writers
}

func TestHistogramVecSnapshotAndLabels(t *testing.T) {
	r := NewRegistry()
	h := NewHistogramVec(r, "drift", "predicted/actual", RatioBuckets(), "proc", "kind")
	h.With("CPU", "conv").Observe(0.9)
	h.With("CPU", "conv").Observe(1.2)
	h.With("GPU", "fc").Observe(1.0)

	if names := h.LabelNames(); len(names) != 2 || names[0] != "proc" || names[1] != "kind" {
		t.Fatalf("LabelNames = %v", names)
	}
	// The returned slice is a copy: mutating it must not corrupt the vec.
	h.LabelNames()[0] = "corrupted"
	if h.LabelNames()[0] != "proc" {
		t.Fatal("LabelNames returned the internal slice")
	}

	vals, hists := h.Snapshot()
	if len(vals) != 2 || len(hists) != 2 {
		t.Fatalf("Snapshot returned %d children, want 2", len(vals))
	}
	// Sorted by label key: CPU before GPU.
	if vals[0][0] != "CPU" || vals[0][1] != "conv" || vals[1][0] != "GPU" {
		t.Fatalf("Snapshot label values = %v", vals)
	}
	if hists[0].Count() != 2 || hists[1].Count() != 1 {
		t.Fatalf("Snapshot counts = %d, %d", hists[0].Count(), hists[1].Count())
	}
}

func TestRatioBuckets(t *testing.T) {
	b := RatioBuckets()
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("RatioBuckets not ascending at %d: %v", i, b)
		}
	}
	// 1.0 must fall between two finite bounds so an exact predictor is
	// distinguishable from gross drift.
	below, above := false, false
	for _, v := range b {
		if v < 1 {
			below = true
		}
		if v > 1 {
			above = true
		}
	}
	if !below || !above {
		t.Fatalf("RatioBuckets must straddle 1.0: %v", b)
	}
}
