package frontend

import (
	"bytes"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mulayer/internal/server"
	"mulayer/internal/soc"
)

// smokeBackend is one fleet-smoke replica: a real inference server
// exposed through a killable http.Server so the test can crash it
// (listener and connections torn down, no drain) and restart it on the
// same address.
type smokeBackend struct {
	srv  *server.Server
	addr string

	mu sync.Mutex
	hs *http.Server
}

func startSmokeBackend(t *testing.T, cfg server.Config) *smokeBackend {
	t.Helper()
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	b := &smokeBackend{srv: srv, addr: l.Addr().String()}
	b.serve(l)
	t.Cleanup(func() {
		b.kill()
		sctx, cancel := timeoutCtx(5 * time.Second)
		defer cancel()
		_ = srv.Shutdown(sctx)
	})
	return b
}

func (b *smokeBackend) serve(l net.Listener) {
	hs := &http.Server{Handler: b.srv.Handler()}
	b.mu.Lock()
	b.hs = hs
	b.mu.Unlock()
	go hs.Serve(l)
}

// kill crashes the replica: listener and all connections close at once,
// exactly what a dead process looks like from the frontend.
func (b *smokeBackend) kill() {
	b.mu.Lock()
	hs := b.hs
	b.hs = nil
	b.mu.Unlock()
	if hs != nil {
		hs.Close()
	}
}

// restart brings the same scheduler pool back up on the same address.
func (b *smokeBackend) restart(t *testing.T) {
	t.Helper()
	l, err := net.Listen("tcp", b.addr)
	if err != nil {
		t.Fatalf("restart on %s: %v", b.addr, err)
	}
	b.serve(l)
}

// TestFleetSmokeKillRestart is the fleet chaos smoke (make fleet-smoke):
// three live backends behind the frontend, sustained load, one backend
// crash-killed mid-run and restarted — availability must stay ≥99% with
// zero routing-attributable failures (every non-2xx must be a backend's
// own admission verdict, never a frontend routing error), and the
// revived backend must rejoin the rotation.
func TestFleetSmokeKillRestart(t *testing.T) {
	leakCheck(t)
	mods := fleetModels(t)
	cfg := server.Config{
		Models:     mods,
		SoCs:       []server.SoCSpec{{Name: "high", SoC: soc.Exynos7420, Workers: 1}},
		QueueDepth: 64,
	}
	backends := []*smokeBackend{
		startSmokeBackend(t, cfg),
		startSmokeBackend(t, cfg),
		startSmokeBackend(t, cfg),
	}
	urls := make([]string, len(backends))
	for i, b := range backends {
		urls[i] = "http://" + b.addr
	}

	f, err := New(Config{
		Backends:          urls,
		ProbeEvery:        50 * time.Millisecond,
		ProbeTimeout:      time.Second,
		FailThreshold:     2,
		QuarantineBackoff: 200 * time.Millisecond,
		MaxAttempts:       3,
		HedgeBudget:       0.1,
		HedgeMax:          500 * time.Millisecond,
		RequestTimeout:    5 * time.Second,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	fts := httptest.NewServer(f.Handler())
	t.Cleanup(func() {
		fts.Close()
		f.Close()
	})

	var total, ok2xx, shed5xx, other atomic.Int64
	var firstOther atomic.Value
	stopLoad := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			model := "lenet5"
			if w%2 == 1 {
				model = "googlenet"
			}
			payload, _ := json.Marshal(server.InferRequest{Model: model})
			for {
				select {
				case <-stopLoad:
					return
				default:
				}
				resp, err := http.Post(fts.URL+"/v1/infer", "application/json", bytes.NewReader(payload))
				total.Add(1)
				if err != nil {
					other.Add(1)
					firstOther.CompareAndSwap(nil, err.Error())
					continue
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				switch {
				case resp.StatusCode < 300:
					ok2xx.Add(1)
				case resp.StatusCode == http.StatusServiceUnavailable:
					// A backend shedding load is its admission policy at
					// work, not a routing failure — but it still counts
					// against fleet availability below.
					shed5xx.Add(1)
				default:
					other.Add(1)
					firstOther.CompareAndSwap(nil, string(body))
				}
				time.Sleep(2 * time.Millisecond)
			}
		}(w)
	}

	// Warm-up, crash one replica mid-run, let the fleet absorb it, then
	// bring it back and let it rejoin.
	time.Sleep(800 * time.Millisecond)
	backends[0].kill()
	time.Sleep(1200 * time.Millisecond)
	backends[0].restart(t)
	time.Sleep(1200 * time.Millisecond)
	close(stopLoad)
	wg.Wait()

	tot, ok, shed, oth := total.Load(), ok2xx.Load(), shed5xx.Load(), other.Load()
	if tot < 100 {
		t.Fatalf("load loop barely ran: %d requests", tot)
	}
	avail := float64(ok) / float64(tot)
	t.Logf("fleet smoke: %d requests, %d ok, %d shed, %d other → availability %.3f%%",
		tot, ok, shed, oth, 100*avail)
	if oth > 0 {
		t.Errorf("%d routing-attributable failures (first: %v)", oth, firstOther.Load())
	}
	if avail < 0.99 {
		t.Errorf("availability %.3f%% below the 99%% floor", 100*avail)
	}

	// The revived backend must be healthy and taking traffic again.
	revived, _ := NormalizeBackendURL(urls[0])
	eventually(t, 5*time.Second, "revived backend healthy", func() bool {
		for _, b := range f.reg.Snapshot() {
			if b.URL == revived {
				return b.State == "ok"
			}
		}
		return false
	})
	// And it must actually serve again, not just probe ready.
	payload, _ := json.Marshal(server.InferRequest{Model: "lenet5"})
	resp, err := http.Post(urls[0]+"/v1/infer", "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatalf("revived backend refused a request: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("revived backend: %d (%s)", resp.StatusCode, body)
	}
}
