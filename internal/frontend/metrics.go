package frontend

import (
	"mulayer/internal/server/metrics"
)

// fleetMetrics are the mulayer_frontend_* metric families.
type fleetMetrics struct {
	reg *metrics.Registry

	// requests by backend and status-code class ("2xx", "5xx", ...).
	requests *metrics.CounterVec
	// rejected requests by reason (inflight_full, no_backend, timeout).
	rejected *metrics.CounterVec
	// routing decisions by the placement policy's reason
	// (least_load, affinity, affinity_spill).
	routing *metrics.CounterVec
	// transportErrors by backend: dial/read failures proxying to it.
	transportErrors *metrics.CounterVec
	// retries: transport-failure failovers onto the next-ranked backend.
	retries *metrics.Counter
	// hedges by result (won, lost, failed).
	hedges *metrics.CounterVec
	// hedgesSkipped by reason (budget, no_backend, disabled).
	hedgesSkipped *metrics.CounterVec
	// health transitions by backend and event (added, drained, undrained,
	// removed, quarantined, probing, recovered, ejected, readmitted).
	health *metrics.CounterVec
	// probeFailures by backend.
	probeFailures *metrics.CounterVec
	// ejections by backend: latency-outlier ejections.
	ejections *metrics.CounterVec
	// integrityFailures by backend and reason (checksum, length):
	// replies the frontend refused to deliver.
	integrityFailures *metrics.CounterVec
	// latency of proxied requests end to end, by model.
	latency *metrics.HistogramVec
	// inflight proxied requests.
	inflight *metrics.Gauge
}

func newFleetMetrics(healthyCount, ejectedCount func() float64) *fleetMetrics {
	reg := metrics.NewRegistry()
	m := &fleetMetrics{
		reg: reg,
		requests: metrics.NewCounterVec(reg, "mulayer_frontend_requests_total",
			"Proxied /v1/infer requests by backend and status class.",
			"backend", "code"),
		rejected: metrics.NewCounterVec(reg, "mulayer_frontend_rejected_total",
			"Requests rejected by the frontend itself, by reason.",
			"reason"),
		routing: metrics.NewCounterVec(reg, "mulayer_frontend_routing_total",
			"Primary routing decisions by placement reason.",
			"reason"),
		transportErrors: metrics.NewCounterVec(reg, "mulayer_frontend_transport_errors_total",
			"Transport failures (dial/read) proxying to a backend.",
			"backend"),
		hedges: metrics.NewCounterVec(reg, "mulayer_frontend_hedges_total",
			"Hedged attempts launched, by outcome.",
			"result"),
		hedgesSkipped: metrics.NewCounterVec(reg, "mulayer_frontend_hedges_skipped_total",
			"Hedge opportunities not taken, by reason.",
			"reason"),
		health: metrics.NewCounterVec(reg, "mulayer_frontend_backend_health_total",
			"Backend registry health transitions by backend and event.",
			"backend", "event"),
		probeFailures: metrics.NewCounterVec(reg, "mulayer_frontend_probe_failures_total",
			"Failed health probes by backend.",
			"backend"),
		ejections: metrics.NewCounterVec(reg, "mulayer_frontend_ejections_total",
			"Latency-outlier ejections by backend (gray-slow replicas removed from rotation).",
			"backend"),
		integrityFailures: metrics.NewCounterVec(reg, "mulayer_frontend_integrity_failures_total",
			"Backend replies failing end-to-end integrity verification, by backend and reason.",
			"backend", "reason"),
		latency: metrics.NewHistogramVec(reg, "mulayer_frontend_latency_seconds",
			"End-to-end proxied request latency (hedges and failovers included).",
			metrics.LatencyBuckets(), "model"),
	}
	retries := metrics.NewCounterVec(reg, "mulayer_frontend_retries_total",
		"Transport-failure failovers onto the next-ranked backend.")
	m.retries = retries.With()
	inflight := metrics.NewGaugeVec(reg, "mulayer_frontend_inflight",
		"Proxied requests currently in flight.")
	m.inflight = inflight.With()
	metrics.NewGaugeFunc(reg, "mulayer_frontend_backends_healthy",
		"Backends currently routable (healthy and not draining).",
		healthyCount)
	metrics.NewGaugeFunc(reg, "mulayer_frontend_backends_ejected",
		"Backends currently ejected by the latency outlier ejector.",
		ejectedCount)
	return m
}
