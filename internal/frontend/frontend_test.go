package frontend

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"mulayer/internal/dispatch"
	"mulayer/internal/models"
	"mulayer/internal/server"
	"mulayer/internal/soc"
)

// fleetModels loads the small model set the fleet tests serve.
func fleetModels(t *testing.T) map[string]*models.Model {
	t.Helper()
	out := map[string]*models.Model{}
	for name, build := range map[string]func(models.Config) (*models.Model, error){
		"googlenet": models.GoogLeNet,
		"lenet5":    models.LeNet5,
	} {
		m, err := build(models.Config{})
		if err != nil {
			t.Fatal(err)
		}
		out[name] = m
	}
	return out
}

func timeoutCtx(d time.Duration) (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), d)
}

// leakCheck fails the test if goroutines outlive the cleanup stack
// registered after it.
func leakCheck(t *testing.T) {
	t.Helper()
	base := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(3 * time.Second)
		for runtime.NumGoroutine() > base+4 {
			if time.Now().After(deadline) {
				t.Errorf("goroutines %d vs baseline %d: leak", runtime.NumGoroutine(), base)
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
	})
}

// newBackend spins a real inference server on an httptest listener.
func newBackend(t *testing.T, cfg server.Config) (*server.Server, *httptest.Server) {
	t.Helper()
	if cfg.Models == nil {
		cfg.Models = fleetModels(t)
	}
	if cfg.SoCs == nil {
		cfg.SoCs = []server.SoCSpec{{Name: "high", SoC: soc.Exynos7420, Workers: 1}}
	}
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = 32
	}
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		sctx, cancel := timeoutCtx(5 * time.Second)
		defer cancel()
		_ = srv.Shutdown(sctx)
	})
	return srv, ts
}

// newTestFrontend builds a frontend over the given backend URLs and
// serves it on an httptest listener.
func newTestFrontend(t *testing.T, cfg Config) (*Frontend, *httptest.Server) {
	t.Helper()
	f, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(f.Handler())
	t.Cleanup(func() {
		ts.Close()
		f.Close()
	})
	return f, ts
}

func postFleetInfer(t *testing.T, url string, req server.InferRequest) (*http.Response, []byte) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(url+"/v1/infer", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// eventually polls cond until it holds or the deadline passes.
func eventually(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for {
		if cond() {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// pinFirst is a test policy that always ranks one pinned backend first,
// the rest in candidate order — deterministic routing for hedge and
// failover tests.
type pinFirst struct{ url *string }

func (p pinFirst) Rank(key string, cands []dispatch.Candidate) []dispatch.Decision {
	out := make([]dispatch.Decision, 0, len(cands))
	for i, c := range cands {
		if c.ID == *p.url {
			out = append([]dispatch.Decision{{Index: i, Reason: dispatch.ReasonAffinity}}, out...)
			continue
		}
		out = append(out, dispatch.Decision{Index: i, Reason: dispatch.ReasonLeastLoad})
	}
	return out
}

// TestFleetEndToEnd proxies real inference over two live backends and
// checks routing affinity, the passthroughs, and the fleet surfaces.
func TestFleetEndToEnd(t *testing.T) {
	leakCheck(t)
	_, b1 := newBackend(t, server.Config{})
	_, b2 := newBackend(t, server.Config{})
	_, fts := newTestFrontend(t, Config{
		Backends:   []string{b1.URL, b2.URL},
		ProbeEvery: 50 * time.Millisecond,
	})

	// Inference proxies end to end, and a model sticks to its
	// rendezvous backend while the fleet is idle.
	seen := map[string]bool{}
	for i := 0; i < 6; i++ {
		body, _ := json.Marshal(server.InferRequest{Model: "lenet5"})
		resp, err := http.Post(fts.URL+"/v1/infer", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("infer %d: %d (%s)", i, resp.StatusCode, data)
		}
		var rep server.InferResponse
		if err := json.Unmarshal(data, &rep); err != nil {
			t.Fatal(err)
		}
		if rep.Model != "lenet5" {
			t.Fatalf("reply for %q", rep.Model)
		}
		be := resp.Header.Get("X-Mulayer-Backend")
		if be == "" {
			t.Fatal("no backend header")
		}
		seen[be] = true
	}
	if len(seen) != 1 {
		t.Fatalf("idle-fleet affinity routed one model to %d backends: %v", len(seen), seen)
	}

	// Models passthrough.
	resp, err := http.Get(fts.URL + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(data), "lenet5") {
		t.Fatalf("models passthrough: %d (%s)", resp.StatusCode, data)
	}

	// Fleet surfaces.
	resp, err = http.Get(fts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz %d", resp.StatusCode)
	}
	resp, err = http.Get(fts.URL + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	var st fleetStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Healthy != 2 || len(st.Backends) != 2 {
		t.Fatalf("statusz %+v", st)
	}
	resp, err = http.Get(fts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	data, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"mulayer_frontend_requests_total",
		"mulayer_frontend_routing_total",
		"mulayer_frontend_backends_healthy 2",
	} {
		if !strings.Contains(string(data), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// fakeBackend is a scriptable backend for registry and hedge tests:
// /readyz health is toggleable, /statusz.json serves a fixed signal,
// and /v1/infer runs the configured handler.
type fakeBackend struct {
	ts    *httptest.Server
	mu    sync.Mutex
	ready bool
	infer http.HandlerFunc
}

func newFakeBackend(t *testing.T) *fakeBackend {
	t.Helper()
	fb := &fakeBackend{ready: true}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		fb.mu.Lock()
		ok := fb.ready
		fb.mu.Unlock()
		if !ok {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("GET /statusz.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, `{"ready":true,"queue_wait_p95_ms":1,"predicted_wait_ms":1,"backlog_ms":1}`)
	})
	mux.HandleFunc("POST /v1/infer", func(w http.ResponseWriter, r *http.Request) {
		fb.mu.Lock()
		h := fb.infer
		fb.mu.Unlock()
		if h == nil {
			w.Header().Set("Content-Type", "application/json")
			io.WriteString(w, `{"model":"fake"}`)
			return
		}
		h(w, r)
	})
	fb.ts = httptest.NewServer(mux)
	t.Cleanup(fb.ts.Close)
	return fb
}

func (fb *fakeBackend) setReady(ok bool) {
	fb.mu.Lock()
	fb.ready = ok
	fb.mu.Unlock()
}

func (fb *fakeBackend) setInfer(h http.HandlerFunc) {
	fb.mu.Lock()
	fb.infer = h
	fb.mu.Unlock()
}

// TestRegistryHealthTransitions walks one backend through the full
// circuit: healthy → quarantined (failed probes) → half-open probing →
// healthy again, and checks each transition was counted.
func TestRegistryHealthTransitions(t *testing.T) {
	leakCheck(t)
	fb := newFakeBackend(t)
	f, _ := newTestFrontend(t, Config{
		Backends:          []string{fb.ts.URL},
		ProbeEvery:        20 * time.Millisecond,
		ProbeTimeout:      500 * time.Millisecond,
		FailThreshold:     2,
		QuarantineBackoff: 80 * time.Millisecond,
	})
	state := func() string {
		snap := f.reg.Snapshot()
		if len(snap) != 1 {
			t.Fatalf("snapshot %+v", snap)
		}
		return snap[0].State
	}
	url, err := NormalizeBackendURL(fb.ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	events := func(ev string) int64 { return f.mets.health.With(url, ev).Value() }

	// Healthy, with a load signal from the probe.
	eventually(t, 2*time.Second, "first load signal", func() bool {
		snap := f.reg.Snapshot()
		return len(snap) == 1 && snap[0].State == "ok" && snap[0].SignalAgeMS >= 0
	})

	// Failing probes quarantine it at the threshold.
	fb.setReady(false)
	eventually(t, 2*time.Second, "quarantine", func() bool { return state() == "quarantined" })
	if events("quarantined") < 1 {
		t.Fatal("quarantine not counted")
	}
	if f.reg.HealthyCount() != 0 {
		t.Fatal("quarantined backend still counted healthy")
	}

	// Still down at backoff expiry: the half-open probe re-quarantines.
	eventually(t, 2*time.Second, "half-open probe", func() bool { return events("probing") >= 1 })
	eventually(t, 2*time.Second, "re-quarantine", func() bool { return events("quarantined") >= 2 })

	// Back up: the next half-open probe closes the circuit.
	fb.setReady(true)
	eventually(t, 4*time.Second, "recovery", func() bool { return state() == "ok" })
	if events("recovered") < 1 {
		t.Fatal("recovery not counted")
	}
	if f.reg.HealthyCount() != 1 {
		t.Fatal("recovered backend not healthy")
	}
}

// TestFailoverOnDeadBackend routes the primary attempt at a closed
// port; the transport failure must fail over to the live backend and
// quarantine the dead one.
func TestFailoverOnDeadBackend(t *testing.T) {
	leakCheck(t)
	_, live := newBackend(t, server.Config{})

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadURL := "http://" + l.Addr().String()
	l.Close()

	pin := deadURL
	f, fts := newTestFrontend(t, Config{
		Backends:          []string{live.URL, deadURL},
		ProbeEvery:        20 * time.Millisecond,
		FailThreshold:     2,
		QuarantineBackoff: 10 * time.Second, // stays down for the test
		Policy:            pinFirst{url: &pin},
		HedgeBudget:       0, // isolate the failover path
	})

	resp, data := postFleetInfer(t, fts.URL, server.InferRequest{Model: "lenet5"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("failover infer: %d (%s)", resp.StatusCode, data)
	}
	liveURL, _ := NormalizeBackendURL(live.URL)
	if got := resp.Header.Get("X-Mulayer-Backend"); got != liveURL {
		t.Fatalf("served by %q, want %q", got, liveURL)
	}
	if f.mets.retries.Value() < 1 {
		t.Fatal("failover not counted as retry")
	}
	deadNorm, _ := NormalizeBackendURL(deadURL)
	if f.mets.transportErrors.With(deadNorm).Value() < 1 {
		t.Fatal("transport error not counted")
	}

	// Passive failures plus probe failures quarantine the dead backend.
	eventually(t, 2*time.Second, "dead backend quarantined", func() bool {
		for _, b := range f.reg.Snapshot() {
			if b.URL == deadNorm {
				return b.State == "quarantined"
			}
		}
		return false
	})

	// Requests keep flowing without the primary detour once quarantined.
	resp, data = postFleetInfer(t, fts.URL, server.InferRequest{Model: "lenet5"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-quarantine infer: %d (%s)", resp.StatusCode, data)
	}
}

// TestHedgeWinsAndCancelsLoser pins the primary at a stalled backend;
// the hedge must win on the fast replica, the stalled leg must be
// cancelled (observed via its request context), and nothing may leak —
// the cancelled loser releases its goroutine and connection.
func TestHedgeWinsAndCancelsLoser(t *testing.T) {
	leakCheck(t)
	_, fast := newBackend(t, server.Config{})
	slow := newFakeBackend(t)
	released := make(chan struct{})
	slow.setInfer(func(w http.ResponseWriter, r *http.Request) {
		// Drain the body: the server only notices a client disconnect
		// (the hedge loser's cancellation) once nothing is left to read.
		io.Copy(io.Discard, r.Body)
		select {
		case <-r.Context().Done():
			close(released)
		case <-time.After(10 * time.Second):
		}
	})

	pin := slow.ts.URL
	f, fts := newTestFrontend(t, Config{
		Backends:    []string{fast.URL, slow.ts.URL},
		ProbeEvery:  20 * time.Millisecond,
		Policy:      pinFirst{url: &pin},
		HedgeBudget: 1,
		HedgeMin:    10 * time.Millisecond,
		HedgeMax:    60 * time.Millisecond, // cold-start hedge delay
	})

	start := time.Now()
	resp, data := postFleetInfer(t, fts.URL, server.InferRequest{Model: "lenet5"})
	lat := time.Since(start)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("hedged infer: %d (%s)", resp.StatusCode, data)
	}
	fastURL, _ := NormalizeBackendURL(fast.URL)
	if got := resp.Header.Get("X-Mulayer-Backend"); got != fastURL {
		t.Fatalf("served by %q, want hedge winner %q", got, fastURL)
	}
	if lat > 5*time.Second {
		t.Fatalf("hedge did not rescue the stall: %v", lat)
	}
	if f.mets.hedges.With("won").Value() != 1 {
		t.Fatalf("hedge win not counted")
	}
	select {
	case <-released:
	case <-time.After(3 * time.Second):
		t.Fatal("stalled hedge loser was never cancelled")
	}
}

// TestHedgeBudgetExhausts drains the token bucket and checks further
// hedges are skipped, bounding hedge load.
func TestHedgeBudgetExhausts(t *testing.T) {
	leakCheck(t)
	_, fast := newBackend(t, server.Config{})
	slow := newFakeBackend(t)
	slow.setInfer(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		select {
		case <-r.Context().Done():
		case <-time.After(10 * time.Second):
		}
	})
	pin := slow.ts.URL
	f, fts := newTestFrontend(t, Config{
		Backends:    []string{fast.URL, slow.ts.URL},
		ProbeEvery:  20 * time.Millisecond,
		Policy:      pinFirst{url: &pin},
		HedgeBudget: 0.01, // ~no refill
		HedgeBurst:  1,    // one token in the bucket
		HedgeMax:    40 * time.Millisecond,
		// The second request must not wait for the stalled primary
		// forever once its hedge is denied.
		RequestTimeout: 2 * time.Second,
	})

	resp, _ := postFleetInfer(t, fts.URL, server.InferRequest{Model: "lenet5"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first (hedged) request: %d", resp.StatusCode)
	}
	resp, _ = postFleetInfer(t, fts.URL, server.InferRequest{Model: "lenet5"})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("budget-starved request: %d, want 504", resp.StatusCode)
	}
	if f.mets.hedgesSkipped.With("budget").Value() < 1 {
		t.Fatal("budget denial not counted")
	}
}

// TestAdminBackends drives the live add/drain/undrain/remove surface.
func TestAdminBackends(t *testing.T) {
	leakCheck(t)
	_, b1 := newBackend(t, server.Config{})
	_, b2 := newBackend(t, server.Config{})
	f, fts := newTestFrontend(t, Config{
		Backends:   []string{b1.URL},
		ProbeEvery: 20 * time.Millisecond,
	})
	admin := func(action, url string, wantCode int) {
		t.Helper()
		body, _ := json.Marshal(backendAction{Action: action, URL: url})
		resp, err := http.Post(fts.URL+"/admin/backends", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != wantCode {
			t.Fatalf("%s %s: %d (%s), want %d", action, url, resp.StatusCode, data, wantCode)
		}
	}

	admin("add", b2.URL, http.StatusOK)
	eventually(t, 2*time.Second, "two healthy backends", func() bool { return f.reg.HealthyCount() == 2 })

	// Draining b1 pins all traffic to b2.
	admin("drain", b1.URL, http.StatusOK)
	b2URL, _ := NormalizeBackendURL(b2.URL)
	for i := 0; i < 4; i++ {
		resp, data := postFleetInfer(t, fts.URL, server.InferRequest{Model: "googlenet"})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("drained-fleet infer: %d (%s)", resp.StatusCode, data)
		}
		if got := resp.Header.Get("X-Mulayer-Backend"); got != b2URL {
			t.Fatalf("drained backend still serving: %q", got)
		}
	}

	admin("undrain", b1.URL, http.StatusOK)
	eventually(t, 2*time.Second, "undrained backend back", func() bool { return f.reg.HealthyCount() == 2 })
	admin("remove", b1.URL, http.StatusOK)
	if n := len(f.reg.Snapshot()); n != 1 {
		t.Fatalf("%d backends after remove", n)
	}
	admin("remove", b1.URL, http.StatusBadRequest) // unknown now
	admin("explode", b2.URL, http.StatusBadRequest)
}

// TestBackendsFileReload checks the config-file path: delisted backends
// drain, newly listed ones join.
func TestBackendsFileReload(t *testing.T) {
	leakCheck(t)
	_, b1 := newBackend(t, server.Config{})
	_, b2 := newBackend(t, server.Config{})
	file := filepath.Join(t.TempDir(), "backends.txt")
	if err := os.WriteFile(file, []byte("# fleet\n"+b1.URL+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	f, fts := newTestFrontend(t, Config{
		BackendsFile: file,
		ProbeEvery:   20 * time.Millisecond,
	})
	if n := len(f.reg.Snapshot()); n != 1 {
		t.Fatalf("%d backends from file", n)
	}

	// Swap b1 for b2 and reload over HTTP.
	if err := os.WriteFile(file, []byte(b2.URL+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(fts.URL+"/admin/reload", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var rep map[string]int
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || rep["added"] != 1 || rep["drained"] != 1 {
		t.Fatalf("reload: %d %+v", resp.StatusCode, rep)
	}
	b1URL, _ := NormalizeBackendURL(b1.URL)
	for _, b := range f.reg.Snapshot() {
		if b.URL == b1URL && !b.Draining {
			t.Fatal("delisted backend not draining")
		}
	}
}

// TestNoBackends: an empty fleet sheds cleanly instead of hanging.
func TestNoBackends(t *testing.T) {
	leakCheck(t)
	f, fts := newTestFrontend(t, Config{ProbeEvery: 50 * time.Millisecond})
	resp, err := http.Get(fts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz on empty fleet: %d", resp.StatusCode)
	}
	resp, data := postFleetInfer(t, fts.URL, server.InferRequest{Model: "lenet5"})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("infer on empty fleet: %d (%s)", resp.StatusCode, data)
	}
	if f.mets.rejected.With("no_backend").Value() != 1 {
		t.Fatal("no_backend rejection not counted")
	}
}

// TestFrontendAtCapacity: the in-flight bound sheds at the frontend
// before the fleet is touched.
func TestFrontendAtCapacity(t *testing.T) {
	leakCheck(t)
	slow := newFakeBackend(t)
	slow.setInfer(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		select {
		case <-r.Context().Done():
		case <-time.After(300 * time.Millisecond):
		}
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, `{"model":"fake"}`)
	})
	f, fts := newTestFrontend(t, Config{
		Backends:    []string{slow.ts.URL},
		ProbeEvery:  50 * time.Millisecond,
		MaxInflight: 1,
		HedgeBudget: 0,
	})

	done := make(chan int, 1)
	go func() {
		// No t helpers off the test goroutine.
		body, _ := json.Marshal(server.InferRequest{Model: "lenet5"})
		resp, err := http.Post(fts.URL+"/v1/infer", "application/json", bytes.NewReader(body))
		if err != nil {
			done <- -1
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		done <- resp.StatusCode
	}()
	eventually(t, 2*time.Second, "first request in flight", func() bool {
		return f.proxy.inflight.Load() == 1
	})
	resp, data := postFleetInfer(t, fts.URL, server.InferRequest{Model: "lenet5"})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("over-capacity request: %d (%s)", resp.StatusCode, data)
	}
	if f.mets.rejected.With("inflight_full").Value() != 1 {
		t.Fatal("capacity rejection not counted")
	}
	if code := <-done; code != http.StatusOK {
		t.Fatalf("admitted request: %d", code)
	}
}

// TestBackendRejectionPassesThrough: a backend's 503 is the fleet's
// answer — the frontend must not retry it onto other replicas.
func TestBackendRejectionPassesThrough(t *testing.T) {
	leakCheck(t)
	shed := newFakeBackend(t)
	shed.setInfer(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, `{"error":"queue full"}`)
	})
	other := newFakeBackend(t)
	var otherHits int64
	var mu sync.Mutex
	other.setInfer(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		otherHits++
		mu.Unlock()
		io.WriteString(w, `{"model":"fake"}`)
	})
	pin := shed.ts.URL
	_, fts := newTestFrontend(t, Config{
		Backends:    []string{shed.ts.URL, other.ts.URL},
		ProbeEvery:  50 * time.Millisecond,
		Policy:      pinFirst{url: &pin},
		HedgeBudget: 0,
	})
	resp, data := postFleetInfer(t, fts.URL, server.InferRequest{Model: "lenet5"})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("shed request: %d (%s)", resp.StatusCode, data)
	}
	if !strings.Contains(string(data), "queue full") {
		t.Fatalf("backend rejection not passed through: %s", data)
	}
	mu.Lock()
	hits := otherHits
	mu.Unlock()
	if hits != 0 {
		t.Fatalf("503 was retried onto another backend %d times", hits)
	}
}
