// Package frontend is the μLayer fleet tier: an HTTP proxy that routes
// /v1/infer over many mulayer-serve backends (see cmd/mulayer-frontend).
//
// The node-level scheduler (internal/server) extends the paper's
// makespan argument from channels within a layer to requests across
// devices; this package extends it once more, to requests across
// backends. The same predicted-completion signal that picks a split
// ratio inside a node — exposed by each backend at /statusz.json —
// picks the least-loaded replica across nodes, through the placement
// policies shared with the node tier (internal/dispatch):
//
//   - A backend registry holds the fleet, with live add/drain/remove via
//     an admin endpoint and a reloadable backends file. Per-backend
//     health is driven by periodic /readyz probes plus passive
//     error/latency observations, with quarantine and half-open probing
//     mirroring the node-level device circuit breaker.
//   - Per-model rendezvous hashing concentrates a model's requests on a
//     stable few replicas (plan-cache and batch-fusion affinity),
//     softened by least-predicted-load spill when the affinity choice is
//     overloaded relative to the fleet.
//   - Hedged requests: after a p95-derived delay, a second attempt is
//     launched on the next-ranked replica; the first decisive response
//     wins and the loser is cancelled. A hedge budget bounds hedging to
//     a fraction of traffic so it cannot double fleet load.
//   - Transport failures (a killed backend) fail over to the next-ranked
//     replica; backend HTTP rejections (503 shedding) pass through
//     untouched — admission is backend policy, and retrying rejections
//     amplifies the overload they protect against.
package frontend

import (
	"fmt"
	"net"
	"net/http"
	"time"

	"mulayer/internal/dispatch"
)

// NewHTTPTransport builds the tuned transport the frontend proxies and
// probes through: a bounded dial so a black-holed backend cannot hang a
// failover or hedge leg, a response-header timeout so an accepted-but-
// silent connection dies too, and a per-backend idle pool sized to the
// hedging fan-out so bursts of legs reuse warm connections.
func NewHTTPTransport(dialTimeout, responseHeaderTimeout time.Duration, maxIdlePerHost int) *http.Transport {
	return &http.Transport{
		DialContext: (&net.Dialer{
			Timeout:   dialTimeout,
			KeepAlive: 30 * time.Second,
		}).DialContext,
		MaxIdleConns:          4 * maxIdlePerHost,
		MaxIdleConnsPerHost:   maxIdlePerHost,
		IdleConnTimeout:       90 * time.Second,
		ResponseHeaderTimeout: responseHeaderTimeout,
		ExpectContinueTimeout: time.Second,
	}
}

// Config configures the fleet frontend.
type Config struct {
	// Addr is the listen address of ListenAndServe (default ":8090").
	Addr string

	// Backends are the initial backend base URLs ("http://host:port";
	// a bare "host:port" gets the http scheme). The set changes at
	// runtime via /admin/backends and Reload.
	Backends []string
	// BackendsFile optionally names a file holding one backend URL per
	// line ('#' comments); POST /admin/reload (or SIGHUP in the binary)
	// re-reads it, adding new backends and draining delisted ones. When
	// set, the file is also read at startup, merging with Backends.
	BackendsFile string

	// ProbeEvery is the health/load probe cadence per backend (default
	// 500ms): GET /readyz drives the circuit breaker, GET /statusz.json
	// refreshes the load signal.
	ProbeEvery time.Duration
	// ProbeTimeout bounds one probe round trip (default 2s).
	ProbeTimeout time.Duration

	// FailThreshold is the number of consecutive failures — passive
	// transport errors and failed probes share the counter — that
	// quarantines a backend (default 3).
	FailThreshold int
	// QuarantineBackoff is the first quarantine duration; each
	// re-quarantine doubles it up to QuarantineBackoffMax (defaults 1s
	// and 30s).
	QuarantineBackoff    time.Duration
	QuarantineBackoffMax time.Duration

	// MaxInflight bounds proxied requests in flight across the fleet;
	// beyond it /v1/infer answers 503 (default 512).
	MaxInflight int
	// MaxAttempts bounds transport-failure failovers per request: the
	// primary attempt plus MaxAttempts-1 re-dispatches onto the
	// next-ranked backends (default 3).
	MaxAttempts int
	// RequestTimeout caps one proxied request end to end, hedges and
	// failovers included (default 30s; the client's own deadline still
	// applies through context cancellation).
	RequestTimeout time.Duration

	// HedgeBudget is the fraction of completed requests that may hedge
	// (default 0.1); 0 disables hedging entirely. Budget accrues per
	// completed request and each hedge spends one unit, so hedging is
	// bounded to HedgeBudget of traffic no matter how slow the fleet is.
	HedgeBudget float64
	// HedgeBurst caps accrued hedge budget (default 8).
	HedgeBurst int
	// HedgeMin / HedgeMax clamp the hedge delay, which tracks the p95 of
	// recently observed request latencies (defaults 10ms and 2s). Before
	// any latency has been observed the delay is HedgeMax.
	HedgeMin time.Duration
	HedgeMax time.Duration

	// DrainTimeout bounds graceful shutdown: how long Shutdown waits for
	// proxied requests in flight (default 10s).
	DrainTimeout time.Duration

	// DialTimeout bounds one TCP dial to a backend (default 2s) so a
	// black-holed backend fails a leg fast instead of hanging it.
	DialTimeout time.Duration
	// ResponseHeaderTimeout bounds the wait for a backend's response
	// headers after the request is written (default 15s) — the gray
	// counterpart of DialTimeout: a connection that opens but never
	// answers.
	ResponseHeaderTimeout time.Duration
	// MaxIdleConnsPerHost sizes the per-backend idle connection pool.
	// Hedge and failover legs open connections in bursts; keeping them
	// warm stops every hedge from paying a fresh dial (default 32).
	MaxIdleConnsPerHost int
	// Transport overrides the proxy/probe HTTP transport entirely; nil
	// builds a tuned http.Transport from the three knobs above. The
	// -net-faults flag wraps the tuned transport in a
	// netfaults.Transport here.
	Transport http.RoundTripper

	// EjectFactor is the outlier-ejection threshold: a backend whose
	// observed success-latency p95 exceeds EjectFactor × the fleet
	// median p95 for EjectHold is ejected from rotation (Envoy-style)
	// even though it still answers /readyz — the gray-slow replica the
	// circuit breaker cannot see. 0 means the default 3.0; negative
	// disables ejection.
	EjectFactor float64
	// EjectHold is how long the outlier condition must persist before
	// ejection (default 2s) — brief latency spikes do not eject.
	EjectHold time.Duration
	// EjectMinSamples is the minimum served-latency samples a backend
	// needs in its window before it can be ejected or counted in the
	// fleet median (default 8).
	EjectMinSamples int
	// EjectBackoff is the first ejection duration; each re-ejection of
	// the same backend doubles it up to QuarantineBackoffMax (default
	// 5s). Readmission is by time, Envoy-style: after the backoff the
	// backend rejoins and must re-earn ejection with fresh samples.
	EjectBackoff time.Duration

	// Admission and Policy are the shared scheduling policies
	// (internal/dispatch). Admission gates the in-flight bound (default
	// dispatch.BoundedQueue); Policy ranks backends per request (default
	// dispatch.RendezvousLeastLoad with SpillFactor/SpillMargin below).
	Admission dispatch.Admission
	Policy    dispatch.Policy
	// SpillFactor and SpillMargin tune the default policy's load-spill
	// guard (see dispatch.RendezvousLeastLoad); ignored when Policy is
	// set explicitly.
	SpillFactor float64
	SpillMargin time.Duration
}

// withDefaults fills zero fields.
func (c Config) withDefaults() (Config, error) {
	if c.Addr == "" {
		c.Addr = ":8090"
	}
	if c.ProbeEvery <= 0 {
		c.ProbeEvery = 500 * time.Millisecond
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 2 * time.Second
	}
	if c.FailThreshold <= 0 {
		c.FailThreshold = 3
	}
	if c.QuarantineBackoff <= 0 {
		c.QuarantineBackoff = time.Second
	}
	if c.QuarantineBackoffMax <= 0 {
		c.QuarantineBackoffMax = 30 * time.Second
	}
	if c.QuarantineBackoffMax < c.QuarantineBackoff {
		c.QuarantineBackoffMax = c.QuarantineBackoff
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 512
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.HedgeBudget < 0 || c.HedgeBudget > 1 {
		return c, fmt.Errorf("frontend: hedge budget %v outside [0, 1]", c.HedgeBudget)
	}
	if c.HedgeBurst <= 0 {
		c.HedgeBurst = 8
	}
	if c.HedgeMin <= 0 {
		c.HedgeMin = 10 * time.Millisecond
	}
	if c.HedgeMax <= 0 {
		c.HedgeMax = 2 * time.Second
	}
	if c.HedgeMax < c.HedgeMin {
		c.HedgeMax = c.HedgeMin
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 10 * time.Second
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 2 * time.Second
	}
	if c.ResponseHeaderTimeout <= 0 {
		c.ResponseHeaderTimeout = 15 * time.Second
	}
	if c.MaxIdleConnsPerHost <= 0 {
		c.MaxIdleConnsPerHost = 32
	}
	if c.Transport == nil {
		c.Transport = NewHTTPTransport(c.DialTimeout, c.ResponseHeaderTimeout, c.MaxIdleConnsPerHost)
	}
	if c.EjectFactor == 0 {
		c.EjectFactor = 3.0
	}
	if c.EjectHold <= 0 {
		c.EjectHold = 2 * time.Second
	}
	if c.EjectMinSamples <= 0 {
		c.EjectMinSamples = 8
	}
	if c.EjectBackoff <= 0 {
		c.EjectBackoff = 5 * time.Second
	}
	if c.Admission == nil {
		c.Admission = dispatch.BoundedQueue{}
	}
	if c.Policy == nil {
		c.Policy = dispatch.RendezvousLeastLoad{
			SpillFactor: c.SpillFactor,
			SpillMargin: c.SpillMargin,
		}
	}
	return c, nil
}
