package frontend

import (
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"mulayer/internal/server"
)

func TestJitterBackoffBounds(t *testing.T) {
	d := 100 * time.Millisecond
	for _, u := range []float64{0, 0.25, 0.5, 0.999} {
		j := jitterBackoff(d, u)
		if j < 75*time.Millisecond || j >= 125*time.Millisecond {
			t.Errorf("jitterBackoff(%v, %v) = %v, want [75ms, 125ms)", d, u, j)
		}
	}
	// Tiny backoffs never jitter to zero (a zero until would half-open
	// the circuit on the very next probe round).
	if j := jitterBackoff(time.Microsecond, 0); j < time.Millisecond {
		t.Errorf("floor: %v", j)
	}
}

func TestVerifyIntegrity(t *testing.T) {
	body := []byte(`{"model":"lenet5"}` + "\n")
	resp := func(cl int64, sum string) *http.Response {
		r := &http.Response{ContentLength: cl, Header: http.Header{}}
		if sum != "" {
			r.Header.Set(server.ChecksumHeader, sum)
		}
		return r
	}
	cases := []struct {
		name   string
		resp   *http.Response
		reason string
	}{
		{"unknown length, no checksum", resp(-1, ""), ""},
		{"exact length", resp(int64(len(body)), ""), ""},
		{"short body", resp(int64(len(body))+3, ""), "length"},
		{"long body", resp(int64(len(body))-1, ""), "length"},
		{"matching checksum", resp(-1, server.BodyChecksum(body)), ""},
		{"wrong checksum", resp(-1, "crc32c=deadbeef"), "checksum"},
		// A truncated reply keeps its stale Content-Length: the length
		// check fires first and carries the more precise reason.
		{"both wrong", resp(int64(len(body))+3, "crc32c=deadbeef"), "length"},
	}
	for _, tc := range cases {
		reason, err := verifyIntegrity(tc.resp, body)
		if reason != tc.reason {
			t.Errorf("%s: reason %q, want %q", tc.name, reason, tc.reason)
		}
		if (err != nil) != (tc.reason != "") {
			t.Errorf("%s: err %v with reason %q", tc.name, err, tc.reason)
		}
	}
}

// grabBackend fetches the registry's backend struct for a URL.
func grabBackend(t *testing.T, r *Registry, url string) *backend {
	t.Helper()
	r.mu.Lock()
	defer r.mu.Unlock()
	b, ok := r.backends[url]
	if !ok {
		t.Fatalf("backend %s not registered", url)
	}
	return b
}

// TestOutlierEjection walks a gray-slow backend through the ejector:
// consistently slow served latencies eject it from rotation (it still
// answers /readyz, so only passive evidence can), and the quarantine
// half-open probe readmits it once its backoff expires.
func TestOutlierEjection(t *testing.T) {
	leakCheck(t)
	fbs := []*fakeBackend{newFakeBackend(t), newFakeBackend(t), newFakeBackend(t)}
	urls := []string{fbs[0].ts.URL, fbs[1].ts.URL, fbs[2].ts.URL}
	f, fts := newTestFrontend(t, Config{
		Backends:        urls,
		ProbeEvery:      20 * time.Millisecond,
		ProbeTimeout:    500 * time.Millisecond,
		EjectFactor:     3,
		EjectHold:       40 * time.Millisecond,
		EjectMinSamples: 4,
		EjectBackoff:    300 * time.Millisecond,
	})
	reg := f.Registry()

	// Two healthy backends at ~5ms, one gray-slow at 100ms. Feeding
	// observeSuccess directly is the same path proxied replies take.
	slow := grabBackend(t, reg, urls[2])
	feed := func() {
		for i, u := range urls {
			lat := 5 * time.Millisecond
			if i == 2 {
				lat = 100 * time.Millisecond
			}
			reg.observeSuccess(grabBackend(t, reg, u), lat, true)
		}
	}
	for i := 0; i < 8; i++ {
		feed()
	}
	eventually(t, 3*time.Second, "slow backend ejected", func() bool {
		return reg.EjectedCount() == 1
	})

	// A straggling leg landing as 2xx after the ejection must not
	// readmit it: an ejected backend's replies are successful by
	// construction (it is slow, not broken), so only the half-open probe
	// after the backoff may let it back in.
	reg.observeSuccess(slow, 5*time.Millisecond, true)
	if reg.EjectedCount() != 1 {
		t.Fatal("a passive served reply short-circuited the ejection backoff")
	}

	// While ejected it is not a routing candidate, and the surfaces say so.
	ranked, _ := reg.Rank("lenet5", nil)
	for _, b := range ranked {
		if b.url == urls[2] {
			t.Fatal("ejected backend still ranked")
		}
	}
	resp, err := http.Get(fts.URL + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(data), `"ejected":1`) {
		t.Errorf("statusz does not count the ejection: %s", data)
	}

	// The backend still answers /readyz, so the half-open probe readmits
	// it once the ejection backoff expires.
	eventually(t, 3*time.Second, "slow backend readmitted", func() bool {
		return reg.EjectedCount() == 0 && reg.HealthyCount() == 3
	})
	reg.mu.Lock()
	ejections := slow.ejections
	reg.mu.Unlock()
	if ejections < 1 {
		t.Fatalf("ejections = %d, want >= 1", ejections)
	}
	resp, err = http.Get(fts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	data, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"mulayer_frontend_ejections_total",
		`event="ejected"`,
		`event="readmitted"`,
		"mulayer_frontend_backends_ejected 0",
	} {
		if !strings.Contains(string(data), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestEjectionCapFleetwideSlowdown: when every backend is slow (overload,
// not grayness) the median moves with them and nobody is ejected; and
// with fewer than three measured backends the ejector stands down.
func TestEjectionCapFleetwideSlowdown(t *testing.T) {
	leakCheck(t)
	fbs := []*fakeBackend{newFakeBackend(t), newFakeBackend(t), newFakeBackend(t)}
	urls := []string{fbs[0].ts.URL, fbs[1].ts.URL, fbs[2].ts.URL}
	f, _ := newTestFrontend(t, Config{
		Backends:        urls,
		ProbeEvery:      20 * time.Millisecond,
		EjectFactor:     3,
		EjectHold:       30 * time.Millisecond,
		EjectMinSamples: 4,
		EjectBackoff:    100 * time.Millisecond,
	})
	reg := f.Registry()
	for i := 0; i < 8; i++ {
		for _, u := range urls {
			reg.observeSuccess(grabBackend(t, reg, u), 200*time.Millisecond, true)
		}
	}
	time.Sleep(200 * time.Millisecond) // several probe rounds
	if n := reg.EjectedCount(); n != 0 {
		t.Fatalf("fleet-wide slowdown ejected %d backends", n)
	}

	// Two-backend fleet: a 20x spread is still not ejectable — an
	// outlier needs a median to stand out from.
	f2, _ := newTestFrontend(t, Config{
		Backends:        urls[:2],
		ProbeEvery:      20 * time.Millisecond,
		EjectFactor:     3,
		EjectHold:       30 * time.Millisecond,
		EjectMinSamples: 4,
		EjectBackoff:    100 * time.Millisecond,
	})
	reg2 := f2.Registry()
	for i := 0; i < 8; i++ {
		reg2.observeSuccess(grabBackend(t, reg2, urls[0]), 5*time.Millisecond, true)
		reg2.observeSuccess(grabBackend(t, reg2, urls[1]), 100*time.Millisecond, true)
	}
	time.Sleep(200 * time.Millisecond)
	if n := reg2.EjectedCount(); n != 0 {
		t.Fatalf("two-backend fleet ejected %d backends", n)
	}
}

// TestIntegrityFailureFailsOver pins a backend that stamps a wrong
// checksum on every reply: the frontend must refuse its bytes, book the
// integrity failure, and serve the request from the honest backend.
func TestIntegrityFailureFailsOver(t *testing.T) {
	leakCheck(t)
	bad := newFakeBackend(t)
	good := newFakeBackend(t)
	bad.setInfer(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set(server.ChecksumHeader, "crc32c=deadbeef")
		io.WriteString(w, `{"model":"forged"}`)
	})
	badURL := bad.ts.URL
	_, fts := newTestFrontend(t, Config{
		Backends:    []string{bad.ts.URL, good.ts.URL},
		ProbeEvery:  20 * time.Millisecond,
		MaxAttempts: 3,
		HedgeBudget: 0, // isolate the failover path
		Policy:      pinFirst{url: &badURL},
	})

	resp, data := postFleetInfer(t, fts.URL, server.InferRequest{Model: "lenet5"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("infer: %d (%s)", resp.StatusCode, data)
	}
	if got := resp.Header.Get("X-Mulayer-Backend"); got != good.ts.URL {
		t.Fatalf("served by %s, want failover to %s", got, good.ts.URL)
	}
	if strings.Contains(string(data), "forged") {
		t.Fatal("corrupt reply reached the client")
	}

	mresp, err := http.Get(fts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mdata, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if !strings.Contains(string(mdata), `mulayer_frontend_integrity_failures_total{backend="`+bad.ts.URL+`",reason="checksum"} 1`) {
		t.Errorf("integrity failure not counted:\n%s", mdata)
	}
}
