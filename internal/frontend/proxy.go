package frontend

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mulayer/internal/dispatch"
	"mulayer/internal/server"
)

// maxInferBody bounds a proxied request body; the frontend buffers it
// once so failover and hedge legs can replay it.
const maxInferBody = 1 << 20

// proxy is the /v1/infer data path: admission, ranked routing with
// transport-failure failover, and budgeted hedging.
type proxy struct {
	cfg    Config
	reg    *Registry
	mets   *fleetMetrics
	client *http.Client

	inflight atomic.Int64

	// Hedge budget token bucket: completed requests accrue HedgeBudget
	// tokens (capped at HedgeBurst), each hedge spends one.
	hedgeMu     sync.Mutex
	hedgeTokens float64

	// Recent end-to-end latencies; the hedge delay tracks their p95.
	latMu   sync.Mutex
	lats    [256]time.Duration
	latN    int
	latNext int
}

func newProxy(cfg Config, reg *Registry, mets *fleetMetrics) *proxy {
	return &proxy{
		cfg:  cfg,
		reg:  reg,
		mets: mets,
		// No client-level timeout: the per-request context carries the
		// deadline, and a hedge loser must die by cancellation, not by
		// running out its own clock. The tuned transport (dial and
		// response-header timeouts) bounds the hangs a context cannot
		// see, like a dial against a black-holed backend.
		client:      &http.Client{Transport: cfg.Transport},
		hedgeTokens: float64(cfg.HedgeBurst),
	}
}

// legResult is one attempt's outcome against one backend: either a
// buffered response or a transport error.
type legResult struct {
	b      *backend
	status int
	header http.Header
	body   []byte
	err    error
	lat    time.Duration
}

// decisive reports whether the leg settles the request: any reply below
// 500. 5xx replies are held as fallbacks — a hedge or failover may
// still produce a real answer.
func (r *legResult) decisive() bool {
	return r.err == nil && r.status < http.StatusInternalServerError
}

func (p *proxy) handleInfer(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxInferBody+1))
	if err != nil {
		httpError(w, http.StatusBadRequest, "reading request body: "+err.Error())
		return
	}
	if len(body) > maxInferBody {
		httpError(w, http.StatusRequestEntityTooLarge, "request body too large")
		return
	}
	// The routing key and latency label come from the request; everything
	// else in the body is the backend's business.
	var peek struct {
		Model string `json:"model"`
	}
	_ = json.Unmarshal(body, &peek)
	model := peek.Model

	if err := p.cfg.Admission.Admit(dispatch.QueueState{
		Depth: int(p.inflight.Load()),
		Cap:   p.cfg.MaxInflight,
	}); err != nil {
		p.mets.rejected.With("inflight_full").Inc()
		httpError(w, http.StatusServiceUnavailable, "frontend at capacity")
		return
	}
	p.inflight.Add(1)
	p.mets.inflight.Add(1)
	defer func() {
		p.inflight.Add(-1)
		p.mets.inflight.Add(-1)
		p.accrueHedgeTokens()
	}()

	ctx, cancel := context.WithTimeout(r.Context(), p.cfg.RequestTimeout)
	defer cancel()

	start := time.Now()
	tried := make(map[string]bool)
	var fallback *legResult
	for attempt := 0; attempt < p.cfg.MaxAttempts; attempt++ {
		ranked, decisions := p.reg.Rank(model, tried)
		if len(ranked) == 0 {
			break
		}
		if attempt == 0 {
			p.mets.routing.With(decisions[0].Reason).Inc()
		} else {
			p.mets.retries.Inc()
		}
		win, fb := p.attemptWithHedge(ctx, ranked, body, tried)
		if fb != nil && fallback == nil {
			fallback = fb
		}
		if win != nil {
			lat := time.Since(start)
			p.observeLatency(lat)
			p.mets.latency.With(model).Observe(lat.Seconds())
			writeLeg(w, win)
			return
		}
		if fb != nil {
			// A reply, just not a good one: pass the backend's rejection
			// through. Retrying a shedding backend's 503 elsewhere would
			// amplify exactly the overload it protects against.
			break
		}
		if ctx.Err() != nil {
			break
		}
		// Pure transport failure: fail over to the next-ranked backend.
	}
	switch {
	case fallback != nil:
		writeLeg(w, fallback)
	case ctx.Err() != nil:
		p.mets.rejected.With("timeout").Inc()
		httpError(w, http.StatusGatewayTimeout, "request timed out")
	default:
		p.mets.rejected.With("no_backend").Inc()
		httpError(w, http.StatusServiceUnavailable, "no backend available")
	}
}

// attemptWithHedge runs one routed attempt: the primary leg on
// ranked[0] and, after the hedge delay, a budgeted hedge on ranked[1].
// The first decisive response wins and the other leg is cancelled.
// Every launched backend is marked in tried. Returns the winning leg,
// or a held 5xx fallback when no leg was decisive.
func (p *proxy) attemptWithHedge(ctx context.Context, ranked []*backend, body []byte, tried map[string]bool) (win, fallback *legResult) {
	// Buffered to the max leg count: a cancelled loser always completes
	// its send and releases its goroutine and connection.
	results := make(chan *legResult, 2)
	var cancels []context.CancelFunc
	defer func() {
		for _, c := range cancels {
			c()
		}
	}()
	launch := func(b *backend) {
		tried[b.url] = true
		lctx, cancel := context.WithCancel(ctx)
		cancels = append(cancels, cancel)
		go func() { results <- p.doLeg(lctx, b, body) }()
	}
	launch(ranked[0])
	pending := 1

	var hedgeC <-chan time.Time
	switch {
	case p.cfg.HedgeBudget == 0:
		p.mets.hedgesSkipped.With("disabled").Inc()
	case len(ranked) < 2:
		p.mets.hedgesSkipped.With("no_backend").Inc()
	default:
		t := time.NewTimer(p.hedgeDelay())
		defer t.Stop()
		hedgeC = t.C
	}

	hedged := false
	for pending > 0 {
		select {
		case res := <-results:
			pending--
			if res.decisive() {
				if hedged {
					if res.b == ranked[0] {
						p.mets.hedges.With("lost").Inc()
					} else {
						p.mets.hedges.With("won").Inc()
					}
				}
				return res, fallback
			}
			if res.err == nil && fallback == nil {
				fallback = res
			}
		case <-hedgeC:
			hedgeC = nil
			if !p.spendHedgeToken() {
				p.mets.hedgesSkipped.With("budget").Inc()
				continue
			}
			hedged = true
			launch(ranked[1])
			pending++
		case <-ctx.Done():
			return nil, fallback
		}
	}
	if hedged {
		p.mets.hedges.With("failed").Inc()
	}
	return nil, fallback
}

// doLeg proxies the request once to one backend, buffering the reply.
func (p *proxy) doLeg(ctx context.Context, b *backend, body []byte) *legResult {
	start := time.Now()
	b.inflight.Add(1)
	defer b.inflight.Add(-1)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, b.url+"/v1/infer", bytes.NewReader(body))
	if err != nil {
		return &legResult{b: b, err: err}
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := p.client.Do(req)
	if err != nil {
		p.legFailure(ctx, b, err)
		return &legResult{b: b, err: err}
	}
	defer resp.Body.Close()
	reply, err := io.ReadAll(resp.Body)
	if err != nil {
		p.legFailure(ctx, b, err)
		return &legResult{b: b, err: err}
	}
	if reason, err := verifyIntegrity(resp, reply); err != nil {
		// A corrupted or truncated reply is decisive evidence against
		// this leg, never against the client: book it like a transport
		// failure so the request fails over to another backend.
		p.mets.integrityFailures.With(b.url, reason).Inc()
		p.legFailure(ctx, b, err)
		return &legResult{b: b, err: err}
	}
	lat := time.Since(start)
	served := resp.StatusCode < http.StatusMultipleChoices
	p.reg.observeSuccess(b, lat, served)
	p.mets.requests.With(b.url, codeClass(resp.StatusCode)).Inc()
	if served {
		b.served.Add(1)
	}
	return &legResult{
		b:      b,
		status: resp.StatusCode,
		header: resp.Header,
		body:   reply,
		lat:    lat,
	}
}

// legFailure books a transport error against the breaker — unless the
// leg was cancelled (a hedge loser, or the caller's own deadline),
// which says nothing about the backend's health.
func (p *proxy) legFailure(ctx context.Context, b *backend, err error) {
	if ctx.Err() != nil || errors.Is(err, context.Canceled) {
		return
	}
	b.errors.Add(1)
	p.mets.transportErrors.With(b.url).Inc()
	p.reg.observeFailure(b, time.Now())
}

// verifyIntegrity checks a buffered backend reply end to end: the body
// must be as long as the backend declared, and when the backend stamped
// a checksum (server.ChecksumHeader on /v1/infer replies) the bytes
// received must hash to it. It returns the metric reason and error for
// a reply that must not reach a client.
func verifyIntegrity(resp *http.Response, body []byte) (reason string, err error) {
	if resp.ContentLength >= 0 && resp.ContentLength != int64(len(body)) {
		return "length", fmt.Errorf("frontend: reply carries %d bytes, Content-Length says %d",
			len(body), resp.ContentLength)
	}
	if want := resp.Header.Get(server.ChecksumHeader); want != "" {
		if got := server.BodyChecksum(body); got != want {
			return "checksum", fmt.Errorf("frontend: reply checksum %s does not match stamped %s", got, want)
		}
	}
	return "", nil
}

// writeLeg replays a buffered backend reply to the client.
func writeLeg(w http.ResponseWriter, r *legResult) {
	if ct := r.header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	// The verified checksum rides through so clients can verify the
	// client↔frontend hop themselves.
	if sum := r.header.Get(server.ChecksumHeader); sum != "" {
		w.Header().Set(server.ChecksumHeader, sum)
	}
	w.Header().Set("X-Mulayer-Backend", r.b.url)
	w.WriteHeader(r.status)
	w.Write(r.body)
}

// codeClass buckets a status code for the requests counter ("2xx"...).
func codeClass(code int) string {
	return fmt.Sprintf("%dxx", code/100)
}

// accrueHedgeTokens credits the hedge budget for one completed request.
func (p *proxy) accrueHedgeTokens() {
	p.hedgeMu.Lock()
	defer p.hedgeMu.Unlock()
	p.hedgeTokens += p.cfg.HedgeBudget
	if max := float64(p.cfg.HedgeBurst); p.hedgeTokens > max {
		p.hedgeTokens = max
	}
}

// spendHedgeToken takes one token if the budget allows a hedge now.
func (p *proxy) spendHedgeToken() bool {
	p.hedgeMu.Lock()
	defer p.hedgeMu.Unlock()
	if p.hedgeTokens < 1 {
		return false
	}
	p.hedgeTokens--
	return true
}

// hedgeTokenLevel reads the current budget (for /statusz).
func (p *proxy) hedgeTokenLevel() float64 {
	p.hedgeMu.Lock()
	defer p.hedgeMu.Unlock()
	return p.hedgeTokens
}

// observeLatency records one end-to-end latency into the hedge-delay
// ring.
func (p *proxy) observeLatency(d time.Duration) {
	p.latMu.Lock()
	defer p.latMu.Unlock()
	p.lats[p.latNext] = d
	p.latNext = (p.latNext + 1) % len(p.lats)
	if p.latN < len(p.lats) {
		p.latN++
	}
}

// hedgeDelay is the p95 of recent latencies clamped to
// [HedgeMin, HedgeMax]; with no history yet it is HedgeMax, so a cold
// frontend hedges only against genuine stalls.
func (p *proxy) hedgeDelay() time.Duration {
	p.latMu.Lock()
	n := p.latN
	tmp := make([]time.Duration, n)
	copy(tmp, p.lats[:n])
	p.latMu.Unlock()
	if n == 0 {
		return p.cfg.HedgeMax
	}
	sort.Slice(tmp, func(i, j int) bool { return tmp[i] < tmp[j] })
	d := tmp[(n*95+99)/100-1]
	if d < p.cfg.HedgeMin {
		d = p.cfg.HedgeMin
	}
	if d > p.cfg.HedgeMax {
		d = p.cfg.HedgeMax
	}
	return d
}
