package frontend

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
)

// Frontend is the fleet tier: the registry, the proxy data path, and
// the HTTP surface that exposes them.
type Frontend struct {
	cfg   Config
	log   *log.Logger
	reg   *Registry
	proxy *proxy
	mets  *fleetMetrics

	srv *http.Server
}

// New builds a frontend, starting the registry's prober.
func New(cfg Config, logger *log.Logger) (*Frontend, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if logger == nil {
		logger = log.Default()
	}
	// The healthy-count gauge closes over the registry variable: metrics
	// must exist before the registry (health transitions count through
	// them), the gauge reads the registry built right after.
	var reg *Registry
	mets := newFleetMetrics(func() float64 {
		if reg == nil {
			return 0
		}
		return float64(reg.HealthyCount())
	}, func() float64 {
		if reg == nil {
			return 0
		}
		return float64(reg.EjectedCount())
	})
	reg, err = NewRegistry(cfg, mets)
	if err != nil {
		return nil, err
	}
	f := &Frontend{
		cfg:   cfg,
		log:   logger,
		reg:   reg,
		proxy: newProxy(cfg, reg, mets),
		mets:  mets,
	}
	return f, nil
}

// Registry exposes the backend registry (admin surfaces, tests).
func (f *Frontend) Registry() *Registry { return f.reg }

// Handler returns the frontend's HTTP surface.
func (f *Frontend) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/infer", f.proxy.handleInfer)
	mux.HandleFunc("GET /v1/models", f.handleModels)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("GET /readyz", f.handleReadyz)
	mux.HandleFunc("GET /statusz", f.handleStatusz)
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_, _ = f.mets.reg.WriteTo(w)
	})
	mux.HandleFunc("GET /admin/backends", f.handleBackendsGet)
	mux.HandleFunc("POST /admin/backends", f.handleBackendsPost)
	mux.HandleFunc("POST /admin/reload", f.handleReload)
	return mux
}

// ListenAndServe runs the frontend until Shutdown.
func (f *Frontend) ListenAndServe() error {
	f.srv = &http.Server{Addr: f.cfg.Addr, Handler: f.Handler()}
	f.log.Printf("frontend listening on %s (%d backends)", f.cfg.Addr, len(f.reg.Snapshot()))
	err := f.srv.ListenAndServe()
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// Shutdown drains in-flight proxied requests (bounded by DrainTimeout)
// and stops the prober.
func (f *Frontend) Shutdown(ctx context.Context) error {
	var err error
	if f.srv != nil {
		dctx, cancel := context.WithTimeout(ctx, f.cfg.DrainTimeout)
		defer cancel()
		err = f.srv.Shutdown(dctx)
	}
	f.reg.Close()
	return err
}

// Close releases background work without an HTTP listener (tests wrap
// Handler in their own server).
func (f *Frontend) Close() { f.reg.Close() }

// handleModels proxies the model catalogue from the best-ranked
// backend — every backend serves the same config, so any healthy one
// answers.
func (f *Frontend) handleModels(w http.ResponseWriter, r *http.Request) {
	ranked, _ := f.reg.Rank("", nil)
	if len(ranked) == 0 {
		httpError(w, http.StatusServiceUnavailable, "no backend available")
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), f.cfg.ProbeTimeout)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, ranked[0].url+"/v1/models", nil)
	resp, err := f.proxy.client.Do(req)
	if err != nil {
		httpError(w, http.StatusBadGateway, err.Error())
		return
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
}

func (f *Frontend) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if f.reg.HealthyCount() == 0 {
		httpError(w, http.StatusServiceUnavailable, "no healthy backend")
		return
	}
	w.WriteHeader(http.StatusOK)
	io.WriteString(w, "ok\n")
}

// fleetStatus is the /statusz reply: the fleet view.
type fleetStatus struct {
	Healthy int `json:"healthy"`
	// Ejected is how many backends the latency outlier ejector currently
	// holds out of rotation (their rows carry the per-backend detail).
	Ejected     int             `json:"ejected"`
	Backends    []BackendStatus `json:"backends"`
	Inflight    int64           `json:"inflight"`
	HedgeTokens float64         `json:"hedge_tokens"`
	HedgeDelay  string          `json:"hedge_delay"`
}

func (f *Frontend) handleStatusz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, fleetStatus{
		Healthy:     f.reg.HealthyCount(),
		Ejected:     f.reg.EjectedCount(),
		Backends:    f.reg.Snapshot(),
		Inflight:    f.proxy.inflight.Load(),
		HedgeTokens: f.proxy.hedgeTokenLevel(),
		HedgeDelay:  f.proxy.hedgeDelay().String(),
	})
}

func (f *Frontend) handleBackendsGet(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, f.reg.Snapshot())
}

// backendAction is the POST /admin/backends body.
type backendAction struct {
	// Action is add | drain | undrain | remove.
	Action string `json:"action"`
	URL    string `json:"url"`
}

func (f *Frontend) handleBackendsPost(w http.ResponseWriter, r *http.Request) {
	var act backendAction
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&act); err != nil {
		httpError(w, http.StatusBadRequest, "decoding action: "+err.Error())
		return
	}
	var err error
	switch act.Action {
	case "add", "undrain":
		_, err = f.reg.Add(act.URL)
	case "drain":
		err = f.reg.Drain(act.URL)
	case "remove":
		err = f.reg.Remove(act.URL)
	default:
		httpError(w, http.StatusBadRequest,
			fmt.Sprintf("unknown action %q (want add, drain, undrain, or remove)", act.Action))
		return
	}
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	f.log.Printf("backend set changed: %s %s", act.Action, act.URL)
	writeJSON(w, http.StatusOK, f.reg.Snapshot())
}

func (f *Frontend) handleReload(w http.ResponseWriter, r *http.Request) {
	added, drained, err := f.reg.Reload()
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	f.log.Printf("backends file reloaded: %d added, %d drained", added, drained)
	writeJSON(w, http.StatusOK, map[string]int{"added": added, "drained": drained})
}

// Reload re-reads the backends file (the binary's SIGHUP handler).
func (f *Frontend) Reload() (added, drained int, err error) {
	return f.reg.Reload()
}

// errorBody matches the backend's JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, errorBody{Error: msg})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}
