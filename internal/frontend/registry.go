package frontend

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"math/rand/v2"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mulayer/internal/dispatch"
	"mulayer/internal/server"
)

// backendState is the circuit-breaker state of one backend, mirroring
// the node-level device breaker (internal/server health states).
type backendState int

const (
	// bkOK: the backend takes traffic normally.
	bkOK backendState = iota
	// bkQuarantined: too many consecutive failures; no traffic until the
	// backoff expires, then the prober half-opens the circuit.
	bkQuarantined
	// bkProbing: the half-open state — the prober has one /readyz probe
	// in flight; success closes the circuit, failure re-quarantines with
	// a doubled backoff.
	bkProbing
)

// String implements fmt.Stringer.
func (s backendState) String() string {
	switch s {
	case bkOK:
		return "ok"
	case bkQuarantined:
		return "quarantined"
	case bkProbing:
		return "probing"
	}
	return fmt.Sprintf("backendState(%d)", int(s))
}

// backend is one serve replica in the registry. Health and load fields
// are guarded by the registry mutex; counters are atomics so the hot
// proxy path touches no lock for accounting.
type backend struct {
	url string // normalized base URL; the backend's identity everywhere

	// Guarded by Registry.mu.
	state    backendState
	draining bool // admin drain: no new traffic, health still tracked
	failures int  // consecutive failures (probe + passive combined)
	backoff  time.Duration
	until    time.Time // quarantine expiry

	// Load signal from the last successful /statusz.json probe, plus the
	// passive latency EWMA. Guarded by Registry.mu.
	sigAt      time.Time
	queueWait  time.Duration // backend-reported queue-wait p95 (wall)
	predWait   time.Duration // backend-reported predicted wait for new work (wall)
	backlog    time.Duration // backend-reported min device backlog (wall)
	queueDepth int           // backend-reported admission-queue depth
	overload   int           // backend-reported brownout ladder level
	ewma       time.Duration // observed proxied-request latency EWMA (2xx only)

	// Outlier-ejection state: a sliding window of served (2xx) latencies
	// whose p95 the ejector compares against the fleet median, the time
	// the backend first looked like an outlier, and the per-backend
	// ejection backoff (doubling per re-ejection, Envoy-style). Guarded
	// by Registry.mu.
	lats         [latWindow]time.Duration
	latN         int
	latNext      int
	slowSince    time.Time
	ejected      bool
	ejections    int64
	ejectBackoff time.Duration

	// Lock-free counters.
	inflight atomic.Int64 // proxied requests currently in flight here
	served   atomic.Int64 // 2xx replies proxied from this backend
	errors   atomic.Int64 // transport errors observed against it
}

// latWindow is the per-backend served-latency window the ejector's p95
// is computed over.
const latWindow = 64

// Registry is the fleet's backend set: membership (add/drain/remove +
// file reload), health (active probes + passive observations through the
// shared circuit-breaker transitions), and the per-backend load signal
// the placement policy ranks by.
type Registry struct {
	cfg    Config
	mets   *fleetMetrics
	client *http.Client // probe client (bounded by ProbeTimeout)

	mu       sync.Mutex
	backends map[string]*backend

	stop chan struct{}
	wg   sync.WaitGroup
}

// NewRegistry builds the registry with the configured initial backends
// and starts the prober. cfg must already carry defaults.
func NewRegistry(cfg Config, mets *fleetMetrics) (*Registry, error) {
	r := &Registry{
		cfg:  cfg,
		mets: mets,
		// Probes share the proxy's tuned (or fault-injected) transport:
		// the network the prober sees is the network requests ride.
		client:   &http.Client{Timeout: cfg.ProbeTimeout, Transport: cfg.Transport},
		backends: make(map[string]*backend),
		stop:     make(chan struct{}),
	}
	urls := append([]string(nil), cfg.Backends...)
	if cfg.BackendsFile != "" {
		fromFile, err := ReadBackendsFile(cfg.BackendsFile)
		if err != nil {
			return nil, err
		}
		urls = append(urls, fromFile...)
	}
	for _, u := range urls {
		if _, err := r.Add(u); err != nil {
			return nil, err
		}
	}
	r.wg.Add(1)
	go r.probeLoop()
	return r, nil
}

// Close stops the prober.
func (r *Registry) Close() {
	close(r.stop)
	r.wg.Wait()
}

// NormalizeBackendURL validates a backend address and returns its
// canonical form: scheme defaulted to http, no trailing slash, no path.
func NormalizeBackendURL(raw string) (string, error) {
	raw = strings.TrimSpace(raw)
	if raw == "" {
		return "", fmt.Errorf("frontend: empty backend URL")
	}
	if !strings.Contains(raw, "://") {
		raw = "http://" + raw
	}
	u, err := url.Parse(raw)
	if err != nil {
		return "", fmt.Errorf("frontend: backend URL %q: %w", raw, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return "", fmt.Errorf("frontend: backend URL %q: scheme must be http or https", raw)
	}
	if u.Host == "" {
		return "", fmt.Errorf("frontend: backend URL %q has no host", raw)
	}
	if u.Path != "" && u.Path != "/" {
		return "", fmt.Errorf("frontend: backend URL %q must not carry a path", raw)
	}
	return u.Scheme + "://" + u.Host, nil
}

// ReadBackendsFile parses a backends file: one URL per line, blank lines
// and '#' comments skipped.
func ReadBackendsFile(path string) ([]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("frontend: backends file: %w", err)
	}
	defer f.Close()
	var out []string
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		out = append(out, line)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("frontend: backends file: %w", err)
	}
	return out, nil
}

// Add registers a backend (idempotent) or un-drains an existing one. It
// returns the normalized URL. A new backend starts healthy and is
// corrected by the next probe round if it is not.
func (r *Registry) Add(raw string) (string, error) {
	u, err := NormalizeBackendURL(raw)
	if err != nil {
		return "", err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if b, ok := r.backends[u]; ok {
		if b.draining {
			b.draining = false
			r.mets.health.With(u, "undrained").Inc()
		}
		return u, nil
	}
	r.backends[u] = &backend{url: u}
	r.mets.health.With(u, "added").Inc()
	return u, nil
}

// Drain marks a backend as taking no new traffic; requests in flight
// finish. Health keeps being tracked so an undrained backend returns at
// its true state.
func (r *Registry) Drain(raw string) error {
	u, err := NormalizeBackendURL(raw)
	if err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	b, ok := r.backends[u]
	if !ok {
		return fmt.Errorf("frontend: unknown backend %q", u)
	}
	if !b.draining {
		b.draining = true
		r.mets.health.With(u, "drained").Inc()
	}
	return nil
}

// Remove deregisters a backend entirely. Requests in flight to it
// finish (the proxy holds its own pointer); it just stops being a
// routing candidate and drops out of status views.
func (r *Registry) Remove(raw string) error {
	u, err := NormalizeBackendURL(raw)
	if err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.backends[u]; !ok {
		return fmt.Errorf("frontend: unknown backend %q", u)
	}
	delete(r.backends, u)
	r.mets.health.With(u, "removed").Inc()
	return nil
}

// Reload re-reads the backends file: URLs now listed are added (or
// un-drained), registered URLs no longer listed are drained. It returns
// how many backends were added and drained.
func (r *Registry) Reload() (added, drained int, err error) {
	if r.cfg.BackendsFile == "" {
		return 0, 0, fmt.Errorf("frontend: no backends file configured")
	}
	urls, err := ReadBackendsFile(r.cfg.BackendsFile)
	if err != nil {
		return 0, 0, err
	}
	want := make(map[string]bool, len(urls))
	for _, raw := range urls {
		u, err := NormalizeBackendURL(raw)
		if err != nil {
			return added, drained, err
		}
		want[u] = true
	}
	r.mu.Lock()
	var current []string
	for u, b := range r.backends {
		if !b.draining {
			current = append(current, u)
		}
	}
	r.mu.Unlock()
	for u := range want {
		if _, err := r.Add(u); err != nil {
			return added, drained, err
		}
		added++
	}
	for _, u := range current {
		if !want[u] {
			if err := r.Drain(u); err != nil {
				return added, drained, err
			}
			drained++
		}
	}
	return added, drained, nil
}

// HealthyCount is the number of routable backends (ok and not
// draining) — the frontend's readiness signal.
func (r *Registry) HealthyCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, b := range r.backends {
		if b.state == bkOK && !b.draining {
			n++
		}
	}
	return n
}

// EjectedCount is the number of backends currently out of rotation by
// decision of the latency outlier ejector.
func (r *Registry) EjectedCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, b := range r.backends {
		if b.ejected {
			n++
		}
	}
	return n
}

// Rank returns the routable backends in the placement policy's
// preference order for one model, with the policy's reasons. exclude
// drops backends already tried by this request's failovers.
func (r *Registry) Rank(model string, exclude map[string]bool) ([]*backend, []dispatch.Decision) {
	r.mu.Lock()
	defer r.mu.Unlock()
	var pool []*backend
	var cands []dispatch.Candidate
	for _, b := range r.backends {
		if b.state != bkOK || b.draining || exclude[b.url] {
			continue
		}
		pool = append(pool, b)
		cands = append(cands, dispatch.Candidate{ID: b.url, Done: b.predictedLoadLocked()})
	}
	// Map iteration order is random; candidates must be stable for the
	// policy's deterministic tie-breaks.
	sort.Slice(pool, func(i, j int) bool { return pool[i].url < pool[j].url })
	for i, b := range pool {
		cands[i] = dispatch.Candidate{ID: b.url, Done: b.predictedLoadLocked()}
	}
	ranked := r.cfg.Policy.Rank(model, cands)
	out := make([]*backend, len(ranked))
	for i, d := range ranked {
		out[i] = pool[d.Index]
	}
	return out, ranked
}

// predictedLoadLocked is the backend's predicted completion for new
// work: the backend-reported predicted wait (the scheduler's exact
// forward predictor; 0 is a real "idle" report, so affinity decides
// idle fleets) plus one latency EWMA per request this frontend still
// has outstanding there. The outstanding term is the fleet's
// join-shortest-queue signal: it falls as a backend completes or
// rejects work, so between probes requests flow to the replica with
// free queue slots instead of herding onto a stale minimum. Caller
// holds Registry.mu.
func (b *backend) predictedLoadLocked() time.Duration {
	return b.predWait + time.Duration(b.inflight.Load())*b.ewma
}

// observeSuccess records a proxied reply: consecutive failures reset,
// and — mirroring the node breaker, where a real served batch is
// stronger evidence than a probe — a quarantined or probing backend
// recovers. Only a served (2xx) reply updates the latency EWMA: an
// instant 503 from a shedding backend is admission policy, not service
// time, and folding it in would make the most overloaded backend look
// like the fastest one.
func (r *Registry) observeSuccess(b *backend, lat time.Duration, served bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	b.failures = 0
	if served {
		if b.ewma == 0 {
			b.ewma = lat
		} else {
			b.ewma = (b.ewma*4 + lat) / 5
		}
		// Feed the ejector's window: served replies only, for the same
		// reason as the EWMA — a shedding backend's instant 503s are not
		// service time. Not while ejected, though: stragglers from before
		// the ejection are faulted-era evidence, and readmission should
		// judge the backend on a fresh window.
		if !b.ejected {
			b.lats[b.latNext] = lat
			b.latNext = (b.latNext + 1) % latWindow
			if b.latN < latWindow {
				b.latN++
			}
		}
	}
	// An ejected backend's replies are successful by construction — it
	// was removed for being slow, not broken, so the legs in flight when
	// it was ejected all land as 2xx moments later. Those must not
	// short-circuit the ejection backoff; readmission is the half-open
	// probe's decision once the backoff expires.
	if b.ejected && b.state != bkOK {
		return
	}
	r.recoverLocked(b)
}

// recoverLocked closes the circuit on fresh positive evidence,
// distinguishing a readmitted ejection from an ordinary recovery.
// Caller holds Registry.mu.
func (r *Registry) recoverLocked(b *backend) {
	if b.state == bkOK {
		return
	}
	b.state = bkOK
	b.backoff = 0
	b.until = time.Time{}
	if b.ejected {
		b.ejected = false
		r.mets.health.With(b.url, "readmitted").Inc()
		return
	}
	r.mets.health.With(b.url, "recovered").Inc()
}

// latP95Locked is the p95 of the backend's served-latency window (0
// with no samples). Caller holds Registry.mu.
func (b *backend) latP95Locked() time.Duration {
	n := b.latN
	if n == 0 {
		return 0
	}
	tmp := make([]time.Duration, n)
	copy(tmp, b.lats[:n])
	sort.Slice(tmp, func(i, j int) bool { return tmp[i] < tmp[j] })
	return tmp[(n*95+99)/100-1]
}

// observeFailure records one failure against the circuit breaker —
// passive (a transport error proxying to it) and active (a failed
// probe) share the counter. At FailThreshold consecutive failures, or
// any failure while half-open, the backend quarantines with a doubling
// backoff.
func (r *Registry) observeFailure(b *backend, now time.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	b.failures++
	if b.state == bkProbing || b.failures >= r.cfg.FailThreshold {
		if b.backoff <= 0 {
			b.backoff = r.cfg.QuarantineBackoff
		} else if b.state == bkProbing || b.state == bkQuarantined {
			b.backoff *= 2
			if b.backoff > r.cfg.QuarantineBackoffMax {
				b.backoff = r.cfg.QuarantineBackoffMax
			}
		}
		b.state = bkQuarantined
		// ±25% jitter (the overload ladder's Retry-After trick) so
		// backends quarantined together do not half-open together — the
		// probe thundering herd against a recovering backend.
		b.until = now.Add(jitterBackoff(b.backoff, rand.Float64()))
		r.mets.health.With(b.url, "quarantined").Inc()
	}
}

// jitterBackoff spreads a quarantine/ejection backoff across ±25% so
// circuits opened together do not half-open together. u is a uniform
// variate in [0, 1).
func jitterBackoff(d time.Duration, u float64) time.Duration {
	j := time.Duration(float64(d) * (0.75 + 0.5*u))
	if j < time.Millisecond {
		j = time.Millisecond
	}
	return j
}

// evaluateEjections is the outlier ejector, run once per probe round:
// any routable backend whose served-latency p95 has exceeded
// EjectFactor × the fleet median p95 for EjectHold is ejected into the
// quarantine machinery — it answers /readyz, so only passive latency
// evidence can take it out of rotation. Ejection is bounded: at most
// half the registered backends may be out of rotation at once, so a
// fleet-wide slowdown (overload, not grayness) ejects nobody.
func (r *Registry) evaluateEjections(now time.Time) {
	if r.cfg.EjectFactor < 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	// Fleet median p95 over routable backends with enough samples.
	var p95s []time.Duration
	var cands []*backend
	unavailable := 0
	for _, b := range r.backends {
		if b.state != bkOK || b.draining {
			unavailable++
			continue
		}
		if b.latN < r.cfg.EjectMinSamples {
			continue
		}
		p95s = append(p95s, b.latP95Locked())
		cands = append(cands, b)
	}
	// A median needs company: with fewer than 3 measured backends an
	// "outlier" is indistinguishable from a legitimately bimodal pair.
	if len(cands) < 3 {
		for _, b := range cands {
			b.slowSince = time.Time{}
		}
		return
	}
	sorted := append([]time.Duration(nil), p95s...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	median := sorted[len(sorted)/2]
	if median <= 0 {
		return
	}
	for i, b := range cands {
		slow := float64(p95s[i]) > r.cfg.EjectFactor*float64(median)
		if !slow {
			b.slowSince = time.Time{}
			continue
		}
		if b.slowSince.IsZero() {
			b.slowSince = now
			continue
		}
		if now.Sub(b.slowSince) < r.cfg.EjectHold {
			continue
		}
		// Ejection cap: never take out a backend when half the fleet is
		// already unavailable (quarantined, ejected, or draining).
		if 2*(unavailable+1) > len(r.backends) {
			continue
		}
		r.ejectLocked(b, now)
		unavailable++
	}
}

// ejectLocked takes one gray-slow backend out of rotation through the
// quarantine machinery, with its own doubling backoff. The latency
// window resets so readmission starts from fresh evidence. Caller holds
// Registry.mu.
func (r *Registry) ejectLocked(b *backend, now time.Time) {
	if b.ejectBackoff <= 0 {
		b.ejectBackoff = r.cfg.EjectBackoff
	} else {
		b.ejectBackoff *= 2
		if b.ejectBackoff > r.cfg.QuarantineBackoffMax {
			b.ejectBackoff = r.cfg.QuarantineBackoffMax
		}
	}
	b.state = bkQuarantined
	b.ejected = true
	b.ejections++
	b.backoff = b.ejectBackoff
	b.until = now.Add(jitterBackoff(b.ejectBackoff, rand.Float64()))
	b.slowSince = time.Time{}
	b.latN = 0
	b.latNext = 0
	r.mets.health.With(b.url, "ejected").Inc()
	r.mets.ejections.With(b.url).Inc()
}

// probeLoop is the active prober: every ProbeEvery it probes all
// backends concurrently — /readyz drives the breaker, /statusz.json
// (best effort, healthy backends only) refreshes the load signal — and
// half-opens quarantined backends whose backoff expired.
func (r *Registry) probeLoop() {
	defer r.wg.Done()
	t := time.NewTicker(r.cfg.ProbeEvery)
	defer t.Stop()
	for {
		select {
		case <-r.stop:
			return
		case now := <-t.C:
			r.probeRound(now)
		}
	}
}

// probeRound probes every backend once, in parallel, and waits the
// round out (the per-probe timeout bounds it).
func (r *Registry) probeRound(now time.Time) {
	r.mu.Lock()
	targets := make([]*backend, 0, len(r.backends))
	for _, b := range r.backends {
		switch b.state {
		case bkOK:
			targets = append(targets, b)
		case bkQuarantined:
			if !now.Before(b.until) {
				// Half-open: this round's probe is the circuit's test.
				b.state = bkProbing
				r.mets.health.With(b.url, "probing").Inc()
				targets = append(targets, b)
			}
		}
	}
	r.mu.Unlock()

	var wg sync.WaitGroup
	for _, b := range targets {
		wg.Add(1)
		go func(b *backend) {
			defer wg.Done()
			r.probeOne(b, now)
		}(b)
	}
	wg.Wait()

	// With this round's evidence in, look for gray-slow outliers.
	r.evaluateEjections(now)
}

// probeOne checks one backend's /readyz and, when ready, refreshes its
// load signal from /statusz.json.
func (r *Registry) probeOne(b *backend, now time.Time) {
	ctx, cancel := context.WithTimeout(context.Background(), r.cfg.ProbeTimeout)
	defer cancel()
	ready := false
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, b.url+"/readyz", nil)
	resp, err := r.client.Do(req)
	if err == nil {
		ready = resp.StatusCode == http.StatusOK
		resp.Body.Close()
	}
	if !ready {
		r.mets.probeFailures.With(b.url).Inc()
		r.observeFailure(b, now)
		return
	}
	r.observeProbeSuccess(b)

	// Load signal, best effort: a backend without /statusz.json still
	// serves — routing falls back to the passive inflight×EWMA term.
	req, _ = http.NewRequestWithContext(ctx, http.MethodGet, b.url+"/statusz.json", nil)
	resp, err = r.client.Do(req)
	if err != nil {
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return
	}
	var sig server.LoadSignal
	if err := json.NewDecoder(resp.Body).Decode(&sig); err != nil {
		return
	}
	r.mu.Lock()
	b.sigAt = time.Now()
	b.queueWait = time.Duration(sig.QueueWaitP95MS * float64(time.Millisecond))
	b.predWait = time.Duration(sig.PredictedWaitMS * float64(time.Millisecond))
	b.backlog = time.Duration(sig.BacklogMS * float64(time.Millisecond))
	b.queueDepth = sig.QueueDepth
	b.overload = sig.OverloadLevel
	r.mu.Unlock()
}

// observeProbeSuccess closes the circuit after a ready probe without
// touching the latency EWMA (probes are not service time).
func (r *Registry) observeProbeSuccess(b *backend) {
	r.mu.Lock()
	defer r.mu.Unlock()
	b.failures = 0
	r.recoverLocked(b)
}

// BackendStatus is one backend's row in the frontend's /statusz and
// /admin/backends views.
type BackendStatus struct {
	URL   string `json:"url"`
	State string `json:"state"`
	// Draining: taking no new traffic by admin decision.
	Draining bool `json:"draining,omitempty"`
	Failures int  `json:"failures,omitempty"`
	// Ejected: quarantined by the latency outlier ejector (still answers
	// probes, too slow to keep in rotation). Ejections counts lifetime
	// ejections of this backend.
	Ejected   bool  `json:"ejected,omitempty"`
	Ejections int64 `json:"ejections,omitempty"`
	// Inflight is this frontend's requests currently proxied there.
	Inflight int64 `json:"inflight"`
	Served   int64 `json:"served"`
	// TransportErrors counts dial/read failures proxying to it.
	TransportErrors int64 `json:"transport_errors,omitempty"`
	// Load signal from the last /statusz.json probe.
	QueueWaitP95MS  float64 `json:"queue_wait_p95_ms"`
	PredictedWaitMS float64 `json:"predicted_wait_ms"`
	BacklogMS       float64 `json:"backlog_ms"`
	QueueDepth      int     `json:"queue_depth"`
	OverloadLevel   int     `json:"overload_level"`
	// SignalAgeMS is how stale that signal is (-1 before the first probe).
	SignalAgeMS float64 `json:"signal_age_ms"`
	// EwmaMS is the observed proxied-latency EWMA; LatP95MS is the p95 of
	// the served-latency window the outlier ejector judges by.
	EwmaMS   float64 `json:"ewma_ms"`
	LatP95MS float64 `json:"lat_p95_ms"`
	// PredictedLoadMS is what the placement policy currently ranks by.
	PredictedLoadMS float64 `json:"predicted_load_ms"`
}

// Snapshot lists every backend's status, sorted by URL.
func (r *Registry) Snapshot() []BackendStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]BackendStatus, 0, len(r.backends))
	for _, b := range r.backends {
		st := BackendStatus{
			URL:             b.url,
			State:           b.state.String(),
			Draining:        b.draining,
			Failures:        b.failures,
			Ejected:         b.ejected,
			Ejections:       b.ejections,
			Inflight:        b.inflight.Load(),
			Served:          b.served.Load(),
			TransportErrors: b.errors.Load(),
			QueueWaitP95MS:  float64(b.queueWait) / float64(time.Millisecond),
			PredictedWaitMS: float64(b.predWait) / float64(time.Millisecond),
			BacklogMS:       float64(b.backlog) / float64(time.Millisecond),
			QueueDepth:      b.queueDepth,
			OverloadLevel:   b.overload,
			SignalAgeMS:     -1,
			EwmaMS:          float64(b.ewma) / float64(time.Millisecond),
			LatP95MS:        float64(b.latP95Locked()) / float64(time.Millisecond),
			PredictedLoadMS: float64(b.predictedLoadLocked()) / float64(time.Millisecond),
		}
		if !b.sigAt.IsZero() {
			st.SignalAgeMS = float64(time.Since(b.sigAt)) / float64(time.Millisecond)
		}
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].URL < out[j].URL })
	return out
}
