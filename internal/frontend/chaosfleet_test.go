package frontend

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mulayer/internal/faults/netfaults"
	"mulayer/internal/server"
	"mulayer/internal/soc"
)

// TestChaosFleetGrayFailures is the fleet gray-failure chaos smoke
// (make chaos-fleet-smoke): four live backends behind the frontend on a
// misbehaving network — one backend gray-slow (+250ms on every leg),
// one corrupting half its replies, the rest of the fleet on a lossy
// path that drops and occasionally corrupts — under sustained client
// load. The fleet must hold ≥99% availability, deliver zero corrupt
// bytes (every client verifies the checksum itself), eject the slow
// backend on passive latency evidence alone, and readmit it once the
// network heals.
func TestChaosFleetGrayFailures(t *testing.T) {
	leakCheck(t)
	mods := fleetModels(t)
	cfg := server.Config{
		Models:     mods,
		SoCs:       []server.SoCSpec{{Name: "high", SoC: soc.Exynos7420, Workers: 1}},
		QueueDepth: 64,
	}
	backends := []*smokeBackend{
		startSmokeBackend(t, cfg),
		startSmokeBackend(t, cfg),
		startSmokeBackend(t, cfg),
		startSmokeBackend(t, cfg),
	}
	urls := make([]string, len(backends))
	for i, b := range backends {
		urls[i] = "http://" + b.addr
	}

	// The fault injector wraps the tuned transport; faults are installed
	// at runtime once warmup traffic reveals which backend the affinity
	// hash picked (a statically chosen victim might never see traffic).
	faultTr := netfaults.NewTransport(nil, NewHTTPTransport(2*time.Second, 5*time.Second, 32))
	f, err := New(Config{
		Backends:          urls,
		ProbeEvery:        50 * time.Millisecond,
		ProbeTimeout:      time.Second,
		FailThreshold:     2,
		QuarantineBackoff: 200 * time.Millisecond,
		MaxAttempts:       3,
		HedgeBudget:       0.1,
		HedgeMax:          500 * time.Millisecond,
		RequestTimeout:    5 * time.Second,
		Transport:         faultTr,
		EjectFactor:       3,
		EjectHold:         300 * time.Millisecond,
		EjectMinSamples:   2,
		EjectBackoff:      600 * time.Millisecond,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	fts := httptest.NewServer(f.Handler())
	t.Cleanup(func() {
		fts.Close()
		f.Close()
	})

	// Client load: every worker verifies the stamped checksum against
	// the bytes it received — the zero-corruption assertion is end to
	// end, not the frontend grading its own homework.
	var total, ok2xx, shed5xx, other, corrupt atomic.Int64
	var firstOther, firstCorrupt atomic.Value
	var servedBy sync.Map // model -> backend URL from the last 2xx
	stopLoad := make(chan struct{})
	var wg sync.WaitGroup
	var stopOnce sync.Once
	stop := func() {
		stopOnce.Do(func() {
			close(stopLoad)
			wg.Wait()
		})
	}
	t.Cleanup(stop) // a failed eventually must not strand the workers
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			model := "lenet5"
			if w%2 == 1 {
				model = "googlenet"
			}
			payload, _ := json.Marshal(server.InferRequest{Model: model})
			for {
				select {
				case <-stopLoad:
					return
				default:
				}
				resp, err := http.Post(fts.URL+"/v1/infer", "application/json", bytes.NewReader(payload))
				total.Add(1)
				if err != nil {
					other.Add(1)
					firstOther.CompareAndSwap(nil, err.Error())
					continue
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				switch {
				case resp.StatusCode < 300:
					ok2xx.Add(1)
					if want := resp.Header.Get(server.ChecksumHeader); want != "" &&
						server.BodyChecksum(body) != want {
						corrupt.Add(1)
						firstCorrupt.CompareAndSwap(nil, want)
					}
					if be := resp.Header.Get("X-Mulayer-Backend"); be != "" {
						servedBy.Store(model, be)
					}
				case resp.StatusCode == http.StatusServiceUnavailable:
					shed5xx.Add(1)
				default:
					other.Add(1)
					firstOther.CompareAndSwap(nil, string(body))
				}
				time.Sleep(2 * time.Millisecond)
			}
		}(w)
	}

	// Warm up clean until affinity has settled for both models.
	var slowURL string
	eventually(t, 5*time.Second, "affinity settled", func() bool {
		v, ok := servedBy.Load("lenet5")
		if ok {
			slowURL = v.(string)
		}
		_, ok2 := servedBy.Load("googlenet")
		return ok && ok2
	})

	// Fault the network: the lenet5 affinity backend turns gray-slow, a
	// different backend corrupts half its replies, and everyone else
	// rides a lossy path.
	slowHost := strings.TrimPrefix(slowURL, "http://")
	corruptHost := ""
	for _, u := range urls {
		if h := strings.TrimPrefix(u, "http://"); h != slowHost {
			corruptHost = h
			break
		}
	}
	for target, fc := range map[string]netfaults.Config{
		slowHost:    {Seed: 1, LatencyRate: 1, Latency: 250 * time.Millisecond},
		corruptHost: {Seed: 2, CorruptRate: 0.5},
		"":          {Seed: 3, DropRate: 0.03, CorruptRate: 0.05},
	} {
		if err := faultTr.SetConfig(target, fc); err != nil {
			t.Fatal(err)
		}
	}
	t.Logf("faults armed: slow=%s corrupt=%s (default path lossy)", slowHost, corruptHost)

	// The ejector must take the slow backend out on latency evidence
	// alone — it still answers every /readyz probe (250ms late, well
	// inside the probe budget), so the circuit breaker cannot see it.
	slowNorm, _ := NormalizeBackendURL(slowURL)
	eventually(t, 15*time.Second, "slow backend ejected", func() bool {
		for _, b := range f.reg.Snapshot() {
			if b.URL == slowNorm && b.Ejected {
				return true
			}
		}
		return false
	})

	// Heal the network (Clear drops the injectors and their counters, so
	// snapshot first) and watch the fleet readmit everyone.
	stats := faultTr.TotalStats()
	for _, target := range []string{slowHost, corruptHost, ""} {
		faultTr.Clear(target)
	}
	eventually(t, 15*time.Second, "fleet healthy after faults cleared", func() bool {
		return f.reg.EjectedCount() == 0 && f.reg.HealthyCount() == len(urls)
	})
	// A little clean tail traffic so readmission shows up in the numbers.
	time.Sleep(300 * time.Millisecond)
	stop()

	tot, ok, shed, oth, corr := total.Load(), ok2xx.Load(), shed5xx.Load(), other.Load(), corrupt.Load()
	if tot < 100 {
		t.Fatalf("load loop barely ran: %d requests", tot)
	}
	avail := float64(ok) / float64(tot)
	t.Logf("chaos fleet: %d requests, %d ok, %d shed, %d other, %d corrupt delivered → availability %.3f%%",
		tot, ok, shed, oth, corr, 100*avail)
	t.Logf("faults injected: %+v", stats)
	if stats.Injected() == 0 {
		t.Error("fault injector never fired — this chaos run was a clean run")
	}
	if corr > 0 {
		t.Errorf("%d corrupt responses reached clients (first stamped %v)", corr, firstCorrupt.Load())
	}
	if oth > 0 {
		t.Errorf("%d routing-attributable failures (first: %v)", oth, firstOther.Load())
	}
	if avail < 0.99 {
		t.Errorf("availability %.3f%% below the 99%% floor", 100*avail)
	}

	// The run only proves the integrity path if the network actually
	// corrupted something and the frontend refused it.
	mresp, err := http.Get(fts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mdata, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if !strings.Contains(string(mdata), `mulayer_frontend_integrity_failures_total{`) {
		t.Errorf("no integrity failures recorded — corruption faults never hit the data path:\n%s", mdata)
	}

	// The readmitted backend serves real traffic again.
	payload, _ := json.Marshal(server.InferRequest{Model: "lenet5"})
	resp, err := http.Post(slowURL+"/v1/infer", "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatalf("readmitted backend refused a request: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readmitted backend: %d (%s)", resp.StatusCode, body)
	}
}
