package experiments

import (
	"fmt"
	"math"

	"mulayer/internal/graph"
	"mulayer/internal/models"
	"mulayer/internal/nn"
	"mulayer/internal/tensor"
)

// ExtensionPerChannel quantifies the per-channel weight-quantization
// extension: for every convolution of a reduced numeric MobileNet v1 (the
// depthwise-heavy network), the RMS weight representation error under the
// paper's per-tensor gemmlowp grids versus per-output-channel symmetric
// grids. Depthwise layers are the motivating case: their per-channel
// weight ranges vary enough that a shared grid wastes most of the 8 bits
// on some channels.
func (e *Env) ExtensionPerChannel() (*Table, error) {
	cfg := models.Config{Numeric: true, InputHW: 32, WidthScale: 0.5, Classes: 10, Seed: 21}
	pt, err := models.MobileNetV1(cfg)
	if err != nil {
		return nil, err
	}
	pcCfg := cfg
	pcCfg.PerChannelWeights = true
	pc, err := models.MobileNetV1(pcCfg)
	if err != nil {
		return nil, err
	}
	for _, m := range []*models.Model{pt, pc} {
		if err := m.Calibrate(calSet(m, 2)); err != nil {
			return nil, err
		}
	}

	t := &Table{
		ID:     "Extension E3",
		Title:  "Per-channel weight quantization (MobileNet v1, reduced): RMS weight error",
		Header: []string{"layer", "kind", "per-tensor RMS", "per-channel RMS", "improvement"},
	}
	var dwGain, convGain []float64
	for i := 0; i < pt.Graph.Len(); i++ {
		a, okA := pt.Graph.Node(graph.NodeID(i)).Layer.(*nn.Conv2D)
		b, okB := pc.Graph.Node(graph.NodeID(i)).Layer.(*nn.Conv2D)
		if !okA || !okB {
			continue
		}
		ptRMS := weightRMS(a)
		pcRMS := weightRMS(b)
		gain := ptRMS / pcRMS
		if a.Kind() == nn.OpDepthwise {
			dwGain = append(dwGain, gain)
		} else {
			convGain = append(convGain, gain)
		}
		t.Rows = append(t.Rows, []string{
			a.LayerName, a.Kind().String(),
			fmt.Sprintf("%.5f", ptRMS), fmt.Sprintf("%.5f", pcRMS),
			fmt.Sprintf("%.2fx", gain),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("geomean RMS improvement: depthwise %.2fx, dense %.2fx", geomean(dwGain), geomean(convGain)),
		"per-channel grids share zero point 128, so the integer GEMM is unchanged; only requantization becomes per-channel")
	return t, nil
}

// weightRMS is the root-mean-square error of the layer's quantized weights
// against its float master weights.
func weightRMS(l *nn.Conv2D) float64 {
	qi := l.Quant()
	rows := l.W.Shape.C * l.W.Shape.H * l.W.Shape.W
	var sum float64
	for oc := 0; oc < l.OutC; oc++ {
		wp := qi.W
		if qi.PerChannel() {
			wp = qi.WPerChannel[oc]
		}
		for i := 0; i < rows; i++ {
			orig := float64(l.W.Data[oc*rows+i])
			q := wp.Quantize(l.W.Data[oc*rows+i])
			back := float64(wp.Dequantize(q))
			d := back - orig
			sum += d * d
		}
	}
	return math.Sqrt(sum / float64(l.OutC*rows))
}

// calSet builds deterministic calibration inputs for a model.
func calSet(m *models.Model, n int) []*tensor.Tensor {
	out := make([]*tensor.Tensor, n)
	for i := range out {
		t := tensor.New(m.InputShape)
		t.FillRandom(uint64(5000+i), 1)
		out[i] = t
	}
	return out
}
