package experiments

import (
	"fmt"

	"mulayer/internal/dataset"
	"mulayer/internal/exec"
	"mulayer/internal/models"
	"mulayer/internal/partition"
	"mulayer/internal/tensor"
)

// AccuracyConfig sizes the Figure 10 substitution experiment.
type AccuracyConfig struct {
	Samples int     // evaluation set size
	CalSize int     // calibration set size for the FakeQuant variant
	InputHW int     // reduced input resolution
	Width   float64 // channel width multiplier
	Seed    uint64
}

// DefaultAccuracyConfig keeps the numeric models small enough for pure-Go
// kernels while leaving quantization effects visible.
func DefaultAccuracyConfig() AccuracyConfig {
	return AccuracyConfig{Samples: 24, CalSize: 4, InputHW: 32, Width: 0.25, Seed: 11}
}

// accuracyModels lists the network families evaluated in Figure 10 that
// the zoo can build numerically at reduced scale. AlexNet needs a larger
// input to survive its stride-4 stem.
func accuracyModels(cfg AccuracyConfig) []struct {
	name  string
	build func(models.Config) (*models.Model, error)
	mcfg  models.Config
} {
	base := models.Config{Numeric: true, InputHW: cfg.InputHW, WidthScale: cfg.Width, Classes: 100, Seed: cfg.Seed, NoSoftmax: true}
	alex := base
	alex.InputHW = 67
	return []struct {
		name  string
		build func(models.Config) (*models.Model, error)
		mcfg  models.Config
	}{
		{"GoogLeNet", models.GoogLeNet, base},
		{"SqueezeNet v1.1", models.SqueezeNetV11, base},
		{"VGG-16", models.VGG16, base},
		{"AlexNet", models.AlexNet, alex},
		{"MobileNet v1", models.MobileNetV1, base},
		{"ResNet-18", models.ResNet18, base},
	}
}

// quantPredictor wraps one calibrated model into a dataset scorer running
// the uniform QUInt8 pipeline on the CPU.
func quantPredictor(m *models.Model, e *Env) func(*tensor.Tensor) ([]float32, error) {
	s := e.SoCs[0]
	plan, err := partition.Build(m.Graph, partition.SingleProcessor(s, e.Pred(s), partition.ProcCPU, tensor.QUInt8))
	if err != nil {
		panic(err)
	}
	cfg := exec.Config{
		SoC: s, Pipe: partition.Uniform(tensor.QUInt8), Numeric: true,
		InputParams: m.InputParams, AsyncIssue: true, ZeroCopy: true,
	}
	return func(in *tensor.Tensor) ([]float32, error) {
		res, err := exec.Run(m.Graph, plan, in, cfg)
		if err != nil {
			return nil, err
		}
		return res.Output.Data, nil
	}
}

// halfPredictor scores the uniform F16 pipeline.
func halfPredictor(m *models.Model, e *Env) func(*tensor.Tensor) ([]float32, error) {
	s := e.SoCs[0]
	plan, err := partition.Build(m.Graph, partition.SingleProcessor(s, e.Pred(s), partition.ProcGPU, tensor.F16))
	if err != nil {
		panic(err)
	}
	cfg := exec.Config{
		SoC: s, Pipe: partition.Uniform(tensor.F16), Numeric: true,
		AsyncIssue: true, ZeroCopy: true,
	}
	return func(in *tensor.Tensor) ([]float32, error) {
		res, err := exec.Run(m.Graph, plan, in, cfg)
		if err != nil {
			return nil, err
		}
		return res.Output.Data, nil
	}
}

// Figure10 reproduces the quantization-accuracy experiment (§4.3) under
// the teacher-label substitution (DESIGN.md §2): top-5 agreement with the
// F32 network for F16, naively-ranged QUInt8, and range-calibrated QUInt8
// ("FakeQuant"). F32 is 100% by construction; the reproduced result is the
// ladder F32 ≈ F16 ≫ naive QUInt8, with calibration recovering nearly all
// of the loss.
func (e *Env) Figure10(cfg AccuracyConfig) (*Table, error) {
	t := &Table{
		ID:     "Figure 10",
		Title:  "Top-5 agreement with the F32 network under quantization (teacher-label substitution)",
		Header: []string{"NN", "F32", "F16", "QUInt8(naive)", "QUInt8+FakeQuant"},
	}
	for _, spec := range accuracyModels(cfg) {
		// The teacher defines labels; every variant shares its weights via
		// the deterministic seed.
		teacher, err := spec.build(spec.mcfg)
		if err != nil {
			return nil, err
		}
		ds, err := dataset.Synthesize(teacher, cfg.Samples, cfg.Seed+99)
		if err != nil {
			return nil, err
		}

		// F16 variant.
		f16Model, err := spec.build(spec.mcfg)
		if err != nil {
			return nil, err
		}
		f16Acc, err := ds.Score(halfPredictor(f16Model, e))
		if err != nil {
			return nil, err
		}

		// Naive post-training QUInt8 (analytic worst-case ranges).
		naive, err := spec.build(spec.mcfg)
		if err != nil {
			return nil, err
		}
		if err := naive.CalibrateNaive(); err != nil {
			return nil, err
		}
		naiveAcc, err := ds.Score(quantPredictor(naive, e))
		if err != nil {
			return nil, err
		}

		// Range-calibrated QUInt8 (the FakeQuant stand-in).
		fq, err := spec.build(spec.mcfg)
		if err != nil {
			return nil, err
		}
		cal := make([]*tensor.Tensor, cfg.CalSize)
		for i := range cal {
			c := tensor.New(fq.InputShape)
			c.FillRandom(cfg.Seed+1000+uint64(i), 1)
			cal[i] = c
		}
		if err := fq.Calibrate(cal); err != nil {
			return nil, err
		}
		fqAcc, err := ds.Score(quantPredictor(fq, e))
		if err != nil {
			return nil, err
		}

		t.Rows = append(t.Rows, []string{
			spec.name, "100.0%", pct(f16Acc.Top5), pct(naiveAcc.Top5), pct(fqAcc.Top5),
		})
	}
	t.Notes = append(t.Notes,
		"paper: F16 lossless; naive QUInt8 loses up to 50.7%p (Inception-v4); retrained/fake-quantized QUInt8 loses at most 2.7%p",
		fmt.Sprintf("substitution: teacher-label agreement on %d synthetic samples, reduced model scale (DESIGN.md §2)", cfg.Samples))
	return t, nil
}
